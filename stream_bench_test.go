// Streaming-pipeline benchmarks: the buffer-everything forensics path
// against the zero-copy streaming pipeline over a large synthetic
// capture (go test -bench=ForensicsScan). The custom records/s metric is
// the headline number; allocs/op shows the zero-copy win.
package repro

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/forensics"
	"repro/internal/snoop"
)

// benchCapture synthesizes one shared capture per benchmark run.
func benchCapture(b *testing.B, records int) []byte {
	b.Helper()
	var buf bytes.Buffer
	if _, err := snoop.Synthesize(&buf, snoop.SynthConfig{Records: records, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkForensicsScan compares the full capture-to-report paths on a
// 200k-record synthetic capture. "baseline" is the pre-streaming
// pipeline (snoop.ReadAll materializes every record, forensics.Analyze
// full-parses each); the stream variants run the Scanner-fed zero-copy
// pipeline, serial and with decode workers.
func BenchmarkForensicsScan(b *testing.B) {
	const records = 200_000
	data := benchCapture(b, records)

	want := func() *forensics.Report {
		recs, err := snoop.ReadAll(data)
		if err != nil {
			b.Fatal(err)
		}
		return forensics.Analyze(recs)
	}()

	run := func(b *testing.B, analyze func() (*forensics.Report, error)) {
		b.Helper()
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := analyze()
			if err != nil {
				b.Fatal(err)
			}
			if len(rep.Findings) != len(want.Findings) {
				b.Fatalf("findings %d, want %d", len(rep.Findings), len(want.Findings))
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	}

	b.Run("baseline_readall_analyze", func(b *testing.B) {
		run(b, func() (*forensics.Report, error) {
			recs, err := snoop.ReadAll(data)
			if err != nil {
				return nil, err
			}
			return forensics.Analyze(recs), nil
		})
	})
	b.Run("stream_workers1", func(b *testing.B) {
		run(b, func() (*forensics.Report, error) {
			return forensics.AnalyzeStreamWorkers(bytes.NewReader(data), 1)
		})
	})
	b.Run("stream", func(b *testing.B) {
		run(b, func() (*forensics.Report, error) {
			return forensics.AnalyzeStream(bytes.NewReader(data))
		})
	})

	// Identity across paths, checked once outside the timing loops.
	got, err := forensics.AnalyzeStream(bytes.NewReader(data))
	if err != nil {
		b.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		b.Fatal("streaming report differs from in-memory report")
	}
}

// BenchmarkSnoopScanner isolates the record-iteration layer: ReadAll's
// one-allocation-per-record materialization vs the Scanner's reused
// buffer.
func BenchmarkSnoopScanner(b *testing.B) {
	const records = 200_000
	data := benchCapture(b, records)

	b.Run("readall", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			recs, err := snoop.ReadAll(data)
			if err != nil {
				b.Fatal(err)
			}
			if len(recs) != records {
				b.Fatal("short read")
			}
		}
	})
	b.Run("scanner", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc := snoop.NewScanner(bytes.NewReader(data))
			n := 0
			for sc.Scan() {
				n++
			}
			if err := sc.Err(); err != nil || n != records {
				b.Fatalf("n=%d err=%v", n, err)
			}
		}
	})
}

// BenchmarkSynthesize measures the capture generator itself (it must be
// cheap enough to build multi-million-record fixtures on the fly).
func BenchmarkSynthesize(b *testing.B) {
	b.ReportAllocs()
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		stats, err := snoop.Synthesize(&buf, snoop.SynthConfig{Records: 100_000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if stats.Records != 100_000 {
			b.Fatal("short capture")
		}
	}
	b.SetBytes(int64(buf.Len()))
}
