#!/bin/sh
# Tier-1 verification: build, vet, tests, race detector, plus a one-shot
# smoke run of the benchmark suite. Run from the repository root.
#
#   scripts/verify.sh          # full tier-1
#   BENCH_JSON=BENCH_pr1.json scripts/verify.sh   # also regenerate timings
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./...
go test -run xxx -bench . -benchtime 1x .

if [ -n "${BENCH_JSON:-}" ]; then
    go run ./cmd/benchtables -benchjson "$BENCH_JSON"
fi
