#!/bin/sh
# Tier-1 verification: build, vet, tests, race detector, plus a one-shot
# smoke run of the benchmark suite and the streaming-pipeline benches.
# Run from the repository root.
#
#   scripts/verify.sh          # full tier-1
#   BENCH_JSON=BENCH_pr2.json scripts/verify.sh   # also regenerate timings
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./...
go test -run xxx -bench . -benchtime 1x .

# Streaming forensics pipeline: smoke the synthetic capture generator and
# the capture-scan benchmarks (baseline vs zero-copy stream).
go test -run xxx -bench 'BenchmarkForensicsScan|BenchmarkSnoopScanner|BenchmarkSynthesize' -benchtime 1x .

if [ -n "${BENCH_JSON:-}" ]; then
    go run ./cmd/benchtables -benchjson "$BENCH_JSON"
    go run ./cmd/benchtables -checkjson "$BENCH_JSON"
fi

# Live detection daemon: self-contained end-to-end smoke (ephemeral
# sockets, live JSONL events verified against the batch analyzer,
# /metrics + /healthz probed).
go run ./cmd/blapd -smoke

# The committed bench JSONs must stay well-formed.
for bj in BENCH_pr2.json BENCH_pr3.json; do
    if [ -f "$bj" ]; then
        go run ./cmd/benchtables -checkjson "$bj"
    fi
done
