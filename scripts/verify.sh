#!/bin/sh
# Tier-1 verification: build, vet, tests, race detector, plus a one-shot
# smoke run of the benchmark suite and the streaming-pipeline benches.
# Run from the repository root.
#
#   scripts/verify.sh          # full tier-1
#   BENCH_JSON=BENCH_pr2.json scripts/verify.sh   # also regenerate timings
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./...
go test -run xxx -bench . -benchtime 1x .

# Streaming forensics pipeline: smoke the synthetic capture generator and
# the capture-scan benchmarks (baseline vs zero-copy stream).
go test -run xxx -bench 'BenchmarkForensicsScan|BenchmarkSnoopScanner|BenchmarkSynthesize' -benchtime 1x .

if [ -n "${BENCH_JSON:-}" ]; then
    go run ./cmd/benchtables -benchjson "$BENCH_JSON"
    go run ./cmd/benchtables -checkjson "$BENCH_JSON"
fi

# The committed bench JSON must stay well-formed.
if [ -f BENCH_pr2.json ]; then
    go run ./cmd/benchtables -checkjson BENCH_pr2.json
fi
