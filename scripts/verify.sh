#!/bin/sh
# Tier-1 verification: build, vet, tests, race detector, plus a one-shot
# smoke run of the benchmark suite and the streaming-pipeline benches.
# Run from the repository root.
#
#   scripts/verify.sh          # full tier-1
#   BENCH_JSON=BENCH_pr2.json scripts/verify.sh   # also regenerate timings
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./...
go test -run xxx -bench . -benchtime 1x .

# Streaming forensics pipeline: smoke the synthetic capture generator and
# the capture-scan benchmarks (baseline vs zero-copy stream).
go test -run xxx -bench 'BenchmarkForensicsScan|BenchmarkSnoopScanner|BenchmarkSynthesize' -benchtime 1x .

if [ -n "${BENCH_JSON:-}" ]; then
    go run ./cmd/benchtables -benchjson "$BENCH_JSON"
    go run ./cmd/benchtables -checkjson "$BENCH_JSON"
fi

# Live detection daemon: self-contained end-to-end smoke (ephemeral
# sockets, live JSONL events verified against the batch analyzer,
# /metrics + /healthz probed).
go run ./cmd/blapd -smoke

# Chaos smoke: the same seed and fault plan must reproduce the capture
# byte for byte, and blapd must still flag the degraded-channel attack
# (exit 3 == findings present).
chaos_dir=$(mktemp -d)
trap 'rm -rf "$chaos_dir"' EXIT
go run ./cmd/btsim -scenario flaky-extraction -seed 7 -o "$chaos_dir/a"
go run ./cmd/btsim -scenario flaky-extraction -seed 7 -o "$chaos_dir/b"
cmp "$chaos_dir/a/flaky-extraction_C.btsnoop" "$chaos_dir/b/flaky-extraction_C.btsnoop"
cmp "$chaos_dir/a/flaky-extraction_A.btsnoop" "$chaos_dir/b/flaky-extraction_A.btsnoop"
# go run swallows the child's exit code (it reports 1 and prints
# "exit status 3"), so the exit-3 contract needs the built binary.
go build -o "$chaos_dir/blapd" ./cmd/blapd
rc=0
"$chaos_dir/blapd" -stdin < "$chaos_dir/a/flaky-extraction_C.btsnoop" || rc=$?
[ "$rc" -eq 3 ]

# The committed bench JSONs must stay well-formed (the pr4 check also
# enforces the degraded-sweep acceptance criteria).
for bj in BENCH_pr2.json BENCH_pr3.json BENCH_pr4.json; do
    if [ -f "$bj" ]; then
        go run ./cmd/benchtables -checkjson "$bj"
    fi
done
