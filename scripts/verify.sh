#!/bin/sh
# Tier-1 verification: build, vet, tests, race detector, plus a one-shot
# smoke run of the benchmark suite and the streaming-pipeline benches.
# Run from the repository root.
#
#   scripts/verify.sh          # full tier-1
#   BENCH_JSON=BENCH_pr2.json scripts/verify.sh   # also regenerate timings
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./...
go test -run xxx -bench . -benchtime 1x .

# Streaming forensics pipeline: smoke the synthetic capture generator and
# the capture-scan benchmarks (baseline vs zero-copy stream).
go test -run xxx -bench 'BenchmarkForensicsScan|BenchmarkSnoopScanner|BenchmarkSynthesize' -benchtime 1x .

if [ -n "${BENCH_JSON:-}" ]; then
    go run ./cmd/benchtables -benchjson "$BENCH_JSON"
    go run ./cmd/benchtables -checkjson "$BENCH_JSON"
fi

# Live detection daemon: self-contained end-to-end smoke (ephemeral
# sockets, live JSONL events verified against the batch analyzer on
# several concurrent streams, /metrics + /healthz probed; since PR 5
# the smoke also asserts the ingest/detect latency histograms and stage
# timers are populated and that the opt-in /debug/pprof mux answers;
# since PR 7 it asserts per-shard metric rows sum to the aggregates and
# every stream keeps live-vs-batch parity). Run once with the default
# shard count and once with -shards 1, the single-writer layout that
# reproduces the pre-shard fan-in.
go run ./cmd/blapd -smoke
go run ./cmd/blapd -smoke -shards 1

# Observability smoke: hcidump -stats must report throughput and
# capture-time finding latency without disturbing the exit-3 contract,
# and a repeated btsim campaign must run with live progress.
obs_dir=$(mktemp -d)
go run ./cmd/btsim -scenario extraction -seed 7 -o "$obs_dir"
go build -o "$obs_dir/hcidump" ./cmd/hcidump
rc=0
"$obs_dir/hcidump" -analyze -stats "$obs_dir/extraction_C.btsnoop" >/dev/null 2>"$obs_dir/stats.err" || rc=$?
[ "$rc" -eq 3 ]
grep -q '^stats: .*records/s' "$obs_dir/stats.err"
go run ./cmd/btsim -scenario extraction -repeat 20 -workers 4 -seed 7 > "$obs_dir/repeat.out" 2>/dev/null
grep -q 'succeeded' "$obs_dir/repeat.out"
rm -rf "$obs_dir"

# Related-attack library smoke (PR 10): an unknown scenario must list the
# registry and exit 2; a library scenario must run, write its victim-side
# capture, and flag its detector rule; the mitigation campaign must hold
# the attack at zero.
atk_dir=$(mktemp -d)
go build -o "$atk_dir/btsim" ./cmd/btsim
go build -o "$atk_dir/hcidump" ./cmd/hcidump
rc=0
"$atk_dir/btsim" -scenario no-such-attack 2> "$atk_dir/unknown.err" || rc=$?
[ "$rc" -eq 2 ]
grep -q 'valid: .*stealtooth.*passkey-guard' "$atk_dir/unknown.err"
"$atk_dir/btsim" -scenario stealtooth -seed 7 -o "$atk_dir" | grep -q 're-paired=true'
rc=0
"$atk_dir/hcidump" -analyze "$atk_dir/stealtooth_C.btsnoop" > "$atk_dir/stealtooth.rep" || rc=$?
[ "$rc" -eq 3 ]
grep -q 'silent-repairing' "$atk_dir/stealtooth.rep"
"$atk_dir/btsim" -scenario passkey-guard -repeat 10 -seed 7 2>/dev/null | grep -q '0/10 succeeded'
go run ./cmd/benchtables -attacks -trials 5 > "$atk_dir/matrix.out"
grep -q 'Cross-attack matrix' "$atk_dir/matrix.out"
for atk in stealtooth happy-mitm blurtooth oob-mitm passkey-sniff passkey-guard; do
    grep -q "$atk" "$atk_dir/matrix.out"
done
rm -rf "$atk_dir"

# Chaos smoke: the same seed and fault plan must reproduce the capture
# byte for byte, and blapd must still flag the degraded-channel attack
# (exit 3 == findings present).
chaos_dir=$(mktemp -d)
trap 'rm -rf "$chaos_dir"' EXIT
go run ./cmd/btsim -scenario flaky-extraction -seed 7 -o "$chaos_dir/a"
go run ./cmd/btsim -scenario flaky-extraction -seed 7 -o "$chaos_dir/b"
cmp "$chaos_dir/a/flaky-extraction_C.btsnoop" "$chaos_dir/b/flaky-extraction_C.btsnoop"
cmp "$chaos_dir/a/flaky-extraction_A.btsnoop" "$chaos_dir/b/flaky-extraction_A.btsnoop"
# go run swallows the child's exit code (it reports 1 and prints
# "exit status 3"), so the exit-3 contract needs the built binary.
go build -o "$chaos_dir/blapd" ./cmd/blapd
rc=0
"$chaos_dir/blapd" -stdin < "$chaos_dir/a/flaky-extraction_C.btsnoop" || rc=$?
[ "$rc" -eq 3 ]

# Batch-pipeline smoke: a 1M-record synthetic capture fed through the
# one-shot blapd batch path twice must produce byte-identical finding
# lines (no wall-clock leakage, deterministic batch boundaries) and the
# exit-3 contract, and hcidump -analyze must agree on the same capture.
batch_dir=$(mktemp -d)
go run ./cmd/benchtables -synth "$batch_dir/batch.btsnoop" -synthrecords 1000000 -seed 9
go build -o "$batch_dir/blapd" ./cmd/blapd
go build -o "$batch_dir/hcidump" ./cmd/hcidump
rc=0
"$batch_dir/blapd" -stdin < "$batch_dir/batch.btsnoop" > "$batch_dir/run1.jsonl" || rc=$?
[ "$rc" -eq 3 ]
rc=0
"$batch_dir/blapd" -stdin < "$batch_dir/batch.btsnoop" > "$batch_dir/run2.jsonl" || rc=$?
[ "$rc" -eq 3 ]
grep '"type":"finding"' "$batch_dir/run1.jsonl" > "$batch_dir/f1"
grep '"type":"finding"' "$batch_dir/run2.jsonl" > "$batch_dir/f2"
cmp "$batch_dir/f1" "$batch_dir/f2"
rc=0
"$batch_dir/hcidump" -analyze "$batch_dir/batch.btsnoop" >/dev/null || rc=$?
[ "$rc" -eq 3 ]
rm -rf "$batch_dir"

# Kill-9 resilience smoke (PR 9): stream the 1M-record capture into a
# session-protocol daemon with a store, kill -9 the daemon right after
# its first durable checkpoint marker appears on the JSONL channel,
# restart on the same store (the parked session must be recovered from
# its checkpoint), resume the send with the same session id, and
# require the merged finding lines — timestamps stripped, deduplicated,
# since replay from the last checkpoint legitimately re-emits findings
# already printed before the crash — to byte-match an uninterrupted
# baseline run. The first send must exit 4, the partial-send code.
res_dir=$(mktemp -d)
go run ./cmd/benchtables -synth "$res_dir/cap.btsnoop" -synthrecords 1000000 -seed 9
go build -o "$res_dir/blapd" ./cmd/blapd
wait_addr() {
    i=0
    while [ "$i" -lt 100 ]; do
        addr=$(sed -n 's/^blapd: listening tcp //p' "$1")
        [ -n "$addr" ] && return 0
        i=$((i+1)); sleep 0.1
    done
    return 1
}
# grep -h (not cat |): a kill -9 can truncate the crashed run's final
# JSONL line mid-write, and cat would glue that unterminated fragment
# onto the next file's first line. Per-file grep keeps the fragment its
# own line and the }$ filter drops it — safe, because every event after
# the last durable checkpoint is re-emitted complete on replay.
strip_findings() {
    grep -h '"type":"finding"' "$@" | grep '}$' | sed 's/,"ts":"[^"]*"//'
}
# The send client exits once its bytes are in the socket; the daemon is
# still draining them. Wait for the clean stream-end event before
# terminating, or the tail of the capture is lost to the abort path.
wait_clean() {
    i=0
    until grep '"type":"stream-end"' "$1" | grep -q '"status":"clean"'; do
        i=$((i+1)); [ "$i" -lt 300 ]; sleep 0.1
    done
}
# Baseline: one uninterrupted session-protocol run.
"$res_dir/blapd" -tcp 127.0.0.1:0 -store "$res_dir/store_base" -resume-grace 5m \
    -checkpoint-every 1048576 -ack-every 65536 \
    > "$res_dir/base.jsonl" 2> "$res_dir/base.err" &
base_pid=$!
wait_addr "$res_dir/base.err"
"$res_dir/blapd" -send "$res_dir/cap.btsnoop" -tcp "$addr" -session s9
wait_clean "$res_dir/base.jsonl"
kill -TERM "$base_pid"
wait "$base_pid"
strip_findings "$res_dir/base.jsonl" | sort > "$res_dir/base.findings"
test -s "$res_dir/base.findings"
# Crash run: same configuration, killed -9 mid-ingest.
"$res_dir/blapd" -tcp 127.0.0.1:0 -store "$res_dir/store_crash" -resume-grace 5m \
    -checkpoint-every 1048576 -ack-every 65536 \
    > "$res_dir/crash1.jsonl" 2> "$res_dir/crash1.err" &
crash_pid=$!
wait_addr "$res_dir/crash1.err"
"$res_dir/blapd" -send "$res_dir/cap.btsnoop" -tcp "$addr" -session s9 2> "$res_dir/send1.err" &
send_pid=$!
i=0
until grep -q '"type":"checkpoint"' "$res_dir/crash1.jsonl"; do
    i=$((i+1)); [ "$i" -lt 200 ]; sleep 0.05
done
kill -9 "$crash_pid"
rc=0
wait "$send_pid" || rc=$?
[ "$rc" -eq 4 ]
wait "$crash_pid" || true
# Restart on the same store: the parked session must come back from its
# checkpoint, and the resumed send must pick up at a nonzero offset.
"$res_dir/blapd" -tcp 127.0.0.1:0 -store "$res_dir/store_crash" -resume-grace 5m \
    -checkpoint-every 1048576 -ack-every 65536 \
    > "$res_dir/crash2.jsonl" 2> "$res_dir/crash2.err" &
crash2_pid=$!
wait_addr "$res_dir/crash2.err"
grep -q 'recovered 1 parked session' "$res_dir/crash2.err"
"$res_dir/blapd" -send "$res_dir/cap.btsnoop" -tcp "$addr" -session s9 2> "$res_dir/send2.err"
grep -q 'resumed from offset [1-9]' "$res_dir/send2.err"
wait_clean "$res_dir/crash2.jsonl"
kill -TERM "$crash2_pid"
wait "$crash2_pid"
strip_findings "$res_dir/crash1.jsonl" "$res_dir/crash2.jsonl" | sort -u > "$res_dir/crash.findings"
cmp "$res_dir/base.findings" "$res_dir/crash.findings"
rm -rf "$res_dir"

# Transport-chaos differential, full sweep over a small capture: cut
# the session at every one of its byte offsets, resume, and require
# findings byte-identical to the uninterrupted baseline. (The larger
# stride-sampled version runs in go test; this exercises the benchtables
# -chaos entry point end to end.)
go run ./cmd/benchtables -chaos -chaosrecords 40

# Store smoke: the embedded tsdb must be deterministic — appending 1M
# findings on a fixed timeline, retention-compacting with a fixed clock,
# and querying back must print identical counts and digests (covering
# every byte in the store directory) across two fresh runs.
tsdb_dir=$(mktemp -d)
go run ./cmd/benchtables -tsdbsmoke "$tsdb_dir/a" > "$tsdb_dir/run1.out"
go run ./cmd/benchtables -tsdbsmoke "$tsdb_dir/b" > "$tsdb_dir/run2.out"
cmp "$tsdb_dir/run1.out" "$tsdb_dir/run2.out"
grep -q 'window=60000' "$tsdb_dir/run1.out"
rm -rf "$tsdb_dir"

# The committed bench JSONs must stay well-formed (the pr4 check also
# enforces the degraded-sweep acceptance criteria).
for bj in BENCH_pr2.json BENCH_pr3.json BENCH_pr4.json BENCH_pr5.json BENCH_pr6.json BENCH_pr7.json BENCH_pr8.json BENCH_pr9.json BENCH_pr10.json; do
    if [ -f "$bj" ]; then
        go run ./cmd/benchtables -checkjson "$bj"
    fi
done

# Observability overhead gate: the instrumented sentinel ingest path
# (BENCH_pr5, with sampled stage timing compiled in) must stay within
# 5% of the pre-instrumentation throughput artifact (BENCH_pr3).
if [ -f BENCH_pr5.json ] && [ -f BENCH_pr3.json ]; then
    go run ./cmd/benchtables -checkjson BENCH_pr5.json -baseline BENCH_pr3.json
fi

# Batch-pipeline speedup gate: the PR 6 block-scanning ingest must run
# sentinel_ingest_1m and forensics_scan_1m at least 3x faster than the
# PR 5 artifact, with allocations per record no worse. Both JSONs are
# committed, so this check is deterministic.
if [ -f BENCH_pr6.json ] && [ -f BENCH_pr5.json ]; then
    go run ./cmd/benchtables -checkjson BENCH_pr6.json -baseline BENCH_pr5.json -minspeedup 3
fi

# Sharded-sentinel gate: the PR 7 artifact must keep sentinel_ingest_1m
# within 5% of PR 6, restore the degraded-sweep workers=2 speedup to
# >= 0.95, and — when the artifact was recorded on >= 2 CPUs — show the
# multi-stream aggregate at >= 2x the single-stream throughput.
if [ -f BENCH_pr7.json ] && [ -f BENCH_pr6.json ]; then
    go run ./cmd/benchtables -checkjson BENCH_pr7.json -baseline BENCH_pr6.json
fi

# Persistence overhead gate: the PR 8 artifact records sentinel_ingest_1m
# with a live tsdb store wired in (every finding and stream end written
# through the bounded persist queues); that throughput must stay within
# 5% of the store-less PR 7 figure — durability rides the cold path.
if [ -f BENCH_pr8.json ] && [ -f BENCH_pr7.json ]; then
    go run ./cmd/benchtables -checkjson BENCH_pr8.json -baseline BENCH_pr7.json
fi

# Resilience overhead gate: the PR 9 artifact records both sentinel
# ingest figures with the session resume protocol and detector
# checkpointing enabled (chunk framing, offset acks, periodic snapshots
# through the persist queues); both must stay within 5% of the PR 8
# figures — resumability rides the cold path too.
if [ -f BENCH_pr9.json ] && [ -f BENCH_pr8.json ]; then
    go run ./cmd/benchtables -checkjson BENCH_pr9.json -baseline BENCH_pr8.json -checkmulti
fi

# Cross-attack matrix gate: the PR 10 artifact carries the attack matrix
# (>= 5 attacks with non-zero trials, clean-channel detection == success
# for every ruled attack, mitigation row at zero — enforced inside
# -checkjson) and its detector-rule additions must leave the ingest
# throughput within 5% of the PR 9 figures.
if [ -f BENCH_pr10.json ] && [ -f BENCH_pr9.json ]; then
    go run ./cmd/benchtables -checkjson BENCH_pr10.json -baseline BENCH_pr9.json -checkmulti
fi
