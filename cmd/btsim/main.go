// Command btsim runs ad-hoc piconet scenarios in the simulator and writes
// the resulting HCI captures to disk: a btsnoop file per snoop-capable
// device and a raw URB stream for sniffed USB transports. The files are
// bit-compatible with the real formats (cmd/hcidump and Wireshark's
// btsnoop reader can open the .btsnoop outputs).
//
//	btsim -scenario pair -o captures/
//	btsim -scenario bond-reconnect -o captures/
//	btsim -scenario extraction -o captures/
//	btsim -scenario extraction -faults 'drop=0.05,burst=0.02:0.25:0.6' -o captures/
//	btsim -scenario flaky-extraction -o captures/
//
// The -faults flag degrades the simulated medium with a deterministic
// fault plan (see internal/faults: drop, corrupt, dup, reorder, burst,
// outage). The plan draws from the same seeded scheduler RNG as the rest
// of the simulation, so identical -seed and -faults values reproduce the
// captures byte for byte.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faults"
)

func main() {
	var (
		scenario = flag.String("scenario", "pair", "scenario: pair, bond-reconnect, extraction, flaky-extraction, pageblock")
		out      = flag.String("o", ".", "output directory for capture files")
		seed     = flag.Int64("seed", 1, "random seed")
		faultStr = flag.String("faults", "", "deterministic fault plan, e.g. 'drop=0.05,burst=0.02:0.25:0.6,outage=C@2s+500ms'")
		repeat   = flag.Int("repeat", 1, "run the scenario this many times as a deterministic campaign (no capture files), with live progress on stderr")
		workers  = flag.Int("workers", 0, "campaign workers for -repeat (0 = GOMAXPROCS)")
	)
	flag.Parse()

	plan, err := faults.ParsePlan(*faultStr)
	if err != nil {
		fail(err)
	}
	action := *scenario
	if action == "flaky-extraction" {
		// The canned chaos scenario: extraction over a lossy, bursty
		// channel with a mid-attack outage of the client's radio. The
		// attack rides it out via ARQ, paging retries, and backoff.
		if *faultStr == "" {
			plan = faults.Plan{
				Drop:    0.05,
				Burst:   &faults.Burst{PEnter: 0.02, PExit: 0.25, BadLoss: 0.6},
				Outages: []faults.Outage{{Device: "C", Start: 2 * time.Second, Duration: 3 * time.Second}},
			}
		}
		action = "extraction"
		fmt.Printf("fault plan: %s\n", plan)
	}

	if *repeat > 1 {
		if err := runRepeated(action, plan, *seed, *repeat, *workers); err != nil {
			fail(err)
		}
		return
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}

	tb, err := core.NewTestbed(*seed, core.TestbedOptions{
		ClientPlatform:   device.GalaxyS21Android11,
		ClientUSBSniffer: false,
		Bond:             action != "pair",
		Faults:           plan,
	})
	if err != nil {
		fail(err)
	}

	switch action {
	case "pair":
		tb.MUser.ExpectPairing(tb.C.Addr())
		tb.M.Host.Pair(tb.C.Addr(), func(err error) {
			if err != nil {
				fail(fmt.Errorf("pairing failed: %w", err))
			}
		})
		tb.Sched.RunFor(30 * time.Second)
		fmt.Printf("paired; link key %s\n", tb.M.Host.Bonds().Get(tb.C.Addr()).Key)

	case "bond-reconnect":
		tb.M.Host.Pair(tb.C.Addr(), func(err error) {
			if err != nil {
				fail(fmt.Errorf("reconnect failed: %w", err))
			}
		})
		tb.Sched.RunFor(30 * time.Second)
		fmt.Printf("reconnected with stored key %s\n", tb.BondKey)

	case "extraction":
		rep, err := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
			Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: core.ChannelHCISnoop,
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("extracted %s (client disconnect: %s)\n", rep.Key, rep.DisconnectReason)

	case "pageblock":
		rep := core.RunPageBlocking(tb.Sched, core.PageBlockingConfig{
			Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
			UsePLOC: true, RunInquiry: true,
		})
		fmt.Printf("page blocking MITM established: %v\n", rep.MITMEstablished)

	default:
		fail(fmt.Errorf("unknown scenario %q", *scenario))
	}

	for name, d := range map[string]*device.Device{"M": tb.M, "C": tb.C, "A": tb.A} {
		if d.Snoop == nil || d.Snoop.Len() == 0 {
			continue
		}
		data, err := d.PullSnoopLog()
		if err != nil {
			fail(err)
		}
		path := filepath.Join(*out, fmt.Sprintf("%s_%s.btsnoop", *scenario, name))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d records, %d bytes)\n", path, d.Snoop.Len(), len(data))
	}
	for name, d := range map[string]*device.Device{"M": tb.M, "C": tb.C, "A": tb.A} {
		if d.Host.Bonds().Len() == 0 {
			continue
		}
		path := filepath.Join(*out, fmt.Sprintf("%s_%s_bt_config.conf", *scenario, name))
		if err := d.Host.Bonds().SaveConfigFile(path); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d bonds)\n", path, d.Host.Bonds().Len())
	}
	if tb.C.USB != nil && len(tb.C.USB.Raw()) > 0 {
		path := filepath.Join(*out, fmt.Sprintf("%s_C.usbraw", *scenario))
		if err := os.WriteFile(path, tb.C.USB.Raw(), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(tb.C.USB.Raw()))
	}
}

// runRepeated runs the scenario as a deterministic campaign: one
// hermetic testbed per trial seeded from the trial index, channel
// faults retried like the degraded-channel sweeps, and the engine's
// progress telemetry (trials/sec, retry count, ETA) reported live on
// stderr — the operator's view into a long sweep that single-run btsim
// never had. Capture files are not written; the output is the outcome
// tally.
func runRepeated(action string, plan faults.Plan, seed int64, n, workers int) error {
	trial, err := repeatTrial(action, plan, seed)
	if err != nil {
		return err
	}
	p := &campaign.Progress{}
	stop := p.Report(os.Stderr, 500*time.Millisecond)
	pol := campaign.RetryPolicy{MaxAttempts: 3, Retryable: core.IsChannelFault}
	res, err := campaign.RunRetry(context.Background(), n, campaign.Config{Workers: workers, Progress: p}, pol, trial)
	stop()
	if err != nil && !core.IsChannelFault(err) {
		return err
	}
	ok := 0
	var attempts int
	for _, r := range res {
		if r.Err == nil && r.Value {
			ok++
		}
		attempts += r.Attempts
	}
	s := p.Snapshot()
	fmt.Printf("%s x %d: %d/%d succeeded, %.2f mean attempts, %.1f trials/s, trial p50 %s p99 %s\n",
		action, n, ok, n, float64(attempts)/float64(n), s.TrialsPerSec,
		time.Duration(s.Latency.P50US*1e3).Round(time.Microsecond),
		time.Duration(s.Latency.P99US*1e3).Round(time.Microsecond))
	return nil
}

// repeatTrial maps a scenario name to its campaign trial function. Each
// trial derives its world from (seed, scenario, trial, attempt) so the
// sweep is bit-identical at any worker count, and reports channel
// faults as retryable errors.
func repeatTrial(action string, plan faults.Plan, seed int64) (func(context.Context, campaign.Attempt) (bool, error), error) {
	domain := "btsim/" + action
	world := func(a campaign.Attempt, opts core.TestbedOptions) (*core.Testbed, error) {
		s := campaign.DeriveSeed(seed, campaign.AttemptDomain(domain, a.Attempt), a.Trial)
		return core.NewTestbed(s, opts)
	}
	switch action {
	case "pair":
		return func(_ context.Context, a campaign.Attempt) (bool, error) {
			// The setup bond IS the pairing under test; a world that fails
			// to build lost its pairing to the channel.
			_, err := world(a, core.TestbedOptions{
				ClientPlatform: device.GalaxyS21Android11,
				Bond:           true, Faults: plan, FaultsDuringSetup: true,
			})
			return err == nil, nil
		}, nil
	case "bond-reconnect":
		return func(_ context.Context, a campaign.Attempt) (bool, error) {
			tb, err := world(a, core.TestbedOptions{
				ClientPlatform: device.GalaxyS21Android11, Bond: true, Faults: plan,
			})
			if err != nil {
				return false, err
			}
			reconnectErr := fmt.Errorf("reconnect never completed")
			tb.M.Host.Pair(tb.C.Addr(), func(err error) { reconnectErr = err })
			tb.Sched.RunFor(30 * time.Second)
			return reconnectErr == nil, nil
		}, nil
	case "extraction":
		return func(_ context.Context, a campaign.Attempt) (bool, error) {
			tb, err := world(a, core.TestbedOptions{
				ClientPlatform: device.GalaxyS21Android11, Bond: true, Faults: plan,
			})
			if err != nil {
				return false, err
			}
			rep, err := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
				Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: core.ChannelHCISnoop,
			})
			if err != nil {
				if core.IsChannelFault(err) {
					return false, err // retryable
				}
				return false, nil // terminal outcome: a failed trial
			}
			return rep.Key == tb.BondKey, nil
		}, nil
	case "pageblock":
		return func(_ context.Context, a campaign.Attempt) (bool, error) {
			tb, err := world(a, core.TestbedOptions{Faults: plan})
			if err != nil {
				return false, err
			}
			rep := core.RunPageBlocking(tb.Sched, core.PageBlockingConfig{
				Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
				UsePLOC: true, RunInquiry: true,
			})
			return rep.MITMEstablished, nil
		}, nil
	default:
		return nil, fmt.Errorf("-repeat does not support scenario %q", action)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "btsim:", err)
	os.Exit(1)
}
