// Command btsim runs ad-hoc piconet scenarios in the simulator and writes
// the resulting HCI captures to disk: a btsnoop file per snoop-capable
// device and a raw URB stream for sniffed USB transports. The files are
// bit-compatible with the real formats (cmd/hcidump and Wireshark's
// btsnoop reader can open the .btsnoop outputs).
//
//	btsim -scenario pair -o captures/
//	btsim -scenario bond-reconnect -o captures/
//	btsim -scenario extraction -o captures/
//	btsim -scenario extraction -faults 'drop=0.05,burst=0.02:0.25:0.6' -o captures/
//	btsim -scenario stealtooth -o captures/
//	btsim -scenario passkey-sniff -repeat 100
//
// The scenario registry (scenarios.go) spans the paper's own attacks and
// the related-attack library: pair, bond-reconnect, extraction,
// flaky-extraction, pageblock, stealtooth, happy-mitm, blurtooth,
// oob-mitm, passkey-sniff, passkey-guard.
//
// The -faults flag degrades the simulated medium with a deterministic
// fault plan (see internal/faults: drop, corrupt, dup, reorder, burst,
// outage). The plan draws from the same seeded scheduler RNG as the rest
// of the simulation, so identical -seed and -faults values reproduce the
// captures byte for byte.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faults"
)

func main() {
	var (
		scenario = flag.String("scenario", "pair", "scenario: "+scenarioNames())
		out      = flag.String("o", ".", "output directory for capture files")
		seed     = flag.Int64("seed", 1, "random seed")
		faultStr = flag.String("faults", "", "deterministic fault plan, e.g. 'drop=0.05,burst=0.02:0.25:0.6,outage=C@2s+500ms'")
		repeat   = flag.Int("repeat", 1, "run the scenario this many times as a deterministic campaign (no capture files), with live progress on stderr")
		workers  = flag.Int("workers", 0, "campaign workers for -repeat (0 = GOMAXPROCS)")
	)
	flag.Parse()

	def := findScenario(*scenario)
	if def == nil {
		fmt.Fprintf(os.Stderr, "btsim: unknown scenario %q (valid: %s)\n", *scenario, scenarioNames())
		os.Exit(2)
	}

	plan, err := faults.ParsePlan(*faultStr)
	if err != nil {
		fail(err)
	}
	if def.aliasFor != "" {
		// A canned alias (flaky-extraction): substitute its fault plan
		// unless the user supplied one, then run the underlying scenario.
		if *faultStr == "" {
			plan = def.defaultPlan()
		}
		fmt.Printf("fault plan: %s\n", plan)
		def = findScenario(def.aliasFor)
	}

	if *repeat > 1 {
		if err := runRepeated(def, plan, *seed, *repeat, *workers); err != nil {
			fail(err)
		}
		return
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}

	tb, err := core.NewTestbed(*seed, def.options(plan))
	if err != nil {
		fail(err)
	}
	if err := def.run(tb); err != nil {
		fail(err)
	}

	for name, d := range map[string]*device.Device{"M": tb.M, "C": tb.C, "A": tb.A} {
		if d.Snoop == nil || d.Snoop.Len() == 0 {
			continue
		}
		data, err := d.PullSnoopLog()
		if err != nil {
			fail(err)
		}
		path := filepath.Join(*out, fmt.Sprintf("%s_%s.btsnoop", *scenario, name))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d records, %d bytes)\n", path, d.Snoop.Len(), len(data))
	}
	for name, d := range map[string]*device.Device{"M": tb.M, "C": tb.C, "A": tb.A} {
		if d.Host.Bonds().Len() == 0 {
			continue
		}
		path := filepath.Join(*out, fmt.Sprintf("%s_%s_bt_config.conf", *scenario, name))
		if err := d.Host.Bonds().SaveConfigFile(path); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d bonds)\n", path, d.Host.Bonds().Len())
	}
	if tb.C.USB != nil && len(tb.C.USB.Raw()) > 0 {
		path := filepath.Join(*out, fmt.Sprintf("%s_C.usbraw", *scenario))
		if err := os.WriteFile(path, tb.C.USB.Raw(), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(tb.C.USB.Raw()))
	}
}

// runRepeated runs the scenario as a deterministic campaign: one
// hermetic testbed per trial seeded from the trial index, channel
// faults retried like the degraded-channel sweeps, and the engine's
// progress telemetry (trials/sec, retry count, ETA) reported live on
// stderr — the operator's view into a long sweep that single-run btsim
// never had. Capture files are not written; the output is the outcome
// tally.
func runRepeated(def *scenarioDef, plan faults.Plan, seed int64, n, workers int) error {
	if def.trial == nil {
		return fmt.Errorf("-repeat does not support scenario %q", def.name)
	}
	domain := "btsim/" + def.name
	world := func(a campaign.Attempt, opts core.TestbedOptions) (*core.Testbed, error) {
		// Each trial derives its world from (seed, scenario, trial,
		// attempt) so the sweep is bit-identical at any worker count.
		s := campaign.DeriveSeed(seed, campaign.AttemptDomain(domain, a.Attempt), a.Trial)
		return core.NewTestbed(s, opts)
	}
	trial := def.trial(world, plan)

	p := &campaign.Progress{}
	stop := p.Report(os.Stderr, 500*time.Millisecond)
	pol := campaign.RetryPolicy{MaxAttempts: 3, Retryable: core.IsChannelFault}
	res, err := campaign.RunRetry(context.Background(), n, campaign.Config{Workers: workers, Progress: p}, pol, trial)
	stop()
	if err != nil && !core.IsChannelFault(err) {
		return err
	}
	ok := 0
	var attempts int
	for _, r := range res {
		if r.Err == nil && r.Value {
			ok++
		}
		attempts += r.Attempts
	}
	s := p.Snapshot()
	fmt.Printf("%s x %d: %d/%d succeeded, %.2f mean attempts, %.1f trials/s, trial p50 %s p99 %s\n",
		def.name, n, ok, n, float64(attempts)/float64(n), s.TrialsPerSec,
		time.Duration(s.Latency.P50US*1e3).Round(time.Microsecond),
		time.Duration(s.Latency.P99US*1e3).Round(time.Microsecond))
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "btsim:", err)
	os.Exit(1)
}
