// Command btsim runs ad-hoc piconet scenarios in the simulator and writes
// the resulting HCI captures to disk: a btsnoop file per snoop-capable
// device and a raw URB stream for sniffed USB transports. The files are
// bit-compatible with the real formats (cmd/hcidump and Wireshark's
// btsnoop reader can open the .btsnoop outputs).
//
//	btsim -scenario pair -o captures/
//	btsim -scenario bond-reconnect -o captures/
//	btsim -scenario extraction -o captures/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/device"
)

func main() {
	var (
		scenario = flag.String("scenario", "pair", "scenario: pair, bond-reconnect, extraction, pageblock")
		out      = flag.String("o", ".", "output directory for capture files")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}

	tb, err := core.NewTestbed(*seed, core.TestbedOptions{
		ClientPlatform:   device.GalaxyS21Android11,
		ClientUSBSniffer: false,
		Bond:             *scenario != "pair",
	})
	if err != nil {
		fail(err)
	}

	switch *scenario {
	case "pair":
		tb.MUser.ExpectPairing(tb.C.Addr())
		tb.M.Host.Pair(tb.C.Addr(), func(err error) {
			if err != nil {
				fail(fmt.Errorf("pairing failed: %w", err))
			}
		})
		tb.Sched.RunFor(30 * time.Second)
		fmt.Printf("paired; link key %s\n", tb.M.Host.Bonds().Get(tb.C.Addr()).Key)

	case "bond-reconnect":
		tb.M.Host.Pair(tb.C.Addr(), func(err error) {
			if err != nil {
				fail(fmt.Errorf("reconnect failed: %w", err))
			}
		})
		tb.Sched.RunFor(30 * time.Second)
		fmt.Printf("reconnected with stored key %s\n", tb.BondKey)

	case "extraction":
		rep, err := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
			Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: core.ChannelHCISnoop,
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("extracted %s (client disconnect: %s)\n", rep.Key, rep.DisconnectReason)

	case "pageblock":
		rep := core.RunPageBlocking(tb.Sched, core.PageBlockingConfig{
			Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
			UsePLOC: true, RunInquiry: true,
		})
		fmt.Printf("page blocking MITM established: %v\n", rep.MITMEstablished)

	default:
		fail(fmt.Errorf("unknown scenario %q", *scenario))
	}

	for name, d := range map[string]*device.Device{"M": tb.M, "C": tb.C, "A": tb.A} {
		if d.Snoop == nil || d.Snoop.Len() == 0 {
			continue
		}
		data, err := d.PullSnoopLog()
		if err != nil {
			fail(err)
		}
		path := filepath.Join(*out, fmt.Sprintf("%s_%s.btsnoop", *scenario, name))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d records, %d bytes)\n", path, d.Snoop.Len(), len(data))
	}
	for name, d := range map[string]*device.Device{"M": tb.M, "C": tb.C, "A": tb.A} {
		if d.Host.Bonds().Len() == 0 {
			continue
		}
		path := filepath.Join(*out, fmt.Sprintf("%s_%s_bt_config.conf", *scenario, name))
		if err := d.Host.Bonds().SaveConfigFile(path); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d bonds)\n", path, d.Host.Bonds().Len())
	}
	if tb.C.USB != nil && len(tb.C.USB.Raw()) > 0 {
		path := filepath.Join(*out, fmt.Sprintf("%s_C.usbraw", *scenario))
		if err := os.WriteFile(path, tb.C.USB.Raw(), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(tb.C.USB.Raw()))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "btsim:", err)
	os.Exit(1)
}
