package main

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faults"
)

// trialFn is one campaign trial body: outcome plus a retryable channel
// fault or a terminal error.
type trialFn = func(context.Context, campaign.Attempt) (bool, error)

// worldFn builds a hermetic testbed for one campaign attempt.
type worldFn = func(a campaign.Attempt, opts core.TestbedOptions) (*core.Testbed, error)

// printedPasskey is the fixed label value the passkey scenarios pin on
// the accessory's display side.
const printedPasskey uint32 = 428571

// scenarioDef is one btsim scenario. The registry below is the single
// source of truth for the -scenario flag: the help text, the
// unknown-name error, single-capture runs, and -repeat campaigns all
// derive from it.
type scenarioDef struct {
	name    string
	summary string
	// aliasFor names the scenario that actually runs; empty for a real
	// scenario. defaultPlan supplies the alias's canned fault plan when
	// the user passed no -faults.
	aliasFor    string
	defaultPlan func() faults.Plan
	// options builds the single-run testbed options.
	options func(plan faults.Plan) core.TestbedOptions
	// run executes the scenario against a fresh testbed, printing its
	// one-line outcome. Attachments that must precede traffic (air
	// sniffers) happen here: run is called before the scheduler moves.
	run func(tb *core.Testbed) error
	// trial is the -repeat campaign body; nil means the scenario does
	// not support -repeat.
	trial func(world worldFn, plan faults.Plan) trialFn
}

// scenarios is the registry, in help-text order.
var scenarios = []scenarioDef{
	{
		name:    "pair",
		summary: "fresh SSP pairing between phone and accessory",
		options: func(plan faults.Plan) core.TestbedOptions {
			return core.TestbedOptions{ClientPlatform: device.GalaxyS21Android11, Faults: plan}
		},
		run: func(tb *core.Testbed) error {
			pairErr := fmt.Errorf("pairing never completed")
			tb.MUser.ExpectPairing(tb.C.Addr())
			tb.M.Host.Pair(tb.C.Addr(), func(err error) { pairErr = err })
			tb.Sched.RunFor(30 * time.Second)
			if pairErr != nil {
				return fmt.Errorf("pairing failed: %w", pairErr)
			}
			fmt.Printf("paired; link key %s\n", tb.M.Host.Bonds().Get(tb.C.Addr()).Key)
			return nil
		},
		trial: func(world worldFn, plan faults.Plan) trialFn {
			return func(_ context.Context, a campaign.Attempt) (bool, error) {
				// The setup bond IS the pairing under test; a world that
				// fails to build lost its pairing to the channel.
				_, err := world(a, core.TestbedOptions{
					ClientPlatform: device.GalaxyS21Android11,
					Bond:           true, Faults: plan, FaultsDuringSetup: true,
				})
				return err == nil, nil
			}
		},
	},
	{
		name:    "bond-reconnect",
		summary: "bonded reconnect with the stored link key",
		options: func(plan faults.Plan) core.TestbedOptions {
			return core.TestbedOptions{ClientPlatform: device.GalaxyS21Android11, Bond: true, Faults: plan}
		},
		run: func(tb *core.Testbed) error {
			reconnectErr := fmt.Errorf("reconnect never completed")
			tb.M.Host.Pair(tb.C.Addr(), func(err error) { reconnectErr = err })
			tb.Sched.RunFor(30 * time.Second)
			if reconnectErr != nil {
				return fmt.Errorf("reconnect failed: %w", reconnectErr)
			}
			fmt.Printf("reconnected with stored key %s\n", tb.BondKey)
			return nil
		},
		trial: func(world worldFn, plan faults.Plan) trialFn {
			return func(_ context.Context, a campaign.Attempt) (bool, error) {
				tb, err := world(a, core.TestbedOptions{
					ClientPlatform: device.GalaxyS21Android11, Bond: true, Faults: plan,
				})
				if err != nil {
					return false, err
				}
				reconnectErr := fmt.Errorf("reconnect never completed")
				tb.M.Host.Pair(tb.C.Addr(), func(err error) { reconnectErr = err })
				tb.Sched.RunFor(30 * time.Second)
				return reconnectErr == nil, nil
			}
		},
	},
	{
		name:    "extraction",
		summary: "link key extraction from the client's HCI snoop channel",
		options: func(plan faults.Plan) core.TestbedOptions {
			return core.TestbedOptions{ClientPlatform: device.GalaxyS21Android11, Bond: true, Faults: plan}
		},
		run: func(tb *core.Testbed) error {
			rep, err := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
				Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: core.ChannelHCISnoop,
			})
			if err != nil {
				return err
			}
			fmt.Printf("extracted %s (client disconnect: %s)\n", rep.Key, rep.DisconnectReason)
			return nil
		},
		trial: func(world worldFn, plan faults.Plan) trialFn {
			return func(_ context.Context, a campaign.Attempt) (bool, error) {
				tb, err := world(a, core.TestbedOptions{
					ClientPlatform: device.GalaxyS21Android11, Bond: true, Faults: plan,
				})
				if err != nil {
					return false, err
				}
				rep, err := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
					Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: core.ChannelHCISnoop,
				})
				if err != nil {
					if core.IsChannelFault(err) {
						return false, err // retryable
					}
					return false, nil // terminal outcome: a failed trial
				}
				return rep.Key == tb.BondKey, nil
			}
		},
	},
	{
		name:     "flaky-extraction",
		summary:  "extraction over a canned lossy/bursty channel with a mid-attack outage",
		aliasFor: "extraction",
		defaultPlan: func() faults.Plan {
			// The canned chaos plan: the attack rides it out via ARQ,
			// paging retries, and backoff.
			return faults.Plan{
				Drop:    0.05,
				Burst:   &faults.Burst{PEnter: 0.02, PExit: 0.25, BadLoss: 0.6},
				Outages: []faults.Outage{{Device: "C", Start: 2 * time.Second, Duration: 3 * time.Second}},
			}
		},
	},
	{
		name:    "pageblock",
		summary: "page blocking MITM against the victim phone",
		options: func(plan faults.Plan) core.TestbedOptions {
			return core.TestbedOptions{ClientPlatform: device.GalaxyS21Android11, Faults: plan}
		},
		run: func(tb *core.Testbed) error {
			rep := core.RunPageBlocking(tb.Sched, core.PageBlockingConfig{
				Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
				UsePLOC: true, RunInquiry: true,
			})
			fmt.Printf("page blocking MITM established: %v\n", rep.MITMEstablished)
			return nil
		},
		trial: func(world worldFn, plan faults.Plan) trialFn {
			return func(_ context.Context, a campaign.Attempt) (bool, error) {
				tb, err := world(a, core.TestbedOptions{Faults: plan})
				if err != nil {
					return false, err
				}
				rep := core.RunPageBlocking(tb.Sched, core.PageBlockingConfig{
					Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
					UsePLOC: true, RunInquiry: true,
				})
				return rep.MITMEstablished, nil
			}
		},
	},
	{
		name:    "stealtooth",
		summary: "silent automatic re-pairing of the bonded accessory (Stealtooth)",
		options: func(plan faults.Plan) core.TestbedOptions {
			// The accessory must carry its own snoop channel — it is the
			// victim whose capture matters here.
			return core.TestbedOptions{ClientPlatform: device.AndroidAutomotive, Bond: true, Faults: plan}
		},
		run: func(tb *core.Testbed) error {
			rep := core.RunStealtooth(tb.Sched, core.StealtoothConfig{
				Attacker: tb.A, Client: tb.C,
				VictimAddr: tb.M.Addr(), VictimCOD: tb.M.Platform.COD,
				OriginalKey: tb.BondKey,
			})
			fmt.Printf("stealtooth: re-paired=%v key-changed=%v client-prompts=%d\n",
				rep.RePaired, rep.KeyChanged, rep.ClientPrompts)
			return nil
		},
		trial: func(world worldFn, plan faults.Plan) trialFn {
			return func(_ context.Context, a campaign.Attempt) (bool, error) {
				tb, err := world(a, core.TestbedOptions{
					ClientPlatform: device.AndroidAutomotive, Bond: true, Faults: plan,
				})
				if err != nil {
					return false, err
				}
				rep := core.RunStealtooth(tb.Sched, core.StealtoothConfig{
					Attacker: tb.A, Client: tb.C,
					VictimAddr: tb.M.Addr(), VictimCOD: tb.M.Platform.COD,
					OriginalKey: tb.BondKey,
				})
				return rep.RePaired && rep.KeyChanged, nil
			}
		},
	},
	{
		name:    "happy-mitm",
		summary: "accepted-key UI blindness: silent bonded key replacement (Happy MitM)",
		options: func(plan faults.Plan) core.TestbedOptions {
			return core.TestbedOptions{
				ClientPlatform: device.GalaxyS21Android11, Bond: true,
				VictimSilentBondedRepair: true, Faults: plan,
			}
		},
		run: func(tb *core.Testbed) error {
			rep := core.RunHappyMitM(tb.Sched, core.HappyMitMConfig{
				Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
				OriginalKey: tb.BondKey,
			})
			fmt.Printf("happy-mitm: reconnected=%v key-replaced=%v attack-prompts=%d\n",
				rep.Reconnected, rep.KeyReplaced, rep.AttackPrompts)
			return nil
		},
		trial: func(world worldFn, plan faults.Plan) trialFn {
			return func(_ context.Context, a campaign.Attempt) (bool, error) {
				tb, err := world(a, core.TestbedOptions{
					ClientPlatform: device.GalaxyS21Android11, Bond: true,
					VictimSilentBondedRepair: true, Faults: plan,
				})
				if err != nil {
					return false, err
				}
				rep := core.RunHappyMitM(tb.Sched, core.HappyMitMConfig{
					Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
					OriginalKey: tb.BondKey,
				})
				return rep.KeyReplaced, nil
			}
		},
	},
	{
		name:    "blurtooth",
		summary: "cross-transport CTKD downgrade of the derived LE key (BLURtooth)",
		options: func(plan faults.Plan) core.TestbedOptions {
			return core.TestbedOptions{
				ClientPlatform: device.GalaxyS21Android11,
				VictimCTKD:     true, VictimSilentBondedRepair: true, Faults: plan,
			}
		},
		run: func(tb *core.Testbed) error {
			rep := core.RunBLURtooth(tb.Sched, core.BLURtoothConfig{
				Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
			})
			fmt.Printf("blurtooth: legit-paired=%v ltk-was-authenticated=%v downgraded=%v\n",
				rep.LegitPaired, rep.LTKWasAuthenticated, rep.Downgraded)
			return nil
		},
		trial: func(world worldFn, plan faults.Plan) trialFn {
			return func(_ context.Context, a campaign.Attempt) (bool, error) {
				tb, err := world(a, core.TestbedOptions{
					ClientPlatform: device.GalaxyS21Android11,
					VictimCTKD:     true, VictimSilentBondedRepair: true, Faults: plan,
				})
				if err != nil {
					return false, err
				}
				rep := core.RunBLURtooth(tb.Sched, core.BLURtoothConfig{
					Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
				})
				return rep.Downgraded, nil
			}
		},
	},
	{
		name:    "oob-mitm",
		summary: "tampered-NFC-tag MITM over Out of Band association",
		options: func(plan faults.Plan) core.TestbedOptions {
			return core.TestbedOptions{Faults: plan}
		},
		run: func(tb *core.Testbed) error {
			rep := core.RunOOBMITM(tb.Sched, core.OOBMITMConfig{
				Attacker: tb.A, Client: tb.C, Victim: tb.M,
			})
			fmt.Printf("oob-mitm: payloads-installed=%v mitm-established=%v key-authenticated=%v\n",
				rep.PayloadsInstalled, rep.MITMEstablished, rep.KeyAuthenticated)
			return nil
		},
		trial: func(world worldFn, plan faults.Plan) trialFn {
			return func(_ context.Context, a campaign.Attempt) (bool, error) {
				tb, err := world(a, core.TestbedOptions{Faults: plan})
				if err != nil {
					return false, err
				}
				rep := core.RunOOBMITM(tb.Sched, core.OOBMITMConfig{
					Attacker: tb.A, Client: tb.C, Victim: tb.M,
				})
				return rep.MITMEstablished, nil
			}
		},
	},
	{
		name:    "passkey-sniff",
		summary: "passive passkey recovery from one sniffed session, then impersonation",
		options: func(plan faults.Plan) core.TestbedOptions {
			printed := printedPasskey
			return core.TestbedOptions{ClientFixedPasskey: &printed, Faults: plan}
		},
		run:   runPasskeyScenario,
		trial: passkeyTrial(false),
	},
	{
		name:    "passkey-guard",
		summary: "same sniff against the enhanced passkey protocol (mitigation)",
		options: func(plan faults.Plan) core.TestbedOptions {
			printed := printedPasskey
			return core.TestbedOptions{ClientFixedPasskey: &printed, EnhancedPasskey: true, Faults: plan}
		},
		run:   runPasskeyScenario,
		trial: passkeyTrial(true),
	},
}

// runPasskeyScenario is shared by passkey-sniff and passkey-guard; the
// testbed options (EnhancedPasskey) are the only difference.
func runPasskeyScenario(tb *core.Testbed) error {
	sniffer := core.NewAirSniffer(tb.Medium)
	printed := printedPasskey
	tb.MUser.TypedPasskey = &printed
	rep := core.RunPasskeySniff(tb.Sched, core.PasskeySniffConfig{
		Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
		Sniffer: sniffer, PrintedPasskey: printed,
	})
	fmt.Printf("passkey: legit-paired=%v recovered=%v recovery-correct=%v impersonated=%v\n",
		rep.LegitPaired, rep.Recovered, rep.RecoveryCorrect, rep.Impersonated)
	return nil
}

func passkeyTrial(enhanced bool) func(world worldFn, plan faults.Plan) trialFn {
	return func(world worldFn, plan faults.Plan) trialFn {
		return func(_ context.Context, a campaign.Attempt) (bool, error) {
			printed := printedPasskey
			tb, err := world(a, core.TestbedOptions{
				ClientFixedPasskey: &printed, EnhancedPasskey: enhanced, Faults: plan,
			})
			if err != nil {
				return false, err
			}
			sniffer := core.NewAirSniffer(tb.Medium)
			tb.MUser.TypedPasskey = &printed
			rep := core.RunPasskeySniff(tb.Sched, core.PasskeySniffConfig{
				Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
				Sniffer: sniffer, PrintedPasskey: printed,
			})
			// "Success" is always the attack's success; for passkey-guard a
			// healthy sweep reports 0/N.
			return rep.Impersonated, nil
		}
	}
}

// scenarioNames renders the registry's names in order, for help text and
// the unknown-scenario error.
func scenarioNames() string {
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		names[i] = s.name
	}
	return strings.Join(names, ", ")
}

// findScenario resolves a -scenario value against the registry; nil when
// unknown.
func findScenario(name string) *scenarioDef {
	for i := range scenarios {
		if scenarios[i].name == name {
			return &scenarios[i]
		}
	}
	return nil
}
