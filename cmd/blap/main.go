// Command blap runs the BLAP attacks end-to-end inside the simulator and
// prints detailed reports.
//
//	blap extract [-channel snoop|usb] [-client <platform>] [-seed N]
//	blap impersonate [-seed N]
//	blap pageblock [-victim <platform>] [-no-ploc] [-seed N]
//	blap baseline [-trials N] [-seed N]
//	blap platforms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bt"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/hci"
	"repro/internal/host"
	"repro/internal/radio"
	"repro/internal/sim"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: blap <command> [flags]

commands:
  extract      run the link key extraction attack (paper §IV, Fig. 5)
  impersonate  extract a key, then impersonate the client to the victim (§VI-B1)
  pageblock    run the page blocking attack + SSP downgrade (§V, Fig. 6b)
  baseline     measure the MITM page race without page blocking (Table II)
  eavesdrop    sniff an encrypted session, steal the key, decrypt the past
  pincrack     sniff a legacy PIN pairing and brute-force the PIN offline
  campaign     the full persistent-impersonation campaign (paper paragraph III-B)
  platforms    list the simulated device catalog
`)
	os.Exit(2)
}

// platformByName resolves a catalog platform from a short name.
func platformByName(name string) (device.Platform, bool) {
	all := map[string]device.Platform{
		"nexus5x-android6":   device.Nexus5XAndroid6,
		"nexus5x":            device.Nexus5XAndroid8,
		"lgv50":              device.LGV50Android9,
		"galaxys8":           device.GalaxyS8Android9,
		"pixel2xl":           device.Pixel2XLAndroid11,
		"lgvelvet":           device.LGVELVETAndroid11,
		"galaxys21":          device.GalaxyS21Android11,
		"iphonexs":           device.IPhoneXsIOS14,
		"windows-ms":         device.Windows10MSDriver,
		"windows-csr":        device.Windows10CSRHarmony,
		"ubuntu":             device.Ubuntu2004BlueZ,
		"handsfree":          device.HandsFreeKit,
		"headset":            device.Headset,
		"android-automotive": device.AndroidAutomotive,
	}
	p, ok := all[name]
	return p, ok
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "extract":
		runExtract(args, false)
	case "impersonate":
		runExtract(args, true)
	case "pageblock":
		runPageBlock(args)
	case "baseline":
		runBaseline(args)
	case "eavesdrop":
		runEavesdrop(args)
	case "pincrack":
		runPINCrack(args)
	case "campaign":
		runCampaign(args)
	case "platforms":
		listPlatforms()
	default:
		usage()
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "blap:", err)
	os.Exit(1)
}

func runExtract(args []string, alsoImpersonate bool) {
	fs := flag.NewFlagSet("extract", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "random seed")
	channel := fs.String("channel", "snoop", "extraction channel: snoop or usb")
	client := fs.String("client", "galaxys21", "client (C) platform")
	_ = fs.Parse(args)

	p, ok := platformByName(*client)
	if !ok {
		fail(fmt.Errorf("unknown platform %q (see 'blap platforms')", *client))
	}
	ch := core.ChannelHCISnoop
	if *channel == "usb" {
		ch = core.ChannelUSBSniff
	}
	tb, err := core.NewTestbed(*seed, core.TestbedOptions{
		ClientPlatform:   p,
		ClientUSBSniffer: ch == core.ChannelUSBSniff,
		Bond:             true,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("world: M=%s\n       C=%s\n       A=%s\n", tb.M, tb.C, tb.A)
	fmt.Printf("setup: M and C bonded with link key %s\n\n", tb.BondKey)

	rep, err := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
		Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: ch,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("link key extraction via %s:\n", rep.Channel)
	fmt.Printf("  extracted key:      %s\n", rep.Key)
	fmt.Printf("  matches bond:       %v\n", rep.Key == tb.BondKey)
	fmt.Printf("  capture size:       %d bytes (%d key occurrences)\n", rep.CaptureBytes, rep.KeysInCapture)
	fmt.Printf("  client disconnect:  %s\n", rep.DisconnectReason)
	fmt.Printf("  client kept bond:   %v\n", rep.ClientKeptBond)
	fmt.Printf("  virtual time:       %v\n", rep.Elapsed.Round(time.Millisecond))

	if !alsoImpersonate {
		return
	}
	fmt.Println()
	imp := core.RunImpersonation(tb.Sched, core.ImpersonationConfig{
		Attacker: tb.A, Victim: tb.M, ClientAddr: tb.C.Addr(), Key: rep.Key,
	})
	fmt.Println("impersonation (PAN tethering validation):")
	fmt.Printf("  fake bt_config.conf:\n")
	for _, line := range splitLines(imp.FakeBondConfig) {
		fmt.Printf("    %s\n", line)
	}
	fmt.Printf("  LMP auth succeeded: %v\n", imp.AuthSucceeded)
	fmt.Printf("  new pairing needed: %v\n", imp.NewPairingTriggered)
	fmt.Printf("  profile connected:  %v\n", imp.Success)
	if imp.Err != nil {
		fmt.Printf("  error:              %v\n", imp.Err)
	}
}

func runPageBlock(args []string) {
	fs := flag.NewFlagSet("pageblock", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "random seed")
	victim := fs.String("victim", "lgvelvet", "victim (M) platform")
	noPLOC := fs.Bool("no-ploc", false, "run the unpatched-attacker strawman instead of PLOC")
	_ = fs.Parse(args)

	p, ok := platformByName(*victim)
	if !ok {
		fail(fmt.Errorf("unknown platform %q", *victim))
	}
	tb, err := core.NewTestbed(*seed, core.TestbedOptions{VictimPlatform: p})
	if err != nil {
		fail(err)
	}
	fmt.Printf("world: M=%s\n       C=%s\n       A=%s\n\n", tb.M, tb.C, tb.A)
	rep := core.RunPageBlocking(tb.Sched, core.PageBlockingConfig{
		Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
		UsePLOC:    !*noPLOC,
		RunInquiry: true,
	})
	fmt.Println("page blocking attack:")
	fmt.Printf("  MITM established:        %v\n", rep.MITMEstablished)
	fmt.Printf("  paired with real client: %v\n", rep.PairedWithClient)
	fmt.Printf("  downgraded to JustWorks: %v\n", rep.DowngradedToJustWorks)
	fmt.Printf("  victim conn responder:   %v\n", rep.VictimWasConnectionResponder)
	fmt.Printf("  victim pairing initiator:%v\n", rep.VictimWasPairingInitiator)
	if rep.PairErr != nil {
		fmt.Printf("  victim pairing error:    %v\n", rep.PairErr)
	}
	for _, pr := range rep.VictimPrompts {
		fmt.Printf("  victim dialog at %v: %s peer=%s expected=%v accepted=%v\n",
			pr.At.Round(time.Millisecond), pr.Kind, pr.Peer, pr.Expected, pr.Accepted)
	}
	verdict := core.CheckPairingRoles(tb.M.Host.Connection(tb.C.Addr()))
	fmt.Printf("  §VII-B detector:         suspicious=%v (%s)\n", verdict.Suspicious, verdict.Reason)
}

func runBaseline(args []string) {
	fs := flag.NewFlagSet("baseline", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "base seed")
	trials := fs.Int("trials", 100, "number of attempts")
	victim := fs.String("victim", "lgvelvet", "victim (M) platform")
	_ = fs.Parse(args)

	p, ok := platformByName(*victim)
	if !ok {
		fail(fmt.Errorf("unknown platform %q", *victim))
	}
	wins := 0
	for i := 0; i < *trials; i++ {
		tb, err := core.NewTestbed(*seed+int64(i), core.TestbedOptions{VictimPlatform: p})
		if err != nil {
			fail(err)
		}
		rep := core.RunBaselineMITM(tb.Sched, core.BaselineMITMConfig{
			Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
		})
		if rep.MITMEstablished {
			wins++
		}
	}
	fmt.Printf("baseline MITM (no page blocking) against %s: %d/%d = %.0f%%\n",
		p.Model, wins, *trials, 100*float64(wins)/float64(*trials))
}

func runEavesdrop(args []string) {
	fs := flag.NewFlagSet("eavesdrop", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "random seed")
	_ = fs.Parse(args)

	tb, err := core.NewTestbed(*seed, core.TestbedOptions{
		ClientPlatform: device.GalaxyS21Android11,
		Bond:           true,
	})
	if err != nil {
		fail(err)
	}
	sniffer := core.NewAirSniffer(tb.Medium)
	secret := []byte("PBAP entry: +82-10-0000-0000")
	tb.M.Host.Pair(tb.C.Addr(), func(err error) {
		if err != nil {
			return
		}
		conn := tb.M.Host.Connection(tb.C.Addr())
		tb.M.Host.Encrypt(conn, func(err error) {
			if err == nil {
				tb.M.Host.SendData(conn, secret)
			}
		})
	})
	tb.Sched.RunFor(10 * time.Second)
	tb.M.Host.Disconnect(tb.C.Addr())
	tb.Sched.RunFor(time.Second)
	fmt.Printf("sniffed %d frames (%d encrypted payloads)\n", sniffer.Len(), sniffer.EncryptedFrames())

	rep, err := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
		Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: core.ChannelHCISnoop,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("extracted key: %s\n", rep.Key)
	for _, r := range sniffer.DecryptWithKey(rep.Key) {
		if r.WasEncrypted && len(r.Data) > 6 {
			fmt.Printf("decrypted past payload (%s -> %s): %q\n", r.From, r.To, r.Data[6:])
		}
	}
}

func runPINCrack(args []string) {
	fs := flag.NewFlagSet("pincrack", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "random seed")
	pin := fs.String("pin", "4603", "accessory PIN (4 digits)")
	_ = fs.Parse(args)

	s := sim.NewScheduler(*seed)
	med := radio.NewMedium(s, radio.DefaultConfig())
	sniffer := core.NewAirSniffer(med)
	mk := func(addr bt.BDADDR, name string) *host.Host {
		tr := hci.NewTransport(s, 100*time.Microsecond)
		controller.New(s, med, tr, controller.Config{Addr: addr, COD: bt.CODHeadset, Name: name})
		h := host.New(s, tr, host.Config{
			Name: name, Version: bt.V2_1, IOCap: bt.NoInputNoOutput,
			LegacyPairing: true, PINCode: *pin,
			AcceptIncoming: true, Discoverable: true, Connectable: true,
		}, host.Hooks{})
		h.Start()
		return h
	}
	a := mk(core.AddrM, "phone")
	mk(core.AddrC, "headset")
	s.Run(0)
	a.Pair(core.AddrC, func(err error) {
		if err != nil {
			fail(fmt.Errorf("legacy pairing failed: %w", err))
		}
	})
	s.RunFor(10 * time.Second)
	fmt.Printf("sniffed a legacy pairing (%d frames)\n", sniffer.Len())

	res, err := sniffer.CrackPIN(core.FourDigitPINs)
	if err != nil {
		fail(err)
	}
	fmt.Printf("cracked PIN %q after %d candidates; recovered link key %s\n", res.PIN, res.Tried, res.LinkKey)
	fmt.Printf("matches the real bond: %v\n", res.LinkKey == a.Bonds().Get(core.AddrC).Key)
}

func runCampaign(args []string) {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "random seed")
	_ = fs.Parse(args)

	tb, err := core.NewTestbed(*seed, core.TestbedOptions{
		ClientPlatform: device.GalaxyS21Android11,
		Bond:           true,
	})
	if err != nil {
		fail(err)
	}
	phonebook := []byte("BEGIN:VCARD N:Victim;User TEL:+82-10-5555-5555 END:VCARD")
	tb.M.Host.ProfileData[host.UUIDPBAP] = phonebook
	tb.M.Host.RegisterService(host.UUIDPBAP)
	promptsBefore := len(tb.MUser.Prompts())

	fmt.Println("phase 1: harvest the key from the soft target C")
	ext, err := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
		Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: core.ChannelHCISnoop,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("  key %s (C disconnected with %s, bond intact: %v)\n\n",
		ext.Key, ext.DisconnectReason, ext.ClientKeptBond)

	fmt.Println("phase 2: impersonate C, pull M's phone book over PBAP")
	tb.A.SpoofIdentity(tb.C.Addr(), tb.C.Platform.COD)
	hooks := tb.A.Host.Hooks()
	hooks.IgnoreLinkKeyRequest = false
	tb.A.Host.SetHooks(hooks)
	tb.A.Host.Bonds().Put(host.Bond{Addr: tb.M.Addr(), Key: ext.Key})

	exfiltrate := func(round int) {
		tb.A.Host.ConnectProfile(tb.M.Addr(), host.UUIDPBAP, func(err error) {
			if err != nil {
				fail(err)
			}
			conn := tb.A.Host.Connection(tb.M.Addr())
			tb.A.Host.PullData(conn, host.UUIDPBAP, func(data []byte, err error) {
				if err != nil {
					fail(err)
				}
				fmt.Printf("  round %d: exfiltrated %d bytes: %q\n", round, len(data), data)
			})
		})
		tb.Sched.RunFor(60 * time.Second)
	}
	exfiltrate(1)

	fmt.Println("\nphase 3: persistence — disconnect, come back, pull again")
	tb.A.Host.Disconnect(tb.M.Addr())
	tb.Sched.RunFor(time.Second)
	exfiltrate(2)

	fmt.Printf("\ndialogs shown to the victim during the campaign: %d\n",
		len(tb.MUser.Prompts())-promptsBefore)
}

func listPlatforms() {
	fmt.Println("victim / client platforms (Table I & II):")
	names := []string{
		"nexus5x-android6", "nexus5x", "lgv50", "galaxys8", "pixel2xl",
		"lgvelvet", "galaxys21", "iphonexs", "windows-ms", "windows-csr",
		"ubuntu", "handsfree", "headset", "android-automotive",
	}
	for _, n := range names {
		p, _ := platformByName(n)
		fmt.Printf("  %-19s %-28s %-12s %-10s snoop=%v su=%v\n",
			n, p.Model, p.OS, p.Version, p.SupportsHCISnoop, p.SnoopRequiresSU)
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
