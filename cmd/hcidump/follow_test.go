package main

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/forensics"
	"repro/internal/snoop"
)

// TestFollowGrowingFile pins the tail contract: a writer appends a
// capture in small slices with pauses, and followFile must keep reading
// across the EOFs in between, end only after the idle window, and
// produce the exact batch report.
func TestFollowGrowingFile(t *testing.T) {
	var buf bytes.Buffer
	if _, err := snoop.Synthesize(&buf, snoop.SynthConfig{Records: 3000, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	recs, err := snoop.ReadAll(data)
	if err != nil {
		t.Fatal(err)
	}
	want := forensics.Analyze(recs)
	if len(want.Findings) == 0 {
		t.Fatal("fixture has no findings")
	}

	path := filepath.Join(t.TempDir(), "growing.btsnoop")
	w, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer w.Close()
		// Deliberately misaligned slices so the reader repeatedly hits
		// EOF mid-record and must wait for the writer.
		const chunk = 1017
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			if _, err := w.Write(data[off:end]); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out strings.Builder
	report, _, scanErr := followFile(f, 500*time.Millisecond, 100*time.Millisecond, &out, nil, nil)
	if scanErr != nil {
		t.Fatalf("follow ended with scan error: %v", scanErr)
	}
	if !reflect.DeepEqual(report, want) {
		t.Fatalf("follow report diverges from batch:\nfollow: %+v\nbatch:  %+v", report, want)
	}
	lines := strings.Count(out.String(), "\n")
	if lines != len(want.Findings) {
		t.Fatalf("printed %d live finding lines, want %d", lines, len(want.Findings))
	}
}

// TestFollowIdleTruncated checks the other ending: the writer dies
// mid-record and never comes back, so the tail must give up after the
// idle window and report the truncation instead of hanging forever.
func TestFollowIdleTruncated(t *testing.T) {
	var buf bytes.Buffer
	if _, err := snoop.Synthesize(&buf, snoop.SynthConfig{Records: 50, Seed: 12}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	path := filepath.Join(t.TempDir(), "dead.btsnoop")
	if err := os.WriteFile(path, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	start := time.Now()
	report, next, scanErr := followFile(f, 200*time.Millisecond, 50*time.Millisecond, io.Discard, nil, nil)
	if next != nil {
		t.Fatal("a truncated tail must not produce a resumable checkpoint")
	}
	if scanErr == nil {
		t.Fatal("truncated tail reported a clean end")
	}
	if !errors.Is(scanErr, snoop.ErrTruncated) {
		t.Fatalf("scan error %v, want ErrTruncated", scanErr)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("follow took %v to give up on an idle file", elapsed)
	}
	if report == nil || len(report.Sessions) == 0 {
		t.Fatal("records before the truncation were not analyzed")
	}
}

// TestFollowCheckpointResume pins the restartable-follow contract: a
// follow that ends cleanly mid-capture hands back a checkpoint, and a
// second follow resumed from that checkpoint (sidecar round-trip
// included) over the rest of the file yields a cumulative report equal
// to one uninterrupted batch analysis — findings straddling the restart
// included, none double-reported.
func TestFollowCheckpointResume(t *testing.T) {
	var buf bytes.Buffer
	if _, err := snoop.Synthesize(&buf, snoop.SynthConfig{Records: 3000, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	recs, err := snoop.ReadAll(data)
	if err != nil {
		t.Fatal(err)
	}
	want := forensics.Analyze(recs)
	if len(want.Findings) < 2 {
		t.Fatal("fixture needs at least two findings to straddle a restart")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "restart.btsnoop")
	// First run sees only a misaligned prefix (mid-record cuts are the
	// truncated-tail case; a clean checkpoint needs a record boundary, so
	// back up to one via a quick scan).
	half := cleanBoundary(t, data, len(data)/2)
	if err := os.WriteFile(path, data[:half], 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var out1 strings.Builder
	_, ckp, scanErr := followFile(f, 100*time.Millisecond, 25*time.Millisecond, &out1, nil, nil)
	f.Close()
	if scanErr != nil {
		t.Fatalf("first follow ended with scan error: %v", scanErr)
	}
	if ckp == nil {
		t.Fatal("clean first follow produced no checkpoint")
	}
	if ckp.offset != int64(half) {
		t.Fatalf("checkpoint offset %d, wrote %d bytes", ckp.offset, half)
	}

	// Sidecar round-trip, as main does between runs.
	side := filepath.Join(dir, "follow.ckp")
	if err := writeFollowCheckpoint(side, ckp); err != nil {
		t.Fatal(err)
	}
	ckp, err = readFollowCheckpoint(side)
	if err != nil {
		t.Fatal(err)
	}
	if ckp == nil {
		t.Fatal("sidecar vanished")
	}

	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err = os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Seek(ckp.offset, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	var out2 strings.Builder
	report, next, scanErr := followFile(f, 100*time.Millisecond, 25*time.Millisecond, &out2, nil, ckp)
	if scanErr != nil {
		t.Fatalf("resumed follow ended with scan error: %v", scanErr)
	}
	if next == nil || next.offset != int64(len(data)) {
		t.Fatalf("resumed follow checkpoint %+v, want offset %d", next, len(data))
	}
	if !reflect.DeepEqual(report, want) {
		t.Fatalf("cumulative resumed report diverges from batch:\nresumed: %+v\nbatch:   %+v", report, want)
	}
	// Live lines across both runs cover every finding exactly once.
	lines := strings.Count(out1.String(), "\n") + strings.Count(out2.String(), "\n")
	if lines != len(want.Findings) {
		t.Fatalf("printed %d live finding lines across the restart, want %d", lines, len(want.Findings))
	}
}

// cleanBoundary returns the largest record boundary <= want, so a
// prefix cut there parses cleanly.
func cleanBoundary(t *testing.T, data []byte, want int) int {
	t.Helper()
	sc := snoop.NewBatchScannerSize(bytes.NewReader(data), 64<<10)
	var b snoop.RecordBatch
	best := 0
	for sc.ScanBatch(&b) {
		if off := int(sc.Offset()); off <= want {
			best = off
			continue
		}
		break
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if best == 0 {
		t.Fatal("no record boundary before the cut point")
	}
	return best
}

// eofReader always reports EOF and counts how often it was asked.
type eofReader struct{ reads int }

func (r *eofReader) Read([]byte) (int, error) { r.reads++; return 0, io.EOF }

// TestTailBackoffIsCapped pins the polling shape: over a one-second idle
// window the tail must back off exponentially toward the cap — a handful
// of polls — instead of spinning at a fixed short interval.
func TestTailBackoffIsCapped(t *testing.T) {
	r := &eofReader{}
	tr := &tailReader{f: r, idle: time.Second, pollMin: 10 * time.Millisecond, pollMax: 250 * time.Millisecond}
	start := time.Now()
	n, err := tr.Read(make([]byte, 16))
	if n != 0 || !errors.Is(err, io.EOF) {
		t.Fatalf("idle tail must end in EOF, got n=%d err=%v", n, err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("gave up after %v, before the idle window", elapsed)
	}
	// 10+20+40+80+160+250+250+250 ms covers the window in ~8 polls; a
	// fixed 10 ms interval would need ~100. Leave slack for scheduling.
	if r.reads > 20 {
		t.Fatalf("tail polled %d times over a 1 s idle window — backoff not applied", r.reads)
	}
}

// TestTailIdleDeadlineIsSharp is the regression test for the backoff
// overshoot bug: the sleep must be clamped to the remaining idle budget,
// so a quiet file reports EOF within ~idle even when pollMax is huge.
// The broken reader slept a full unclamped backoff step past the
// deadline — with idle=320ms and pollMin=10ms the doubling sequence
// (10+20+40+80+160=310ms) left 10ms of budget and then slept another
// 320ms, reporting EOF at ~630ms instead of ~320ms.
func TestTailIdleDeadlineIsSharp(t *testing.T) {
	const idle = 320 * time.Millisecond
	tr := &tailReader{f: &eofReader{}, idle: idle, pollMin: 10 * time.Millisecond, pollMax: 5 * time.Second}
	start := time.Now()
	n, err := tr.Read(make([]byte, 16))
	elapsed := time.Since(start)
	if n != 0 || !errors.Is(err, io.EOF) {
		t.Fatalf("idle tail must end in EOF, got n=%d err=%v", n, err)
	}
	if elapsed < idle {
		t.Fatalf("gave up after %v, before the %v idle window", elapsed, idle)
	}
	if elapsed > idle+150*time.Millisecond {
		t.Fatalf("EOF took %v for a %v idle window — backoff sleep not clamped to the deadline", elapsed, idle)
	}
}
