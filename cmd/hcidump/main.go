// Command hcidump parses btsnoop capture files (RFC 1761, as written by
// Android's snoop log, bluez-hcidump, or this project's simulator) and
// renders them as a trace table. It can also scan a capture for plaintext
// link keys — the paper's extraction step — and run the forensic analyzer
// over it. Every btsnoop mode streams the capture in bounded memory;
// -analyze runs the block-scanning batch pipeline (snoop.BatchScanner /
// forensics.AnalyzeBatch), so multi-gigabyte dumps decode a few hundred
// KiB at a time.
//
//	hcidump capture.btsnoop
//	hcidump -keys capture.btsnoop
//	hcidump -hex capture.btsnoop
//	hcidump -analyze capture.btsnoop
//	hcidump -follow capture.btsnoop
//	hcidump -usb capture.usbraw
//
// Exit codes: 0 on success, 1 on error, 2 on usage; -analyze exits 3
// when the analyzer reports at least one finding, so scripted triage can
// distinguish "clean capture" from "attack signature present" without
// parsing the report text.
//
// -follow tails a capture another process is still appending to (the
// live Android btsnoop log): findings print the moment they complete,
// and once the file stops growing for -idle the final report renders
// with the same exit-3 contract as -analyze. The tail polls with capped
// exponential backoff — 10 ms after fresh bytes, doubling to -poll-max
// while the file is quiet — instead of a fixed interval. With
// -checkpoint the follow is restartable: on clean exit the scan
// position and full detector state are written to a versioned sidecar
// file, and the next -follow with the same sidecar resumes exactly
// there — findings that straddle the restart are still detected, and
// the final report is cumulative across runs.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/forensics"
	"repro/internal/snoop"
	"repro/internal/usbsniff"
)

// exitFindings is the -analyze exit code for a capture with findings.
const exitFindings = 3

func main() {
	var (
		keys    = flag.Bool("keys", false, "extract plaintext link keys")
		hex     = flag.Bool("hex", false, "print raw packet bytes per frame")
		usb     = flag.Bool("usb", false, "input is a raw sniffed USB stream, not btsnoop")
		analyze = flag.Bool("analyze", false, "run the forensic analyzer (attack signatures); exit 3 on findings")
		follow  = flag.Bool("follow", false, "tail a growing capture, printing findings live; exit 3 on findings once the file goes idle")
		idle    = flag.Duration("idle", 2*time.Second, "with -follow: stop once the file has not grown for this long")
		pollMax = flag.Duration("poll-max", 500*time.Millisecond, "with -follow: cap on the exponential poll backoff while the file is quiet")
		ckpPath = flag.String("checkpoint", "", "with -follow: resume scan position + detector state from this sidecar file if it exists, and rewrite it on clean exit")
		stats   = flag.Bool("stats", false, "print scan statistics to stderr: records/sec, bytes/sec, and (when analyzing) capture-time finding latency percentiles")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hcidump [-keys] [-hex] [-usb] [-analyze] [-follow [-idle d] [-checkpoint file]] [-stats] <capture>")
		os.Exit(2)
	}
	if *ckpPath != "" && !*follow {
		fmt.Fprintln(os.Stderr, "hcidump: -checkpoint needs -follow")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	defer f.Close()

	// A follow checkpoint repositions the capture file before any reader
	// wraps it, so the counting reader and scanner both start at the
	// resumed offset.
	var ckp *followCheckpoint
	if *follow && *ckpPath != "" {
		ckp, err = readFollowCheckpoint(*ckpPath)
		if err != nil {
			fail(err)
		}
		if ckp != nil {
			if _, err := f.Seek(ckp.offset, io.SeekStart); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "hcidump: resuming from checkpoint: offset %d, frame %d\n", ckp.offset, ckp.frame)
		}
	}

	// -stats routes btsnoop modes through a counting reader and a
	// per-record collector; a nil collector keeps the fast paths exact.
	var st *scanStats
	var in io.Reader = f
	if *stats && !*usb && !*keys {
		cr := &countingReader{r: f}
		st = newScanStats(cr)
		in = cr
	}

	if *follow {
		report, next, scanErr := followFile(in, *idle, *pollMax, os.Stdout, st, ckp)
		st.report(os.Stderr)
		fmt.Print(report.Render())
		if scanErr != nil {
			fail(fmt.Errorf("tailing %s: %w", flag.Arg(0), scanErr))
		}
		if *ckpPath != "" && next != nil {
			if err := writeFollowCheckpoint(*ckpPath, next); err != nil {
				fail(fmt.Errorf("writing checkpoint: %w", err))
			}
			fmt.Fprintf(os.Stderr, "hcidump: checkpoint written: offset %d, frame %d\n", next.offset, next.frame)
		}
		if len(report.Findings) > 0 {
			os.Exit(exitFindings)
		}
		return
	}

	if *usb {
		// The raw URB format has no streaming parser; USB captures are
		// the paper's small PC-side dumps, not multi-gigabyte snoop logs.
		data, err := io.ReadAll(f)
		if err != nil {
			fail(err)
		}
		dumpUSB(data, *keys)
		return
	}

	if *analyze {
		var report *forensics.Report
		if st != nil {
			// The stats collector needs to see every record and every
			// finding as it completes, so drive the batch scanner and
			// detector directly; the report is bit-identical to
			// AnalyzeBatch (and so to Analyze).
			sc := snoop.NewBatchScannerSize(in, 256<<10)
			det := forensics.NewDetector()
			var b snoop.RecordBatch
			for sc.ScanBatch(&b) {
				for i := range b.Records {
					st.record(b.Records[i])
				}
				det.PushBatch(b.Records)
				for _, ev := range det.Drain() {
					st.finding(ev)
				}
			}
			if err := sc.Err(); err != nil {
				fail(fmt.Errorf("forensics: parsing capture: %w", err))
			}
			report = det.Finish()
			st.report(os.Stderr)
		} else {
			var err error
			report, err = forensics.AnalyzeBatch(in)
			if err != nil {
				fail(err)
			}
		}
		fmt.Print(report.Render())
		if len(report.Findings) > 0 {
			os.Exit(exitFindings)
		}
		return
	}

	if *keys {
		hits, err := snoop.ScanLinkKeys(f)
		if err != nil {
			fail(fmt.Errorf("parsing %s: %w", flag.Arg(0), err))
		}
		if len(hits) == 0 {
			fmt.Println("no plaintext link keys found")
			return
		}
		for _, h := range hits {
			fmt.Printf("frame %-5d %-36s peer %s  key %s\n", h.Frame, h.Source, h.Peer, h.Key)
		}
		return
	}

	out := bufio.NewWriterSize(os.Stdout, 1<<16)
	fmt.Fprint(out, snoop.TableHeader())
	if st != nil {
		sc := snoop.NewScanner(in)
		for sc.Scan() {
			st.record(sc.Record())
			if row, ok := snoop.SummarizeRecord(sc.Frame(), sc.Record()); ok {
				fmt.Fprint(out, snoop.FormatRow(row))
			}
		}
		err = sc.Err()
		st.report(os.Stderr)
	} else {
		err = snoop.SummarizeStream(in, func(row snoop.FrameSummary) {
			fmt.Fprint(out, snoop.FormatRow(row))
		})
	}
	if err != nil {
		out.Flush()
		fail(fmt.Errorf("parsing %s: %w", flag.Arg(0), err))
	}
	if *hex {
		fmt.Fprintln(out)
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			out.Flush()
			fail(err)
		}
		sc := snoop.NewScanner(f)
		var hexbuf []byte
		for sc.Scan() {
			rec := sc.Record()
			dir := "TX"
			if rec.Received() {
				dir = "RX"
			}
			hexbuf = usbsniff.AppendHex(hexbuf[:0], rec.Data)
			fmt.Fprintf(out, "%-5d %s %s  %s\n", sc.Frame(), rec.Timestamp.Format("15:04:05.000000"), dir, hexbuf)
		}
		if err := sc.Err(); err != nil {
			out.Flush()
			fail(err)
		}
	}
	if err := out.Flush(); err != nil {
		fail(err)
	}
}

func dumpUSB(raw []byte, keys bool) {
	if keys {
		for _, k := range usbsniff.ExtractLinkKeys(raw) {
			fmt.Printf("hex offset %-8d peer %s  key %s\n", k.HexOffset, k.Peer, k.Key)
		}
		return
	}
	urbs, err := usbsniff.ParseURBs(raw)
	if err != nil {
		fail(err)
	}
	for i, u := range urbs {
		fmt.Printf("%-5d ep=0x%02x len=%-4d %s\n", i+1, u.Endpoint, len(u.Payload), usbsniff.BinaryToHex(u.Payload))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hcidump:", err)
	os.Exit(1)
}
