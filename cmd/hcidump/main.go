// Command hcidump parses btsnoop capture files (RFC 1761, as written by
// Android's snoop log, bluez-hcidump, or this project's simulator) and
// renders them as a trace table. It can also scan a capture for plaintext
// link keys — the paper's extraction step — and run the §VII-A filter to
// show what a mitigated log would retain.
//
//	hcidump capture.btsnoop
//	hcidump -keys capture.btsnoop
//	hcidump -hex capture.btsnoop
//	hcidump -analyze capture.btsnoop
//	hcidump -usb capture.usbraw
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/forensics"
	"repro/internal/snoop"
	"repro/internal/usbsniff"
)

func main() {
	var (
		keys    = flag.Bool("keys", false, "extract plaintext link keys")
		hex     = flag.Bool("hex", false, "print raw packet bytes per frame")
		usb     = flag.Bool("usb", false, "input is a raw sniffed USB stream, not btsnoop")
		analyze = flag.Bool("analyze", false, "run the forensic analyzer (attack signatures)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hcidump [-keys] [-hex] [-usb] <capture>")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}

	if *usb {
		dumpUSB(data, *keys)
		return
	}

	if *analyze {
		report, err := forensics.AnalyzeFile(data)
		if err != nil {
			fail(err)
		}
		fmt.Print(report.Render())
		return
	}

	records, err := snoop.ReadAll(data)
	if err != nil {
		fail(fmt.Errorf("parsing %s: %w", flag.Arg(0), err))
	}

	if *keys {
		hits := snoop.ExtractLinkKeys(records)
		if len(hits) == 0 {
			fmt.Println("no plaintext link keys found")
			return
		}
		for _, h := range hits {
			fmt.Printf("frame %-5d %-36s peer %s  key %s\n", h.Frame, h.Source, h.Peer, h.Key)
		}
		return
	}

	fmt.Print(snoop.RenderTable(snoop.Summarize(records)))
	if *hex {
		fmt.Println()
		for i, rec := range records {
			dir := "TX"
			if rec.Received() {
				dir = "RX"
			}
			fmt.Printf("%-5d %s %s  %s\n", i+1, rec.Timestamp.Format("15:04:05.000000"), dir, usbsniff.BinaryToHex(rec.Data))
		}
	}
}

func dumpUSB(raw []byte, keys bool) {
	if keys {
		for _, k := range usbsniff.ExtractLinkKeys(raw) {
			fmt.Printf("hex offset %-8d peer %s  key %s\n", k.HexOffset, k.Peer, k.Key)
		}
		return
	}
	urbs, err := usbsniff.ParseURBs(raw)
	if err != nil {
		fail(err)
	}
	for i, u := range urbs {
		fmt.Printf("%-5d ep=0x%02x len=%-4d %s\n", i+1, u.Endpoint, len(u.Payload), usbsniff.BinaryToHex(u.Payload))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hcidump:", err)
	os.Exit(1)
}
