package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/snoop"
)

// buildBinary compiles this command once per test binary invocation and
// returns its path; CLI contract tests exec the real binary so exit
// codes — part of the scripted-triage interface — are pinned for real.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hcidump")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestAnalyzeExitCodeContract pins the -analyze CLI contract on the
// batch pipeline: exit 3 when the capture has findings, exit 0 on a
// clean capture, and exit 1 with the death offset on a truncated one —
// the offset being the same one the incremental scanner reports.
func TestAnalyzeExitCodeContract(t *testing.T) {
	bin := buildBinary(t)
	dir := t.TempDir()

	var buf bytes.Buffer
	stats, err := snoop.Synthesize(&buf, snoop.SynthConfig{Records: 4000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if stats.KeyExposures == 0 {
		t.Fatal("fixture lost its findings")
	}
	data := buf.Bytes()
	capture := filepath.Join(dir, "attack.btsnoop")
	if err := os.WriteFile(capture, data, 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(args ...string) (int, string, string) {
		var stdout, stderr bytes.Buffer
		cmd := exec.Command(bin, args...)
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		err := cmd.Run()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("running %v: %v", args, err)
		}
		return code, stdout.String(), stderr.String()
	}

	code, out, _ := run("-analyze", capture)
	if code != exitFindings {
		t.Fatalf("findings capture exited %d, want %d\n%s", code, exitFindings, out)
	}
	if !strings.Contains(out, "forensic report") {
		t.Fatalf("no report rendered:\n%s", out)
	}
	// -stats drives the scanner/detector manually; same contract.
	if code, _, _ := run("-analyze", "-stats", capture); code != exitFindings {
		t.Fatalf("-stats findings capture exited %d, want %d", code, exitFindings)
	}

	clean := filepath.Join(dir, "clean.btsnoop")
	if err := os.WriteFile(clean, data[:16], 0o644); err != nil { // header only
		t.Fatal(err)
	}
	if code, _, _ := run("-analyze", clean); code != 0 {
		t.Fatalf("header-only capture exited %d, want 0", code)
	}

	// Truncate mid-record: the reported offset must be the death byte
	// the incremental scanner computes for the same cut.
	cut := len(data) - 7
	sc := snoop.NewScanner(bytes.NewReader(data[:cut]))
	for sc.Scan() {
	}
	if sc.Err() == nil {
		t.Fatal("reference scanner saw no truncation")
	}
	trunc := filepath.Join(dir, "trunc.btsnoop")
	if err := os.WriteFile(trunc, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := run("-analyze", trunc)
	if code != 1 {
		t.Fatalf("truncated capture exited %d, want 1", code)
	}
	want := fmt.Sprintf("offset %d", sc.Offset())
	if !strings.Contains(errOut, want) || !strings.Contains(errOut, "truncated") {
		t.Fatalf("truncation error lacks %q:\n%s", want, errOut)
	}
}
