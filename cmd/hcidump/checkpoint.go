package main

import (
	"encoding/binary"
	"fmt"
	"os"
)

// -follow checkpoint file: a tiny sidecar that lets a restarted hcidump
// pick up a live capture exactly where the previous run left off —
// scan position plus the full incremental detector state — so findings
// that straddle the restart are still detected and nothing before the
// checkpoint is re-reported as new.
//
// Layout (little-endian):
//
//	magic   [8]byte  "blapckp1"
//	version u8       (1; bumped on any layout change)
//	datalink u32     btsnoop header datalink of the capture
//	offset  i64      byte offset the scanner stopped at
//	frame   i64      1-based frame count already delivered
//	statelen u32
//	state   []byte   forensics.Detector SnapshotState (itself versioned)
const (
	ckpMagic   = "blapckp1"
	ckpVersion = 1
)

// followCheckpoint is the decoded sidecar contents.
type followCheckpoint struct {
	datalink uint32
	offset   int64
	frame    int64
	state    []byte
}

// readFollowCheckpoint loads path, returning (nil, nil) when the file
// does not exist — a fresh follow, not an error.
func readFollowCheckpoint(path string) (*followCheckpoint, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	const hdr = len(ckpMagic) + 1 + 4 + 8 + 8 + 4
	if len(data) < hdr || string(data[:len(ckpMagic)]) != ckpMagic {
		return nil, fmt.Errorf("%s: not a follow checkpoint", path)
	}
	p := data[len(ckpMagic):]
	if p[0] != ckpVersion {
		return nil, fmt.Errorf("%s: checkpoint version %d, supported %d", path, p[0], ckpVersion)
	}
	c := &followCheckpoint{
		datalink: binary.LittleEndian.Uint32(p[1:]),
		offset:   int64(binary.LittleEndian.Uint64(p[5:])),
		frame:    int64(binary.LittleEndian.Uint64(p[13:])),
	}
	n := binary.LittleEndian.Uint32(p[21:])
	if int(n) != len(p[25:]) {
		return nil, fmt.Errorf("%s: corrupt checkpoint: state length %d, %d bytes present", path, n, len(p[25:]))
	}
	c.state = p[25:]
	return c, nil
}

// writeFollowCheckpoint atomically replaces path (write temp + rename)
// so a crash mid-write never leaves a truncated sidecar behind.
func writeFollowCheckpoint(path string, c *followCheckpoint) error {
	b := make([]byte, 0, len(ckpMagic)+25+len(c.state))
	b = append(b, ckpMagic...)
	b = append(b, ckpVersion)
	b = binary.LittleEndian.AppendUint32(b, c.datalink)
	b = binary.LittleEndian.AppendUint64(b, uint64(c.offset))
	b = binary.LittleEndian.AppendUint64(b, uint64(c.frame))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(c.state)))
	b = append(b, c.state...)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
