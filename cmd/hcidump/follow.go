package main

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/forensics"
	"repro/internal/snoop"
)

// tailReader reads from a file that another process may still be
// appending to — the live Android btsnoop log case. On EOF it polls for
// growth; only after the file has delivered no new bytes for idle does
// it report EOF to the caller. io.ReadFull in the snoop scanner then
// naturally blocks mid-record until the writer catches up or goes
// quiet.
type tailReader struct {
	f    *os.File
	idle time.Duration
	poll time.Duration
}

func (t *tailReader) Read(p []byte) (int, error) {
	deadline := time.Now().Add(t.idle)
	for {
		n, err := t.f.Read(p)
		if n > 0 || !errors.Is(err, io.EOF) {
			return n, err
		}
		if time.Now().After(deadline) {
			return 0, io.EOF
		}
		time.Sleep(t.poll)
	}
}

// followFile tails a growing capture through the incremental detector,
// printing findings the moment the records that complete them land in
// the file. It returns the finished report once the file has been idle
// for the full idle window (the writer stopped), plus the scan error if
// the capture ended mid-record.
func followFile(f *os.File, idle time.Duration, out io.Writer) (*forensics.Report, error) {
	sc := snoop.NewScanner(&tailReader{f: f, idle: idle, poll: 50 * time.Millisecond})
	det := forensics.NewDetector()
	for sc.Scan() {
		det.Push(sc.Record())
		for _, ev := range det.Drain() {
			fmt.Fprintf(out, "%s frame %-5d [%s] peer %s: %s\n",
				ev.Time.Format("15:04:05.000000"), ev.Frame,
				ev.Finding.Kind, ev.Finding.Peer, ev.Finding.Detail)
		}
	}
	return det.Finish(), sc.Err()
}
