package main

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/forensics"
	"repro/internal/snoop"
)

// tailReader reads from a file that another process may still be
// appending to — the live Android btsnoop log case. On EOF it polls for
// growth with capped exponential backoff: the first empty poll waits
// pollMin, each consecutive empty poll doubles the wait up to pollMax,
// and any delivered byte resets the backoff — so a bursty writer is
// picked up at pollMin latency while a quiet file costs a few wakeups
// per second instead of hundreds. Only after the file has delivered no
// new bytes for idle does it report EOF to the caller. io.ReadFull in
// the snoop scanner then naturally blocks mid-record until the writer
// catches up or goes quiet.
type tailReader struct {
	f       io.Reader
	idle    time.Duration
	pollMin time.Duration
	pollMax time.Duration
}

func (t *tailReader) Read(p []byte) (int, error) {
	deadline := time.Now().Add(t.idle)
	wait := t.pollMin
	for {
		n, err := t.f.Read(p)
		if n > 0 || !errors.Is(err, io.EOF) {
			return n, err
		}
		// Sleep only as long as the idle budget allows: an unclamped
		// backoff sleep could overshoot the deadline by up to pollMax,
		// making a quiet file take idle+pollMax to report EOF instead of
		// ~idle — a real stall with the multi-second poll caps operators
		// use on battery-powered captures.
		remain := time.Until(deadline)
		if remain <= 0 {
			return 0, io.EOF
		}
		sleep := wait
		if sleep > remain {
			sleep = remain
		}
		time.Sleep(sleep)
		if wait *= 2; wait > t.pollMax {
			wait = t.pollMax
		}
	}
}

// followFile tails a growing capture through the incremental detector,
// printing findings the moment the records that complete them land in
// the file. pollMax caps the tail's poll backoff (values below the 10 ms
// floor are raised to it). It returns the finished report once the file
// has been idle for the full idle window (the writer stopped), plus the
// scan error if the capture ended mid-record. st (nil for none)
// collects -stats telemetry per record and finding.
//
// ckp, when non-nil, resumes a previous follow: the caller has already
// positioned f at ckp.offset, the scanner continues frame numbering
// from ckp.frame under ckp.datalink, and the detector is restored from
// the snapshotted state — findings across the restart are identical to
// an uninterrupted follow, and the returned report is cumulative. On a
// clean end the next checkpoint (scan position + drained detector
// state) comes back for the caller to persist; it is nil after a scan
// error, because a checkpoint taken mid-record could not be resumed.
func followFile(f io.Reader, idle, pollMax time.Duration, out io.Writer, st *scanStats, ckp *followCheckpoint) (*forensics.Report, *followCheckpoint, error) {
	const pollMin = 10 * time.Millisecond
	if pollMax < pollMin {
		pollMax = pollMin
	}
	tail := &tailReader{f: f, idle: idle, pollMin: pollMin, pollMax: pollMax}
	det := forensics.NewDetector()
	var sc *snoop.BatchScanner
	if ckp != nil {
		if err := det.RestoreState(ckp.state); err != nil {
			return nil, nil, err
		}
		sc = snoop.ResumeBatchScanner(tail, 256<<10, ckp.offset, int(ckp.frame), ckp.datalink)
	} else {
		sc = snoop.NewBatchScannerSize(tail, 256<<10)
	}
	var b snoop.RecordBatch
	for sc.ScanBatch(&b) {
		for i := range b.Records {
			st.record(b.Records[i])
		}
		det.PushBatch(b.Records)
		for _, ev := range det.Drain() {
			st.finding(ev)
			fmt.Fprintf(out, "%s frame %-5d [%s] peer %s: %s\n",
				ev.Time.Format("15:04:05.000000"), ev.Frame,
				ev.Finding.Kind, ev.Finding.Peer, ev.Finding.Detail)
		}
	}
	var next *followCheckpoint
	if sc.Err() == nil {
		if state, err := det.SnapshotState(); err == nil {
			next = &followCheckpoint{
				datalink: sc.Datalink(),
				offset:   sc.Offset(),
				frame:    int64(sc.Frame()),
				state:    state,
			}
		}
	}
	return det.Finish(), next, sc.Err()
}
