package main

import (
	"fmt"
	"io"
	"time"

	"repro/internal/forensics"
	"repro/internal/obs"
	"repro/internal/snoop"
)

// countingReader counts the bytes delivered to the parser so -stats can
// report wall throughput without a second pass over the file.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// scanStats accumulates -stats telemetry during a scan: wall throughput
// (records/sec, bytes/sec) plus, for analyzing modes, where in the
// capture each finding landed — the capture-time distance from the first
// record to the record that completed the finding, which is how long a
// live detector watching the same traffic would have waited. A nil
// *scanStats is a valid no-op collector, so scan loops stay
// unconditional.
type scanStats struct {
	start    time.Time
	bytes    *countingReader
	records  uint64
	findings uint64
	first    time.Time
	findLat  obs.Histogram
}

func newScanStats(cr *countingReader) *scanStats {
	return &scanStats{start: time.Now(), bytes: cr}
}

func (s *scanStats) record(rec snoop.Record) {
	if s == nil {
		return
	}
	s.records++
	if s.first.IsZero() {
		s.first = rec.Timestamp
	}
}

func (s *scanStats) finding(ev forensics.Event) {
	if s == nil {
		return
	}
	s.findings++
	s.findLat.Observe(ev.Time.Sub(s.first))
}

func (s *scanStats) report(w io.Writer) {
	if s == nil {
		return
	}
	el := time.Since(s.start)
	sec := el.Seconds()
	if sec <= 0 {
		sec = 1e-9
	}
	var n int64
	if s.bytes != nil {
		n = s.bytes.n
	}
	fmt.Fprintf(w, "stats: %d records, %d bytes in %s (%.0f records/s, %.2f MB/s)\n",
		s.records, n, el.Round(time.Millisecond),
		float64(s.records)/sec, float64(n)/sec/1e6)
	if s.findings > 0 {
		snap := s.findLat.Snapshot()
		fmt.Fprintf(w, "stats: %d findings, capture-time latency p50 %s p90 %s p99 %s (max %s)\n",
			s.findings, usDur(snap.P50US), usDur(snap.P90US), usDur(snap.P99US), usDur(snap.MaxUS))
	}
}

func usDur(us float64) time.Duration {
	return time.Duration(us * 1e3).Round(time.Microsecond)
}
