package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/tsdb"
)

// tsdbRecords is the payload count for the store benchmarks and the
// deterministic smoke: one synthetic finding per millisecond across a
// ~17-minute span, so the time-indexed segment directory has real
// pruning work to do.
const tsdbRecords = 1_000_000

// tsdbPayload appends the i-th synthetic finding line: a small JSONL
// object shaped like the sentinel's persisted findings, with the frame
// timestamp also embedded so a flat-file baseline can window-filter.
func tsdbPayload(buf []byte, ts int64, i int) []byte {
	return fmt.Appendf(buf, `{"ts":%d,"seq":%d,"stream":%d,"kind":"probe","detail":"synthetic finding %d"}`,
		ts, i+1, i%16+1, i)
}

// tsdbBase is the fixed epoch the benchmark and smoke timelines start
// at; payload i lands at tsdbBase + i milliseconds. Nothing here reads
// the wall clock, which is what makes the smoke byte-reproducible.
var tsdbBase = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// tsdbEntries produces the two store benchmarks over one shared
// artifact pair — the same 1M findings written as a flat JSONL file
// (the pre-PR8 durability option) and as a tsdb store:
//
//   - tsdb_append_1m: per-line unbuffered appends to a flat file vs
//     Store.Append's buffered, CRC-framed segments.
//   - tsdb_query_window: full-file scan-and-filter vs Store.Query with
//     the segment directory pruning non-overlapping segments.
//
// Identity is verified by digest: both sides must hold the same
// payload bytes in the same order, on the full set and on the window.
func tsdbEntries() ([]benchEntry, error) {
	dir, err := os.MkdirTemp("", "benchtables-tsdb-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	tsAt := func(i int) int64 {
		return tsdbBase.Add(time.Duration(i) * time.Millisecond).UnixNano()
	}

	// Baseline artifact: JSONL file, one unbuffered write per record —
	// the simplest thing a daemon could do for durability.
	flatPath := filepath.Join(dir, "findings.jsonl")
	flat, err := os.Create(flatPath)
	if err != nil {
		return nil, err
	}
	var buf []byte
	baseDigest := sha256.New()
	t0 := time.Now()
	for i := 0; i < tsdbRecords; i++ {
		buf = tsdbPayload(buf[:0], tsAt(i), i)
		buf = append(buf, '\n')
		if _, err := flat.Write(buf); err != nil {
			return nil, fmt.Errorf("tsdb_append_1m baseline: %w", err)
		}
	}
	if err := flat.Close(); err != nil {
		return nil, err
	}
	appendBaseNS := time.Since(t0).Nanoseconds()

	// Optimized artifact: the embedded store, same payloads.
	store, err := tsdb.Open(tsdb.Options{
		Dir:          filepath.Join(dir, "store"),
		CompactEvery: -1,
		Now:          func() time.Time { return tsdbBase },
	})
	if err != nil {
		return nil, err
	}
	defer store.Close()
	t1 := time.Now()
	for i := 0; i < tsdbRecords; i++ {
		buf = tsdbPayload(buf[:0], tsAt(i), i)
		if err := store.Append("findings", tsAt(i), uint64(i%16+1), buf); err != nil {
			return nil, fmt.Errorf("tsdb_append_1m optimized: %w", err)
		}
	}
	if err := store.Sync(); err != nil {
		return nil, err
	}
	appendOptNS := time.Since(t1).Nanoseconds()

	// Identity: the store must hold exactly the flat file's lines.
	raw, err := os.ReadFile(flatPath)
	if err != nil {
		return nil, err
	}
	baseDigest.Write(raw)
	storeDigest := sha256.New()
	var storeCount int
	err = store.Query("findings", 0, tsAt(tsdbRecords-1), tsdb.KeyAny, func(fr tsdb.Frame) error {
		storeDigest.Write(fr.Data)
		storeDigest.Write([]byte{'\n'})
		storeCount++
		return nil
	})
	if err != nil {
		return nil, err
	}
	identical := storeCount == tsdbRecords &&
		fmt.Sprintf("%x", baseDigest.Sum(nil)) == fmt.Sprintf("%x", storeDigest.Sum(nil))
	if !identical {
		return nil, fmt.Errorf("tsdb_append_1m: store contents diverge from flat file (%d records)", storeCount)
	}

	var size int64
	if fi, err := os.Stat(flatPath); err == nil {
		size = fi.Size()
	}
	appendEntry := benchEntry{
		Name:       "tsdb_append_1m",
		Baseline:   "flat JSONL file, one unbuffered write per finding",
		Optimized:  "tsdb.Append (buffered CRC-framed segments, time index)",
		BaselineNs: appendBaseNS, OptimizedNs: appendOptNS,
		Records: tsdbRecords, CaptureBytes: size,
		OutputsIdentical: identical,
	}
	if appendOptNS > 0 {
		appendEntry.Speedup = float64(appendBaseNS) / float64(appendOptNS)
		appendEntry.OptimizedRecPerSec = float64(tsdbRecords) / (float64(appendOptNS) / 1e9)
	}
	if appendBaseNS > 0 {
		appendEntry.BaselineRecPerSec = float64(tsdbRecords) / (float64(appendBaseNS) / 1e9)
	}

	// Window query: one minute out of the ~17-minute span. The flat
	// baseline has no index, so it parses every line; the store prunes
	// to the overlapping segments. Best-of-3 on both sides — the store
	// side is sub-millisecond and swings with cache luck.
	since := tsAt(500_000)
	until := tsAt(560_000)
	type tsOnly struct {
		TS int64 `json:"ts"`
	}
	var queryBaseNS, queryOptNS int64
	var baseWindow, optWindow int
	for pass := 0; pass < 3; pass++ {
		baseWindow = 0
		t2 := time.Now()
		rest := raw
		for len(rest) > 0 {
			nl := 0
			for nl < len(rest) && rest[nl] != '\n' {
				nl++
			}
			line := rest[:nl]
			if nl < len(rest) {
				rest = rest[nl+1:]
			} else {
				rest = nil
			}
			if len(line) == 0 {
				continue
			}
			var t tsOnly
			if err := json.Unmarshal(line, &t); err != nil {
				return nil, fmt.Errorf("tsdb_query_window baseline: %w", err)
			}
			if t.TS >= since && t.TS <= until {
				baseWindow++
			}
		}
		ns := time.Since(t2).Nanoseconds()
		if queryBaseNS == 0 || ns < queryBaseNS {
			queryBaseNS = ns
		}
	}
	for pass := 0; pass < 3; pass++ {
		optWindow = 0
		t3 := time.Now()
		err = store.Query("findings", since, until, tsdb.KeyAny, func(tsdb.Frame) error {
			optWindow++
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("tsdb_query_window optimized: %w", err)
		}
		ns := time.Since(t3).Nanoseconds()
		if queryOptNS == 0 || ns < queryOptNS {
			queryOptNS = ns
		}
	}
	if baseWindow != optWindow || baseWindow != 60_001 {
		return nil, fmt.Errorf("tsdb_query_window: flat scan found %d rows, store found %d (want 60001)",
			baseWindow, optWindow)
	}

	queryEntry := benchEntry{
		Name:       "tsdb_query_window",
		Baseline:   "flat JSONL scan, parse-and-filter every line",
		Optimized:  "tsdb.Query (time-indexed segment pruning)",
		BaselineNs: queryBaseNS, OptimizedNs: queryOptNS,
		Records: baseWindow, CaptureBytes: size,
		OutputsIdentical: true,
	}
	if queryOptNS > 0 {
		queryEntry.Speedup = float64(queryBaseNS) / float64(queryOptNS)
		queryEntry.OptimizedRecPerSec = float64(baseWindow) / (float64(queryOptNS) / 1e9)
	}
	if queryBaseNS > 0 {
		queryEntry.BaselineRecPerSec = float64(baseWindow) / (float64(queryBaseNS) / 1e9)
	}
	return []benchEntry{appendEntry, queryEntry}, nil
}

// runTSDBSmoke is the deterministic store check scripts/verify.sh runs
// twice and compares: append 1M findings on a fixed timeline, seal and
// retention-compact with a fixed clock, query back, and print counts
// plus a digest of every byte in the store directory. Nothing reads
// the wall clock, so two runs must print identical lines — any
// divergence means nondeterminism leaked into the segment format or
// the compaction order.
func runTSDBSmoke(dir string) error {
	clock := tsdbBase
	store, err := tsdb.Open(tsdb.Options{
		Dir:          dir,
		SyncEvery:    -1,
		CompactEvery: -1,
		Retention:    10 * time.Minute,
		Now:          func() time.Time { return clock },
	})
	if err != nil {
		return err
	}
	var buf []byte
	tsAt := func(i int) int64 {
		return tsdbBase.Add(time.Duration(i) * time.Millisecond).UnixNano()
	}
	for i := 0; i < tsdbRecords; i++ {
		buf = tsdbPayload(buf[:0], tsAt(i), i)
		if err := store.Append("findings", tsAt(i), uint64(i%16+1), buf); err != nil {
			return err
		}
	}

	// Jump the clock to the end of the timeline: everything more than
	// ten minutes old is now past retention, and sealed segments wholly
	// before the cutoff must be deleted.
	clock = tsdbBase.Add(time.Duration(tsdbRecords) * time.Millisecond)
	stats, err := store.Compact()
	if err != nil {
		return err
	}
	if stats.SegmentsDeleted == 0 {
		return fmt.Errorf("tsdbsmoke: retention deleted no segments over a %s span", clock.Sub(tsdbBase))
	}

	var remaining, window int
	digest := sha256.New()
	err = store.Query("findings", 0, tsAt(tsdbRecords-1), tsdb.KeyAny, func(fr tsdb.Frame) error {
		remaining++
		digest.Write(fr.Data)
		return nil
	})
	if err != nil {
		return err
	}
	if remaining == tsdbRecords || remaining == 0 {
		return fmt.Errorf("tsdbsmoke: retention left %d of %d records", remaining, tsdbRecords)
	}
	err = store.Query("findings", tsAt(tsdbRecords-60_000), tsAt(tsdbRecords-1), tsdb.KeyAny, func(tsdb.Frame) error {
		window++
		return nil
	})
	if err != nil {
		return err
	}
	if window != 60_000 {
		return fmt.Errorf("tsdbsmoke: final-minute window has %d records, want 60000", window)
	}
	if err := store.Close(); err != nil {
		return err
	}

	// Fold every store file into one digest, in sorted path order, so
	// the double-run comparison covers the on-disk bytes, not just the
	// query results.
	var files []string
	err = filepath.Walk(dir, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !fi.IsDir() {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return err
	}
	sort.Strings(files)
	fileDigest := sha256.New()
	for _, path := range files {
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		fmt.Fprintf(fileDigest, "%s\n", rel)
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		_, err = io.Copy(fileDigest, f)
		f.Close()
		if err != nil {
			return err
		}
	}

	fmt.Printf("tsdbsmoke: appended=%d deleted_segments=%d frames_dropped=%d remaining=%d window=%d query_digest=%x store_digest=%x\n",
		tsdbRecords, stats.SegmentsDeleted, stats.FramesDropped, remaining, window,
		digest.Sum(nil), fileDigest.Sum(nil))
	return nil
}
