// Command benchtables regenerates every table and figure of the paper's
// evaluation from the simulator, plus the ablation studies. With no flags
// it runs everything.
//
//	benchtables -table1 -table2 -trials 100
//	benchtables -figs
//	benchtables -ablations
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/eval"
)

func main() {
	var (
		seed        = flag.Int64("seed", 1, "base random seed")
		trials      = flag.Int("trials", 100, "trials per device for Table II")
		table1      = flag.Bool("table1", false, "run Table I (link key extraction)")
		table2      = flag.Bool("table2", false, "run Table II (MITM success rates)")
		figs        = flag.Bool("figs", false, "run figure reproductions (2, 3, 7, 11, 12)")
		ablations   = flag.Bool("ablations", false, "run ablation studies")
		mitigations = flag.Bool("mitigations", false, "run the mitigation matrix")
	)
	flag.Parse()

	all := !*table1 && !*table2 && !*figs && !*ablations && !*mitigations
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}

	if *table1 || all {
		rows, err := eval.RunTableI(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.RenderTableI(rows))
	}

	if *table2 || all {
		rows, err := eval.RunTableII(*seed, *trials)
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.RenderTableII(rows))
	}

	if *figs || all {
		fig2, err := eval.RunFig2(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println("FIG 2a: fresh pairing HCI flow (victim side)")
		for _, n := range fig2.FreshPairing {
			fmt.Println("  ", n)
		}
		fmt.Println("FIG 2b: bonded re-authentication HCI flow")
		for _, n := range fig2.BondedReauth {
			fmt.Println("  ", n)
		}
		fmt.Println()

		fig3, err := eval.RunFig3(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println("FIG 3: link key in an HCI dump")
		fmt.Printf("  key: %s (matches bond: %v, frame %d via %s)\n",
			fig3.Key, fig3.MatchesBond, fig3.Hit.Frame, fig3.Hit.Source)
		fmt.Printf("  packet: %s\n\n", fig3.PacketHex)

		fig7 := eval.RunFig7()
		fmt.Println("FIG 7: IO capability mapping")
		fmt.Println(fig7.V42)
		fmt.Println(fig7.V50)

		fig11, err := eval.RunFig11(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println("FIG 11: link key via USB sniff (C) vs HCI dump (M)")
		fmt.Printf("  USB:   %s (hex offset %d)\n", fig11.USBKey, fig11.USBOffset)
		fmt.Printf("  dump:  %s\n  match: %v\n\n", fig11.SnoopKey, fig11.Match)

		fig12, err := eval.RunFig12(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println("FIG 12a: HCI dump for normal pairing")
		fmt.Println(fig12.NormalPairing)
		fmt.Println("FIG 12b: HCI dump for pairing under page blocking attack")
		fmt.Println(fig12.PageBlocked)
		fmt.Printf("page blocking signature present: %v\n\n", fig12.Signature)
	}

	if *mitigations || all {
		rows, err := eval.RunMitigationMatrix(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.RenderMitigationMatrix(rows))

		sweep, err := eval.RunForensicsSweep(*seed, 10)
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.RenderForensicsSweep(sweep))
	}

	if *ablations || all {
		jrows := eval.RunJitterAblation(*seed, 40, []time.Duration{
			0, 5 * time.Millisecond, 30 * time.Millisecond, 120 * time.Millisecond,
		})
		fmt.Println(eval.RenderJitterAblation(jrows))

		prows := eval.RunPLOCWindowAblation(*seed, []time.Duration{
			5 * time.Second, 15 * time.Second, 25 * time.Second, 40 * time.Second,
		})
		fmt.Println(eval.RenderPLOCWindow(prows))

		srows, err := eval.RunStallAblation(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.RenderStallAblation(srows))

		trows, err := eval.RunLMPTimeoutAblation(*seed, []time.Duration{
			time.Second, 5 * time.Second, 30 * time.Second,
		})
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.RenderLMPTimeout(trows))
	}
}
