// Command benchtables regenerates every table and figure of the paper's
// evaluation from the simulator, plus the ablation studies. With no flags
// it runs everything.
//
//	benchtables -table1 -table2 -trials 100
//	benchtables -figs
//	benchtables -ablations
//	benchtables -workers 8 -table2          # parallel campaign, same rows
//	benchtables -benchjson BENCH_pr2.json   # baseline-vs-optimized timings
//	benchtables -checkjson BENCH_pr2.json   # validate a bench JSON file
//
// The -workers flag sets the campaign engine's worker count for every
// sweep (0 = GOMAXPROCS). Results are bit-identical at any worker count;
// see internal/campaign.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bt"
	"repro/internal/btcrypto"
	"repro/internal/campaign"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/forensics"
	"repro/internal/hci"
	"repro/internal/host"
	"repro/internal/radio"
	"repro/internal/sentinel"
	"repro/internal/sim"
	"repro/internal/snoop"
	"repro/internal/tsdb"
)

func main() {
	var (
		seed        = flag.Int64("seed", 1, "base random seed")
		trials      = flag.Int("trials", 100, "trials per device for Table II")
		table1      = flag.Bool("table1", false, "run Table I (link key extraction)")
		table2      = flag.Bool("table2", false, "run Table II (MITM success rates)")
		figs        = flag.Bool("figs", false, "run figure reproductions (2, 3, 7, 11, 12)")
		ablations   = flag.Bool("ablations", false, "run ablation studies")
		mitigations = flag.Bool("mitigations", false, "run the mitigation matrix")
		degraded    = flag.Bool("degraded", false, "run the degraded-channel sweep")
		attacks     = flag.Bool("attacks", false, "run the cross-attack matrix (related-attack library)")
		workers     = flag.Int("workers", 0, "campaign workers (0 = GOMAXPROCS)")
		progress    = flag.Bool("progress", false, "report live campaign progress (trials/sec, retries, ETA) on stderr")
		benchjson   = flag.String("benchjson", "", "write baseline-vs-optimized bench timings to this JSON file")
		checkjson   = flag.String("checkjson", "", "validate a previously written bench JSON file and exit")
		baseline    = flag.String("baseline", "", "with -checkjson: older bench JSON; without -minspeedup, sentinel_ingest_1m throughput must be within 5%")
		minspeedup  = flag.Float64("minspeedup", 0, "with -checkjson -baseline: require sentinel_ingest_1m and forensics_scan_1m optimized throughput >= this multiple of the baseline's, with allocs/record no worse")
		synth       = flag.String("synth", "", "write a synthetic btsnoop capture (for pipeline smoke tests) to this path and exit")
		synthN      = flag.Int("synthrecords", 1_000_000, "with -synth: capture size in records")
		tsdbsmoke   = flag.String("tsdbsmoke", "", "deterministic tsdb store smoke: append 1M findings into a store at this directory, compact, query, print counts and digests, exit")
		chaos       = flag.Bool("chaos", false, "full-sweep transport-chaos differential: cut the session transport at every byte offset of a small synthetic capture, resume, and require findings byte-identical to an uninterrupted run")
		chaosN      = flag.Int("chaosrecords", 250, "with -chaos: capture size in records (every byte offset of it is a trial)")
		checkmulti  = flag.Bool("checkmulti", false, "with -checkjson -baseline: also require sentinel_ingest_multi throughput >= 95% of the baseline's")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}

	if *synth != "" {
		f, err := os.Create(*synth)
		if err != nil {
			fail(err)
		}
		stats, err := snoop.Synthesize(f, snoop.SynthConfig{Records: *synthN, Seed: *seed})
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fail(err)
		}
		if stats.KeyExposures == 0 || stats.BlockedSessions == 0 {
			fail(fmt.Errorf("synthetic capture lost its attack signatures (seed %d)", *seed))
		}
		fmt.Printf("wrote %s: %d records, %d bytes, %d key exposures, %d blocked sessions\n",
			*synth, stats.Records, stats.Bytes, stats.KeyExposures, stats.BlockedSessions)
		return
	}

	if *tsdbsmoke != "" {
		if err := runTSDBSmoke(*tsdbsmoke); err != nil {
			fail(err)
		}
		return
	}

	if *chaos {
		var capture bytes.Buffer
		if _, err := snoop.Synthesize(&capture, snoop.SynthConfig{Records: *chaosN, Seed: *seed}); err != nil {
			fail(err)
		}
		logf := func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
		if err := sentinel.RunResumeDifferential(capture.Bytes(), 1, logf); err != nil {
			fail(err)
		}
		fmt.Printf("chaos differential: %d records, every one of %d cut offsets resumed byte-identically\n",
			*chaosN, capture.Len())
		return
	}

	if *checkjson != "" {
		if err := checkBenchJSON(*checkjson); err != nil {
			fail(err)
		}
		if *baseline != "" {
			if err := checkAgainstBaseline(*checkjson, *baseline, *minspeedup, *checkmulti); err != nil {
				fail(err)
			}
		}
		fmt.Println(*checkjson, "ok")
		return
	}

	if *progress {
		// One sink spans every sweep this invocation runs; the engine
		// guarantees the rows are identical with or without it.
		p := &campaign.Progress{}
		eval.SetProgress(p)
		stop := p.Report(os.Stderr, 500*time.Millisecond)
		defer stop()
	}

	if *benchjson != "" {
		if err := writeBenchJSON(*benchjson, *seed); err != nil {
			fail(err)
		}
		fmt.Println("wrote", *benchjson)
		if !*table1 && !*table2 && !*figs && !*ablations && !*mitigations && !*degraded && !*attacks {
			return
		}
	}

	all := !*table1 && !*table2 && !*figs && !*ablations && !*mitigations && !*degraded && !*attacks

	if *table1 || all {
		rows, err := eval.RunTableIWorkers(*seed, *workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.RenderTableI(rows))
	}

	if *table2 || all {
		rows, err := eval.RunTableIIWorkers(*seed, *trials, *workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.RenderTableII(rows))
	}

	if *figs || all {
		res, err := eval.RunAllFigures(*seed, *workers)
		if err != nil {
			fail(err)
		}
		fmt.Println("FIG 2a: fresh pairing HCI flow (victim side)")
		for _, n := range res.Fig2.FreshPairing {
			fmt.Println("  ", n)
		}
		fmt.Println("FIG 2b: bonded re-authentication HCI flow")
		for _, n := range res.Fig2.BondedReauth {
			fmt.Println("  ", n)
		}
		fmt.Println()

		fmt.Println("FIG 3: link key in an HCI dump")
		fmt.Printf("  key: %s (matches bond: %v, frame %d via %s)\n",
			res.Fig3.Key, res.Fig3.MatchesBond, res.Fig3.Hit.Frame, res.Fig3.Hit.Source)
		fmt.Printf("  packet: %s\n\n", res.Fig3.PacketHex)

		fmt.Println("FIG 7: IO capability mapping")
		fmt.Println(res.Fig7.V42)
		fmt.Println(res.Fig7.V50)

		fmt.Println("FIG 11: link key via USB sniff (C) vs HCI dump (M)")
		fmt.Printf("  USB:   %s (hex offset %d)\n", res.Fig11.USBKey, res.Fig11.USBOffset)
		fmt.Printf("  dump:  %s\n  match: %v\n\n", res.Fig11.SnoopKey, res.Fig11.Match)

		fmt.Println("FIG 12a: HCI dump for normal pairing")
		fmt.Println(res.Fig12.NormalPairing)
		fmt.Println("FIG 12b: HCI dump for pairing under page blocking attack")
		fmt.Println(res.Fig12.PageBlocked)
		fmt.Printf("page blocking signature present: %v\n\n", res.Fig12.Signature)
	}

	if *mitigations || all {
		rows, err := eval.RunMitigationMatrixWorkers(*seed, *workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.RenderMitigationMatrix(rows))

		sweep, err := eval.RunForensicsSweepWorkers(*seed, 10, *workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.RenderForensicsSweep(sweep))

		lat, err := eval.RunDetectionLatencyWorkers(*seed, 10, *workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.RenderDetectionLatency(lat))
	}

	if *ablations || all {
		jrows := eval.RunJitterAblationWorkers(*seed, 40, []time.Duration{
			0, 5 * time.Millisecond, 30 * time.Millisecond, 120 * time.Millisecond,
		}, *workers)
		fmt.Println(eval.RenderJitterAblation(jrows))

		prows, err := eval.RunPLOCWindowAblationWorkers(*seed, []time.Duration{
			5 * time.Second, 15 * time.Second, 25 * time.Second, 40 * time.Second,
		}, *workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.RenderPLOCWindow(prows))

		srows, err := eval.RunStallAblation(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.RenderStallAblation(srows))

		trows, err := eval.RunLMPTimeoutAblationWorkers(*seed, []time.Duration{
			time.Second, 5 * time.Second, 30 * time.Second,
		}, *workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.RenderLMPTimeout(trows))
	}

	if *degraded || all {
		trials := *trials
		if trials > 25 {
			// Each degraded setting runs three full campaigns; cap the
			// default Table II trial count at something proportionate.
			trials = 25
		}
		rows, err := eval.RunDegradedSweepWorkers(*seed, trials, *workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.RenderDegraded(rows))
	}

	if *attacks || all {
		trials := *trials
		if trials > 25 {
			// Twelve cells, each a full campaign of simulated worlds.
			trials = 25
		}
		rows, err := eval.RunAttackMatrixWorkers(*seed, trials, *workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.RenderAttackMatrix(rows))
	}
}

// benchEntry is one baseline-vs-optimized timing comparison. The
// records/allocation fields are populated only by the capture-scan
// entries, where allocation behavior is the point of the comparison.
type benchEntry struct {
	Name        string  `json:"name"`
	Baseline    string  `json:"baseline"`
	Optimized   string  `json:"optimized"`
	BaselineNs  int64   `json:"baseline_ns"`
	OptimizedNs int64   `json:"optimized_ns"`
	Speedup     float64 `json:"speedup"`

	Records            int     `json:"records,omitempty"`
	Streams            int     `json:"streams,omitempty"`
	CaptureBytes       int64   `json:"capture_bytes,omitempty"`
	BaselineAllocs     uint64  `json:"baseline_allocs,omitempty"`
	OptimizedAllocs    uint64  `json:"optimized_allocs,omitempty"`
	AllocReduction     float64 `json:"alloc_reduction,omitempty"`
	BaselineRecPerSec  float64 `json:"baseline_records_per_sec,omitempty"`
	OptimizedRecPerSec float64 `json:"optimized_records_per_sec,omitempty"`
	// AllocsPerRecord is the optimized path's heap allocations per
	// record — the number the batch pipeline's slab/ring design exists
	// to hold down. Baseline comparisons (-minspeedup) require it not
	// to regress when both artifacts carry it.
	AllocsPerRecord  float64 `json:"allocs_per_record,omitempty"`
	OutputsIdentical bool    `json:"outputs_identical,omitempty"`
}

type benchReport struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	Workers    int          `json:"workers"`
	Note       string       `json:"note"`
	Results    []benchEntry `json:"results"`
	// DegradedSweep carries the degraded-channel evaluation rows (PR 4):
	// attack and legitimate-traffic outcomes per loss setting.
	DegradedSweep []eval.DegradedRow `json:"degraded_sweep,omitempty"`
	// AttackMatrix carries the cross-attack evaluation rows (PR 10):
	// success rate and detection latency per related-library attack under
	// clean and degraded channels.
	AttackMatrix []eval.AttackRow `json:"attack_matrix,omitempty"`
}

// writeBenchJSON times the serial path against the parallel campaign (and
// the one-shot SAFER+ against the precomputed context) and writes the
// comparison as JSON. On a single-core machine the parallel numbers show
// only the scheduling overhead; the determinism tests guarantee the rows
// themselves are identical either way.
func writeBenchJSON(path string, seed int64) error {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		// Still exercise the pool path (overhead-only on one core).
		workers = 2
	}
	report := benchReport{
		// Record the real core count, not the min-2 worker clamp: the
		// baseline gates use it to decide whether parallel-speedup
		// requirements are meaningful on the recording machine.
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Note:       "simulator wall-clock, not radio time; parallel speedup requires >1 CPU",
	}
	entry := func(name, baseline, optimized string, base, opt func() error) error {
		t0 := time.Now()
		if err := base(); err != nil {
			return fmt.Errorf("%s baseline: %w", name, err)
		}
		bns := time.Since(t0).Nanoseconds()
		t1 := time.Now()
		if err := opt(); err != nil {
			return fmt.Errorf("%s optimized: %w", name, err)
		}
		ons := time.Since(t1).Nanoseconds()
		e := benchEntry{
			Name: name, Baseline: baseline, Optimized: optimized,
			BaselineNs: bns, OptimizedNs: ons,
		}
		if ons > 0 {
			e.Speedup = float64(bns) / float64(ons)
		}
		report.Results = append(report.Results, e)
		return nil
	}

	err := entry("table2_10trials", "workers=1", fmt.Sprintf("workers=%d", workers),
		func() error { _, err := eval.RunTableIIWorkers(seed, 10, 1); return err },
		func() error { _, err := eval.RunTableIIWorkers(seed, 10, workers); return err })
	if err != nil {
		return err
	}
	err = entry("forensics_sweep_10trials", "workers=1", fmt.Sprintf("workers=%d", workers),
		func() error { _, err := eval.RunForensicsSweepWorkers(seed, 10, 1); return err },
		func() error { _, err := eval.RunForensicsSweepWorkers(seed, 10, workers); return err })
	if err != nil {
		return err
	}

	sniffer, err := pinCrackWorld()
	if err != nil {
		return err
	}
	err = entry("pin_crack_8731", "CrackPIN", fmt.Sprintf("CrackPINParallel(workers=%d)", workers),
		func() error { _, err := sniffer.CrackPIN(core.FourDigitPINs); return err },
		func() error { _, err := sniffer.CrackPINParallel(core.FourDigitPINs, workers); return err })
	if err != nil {
		return err
	}

	// SAFER+ one-shot (per-call key schedule) vs precomputed context.
	const n = 20000
	err = entry("saferplus_ar_20k", "Ar(key, block)", "NewSAFERPlus(key).Ar(block)",
		func() error {
			key, block := [16]byte{1, 2, 3}, [16]byte{4, 5, 6}
			for i := 0; i < n; i++ {
				block = btcrypto.Ar(key, block)
			}
			return nil
		},
		func() error {
			c := btcrypto.NewSAFERPlus([16]byte{1, 2, 3})
			block := [16]byte{4, 5, 6}
			for i := 0; i < n; i++ {
				block = c.Ar(block)
			}
			return nil
		})
	if err != nil {
		return err
	}
	err = entry("e1_auth_20k", "E1(key, rand, addr)", "NewE1Context(key).Auth(rand, addr)",
		func() error {
			key, challenge, addr := [16]byte{1}, [16]byte{2}, [6]byte{3}
			for i := 0; i < n; i++ {
				challenge[0] = byte(i)
				_, _ = btcrypto.E1(key, challenge, addr)
			}
			return nil
		},
		func() error {
			c := btcrypto.NewE1Context([16]byte{1})
			challenge, addr := [16]byte{2}, [6]byte{3}
			for i := 0; i < n; i++ {
				challenge[0] = byte(i)
				_, _ = c.Auth(challenge, addr)
			}
			return nil
		})
	if err != nil {
		return err
	}

	fe, err := forensicsScanEntry(seed)
	if err != nil {
		return err
	}
	report.Results = append(report.Results, fe)

	se, err := sentinelIngestEntry(seed)
	if err != nil {
		return err
	}
	report.Results = append(report.Results, se)

	me, err := sentinelIngestMultiEntry(seed)
	if err != nil {
		return err
	}
	report.Results = append(report.Results, me)

	te, err := tsdbEntries()
	if err != nil {
		return err
	}
	report.Results = append(report.Results, te...)

	// Degraded-channel sweep (PR 4): serial vs parallel timing plus the
	// rows themselves. The parallel rows must be bit-identical to the
	// serial ones — that identity is the determinism contract. Each side
	// is best-of-3 behind a forced GC: the sweep is dominated by P-256
	// pairing work whose one-shot timing swings with collector and
	// scheduler luck by more than any engine overhead (the BENCH_pr6
	// artifact recorded a phantom 0.77x "regression" exactly that way).
	const degradedTrials = 10
	var serialRows, parallelRows []eval.DegradedRow
	timeSweep := func(w int, dst *[]eval.DegradedRow) (int64, error) {
		var best int64
		for pass := 0; pass < 3; pass++ {
			runtime.GC()
			t0 := time.Now()
			rows, err := eval.RunDegradedSweepWorkers(seed, degradedTrials, w)
			ns := time.Since(t0).Nanoseconds()
			if err != nil {
				return 0, err
			}
			*dst = rows
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best, nil
	}
	sns, err := timeSweep(1, &serialRows)
	if err != nil {
		return fmt.Errorf("degraded_sweep_10trials baseline: %w", err)
	}
	pns, err := timeSweep(workers, &parallelRows)
	if err != nil {
		return fmt.Errorf("degraded_sweep_10trials optimized: %w", err)
	}
	if !reflect.DeepEqual(serialRows, parallelRows) {
		return fmt.Errorf("degraded sweep rows differ between worker counts")
	}
	de := benchEntry{
		Name:     "degraded_sweep_10trials",
		Baseline: "workers=1", Optimized: fmt.Sprintf("workers=%d", workers),
		BaselineNs: sns, OptimizedNs: pns,
		OutputsIdentical: true,
	}
	if pns > 0 {
		de.Speedup = float64(sns) / float64(pns)
	}
	report.Results = append(report.Results, de)
	report.DegradedSweep = parallelRows

	// Cross-attack matrix (PR 10): serial vs parallel timing plus the
	// rows themselves, under the same determinism contract (and the same
	// best-of-3 + forced-GC discipline) as the degraded sweep.
	const attackTrials = 10
	var serialAttacks, parallelAttacks []eval.AttackRow
	timeAttacks := func(w int, dst *[]eval.AttackRow) (int64, error) {
		var best int64
		for pass := 0; pass < 3; pass++ {
			runtime.GC()
			t0 := time.Now()
			rows, err := eval.RunAttackMatrixWorkers(seed, attackTrials, w)
			ns := time.Since(t0).Nanoseconds()
			if err != nil {
				return 0, err
			}
			*dst = rows
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best, nil
	}
	ans, err := timeAttacks(1, &serialAttacks)
	if err != nil {
		return fmt.Errorf("attack_matrix_10trials baseline: %w", err)
	}
	apns, err := timeAttacks(workers, &parallelAttacks)
	if err != nil {
		return fmt.Errorf("attack_matrix_10trials optimized: %w", err)
	}
	if !reflect.DeepEqual(serialAttacks, parallelAttacks) {
		return fmt.Errorf("attack matrix rows differ between worker counts")
	}
	ae := benchEntry{
		Name:     "attack_matrix_10trials",
		Baseline: "workers=1", Optimized: fmt.Sprintf("workers=%d", workers),
		BaselineNs: ans, OptimizedNs: apns,
		OutputsIdentical: true,
	}
	if apns > 0 {
		ae.Speedup = float64(ans) / float64(apns)
	}
	report.Results = append(report.Results, ae)
	report.AttackMatrix = parallelAttacks

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// forensicsScanEntry benchmarks the batch-pipeline headline: the
// buffer-everything path (snoop.ReadAll + forensics.Analyze) against
// forensics.AnalyzeBytes — block sweep, in-sweep prefilter, zero copies
// — over a synthetic one-million-record capture. The optimized side is
// best-of-3 (a single ~25 ms pass swings with scheduler and GC luck by
// more than the regressions this number exists to catch). Alongside
// wall clock it records heap allocation counts (runtime.MemStats.Mallocs
// deltas) and verifies the two reports are identical.
func forensicsScanEntry(seed int64) (benchEntry, error) {
	const records = 1_000_000
	var capture bytes.Buffer
	stats, err := snoop.Synthesize(&capture, snoop.SynthConfig{Records: records, Seed: seed})
	if err != nil {
		return benchEntry{}, fmt.Errorf("synthesizing capture: %w", err)
	}
	data := capture.Bytes()

	countAllocs := func(f func() error) (int64, uint64, error) {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		if err := f(); err != nil {
			return 0, 0, err
		}
		ns := time.Since(t0).Nanoseconds()
		runtime.ReadMemStats(&after)
		return ns, after.Mallocs - before.Mallocs, nil
	}

	var baseRep, optRep *forensics.Report
	bns, ballocs, err := countAllocs(func() error {
		recs, err := snoop.ReadAll(data)
		if err != nil {
			return err
		}
		baseRep = forensics.Analyze(recs)
		return nil
	})
	if err != nil {
		return benchEntry{}, fmt.Errorf("forensics_scan_1m baseline: %w", err)
	}
	var ons int64
	var oallocs uint64
	for pass := 0; pass < 3; pass++ {
		passNS, passAllocs, err := countAllocs(func() error {
			var err error
			optRep, err = forensics.AnalyzeBytes(data)
			return err
		})
		if err != nil {
			return benchEntry{}, fmt.Errorf("forensics_scan_1m optimized: %w", err)
		}
		if ons == 0 || passNS < ons {
			ons, oallocs = passNS, passAllocs
		}
	}
	identical := reflect.DeepEqual(baseRep, optRep)
	if !identical {
		return benchEntry{}, fmt.Errorf("forensics_scan_1m: streaming report differs from in-memory report")
	}
	if !baseRep.HasFinding(forensics.FindingPageBlocking) || stats.KeyExposures == 0 {
		return benchEntry{}, fmt.Errorf("forensics_scan_1m: synthetic capture lost its attack signatures")
	}

	e := benchEntry{
		Name:       "forensics_scan_1m",
		Baseline:   "snoop.ReadAll + forensics.Analyze",
		Optimized:  "forensics.AnalyzeBytes (batch sweep + in-sweep prefilter)",
		BaselineNs: bns, OptimizedNs: ons,
		Records: records, CaptureBytes: int64(len(data)),
		BaselineAllocs: ballocs, OptimizedAllocs: oallocs,
		OutputsIdentical: identical,
	}
	if ons > 0 {
		e.Speedup = float64(bns) / float64(ons)
		e.OptimizedRecPerSec = float64(records) / (float64(ons) / 1e9)
		e.AllocsPerRecord = float64(oallocs) / float64(records)
	}
	if bns > 0 {
		e.BaselineRecPerSec = float64(records) / (float64(bns) / 1e9)
	}
	if oallocs > 0 {
		e.AllocReduction = float64(ballocs) / float64(oallocs)
	}
	return e, nil
}

// sentinelIngestEntry benchmarks the live daemon path against the batch
// analyzer over the same one-million-record capture: baseline is the
// in-process streaming scan (forensics.AnalyzeStream), "optimized" is a
// sentinel server fed through a real Unix socket with JSONL events
// enabled — i.e. the full blapd data path including framing, per-record
// metrics, and event emission. Identity is verified the way the daemon's
// contract states it: every live finding event must match the batch
// findings in order, frame, kind, peer, and detail.
func sentinelIngestEntry(seed int64) (benchEntry, error) {
	const records = 1_000_000
	var capture bytes.Buffer
	if _, err := snoop.Synthesize(&capture, snoop.SynthConfig{Records: records, Seed: seed}); err != nil {
		return benchEntry{}, fmt.Errorf("synthesizing capture: %w", err)
	}
	data := capture.Bytes()

	t0 := time.Now()
	batchRep, err := forensics.AnalyzeStream(bytes.NewReader(data))
	if err != nil {
		return benchEntry{}, fmt.Errorf("sentinel_ingest_1m baseline: %w", err)
	}
	bns := time.Since(t0).Nanoseconds()

	// Since PR 8 the measured configuration includes persistence: a real
	// store receives every finding and stream end through the bounded
	// persist queues while ingest runs. Since PR 9 it also includes the
	// resilience path: the client speaks the session resume protocol
	// (chunk framing + offset acks) and the server takes periodic
	// detector checkpoints through the same persist queues. The
	// -checkjson baseline gate holds this number to >= 95% of the PR 8
	// figure — resumability must stay off the hot path too.
	storeDir, err := os.MkdirTemp("", "blapd-bench-store-")
	if err != nil {
		return benchEntry{}, err
	}
	defer os.RemoveAll(storeDir)
	store, err := tsdb.Open(tsdb.Options{Dir: storeDir})
	if err != nil {
		return benchEntry{}, err
	}
	defer store.Close()

	sock := filepath.Join(os.TempDir(), fmt.Sprintf("blapd-bench-%d.sock", os.Getpid()))
	var events bytes.Buffer
	done := make(chan sentinel.StreamSummary, 1)
	srv := sentinel.New(sentinel.Config{
		UnixAddr:    sock,
		Output:      &events,
		Store:       store,
		ResumeGrace: time.Minute,
		// Checkpoint fsyncs stall the persist consumer for milliseconds
		// while the full-speed ingest keeps producing findings; the
		// default queue depth absorbs a daemon-paced load but not this
		// bench's burst rate, and the entry asserts zero drops.
		PersistBuffer: 1 << 16,
		OnStreamEnd:   func(sum sentinel.StreamSummary) { done <- sum },
	})
	if err := srv.Start(); err != nil {
		return benchEntry{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	// Best-of-5: a single-shot socket measurement swings ±10% (and the
	// occasional pass lands 30%+ out) with scheduler noise, which is
	// larger than the regressions this number exists to catch; the first
	// store-backed pass also pays one-time segment-creation cost. The
	// last pass's event stream is verified.
	var ons int64
	var sum sentinel.StreamSummary
	for pass := 0; pass < 5; pass++ {
		// Forced GC per pass, the degraded-sweep remedy from PR 7: by the
		// time the suite reaches this entry the heap carries the earlier
		// sweeps' garbage, and a collection landing inside the ~50 ms
		// measured window reads as a phantom 30%+ regression on one core.
		runtime.GC()
		events.Reset()
		t1 := time.Now()
		conn, _, err := sentinel.DialSession("unix", srv.UnixAddr(), fmt.Sprintf("bench-%d", pass), "", 10*time.Second)
		if err != nil {
			return benchEntry{}, err
		}
		if _, err := sentinel.WriteSessionBytes(conn, data); err != nil {
			return benchEntry{}, fmt.Errorf("streaming capture: %w", err)
		}
		if err := sentinel.WriteSessionFin(conn); err != nil {
			return benchEntry{}, fmt.Errorf("session fin: %w", err)
		}
		conn.Close()
		sum = <-done
		passNS := time.Since(t1).Nanoseconds()
		if sum.Status != sentinel.StatusClean || sum.Records != records {
			return benchEntry{}, fmt.Errorf("sentinel_ingest_1m: stream ended %q with %d records: %v",
				sum.Status, sum.Records, sum.Err)
		}
		if ons == 0 || passNS < ons {
			ons = passNS
		}
	}

	// Verify the live/batch parity contract on the real event stream.
	var live []sentinel.Event
	sc := bufio.NewScanner(bytes.NewReader(events.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev sentinel.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return benchEntry{}, fmt.Errorf("sentinel_ingest_1m: bad event line: %w", err)
		}
		if ev.Type == sentinel.EventFinding {
			live = append(live, ev)
		}
	}
	identical := len(live) == len(batchRep.Findings)
	for i := 0; identical && i < len(live); i++ {
		w := batchRep.Findings[i]
		identical = live[i].Frame == w.Frame && live[i].Kind == w.Kind &&
			live[i].Peer == w.Peer.String() && live[i].Detail == w.Detail
	}
	if !identical {
		return benchEntry{}, fmt.Errorf("sentinel_ingest_1m: live events diverge from batch findings")
	}
	snap := srv.Snapshot()
	if snap.Persist.Dropped != 0 {
		return benchEntry{}, fmt.Errorf("sentinel_ingest_1m: persistence dropped %d events in a healthy run", snap.Persist.Dropped)
	}
	if snap.Sessions.Checkpoints == 0 {
		return benchEntry{}, fmt.Errorf("sentinel_ingest_1m: no detector checkpoints taken — the measured config must include checkpointing")
	}

	e := benchEntry{
		Name:       "sentinel_ingest_1m",
		Baseline:   "forensics.AnalyzeStream (in-process batch)",
		Optimized:  "sentinel session-protocol ingest (zero-copy client writev) + JSONL events + tsdb persistence + detector checkpoints (live)",
		BaselineNs: bns, OptimizedNs: ons,
		Records: records, CaptureBytes: int64(len(data)),
		OutputsIdentical: identical,
	}
	if ons > 0 {
		e.Speedup = float64(bns) / float64(ons)
		e.OptimizedRecPerSec = float64(records) / (float64(ons) / 1e9)
	}
	if bns > 0 {
		e.BaselineRecPerSec = float64(records) / (float64(bns) / 1e9)
	}
	return e, nil
}

// sentinelIngestMultiEntry benchmarks the sharded fan-in: N concurrent
// unix-socket streams, each carrying the same one-million-record
// synthetic capture, against the same N streams run back to back. The
// concurrent side is what the per-core shards exist for — N detector
// pipelines and N shard writers with no shared queue and no global
// writer lock — so on a multi-core machine the aggregate records/sec
// must scale past the single-stream figure (the -checkjson baseline
// gate enforces >=2x on >=2 CPUs). Both sides are best-of-3; parity is
// verified per stream on the last concurrent pass: every stream's live
// finding events must match the batch findings in order, frame, kind,
// peer, and detail.
func sentinelIngestMultiEntry(seed int64) (benchEntry, error) {
	const records = 1_000_000
	streams := runtime.GOMAXPROCS(0)
	if streams < 2 {
		streams = 2 // still exercise the multi-stream path (no speedup on one core)
	}
	if streams > 8 {
		streams = 8
	}

	var capture bytes.Buffer
	if _, err := snoop.Synthesize(&capture, snoop.SynthConfig{Records: records, Seed: seed}); err != nil {
		return benchEntry{}, fmt.Errorf("synthesizing capture: %w", err)
	}
	data := capture.Bytes()
	batchRep, err := forensics.AnalyzeStream(bytes.NewReader(data))
	if err != nil {
		return benchEntry{}, fmt.Errorf("sentinel_ingest_multi batch reference: %w", err)
	}

	sock := filepath.Join(os.TempDir(), fmt.Sprintf("blapd-multi-%d.sock", os.Getpid()))
	var mu sync.Mutex
	var events bytes.Buffer
	sink := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return events.Write(p)
	})
	done := make(chan sentinel.StreamSummary, streams)
	srv := sentinel.New(sentinel.Config{
		UnixAddr:    sock,
		MaxStreams:  streams,
		ResumeGrace: time.Minute,
		Output:      sink,
		OnStreamEnd: func(sum sentinel.StreamSummary) { done <- sum },
	})
	if err := srv.Start(); err != nil {
		return benchEntry{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	// Every stream speaks the PR 9 session protocol (the resilient
	// configuration this figure gates); ids are unique per dial so no
	// stream accidentally resumes another.
	var sid atomic.Int64
	oneStream := func() error {
		conn, _, err := sentinel.DialSession("unix", srv.UnixAddr(), fmt.Sprintf("multi-%d", sid.Add(1)), "", 10*time.Second)
		if err != nil {
			return err
		}
		if _, err := sentinel.WriteSessionBytes(conn, data); err != nil {
			conn.Close()
			return fmt.Errorf("streaming capture: %w", err)
		}
		if err := sentinel.WriteSessionFin(conn); err != nil {
			conn.Close()
			return fmt.Errorf("session fin: %w", err)
		}
		return conn.Close()
	}
	waitAll := func(n int) error {
		for i := 0; i < n; i++ {
			sum := <-done
			if sum.Status != sentinel.StatusClean || sum.Records != records || sum.EventsDropped != 0 {
				return fmt.Errorf("stream %d ended %q with %d records (%d events dropped): %v",
					sum.ID, sum.Status, sum.Records, sum.EventsDropped, sum.Err)
			}
		}
		return nil
	}

	// Baseline: the same N captures, one stream at a time — the work a
	// single-writer funnel serializes regardless of core count.
	var bns int64
	for pass := 0; pass < 3; pass++ {
		mu.Lock()
		events.Reset()
		mu.Unlock()
		t0 := time.Now()
		for i := 0; i < streams; i++ {
			if err := oneStream(); err != nil {
				return benchEntry{}, fmt.Errorf("sentinel_ingest_multi baseline: %w", err)
			}
			if err := waitAll(1); err != nil {
				return benchEntry{}, fmt.Errorf("sentinel_ingest_multi baseline: %w", err)
			}
		}
		ns := time.Since(t0).Nanoseconds()
		if bns == 0 || ns < bns {
			bns = ns
		}
	}

	// Optimized: the same N captures, all streams in flight at once.
	var ons int64
	for pass := 0; pass < 3; pass++ {
		mu.Lock()
		events.Reset()
		mu.Unlock()
		errs := make(chan error, streams)
		t0 := time.Now()
		for i := 0; i < streams; i++ {
			go func() { errs <- oneStream() }()
		}
		for i := 0; i < streams; i++ {
			if err := <-errs; err != nil {
				return benchEntry{}, fmt.Errorf("sentinel_ingest_multi optimized: %w", err)
			}
		}
		if err := waitAll(streams); err != nil {
			return benchEntry{}, fmt.Errorf("sentinel_ingest_multi optimized: %w", err)
		}
		ns := time.Since(t0).Nanoseconds()
		if ons == 0 || ns < ons {
			ons = ns
		}
	}

	// Live-vs-batch parity per stream, on the last concurrent pass: the
	// shard writers interleave whole batches, so split by stream id and
	// compare each stream's findings against the one batch reference.
	mu.Lock()
	raw := append([]byte(nil), events.Bytes()...)
	mu.Unlock()
	liveByStream := make(map[uint64][]sentinel.Event)
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev sentinel.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return benchEntry{}, fmt.Errorf("sentinel_ingest_multi: bad event line: %w", err)
		}
		if ev.Type == sentinel.EventFinding {
			liveByStream[ev.Stream] = append(liveByStream[ev.Stream], ev)
		}
	}
	if len(liveByStream) != streams {
		return benchEntry{}, fmt.Errorf("sentinel_ingest_multi: findings from %d streams, want %d", len(liveByStream), streams)
	}
	for id, live := range liveByStream {
		if len(live) != len(batchRep.Findings) {
			return benchEntry{}, fmt.Errorf("sentinel_ingest_multi: stream %d has %d findings, batch has %d",
				id, len(live), len(batchRep.Findings))
		}
		for i, ev := range live {
			w := batchRep.Findings[i]
			if ev.Seq != uint64(i+1) || ev.Frame != w.Frame || ev.Kind != w.Kind ||
				ev.Peer != w.Peer.String() || ev.Detail != w.Detail {
				return benchEntry{}, fmt.Errorf("sentinel_ingest_multi: stream %d finding %d diverges from batch", id, i)
			}
		}
	}

	e := benchEntry{
		Name:      "sentinel_ingest_multi",
		Baseline:  fmt.Sprintf("%d session streams sequential (single-stream funnel)", streams),
		Optimized: fmt.Sprintf("%d session streams concurrent (sharded writers, shards=GOMAXPROCS)", streams),
		BaselineNs: bns, OptimizedNs: ons,
		Records: streams * records, Streams: streams,
		CaptureBytes:     int64(len(data)) * int64(streams),
		OutputsIdentical: true,
	}
	if ons > 0 {
		e.Speedup = float64(bns) / float64(ons)
		e.OptimizedRecPerSec = float64(streams*records) / (float64(ons) / 1e9)
	}
	if bns > 0 {
		e.BaselineRecPerSec = float64(streams*records) / (float64(bns) / 1e9)
	}
	return e, nil
}

// writerFunc adapts a function to io.Writer (the multi-stream bench's
// mutex-guarded event sink).
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// checkBenchJSON validates the shape of a bench JSON file: it must parse
// as a benchReport with a non-empty Results list whose entries all carry
// a name and timings, and any capture-scan entry must have verified
// output identity. Used by scripts/verify.sh as a CI gate.
func checkBenchJSON(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("%s: no results", path)
	}
	for i, e := range rep.Results {
		if e.Name == "" {
			return fmt.Errorf("%s: result %d has no name", path, i)
		}
		if e.BaselineNs <= 0 || e.OptimizedNs <= 0 {
			return fmt.Errorf("%s: result %q missing timings", path, e.Name)
		}
		if e.Records > 0 && !e.OutputsIdentical {
			return fmt.Errorf("%s: result %q did not verify output identity", path, e.Name)
		}
	}
	if len(rep.DegradedSweep) > 0 {
		if err := checkDegradedSweep(path, rep.DegradedSweep); err != nil {
			return err
		}
	}
	if len(rep.AttackMatrix) > 0 {
		if err := checkAttackMatrix(path, rep.AttackMatrix); err != nil {
			return err
		}
	}
	return nil
}

// checkAttackMatrix validates the PR 10 acceptance criteria on emitted
// cross-attack rows: at least five attacks with non-zero trials, every
// clean-channel attack with a detector rule detected exactly as often as
// it succeeds (live == batch == success), and the passkey-guard
// mitigation row holding the attack at zero on the clean channel.
func checkAttackMatrix(path string, rows []eval.AttackRow) error {
	attacks := make(map[string]bool)
	var sawGuardClean bool
	for _, r := range rows {
		if r.Trials <= 0 {
			return fmt.Errorf("%s: attack row (%s, %s) ran no trials", path, r.Attack, r.Channel)
		}
		attacks[r.Attack] = true
		if r.Channel == "clean" {
			if r.Attack == "passkey-guard" {
				sawGuardClean = true
				if r.Succeeded != 0 {
					return fmt.Errorf("%s: passkey-guard mitigation leaked: %d/%d attacks succeeded on a clean channel",
						path, r.Succeeded, r.Trials)
				}
			} else if r.DetectorKind != "-" && r.Detected != r.Succeeded {
				return fmt.Errorf("%s: clean-channel %s detected %d of %d successes via %s",
					path, r.Attack, r.Detected, r.Succeeded, r.DetectorKind)
			}
		}
	}
	if len(attacks) < 5 {
		return fmt.Errorf("%s: attack matrix covers %d attacks, want >= 5", path, len(attacks))
	}
	if !sawGuardClean {
		return fmt.Errorf("%s: attack matrix lacks the clean passkey-guard mitigation row", path)
	}
	return nil
}

// checkAgainstBaseline compares a fresh bench JSON against an older one.
// With minSpeedup == 0 it enforces the PR 5 acceptance gate: the
// sentinel_ingest_1m live-ingest throughput must be within 5% of the
// baseline's (observability instrumentation is nearly free). With
// minSpeedup > 0 it enforces the PR 6 batch-pipeline gate instead: both
// sentinel_ingest_1m and forensics_scan_1m must run at least minSpeedup
// times faster than the baseline, and when both artifacts record
// allocations per record the fresh run must not allocate more (2%
// tolerance for accounting jitter). checkMulti additionally holds
// sentinel_ingest_multi to the same 95% floor — the PR 9 gate, opt-in
// because older artifact pairs predate the resilient configuration.
// Both files are committed artifacts, so the check is deterministic in
// CI.
func checkAgainstBaseline(path, basePath string, minSpeedup float64, checkMulti bool) error {
	load := func(p, name string) (benchEntry, error) {
		raw, err := os.ReadFile(p)
		if err != nil {
			return benchEntry{}, err
		}
		var rep benchReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			return benchEntry{}, fmt.Errorf("%s: %w", p, err)
		}
		for _, e := range rep.Results {
			if e.Name == name {
				return e, nil
			}
		}
		return benchEntry{}, fmt.Errorf("%s: no %s entry", p, name)
	}

	compare := func(name string) error {
		cur, err := load(path, name)
		if err != nil {
			return err
		}
		base, err := load(basePath, name)
		if err != nil {
			return err
		}
		if base.OptimizedRecPerSec <= 0 {
			return fmt.Errorf("%s: %s has no throughput", basePath, name)
		}
		ratio := cur.OptimizedRecPerSec / base.OptimizedRecPerSec
		if minSpeedup > 0 {
			if ratio < minSpeedup {
				return fmt.Errorf("%s speedup %.2fx below required %.2fx (%.0f rec/s vs baseline %.0f rec/s)",
					name, ratio, minSpeedup, cur.OptimizedRecPerSec, base.OptimizedRecPerSec)
			}
			if cur.AllocsPerRecord > 0 && base.AllocsPerRecord > 0 &&
				cur.AllocsPerRecord > base.AllocsPerRecord*1.02 {
				return fmt.Errorf("%s allocations regressed: %.4f allocs/record vs baseline %.4f",
					name, cur.AllocsPerRecord, base.AllocsPerRecord)
			}
			fmt.Printf("%s: %.2fM rec/s vs baseline %.2fM rec/s (%.2fx, floor %.2fx)\n",
				name, cur.OptimizedRecPerSec/1e6, base.OptimizedRecPerSec/1e6, ratio, minSpeedup)
			return nil
		}
		if ratio < 0.95 {
			return fmt.Errorf("%s throughput regressed: %.0f rec/s vs baseline %.0f rec/s (%.1f%%, floor 95%%)",
				name, cur.OptimizedRecPerSec, base.OptimizedRecPerSec, 100*ratio)
		}
		fmt.Printf("%s: %.2fM rec/s vs baseline %.2fM rec/s (%.1f%% — instrumentation overhead within 5%%)\n",
			name, cur.OptimizedRecPerSec/1e6, base.OptimizedRecPerSec/1e6, 100*ratio)
		return nil
	}

	if err := compare("sentinel_ingest_1m"); err != nil {
		return err
	}
	if minSpeedup > 0 {
		return compare("forensics_scan_1m")
	}
	if checkMulti {
		if err := compare("sentinel_ingest_multi"); err != nil {
			return err
		}
	}

	// PR 7 gates, triggered by the artifact itself: when the fresh file
	// carries a sentinel_ingest_multi entry it was produced by the
	// sharded daemon, so enforce the sharding acceptance criteria —
	// multi-stream aggregate throughput at least 2x the single-stream
	// figure (meaningful only when the recording machine had >=2 CPUs),
	// and the degraded sweep's parallel speedup restored to >=0.95.
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	byName := make(map[string]benchEntry, len(rep.Results))
	for _, e := range rep.Results {
		byName[e.Name] = e
	}
	multi, ok := byName["sentinel_ingest_multi"]
	if !ok {
		return nil // pre-shard artifact; nothing more to enforce
	}
	single, ok := byName["sentinel_ingest_1m"]
	if !ok || single.OptimizedRecPerSec <= 0 {
		return fmt.Errorf("%s: sentinel_ingest_multi without a single-stream figure to compare against", path)
	}
	ratio := multi.OptimizedRecPerSec / single.OptimizedRecPerSec
	if rep.GOMAXPROCS >= 2 {
		if ratio < 2 {
			return fmt.Errorf("sentinel_ingest_multi aggregate %.2fM rec/s is %.2fx the single-stream %.2fM rec/s (floor 2x on %d CPUs)",
				multi.OptimizedRecPerSec/1e6, ratio, single.OptimizedRecPerSec/1e6, rep.GOMAXPROCS)
		}
		fmt.Printf("sentinel_ingest_multi: %d streams, %.2fM rec/s aggregate = %.2fx single-stream (floor 2x)\n",
			multi.Streams, multi.OptimizedRecPerSec/1e6, ratio)
	} else {
		fmt.Printf("sentinel_ingest_multi: %d streams, %.2fM rec/s aggregate = %.2fx single-stream (2x floor waived: recorded on %d CPU)\n",
			multi.Streams, multi.OptimizedRecPerSec/1e6, ratio, rep.GOMAXPROCS)
	}
	deg, ok := byName["degraded_sweep_10trials"]
	if !ok {
		return fmt.Errorf("%s: missing degraded_sweep_10trials entry", path)
	}
	if deg.Speedup < 0.95 {
		return fmt.Errorf("degraded_sweep_10trials workers=%d speedup %.2fx below the 0.95 floor", rep.Workers, deg.Speedup)
	}
	fmt.Printf("degraded_sweep_10trials: workers=%d speedup %.2fx (floor 0.95)\n", rep.Workers, deg.Speedup)
	return nil
}

// checkDegradedSweep validates the PR 4 acceptance criteria on emitted
// degraded-channel rows: at least four loss settings, a clean reference
// row with full success, and legitimate pairing surviving every uniform
// loss setting at or below 5% via baseband retransmission.
func checkDegradedSweep(path string, rows []eval.DegradedRow) error {
	if len(rows) < 4 {
		return fmt.Errorf("%s: degraded sweep has %d settings, want >= 4", path, len(rows))
	}
	var sawClean, sawModerateLoss bool
	for _, r := range rows {
		if r.Trials <= 0 {
			return fmt.Errorf("%s: degraded row %q ran no trials", path, r.Label)
		}
		switch r.PlanSpec {
		case "none":
			sawClean = true
			if r.ExtractionOK != r.Trials || r.PageBlockingOK != r.Trials || r.LegitPairOK != r.Trials {
				return fmt.Errorf("%s: clean degraded row is not all-success: %+v", path, r)
			}
		case "drop=0.02", "drop=0.05":
			sawModerateLoss = true
			if r.LegitPairOK != r.Trials {
				return fmt.Errorf("%s: legitimate pairing must survive %s via ARQ: %+v", path, r.PlanSpec, r)
			}
		}
	}
	if !sawClean {
		return fmt.Errorf("%s: degraded sweep lacks a clean reference row", path)
	}
	if !sawModerateLoss {
		return fmt.Errorf("%s: degraded sweep lacks a <=5%% uniform loss row", path)
	}
	return nil
}

// pinCrackWorld reproduces the legacy-pairing capture the PIN cracking
// benchmarks run against: two 2.0 devices pair with PIN 8731 while an air
// sniffer records the handshake.
func pinCrackWorld() (*core.AirSniffer, error) {
	s := sim.NewScheduler(5)
	med := radio.NewMedium(s, radio.DefaultConfig())
	sniffer := core.NewAirSniffer(med)
	mk := func(addr bt.BDADDR) *host.Host {
		tr := hci.NewTransport(s, 100*time.Microsecond)
		controller.New(s, med, tr, controller.Config{Addr: addr, COD: bt.CODHeadset})
		h := host.New(s, tr, host.Config{
			Version: bt.V2_1, IOCap: bt.NoInputNoOutput,
			LegacyPairing: true, PINCode: "8731",
			AcceptIncoming: true, Discoverable: true, Connectable: true,
		}, host.Hooks{})
		h.Start()
		return h
	}
	a := mk(core.AddrM)
	mk(core.AddrC)
	s.Run(0)
	a.Pair(core.AddrC, func(error) {})
	s.RunFor(10 * time.Second)
	res, err := sniffer.CrackPIN(core.FourDigitPINs)
	if err != nil || res.PIN != "8731" {
		return nil, fmt.Errorf("benchtables: PIN crack world broken: %v %q", err, res.PIN)
	}
	return sniffer, nil
}
