// Command benchtables regenerates every table and figure of the paper's
// evaluation from the simulator, plus the ablation studies. With no flags
// it runs everything.
//
//	benchtables -table1 -table2 -trials 100
//	benchtables -figs
//	benchtables -ablations
//	benchtables -workers 8 -table2          # parallel campaign, same rows
//	benchtables -benchjson BENCH_pr1.json   # serial-vs-parallel timings
//
// The -workers flag sets the campaign engine's worker count for every
// sweep (0 = GOMAXPROCS). Results are bit-identical at any worker count;
// see internal/campaign.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bt"
	"repro/internal/btcrypto"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/hci"
	"repro/internal/host"
	"repro/internal/radio"
	"repro/internal/sim"
)

func main() {
	var (
		seed        = flag.Int64("seed", 1, "base random seed")
		trials      = flag.Int("trials", 100, "trials per device for Table II")
		table1      = flag.Bool("table1", false, "run Table I (link key extraction)")
		table2      = flag.Bool("table2", false, "run Table II (MITM success rates)")
		figs        = flag.Bool("figs", false, "run figure reproductions (2, 3, 7, 11, 12)")
		ablations   = flag.Bool("ablations", false, "run ablation studies")
		mitigations = flag.Bool("mitigations", false, "run the mitigation matrix")
		workers     = flag.Int("workers", 0, "campaign workers (0 = GOMAXPROCS)")
		benchjson   = flag.String("benchjson", "", "write serial-vs-parallel bench timings to this JSON file")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}

	if *benchjson != "" {
		if err := writeBenchJSON(*benchjson, *seed); err != nil {
			fail(err)
		}
		fmt.Println("wrote", *benchjson)
		if !*table1 && !*table2 && !*figs && !*ablations && !*mitigations {
			return
		}
	}

	all := !*table1 && !*table2 && !*figs && !*ablations && !*mitigations

	if *table1 || all {
		rows, err := eval.RunTableIWorkers(*seed, *workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.RenderTableI(rows))
	}

	if *table2 || all {
		rows, err := eval.RunTableIIWorkers(*seed, *trials, *workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.RenderTableII(rows))
	}

	if *figs || all {
		res, err := eval.RunAllFigures(*seed, *workers)
		if err != nil {
			fail(err)
		}
		fmt.Println("FIG 2a: fresh pairing HCI flow (victim side)")
		for _, n := range res.Fig2.FreshPairing {
			fmt.Println("  ", n)
		}
		fmt.Println("FIG 2b: bonded re-authentication HCI flow")
		for _, n := range res.Fig2.BondedReauth {
			fmt.Println("  ", n)
		}
		fmt.Println()

		fmt.Println("FIG 3: link key in an HCI dump")
		fmt.Printf("  key: %s (matches bond: %v, frame %d via %s)\n",
			res.Fig3.Key, res.Fig3.MatchesBond, res.Fig3.Hit.Frame, res.Fig3.Hit.Source)
		fmt.Printf("  packet: %s\n\n", res.Fig3.PacketHex)

		fmt.Println("FIG 7: IO capability mapping")
		fmt.Println(res.Fig7.V42)
		fmt.Println(res.Fig7.V50)

		fmt.Println("FIG 11: link key via USB sniff (C) vs HCI dump (M)")
		fmt.Printf("  USB:   %s (hex offset %d)\n", res.Fig11.USBKey, res.Fig11.USBOffset)
		fmt.Printf("  dump:  %s\n  match: %v\n\n", res.Fig11.SnoopKey, res.Fig11.Match)

		fmt.Println("FIG 12a: HCI dump for normal pairing")
		fmt.Println(res.Fig12.NormalPairing)
		fmt.Println("FIG 12b: HCI dump for pairing under page blocking attack")
		fmt.Println(res.Fig12.PageBlocked)
		fmt.Printf("page blocking signature present: %v\n\n", res.Fig12.Signature)
	}

	if *mitigations || all {
		rows, err := eval.RunMitigationMatrixWorkers(*seed, *workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.RenderMitigationMatrix(rows))

		sweep, err := eval.RunForensicsSweepWorkers(*seed, 10, *workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.RenderForensicsSweep(sweep))
	}

	if *ablations || all {
		jrows := eval.RunJitterAblationWorkers(*seed, 40, []time.Duration{
			0, 5 * time.Millisecond, 30 * time.Millisecond, 120 * time.Millisecond,
		}, *workers)
		fmt.Println(eval.RenderJitterAblation(jrows))

		prows, err := eval.RunPLOCWindowAblationWorkers(*seed, []time.Duration{
			5 * time.Second, 15 * time.Second, 25 * time.Second, 40 * time.Second,
		}, *workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.RenderPLOCWindow(prows))

		srows, err := eval.RunStallAblation(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.RenderStallAblation(srows))

		trows, err := eval.RunLMPTimeoutAblationWorkers(*seed, []time.Duration{
			time.Second, 5 * time.Second, 30 * time.Second,
		}, *workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.RenderLMPTimeout(trows))
	}
}

// benchEntry is one baseline-vs-optimized timing comparison.
type benchEntry struct {
	Name        string  `json:"name"`
	Baseline    string  `json:"baseline"`
	Optimized   string  `json:"optimized"`
	BaselineNs  int64   `json:"baseline_ns"`
	OptimizedNs int64   `json:"optimized_ns"`
	Speedup     float64 `json:"speedup"`
}

type benchReport struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	Workers    int          `json:"workers"`
	Note       string       `json:"note"`
	Results    []benchEntry `json:"results"`
}

// writeBenchJSON times the serial path against the parallel campaign (and
// the one-shot SAFER+ against the precomputed context) and writes the
// comparison as JSON. On a single-core machine the parallel numbers show
// only the scheduling overhead; the determinism tests guarantee the rows
// themselves are identical either way.
func writeBenchJSON(path string, seed int64) error {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		// Still exercise the pool path (overhead-only on one core).
		workers = 2
	}
	report := benchReport{
		GOMAXPROCS: workers,
		Workers:    workers,
		Note:       "simulator wall-clock, not radio time; parallel speedup requires >1 CPU",
	}
	entry := func(name, baseline, optimized string, base, opt func() error) error {
		t0 := time.Now()
		if err := base(); err != nil {
			return fmt.Errorf("%s baseline: %w", name, err)
		}
		bns := time.Since(t0).Nanoseconds()
		t1 := time.Now()
		if err := opt(); err != nil {
			return fmt.Errorf("%s optimized: %w", name, err)
		}
		ons := time.Since(t1).Nanoseconds()
		e := benchEntry{
			Name: name, Baseline: baseline, Optimized: optimized,
			BaselineNs: bns, OptimizedNs: ons,
		}
		if ons > 0 {
			e.Speedup = float64(bns) / float64(ons)
		}
		report.Results = append(report.Results, e)
		return nil
	}

	err := entry("table2_10trials", "workers=1", fmt.Sprintf("workers=%d", workers),
		func() error { _, err := eval.RunTableIIWorkers(seed, 10, 1); return err },
		func() error { _, err := eval.RunTableIIWorkers(seed, 10, workers); return err })
	if err != nil {
		return err
	}
	err = entry("forensics_sweep_10trials", "workers=1", fmt.Sprintf("workers=%d", workers),
		func() error { _, err := eval.RunForensicsSweepWorkers(seed, 10, 1); return err },
		func() error { _, err := eval.RunForensicsSweepWorkers(seed, 10, workers); return err })
	if err != nil {
		return err
	}

	sniffer, err := pinCrackWorld()
	if err != nil {
		return err
	}
	err = entry("pin_crack_8731", "CrackPIN", fmt.Sprintf("CrackPINParallel(workers=%d)", workers),
		func() error { _, err := sniffer.CrackPIN(core.FourDigitPINs); return err },
		func() error { _, err := sniffer.CrackPINParallel(core.FourDigitPINs, workers); return err })
	if err != nil {
		return err
	}

	// SAFER+ one-shot (per-call key schedule) vs precomputed context.
	const n = 20000
	err = entry("saferplus_ar_20k", "Ar(key, block)", "NewSAFERPlus(key).Ar(block)",
		func() error {
			key, block := [16]byte{1, 2, 3}, [16]byte{4, 5, 6}
			for i := 0; i < n; i++ {
				block = btcrypto.Ar(key, block)
			}
			return nil
		},
		func() error {
			c := btcrypto.NewSAFERPlus([16]byte{1, 2, 3})
			block := [16]byte{4, 5, 6}
			for i := 0; i < n; i++ {
				block = c.Ar(block)
			}
			return nil
		})
	if err != nil {
		return err
	}
	err = entry("e1_auth_20k", "E1(key, rand, addr)", "NewE1Context(key).Auth(rand, addr)",
		func() error {
			key, challenge, addr := [16]byte{1}, [16]byte{2}, [6]byte{3}
			for i := 0; i < n; i++ {
				challenge[0] = byte(i)
				_, _ = btcrypto.E1(key, challenge, addr)
			}
			return nil
		},
		func() error {
			c := btcrypto.NewE1Context([16]byte{1})
			challenge, addr := [16]byte{2}, [6]byte{3}
			for i := 0; i < n; i++ {
				challenge[0] = byte(i)
				_, _ = c.Auth(challenge, addr)
			}
			return nil
		})
	if err != nil {
		return err
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// pinCrackWorld reproduces the legacy-pairing capture the PIN cracking
// benchmarks run against: two 2.0 devices pair with PIN 8731 while an air
// sniffer records the handshake.
func pinCrackWorld() (*core.AirSniffer, error) {
	s := sim.NewScheduler(5)
	med := radio.NewMedium(s, radio.DefaultConfig())
	sniffer := core.NewAirSniffer(med)
	mk := func(addr bt.BDADDR) *host.Host {
		tr := hci.NewTransport(s, 100*time.Microsecond)
		controller.New(s, med, tr, controller.Config{Addr: addr, COD: bt.CODHeadset})
		h := host.New(s, tr, host.Config{
			Version: bt.V2_1, IOCap: bt.NoInputNoOutput,
			LegacyPairing: true, PINCode: "8731",
			AcceptIncoming: true, Discoverable: true, Connectable: true,
		}, host.Hooks{})
		h.Start()
		return h
	}
	a := mk(core.AddrM)
	mk(core.AddrC)
	s.Run(0)
	a.Pair(core.AddrC, func(error) {})
	s.RunFor(10 * time.Second)
	res, err := sniffer.CrackPIN(core.FourDigitPINs)
	if err != nil || res.PIN != "8731" {
		return nil, fmt.Errorf("benchtables: PIN crack world broken: %v %q", err, res.PIN)
	}
	return sniffer, nil
}
