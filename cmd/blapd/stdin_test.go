package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/snoop"
)

func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "blapd")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestStdinContract pins the -stdin one-shot CLI on the batch pipeline:
// exit 3 on findings with deterministic (byte-identical across runs)
// finding lines, and exit 1 naming the death offset for a capture cut
// mid-record — the same offset the incremental scanner computes.
func TestStdinContract(t *testing.T) {
	bin := buildBinary(t)

	var buf bytes.Buffer
	stats, err := snoop.Synthesize(&buf, snoop.SynthConfig{Records: 4000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if stats.KeyExposures == 0 {
		t.Fatal("fixture lost its findings")
	}
	data := buf.Bytes()

	run := func(input []byte) (int, string) {
		var stdout, stderr bytes.Buffer
		cmd := exec.Command(bin, "-stdin")
		cmd.Stdin = bytes.NewReader(input)
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		err := cmd.Run()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("running blapd -stdin: %v\n%s", err, stderr.String())
		}
		return code, stdout.String() + "\x00" + stderr.String()
	}

	findingLines := func(out string) []string {
		var lines []string
		for _, l := range strings.Split(out, "\n") {
			if strings.Contains(l, `"type":"finding"`) {
				var ev map[string]any
				if err := json.Unmarshal([]byte(l), &ev); err != nil {
					t.Fatalf("bad finding line %q: %v", l, err)
				}
				lines = append(lines, l)
			}
		}
		return lines
	}

	code1, out1 := run(data)
	if code1 != exitFindings {
		t.Fatalf("findings capture exited %d, want %d", code1, exitFindings)
	}
	first := findingLines(out1)
	if len(first) == 0 {
		t.Fatal("no finding events emitted")
	}
	code2, out2 := run(data)
	if code2 != exitFindings {
		t.Fatalf("second run exited %d, want %d", code2, exitFindings)
	}
	if second := findingLines(out2); !equalLines(first, second) {
		t.Fatalf("finding lines differ across identical runs:\nrun1: %d lines\nrun2: %d lines", len(first), len(second))
	}

	// Truncated capture: exit 1, stderr names the death offset.
	cut := len(data) - 9
	sc := snoop.NewScanner(bytes.NewReader(data[:cut]))
	for sc.Scan() {
	}
	if sc.Err() == nil {
		t.Fatal("reference scanner saw no truncation")
	}
	code, out := run(data[:cut])
	if code != 1 {
		t.Fatalf("truncated capture exited %d, want 1", code)
	}
	want := fmt.Sprintf("offset %d", sc.Offset())
	if !strings.Contains(out, want) || !strings.Contains(out, "truncated") {
		t.Fatalf("truncation output lacks %q:\n%s", want, out)
	}
}

func equalLines(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
