// Command blapd is the live BLAP detection daemon: it accepts btsnoop
// streams over TCP and Unix sockets, runs the incremental forensic
// detector on each connection as bytes arrive, and emits findings as
// JSONL events on stdout the moment they are detected — not at EOF.
// An HTTP endpoint serves /metrics (JSON counters, per-stream lag, and
// ingest/detect latency histograms with p50/p90/p99 — per stream and
// aggregate, plus scan/push/drain/emit stage timings), /healthz (503
// once draining), and — with -pprof — the standard /debug/pprof mux.
// With -store, findings, stream ends, and periodic metrics snapshots
// also persist to an embedded time-series store, queryable over HTTP
// via /query?series=findings|ends|hist.
//
//	blapd -tcp 127.0.0.1:9011 -http 127.0.0.1:9012
//	blapd -tcp 127.0.0.1:9011 -http 127.0.0.1:9012 -pprof   # + /debug/pprof
//	blapd -tcp 127.0.0.1:9011 -http 127.0.0.1:9012 -store /var/lib/blapd -retention 168h
//	blapd -unix /run/blapd.sock
//	blapd -stdin < capture.btsnoop        # one-shot; exit 3 on findings
//	blapd -send capture.btsnoop -tcp host:9011   # stream a file to a daemon
//	blapd -send capture.btsnoop -tcp host:9011 -session job-7   # resumable send
//	blapd -smoke                          # self-contained end-to-end check
//
// Clients that pass -session speak the session resume protocol: if the
// transport dies mid-send, the daemon parks the stream for -resume-grace
// and the client reconnects with capped exponential backoff + jitter,
// resuming from the last byte the daemon acknowledged. With -store the
// daemon also checkpoints detector state every -checkpoint-every capture
// bytes, so a killed-and-restarted daemon recovers parked sessions from
// disk (logged at startup).
//
// SIGINT/SIGTERM drain the daemon: listeners close, in-flight streams
// get -drain-timeout to finish, stragglers are force-closed; parked
// sessions are checkpointed and end with status "aborted".
//
// Exit codes: 0 on success, 1 on error, 2 on usage; -stdin exits 3 when
// the capture produced at least one finding (the same contract as
// hcidump -analyze); -send exits 4 when a partial payload was delivered
// but the send could not be completed (the daemon may still hold the
// parked remainder).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sentinel"
	"repro/internal/tsdb"
)

// exitFindings matches hcidump -analyze: one-shot analysis found signatures.
const exitFindings = 3

// exitPartialSend distinguishes a -send that delivered some payload but
// could not finish (daemon may hold a parked remainder) from a send that
// failed outright — operators retry the former with the same -session.
const exitPartialSend = 4

func main() {
	var (
		tcpAddr      = flag.String("tcp", "", "btsnoop ingestion TCP address (empty disables)")
		unixAddr     = flag.String("unix", "", "btsnoop ingestion Unix socket path (empty disables)")
		httpAddr     = flag.String("http", "", "metrics/health HTTP address (empty disables)")
		maxStreams   = flag.Int("max-streams", 64, "max concurrent ingestion streams; excess connections are rejected")
		shards       = flag.Int("shards", 0, "event shard count for the output fan-in (0 = GOMAXPROCS); -shards 1 keeps the single-writer layout and reproduces the pre-shard output byte-for-byte on a single stream")
		readTimeout  = flag.Duration("read-timeout", 30*time.Second, "per-read idle deadline on ingestion sockets (0 = default, negative disables)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight streams on shutdown")
		pprofFlag    = flag.Bool("pprof", false, "expose /debug/pprof profiling handlers on the -http address")
		stdin        = flag.Bool("stdin", false, "one-shot: ingest a single capture from stdin and exit (3 if findings)")
		send         = flag.String("send", "", "client mode: stream the given capture file to a running daemon at -tcp or -unix")
		smoke        = flag.Bool("smoke", false, "self-contained end-to-end check on ephemeral sockets; exit 0/1")
		storeDir     = flag.String("store", "", "persist findings, stream ends, and metrics snapshots to an embedded time-series store at this directory (adds /query to -http)")
		retention    = flag.Duration("retention", 0, "drop stored segments older than this; 0 keeps everything (needs -store)")
		metricsEvery = flag.Duration("metrics-every", 10*time.Second, "interval between persisted metrics snapshots (negative disables; needs -store)")
		resumeGrace  = flag.Duration("resume-grace", 0, "how long a disconnected session-protocol stream is parked awaiting resume (0 = 2m default, negative disables parking)")
		ckptEvery    = flag.Int64("checkpoint-every", 0, "capture-byte interval between detector checkpoints for session streams (0 = 8MiB default, negative disables; needs -store to matter)")
		ackEvery     = flag.Int64("ack-every", 0, "payload-byte interval between session acks (0 = 1MiB default)")
		tenantQuota  = flag.Int("tenant-quota", 0, "max concurrent sessions per tenant, admitted ahead of -max-streams (0 = unlimited)")
		watchdog     = flag.Duration("watchdog", 0, "force-fail any stream whose detector makes no progress for this long (0 disables)")
		session      = flag.String("session", "", "with -send: session id for resumable transfer (empty = legacy raw stream)")
		tenant       = flag.String("tenant", "", "with -send -session: tenant label for per-tenant admission quotas")
		connTimeout  = flag.Duration("connect-timeout", 5*time.Second, "with -send: per-attempt dial/handshake timeout")
		cutAt        = flag.Int64("cut", 0, "with -send -session: test hook — kill the transport after this many payload bytes on the first attempt, then reconnect and resume")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: blapd [-tcp addr] [-unix path] [-http addr] [-stdin] [-send capture] [-smoke]")
		os.Exit(2)
	}

	switch {
	case *smoke:
		if err := runSmoke(os.Stderr, *shards); err != nil {
			fail(err)
		}
		fmt.Println("blapd smoke: ok")
	case *send != "":
		if err := runSend(*send, *tcpAddr, *unixAddr, *session, *tenant, *connTimeout, *cutAt); err != nil {
			if errors.Is(err, errPartialSend) {
				fmt.Fprintln(os.Stderr, "blapd:", err)
				os.Exit(exitPartialSend)
			}
			fail(err)
		}
	case *stdin:
		os.Exit(runStdin(*maxStreams, *shards))
	default:
		if *tcpAddr == "" && *unixAddr == "" {
			fmt.Fprintln(os.Stderr, "blapd: no ingestion listener; set -tcp and/or -unix (or use -stdin/-send/-smoke)")
			os.Exit(2)
		}
		if *pprofFlag && *httpAddr == "" {
			fmt.Fprintln(os.Stderr, "blapd: -pprof needs -http")
			os.Exit(2)
		}
		if *storeDir == "" && *retention != 0 {
			fmt.Fprintln(os.Stderr, "blapd: -retention needs -store")
			os.Exit(2)
		}
		cfg := sentinel.Config{
			TCPAddr:         *tcpAddr,
			UnixAddr:        *unixAddr,
			HTTPAddr:        *httpAddr,
			MaxStreams:      *maxStreams,
			Shards:          *shards,
			ReadTimeout:     *readTimeout,
			EnablePprof:     *pprofFlag,
			ResumeGrace:     *resumeGrace,
			CheckpointEvery: *ckptEvery,
			AckEvery:        *ackEvery,
			TenantQuota:     *tenantQuota,
			Watchdog:        *watchdog,
			Output:          os.Stdout,
		}
		var store *tsdb.Store
		if *storeDir != "" {
			var err error
			store, err = tsdb.Open(tsdb.Options{
				Dir:       *storeDir,
				Retention: *retention,
				// Metrics snapshots decay to 10-minute resolution once an
				// hour old; event series persist verbatim until retention.
				Downsample: map[string]tsdb.Downsampler{
					sentinel.SeriesHist: sentinel.HistDownsample(time.Hour, 10*time.Minute),
				},
			})
			if err != nil {
				fail(fmt.Errorf("opening store: %w", err))
			}
			cfg.Store = store
			cfg.MetricsEvery = *metricsEvery
			fmt.Fprintf(os.Stderr, "blapd: persisting to %s\n", *storeDir)
		}
		err := runDaemon(cfg, *drainTimeout)
		if store != nil {
			// The daemon has drained (persist queues flushed) by now; seal
			// and fsync the tail segments before exiting.
			if cerr := store.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "blapd: closing store: %v\n", cerr)
			}
		}
		if err != nil {
			fail(err)
		}
	}
}

// runDaemon serves until SIGINT/SIGTERM, then drains.
func runDaemon(cfg sentinel.Config, drain time.Duration) error {
	s := sentinel.New(cfg)
	if cfg.Store != nil {
		// Before accepting connections, replay any detector checkpoints a
		// previous (killed) daemon left behind: those sessions come back
		// parked and resumable from their checkpoint offsets.
		n, err := s.RecoverSessions()
		if err != nil {
			return fmt.Errorf("recovering sessions: %w", err)
		}
		if n > 0 {
			fmt.Fprintf(os.Stderr, "blapd: recovered %d parked session(s) from store\n", n)
		}
	}
	if err := s.Start(); err != nil {
		return err
	}
	for _, l := range []struct{ name, addr string }{
		{"tcp", s.TCPAddr()}, {"unix", s.UnixAddr()}, {"http", s.HTTPAddr()},
	} {
		if l.addr != "" {
			fmt.Fprintf(os.Stderr, "blapd: listening %s %s\n", l.name, l.addr)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Fprintf(os.Stderr, "blapd: %s, draining (up to %s)\n", got, drain)

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "blapd: drain deadline hit; streams force-closed")
	}
	return nil
}

// runStdin ingests one capture from stdin, emitting events on stdout.
func runStdin(maxStreams, shards int) int {
	s := sentinel.New(sentinel.Config{MaxStreams: maxStreams, Shards: shards, Output: os.Stdout})
	sum := s.Ingest("stdin", "stdin", os.Stdin)
	if sum.Err != nil && sum.Status != sentinel.StatusClean {
		fmt.Fprintf(os.Stderr, "blapd: stream ended %s: %v\n", sum.Status, sum.Err)
		return 1
	}
	if sum.Findings > 0 {
		return exitFindings
	}
	return 0
}

// errPartialSend marks a send that delivered some payload but could not
// finish; main translates it to exitPartialSend so operators know the
// daemon may hold a parked remainder worth resuming.
var errPartialSend = errors.New("partial send")

// runSend streams a capture file to a running daemon — the companion
// client for testing a deployed blapd without a phone in hand. Dial
// failures retry with capped exponential backoff + jitter. With
// -session the transfer is resumable: a mid-send transport failure
// reconnects under the same session id and resumes from the byte offset
// the daemon's hello reports.
func runSend(path, tcpAddr, unixAddr, session, tenant string, connTimeout time.Duration, cut int64) error {
	network, addr := "tcp", tcpAddr
	if unixAddr != "" {
		network, addr = "unix", unixAddr
	}
	if addr == "" {
		return fmt.Errorf("-send needs a daemon address via -tcp or -unix")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if session != "" {
		return sendSession(f, path, network, addr, session, tenant, connTimeout, cut)
	}
	if cut != 0 {
		return fmt.Errorf("-cut needs -session (the raw protocol cannot resume)")
	}
	pol := core.DefaultBackoff
	var conn net.Conn
	for attempt := 1; ; attempt++ {
		conn, err = net.DialTimeout(network, addr, connTimeout)
		if err == nil {
			break
		}
		if attempt >= pol.Attempts {
			return fmt.Errorf("dialing %s %s: %w", network, addr, err)
		}
		d := sendJitter(pol.Base(attempt))
		fmt.Fprintf(os.Stderr, "blapd: dial %s %s failed (%v); retry in %s\n", network, addr, err, d)
		time.Sleep(d)
	}
	defer conn.Close()
	n, err := io.Copy(conn, f)
	if err != nil {
		if n > 0 {
			return fmt.Errorf("%w: %d bytes of %s delivered before the raw stream died: %v", errPartialSend, n, path, err)
		}
		return fmt.Errorf("streaming %s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "blapd: sent %d bytes from %s to %s %s\n", n, path, network, addr)
	return nil
}

// finWaitTimeout bounds how long a session send waits, after writing
// the fin marker, for the daemon to finish draining the socket and
// close its side. The daemon's backlog past fin is bounded by socket
// buffers plus one batch ring, so this only fires if the daemon is
// wedged — and then the send reports a partial delivery rather than
// claiming success it cannot confirm.
const finWaitTimeout = 2 * time.Minute

// sendSession runs the resumable transfer loop: dial with the session
// handshake, seek to the daemon's hello offset, stream chunks, and on
// any transport failure reconnect with backoff and resume. `fails`
// counts consecutive attempts without forward progress; it resets
// whenever the daemon's acknowledged offset advances, so a flaky link
// that still moves bytes never exhausts the retry budget.
//
// The daemon acks delivery progress on the same connection, and the
// client MUST drain those acks: closing a TCP socket with unread data
// in the receive buffer sends RST, which destroys capture bytes the
// daemon has not yet read. For the same reason a successful send waits
// for the daemon to process the fin and close its side (EOF) before
// closing — "sent" here means daemon-confirmed, not buffered-in-flight.
func sendSession(f *os.File, path, network, addr, session, tenant string, connTimeout time.Duration, cut int64) error {
	pol := core.DefaultBackoff
	var (
		delivered int64 // highest daemon-confirmed resume offset seen
		pushed    int64 // payload bytes written by this process
		stream    uint64
		fails     int
		cutArmed  = cut > 0
	)
	for {
		conn, hello, err := sentinel.DialSession(network, addr, session, tenant, connTimeout)
		if err != nil {
			fails++
			if fails >= pol.Attempts {
				if delivered > 0 || pushed > 0 {
					return fmt.Errorf("%w: %d bytes of %s pushed (daemon confirmed offset %d) under session %q: %v",
						errPartialSend, pushed, path, delivered, session, err)
				}
				return fmt.Errorf("dialing %s %s: %w", network, addr, err)
			}
			d := sendJitter(pol.Base(fails))
			fmt.Fprintf(os.Stderr, "blapd: session dial failed (%v); retry in %s\n", err, d)
			time.Sleep(d)
			continue
		}
		stream = hello.Stream
		if hello.Offset > delivered {
			fails = 0
			delivered = hello.Offset
		}
		if _, err := f.Seek(hello.Offset, io.SeekStart); err != nil {
			conn.Close()
			return err
		}
		var r io.Reader = f
		if cutArmed {
			if rem := cut - hello.Offset; rem > 0 {
				r = &faults.CutReader{R: f, N: rem}
			} else {
				cutArmed = false
			}
		}
		// Drain acks for the lifetime of this connection. The goroutine
		// ends on EOF (daemon finished the stream and closed), on the
		// post-fin read deadline, or when this side closes the conn after
		// a write error.
		var acked atomic.Int64
		var drainErr error
		readDone := make(chan struct{})
		go func() {
			defer close(readDone)
			sc := bufio.NewScanner(conn)
			for sc.Scan() {
				var ev sentinel.Event
				if json.Unmarshal(sc.Bytes(), &ev) != nil {
					continue
				}
				if ev.Type == sentinel.EventSessionAck && ev.Offset > acked.Load() {
					acked.Store(ev.Offset)
				}
			}
			drainErr = sc.Err()
		}()
		n, err := sentinel.WriteSessionChunks(conn, r)
		pushed += n
		if err == nil {
			err = sentinel.WriteSessionFin(conn)
		}
		finSent := err == nil
		if finSent {
			_ = conn.SetReadDeadline(time.Now().Add(finWaitTimeout))
			<-readDone
		}
		conn.Close()
		<-readDone
		if a := acked.Load(); a > delivered {
			fails = 0
			delivered = a
		}
		if finSent {
			if drainErr == nil {
				fmt.Fprintf(os.Stderr, "blapd: sent %d bytes from %s to %s %s (session %q, stream %d, resumed from offset %d)\n",
					n, path, network, addr, session, stream, hello.Offset)
				return nil
			}
			// Fin went out but the daemon never confirmed the stream end.
			// Reconnecting could land on a completed session and restream
			// from zero, so report the partial delivery instead.
			return fmt.Errorf("%w: fin sent for %s but the daemon did not confirm the stream end (confirmed offset %d) under session %q: %v",
				errPartialSend, path, delivered, session, drainErr)
		}
		if errors.Is(err, faults.ErrCut) {
			// The -cut test hook fired: an intentional mid-send death, not a
			// retry-budget failure. Reconnect immediately and resume.
			cutArmed = false
			fmt.Fprintf(os.Stderr, "blapd: transport cut at payload byte %d (test hook); reconnecting session %q\n", cut, session)
			continue
		}
		fails++
		if fails >= pol.Attempts {
			return fmt.Errorf("%w: %d bytes of %s pushed (daemon confirmed offset %d) under session %q: %v",
				errPartialSend, pushed, path, delivered, session, err)
		}
		d := sendJitter(pol.Base(fails))
		fmt.Fprintf(os.Stderr, "blapd: session send died (%v); reconnecting in %s\n", err, d)
		time.Sleep(d)
	}
}

// sendJitter spreads a backoff delay ±25% so a fleet of clients
// retrying against one recovering daemon doesn't thundering-herd it.
func sendJitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d - d/4 + time.Duration(rand.Int63n(int64(d)/2+1))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "blapd:", err)
	os.Exit(1)
}
