// Command blapd is the live BLAP detection daemon: it accepts btsnoop
// streams over TCP and Unix sockets, runs the incremental forensic
// detector on each connection as bytes arrive, and emits findings as
// JSONL events on stdout the moment they are detected — not at EOF.
// An HTTP endpoint serves /metrics (JSON counters, per-stream lag, and
// ingest/detect latency histograms with p50/p90/p99 — per stream and
// aggregate, plus scan/push/drain/emit stage timings), /healthz (503
// once draining), and — with -pprof — the standard /debug/pprof mux.
// With -store, findings, stream ends, and periodic metrics snapshots
// also persist to an embedded time-series store, queryable over HTTP
// via /query?series=findings|ends|hist.
//
//	blapd -tcp 127.0.0.1:9011 -http 127.0.0.1:9012
//	blapd -tcp 127.0.0.1:9011 -http 127.0.0.1:9012 -pprof   # + /debug/pprof
//	blapd -tcp 127.0.0.1:9011 -http 127.0.0.1:9012 -store /var/lib/blapd -retention 168h
//	blapd -unix /run/blapd.sock
//	blapd -stdin < capture.btsnoop        # one-shot; exit 3 on findings
//	blapd -send capture.btsnoop -tcp host:9011   # stream a file to a daemon
//	blapd -smoke                          # self-contained end-to-end check
//
// SIGINT/SIGTERM drain the daemon: listeners close, in-flight streams
// get -drain-timeout to finish, stragglers are force-closed.
//
// Exit codes: 0 on success, 1 on error, 2 on usage; -stdin exits 3 when
// the capture produced at least one finding (the same contract as
// hcidump -analyze).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/sentinel"
	"repro/internal/tsdb"
)

// exitFindings matches hcidump -analyze: one-shot analysis found signatures.
const exitFindings = 3

func main() {
	var (
		tcpAddr      = flag.String("tcp", "", "btsnoop ingestion TCP address (empty disables)")
		unixAddr     = flag.String("unix", "", "btsnoop ingestion Unix socket path (empty disables)")
		httpAddr     = flag.String("http", "", "metrics/health HTTP address (empty disables)")
		maxStreams   = flag.Int("max-streams", 64, "max concurrent ingestion streams; excess connections are rejected")
		shards       = flag.Int("shards", 0, "event shard count for the output fan-in (0 = GOMAXPROCS); -shards 1 keeps the single-writer layout and reproduces the pre-shard output byte-for-byte on a single stream")
		readTimeout  = flag.Duration("read-timeout", 30*time.Second, "per-read idle deadline on ingestion sockets (0 = default, negative disables)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight streams on shutdown")
		pprofFlag    = flag.Bool("pprof", false, "expose /debug/pprof profiling handlers on the -http address")
		stdin        = flag.Bool("stdin", false, "one-shot: ingest a single capture from stdin and exit (3 if findings)")
		send         = flag.String("send", "", "client mode: stream the given capture file to a running daemon at -tcp or -unix")
		smoke        = flag.Bool("smoke", false, "self-contained end-to-end check on ephemeral sockets; exit 0/1")
		storeDir     = flag.String("store", "", "persist findings, stream ends, and metrics snapshots to an embedded time-series store at this directory (adds /query to -http)")
		retention    = flag.Duration("retention", 0, "drop stored segments older than this; 0 keeps everything (needs -store)")
		metricsEvery = flag.Duration("metrics-every", 10*time.Second, "interval between persisted metrics snapshots (negative disables; needs -store)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: blapd [-tcp addr] [-unix path] [-http addr] [-stdin] [-send capture] [-smoke]")
		os.Exit(2)
	}

	switch {
	case *smoke:
		if err := runSmoke(os.Stderr, *shards); err != nil {
			fail(err)
		}
		fmt.Println("blapd smoke: ok")
	case *send != "":
		if err := runSend(*send, *tcpAddr, *unixAddr); err != nil {
			fail(err)
		}
	case *stdin:
		os.Exit(runStdin(*maxStreams, *shards))
	default:
		if *tcpAddr == "" && *unixAddr == "" {
			fmt.Fprintln(os.Stderr, "blapd: no ingestion listener; set -tcp and/or -unix (or use -stdin/-send/-smoke)")
			os.Exit(2)
		}
		if *pprofFlag && *httpAddr == "" {
			fmt.Fprintln(os.Stderr, "blapd: -pprof needs -http")
			os.Exit(2)
		}
		if *storeDir == "" && *retention != 0 {
			fmt.Fprintln(os.Stderr, "blapd: -retention needs -store")
			os.Exit(2)
		}
		cfg := sentinel.Config{
			TCPAddr:     *tcpAddr,
			UnixAddr:    *unixAddr,
			HTTPAddr:    *httpAddr,
			MaxStreams:  *maxStreams,
			Shards:      *shards,
			ReadTimeout: *readTimeout,
			EnablePprof: *pprofFlag,
			Output:      os.Stdout,
		}
		var store *tsdb.Store
		if *storeDir != "" {
			var err error
			store, err = tsdb.Open(tsdb.Options{
				Dir:       *storeDir,
				Retention: *retention,
				// Metrics snapshots decay to 10-minute resolution once an
				// hour old; event series persist verbatim until retention.
				Downsample: map[string]tsdb.Downsampler{
					sentinel.SeriesHist: sentinel.HistDownsample(time.Hour, 10*time.Minute),
				},
			})
			if err != nil {
				fail(fmt.Errorf("opening store: %w", err))
			}
			cfg.Store = store
			cfg.MetricsEvery = *metricsEvery
			fmt.Fprintf(os.Stderr, "blapd: persisting to %s\n", *storeDir)
		}
		err := runDaemon(cfg, *drainTimeout)
		if store != nil {
			// The daemon has drained (persist queues flushed) by now; seal
			// and fsync the tail segments before exiting.
			if cerr := store.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "blapd: closing store: %v\n", cerr)
			}
		}
		if err != nil {
			fail(err)
		}
	}
}

// runDaemon serves until SIGINT/SIGTERM, then drains.
func runDaemon(cfg sentinel.Config, drain time.Duration) error {
	s := sentinel.New(cfg)
	if err := s.Start(); err != nil {
		return err
	}
	for _, l := range []struct{ name, addr string }{
		{"tcp", s.TCPAddr()}, {"unix", s.UnixAddr()}, {"http", s.HTTPAddr()},
	} {
		if l.addr != "" {
			fmt.Fprintf(os.Stderr, "blapd: listening %s %s\n", l.name, l.addr)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Fprintf(os.Stderr, "blapd: %s, draining (up to %s)\n", got, drain)

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "blapd: drain deadline hit; streams force-closed")
	}
	return nil
}

// runStdin ingests one capture from stdin, emitting events on stdout.
func runStdin(maxStreams, shards int) int {
	s := sentinel.New(sentinel.Config{MaxStreams: maxStreams, Shards: shards, Output: os.Stdout})
	sum := s.Ingest("stdin", "stdin", os.Stdin)
	if sum.Err != nil && sum.Status != sentinel.StatusClean {
		fmt.Fprintf(os.Stderr, "blapd: stream ended %s: %v\n", sum.Status, sum.Err)
		return 1
	}
	if sum.Findings > 0 {
		return exitFindings
	}
	return 0
}

// runSend streams a capture file to a running daemon — the companion
// client for testing a deployed blapd without a phone in hand.
func runSend(path, tcpAddr, unixAddr string) error {
	network, addr := "tcp", tcpAddr
	if unixAddr != "" {
		network, addr = "unix", unixAddr
	}
	if addr == "" {
		return fmt.Errorf("-send needs a daemon address via -tcp or -unix")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	conn, err := net.Dial(network, addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	n, err := io.Copy(conn, f)
	if err != nil {
		return fmt.Errorf("streaming %s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "blapd: sent %d bytes from %s to %s %s\n", n, path, network, addr)
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "blapd:", err)
	os.Exit(1)
}
