package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/forensics"
	"repro/internal/sentinel"
	"repro/internal/snoop"
)

// runSmoke is blapd's self-contained end-to-end check, wired into
// scripts/verify.sh: start a server on ephemeral sockets, stream a
// synthesized capture through the Unix socket like a real client, and
// verify the live JSONL events match a batch forensics.Analyze of the
// same capture — plus that /metrics and /healthz answer sanely.
func runSmoke(log io.Writer) error {
	const records = 25_000
	var capture bytes.Buffer
	if _, err := snoop.Synthesize(&capture, snoop.SynthConfig{Records: records, Seed: 42}); err != nil {
		return fmt.Errorf("synthesize: %w", err)
	}
	recs, err := snoop.ReadAll(capture.Bytes())
	if err != nil {
		return err
	}
	want := forensics.Analyze(recs).Findings
	if len(want) == 0 {
		return fmt.Errorf("smoke fixture produced no findings; synth config is broken")
	}

	var events bytes.Buffer
	done := make(chan sentinel.StreamSummary, 1)
	sock := filepath.Join(os.TempDir(), fmt.Sprintf("blapd-smoke-%d.sock", os.Getpid()))
	s := sentinel.New(sentinel.Config{
		UnixAddr:    sock,
		HTTPAddr:    "127.0.0.1:0",
		EnablePprof: true,
		Output:      &events,
		OnStreamEnd: func(sum sentinel.StreamSummary) { done <- sum },
	})
	if err := s.Start(); err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	conn, err := net.Dial("unix", s.UnixAddr())
	if err != nil {
		return err
	}
	if _, err := conn.Write(capture.Bytes()); err != nil {
		return fmt.Errorf("streaming capture: %w", err)
	}
	conn.Close()

	var sum sentinel.StreamSummary
	select {
	case sum = <-done:
	case <-time.After(30 * time.Second):
		return fmt.Errorf("stream never finished")
	}
	if sum.Status != sentinel.StatusClean {
		return fmt.Errorf("stream ended %q: %v", sum.Status, sum.Err)
	}
	if sum.Records != records {
		return fmt.Errorf("ingested %d records, sent %d", sum.Records, records)
	}

	// Live events must equal the batch findings record-for-record.
	var live []sentinel.Event
	sc := bufio.NewScanner(bytes.NewReader(events.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev sentinel.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("bad JSONL line %q: %w", sc.Text(), err)
		}
		if ev.Type == sentinel.EventFinding {
			live = append(live, ev)
		}
	}
	if len(live) != len(want) {
		return fmt.Errorf("live emitted %d findings, batch found %d", len(live), len(want))
	}
	for i, ev := range live {
		w := want[i]
		if ev.Frame != w.Frame || ev.Kind != w.Kind || ev.Peer != w.Peer.String() || ev.Detail != w.Detail {
			return fmt.Errorf("finding %d diverges:\nlive:  %+v\nbatch: %+v", i, ev, w)
		}
	}

	// Metrics and health must be served and consistent.
	resp, err := http.Get("http://" + s.HTTPAddr() + "/metrics")
	if err != nil {
		return fmt.Errorf("/metrics: %w", err)
	}
	var snap sentinel.MetricsSnapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("/metrics decode: %w", err)
	}
	if snap.Records != records || snap.StreamsTotal != 1 {
		return fmt.Errorf("metrics inconsistent: %+v", snap)
	}
	// The PR 5 observability contract: /metrics must carry populated
	// latency histograms — sampled ingest timing, one detect observation
	// per finding, and the scan/push/drain/emit stage breakdown.
	if snap.IngestLatency.Count == 0 {
		return fmt.Errorf("ingest latency histogram empty: %+v", snap.IngestLatency)
	}
	if snap.DetectLatency.Count != uint64(len(live)) {
		return fmt.Errorf("detect latency observed %d findings, want %d", snap.DetectLatency.Count, len(live))
	}
	for _, stage := range []string{"scan", "push", "drain", "emit"} {
		if snap.Stages[stage].Count == 0 {
			return fmt.Errorf("stage %q histogram empty: %+v", stage, snap.Stages)
		}
	}
	hresp, err := http.Get("http://" + s.HTTPAddr() + "/healthz")
	if err != nil {
		return fmt.Errorf("/healthz: %w", err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return fmt.Errorf("/healthz returned %d", hresp.StatusCode)
	}
	// pprof was opted in above, so the profiling mux must answer.
	presp, err := http.Get("http://" + s.HTTPAddr() + "/debug/pprof/cmdline")
	if err != nil {
		return fmt.Errorf("/debug/pprof/cmdline: %w", err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		return fmt.Errorf("/debug/pprof/cmdline returned %d", presp.StatusCode)
	}

	fmt.Fprintf(log, "blapd smoke: %d records, %d live findings == batch, ingest p99 %s, detect p99 %s, metrics/healthz/pprof ok\n",
		records, len(live), usStr(snap.IngestLatency.P99US), usStr(snap.DetectLatency.P99US))
	return nil
}

func usStr(us float64) string {
	return time.Duration(us * 1e3).Round(time.Microsecond).String()
}
