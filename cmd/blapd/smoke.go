package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/forensics"
	"repro/internal/sentinel"
	"repro/internal/snoop"
	"repro/internal/tsdb"
)

// smokeStreams is how many concurrent clients the smoke run drives
// through the Unix socket. Four is enough to land on more than one
// shard under the default shard count while keeping the check fast.
const smokeStreams = 4

// runSmoke is blapd's self-contained end-to-end check, wired into
// scripts/verify.sh: start a server on ephemeral sockets, stream a
// synthesized capture through the Unix socket over several concurrent
// connections like real clients, and verify every stream's live JSONL
// events match a batch forensics.Analyze of the same capture — plus
// that /metrics reports per-shard counters that sum to the aggregate,
// and /healthz answers sanely.
func runSmoke(log io.Writer, shards int) error {
	const records = 25_000
	var capture bytes.Buffer
	if _, err := snoop.Synthesize(&capture, snoop.SynthConfig{Records: records, Seed: 42}); err != nil {
		return fmt.Errorf("synthesize: %w", err)
	}
	recs, err := snoop.ReadAll(capture.Bytes())
	if err != nil {
		return err
	}
	want := forensics.Analyze(recs).Findings
	if len(want) == 0 {
		return fmt.Errorf("smoke fixture produced no findings; synth config is broken")
	}

	// The smoke run also exercises the PR 8 persistence path: a real
	// store in a temp dir, written through by the persist queues and the
	// metrics snapshotter, then read back over /query.
	storeDir, err := os.MkdirTemp("", "blapd-smoke-store-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(storeDir)
	store, err := tsdb.Open(tsdb.Options{Dir: storeDir})
	if err != nil {
		return fmt.Errorf("opening store: %w", err)
	}
	defer store.Close()

	var events bytes.Buffer
	done := make(chan sentinel.StreamSummary, smokeStreams)
	sock := filepath.Join(os.TempDir(), fmt.Sprintf("blapd-smoke-%d.sock", os.Getpid()))
	s := sentinel.New(sentinel.Config{
		UnixAddr:     sock,
		HTTPAddr:     "127.0.0.1:0",
		MaxStreams:   smokeStreams,
		Shards:       shards,
		EnablePprof:  true,
		Output:       &events,
		Store:        store,
		MetricsEvery: 50 * time.Millisecond,
		// The PR 9 resilience leg below needs parking, frequent acks so a
		// resume restarts near the cut, and checkpoints small enough to
		// fire several times over this capture.
		ResumeGrace:     time.Minute,
		AckEvery:        4096,
		CheckpointEvery: 64 << 10,
		OnStreamEnd:     func(sum sentinel.StreamSummary) { done <- sum },
	})
	if err := s.Start(); err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	errs := make(chan error, smokeStreams)
	var wg sync.WaitGroup
	for i := 0; i < smokeStreams; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("unix", s.UnixAddr())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			if _, err := conn.Write(capture.Bytes()); err != nil {
				errs <- fmt.Errorf("streaming capture: %w", err)
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}

	for i := 0; i < smokeStreams; i++ {
		var sum sentinel.StreamSummary
		select {
		case sum = <-done:
		case <-time.After(30 * time.Second):
			return fmt.Errorf("stream %d/%d never finished", i+1, smokeStreams)
		}
		if sum.Status != sentinel.StatusClean {
			return fmt.Errorf("stream %d ended %q: %v", sum.ID, sum.Status, sum.Err)
		}
		if sum.Records != records {
			return fmt.Errorf("stream %d ingested %d records, sent %d", sum.ID, sum.Records, records)
		}
		if sum.EventsDropped != 0 {
			return fmt.Errorf("stream %d dropped %d events in a healthy smoke run", sum.ID, sum.EventsDropped)
		}
	}

	// Every stream's live events must equal the batch findings
	// record-for-record — the aggregate parity the sharded fan-in must
	// preserve even with all streams interleaving on one output.
	live := map[uint64][]sentinel.Event{}
	sc := bufio.NewScanner(bytes.NewReader(events.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev sentinel.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("bad JSONL line %q: %w", sc.Text(), err)
		}
		if ev.Type == sentinel.EventFinding {
			live[ev.Stream] = append(live[ev.Stream], ev)
		}
	}
	if len(live) != smokeStreams {
		return fmt.Errorf("findings seen on %d streams, want %d", len(live), smokeStreams)
	}
	for id, evs := range live {
		if len(evs) != len(want) {
			return fmt.Errorf("stream %d emitted %d findings, batch found %d", id, len(evs), len(want))
		}
		for i, ev := range evs {
			w := want[i]
			if ev.Frame != w.Frame || ev.Kind != w.Kind || ev.Peer != w.Peer.String() || ev.Detail != w.Detail {
				return fmt.Errorf("stream %d finding %d diverges:\nlive:  %+v\nbatch: %+v", id, i, ev, w)
			}
		}
	}

	// Metrics and health must be served and consistent.
	resp, err := http.Get("http://" + s.HTTPAddr() + "/metrics")
	if err != nil {
		return fmt.Errorf("/metrics: %w", err)
	}
	var snap sentinel.MetricsSnapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("/metrics decode: %w", err)
	}
	if snap.Records != smokeStreams*records || snap.StreamsTotal != smokeStreams {
		return fmt.Errorf("metrics inconsistent: %+v", snap)
	}
	// The PR 7 shard contract: /metrics carries one row per event shard,
	// and the shard rows sum to the aggregates they replaced.
	wantShards := shards
	if wantShards <= 0 {
		wantShards = runtime.GOMAXPROCS(0)
	}
	if len(snap.Shards) != wantShards {
		return fmt.Errorf("/metrics has %d shard rows, want %d", len(snap.Shards), wantShards)
	}
	var shardRecords, shardStreams, shardDropped uint64
	for _, row := range snap.Shards {
		shardRecords += row.Records
		shardStreams += row.StreamsTotal
		shardDropped += row.EventsDropped
	}
	if shardRecords != snap.Records || shardStreams != snap.StreamsTotal {
		return fmt.Errorf("shard rows sum to %d records / %d streams, aggregate says %d / %d",
			shardRecords, shardStreams, snap.Records, snap.StreamsTotal)
	}
	if shardDropped != 0 {
		return fmt.Errorf("shards dropped %d events in a healthy smoke run", shardDropped)
	}
	// The PR 5 observability contract: /metrics must carry populated
	// latency histograms — sampled ingest timing, one detect observation
	// per finding, and the scan/push/drain/emit stage breakdown.
	if snap.IngestLatency.Count == 0 {
		return fmt.Errorf("ingest latency histogram empty: %+v", snap.IngestLatency)
	}
	if snap.DetectLatency.Count != uint64(smokeStreams*len(want)) {
		return fmt.Errorf("detect latency observed %d findings, want %d", snap.DetectLatency.Count, smokeStreams*len(want))
	}
	for _, stage := range []string{"scan", "push", "drain", "emit"} {
		if snap.Stages[stage].Count == 0 {
			return fmt.Errorf("stage %q histogram empty: %+v", stage, snap.Stages)
		}
	}
	hresp, err := http.Get("http://" + s.HTTPAddr() + "/healthz")
	if err != nil {
		return fmt.Errorf("/healthz: %w", err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return fmt.Errorf("/healthz returned %d", hresp.StatusCode)
	}
	// pprof was opted in above, so the profiling mux must answer.
	presp, err := http.Get("http://" + s.HTTPAddr() + "/debug/pprof/cmdline")
	if err != nil {
		return fmt.Errorf("/debug/pprof/cmdline: %w", err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		return fmt.Errorf("/debug/pprof/cmdline returned %d", presp.StatusCode)
	}

	// The PR 8 persistence contract: every finding written through the
	// store comes back from /query, the stream filter isolates one
	// stream, stream ends are recorded, and a hist window query folds the
	// stored snapshot deltas into populated percentiles. Persistence is
	// asynchronous (a bounded queue off the hot path), so poll briefly
	// for the store writer and the snapshotter to catch up.
	wantFindings := smokeStreams * len(want)
	var qres sentinel.QueryResult
	deadline := time.Now().Add(15 * time.Second)
	for {
		if qres, err = smokeQuery(s.HTTPAddr(), "/query?series=findings"); err != nil {
			return err
		}
		if qres.Count >= wantFindings {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("store never caught up: /query has %d of %d findings", qres.Count, wantFindings)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if qres.Count != wantFindings {
		return fmt.Errorf("/query returned %d findings, wrote %d", qres.Count, wantFindings)
	}
	for id := range live {
		if qres, err = smokeQuery(s.HTTPAddr(), fmt.Sprintf("/query?series=findings&stream=%d", id)); err != nil {
			return err
		}
		if qres.Count != len(want) {
			return fmt.Errorf("/query stream=%d returned %d findings, want %d", id, qres.Count, len(want))
		}
	}
	if qres, err = smokeQuery(s.HTTPAddr(), "/query?series=ends"); err != nil {
		return err
	}
	if qres.Count != smokeStreams {
		return fmt.Errorf("/query returned %d stream ends, want %d", qres.Count, smokeStreams)
	}
	for {
		if qres, err = smokeQuery(s.HTTPAddr(), "/query?series=hist"); err != nil {
			return err
		}
		if qres.Count > 0 && qres.Ingest != nil && qres.Ingest.Count > 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("hist window never populated: %+v", qres)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if qres.Ingest.P50US <= 0 || qres.Ingest.P99US <= 0 {
		return fmt.Errorf("hist window percentiles unpopulated: %+v", qres.Ingest)
	}

	// The PR 9 resilience contract: a session-protocol stream whose
	// transport dies at the capture midpoint parks, resumes under the
	// same stream id from the daemon's acknowledged offset, and still
	// ends clean with the batch findings — while detector checkpoints
	// flow through the store.
	const resumeSID = "smoke-resume"
	rconn, hello, err := sentinel.DialSession("unix", s.UnixAddr(), resumeSID, "", 5*time.Second)
	if err != nil {
		return fmt.Errorf("session dial: %w", err)
	}
	resumeStream := hello.Stream
	cut := int64(capture.Len() / 2)
	if _, err := sentinel.WriteSessionChunks(rconn, &faults.CutReader{R: bytes.NewReader(capture.Bytes()), N: cut}); err != nil && !errors.Is(err, faults.ErrCut) {
		_ = rconn.Close()
		return fmt.Errorf("cut send: %w", err)
	}
	_ = rconn.Close()
	// Wait for the daemon to notice the dead transport and park the
	// session; reconnecting first would exercise only the fast-adopt
	// path, and this leg wants to prove a parked stream resumes.
	for {
		if snap, err = smokeMetrics(s.HTTPAddr()); err != nil {
			return err
		}
		if snap.Sessions.Parked >= 1 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("session never parked after transport cut: %+v", snap.Sessions)
		}
		time.Sleep(5 * time.Millisecond)
	}
	rconn, hello, err = sentinel.DialSession("unix", s.UnixAddr(), resumeSID, "", 5*time.Second)
	if err != nil {
		return fmt.Errorf("resume dial: %w", err)
	}
	defer rconn.Close()
	if hello.Stream != resumeStream {
		return fmt.Errorf("resumed as stream %d, was %d", hello.Stream, resumeStream)
	}
	if hello.Offset <= 0 || hello.Offset > cut {
		return fmt.Errorf("resume offset %d outside (0, %d]", hello.Offset, cut)
	}
	if _, err := sentinel.WriteSessionChunks(rconn, bytes.NewReader(capture.Bytes()[hello.Offset:])); err != nil {
		return fmt.Errorf("resumed send: %w", err)
	}
	if err := sentinel.WriteSessionFin(rconn); err != nil {
		return fmt.Errorf("fin: %w", err)
	}
	var rsum sentinel.StreamSummary
	select {
	case rsum = <-done:
	case <-time.After(30 * time.Second):
		return fmt.Errorf("resumed stream never ended")
	}
	if rsum.ID != resumeStream || rsum.Status != sentinel.StatusClean || rsum.Records != records {
		return fmt.Errorf("resumed stream ended id=%d status=%q records=%d (err %v), want clean stream %d with %d records",
			rsum.ID, rsum.Status, rsum.Records, rsum.Err, resumeStream, records)
	}
	var resumed []sentinel.Event
	rsc := bufio.NewScanner(bytes.NewReader(events.Bytes()))
	rsc.Buffer(make([]byte, 1<<20), 1<<20)
	for rsc.Scan() {
		var ev sentinel.Event
		if err := json.Unmarshal(rsc.Bytes(), &ev); err != nil {
			return fmt.Errorf("bad JSONL line %q: %w", rsc.Text(), err)
		}
		if ev.Type == sentinel.EventFinding && ev.Stream == resumeStream {
			resumed = append(resumed, ev)
		}
	}
	if len(resumed) != len(want) {
		return fmt.Errorf("resumed stream emitted %d findings across the cut, batch found %d", len(resumed), len(want))
	}
	for i, ev := range resumed {
		w := want[i]
		if ev.Frame != w.Frame || ev.Kind != w.Kind || ev.Peer != w.Peer.String() || ev.Detail != w.Detail {
			return fmt.Errorf("resumed finding %d diverges:\nlive:  %+v\nbatch: %+v", i, ev, w)
		}
	}
	if snap, err = smokeMetrics(s.HTTPAddr()); err != nil {
		return err
	}
	if snap.Sessions.ParkedTotal < 1 || snap.Sessions.Resumed < 1 || snap.Sessions.Checkpoints < 1 {
		return fmt.Errorf("session lifecycle counters unpopulated after resume: %+v", snap.Sessions)
	}

	fmt.Fprintf(log, "blapd smoke: %d streams x %d records over %d shards, live findings == batch on every stream, %d findings round-tripped through the store (window p50 %s p99 %s), session cut at byte %d resumed from %d with identical findings (%d checkpoints), ingest p99 %s, detect p99 %s, metrics/healthz/pprof/query ok\n",
		smokeStreams, records, wantShards, wantFindings, usStr(qres.Ingest.P50US), usStr(qres.Ingest.P99US), cut, hello.Offset, snap.Sessions.Checkpoints, usStr(snap.IngestLatency.P99US), usStr(snap.DetectLatency.P99US))
	return nil
}

// smokeMetrics fetches and decodes one /metrics snapshot.
func smokeMetrics(addr string) (sentinel.MetricsSnapshot, error) {
	var snap sentinel.MetricsSnapshot
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return snap, fmt.Errorf("/metrics: %w", err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, fmt.Errorf("/metrics decode: %w", err)
	}
	return snap, nil
}

// smokeQuery fetches one /query page from the smoke daemon.
func smokeQuery(addr, path string) (sentinel.QueryResult, error) {
	var res sentinel.QueryResult
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		return res, fmt.Errorf("%s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return res, fmt.Errorf("%s returned %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return res, fmt.Errorf("%s decode: %w", path, err)
	}
	return res, nil
}

func usStr(us float64) string {
	return time.Duration(us * 1e3).Round(time.Microsecond).String()
}
