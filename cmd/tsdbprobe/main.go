// Command tsdbprobe is a temporary measurement harness.
package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime/pprof"
	"time"

	"repro/internal/sentinel"
	"repro/internal/snoop"
	"repro/internal/tsdb"
)

func run(label string, data []byte, store *tsdb.Store) {
	sock := filepath.Join(os.TempDir(), fmt.Sprintf("probe-%s-%d.sock", label, os.Getpid()))
	var events bytes.Buffer
	done := make(chan sentinel.StreamSummary, 1)
	srv := sentinel.New(sentinel.Config{
		UnixAddr:    sock,
		Output:      &events,
		Store:       store,
		OnStreamEnd: func(sum sentinel.StreamSummary) { done <- sum },
	})
	if err := srv.Start(); err != nil {
		panic(err)
	}
	for pass := 0; pass < 5; pass++ {
		events.Reset()
		t0 := time.Now()
		conn, err := net.Dial("unix", srv.UnixAddr())
		if err != nil {
			panic(err)
		}
		if _, err := conn.Write(data); err != nil {
			panic(err)
		}
		conn.Close()
		sum := <-done
		ns := time.Since(t0).Nanoseconds()
		fmt.Printf("%s pass %d: %.1fms (%.1fM rec/s) status=%s findings=%d\n",
			label, pass, float64(ns)/1e6, float64(sum.Records)/(float64(ns)/1e9)/1e6, sum.Status, sum.Findings)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
}

func runTS(data []byte) {
	sock := filepath.Join(os.TempDir(), fmt.Sprintf("probe-ts-%d.sock", os.Getpid()))
	var events bytes.Buffer
	done := make(chan sentinel.StreamSummary, 1)
	srv := sentinel.New(sentinel.Config{
		UnixAddr:    sock,
		Output:      &events,
		Timestamps:  true,
		OnStreamEnd: func(sum sentinel.StreamSummary) { done <- sum },
	})
	if err := srv.Start(); err != nil {
		panic(err)
	}
	for pass := 0; pass < 5; pass++ {
		events.Reset()
		t0 := time.Now()
		conn, err := net.Dial("unix", srv.UnixAddr())
		if err != nil {
			panic(err)
		}
		if _, err := conn.Write(data); err != nil {
			panic(err)
		}
		conn.Close()
		sum := <-done
		ns := time.Since(t0).Nanoseconds()
		fmt.Printf("ts-only pass %d: %.1fms (%.1fM rec/s) findings=%d\n",
			pass, float64(ns)/1e6, float64(sum.Records)/(float64(ns)/1e9)/1e6, sum.Findings)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
}

func main() {
	var capture bytes.Buffer
	if _, err := snoop.Synthesize(&capture, snoop.SynthConfig{Records: 1_000_000, Seed: 1}); err != nil {
		panic(err)
	}
	data := capture.Bytes()

	run("nostore", data, nil)
	runTS(data)

	dir, _ := os.MkdirTemp("", "probe-store-")
	defer os.RemoveAll(dir)
	store, err := tsdb.Open(tsdb.Options{Dir: dir})
	if err != nil {
		panic(err)
	}
	defer store.Close()
	pf, _ := os.Create("/tmp/store.pprof")
	pprof.StartCPUProfile(pf)
	run("store", data, store)
	pprof.StopCPUProfile()
	pf.Close()
}
