// Package repro's benchmark harness regenerates every table and figure of
// the paper (go test -bench=.). Custom metrics carry the headline numbers:
// success percentages for Table II, vulnerable-system counts for Table I,
// and so on. Absolute wall-clock numbers measure the simulator, not real
// radios; the paper-facing outputs are the custom metrics.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bt"
	"repro/internal/btcrypto"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/eval"
	"repro/internal/forensics"
	"repro/internal/hci"
	"repro/internal/host"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/snoop"
	"repro/internal/usbsniff"
)

// --- Table I ---

// BenchmarkTableI regenerates Table I: all nine systems must come out
// vulnerable and all extracted keys must validate.
func BenchmarkTableI(b *testing.B) {
	var vulnerable, verified int
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunTableI(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		vulnerable, verified = 0, 0
		for _, r := range rows {
			if r.Vulnerable {
				vulnerable++
			}
			if r.KeyVerified {
				verified++
			}
		}
	}
	b.ReportMetric(float64(vulnerable), "vulnerable_systems")
	b.ReportMetric(float64(verified), "verified_keys")
}

// --- Table II ---

// BenchmarkTableII regenerates Table II with 25 trials per device per
// iteration (100-trial runs live in cmd/benchtables). The custom metrics
// are the aggregate success rates; the paper reports 42-60% and 100%.
func BenchmarkTableII(b *testing.B) {
	var basePct, blockPct float64
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunTableII(int64(i+1), 25)
		if err != nil {
			b.Fatal(err)
		}
		var base, block float64
		for _, r := range rows {
			base += r.BaselinePct()
			block += r.BlockingPct()
		}
		basePct = base / float64(len(rows))
		blockPct = block / float64(len(rows))
	}
	b.ReportMetric(basePct, "baseline_success_pct")
	b.ReportMetric(blockPct, "blocking_success_pct")
}

// BenchmarkBaselineMITMAttempt measures one raced MITM attempt (the
// per-trial cost behind Table II's middle column).
func BenchmarkBaselineMITMAttempt(b *testing.B) {
	wins := 0
	for i := 0; i < b.N; i++ {
		tb, err := core.NewTestbed(int64(i), core.TestbedOptions{})
		if err != nil {
			b.Fatal(err)
		}
		rep := core.RunBaselineMITM(tb.Sched, core.BaselineMITMConfig{
			Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
		})
		if rep.MITMEstablished {
			wins++
		}
	}
	b.ReportMetric(100*float64(wins)/float64(b.N), "success_pct")
}

// BenchmarkPageBlockingAttempt measures one page blocking run; the
// success metric must sit at 100.
func BenchmarkPageBlockingAttempt(b *testing.B) {
	wins := 0
	for i := 0; i < b.N; i++ {
		tb, err := core.NewTestbed(int64(i), core.TestbedOptions{})
		if err != nil {
			b.Fatal(err)
		}
		rep := core.RunPageBlocking(tb.Sched, core.PageBlockingConfig{
			Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
			UsePLOC: true,
		})
		if rep.MITMEstablished {
			wins++
		}
	}
	b.ReportMetric(100*float64(wins)/float64(b.N), "success_pct")
}

// --- Figures ---

// BenchmarkFig2 regenerates the pairing/re-authentication procedures.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunFig2(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3 regenerates the link-key-in-dump observation.
func BenchmarkFig3(b *testing.B) {
	matches := 0
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFig3(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if res.MatchesBond {
			matches++
		}
	}
	b.ReportMetric(100*float64(matches)/float64(b.N), "key_match_pct")
}

// BenchmarkFig7 regenerates the IO capability mapping tables.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := eval.RunFig7()
		if len(res.V42) == 0 || len(res.V50) == 0 {
			b.Fatal("empty mapping tables")
		}
	}
}

// BenchmarkFig11 regenerates the USB-vs-dump key comparison.
func BenchmarkFig11(b *testing.B) {
	matches := 0
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFig11(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if res.Match {
			matches++
		}
	}
	b.ReportMetric(100*float64(matches)/float64(b.N), "key_match_pct")
}

// BenchmarkFig12 regenerates the normal-vs-page-blocked trace comparison.
func BenchmarkFig12(b *testing.B) {
	signatures := 0
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFig12(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if res.Signature {
			signatures++
		}
	}
	b.ReportMetric(100*float64(signatures)/float64(b.N), "signature_pct")
}

// --- attack primitives ---

// BenchmarkLinkKeyExtractionSnoop measures the full Fig. 5 attack against
// an Android client.
func BenchmarkLinkKeyExtractionSnoop(b *testing.B) {
	found := 0
	for i := 0; i < b.N; i++ {
		tb, err := core.NewTestbed(int64(i), core.TestbedOptions{
			ClientPlatform: device.GalaxyS21Android11, Bond: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
			Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: core.ChannelHCISnoop,
		})
		if err == nil && rep.Key == tb.BondKey {
			found++
		}
	}
	b.ReportMetric(100*float64(found)/float64(b.N), "success_pct")
}

// BenchmarkLinkKeyExtractionUSB measures the Windows/USB variant.
func BenchmarkLinkKeyExtractionUSB(b *testing.B) {
	found := 0
	for i := 0; i < b.N; i++ {
		tb, err := core.NewTestbed(int64(i), core.TestbedOptions{
			ClientPlatform: device.Windows10MSDriver, ClientUSBSniffer: true, Bond: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
			Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: core.ChannelUSBSniff,
		})
		if err == nil && rep.Key == tb.BondKey {
			found++
		}
	}
	b.ReportMetric(100*float64(found)/float64(b.N), "success_pct")
}

// BenchmarkImpersonation measures the stolen-key validation flow.
func BenchmarkImpersonation(b *testing.B) {
	ok := 0
	for i := 0; i < b.N; i++ {
		tb, err := core.NewTestbed(int64(i), core.TestbedOptions{Bond: true})
		if err != nil {
			b.Fatal(err)
		}
		imp := core.RunImpersonation(tb.Sched, core.ImpersonationConfig{
			Attacker: tb.A, Victim: tb.M, ClientAddr: tb.C.Addr(), Key: tb.BondKey,
		})
		if imp.Success {
			ok++
		}
	}
	b.ReportMetric(100*float64(ok)/float64(b.N), "success_pct")
}

// --- ablations (DESIGN.md §5) ---

// BenchmarkAblationJitter sweeps the page-response jitter spread.
func BenchmarkAblationJitter(b *testing.B) {
	var degenerate, raced float64
	for i := 0; i < b.N; i++ {
		rows := eval.RunJitterAblation(int64(i+1), 12, []time.Duration{0, 30 * time.Millisecond})
		degenerate, raced = rows[0].Pct(), rows[1].Pct()
	}
	b.ReportMetric(degenerate, "zero_jitter_success_pct")
	b.ReportMetric(raced, "jittered_success_pct")
}

// BenchmarkAblationPLOCWindow sweeps the victim pairing delay against the
// supervision timeout, accumulating rates across iterations. Inside the
// window (and with keep-alive) the attack is deterministic; when the held
// link dies before the user pairs, the attack degenerates to the baseline
// page race — ~50%, exactly the regime page blocking was built to escape.
func BenchmarkAblationPLOCWindow(b *testing.B) {
	var inWindow, outWindow, keptAlive float64
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunPLOCWindowAblation(int64(i+1), []time.Duration{5 * time.Second, 30 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		// rows: [no-ka 5s, no-ka 30s, ka 5s, ka 30s]
		inWindow += pct(rows[0].Success)
		outWindow += pct(rows[1].Success)
		keptAlive += pct(rows[3].Success)
	}
	n := float64(b.N)
	b.ReportMetric(inWindow/n, "inside_window_pct")
	b.ReportMetric(outWindow/n, "missed_window_race_pct")
	b.ReportMetric(keptAlive/n, "keepalive_pct")
}

func pct(ok bool) float64 {
	if ok {
		return 100
	}
	return 0
}

// BenchmarkAblationLMPTimeout sweeps the client's LMP response timeout.
func BenchmarkAblationLMPTimeout(b *testing.B) {
	var ok float64
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunLMPTimeoutAblation(int64(i+1), []time.Duration{time.Second, 30 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		ok = 0
		for _, r := range rows {
			if r.Found {
				ok += 100 / float64(len(rows))
			}
		}
	}
	b.ReportMetric(ok, "extraction_success_pct")
}

// BenchmarkAblationStall compares the stall against the naive negative
// reply.
func BenchmarkAblationStall(b *testing.B) {
	var stallIntact, naiveIntact float64
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunStallAblation(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		stallIntact, naiveIntact = pct(rows[0].ClientBondIntact), pct(rows[1].ClientBondIntact)
	}
	b.ReportMetric(stallIntact, "stall_bond_intact_pct")
	b.ReportMetric(naiveIntact, "naive_bond_intact_pct")
}

// BenchmarkSnoopFilterOverhead measures the per-packet cost the §VII-A
// mitigation adds to the HCI dump module.
func BenchmarkSnoopFilterOverhead(b *testing.B) {
	wire := hci.EncodeCommand(&hci.LinkKeyRequestReply{
		Addr: bt.MustBDADDR("00:1a:7d:da:71:0a"),
		Key:  bt.MustLinkKey("c4f16e949f04ee9c0fd6b1330289c324"),
	}).Wire()
	b.Run("unfiltered", func(b *testing.B) {
		d := snoop.NewHCIDump()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d.Observe(0, hci.DirHostToController, wire)
			if d.Len() > 1<<16 {
				d.Reset()
			}
		}
	})
	b.Run("linkkeyfilter", func(b *testing.B) {
		d := snoop.NewHCIDump()
		d.Filter = snoop.LinkKeyFilter
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d.Observe(0, hci.DirHostToController, wire)
			if d.Len() > 1<<16 {
				d.Reset()
			}
		}
	})
}

// --- microbenchmarks of the substrates ---

func BenchmarkSAFERPlusAr(b *testing.B) {
	key := [16]byte{1, 2, 3}
	block := [16]byte{4, 5, 6}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		block = btcrypto.Ar(key, block)
	}
}

func BenchmarkE1(b *testing.B) {
	key := [16]byte{1}
	challenge := [16]byte{2}
	addr := [6]byte{3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		challenge[0] = byte(i)
		_, _ = btcrypto.E1(key, challenge, addr)
	}
}

func BenchmarkF2LinkKeyDerivation(b *testing.B) {
	w := make([]byte, 32)
	var n1, n2 [16]byte
	var a1, a2 [6]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n1[0] = byte(i)
		_ = btcrypto.F2(w, n1, n2, a1, a2)
	}
}

func BenchmarkHCICommandRoundTrip(b *testing.B) {
	cmd := &hci.LinkKeyRequestReply{
		Addr: bt.MustBDADDR("00:1a:7d:da:71:0a"),
		Key:  bt.MustLinkKey("c4f16e949f04ee9c0fd6b1330289c324"),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pkt := hci.EncodeCommand(cmd)
		if _, err := hci.ParseCommand(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnoopSerialize(b *testing.B) {
	d := snoop.NewHCIDump()
	wire := hci.EncodeEvent(&hci.LinkKeyRequest{Addr: bt.MustBDADDR("00:1a:7d:da:71:0a")}).Wire()
	for i := 0; i < 256; i++ {
		d.Observe(time.Duration(i)*time.Millisecond, hci.DirControllerToHost, wire)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Bytes(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUSBExtract(b *testing.B) {
	s := usbsniff.NewSniffer()
	addr := bt.MustBDADDR("00:1a:7d:da:71:0a")
	key := bt.MustLinkKey("c4f16e949f04ee9c0fd6b1330289c324")
	for i := 0; i < 64; i++ {
		s.Observe(0, hci.DirControllerToHost, hci.EncodeEvent(&hci.LinkKeyRequest{Addr: addr}).Wire())
	}
	s.Observe(0, hci.DirHostToController, hci.EncodeCommand(&hci.LinkKeyRequestReply{Addr: addr, Key: key}).Wire())
	raw := s.Raw()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if keys := usbsniff.ExtractLinkKeys(raw); len(keys) != 1 {
			b.Fatal("extraction failed")
		}
	}
}

func BenchmarkFullPairing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := core.NewTestbed(int64(i), core.TestbedOptions{Bond: true})
		if err != nil {
			b.Fatal(err)
		}
		if tb.BondKey.IsZero() {
			b.Fatal("no key derived")
		}
	}
}

// --- extension benchmarks ---

// BenchmarkEavesdropDecrypt measures the full eavesdropping pipeline: an
// encrypted session is sniffed, the key extracted, and the past capture
// decrypted.
func BenchmarkEavesdropDecrypt(b *testing.B) {
	recovered := 0
	for i := 0; i < b.N; i++ {
		tb, err := core.NewTestbed(int64(i), core.TestbedOptions{
			ClientPlatform: device.GalaxyS21Android11, Bond: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		sniffer := core.NewAirSniffer(tb.Medium)
		secret := []byte("bench secret payload 0123456789")
		tb.M.Host.Pair(tb.C.Addr(), func(err error) {
			if err != nil {
				return
			}
			conn := tb.M.Host.Connection(tb.C.Addr())
			tb.M.Host.Encrypt(conn, func(err error) {
				if err == nil {
					tb.M.Host.SendData(conn, secret)
				}
			})
		})
		tb.Sched.RunFor(10 * time.Second)
		tb.M.Host.Disconnect(tb.C.Addr())
		tb.Sched.RunFor(time.Second)
		rep, err := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
			Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: core.ChannelHCISnoop,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, rec := range sniffer.DecryptWithKey(rep.Key) {
			if rec.WasEncrypted && len(rec.Data) > 6 && string(rec.Data[6:]) == string(secret) {
				recovered++
			}
		}
	}
	b.ReportMetric(100*float64(recovered)/float64(b.N), "recovered_pct")
}

// BenchmarkKNOBBruteForce measures ciphertext-only key recovery as a
// function of the negotiated key size (the KNOB consequence).
func BenchmarkKNOBBruteForce(b *testing.B) {
	for _, size := range []int{1, 2} {
		size := size
		b.Run(fmt.Sprintf("keysize=%d", size), func(b *testing.B) {
			cracked := 0
			var tried int
			for i := 0; i < b.N; i++ {
				w, err := core.NewKNOBWorld(int64(i), size)
				if err != nil {
					b.Fatal(err)
				}
				secret := []byte("knob bench secret")
				w.Testbed.M.Host.Pair(w.Testbed.C.Addr(), func(err error) {
					if err != nil {
						return
					}
					conn := w.Testbed.M.Host.Connection(w.Testbed.C.Addr())
					w.Testbed.M.Host.Encrypt(conn, func(err error) {
						if err == nil {
							w.Testbed.M.Host.SendData(conn, secret)
						}
					})
				})
				w.Testbed.Sched.RunFor(10 * time.Second)
				_, n, ok := w.BruteForce(secret[:4])
				tried = n
				if ok {
					cracked++
				}
			}
			b.ReportMetric(100*float64(cracked)/float64(b.N), "cracked_pct")
			b.ReportMetric(float64(tried), "keys_tried")
		})
	}
}

// BenchmarkPINCrack measures the offline 4-digit PIN brute force against
// a sniffed legacy pairing.
func BenchmarkPINCrack(b *testing.B) {
	// Build one world and capture outside the timed loop; the measured
	// cost is the offline search itself.
	s := sim.NewScheduler(5)
	med := radio.NewMedium(s, radio.DefaultConfig())
	sniffer := core.NewAirSniffer(med)
	mk := func(addr bt.BDADDR) *host.Host {
		tr := hci.NewTransport(s, 100*time.Microsecond)
		controller.New(s, med, tr, controller.Config{Addr: addr, COD: bt.CODHeadset})
		h := host.New(s, tr, host.Config{
			Version: bt.V2_1, IOCap: bt.NoInputNoOutput,
			LegacyPairing: true, PINCode: "8731",
			AcceptIncoming: true, Discoverable: true, Connectable: true,
		}, host.Hooks{})
		h.Start()
		return h
	}
	a := mk(core.AddrM)
	mk(core.AddrC)
	s.Run(0)
	a.Pair(core.AddrC, func(error) {})
	s.RunFor(10 * time.Second)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sniffer.CrackPIN(core.FourDigitPINs)
		if err != nil || res.PIN != "8731" {
			b.Fatalf("crack failed: %v %q", err, res.PIN)
		}
	}
}

// BenchmarkPasskeyPairing measures a full 20-round passkey entry pairing.
func BenchmarkPasskeyPairing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.NewScheduler(int64(i))
		med := radio.NewMedium(s, radio.DefaultConfig())
		board := &host.PasskeyBoard{}
		mk := func(addr bt.BDADDR, cap bt.IOCapability) *host.Host {
			tr := hci.NewTransport(s, 100*time.Microsecond)
			controller.New(s, med, tr, controller.Config{Addr: addr, COD: bt.CODComputer})
			h := host.New(s, tr, host.Config{
				Version: bt.V5_0, IOCap: cap,
				AcceptIncoming: true, Discoverable: true, Connectable: true,
			}, host.Hooks{})
			h.Start()
			u := host.NewSimUser(s)
			u.Board = board
			u.AcceptUnexpected = true
			h.SetUI(u)
			return h
		}
		a := mk(core.AddrM, bt.KeyboardOnly)
		mk(core.AddrC, bt.DisplayYesNo)
		s.Run(0)
		ok := false
		a.Pair(core.AddrC, func(err error) { ok = err == nil })
		s.RunFor(30 * time.Second)
		if !ok {
			b.Fatal("passkey pairing failed")
		}
	}
}

// BenchmarkSAFERPlusContext measures the precomputed-key-schedule cipher
// context against the one-shot Ar above: the round keys are expanded once
// in NewSAFERPlus and reused every call.
func BenchmarkSAFERPlusContext(b *testing.B) {
	c := btcrypto.NewSAFERPlus([16]byte{1, 2, 3})
	block := [16]byte{4, 5, 6}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		block = c.Ar(block)
	}
}

// BenchmarkE1Context measures repeated authentications against one link
// key through the cached E1 context (the controller's hot path).
func BenchmarkE1Context(b *testing.B) {
	c := btcrypto.NewE1Context([16]byte{1})
	challenge := [16]byte{2}
	addr := [6]byte{3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		challenge[0] = byte(i)
		_, _ = c.Auth(challenge, addr)
	}
}

// --- campaign engine: serial vs parallel ---

// BenchmarkCampaignTableII runs the Table II sweep at several worker
// counts. The rows are bit-identical across sub-benchmarks (see
// internal/eval's determinism tests); only the wall clock moves, and only
// on multi-core hardware.
func BenchmarkCampaignTableII(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.RunTableIIWorkers(int64(i+1), 10, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPINCrackParallel measures the sharded early-cancel PIN search
// against the serial scan in BenchmarkPINCrack (same capture, same
// result, same Tried count).
func BenchmarkPINCrackParallel(b *testing.B) {
	s := sim.NewScheduler(5)
	med := radio.NewMedium(s, radio.DefaultConfig())
	sniffer := core.NewAirSniffer(med)
	mk := func(addr bt.BDADDR) *host.Host {
		tr := hci.NewTransport(s, 100*time.Microsecond)
		controller.New(s, med, tr, controller.Config{Addr: addr, COD: bt.CODHeadset})
		h := host.New(s, tr, host.Config{
			Version: bt.V2_1, IOCap: bt.NoInputNoOutput,
			LegacyPairing: true, PINCode: "8731",
			AcceptIncoming: true, Discoverable: true, Connectable: true,
		}, host.Hooks{})
		h.Start()
		return h
	}
	a := mk(core.AddrM)
	mk(core.AddrC)
	s.Run(0)
	a.Pair(core.AddrC, func(error) {})
	s.RunFor(10 * time.Second)

	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sniffer.CrackPINParallel(core.FourDigitPINs, workers)
				if err != nil || res.PIN != "8731" {
					b.Fatalf("crack failed: %v %q", err, res.PIN)
				}
			}
		})
	}
}

// BenchmarkE0Keystream measures raw cipher throughput.
func BenchmarkE0Keystream(b *testing.B) {
	st := btcrypto.NewE0([16]byte{1, 2, 3}, [6]byte{4, 5, 6}, 7)
	buf := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.XORKeyStream(buf)
	}
}

// BenchmarkMitigationMatrix runs the full attack-vs-defence matrix.
func BenchmarkMitigationMatrix(b *testing.B) {
	worked := 0
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunMitigationMatrix(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		worked = 0
		for _, r := range rows {
			if r.DefenceWorked {
				worked++
			}
		}
	}
	b.ReportMetric(float64(worked), "defences_effective")
}

// BenchmarkForensicAnalysis measures the capture analyzer over a
// page-blocked victim dump.
func BenchmarkForensicAnalysis(b *testing.B) {
	tb, err := core.NewTestbed(1, core.TestbedOptions{})
	if err != nil {
		b.Fatal(err)
	}
	rep := core.RunPageBlocking(tb.Sched, core.PageBlockingConfig{
		Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser, UsePLOC: true,
	})
	if !rep.MITMEstablished {
		b.Fatal("attack failed")
	}
	records := tb.M.Snoop.Records()
	b.ReportAllocs()
	b.ResetTimer()
	detected := 0
	for i := 0; i < b.N; i++ {
		report := forensics.Analyze(records)
		if report.HasFinding(forensics.FindingPageBlocking) {
			detected++
		}
	}
	b.ReportMetric(100*float64(detected)/float64(b.N), "detected_pct")
}
