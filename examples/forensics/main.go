// Forensic triage of HCI dumps: the paper's own evidence method turned
// into a tool. §VI-B2 confirms the page blocking attack by inspecting the
// victim's capture for the Connection_Request-then-Authentication_Requested
// pattern; this example runs three scenarios, writes their btsnoop files,
// and lets the analyzer say which device was attacked and how.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/forensics"
)

func main() {
	fmt.Println("== capture 1: an innocent pairing (victim's dump) ==")
	clean, err := core.NewTestbed(11, core.TestbedOptions{})
	if err != nil {
		log.Fatal(err)
	}
	clean.MUser.ExpectPairing(clean.C.Addr())
	clean.M.Host.Pair(clean.C.Addr(), func(error) {})
	clean.Sched.RunFor(30 * time.Second)
	triage(clean.M.PullSnoopLog())

	fmt.Println("\n== capture 2: a page-blocked pairing (victim's dump) ==")
	blocked, err := core.NewTestbed(12, core.TestbedOptions{})
	if err != nil {
		log.Fatal(err)
	}
	core.RunPageBlocking(blocked.Sched, core.PageBlockingConfig{
		Attacker: blocked.A, Client: blocked.C, Victim: blocked.M, VictimUser: blocked.MUser,
		UsePLOC: true,
	})
	triage(blocked.M.PullSnoopLog())

	fmt.Println("\n== capture 3: a link key extraction (accessory's dump) ==")
	stolen, err := core.NewTestbed(13, core.TestbedOptions{
		ClientPlatform: device.GalaxyS21Android11,
		Bond:           true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := core.RunLinkKeyExtraction(stolen.Sched, core.LinkKeyExtractionConfig{
		Attacker: stolen.A, Client: stolen.C, Target: stolen.M.Addr(), Channel: core.ChannelHCISnoop,
	}); err != nil {
		log.Fatal(err)
	}
	triage(stolen.C.PullSnoopLog())
}

func triage(data []byte, err error) {
	if err != nil {
		log.Fatal(err)
	}
	report, err := forensics.AnalyzeFile(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Render())
	switch {
	case report.HasFinding(forensics.FindingPageBlocking):
		fmt.Println("verdict: this device was PAGE-BLOCKED — the pairing went to an impostor")
	case report.HasFinding(forensics.FindingStalledAuthTimeout):
		fmt.Println("verdict: a bonded peer stalled authentication — link key likely HARVESTED")
	default:
		fmt.Println("verdict: no attack signature (but note any plaintext key exposures above)")
	}
}
