// Link key extraction through USB sniffing (paper §IV-B, §VI-B1,
// Fig. 11): the victim accessory is a Windows 10 PC whose host stack does
// not offer an HCI dump — but its Bluetooth controller is a USB dongle,
// and a bus analyzer sees every HCI packet, including the plaintext
// HCI_Link_Key_Request_Reply. The paper's tooling converts the raw
// capture to hex ASCII and searches for the "0b 04 16" opcode signature;
// this example does exactly that.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/snoop"
	"repro/internal/usbsniff"
)

func main() {
	tb, err := core.NewTestbed(1104, core.TestbedOptions{
		ClientPlatform:   device.Windows10MSDriver,
		ClientUSBSniffer: true, // the bus analyzer is clipped on
		Bond:             true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C is %s running the %s stack; HCI transport: %s\n\n",
		tb.C.Platform.Model, tb.C.Platform.StackName, tb.C.Platform.Transport)

	// Reconnect M and C so the key request/reply crosses the bus while
	// the analyzer is capturing (mirrors the paper's Fig. 11 setup where
	// both sides record the same session).
	tb.MUser.ExpectPairing(tb.C.Addr())
	tb.M.Host.Pair(tb.C.Addr(), func(err error) {
		if err != nil {
			log.Fatalf("reconnect failed: %v", err)
		}
	})
	tb.Sched.RunFor(30 * time.Second)

	raw := tb.C.USB.Raw()
	fmt.Printf("captured %d bytes of raw USB traffic\n", len(raw))

	// The paper's BinaryToHex converter, then the pattern scan.
	hexDump := usbsniff.BinaryToHex(raw)
	idx := strings.Index(hexDump, "0b 04 16")
	fmt.Printf("first \"0b 04 16\" at hex offset %d\n", idx)
	if idx >= 0 {
		end := idx + 3*26
		if end > len(hexDump) {
			end = len(hexDump)
		}
		fmt.Printf("  ... %s ...\n\n", hexDump[idx:end])
	}

	keys := usbsniff.ExtractLinkKeys(raw)
	if len(keys) == 0 {
		log.Fatal("no keys in the USB capture")
	}
	for _, k := range keys {
		fmt.Printf("extracted from USB: peer %s key %s\n", k.Peer, k.Key)
	}

	// Fig. 11's cross-check: the same key appears in M's HCI dump.
	var snoopKey string
	for _, h := range snoop.ExtractLinkKeys(tb.M.Snoop.Records()) {
		if h.Peer == tb.C.Addr() {
			snoopKey = h.Key.String()
		}
	}
	fmt.Printf("\nM's HCI dump shows:   %s\n", snoopKey)
	fmt.Printf("keys match across captures: %v\n", snoopKey == keys[0].Key.String())
}
