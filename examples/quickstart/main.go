// Quickstart: build a two-device piconet, pair the devices with Secure
// Simple Pairing, inspect the resulting bond, and look at the HCI dump —
// the plaintext link key is sitting right in it.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bt"
	"repro/internal/device"
	"repro/internal/hci"
	"repro/internal/host"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/snoop"
)

func main() {
	// Everything runs on deterministic virtual time.
	sched := sim.NewScheduler(42)
	medium := radio.NewMedium(sched, radio.DefaultConfig())

	// A phone (DisplayYesNo, Android 11 / Bluetooth 5.1) and a hands-free
	// car kit (NoInputNoOutput).
	phone := device.New(sched, medium, "MyPhone",
		bt.MustBDADDR("48:90:51:1e:7f:2c"), device.LGVELVETAndroid11, device.Options{})
	kit := device.New(sched, medium, "CarKit",
		bt.MustBDADDR("00:1a:7d:da:71:0a"), device.HandsFreeKit, device.Options{
			Services: []host.ServiceUUID{host.UUIDHandsFree},
		})

	// A simulated user holds the phone; they intend to pair with the kit,
	// so they will accept the consent dialog when it appears.
	user := host.NewSimUser(sched)
	phone.Host.SetUI(user)
	user.ExpectPairing(kit.Addr())

	// Discover, then pair.
	phone.Host.StartInquiry(2, func(found []hci.InquiryResponse) {
		for _, r := range found {
			fmt.Printf("discovered %s cod=%s\n", r.Addr, r.COD)
		}
		phone.Host.Pair(kit.Addr(), func(err error) {
			if err != nil {
				log.Fatalf("pairing failed: %v", err)
			}
		})
	})
	sched.RunFor(30 * time.Second)

	bond := phone.Host.Bonds().Get(kit.Addr())
	if bond == nil {
		log.Fatal("no bond stored")
	}
	fmt.Println("== bonded ==")
	fmt.Printf("link key: %s (%s)\n", bond.Key, bond.KeyType)
	fmt.Println("\n== phone's bt_config.conf ==")
	fmt.Print(phone.Host.Bonds().EncodeConfig())

	fmt.Println("== user dialogs ==")
	for _, p := range user.Prompts() {
		fmt.Printf("t=%v %s peer=%s accepted=%v\n", p.At.Round(time.Millisecond), p.Kind, p.Peer, p.Accepted)
	}

	// The phone's HCI snoop log captured the whole exchange — including
	// the link key in HCI_Link_Key_Notification, in plaintext.
	fmt.Println("\n== HCI dump (phone) ==")
	rows := snoop.Summarize(phone.Snoop.Records())
	fmt.Print(snoop.RenderTable(rows))
	fmt.Println("\n== plaintext keys in the dump ==")
	for _, hit := range snoop.ExtractLinkKeys(phone.Snoop.Records()) {
		fmt.Printf("frame %d via %s: %s\n", hit.Frame, hit.Source, hit.Key)
	}
}
