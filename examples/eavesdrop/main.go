// Eavesdropping with an extracted link key (paper §IV): the attack "can
// also be used ... to decrypt not only the future, but also the past
// communications of M captured by air-sniffers".
//
// Timeline of this example:
//  1. an air sniffer starts recording all baseband traffic;
//  2. the victim phone M reconnects to its bonded accessory C, turns on
//     E0 link encryption, and transfers a phone book entry — the sniffer
//     captures only ciphertext plus the LMP handshake;
//  3. the attacker runs the link key extraction attack against C;
//  4. with the stolen link key the attacker recomputes the ACO from the
//     sniffed E1 challenge, derives the E0 session key from the sniffed
//     encryption-start random, and decrypts the PAST capture.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/device"
)

func main() {
	tb, err := core.NewTestbed(77, core.TestbedOptions{
		ClientPlatform: device.GalaxyS21Android11,
		Bond:           true,
	})
	if err != nil {
		log.Fatal(err)
	}
	sniffer := core.NewAirSniffer(tb.Medium)

	// Step 2: encrypted session with sensitive data.
	secret := []byte("PBAP vcard: BEGIN:VCARD N:Hur;Junbeom TEL:+82-2-3290-4603 END:VCARD")
	tb.M.Host.Pair(tb.C.Addr(), func(err error) {
		if err != nil {
			log.Fatalf("reconnect: %v", err)
		}
		conn := tb.M.Host.Connection(tb.C.Addr())
		tb.M.Host.Encrypt(conn, func(err error) {
			if err != nil {
				log.Fatalf("encrypt: %v", err)
			}
			tb.M.Host.SendData(conn, secret)
		})
	})
	tb.Sched.RunFor(10 * time.Second)
	tb.M.Host.Disconnect(tb.C.Addr())
	tb.Sched.RunFor(time.Second)

	fmt.Printf("sniffer captured %d frames, %d of them encrypted payloads\n",
		sniffer.Len(), sniffer.EncryptedFrames())

	// Without the key the capture is opaque.
	var wrong [16]byte
	blind := sniffer.DecryptWithKey(wrong)
	for _, rec := range blind {
		if rec.WasEncrypted && containsSub(rec.Data, secret) {
			log.Fatal("ciphertext leaked the secret without the key?!")
		}
	}
	fmt.Println("without the link key: ciphertext only, secret unreadable")

	// Step 3: steal the key.
	rep, err := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
		Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: core.ChannelHCISnoop,
	})
	if err != nil {
		log.Fatalf("extraction: %v", err)
	}
	fmt.Printf("extracted link key: %s\n", rep.Key)

	// Step 4: decrypt the past.
	for _, rec := range sniffer.DecryptWithKey(rep.Key) {
		if rec.WasEncrypted && containsSub(rec.Data, secret) {
			fmt.Printf("decrypted past traffic (%s -> %s at t=%v):\n  %q\n",
				rec.From, rec.To, rec.At.Round(time.Millisecond), rec.Data[6:])
			return
		}
	}
	log.Fatal("failed to decrypt the sniffed session")
}

func containsSub(haystack, needle []byte) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		ok := true
		for j := range needle {
			if haystack[i+j] != needle[j] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
