// Page blocking attack + SSP downgrade, end to end (paper §V, Fig. 6b):
//
// The attacker A wants the victim M to pair with it instead of the
// genuine accessory C. Merely spoofing C's BDADDR leaves a ~50% page race
// (Table II's 42-60% column). Page blocking removes the race: A connects
// to M first and holds the link in "Physical Layer Only Connection" —
// the host-layer steps are postponed, so nothing visible happens on M.
// When M's user then pairs with C, M believes it is already connected to
// C and sends the pairing straight down the held link — to A, with
// certainty. A's NoInputNoOutput IO capability downgrades SSP to Just
// Works, so there is no numeric value the user could compare.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/device"
)

func main() {
	fmt.Println("=== baseline: spoofing only, no page blocking (20 attempts) ===")
	wins := 0
	const trials = 20
	for i := int64(0); i < trials; i++ {
		tb, err := core.NewTestbed(100+i, core.TestbedOptions{VictimPlatform: device.GalaxyS21Android11})
		if err != nil {
			log.Fatal(err)
		}
		rep := core.RunBaselineMITM(tb.Sched, core.BaselineMITMConfig{
			Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
		})
		if rep.MITMEstablished {
			wins++
		}
	}
	fmt.Printf("attacker won the page race %d/%d times (~%.0f%%)\n\n", wins, trials, 100*float64(wins)/trials)

	fmt.Println("=== page blocking: deterministic MITM (20 attempts) ===")
	blockedWins := 0
	var last core.PageBlockingReport
	var lastTB *core.Testbed
	for i := int64(0); i < trials; i++ {
		tb, err := core.NewTestbed(200+i, core.TestbedOptions{VictimPlatform: device.GalaxyS21Android11})
		if err != nil {
			log.Fatal(err)
		}
		rep := core.RunPageBlocking(tb.Sched, core.PageBlockingConfig{
			Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
			UsePLOC:       true,
			PLOCHold:      10 * time.Second, // the PoC's fixed hold (Fig. 13)
			UserPairDelay: time.Duration(2+i%7) * time.Second,
			RunInquiry:    true,
		})
		if rep.MITMEstablished {
			blockedWins++
		}
		last, lastTB = rep, tb
	}
	fmt.Printf("attacker MITM established %d/%d times (100%% expected)\n\n", blockedWins, trials)

	fmt.Println("last run, dissected:")
	fmt.Printf("  downgraded to Just Works:        %v\n", last.DowngradedToJustWorks)
	fmt.Printf("  victim was connection responder: %v\n", last.VictimWasConnectionResponder)
	fmt.Printf("  victim was pairing initiator:    %v\n", last.VictimWasPairingInitiator)
	for _, p := range last.VictimPrompts {
		fmt.Printf("  victim dialog: %s at t=%v (expected=%v, accepted=%v)\n",
			p.Kind, p.At.Round(time.Millisecond), p.Expected, p.Accepted)
	}

	verdict := core.CheckPairingRoles(lastTB.M.Host.Connection(lastTB.C.Addr()))
	fmt.Printf("\nproposed mitigation (§VII-B) verdict: suspicious=%v\n  reason: %s\n",
		verdict.Suspicious, verdict.Reason)
}
