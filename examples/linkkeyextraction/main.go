// Link key extraction attack, end to end (paper §IV, Fig. 5):
//
//  1. the accessory C records HCI traffic (Android snoop log);
//  2. the attacker A spoofs the victim phone M's BDADDR and class;
//  3. A connects to C, which authenticates the returning "M" and fetches
//     the bonded link key from its host — over plaintext HCI;
//  4. the snoop log records the key;
//  5. A never answers the LMP challenge, so C's controller drops the link
//     with LMP Response Timeout — no authentication failure, so C keeps
//     its key and nothing looks wrong;
//  6. A pulls the log (Android bug report) and extracts the key;
//  7. A impersonates C to M and opens a tethering connection without any
//     pairing dialog ever appearing on M.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/device"
)

func main() {
	tb, err := core.NewTestbed(2022, core.TestbedOptions{
		ClientPlatform: device.GalaxyS21Android11, // C: a phone acting as the soft target
		Bond:           true,                      // M and C are already bonded
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("system model (paper §III-A):")
	fmt.Printf("  M (hard target):   %s\n", tb.M)
	fmt.Printf("  C (soft target):   %s\n", tb.C)
	fmt.Printf("  A (attacker):      %s\n", tb.A)
	fmt.Printf("  bonded link key:   %s\n\n", tb.BondKey)

	rep, err := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
		Attacker: tb.A,
		Client:   tb.C,
		Target:   tb.M.Addr(),
		Channel:  core.ChannelHCISnoop,
	})
	if err != nil {
		log.Fatalf("extraction failed: %v", err)
	}
	fmt.Println("steps 1-6: extraction")
	fmt.Printf("  extracted key:        %s\n", rep.Key)
	fmt.Printf("  identical to bond:    %v\n", rep.Key == tb.BondKey)
	fmt.Printf("  C's disconnect:       %s (no authentication failure)\n", rep.DisconnectReason)
	fmt.Printf("  C still bonded to M:  %v\n", rep.ClientKeptBond)
	fmt.Printf("  attack duration:      %v of virtual time\n\n", rep.Elapsed.Round(time.Millisecond))

	imp := core.RunImpersonation(tb.Sched, core.ImpersonationConfig{
		Attacker:   tb.A,
		Victim:     tb.M,
		ClientAddr: tb.C.Addr(),
		Key:        rep.Key,
	})
	fmt.Println("step 7: impersonation (PAN tethering validation, §VI-B1)")
	fmt.Printf("  LMP auth with stolen key: %v\n", imp.AuthSucceeded)
	fmt.Printf("  new pairing triggered:    %v\n", imp.NewPairingTriggered)
	fmt.Printf("  tethering established:    %v\n", imp.Success)
	fmt.Println("\nfake bonding information installed on A (cf. paper Fig. 10):")
	fmt.Print(imp.FakeBondConfig)

	fmt.Println("mitigation check (§VII-A): re-run with the link-key-filtering dump")
	tb2, err := core.NewTestbed(2023, core.TestbedOptions{
		ClientPlatform: device.GalaxyS21Android11,
		Bond:           true,
	})
	if err != nil {
		log.Fatal(err)
	}
	tb2.C.Snoop.Filter = core.SnoopLinkKeyFilter
	if _, err := core.RunLinkKeyExtraction(tb2.Sched, core.LinkKeyExtractionConfig{
		Attacker: tb2.A, Client: tb2.C, Target: tb2.M.Addr(), Channel: core.ChannelHCISnoop,
	}); err != nil {
		fmt.Printf("  extraction now fails as intended: %v\n", err)
	} else {
		fmt.Println("  UNEXPECTED: extraction still succeeded")
	}
}
