// Live BLAP detection: the forensic analyzer running while the attack
// is in progress. A victim testbed is page-blocked and its HCI dump is
// streamed to an in-process sentinel server over a real Unix socket —
// exactly what a phone forwarding its snoop log to blapd would do. The
// findings arrive as JSONL events mid-stream, when the attacker could
// still be interrupted, and the daemon's /metrics snapshot shows the
// operational counters an on-call responder would watch.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/sentinel"
)

func main() {
	// Run the paper's page blocking attack and pull the victim's dump —
	// the capture a live forwarder would have been streaming all along.
	tb, err := core.NewTestbed(21, core.TestbedOptions{})
	if err != nil {
		log.Fatal(err)
	}
	rep := core.RunPageBlocking(tb.Sched, core.PageBlockingConfig{
		Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser, UsePLOC: true,
	})
	fmt.Printf("attack ran: MITM established = %v\n\n", rep.MITMEstablished)
	capture, err := tb.M.PullSnoopLog()
	if err != nil {
		log.Fatal(err)
	}

	// Start the sentinel on a Unix socket, JSONL events to stdout.
	sock := filepath.Join(os.TempDir(), fmt.Sprintf("sentinel-example-%d.sock", os.Getpid()))
	done := make(chan sentinel.StreamSummary, 1)
	srv := sentinel.New(sentinel.Config{
		UnixAddr:    sock,
		Output:      os.Stdout,
		OnStreamEnd: func(sum sentinel.StreamSummary) { done <- sum },
	})
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	// Stream the capture like a live client; findings print as they fire.
	fmt.Println("== JSONL event stream (what blapd emits) ==")
	conn, err := net.Dial("unix", srv.UnixAddr())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := conn.Write(capture); err != nil {
		log.Fatal(err)
	}
	conn.Close()
	sum := <-done

	fmt.Printf("\nstream ended %q: %d records, %d bytes, %d findings\n",
		sum.Status, sum.Records, sum.Bytes, sum.Findings)

	snap := srv.Snapshot()
	fmt.Println("\n== /metrics snapshot ==")
	fmt.Printf("streams: %d total, %d active  records: %d  events: %d\n",
		snap.StreamsTotal, snap.StreamsActive, snap.Records, snap.EventsEmitted)
	fmt.Printf("packets: command=%d event=%d acl=%d\n",
		snap.Packets["command"], snap.Packets["event"], snap.Packets["acl"])
	fmt.Printf("findings by kind: %v\n", snap.FindingsKind)
	fmt.Printf("stream ends by status: %v\n", snap.StreamEnds)
}
