package forensics

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"repro/internal/bt"
	"repro/internal/hci"
)

// Detector checkpointing: SnapshotState serializes the full incremental
// state of a Detector — the session reducer's report, its lookup maps,
// and the detector's frame/sequence counters — into a versioned,
// deterministic byte string, and RestoreState rebuilds an identical
// Detector from it. "Deterministic" is a contract, not an accident:
// snapshotting the same state twice yields identical bytes (maps are
// serialized in sorted key order, times as UTC wall values), so a
// persisted checkpoint can be byte-compared, deduplicated, and replayed.
// The round-trip is exact: a detector restored from a checkpoint taken
// after frame N emits, for every subsequent record, the same findings
// (same seq, frame, kind, peer, detail) an uninterrupted detector would
// have — which is what lets blapd park a stream across a crash and keep
// its findings byte-identical to an unbroken run.
//
// Version policy: the first byte is the format version. Decoders reject
// versions they do not know; encoders always write the current version.
// Any change to the field layout — even adding a field — bumps the
// version, because checkpoints outlive the process that wrote them.

// CheckpointVersion is the current SnapshotState format version.
// Version 2 added the silent-repair session flags and the per-peer
// last-key / last-key-type baselines of the related-attack rules.
const CheckpointVersion = 2

// SnapshotState serializes the detector's complete state. The detector
// must be drained first (Drain); snapshotting with undrained pending
// events is an error, because those events exist only in memory and a
// checkpoint that silently dropped them would violate the exactly-once
// replay contract.
func (d *Detector) SnapshotState() ([]byte, error) {
	return d.snapshot(false)
}

// SnapshotLiveState serializes only the state future detection reads:
// counters, lookup maps, and the sessions those maps still reference.
// The accumulated report — exposures, findings, disconnected sessions —
// is omitted, which is what keeps periodic checkpointing off the hot
// path: the report grows without bound over a long capture while the
// live set stays proportional to concurrent connections, so a live
// snapshot is typically kilobytes where the full one is megabytes.
//
// A detector restored from a live snapshot emits, for every subsequent
// record, findings byte-identical (same seq, frame, kind, peer, detail)
// to an uninterrupted detector — the reducer never reads the
// accumulated report back. What it does NOT preserve is Finish(): the
// restored report starts from the live sessions only. blapd checkpoints
// with this (its consumers read the event stream, which is already
// persisted finding-by-finding); hcidump -checkpoint keeps full
// snapshots because it prints the batch report.
//
// The bytes are a valid CheckpointVersion-1 checkpoint — RestoreState
// accepts either kind; the difference is policy, not format.
func (d *Detector) SnapshotLiveState() ([]byte, error) {
	return d.snapshot(true)
}

func (d *Detector) snapshot(live bool) ([]byte, error) {
	if len(d.pending) != 0 {
		return nil, fmt.Errorf("forensics: snapshot with %d undrained events (call Drain first)", len(d.pending))
	}
	st := d.st
	sessions := st.rep.Sessions
	if live {
		// Keep only sessions a future record can still reach — the
		// values of the handle and peer maps — preserving report order
		// so identical states snapshot to identical bytes.
		keep := make(map[*Session]bool, len(st.byHandle)+len(st.byPeer))
		for _, s := range st.byHandle {
			keep[s] = true
		}
		for _, s := range st.byPeer {
			keep[s] = true
		}
		sessions = make([]*Session, 0, len(keep))
		for _, s := range st.rep.Sessions {
			if keep[s] {
				sessions = append(sessions, s)
			}
		}
	}
	idx := make(map[*Session]int, len(sessions))
	for i, s := range sessions {
		idx[s] = i
	}

	cap := d.snapCap + d.snapCap/8
	if cap < 512 {
		cap = 512
	}
	b := make([]byte, 0, cap)
	b = append(b, CheckpointVersion)
	b = binary.LittleEndian.AppendUint64(b, d.seq)
	b = appendCkpInt(b, int64(d.frames))
	b = appendCkpInt(b, int64(st.frame))
	b = appendCkpTime(b, st.ts)

	b = binary.LittleEndian.AppendUint32(b, uint32(len(sessions)))
	for _, s := range sessions {
		b = binary.LittleEndian.AppendUint16(b, uint16(s.Handle))
		b = append(b, s.Peer[:]...)
		b = appendCkpBool(b, s.Incoming)
		b = appendCkpBool(b, s.LocalPairingInitiation)
		b = append(b, byte(s.PeerIOCap))
		b = appendCkpBool(b, s.HavePeerIOCap)
		b = appendCkpBool(b, s.PairingCompleted)
		b = append(b, byte(s.PairingStatus))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(s.AuthOutcomes)))
		for _, o := range s.AuthOutcomes {
			b = append(b, byte(o))
		}
		b = append(b, byte(s.DisconnectReason))
		b = appendCkpBool(b, s.Disconnected)
		b = appendCkpTime(b, s.ConnectedAt)
		b = appendCkpTime(b, s.EndsAt)
		b = appendCkpBool(b, s.flaggedPageBlocking)
		b = appendCkpBool(b, s.suppliedStoredKey)
		b = appendCkpBool(b, s.flaggedSilentRepair)
	}

	exposures, findings := st.rep.Exposures, st.rep.Findings
	if live {
		exposures, findings = nil, nil
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(exposures)))
	for _, e := range exposures {
		b = appendCkpInt(b, int64(e.Frame))
		b = appendCkpString(b, e.Source)
		b = append(b, e.Peer[:]...)
		b = append(b, e.Key[:]...)
	}

	b = binary.LittleEndian.AppendUint32(b, uint32(len(findings)))
	for _, f := range findings {
		b = appendCkpString(b, f.Kind)
		b = appendCkpInt(b, int64(f.Frame))
		b = append(b, f.Peer[:]...)
		b = appendCkpString(b, f.Detail)
		si := -1
		if f.Session != nil {
			i, ok := idx[f.Session]
			if !ok {
				return nil, fmt.Errorf("forensics: finding references a session outside the report")
			}
			si = i
		}
		b = appendCkpInt(b, int64(si))
	}

	// Lookup maps, serialized in sorted key order so identical states
	// produce identical bytes regardless of map iteration order.
	handles := make([]bt.ConnHandle, 0, len(st.byHandle))
	for h := range st.byHandle {
		handles = append(handles, h)
	}
	sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
	b = binary.LittleEndian.AppendUint32(b, uint32(len(handles)))
	for _, h := range handles {
		i, ok := idx[st.byHandle[h]]
		if !ok {
			return nil, fmt.Errorf("forensics: byHandle references a session outside the report")
		}
		b = binary.LittleEndian.AppendUint16(b, uint16(h))
		b = binary.LittleEndian.AppendUint32(b, uint32(i))
	}

	peers := make([]bt.BDADDR, 0, len(st.byPeer))
	for p := range st.byPeer {
		peers = append(peers, p)
	}
	sort.Slice(peers, func(i, j int) bool { return bytes.Compare(peers[i][:], peers[j][:]) < 0 })
	b = binary.LittleEndian.AppendUint32(b, uint32(len(peers)))
	for _, p := range peers {
		i, ok := idx[st.byPeer[p]]
		if !ok {
			return nil, fmt.Errorf("forensics: byPeer references a session outside the report")
		}
		b = append(b, p[:]...)
		b = binary.LittleEndian.AppendUint32(b, uint32(i))
	}

	pending := make([]bt.BDADDR, 0, len(st.pendingIncoming))
	for p := range st.pendingIncoming {
		pending = append(pending, p)
	}
	sort.Slice(pending, func(i, j int) bool { return bytes.Compare(pending[i][:], pending[j][:]) < 0 })
	b = binary.LittleEndian.AppendUint32(b, uint32(len(pending)))
	for _, p := range pending {
		b = append(b, p[:]...)
	}

	auth := make([]bt.ConnHandle, 0, len(st.authPending))
	for h := range st.authPending {
		auth = append(auth, h)
	}
	sort.Slice(auth, func(i, j int) bool { return auth[i] < auth[j] })
	b = binary.LittleEndian.AppendUint32(b, uint32(len(auth)))
	for _, h := range auth {
		b = binary.LittleEndian.AppendUint16(b, uint16(h))
	}

	// Per-peer key baselines. These are live state — a future notification
	// compares against them — so even a live snapshot keeps every entry.
	keyPeers := make([]bt.BDADDR, 0, len(st.lastKey))
	for p := range st.lastKey {
		keyPeers = append(keyPeers, p)
	}
	sort.Slice(keyPeers, func(i, j int) bool { return bytes.Compare(keyPeers[i][:], keyPeers[j][:]) < 0 })
	b = binary.LittleEndian.AppendUint32(b, uint32(len(keyPeers)))
	for _, p := range keyPeers {
		k := st.lastKey[p]
		b = append(b, p[:]...)
		b = append(b, k[:]...)
	}

	typePeers := make([]bt.BDADDR, 0, len(st.lastKeyType))
	for p := range st.lastKeyType {
		typePeers = append(typePeers, p)
	}
	sort.Slice(typePeers, func(i, j int) bool { return bytes.Compare(typePeers[i][:], typePeers[j][:]) < 0 })
	b = binary.LittleEndian.AppendUint32(b, uint32(len(typePeers)))
	for _, p := range typePeers {
		b = append(b, p[:]...)
		b = append(b, byte(st.lastKeyType[p]))
	}
	d.snapCap = len(b)
	return b, nil
}

// RestoreState replaces the detector's state with the one a checkpoint
// captured. The detector behaves exactly as the snapshotted one would:
// frame numbering continues from the checkpoint, finding sequence
// numbers continue from the checkpoint, and the report carries every
// session, exposure, and finding accumulated before it.
func (d *Detector) RestoreState(data []byte) error {
	r := &ckpReader{b: data}
	if v := r.u8(); r.err == nil && v != CheckpointVersion {
		return fmt.Errorf("forensics: checkpoint version %d, supported %d", v, CheckpointVersion)
	}
	seq := r.u64()
	frames := r.int()
	st := newSessionState()
	st.frame = int(r.int())
	st.ts = r.time()

	n := r.u32()
	if r.err == nil && n > uint32(len(data)) {
		return fmt.Errorf("forensics: corrupt checkpoint: %d sessions in %d bytes", n, len(data))
	}
	sessions := make([]*Session, 0, n)
	for i := uint32(0); i < n && r.err == nil; i++ {
		s := &Session{}
		s.Handle = bt.ConnHandle(r.u16())
		r.addr(&s.Peer)
		s.Incoming = r.bool()
		s.LocalPairingInitiation = r.bool()
		s.PeerIOCap = bt.IOCapability(r.u8())
		s.HavePeerIOCap = r.bool()
		s.PairingCompleted = r.bool()
		s.PairingStatus = hci.Status(r.u8())
		no := r.u32()
		if r.err == nil && no > uint32(len(data)) {
			return fmt.Errorf("forensics: corrupt checkpoint: %d auth outcomes", no)
		}
		for j := uint32(0); j < no && r.err == nil; j++ {
			s.AuthOutcomes = append(s.AuthOutcomes, hci.Status(r.u8()))
		}
		s.DisconnectReason = hci.Status(r.u8())
		s.Disconnected = r.bool()
		s.ConnectedAt = r.time()
		s.EndsAt = r.time()
		s.flaggedPageBlocking = r.bool()
		s.suppliedStoredKey = r.bool()
		s.flaggedSilentRepair = r.bool()
		sessions = append(sessions, s)
	}
	st.rep.Sessions = sessions
	session := func(i int64) (*Session, error) {
		if i == -1 {
			return nil, nil
		}
		if i < 0 || i >= int64(len(sessions)) {
			return nil, fmt.Errorf("forensics: corrupt checkpoint: session index %d of %d", i, len(sessions))
		}
		return sessions[i], nil
	}

	n = r.u32()
	for i := uint32(0); i < n && r.err == nil; i++ {
		var e KeyExposure
		e.Frame = int(r.int())
		e.Source = r.str()
		r.addr(&e.Peer)
		r.fixed(e.Key[:])
		st.rep.Exposures = append(st.rep.Exposures, e)
	}

	n = r.u32()
	for i := uint32(0); i < n && r.err == nil; i++ {
		var f Finding
		f.Kind = r.str()
		f.Frame = int(r.int())
		r.addr(&f.Peer)
		f.Detail = r.str()
		s, err := session(r.int())
		if err != nil {
			return err
		}
		f.Session = s
		st.rep.Findings = append(st.rep.Findings, f)
	}

	n = r.u32()
	for i := uint32(0); i < n && r.err == nil; i++ {
		h := bt.ConnHandle(r.u16())
		s, err := session(int64(r.u32()))
		if err != nil {
			return err
		}
		if s != nil {
			st.byHandle[h] = s
		}
	}
	n = r.u32()
	for i := uint32(0); i < n && r.err == nil; i++ {
		var p bt.BDADDR
		r.addr(&p)
		s, err := session(int64(r.u32()))
		if err != nil {
			return err
		}
		if s != nil {
			st.byPeer[p] = s
		}
	}
	n = r.u32()
	for i := uint32(0); i < n && r.err == nil; i++ {
		var p bt.BDADDR
		r.addr(&p)
		st.pendingIncoming[p] = true
	}
	n = r.u32()
	for i := uint32(0); i < n && r.err == nil; i++ {
		st.authPending[bt.ConnHandle(r.u16())] = true
	}
	n = r.u32()
	for i := uint32(0); i < n && r.err == nil; i++ {
		var p bt.BDADDR
		var k bt.LinkKey
		r.addr(&p)
		r.fixed(k[:])
		st.lastKey[p] = k
	}
	n = r.u32()
	for i := uint32(0); i < n && r.err == nil; i++ {
		var p bt.BDADDR
		r.addr(&p)
		st.lastKeyType[p] = bt.LinkKeyType(r.u8())
	}
	if r.err != nil {
		return r.err
	}
	if r.off != len(data) {
		return fmt.Errorf("forensics: corrupt checkpoint: %d trailing bytes", len(data)-r.off)
	}

	d.seq = seq
	d.frames = int(frames)
	d.pending = nil
	d.install(st)
	return nil
}

func appendCkpBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendCkpInt(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

// appendCkpTime encodes a wall-clock instant as a presence flag plus
// Unix seconds and nanoseconds. Capture timestamps carry no monotonic
// reading and are always handled in UTC, so the round-trip through
// time.Unix(...).UTC() reconstructs a deeply equal value.
func appendCkpTime(b []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(b, 0)
	}
	b = append(b, 1)
	b = binary.LittleEndian.AppendUint64(b, uint64(t.Unix()))
	b = binary.LittleEndian.AppendUint32(b, uint32(t.Nanosecond()))
	return b
}

func appendCkpString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// ckpReader decodes the checkpoint format with sticky error handling:
// the first short read or bounds failure poisons the reader, every
// later accessor returns zero values, and the caller checks err once.
type ckpReader struct {
	b   []byte
	off int
	err error
}

func (r *ckpReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) || n < 0 {
		r.err = fmt.Errorf("forensics: corrupt checkpoint: truncated at byte %d", r.off)
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *ckpReader) u8() byte {
	v := r.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

func (r *ckpReader) bool() bool { return r.u8() != 0 }

func (r *ckpReader) u16() uint16 {
	v := r.take(2)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(v)
}

func (r *ckpReader) u32() uint32 {
	v := r.take(4)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}

func (r *ckpReader) u64() uint64 {
	v := r.take(8)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

func (r *ckpReader) int() int64 { return int64(r.u64()) }

func (r *ckpReader) str() string {
	n := r.u32()
	if r.err == nil && n > uint32(len(r.b)) {
		r.err = fmt.Errorf("forensics: corrupt checkpoint: string length %d", n)
		return ""
	}
	return string(r.take(int(n)))
}

func (r *ckpReader) addr(p *bt.BDADDR) {
	copy(p[:], r.take(len(p)))
}

func (r *ckpReader) fixed(p []byte) {
	copy(p, r.take(len(p)))
}

func (r *ckpReader) time() time.Time {
	if r.u8() == 0 {
		return time.Time{}
	}
	sec := int64(r.u64())
	nsec := int64(r.u32())
	if r.err != nil {
		return time.Time{}
	}
	return time.Unix(sec, nsec).UTC()
}
