package forensics

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/snoop"
)

// TestCheckpointRoundTripAtEveryBatchBoundary is the exactness contract
// behind session resume: snapshot a detector at an arbitrary record
// boundary, restore a fresh detector from the bytes, feed both the rest
// of the capture, and every subsequent event (seq, frame, time,
// finding) and the final report must be identical.
func TestCheckpointRoundTripAtEveryBatchBoundary(t *testing.T) {
	data, _ := synthCapture(t, 6000, 13)
	recs, err := snoop.ReadAll(data)
	if err != nil {
		t.Fatal(err)
	}

	for _, cut := range []int{0, 1, 7, len(recs) / 3, len(recs) / 2, len(recs) - 1, len(recs)} {
		ref := NewDetector()
		split := NewDetector()
		for _, rec := range recs[:cut] {
			ref.Push(rec)
			split.Push(rec)
		}
		refEvs := ref.Drain()
		if got := split.Drain(); len(got) != len(refEvs) {
			t.Fatalf("cut %d: prefix drains diverge: %d vs %d", cut, len(got), len(refEvs))
		}

		state, err := split.SnapshotState()
		if err != nil {
			t.Fatalf("cut %d: snapshot: %v", cut, err)
		}
		// Determinism: the same state must serialize identically twice.
		again, err := split.SnapshotState()
		if err != nil || !bytes.Equal(state, again) {
			t.Fatalf("cut %d: snapshot not deterministic (%v)", cut, err)
		}

		restored := NewDetector()
		if err := restored.RestoreState(state); err != nil {
			t.Fatalf("cut %d: restore: %v", cut, err)
		}
		// Restore → snapshot must reproduce the bytes.
		back, err := restored.SnapshotState()
		if err != nil || !bytes.Equal(state, back) {
			t.Fatalf("cut %d: restored snapshot diverges (%v)", cut, err)
		}

		for _, rec := range recs[cut:] {
			ref.Push(rec)
			restored.Push(rec)
		}
		refTail := ref.Drain()
		gotTail := restored.Drain()
		if !reflect.DeepEqual(refTail, gotTail) {
			t.Fatalf("cut %d: post-restore events diverge:\nref: %+v\ngot: %+v", cut, refTail, gotTail)
		}
		if ref.Findings() != restored.Findings() || ref.Frames() != restored.Frames() {
			t.Fatalf("cut %d: counters diverge: findings %d/%d frames %d/%d",
				cut, ref.Findings(), restored.Findings(), ref.Frames(), restored.Frames())
		}
		if got, want := restored.Finish().Render(), ref.Finish().Render(); got != want {
			t.Fatalf("cut %d: reports diverge:\nref:\n%s\ngot:\n%s", cut, want, got)
		}
	}
}

// TestCheckpointRequiresDrain: undrained pending events may not be
// silently dropped into a checkpoint.
func TestCheckpointRequiresDrain(t *testing.T) {
	data, stats := synthCapture(t, 20_000, 9)
	if stats.KeyExposures == 0 {
		t.Fatal("fixture produced no findings")
	}
	recs, err := snoop.ReadAll(data)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDetector()
	for _, rec := range recs {
		d.Push(rec)
	}
	if d.Findings() == 0 {
		t.Fatal("no findings pushed")
	}
	if _, err := d.SnapshotState(); err == nil {
		t.Fatal("snapshot with pending events must fail")
	}
	d.Drain()
	if _, err := d.SnapshotState(); err != nil {
		t.Fatalf("snapshot after drain: %v", err)
	}
}

// TestCheckpointRejectsGarbage: wrong versions and truncated or padded
// payloads are errors, never a silently wrong detector.
func TestCheckpointRejectsGarbage(t *testing.T) {
	data, _ := synthCapture(t, 3000, 13)
	recs, err := snoop.ReadAll(data)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDetector()
	for _, rec := range recs {
		d.Push(rec)
	}
	d.Drain()
	state, err := d.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}

	bad := append([]byte(nil), state...)
	bad[0] = CheckpointVersion + 1
	if err := NewDetector().RestoreState(bad); err == nil {
		t.Fatal("wrong version accepted")
	}
	for _, n := range []int{0, 1, len(state) / 2, len(state) - 1} {
		if err := NewDetector().RestoreState(state[:n]); err == nil {
			t.Fatalf("truncated checkpoint (%d bytes) accepted", n)
		}
	}
	padded := append(append([]byte(nil), state...), 0xEE)
	if err := NewDetector().RestoreState(padded); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// TestSnapshotLiveStateEventParity is the contract that lets blapd
// checkpoint with the trimmed live snapshot: a detector restored from
// SnapshotLiveState emits, for every subsequent record, events
// identical to the uninterrupted detector's — the accumulated report is
// the only thing a live snapshot gives up.
func TestSnapshotLiveStateEventParity(t *testing.T) {
	data, stats := synthCapture(t, 20_000, 9)
	if stats.KeyExposures == 0 {
		t.Fatal("fixture produced no findings")
	}
	recs, err := snoop.ReadAll(data)
	if err != nil {
		t.Fatal(err)
	}

	for _, cut := range []int{0, 1, len(recs) / 3, len(recs) / 2, len(recs) - 1} {
		ref := NewDetector()
		for _, rec := range recs[:cut] {
			ref.Push(rec)
		}
		ref.Drain()

		full, err := ref.SnapshotState()
		if err != nil {
			t.Fatalf("cut %d: full snapshot: %v", cut, err)
		}
		live, err := ref.SnapshotLiveState()
		if err != nil {
			t.Fatalf("cut %d: live snapshot: %v", cut, err)
		}
		// Determinism holds for the trimmed form too.
		again, err := ref.SnapshotLiveState()
		if err != nil || !bytes.Equal(live, again) {
			t.Fatalf("cut %d: live snapshot not deterministic (%v)", cut, err)
		}
		// The whole point: once the capture has accumulated findings,
		// the live snapshot must be materially smaller than the full
		// one (it drops the report, keeping only reachable sessions).
		if ref.Findings() > 0 && len(live) >= len(full) {
			t.Fatalf("cut %d: live snapshot %dB not smaller than full %dB", cut, len(live), len(full))
		}

		restored := NewDetector()
		if err := restored.RestoreState(live); err != nil {
			t.Fatalf("cut %d: restore live: %v", cut, err)
		}
		if ref.Findings() != restored.Findings() || ref.Frames() != restored.Frames() {
			t.Fatalf("cut %d: counters diverge: findings %d/%d frames %d/%d",
				cut, ref.Findings(), restored.Findings(), ref.Frames(), restored.Frames())
		}
		for _, rec := range recs[cut:] {
			ref.Push(rec)
			restored.Push(rec)
		}
		refTail := ref.Drain()
		gotTail := restored.Drain()
		// Findings carry *Session pointers that can never be equal
		// across detectors; compare the event identity the wire format
		// carries (seq, frame, time, kind, peer, detail).
		if len(refTail) != len(gotTail) {
			t.Fatalf("cut %d: post-restore event counts diverge: %d vs %d", cut, len(refTail), len(gotTail))
		}
		for i := range refTail {
			a, b := refTail[i], gotTail[i]
			if a.Seq != b.Seq || a.Frame != b.Frame || !a.Time.Equal(b.Time) ||
				a.Finding.Kind != b.Finding.Kind || a.Finding.Peer != b.Finding.Peer ||
				a.Finding.Frame != b.Finding.Frame || a.Finding.Detail != b.Finding.Detail {
				t.Fatalf("cut %d: post-restore event %d diverges:\nref: %+v\ngot: %+v", cut, i, a, b)
			}
		}
	}
}
