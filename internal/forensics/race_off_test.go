//go:build !race

package forensics

const raceEnabled = false
