package forensics

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/bt"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/hci"
	"repro/internal/snoop"
)

// streamTestCaptures serializes one capture per interesting scenario:
// the three testbed dumps the analyzer tests pin (attacked victim,
// innocent pairing, attacked accessory) plus a synthetic noisy capture.
func streamTestCaptures(t *testing.T) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)

	tb := mustTestbed(t, 1, core.TestbedOptions{})
	core.RunPageBlocking(tb.Sched, core.PageBlockingConfig{
		Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser, UsePLOC: true,
	})
	data, err := tb.M.PullSnoopLog()
	if err != nil {
		t.Fatal(err)
	}
	out["page-blocked-victim"] = data

	tb2 := mustTestbed(t, 2, core.TestbedOptions{})
	tb2.MUser.ExpectPairing(tb2.C.Addr())
	tb2.M.Host.Pair(tb2.C.Addr(), func(error) {})
	tb2.Sched.RunFor(30 * time.Second)
	if out["normal-pairing"], err = tb2.M.PullSnoopLog(); err != nil {
		t.Fatal(err)
	}

	tb3 := mustTestbed(t, 3, core.TestbedOptions{
		ClientPlatform: device.GalaxyS21Android11, Bond: true,
	})
	if _, err := core.RunLinkKeyExtraction(tb3.Sched, core.LinkKeyExtractionConfig{
		Attacker: tb3.A, Client: tb3.C, Target: tb3.M.Addr(), Channel: core.ChannelHCISnoop,
	}); err != nil {
		t.Fatal(err)
	}
	if out["extraction-accessory"], err = tb3.C.PullSnoopLog(); err != nil {
		t.Fatal(err)
	}

	var synth bytes.Buffer
	if _, err := snoop.Synthesize(&synth, snoop.SynthConfig{Records: 8000, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	out["synthetic"] = synth.Bytes()
	return out
}

// TestAnalyzeStreamMatchesAnalyze pins the streaming pipeline to the
// in-memory analyzer: for every capture and every worker count the
// reports must be deeply identical, findings order included.
func TestAnalyzeStreamMatchesAnalyze(t *testing.T) {
	for name, data := range streamTestCaptures(t) {
		recs, err := snoop.ReadAll(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := Analyze(recs)
		if name != "normal-pairing" && len(want.Findings) == 0 {
			t.Fatalf("%s: scenario lost its findings", name)
		}
		for _, workers := range []int{0, 1, 2, 3, 8} {
			got, err := AnalyzeStreamWorkers(bytes.NewReader(data), workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s workers=%d: streaming report differs from Analyze\nstream: %s\nmemory: %s",
					name, workers, got.Render(), want.Render())
			}
		}
		for mode, run := range map[string]func() (*Report, error){
			"batch": func() (*Report, error) { return AnalyzeBatch(bytes.NewReader(data)) },
			"bytes": func() (*Report, error) { return AnalyzeBytes(data) },
			"file":  func() (*Report, error) { return AnalyzeFile(data) },
		} {
			got, err := run()
			if err != nil {
				t.Fatalf("%s %s: %v", name, mode, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s %s: batch report differs from Analyze\nbatch:  %s\nmemory: %s",
					name, mode, got.Render(), want.Render())
			}
		}
	}
}

// TestFailedConnectionCompleteDoesNotLeakIncoming reproduces the
// pendingIncoming leak: an inbound page that fails must not mark a later
// outgoing session to the same peer as incoming, which would fabricate a
// page-blocking signature.
func TestFailedConnectionCompleteDoesNotLeakIncoming(t *testing.T) {
	peer := bt.MustBDADDR("00:1a:7d:da:71:0a")
	base := snoop.CaptureBase
	rec := func(i int, received bool, wire []byte) snoop.Record {
		flags := uint32(snoop.FlagCommandEvent)
		if received {
			flags |= snoop.FlagDirectionReceived
		}
		return snoop.Record{
			OriginalLength: uint32(len(wire)),
			Flags:          flags,
			Timestamp:      base.Add(time.Duration(i) * time.Millisecond),
			Data:           wire,
		}
	}
	records := []snoop.Record{
		// Inbound page accepted, but the completion fails.
		rec(0, true, hci.EncodeEvent(&hci.ConnectionRequest{Addr: peer, COD: bt.CODHeadset, LinkType: hci.LinkTypeACL}).Wire()),
		rec(1, false, hci.EncodeCommand(&hci.AcceptConnectionRequest{Addr: peer, Role: 1}).Wire()),
		rec(2, true, hci.EncodeEvent(&hci.ConnectionComplete{Status: hci.StatusPageTimeout, Addr: peer}).Wire()),
		// Later *outgoing* connection to the same peer, with the elements
		// that would complete a page-blocking signature if Incoming leaked.
		rec(3, true, hci.EncodeEvent(&hci.ConnectionComplete{Status: hci.StatusSuccess, Handle: 9, Addr: peer, LinkType: hci.LinkTypeACL}).Wire()),
		rec(4, false, hci.EncodeCommand(&hci.AuthenticationRequested{Handle: 9}).Wire()),
		rec(5, true, hci.EncodeEvent(&hci.IOCapabilityResponse{Addr: peer, Capability: bt.NoInputNoOutput}).Wire()),
	}
	report := Analyze(records)
	if len(report.Sessions) != 1 {
		t.Fatalf("sessions: %d (the failed completion must not create one)", len(report.Sessions))
	}
	if report.Sessions[0].Incoming {
		t.Fatal("failed inbound page leaked into the outgoing session")
	}
	if report.HasFinding(FindingPageBlocking) {
		t.Fatalf("false page-blocking signature:\n%s", report.Render())
	}
}

// TestAnalyzeStreamBoundedMemory checks the pipeline never buffers the
// whole capture: total allocation during a streaming pass over a large
// capture must stay well below the capture size.
func TestAnalyzeStreamBoundedMemory(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is distorted by the race detector")
	}
	var buf bytes.Buffer
	if _, err := snoop.Synthesize(&buf, snoop.SynthConfig{Records: 300_000, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	rep, err := AnalyzeStreamWorkers(bytes.NewReader(data), 2)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	if len(rep.Sessions) == 0 {
		t.Fatal("no sessions")
	}
	allocated := after.TotalAlloc - before.TotalAlloc
	if allocated > uint64(len(data))/2 {
		t.Fatalf("streaming pass allocated %d bytes over a %d-byte capture — not bounded", allocated, len(data))
	}
}
