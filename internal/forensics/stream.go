package forensics

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/hci"
	"repro/internal/snoop"
)

// Pipeline shape. A batch holds up to batchRecords payloads packed into
// one contiguous arena; the scanner goroutine fills batches, a worker
// pool decodes them, and the caller's goroutine reduces them in
// submission order. Peak memory is bounded by the in-flight batch count
// (the ordered channel's capacity plus the ones held by scanner,
// workers, and reducer) regardless of capture size.
const (
	batchRecords = 512
	batchArena   = 128 << 10
)

type recMeta struct {
	off, n int
	frame  int
	ts     time.Time
	dir    hci.Direction
}

type batch struct {
	arena []byte
	meta  []recMeta
	msgs  []any
	done  chan struct{}
}

// AnalyzeStream reconstructs sessions and findings from a btsnoop
// stream, producing a report bit-identical to Analyze over the same
// records while reading the capture incrementally in bounded memory.
// Decoding runs on runtime.GOMAXPROCS(0) workers.
func AnalyzeStream(r io.Reader) (*Report, error) {
	return AnalyzeStreamWorkers(r, 0)
}

// AnalyzeStreamWorkers is AnalyzeStream with an explicit decode worker
// count; values <= 0 select runtime.GOMAXPROCS(0). workers == 1 runs the
// whole pipeline on the calling goroutine — the serial reference path.
// Because records are decoded independently and reduced strictly in
// capture order, the report is invariant across worker counts.
func AnalyzeStreamWorkers(r io.Reader, workers int) (*Report, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return analyzeSerial(r)
	}
	return analyzeParallel(r, workers)
}

// AnalyzeFile parses a btsnoop file and analyzes it.
func AnalyzeFile(data []byte) (*Report, error) {
	return AnalyzeStream(bytes.NewReader(data))
}

func analyzeSerial(r io.Reader) (*Report, error) {
	sc := snoop.NewScanner(r)
	d := NewDetector()
	for sc.Scan() {
		d.Push(sc.Record())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("forensics: parsing capture: %w", err)
	}
	return d.Finish(), nil
}

func analyzeParallel(r io.Reader, workers int) (*Report, error) {
	var pool sync.Pool
	pool.New = func() any { return &batch{} }
	getBatch := func() *batch {
		b := pool.Get().(*batch)
		b.arena = b.arena[:0]
		b.meta = b.meta[:0]
		b.done = make(chan struct{})
		return b
	}

	work := make(chan *batch, workers)
	// ordered carries every batch in submission order; its capacity (plus
	// the batches held by the scanner and reducer) bounds memory.
	ordered := make(chan *batch, 2*workers)

	for g := 0; g < workers; g++ {
		go func() {
			for b := range work {
				if cap(b.msgs) < len(b.meta) {
					b.msgs = make([]any, len(b.meta))
				}
				b.msgs = b.msgs[:len(b.meta)]
				for i, m := range b.meta {
					b.msgs[i] = decodeRecord(m.dir, b.arena[m.off:m.off+m.n])
				}
				close(b.done)
			}
		}()
	}

	var scanErr error
	go func() {
		defer close(work)
		defer close(ordered)
		sc := snoop.NewScanner(r)
		b := getBatch()
		flush := func() {
			if len(b.meta) == 0 {
				return
			}
			ordered <- b
			work <- b
			b = getBatch()
		}
		for sc.Scan() {
			rec := sc.Record()
			if len(b.meta) >= batchRecords || (len(b.arena)+len(rec.Data) > batchArena && len(b.meta) > 0) {
				flush()
			}
			off := len(b.arena)
			b.arena = append(b.arena, rec.Data...)
			b.meta = append(b.meta, recMeta{
				off: off, n: len(rec.Data),
				frame: sc.Frame(), ts: rec.Timestamp, dir: recordDir(rec),
			})
		}
		scanErr = sc.Err()
		flush()
	}()

	d := NewDetector()
	for b := range ordered {
		<-b.done
		for i, m := range b.meta {
			d.pushDecoded(m.frame, m.ts, b.msgs[i])
		}
		b.done = nil
		pool.Put(b)
	}
	// The scanner goroutine wrote scanErr before closing ordered, so the
	// read below is ordered after it.
	if scanErr != nil {
		return nil, fmt.Errorf("forensics: parsing capture: %w", scanErr)
	}
	return d.Finish(), nil
}
