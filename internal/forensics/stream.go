package forensics

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/hci"
	"repro/internal/snoop"
)

// Pipeline shape. A batch holds up to batchRecords payloads packed into
// one contiguous arena; the scanner goroutine fills batches, a worker
// pool decodes them, and the caller's goroutine reduces them in
// submission order. Peak memory is bounded by the in-flight batch count
// (the ordered channel's capacity plus the ones held by scanner,
// workers, and reducer) regardless of capture size.
const (
	batchRecords = 512
	batchArena   = 128 << 10
)

type recMeta struct {
	off, n int
	frame  int
	ts     time.Time
	dir    hci.Direction
}

type batch struct {
	arena []byte
	meta  []recMeta
	msgs  []any
	done  chan struct{}
}

// AnalyzeStream reconstructs sessions and findings from a btsnoop
// stream, producing a report bit-identical to Analyze over the same
// records while reading the capture incrementally in bounded memory.
// Decoding runs on runtime.GOMAXPROCS(0) workers.
func AnalyzeStream(r io.Reader) (*Report, error) {
	return AnalyzeStreamWorkers(r, 0)
}

// AnalyzeStreamWorkers is AnalyzeStream with an explicit decode worker
// count; values <= 0 select runtime.GOMAXPROCS(0). workers == 1 runs the
// whole pipeline on the calling goroutine — the serial reference path.
// Because records are decoded independently and reduced strictly in
// capture order, the report is invariant across worker counts.
func AnalyzeStreamWorkers(r io.Reader, workers int) (*Report, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return analyzeSerial(r)
	}
	return analyzeParallel(r, workers)
}

// AnalyzeFile parses a btsnoop file and analyzes it via the zero-copy
// batch path.
func AnalyzeFile(data []byte) (*Report, error) {
	return AnalyzeBytes(data)
}

// AnalyzeBatch reconstructs sessions and findings from a btsnoop stream
// through the batch pipeline: block scanning (BatchScanner) feeding the
// prefiltered PushBatch. It produces a report bit-identical to Analyze
// and AnalyzeStream over the same records — the identity tests and the
// scanner differential fuzz pin this — at a fraction of the per-record
// cost. This is the path hcidump -analyze and the benchmark suite run.
func AnalyzeBatch(r io.Reader) (*Report, error) {
	return analyzeBatches(snoop.NewBatchScannerSize(r, 256<<10))
}

// AnalyzeBytes is AnalyzeBatch for a capture already in memory: records
// are decoded aliasing data directly, with no copies at all.
func AnalyzeBytes(data []byte) (*Report, error) {
	return analyzeBatches(snoop.NewBatchScannerBytes(data))
}

func analyzeBatches(sc *snoop.BatchScanner) (*Report, error) {
	// No live-event hook: batch analysis reads findings from the report,
	// so buffering Events nobody drains would only add churn. The
	// prefilter runs inside the scan sweep (ScanBatchKeep), so the ~97%
	// of records the reducer ignores are never even materialized; the
	// few that survive carry their absolute frame numbers in b.Frames
	// and feed the same ordered-reduce entry the parallel pipeline uses.
	d := &Detector{st: newSessionState()}
	var b snoop.RecordBatch
	for sc.ScanBatchKeep(&b, RelevantRecord) {
		d.PushKept(b.Frames, b.Records)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("forensics: parsing capture: %w", err)
	}
	return d.Finish(), nil
}

func analyzeSerial(r io.Reader) (*Report, error) {
	sc := snoop.NewScanner(r)
	d := NewDetector()
	for sc.Scan() {
		d.Push(sc.Record())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("forensics: parsing capture: %w", err)
	}
	return d.Finish(), nil
}

func analyzeParallel(r io.Reader, workers int) (*Report, error) {
	var pool sync.Pool
	pool.New = func() any { return &batch{} }
	getBatch := func() *batch {
		b := pool.Get().(*batch)
		b.arena = b.arena[:0]
		b.meta = b.meta[:0]
		b.done = make(chan struct{})
		return b
	}

	work := make(chan *batch, workers)
	// ordered carries every batch in submission order; its capacity (plus
	// the batches held by the scanner and reducer) bounds memory.
	ordered := make(chan *batch, 2*workers)

	for g := 0; g < workers; g++ {
		go func() {
			for b := range work {
				if cap(b.msgs) < len(b.meta) {
					b.msgs = make([]any, len(b.meta))
				}
				b.msgs = b.msgs[:len(b.meta)]
				for i, m := range b.meta {
					b.msgs[i] = decodeRecord(m.dir, b.arena[m.off:m.off+m.n])
				}
				close(b.done)
			}
		}()
	}

	var scanErr error
	go func() {
		defer close(work)
		defer close(ordered)
		sc := snoop.NewScanner(r)
		b := getBatch()
		flush := func() {
			if len(b.meta) == 0 {
				return
			}
			ordered <- b
			work <- b
			b = getBatch()
		}
		for sc.Scan() {
			rec := sc.Record()
			if len(b.meta) >= batchRecords || (len(b.arena)+len(rec.Data) > batchArena && len(b.meta) > 0) {
				flush()
			}
			off := len(b.arena)
			b.arena = append(b.arena, rec.Data...)
			b.meta = append(b.meta, recMeta{
				off: off, n: len(rec.Data),
				frame: sc.Frame(), ts: rec.Timestamp, dir: recordDir(rec),
			})
		}
		scanErr = sc.Err()
		flush()
	}()

	d := NewDetector()
	for b := range ordered {
		<-b.done
		for i, m := range b.meta {
			d.pushDecoded(m.frame, m.ts, b.msgs[i])
		}
		b.done = nil
		pool.Put(b)
	}
	// The scanner goroutine wrote scanErr before closing ordered, so the
	// read below is ordered after it.
	if scanErr != nil {
		return nil, fmt.Errorf("forensics: parsing capture: %w", scanErr)
	}
	return d.Finish(), nil
}
