// Package forensics reconstructs what happened on a device from its HCI
// dump alone — the paper's own methodology: §VI-B2 confirms the page
// blocking attack by checking that the victim's capture shows an
// HCI_Connection_Request event followed by a locally issued
// HCI_Authentication_Requested. The analyzer rebuilds connections and
// pairings from a btsnoop capture and flags:
//
//   - plaintext link key exposures (the §IV vulnerability);
//   - page-blocking signatures (incoming connection + local pairing
//     initiation + a NoInputNoOutput peer);
//   - suspicious timeout disconnects during authentication (the trace a
//     link key extraction attack leaves on the *accessory*).
//
// Three entry points share one single-pass session reducer: Analyze
// walks records already in memory; AnalyzeStream (stream.go) digests a
// btsnoop stream of any size in bounded memory with parallel decode
// workers; Detector (detector.go) is the incremental core both wrap —
// push records as they arrive, drain findings as soon as the reducer
// produces them — and is what the blapd live-ingestion daemon and
// hcidump's tail mode run against a capture that is still growing.
package forensics

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/bt"
	"repro/internal/hci"
	"repro/internal/snoop"
)

// Session is one reconstructed ACL connection.
type Session struct {
	Handle bt.ConnHandle
	Peer   bt.BDADDR

	// Incoming is true when the capture shows HCI_Connection_Request /
	// HCI_Accept_Connection_Request for this peer (we were paged).
	Incoming bool
	// LocalPairingInitiation is true when the host issued
	// HCI_Authentication_Requested on this handle.
	LocalPairingInitiation bool
	// PeerIOCap is the capability from HCI_IO_Capability_Response.
	PeerIOCap     bt.IOCapability
	HavePeerIOCap bool

	// PairingCompleted / PairingStatus summarize Simple_Pairing_Complete.
	PairingCompleted bool
	PairingStatus    hci.Status

	// AuthOutcomes collects Authentication_Complete statuses.
	AuthOutcomes []hci.Status
	// DisconnectReason is the final Disconnection_Complete reason.
	DisconnectReason    hci.Status
	Disconnected        bool
	ConnectedAt, EndsAt time.Time

	// flaggedPageBlocking keeps the page-blocking finding one-shot per
	// session as its signature elements accumulate.
	flaggedPageBlocking bool
	// suppliedStoredKey is set when the host answered a link key request
	// for this session's peer with a stored key — the precondition of the
	// silent re-pairing signature. flaggedSilentRepair keeps that finding
	// one-shot per session.
	suppliedStoredKey  bool
	flaggedSilentRepair bool
}

// KeyExposure is one plaintext link key found in the capture.
type KeyExposure struct {
	Frame  int
	Source string
	Peer   bt.BDADDR
	Key    bt.LinkKey
}

// Finding is one flagged anomaly. Frame is the 1-based capture position
// of the record that completed the finding — the earliest point at which
// an online detector could have raised it.
type Finding struct {
	Kind    string
	Frame   int
	Peer    bt.BDADDR
	Detail  string
	Session *Session
}

// Finding kinds.
const (
	FindingKeyExposure        = "plaintext-link-key"
	FindingPageBlocking       = "page-blocking-signature"
	FindingStalledAuthTimeout = "stalled-authentication-timeout"
	// FindingSilentRepairing: the host supplied a stored link key for a
	// peer and the same session still ran a full pairing to completion —
	// the Stealtooth trace: a failed challenge silently re-pairs a peer
	// the host believed it already shared a key with.
	FindingSilentRepairing = "silent-repairing"
	// FindingSilentKeyChange: a Link_Key_Notification delivered a key for
	// a peer that differs from the last key sighted for that address in
	// this capture (via reply or notification) — the Happy-MitM trace of a
	// bonded key being replaced underneath the user.
	FindingSilentKeyChange = "silent-key-change"
	// FindingKeyTypeDowngrade: a peer whose last notified key type was
	// authenticated (MITM-protected) received a new key without MITM
	// protection — the BLURtooth-style association downgrade.
	FindingKeyTypeDowngrade = "key-type-downgrade"
)

// Report is the full analysis of one capture.
type Report struct {
	Sessions  []*Session
	Exposures []KeyExposure
	Findings  []Finding
}

// sessionState is the single-pass session reducer at the core of every
// entry point (Analyze, AnalyzeStream, the live Detector). It consumes
// typed HCI messages in capture order; because its input is a pure
// function of each record, feeding it from a serial loop, an ordered
// parallel decode pipeline, or a live socket yields bit-identical
// reports. Findings are emitted the moment the last record completing
// them is applied — never deferred to end-of-capture — which is what
// lets the Detector surface them while a capture is still being written.
type sessionState struct {
	rep      *Report
	byHandle map[bt.ConnHandle]*Session
	byPeer   map[bt.BDADDR]*Session // latest session per peer
	// Peers whose connection arrived inbound but have no handle yet.
	pendingIncoming map[bt.BDADDR]bool
	// Handles with an authentication in flight (for timeout correlation).
	authPending map[bt.ConnHandle]bool
	// Last link key sighted per peer (reply or notification) and last
	// *notified* key type per peer — the change/downgrade baselines. These
	// survive disconnects deliberately: the interesting replacement is the
	// one that happens on a later connection.
	lastKey     map[bt.BDADDR]bt.LinkKey
	lastKeyType map[bt.BDADDR]bt.LinkKeyType
	// frame/ts describe the record currently being applied; emit stamps
	// them onto each finding.
	frame int
	ts    time.Time
	// onFinding, when set, observes each finding as it is appended to the
	// report — the Detector's live event hook.
	onFinding func(Finding)
}

func newSessionState() *sessionState {
	return &sessionState{
		rep:             &Report{},
		byHandle:        make(map[bt.ConnHandle]*Session),
		byPeer:          make(map[bt.BDADDR]*Session),
		pendingIncoming: make(map[bt.BDADDR]bool),
		authPending:     make(map[bt.ConnHandle]bool),
		lastKey:         make(map[bt.BDADDR]bt.LinkKey),
		lastKeyType:     make(map[bt.BDADDR]bt.LinkKeyType),
	}
}

// emit appends one finding to the report, stamped with the frame that
// completed it, and forwards it to the live hook if one is installed.
func (st *sessionState) emit(f Finding) {
	f.Frame = st.frame
	st.rep.Findings = append(st.rep.Findings, f)
	if st.onFinding != nil {
		st.onFinding(f)
	}
}

// exposure records one plaintext link key sighting and raises its
// finding immediately.
func (st *sessionState) exposure(source string, peer bt.BDADDR, key bt.LinkKey) {
	st.rep.Exposures = append(st.rep.Exposures, KeyExposure{
		Frame: st.frame, Source: source, Peer: peer, Key: key,
	})
	// Built by concatenation rather than fmt.Sprintf: exposures are the
	// most common finding by far and this runs inside the hot ingest loop.
	st.emit(Finding{
		Kind:   FindingKeyExposure,
		Peer:   peer,
		Detail: "frame " + strconv.Itoa(st.frame) + ": 128-bit link key in plaintext via " + source,
	})
}

// checkPageBlocking raises the page-blocking finding the moment a
// session's signature completes (incoming connection + local pairing
// initiation + NoInputNoOutput peer). The flag keeps it one-shot: the
// signature elements can arrive in any order, and each later element
// re-runs the check.
func (st *sessionState) checkPageBlocking(s *Session) {
	if s == nil || s.flaggedPageBlocking {
		return
	}
	if s.Incoming && s.LocalPairingInitiation && s.HavePeerIOCap && s.PeerIOCap == bt.NoInputNoOutput {
		s.flaggedPageBlocking = true
		st.emit(Finding{
			Kind: FindingPageBlocking,
			Peer: s.Peer,
			Detail: "pairing initiated locally over an incoming connection whose initiator " +
				"claims NoInputNoOutput (the Fig. 12b signature)",
			Session: s,
		})
	}
}

// apply folds one decoded message (a typed *hci.Command or *hci.Event
// from decodeRecord) into the session state. frame is the record's
// 1-based capture position, ts its timestamp.
func (st *sessionState) apply(frame int, ts time.Time, msg any) {
	st.frame, st.ts = frame, ts
	rep := st.rep
	switch m := msg.(type) {
	case *hci.AcceptConnectionRequest:
		st.pendingIncoming[m.Addr] = true
	case *hci.AuthenticationRequested:
		if s := st.byHandle[m.Handle]; s != nil {
			s.LocalPairingInitiation = true
			st.authPending[m.Handle] = true
			st.checkPageBlocking(s)
		}
	case *hci.LinkKeyRequestReply:
		st.exposure(hci.OpLinkKeyRequestReply.String(), m.Addr, m.Key)
		st.lastKey[m.Addr] = m.Key
		if s := st.byPeer[m.Addr]; s != nil {
			s.suppliedStoredKey = true
		}

	case *hci.ConnectionComplete:
		if m.Status != hci.StatusSuccess {
			// A failed completion still consumes the pending accept:
			// leaving it would misflag a later outgoing session to the
			// same peer as incoming (a false page-blocking signature).
			delete(st.pendingIncoming, m.Addr)
			return
		}
		s := &Session{
			Handle:      m.Handle,
			Peer:        m.Addr,
			Incoming:    st.pendingIncoming[m.Addr],
			ConnectedAt: ts,
		}
		delete(st.pendingIncoming, m.Addr)
		st.byHandle[m.Handle] = s
		st.byPeer[m.Addr] = s
		rep.Sessions = append(rep.Sessions, s)
	case *hci.IOCapabilityResponse:
		if s := st.byPeer[m.Addr]; s != nil {
			s.PeerIOCap = m.Capability
			s.HavePeerIOCap = true
			st.checkPageBlocking(s)
		}
	case *hci.SimplePairingComplete:
		if s := st.byPeer[m.Addr]; s != nil {
			s.PairingCompleted = m.Status == hci.StatusSuccess
			s.PairingStatus = m.Status
			if s.PairingCompleted && s.suppliedStoredKey && !s.flaggedSilentRepair {
				s.flaggedSilentRepair = true
				st.emit(Finding{
					Kind: FindingSilentRepairing,
					Peer: s.Peer,
					Detail: "full pairing completed on a session whose peer was already answered " +
						"with a stored link key — silent automatic re-pairing (Stealtooth signature)",
					Session: s,
				})
			}
		}
	case *hci.AuthenticationComplete:
		if s := st.byHandle[m.Handle]; s != nil {
			s.AuthOutcomes = append(s.AuthOutcomes, m.Status)
			delete(st.authPending, m.Handle)
		}
	case *hci.LinkKeyNotification:
		st.exposure(hci.EvLinkKeyNotification.String(), m.Addr, m.Key)
		if prev, ok := st.lastKey[m.Addr]; ok && prev != m.Key {
			st.emit(Finding{
				Kind: FindingSilentKeyChange,
				Peer: m.Addr,
				Detail: "link key for " + m.Addr.String() + " replaced within one capture " +
					"(previous sighting differs) — stored-key overwrite signature",
				Session: st.byPeer[m.Addr],
			})
		}
		if prevT, ok := st.lastKeyType[m.Addr]; ok &&
			isAuthenticatedKeyType(prevT) && !isAuthenticatedKeyType(m.KeyType) {
			st.emit(Finding{
				Kind: FindingKeyTypeDowngrade,
				Peer: m.Addr,
				Detail: "key type for " + m.Addr.String() + " downgraded from " + prevT.String() +
					" to " + m.KeyType.String() + " — MITM protection lost (BLURtooth-style downgrade)",
				Session: st.byPeer[m.Addr],
			})
		}
		st.lastKey[m.Addr] = m.Key
		st.lastKeyType[m.Addr] = m.KeyType
	case *hci.DisconnectionComplete:
		if s := st.byHandle[m.Handle]; s != nil {
			s.Disconnected = true
			s.DisconnectReason = m.Reason
			s.EndsAt = ts
			delete(st.byHandle, m.Handle)
			if st.byPeer[s.Peer] == s {
				delete(st.byPeer, s.Peer)
			}
			if st.authPending[s.Handle] && isTimeout(m.Reason) {
				st.emit(Finding{
					Kind: FindingStalledAuthTimeout,
					Peer: s.Peer,
					Detail: fmt.Sprintf(
						"authentication on handle 0x%04x never completed; link dropped with %s — the trace a link key extraction stall leaves behind",
						uint16(s.Handle), m.Reason),
					Session: s,
				})
			}
			delete(st.authPending, s.Handle)
		}
	}
}

// finish returns the report. Every finding has already been emitted by
// apply — detection is fully incremental, so end-of-capture adds nothing.
func (st *sessionState) finish() *Report {
	return st.rep
}

// wantEvents is the skip-parse prefilter table: the six event codes the
// session reducer consumes, indexed by the event-code byte, so batch
// classification of the dominant irrelevant-event case is one branch and
// one table load.
var wantEvents = buildEventTable()

func buildEventTable() (t [256]bool) {
	for _, e := range []hci.EventCode{
		hci.EvConnectionComplete, hci.EvIOCapabilityResponse, hci.EvSimplePairingComplete,
		hci.EvAuthenticationComplete, hci.EvLinkKeyNotification, hci.EvDisconnectionComplete,
	} {
		t[byte(e)] = true
	}
	return t
}

// RelevantRecord classifies one raw H4 record before any copy or typed
// parse: only the three command opcodes and six event codes the session
// reducer consumes pass. Everything else — ACL data above all, plus
// unrelated commands and events — is dismissed on the indicator octet
// and at most one opcode/event-code peek, with zero allocation. This is
// the batch pipeline's first gate; in a realistic capture it retires
// ~99% of records.
func RelevantRecord(raw []byte) bool {
	pt, ok := hci.PeekPacketType(raw)
	if !ok {
		return false
	}
	switch pt {
	case hci.PTCommand:
		op, ok := hci.PeekCommandOpcode(raw)
		return ok && (op == hci.OpAcceptConnectionRequest ||
			op == hci.OpAuthenticationRequested ||
			op == hci.OpLinkKeyRequestReply)
	case hci.PTEvent:
		code, ok := hci.PeekEventCode(raw)
		return ok && wantEvents[byte(code)]
	}
	return false
}

// decodeRelevant fully parses a record that passed RelevantRecord. The
// borrow-parse never copies the body; the typed results copy the fields
// they keep, so nothing of raw is retained.
func decodeRelevant(dir hci.Direction, raw []byte) any {
	pkt, err := hci.ParseWireBorrow(dir, raw)
	if err != nil {
		return nil
	}
	if pkt.PT == hci.PTCommand {
		cmd, err := hci.ParseCommand(pkt)
		if err != nil {
			return nil
		}
		return cmd
	}
	evt, err := hci.ParseEvent(pkt)
	if err != nil {
		return nil
	}
	return evt
}

// decodeRecord classifies one raw H4 record and fully parses only the
// packet kinds the reducer consumes, returning nil for everything else.
func decodeRecord(dir hci.Direction, raw []byte) any {
	if !RelevantRecord(raw) {
		return nil
	}
	return decodeRelevant(dir, raw)
}

func recordDir(rec snoop.Record) hci.Direction {
	if rec.Received() {
		return hci.DirControllerToHost
	}
	return hci.DirHostToController
}

// Analyze reconstructs sessions and findings from capture records. It is
// a thin wrapper over the incremental Detector, so batch analysis and
// live detection are bit-identical by construction.
func Analyze(records []snoop.Record) *Report {
	d := NewDetector()
	for _, rec := range records {
		d.Push(rec)
	}
	return d.Finish()
}

func isTimeout(s hci.Status) bool {
	return s == hci.StatusLMPResponseTimeout || s == hci.StatusConnectionTimeout
}

// isAuthenticatedKeyType reports whether a link key type carries MITM
// protection.
func isAuthenticatedKeyType(t bt.LinkKeyType) bool {
	return t == bt.KeyTypeAuthenticatedP192 || t == bt.KeyTypeAuthenticatedP256
}

// HasFinding reports whether the report contains a finding of the kind.
func (r *Report) HasFinding(kind string) bool {
	for _, f := range r.Findings {
		if f.Kind == kind {
			return true
		}
	}
	return false
}

// Render formats the report for terminal display.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "forensic report: %d sessions, %d key exposures, %d findings\n",
		len(r.Sessions), len(r.Exposures), len(r.Findings))
	for _, s := range r.Sessions {
		role := "outgoing"
		if s.Incoming {
			role = "incoming"
		}
		end := "open"
		if s.Disconnected {
			end = s.DisconnectReason.String()
		}
		fmt.Fprintf(&b, "  session 0x%04x peer %s %s, pairing-init=%v, end=%s\n",
			uint16(s.Handle), s.Peer, role, s.LocalPairingInitiation, end)
	}
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  [%s] frame %d peer %s: %s\n", f.Kind, f.Frame, f.Peer, f.Detail)
	}
	return b.String()
}
