// Package forensics reconstructs what happened on a device from its HCI
// dump alone — the paper's own methodology: §VI-B2 confirms the page
// blocking attack by checking that the victim's capture shows an
// HCI_Connection_Request event followed by a locally issued
// HCI_Authentication_Requested. The analyzer rebuilds connections and
// pairings from a btsnoop capture and flags:
//
//   - plaintext link key exposures (the §IV vulnerability);
//   - page-blocking signatures (incoming connection + local pairing
//     initiation + a NoInputNoOutput peer);
//   - suspicious timeout disconnects during authentication (the trace a
//     link key extraction attack leaves on the *accessory*).
package forensics

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/bt"
	"repro/internal/hci"
	"repro/internal/snoop"
)

// Session is one reconstructed ACL connection.
type Session struct {
	Handle bt.ConnHandle
	Peer   bt.BDADDR

	// Incoming is true when the capture shows HCI_Connection_Request /
	// HCI_Accept_Connection_Request for this peer (we were paged).
	Incoming bool
	// LocalPairingInitiation is true when the host issued
	// HCI_Authentication_Requested on this handle.
	LocalPairingInitiation bool
	// PeerIOCap is the capability from HCI_IO_Capability_Response.
	PeerIOCap     bt.IOCapability
	HavePeerIOCap bool

	// PairingCompleted / PairingStatus summarize Simple_Pairing_Complete.
	PairingCompleted bool
	PairingStatus    hci.Status

	// AuthOutcomes collects Authentication_Complete statuses.
	AuthOutcomes []hci.Status
	// DisconnectReason is the final Disconnection_Complete reason.
	DisconnectReason    hci.Status
	Disconnected        bool
	ConnectedAt, EndsAt time.Time
}

// KeyExposure is one plaintext link key found in the capture.
type KeyExposure struct {
	Frame  int
	Source string
	Peer   bt.BDADDR
	Key    bt.LinkKey
}

// Finding is one flagged anomaly.
type Finding struct {
	Kind    string
	Peer    bt.BDADDR
	Detail  string
	Session *Session
}

// Finding kinds.
const (
	FindingKeyExposure        = "plaintext-link-key"
	FindingPageBlocking       = "page-blocking-signature"
	FindingStalledAuthTimeout = "stalled-authentication-timeout"
)

// Report is the full analysis of one capture.
type Report struct {
	Sessions  []*Session
	Exposures []KeyExposure
	Findings  []Finding
}

// Analyze reconstructs sessions and findings from capture records.
func Analyze(records []snoop.Record) *Report {
	rep := &Report{}
	byHandle := make(map[bt.ConnHandle]*Session)
	byPeer := make(map[bt.BDADDR]*Session) // latest session per peer
	// Peers whose connection arrived inbound but have no handle yet.
	pendingIncoming := make(map[bt.BDADDR]bool)
	// Handles with an authentication in flight (for timeout correlation).
	authPending := make(map[bt.ConnHandle]bool)

	for i, rec := range records {
		dir := hci.DirHostToController
		if rec.Received() {
			dir = hci.DirControllerToHost
		}
		pkt, err := hci.ParseWire(dir, rec.Data)
		if err != nil {
			continue
		}
		switch pkt.PT {
		case hci.PTCommand:
			cmd, err := hci.ParseCommand(pkt)
			if err != nil {
				continue
			}
			switch c := cmd.(type) {
			case *hci.AcceptConnectionRequest:
				pendingIncoming[c.Addr] = true
			case *hci.AuthenticationRequested:
				if s := byHandle[c.Handle]; s != nil {
					s.LocalPairingInitiation = true
					authPending[c.Handle] = true
				}
			case *hci.LinkKeyRequestReply:
				rep.Exposures = append(rep.Exposures, KeyExposure{
					Frame: i + 1, Source: hci.OpLinkKeyRequestReply.String(), Peer: c.Addr, Key: c.Key,
				})
			}

		case hci.PTEvent:
			evt, err := hci.ParseEvent(pkt)
			if err != nil {
				continue
			}
			switch e := evt.(type) {
			case *hci.ConnectionComplete:
				if e.Status != hci.StatusSuccess {
					continue
				}
				s := &Session{
					Handle:      e.Handle,
					Peer:        e.Addr,
					Incoming:    pendingIncoming[e.Addr],
					ConnectedAt: rec.Timestamp,
				}
				delete(pendingIncoming, e.Addr)
				byHandle[e.Handle] = s
				byPeer[e.Addr] = s
				rep.Sessions = append(rep.Sessions, s)
			case *hci.IOCapabilityResponse:
				if s := byPeer[e.Addr]; s != nil {
					s.PeerIOCap = e.Capability
					s.HavePeerIOCap = true
				}
			case *hci.SimplePairingComplete:
				if s := byPeer[e.Addr]; s != nil {
					s.PairingCompleted = e.Status == hci.StatusSuccess
					s.PairingStatus = e.Status
				}
			case *hci.AuthenticationComplete:
				if s := byHandle[e.Handle]; s != nil {
					s.AuthOutcomes = append(s.AuthOutcomes, e.Status)
					delete(authPending, e.Handle)
				}
			case *hci.LinkKeyNotification:
				rep.Exposures = append(rep.Exposures, KeyExposure{
					Frame: i + 1, Source: hci.EvLinkKeyNotification.String(), Peer: e.Addr, Key: e.Key,
				})
			case *hci.DisconnectionComplete:
				if s := byHandle[e.Handle]; s != nil {
					s.Disconnected = true
					s.DisconnectReason = e.Reason
					s.EndsAt = rec.Timestamp
					delete(byHandle, e.Handle)
					if byPeer[s.Peer] == s {
						delete(byPeer, s.Peer)
					}
					if authPending[s.Handle] && isTimeout(e.Reason) {
						rep.Findings = append(rep.Findings, Finding{
							Kind: FindingStalledAuthTimeout,
							Peer: s.Peer,
							Detail: fmt.Sprintf(
								"authentication on handle 0x%04x never completed; link dropped with %s — the trace a link key extraction stall leaves behind",
								uint16(s.Handle), e.Reason),
							Session: s,
						})
					}
					delete(authPending, s.Handle)
				}
			}
		}
	}

	for _, exp := range rep.Exposures {
		rep.Findings = append(rep.Findings, Finding{
			Kind:   FindingKeyExposure,
			Peer:   exp.Peer,
			Detail: fmt.Sprintf("frame %d: 128-bit link key in plaintext via %s", exp.Frame, exp.Source),
		})
	}
	for _, s := range rep.Sessions {
		if s.Incoming && s.LocalPairingInitiation && s.HavePeerIOCap && s.PeerIOCap == bt.NoInputNoOutput {
			rep.Findings = append(rep.Findings, Finding{
				Kind: FindingPageBlocking,
				Peer: s.Peer,
				Detail: "pairing initiated locally over an incoming connection whose initiator " +
					"claims NoInputNoOutput (the Fig. 12b signature)",
				Session: s,
			})
		}
	}
	return rep
}

// AnalyzeFile parses a btsnoop file and analyzes it.
func AnalyzeFile(data []byte) (*Report, error) {
	records, err := snoop.ReadAll(data)
	if err != nil {
		return nil, fmt.Errorf("forensics: parsing capture: %w", err)
	}
	return Analyze(records), nil
}

func isTimeout(s hci.Status) bool {
	return s == hci.StatusLMPResponseTimeout || s == hci.StatusConnectionTimeout
}

// HasFinding reports whether the report contains a finding of the kind.
func (r *Report) HasFinding(kind string) bool {
	for _, f := range r.Findings {
		if f.Kind == kind {
			return true
		}
	}
	return false
}

// Render formats the report for terminal display.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "forensic report: %d sessions, %d key exposures, %d findings\n",
		len(r.Sessions), len(r.Exposures), len(r.Findings))
	for _, s := range r.Sessions {
		role := "outgoing"
		if s.Incoming {
			role = "incoming"
		}
		end := "open"
		if s.Disconnected {
			end = s.DisconnectReason.String()
		}
		fmt.Fprintf(&b, "  session 0x%04x peer %s %s, pairing-init=%v, end=%s\n",
			uint16(s.Handle), s.Peer, role, s.LocalPairingInitiation, end)
	}
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  [%s] peer %s: %s\n", f.Kind, f.Peer, f.Detail)
	}
	return b.String()
}
