//go:build race

package forensics

// raceEnabled skips allocation-accounting assertions, which the race
// detector's instrumentation would distort.
const raceEnabled = true
