package forensics

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/snoop"
)

// TestDetectorEventsMatchBatchFindings pins live detection to batch
// analysis: pushing records one at a time and draining after every push
// must yield the same findings, in the same order, as Analyze over the
// same slice — and the final report must be deeply identical.
func TestDetectorEventsMatchBatchFindings(t *testing.T) {
	for name, data := range streamTestCaptures(t) {
		recs, err := snoop.ReadAll(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := Analyze(recs)

		d := NewDetector()
		var events []Event
		for i, rec := range recs {
			d.Push(rec)
			for _, ev := range d.Drain() {
				// A finding can only ever be emitted by the record just
				// pushed — that is what makes the detector "live".
				if ev.Frame != i+1 {
					t.Fatalf("%s: event %d drained after frame %d but stamped frame %d",
						name, ev.Seq, i+1, ev.Frame)
				}
				events = append(events, ev)
			}
		}
		got := d.Finish()

		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: incremental report differs from Analyze\nlive:  %s\nbatch: %s",
				name, got.Render(), want.Render())
		}
		if len(events) != len(want.Findings) {
			t.Fatalf("%s: %d events, %d batch findings", name, len(events), len(want.Findings))
		}
		for i, ev := range events {
			if ev.Seq != uint64(i+1) {
				t.Fatalf("%s: event %d has seq %d", name, i, ev.Seq)
			}
			if !reflect.DeepEqual(ev.Finding, want.Findings[i]) {
				t.Fatalf("%s: event %d finding differs:\nlive:  %+v\nbatch: %+v",
					name, i, ev.Finding, want.Findings[i])
			}
			if ev.Frame != ev.Finding.Frame {
				t.Fatalf("%s: event frame %d != finding frame %d", name, ev.Frame, ev.Finding.Frame)
			}
		}
		if d.Frames() != len(recs) {
			t.Fatalf("%s: Frames() = %d, pushed %d", name, d.Frames(), len(recs))
		}
		if d.Findings() != uint64(len(events)) {
			t.Fatalf("%s: Findings() = %d, drained %d", name, d.Findings(), len(events))
		}
	}
}

// TestPushBatchMatchesPush pins the prefiltered batch entry to the
// record-at-a-time path: for every capture and for awkward batch splits
// (including empty and single-record batches), PushBatch must yield the
// same frame count, the same drained events, and a deeply identical
// report.
func TestPushBatchMatchesPush(t *testing.T) {
	for name, data := range streamTestCaptures(t) {
		recs, err := snoop.ReadAll(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ref := NewDetector()
		var wantEvents []Event
		for _, rec := range recs {
			ref.Push(rec)
			wantEvents = append(wantEvents, ref.Drain()...)
		}
		want := ref.Finish()

		for _, chunk := range []int{1, 3, 7, 64, 4096, len(recs) + 1} {
			d := NewDetector()
			var events []Event
			for i := 0; i < len(recs); i += chunk {
				end := i + chunk
				if end > len(recs) {
					end = len(recs)
				}
				d.PushBatch(recs[i:end])
				events = append(events, d.Drain()...)
			}
			d.PushBatch(nil) // empty batches are no-ops
			if d.Frames() != len(recs) {
				t.Fatalf("%s chunk=%d: Frames()=%d, want %d", name, chunk, d.Frames(), len(recs))
			}
			if !reflect.DeepEqual(d.Finish(), want) {
				t.Fatalf("%s chunk=%d: batch report differs from Push", name, chunk)
			}
			if !reflect.DeepEqual(events, wantEvents) {
				t.Fatalf("%s chunk=%d: %d batch events, %d push events (or contents differ)",
					name, chunk, len(events), len(wantEvents))
			}
		}
	}
}

// TestDetectorFiresBeforeEOF is the point of the subsystem: on a long
// capture with early attack flows, the first finding must surface long
// before the last record arrives — batch-at-EOF analysis cannot do this.
func TestDetectorFiresBeforeEOF(t *testing.T) {
	data, stats := synthCapture(t, 20_000, 9)
	if stats.BlockedSessions == 0 {
		t.Fatal("fixture lost its page-blocking sessions")
	}
	recs, err := snoop.ReadAll(data)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDetector()
	first := 0
	for _, rec := range recs {
		d.Push(rec)
		if evs := d.Drain(); first == 0 && len(evs) > 0 {
			first = evs[0].Frame
		}
	}
	if first == 0 {
		t.Fatal("no events emitted")
	}
	if first > len(recs)/10 {
		t.Fatalf("first finding at frame %d of %d — not incremental", first, len(recs))
	}
}

// TestFindingFramesMonotonic checks the frame stamps advance with the
// stream (sequence numbers are pinned elsewhere; frames may repeat when
// one record completes several findings).
func TestFindingFramesMonotonic(t *testing.T) {
	data, _ := synthCapture(t, 5_000, 4)
	recs, err := snoop.ReadAll(data)
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(recs)
	if len(rep.Findings) == 0 {
		t.Fatal("no findings")
	}
	last := 0
	for _, f := range rep.Findings {
		if f.Frame <= 0 || f.Frame > len(recs) {
			t.Fatalf("finding frame %d out of range 1..%d", f.Frame, len(recs))
		}
		if f.Frame < last {
			t.Fatalf("finding frames regress: %d after %d", f.Frame, last)
		}
		last = f.Frame
	}
}

func synthCapture(t testing.TB, records int, seed int64) ([]byte, snoop.SynthStats) {
	t.Helper()
	var buf bytes.Buffer
	stats, err := snoop.Synthesize(&buf, snoop.SynthConfig{Records: records, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), stats
}
