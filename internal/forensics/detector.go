package forensics

import (
	"time"

	"repro/internal/snoop"
)

// Event is one live finding: the Finding itself plus the stream metadata
// an online consumer needs — a monotonic 1-based sequence number and the
// capture position/timestamp of the record that completed it.
type Event struct {
	Seq     uint64
	Frame   int
	Time    time.Time
	Finding Finding
}

// Detector is the incremental form of the analyzer: push snoop.Records
// as they arrive (from a socket, a growing file, or a slice) and drain
// findings the moment the session reducer produces them. Analyze and
// AnalyzeStream are thin wrappers over a Detector, so a live path that
// pushes the same records in the same order emits byte-identical
// findings to a batch run — detection parity is structural, not tested
// into existence.
//
// A Detector is not safe for concurrent use; the daemon runs one per
// connection.
type Detector struct {
	st      *sessionState
	pending []Event
	seq     uint64
	frames  int
}

// NewDetector returns an empty Detector.
func NewDetector() *Detector {
	d := &Detector{st: newSessionState()}
	d.st.onFinding = func(f Finding) {
		d.seq++
		d.pending = append(d.pending, Event{
			Seq: d.seq, Frame: d.st.frame, Time: d.st.ts, Finding: f,
		})
	}
	return d
}

// Push folds one capture record into the detector. Frames are numbered
// 1..n in push order, matching how Analyze numbers a record slice. The
// record's Data may alias a reused scanner buffer: decoding copies every
// field it keeps, so nothing of rec is retained.
func (d *Detector) Push(rec snoop.Record) {
	d.frames++
	if msg := decodeRecord(recordDir(rec), rec.Data); msg != nil {
		d.st.apply(d.frames, rec.Timestamp, msg)
	}
}

// pushDecoded feeds an already-decoded message at an explicit frame
// position — the parallel stream pipeline's entry, whose workers decode
// out of band and reduce in submission order.
func (d *Detector) pushDecoded(frame int, ts time.Time, msg any) {
	if frame > d.frames {
		d.frames = frame
	}
	if msg != nil {
		d.st.apply(frame, ts, msg)
	}
}

// Drain returns the events produced since the previous Drain call, in
// emission order, or nil when there are none. The returned slice is
// owned by the caller.
func (d *Detector) Drain() []Event {
	if len(d.pending) == 0 {
		return nil
	}
	ev := d.pending
	d.pending = nil
	return ev
}

// Frames returns how many records have been pushed so far.
func (d *Detector) Frames() int { return d.frames }

// Findings returns how many findings have been emitted so far (drained
// or not).
func (d *Detector) Findings() uint64 { return d.seq }

// Finish returns the accumulated batch report. The detector may keep
// receiving pushes afterwards (the report is live state), but callers
// that want a stable snapshot should stop pushing first.
func (d *Detector) Finish() *Report { return d.st.finish() }
