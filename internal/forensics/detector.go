package forensics

import (
	"time"

	"repro/internal/hci"
	"repro/internal/snoop"
)

// Event is one live finding: the Finding itself plus the stream metadata
// an online consumer needs — a monotonic 1-based sequence number and the
// capture position/timestamp of the record that completed it.
type Event struct {
	Seq     uint64
	Frame   int
	Time    time.Time
	Finding Finding
}

// Detector is the incremental form of the analyzer: push snoop.Records
// as they arrive (from a socket, a growing file, or a slice) and drain
// findings the moment the session reducer produces them. Analyze and
// AnalyzeStream are thin wrappers over a Detector, so a live path that
// pushes the same records in the same order emits byte-identical
// findings to a batch run — detection parity is structural, not tested
// into existence.
//
// A Detector is not safe for concurrent use; the daemon runs one per
// connection.
type Detector struct {
	st      *sessionState
	pending []Event
	seq     uint64
	frames  int
	// snapCap remembers the last SnapshotState size so periodic
	// checkpoints serialize into one right-sized allocation instead of
	// growing a 512-byte buffer through a dozen realloc copies.
	snapCap int
}

// NewDetector returns an empty Detector.
func NewDetector() *Detector {
	d := &Detector{}
	d.install(newSessionState())
	return d
}

// install binds st as the detector's live reducer state and hooks its
// finding emission into the detector's pending event queue. NewDetector
// and RestoreState both go through here so a restored detector emits
// events exactly like a fresh one.
func (d *Detector) install(st *sessionState) {
	d.st = st
	st.onFinding = func(f Finding) {
		d.seq++
		d.pending = append(d.pending, Event{
			Seq: d.seq, Frame: d.st.frame, Time: d.st.ts, Finding: f,
		})
	}
}

// Push folds one capture record into the detector. Frames are numbered
// 1..n in push order, matching how Analyze numbers a record slice. The
// record's Data may alias a reused scanner buffer: decoding copies every
// field it keeps, so nothing of rec is retained.
func (d *Detector) Push(rec snoop.Record) {
	d.frames++
	if msg := decodeRecord(recordDir(rec), rec.Data); msg != nil {
		d.st.apply(d.frames, rec.Timestamp, msg)
	}
}

// PushBatch folds a batch of capture records into the detector,
// equivalent to calling Push on each in order but with the prefilter
// hoisted into the loop: irrelevant records (the overwhelming bulk) cost
// one classification branch each, and only records the reducer consumes
// reach the typed parse. Frame numbering and emitted findings are
// bit-identical to the record-at-a-time path.
func (d *Detector) PushBatch(recs []snoop.Record) {
	base := d.frames
	for i := range recs {
		raw := recs[i].Data
		// Hand-inlined RelevantRecord (the call is beyond the inliner's
		// budget and this loop is the hottest in the repo): dismiss on
		// the indicator octet plus one event-table load or opcode
		// compare. TestPushBatchMatchesPush pins the two paths together.
		if len(raw) < 2 {
			continue
		}
		switch raw[0] {
		case byte(hci.PTEvent):
			if !wantEvents[raw[1]] {
				continue
			}
		case byte(hci.PTCommand):
			if len(raw) < 3 {
				continue
			}
			op := hci.Opcode(uint16(raw[1]) | uint16(raw[2])<<8)
			if op != hci.OpAcceptConnectionRequest &&
				op != hci.OpAuthenticationRequested &&
				op != hci.OpLinkKeyRequestReply {
				continue
			}
		default:
			continue
		}
		d.frames = base + i + 1
		if msg := decodeRelevant(recordDir(recs[i]), raw); msg != nil {
			d.st.apply(d.frames, recs[i].Timestamp, msg)
		}
	}
	d.frames = base + len(recs)
}

// PushKept folds a batch of records that already passed the
// RelevantRecord prefilter — the output of snoop.ScanBatchKeep, where
// frames[i] is the absolute 1-based capture frame of recs[i]. Findings
// are bit-identical to PushBatch over the full stream, because on
// either path only relevant records ever reach the reducer and they
// arrive with the same frame numbers; the difference is that rejected
// records were never materialized at all. Note Frames then reports the
// last relevant frame, not the capture total — callers that account
// for every record (the sentinel pipeline) track the scanner's frame
// counter instead.
func (d *Detector) PushKept(frames []int, recs []snoop.Record) {
	for i := range recs {
		rec := &recs[i]
		if msg := decodeRelevant(recordDir(*rec), rec.Data); msg != nil {
			d.pushDecoded(frames[i], rec.Timestamp, msg)
		}
	}
}

// pushDecoded feeds an already-decoded message at an explicit frame
// position — the parallel stream pipeline's entry, whose workers decode
// out of band and reduce in submission order.
func (d *Detector) pushDecoded(frame int, ts time.Time, msg any) {
	if frame > d.frames {
		d.frames = frame
	}
	if msg != nil {
		d.st.apply(frame, ts, msg)
	}
}

// Drain returns the events produced since the previous Drain call, in
// emission order, or nil when there are none. The returned slice is
// owned by the caller.
func (d *Detector) Drain() []Event {
	if len(d.pending) == 0 {
		return nil
	}
	ev := d.pending
	d.pending = nil
	return ev
}

// Frames returns how many records have been pushed so far.
func (d *Detector) Frames() int { return d.frames }

// Findings returns how many findings have been emitted so far (drained
// or not).
func (d *Detector) Findings() uint64 { return d.seq }

// Finish returns the accumulated batch report. The detector may keep
// receiving pushes afterwards (the report is live state), but callers
// that want a stable snapshot should stop pushing first.
func (d *Detector) Finish() *Report { return d.st.finish() }
