package forensics

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/snoop"
)

func mustTestbed(t *testing.T, seed int64, opts core.TestbedOptions) *core.Testbed {
	t.Helper()
	tb, err := core.NewTestbed(seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestDetectsPageBlockingFromVictimDump(t *testing.T) {
	tb := mustTestbed(t, 1, core.TestbedOptions{})
	rep := core.RunPageBlocking(tb.Sched, core.PageBlockingConfig{
		Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
		UsePLOC: true,
	})
	if !rep.MITMEstablished {
		t.Fatal("attack failed")
	}
	report := Analyze(tb.M.Snoop.Records())
	if !report.HasFinding(FindingPageBlocking) {
		t.Fatalf("victim dump should show the page blocking signature:\n%s", report.Render())
	}
	// Session bookkeeping: one incoming session with local pairing init.
	var flagged *Session
	for _, f := range report.Findings {
		if f.Kind == FindingPageBlocking {
			flagged = f.Session
		}
	}
	if flagged == nil || !flagged.Incoming || !flagged.LocalPairingInitiation {
		t.Fatalf("flagged session: %+v", flagged)
	}
	if flagged.Peer != tb.C.Addr() {
		t.Fatalf("flagged peer %s, want the spoofed accessory address", flagged.Peer)
	}
}

func TestNormalPairingRaisesNoPageBlockingFinding(t *testing.T) {
	tb := mustTestbed(t, 2, core.TestbedOptions{})
	tb.MUser.ExpectPairing(tb.C.Addr())
	tb.M.Host.Pair(tb.C.Addr(), func(error) {})
	tb.Sched.RunFor(30 * time.Second)

	report := Analyze(tb.M.Snoop.Records())
	if report.HasFinding(FindingPageBlocking) {
		t.Fatalf("false positive on a normal pairing:\n%s", report.Render())
	}
	// The pairing still legitimately exposed the fresh key in the dump.
	if !report.HasFinding(FindingKeyExposure) {
		t.Fatal("the Link_Key_Notification exposure should be flagged")
	}
	if len(report.Sessions) == 0 || report.Sessions[0].Incoming {
		t.Fatalf("sessions: %+v", report.Sessions)
	}
}

func TestDetectsExtractionStallOnAccessoryDump(t *testing.T) {
	tb := mustTestbed(t, 3, core.TestbedOptions{
		ClientPlatform: device.GalaxyS21Android11,
		Bond:           true,
	})
	if _, err := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
		Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: core.ChannelHCISnoop,
	}); err != nil {
		t.Fatal(err)
	}
	report := Analyze(tb.C.Snoop.Records())
	if !report.HasFinding(FindingStalledAuthTimeout) {
		t.Fatalf("accessory dump should show the stalled-auth trace:\n%s", report.Render())
	}
	if !report.HasFinding(FindingKeyExposure) {
		t.Fatal("the key exposure the attacker harvested should be flagged")
	}
}

func TestAnalyzeFileRoundTrip(t *testing.T) {
	tb := mustTestbed(t, 4, core.TestbedOptions{Bond: true})
	tb.M.Host.Pair(tb.C.Addr(), func(error) {})
	tb.Sched.RunFor(30 * time.Second)
	data, err := tb.M.PullSnoopLog()
	if err != nil {
		t.Fatal(err)
	}
	report, err := AnalyzeFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Sessions) == 0 {
		t.Fatal("no sessions reconstructed from the file")
	}
	if !strings.Contains(report.Render(), "session") {
		t.Fatal("render")
	}
	if _, err := AnalyzeFile([]byte("garbage")); err == nil {
		t.Fatal("garbage file accepted")
	}
}

func TestAnalyzeTolerantOfTruncatedRecords(t *testing.T) {
	tb := mustTestbed(t, 5, core.TestbedOptions{})
	tb.MUser.ExpectPairing(tb.C.Addr())
	tb.M.Host.Pair(tb.C.Addr(), func(error) {})
	tb.Sched.RunFor(30 * time.Second)
	records := tb.M.Snoop.Records()
	// Mangle a third of the records (as a filter or corruption would).
	for i := range records {
		if i%3 == 0 && len(records[i].Data) > 2 {
			records[i].Data = records[i].Data[:2]
		}
	}
	Analyze(records) // must not panic
	_ = snoop.Record{}
}
