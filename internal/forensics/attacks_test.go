package forensics

import (
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/snoop"
)

// Scenario-driven detector tests for the related-attack library: each
// attack is run in the simulator and the victim's own HCI dump is
// analyzed — the paper's methodology applied to the neighbouring
// attacks. Every case also checks live-vs-batch parity: a Detector fed
// record-by-record must produce the same findings Analyze does.

// attackCapture runs one attack scenario and returns the victim-side
// records.
type attackCapture struct {
	name string
	// wantKinds must all be present in the analysis.
	wantKinds []string
	// absentKinds must not be present.
	absentKinds []string
	run         func(t *testing.T) []snoop.Record
}

func attackCaptures() []attackCapture {
	return []attackCapture{
		{
			name:      "stealtooth",
			wantKinds: []string{FindingSilentRepairing, FindingSilentKeyChange},
			run: func(t *testing.T) []snoop.Record {
				tb, err := core.NewTestbed(7, core.TestbedOptions{Bond: true, ClientPlatform: device.AndroidAutomotive})
				if err != nil {
					t.Fatal(err)
				}
				rep := core.RunStealtooth(tb.Sched, core.StealtoothConfig{
					Attacker: tb.A, Client: tb.C,
					VictimAddr: tb.M.Addr(), VictimCOD: tb.M.Platform.COD,
					OriginalKey: tb.BondKey,
				})
				if !rep.RePaired {
					t.Fatalf("attack failed: %+v", rep)
				}
				// Stealtooth's victim is the accessory that re-paired.
				return tb.C.Snoop.Records()
			},
		},
		{
			name:        "happy-mitm",
			wantKinds:   []string{FindingSilentKeyChange},
			absentKinds: []string{FindingKeyTypeDowngrade},
			run: func(t *testing.T) []snoop.Record {
				tb, err := core.NewTestbed(7, core.TestbedOptions{Bond: true, VictimSilentBondedRepair: true})
				if err != nil {
					t.Fatal(err)
				}
				rep := core.RunHappyMitM(tb.Sched, core.HappyMitMConfig{
					Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
					OriginalKey: tb.BondKey,
				})
				if !rep.KeyReplaced {
					t.Fatalf("attack failed: %+v", rep)
				}
				return tb.M.Snoop.Records()
			},
		},
		{
			name:      "blurtooth",
			wantKinds: []string{FindingKeyTypeDowngrade, FindingSilentKeyChange},
			run: func(t *testing.T) []snoop.Record {
				tb, err := core.NewTestbed(7, core.TestbedOptions{
					ClientPlatform:           device.GalaxyS21Android11,
					VictimCTKD:               true,
					VictimSilentBondedRepair: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				rep := core.RunBLURtooth(tb.Sched, core.BLURtoothConfig{
					Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
				})
				if !rep.Downgraded {
					t.Fatalf("attack failed: %+v", rep)
				}
				return tb.M.Snoop.Records()
			},
		},
		{
			// OOB MITM is wire-identical to a genuine OOB pairing: a single
			// fresh pairing, one key notification, nothing to compare
			// against. No rule can flag it, and none may false-positive.
			name: "oob-mitm",
			absentKinds: []string{
				FindingSilentRepairing, FindingSilentKeyChange, FindingKeyTypeDowngrade,
				FindingPageBlocking,
			},
			run: func(t *testing.T) []snoop.Record {
				tb, err := core.NewTestbed(7, core.TestbedOptions{})
				if err != nil {
					t.Fatal(err)
				}
				rep := core.RunOOBMITM(tb.Sched, core.OOBMITMConfig{Attacker: tb.A, Client: tb.C, Victim: tb.M})
				if !rep.MITMEstablished {
					t.Fatalf("attack failed: %+v", rep)
				}
				return tb.M.Snoop.Records()
			},
		},
		{
			name:      "passkey-sniff",
			wantKinds: []string{FindingSilentKeyChange},
			run: func(t *testing.T) []snoop.Record {
				printed := uint32(428571)
				tb, err := core.NewTestbed(7, core.TestbedOptions{ClientFixedPasskey: &printed})
				if err != nil {
					t.Fatal(err)
				}
				sniffer := core.NewAirSniffer(tb.Medium)
				tb.MUser.TypedPasskey = &printed
				rep := core.RunPasskeySniff(tb.Sched, core.PasskeySniffConfig{
					Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
					Sniffer: sniffer, PrintedPasskey: printed,
				})
				if !rep.Impersonated {
					t.Fatalf("attack failed: %+v", rep)
				}
				return tb.M.Snoop.Records()
			},
		},
		{
			// The enhanced-protocol mitigation: the impersonation fails, so
			// the victim's dump holds one legitimate pairing and no
			// key-replacement trace.
			name:        "passkey-guard",
			absentKinds: []string{FindingSilentKeyChange, FindingKeyTypeDowngrade},
			run: func(t *testing.T) []snoop.Record {
				printed := uint32(428571)
				tb, err := core.NewTestbed(7, core.TestbedOptions{ClientFixedPasskey: &printed, EnhancedPasskey: true})
				if err != nil {
					t.Fatal(err)
				}
				sniffer := core.NewAirSniffer(tb.Medium)
				tb.MUser.TypedPasskey = &printed
				rep := core.RunPasskeySniff(tb.Sched, core.PasskeySniffConfig{
					Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
					Sniffer: sniffer, PrintedPasskey: printed,
				})
				if rep.Impersonated {
					t.Fatalf("mitigation failed: %+v", rep)
				}
				return tb.M.Snoop.Records()
			},
		},
	}
}

func TestAttackDetectorRules(t *testing.T) {
	for _, c := range attackCaptures() {
		t.Run(c.name, func(t *testing.T) {
			records := c.run(t)
			if len(records) == 0 {
				t.Fatal("empty victim capture")
			}
			report := Analyze(records)
			for _, kind := range c.wantKinds {
				if !report.HasFinding(kind) {
					t.Errorf("victim dump should show %q:\n%s", kind, report.Render())
				}
			}
			for _, kind := range c.absentKinds {
				if report.HasFinding(kind) {
					t.Errorf("victim dump must not show %q:\n%s", kind, report.Render())
				}
			}
		})
	}
}

// TestAttackLiveBatchParity pushes each attack's victim capture through
// a Detector one record at a time, draining after every push, and
// requires the live event stream to match the batch report finding for
// finding.
func TestAttackLiveBatchParity(t *testing.T) {
	for _, c := range attackCaptures() {
		t.Run(c.name, func(t *testing.T) {
			records := c.run(t)
			batch := Analyze(records)

			d := NewDetector()
			var live []Event
			for _, rec := range records {
				d.Push(rec)
				live = append(live, d.Drain()...)
			}
			if len(live) != len(batch.Findings) {
				t.Fatalf("live emitted %d findings, batch %d", len(live), len(batch.Findings))
			}
			for i, ev := range live {
				bf := batch.Findings[i]
				if ev.Seq != uint64(i+1) {
					t.Fatalf("event %d: seq %d", i, ev.Seq)
				}
				if ev.Finding.Kind != bf.Kind || ev.Finding.Frame != bf.Frame ||
					ev.Finding.Peer != bf.Peer || ev.Finding.Detail != bf.Detail {
					t.Fatalf("event %d diverges: live %+v batch %+v", i, ev.Finding, bf)
				}
			}
		})
	}
}

// TestAttackCheckpointMidCapture splits each attack capture at the
// midpoint, checkpoints the detector there, restores a fresh one, and
// requires the resumed run's findings to be identical to an unbroken
// run — the v2 codec must carry the new rule state across the gap.
func TestAttackCheckpointMidCapture(t *testing.T) {
	for _, c := range attackCaptures() {
		t.Run(c.name, func(t *testing.T) {
			records := c.run(t)
			unbroken := Analyze(records)

			mid := len(records) / 2
			d1 := NewDetector()
			for _, rec := range records[:mid] {
				d1.Push(rec)
			}
			d1.Drain()
			ckpt, err := d1.SnapshotState()
			if err != nil {
				t.Fatal(err)
			}
			d2 := NewDetector()
			if err := d2.RestoreState(ckpt); err != nil {
				t.Fatal(err)
			}
			for _, rec := range records[mid:] {
				d2.Push(rec)
			}
			resumed := d2.Finish()
			if len(resumed.Findings) != len(unbroken.Findings) {
				t.Fatalf("resumed run found %d findings, unbroken %d:\n%s",
					len(resumed.Findings), len(unbroken.Findings), resumed.Render())
			}
			for i, rf := range resumed.Findings {
				uf := unbroken.Findings[i]
				if rf.Kind != uf.Kind || rf.Frame != uf.Frame || rf.Peer != uf.Peer || rf.Detail != uf.Detail {
					t.Fatalf("finding %d diverges after resume: %+v vs %+v", i, rf, uf)
				}
			}
		})
	}
}
