// Package campaign is the deterministic parallel execution engine behind
// the simulator's evaluation sweeps. Every paper artifact (Table I/II,
// the figures, the ablation and mitigation sweeps) is built from hundreds
// of independent trials — one hermetic testbed per trial, seeded from the
// trial index — and the engine dispatches those trials to a worker pool
// while guaranteeing results that are bit-identical to a serial loop.
//
// Determinism contract: a trial function must depend only on its trial
// index and the seed derived from it, never on shared mutable state or on
// scheduling order. Under that contract Run's output is invariant across
// worker counts because every result is written to the slot of its trial
// index and errors are reported for the lowest failing index; Search
// returns the lowest matching index, exactly what a serial first-match
// scan would find.
package campaign

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes a campaign run.
type Config struct {
	// Workers is the number of worker goroutines. Values <= 0 select
	// runtime.GOMAXPROCS(0). Workers == 1 runs trials sequentially on the
	// calling goroutine in index order — the serial reference path.
	Workers int
	// BlockSize is the shard width Search hands to one worker at a time;
	// values <= 0 select 64. Smaller blocks cancel earlier on a hit,
	// larger blocks amortize coordination over cheap predicates.
	BlockSize int
	// Progress, when non-nil, receives live telemetry (completed trials,
	// per-trial wall latency, retry counts) as the engine runs. It is
	// observation only — results, seeds, and scheduling are untouched, so
	// rows stay bit-identical with or without it. Nil costs nothing.
	Progress *Progress
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) blockSize() int {
	if c.BlockSize > 0 {
		return c.BlockSize
	}
	return 64
}

// DeriveSeed maps (base, domain, trial) to a stable per-trial seed. The
// domain string keeps distinct sweeps (per device model, per jitter
// spread, ...) on distinct seed streams even when their trial indices
// overlap, mirroring how the paper's per-device measurements scatter
// independently. The derivation is pure, so trials can be re-run or
// re-ordered freely without disturbing any other trial.
func DeriveSeed(base int64, domain string, trial int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", domain, trial)
	return base + int64(h.Sum64()%1_000_003)
}

// Seeds returns the n derived seeds of a domain, in trial order.
func Seeds(base int64, domain string, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = DeriveSeed(base, domain, i)
	}
	return out
}

// Run executes trial(ctx, i) for every i in [0, n) on a pool of
// cfg.Workers goroutines and returns the results in trial order. All
// trials are attempted (no early abort on trial errors, matching a sweep
// that wants its full row set); if any trial fails, the error of the
// lowest failing index is returned alongside the results gathered. When
// ctx is cancelled, unstarted trials fail with ctx.Err().
func Run[T any](ctx context.Context, n int, cfg Config, trial func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	cfg.Progress.Begin(n)
	results := make([]T, n)
	errs := make([]error, n)
	// runOne executes trial i into its slot, reporting wall time to the
	// progress sink. The clock is read only when someone is watching.
	runOne := func(i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			cfg.Progress.trialDone(err, 0)
			return
		}
		var t0 time.Time
		if cfg.Progress != nil {
			t0 = time.Now()
		}
		results[i], errs[i] = trial(ctx, i)
		if cfg.Progress != nil {
			cfg.Progress.trialDone(errs[i], time.Since(t0))
		}
	}
	w := cfg.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			runOne(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					runOne(i)
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("campaign: trial %d: %w", i, err)
		}
	}
	return results, nil
}

// RunSeeds is Run over an explicit seed list: trial i receives seeds[i].
func RunSeeds[T any](ctx context.Context, seeds []int64, cfg Config, trial func(ctx context.Context, i int, seed int64) (T, error)) ([]T, error) {
	return Run(ctx, len(seeds), cfg, func(ctx context.Context, i int) (T, error) {
		return trial(ctx, i, seeds[i])
	})
}

// Search finds the lowest index i in [0, n) for which pred(i) is true,
// evaluating candidates on cfg.Workers goroutines with early
// cancellation: once a match is known, no block of candidates above it is
// started and in-flight blocks stop at the match boundary. The found
// index matches a serial first-match scan for any worker count (or -1
// when nothing matches or ctx is cancelled first). evaluated reports how
// many predicate calls actually ran; with one worker it equals the serial
// count (found+1 on a hit), with more workers it may overshoot.
//
// pred must be safe for concurrent use and, like Run's trial functions,
// depend only on its index.
func Search(ctx context.Context, n int, cfg Config, pred func(i int) bool) (found, evaluated int) {
	if n <= 0 {
		return -1, 0
	}
	w := cfg.workers()
	if w <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return -1, i
			}
			evaluated++
			if pred(i) {
				return i, evaluated
			}
		}
		return -1, evaluated
	}

	bs := cfg.blockSize()
	nBlocks := (n + bs - 1) / bs
	if w > nBlocks {
		w = nBlocks
	}
	var nextBlock, evals atomic.Int64
	var best atomic.Int64
	best.Store(int64(n)) // sentinel: no match yet
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(nextBlock.Add(1)) - 1
				if b >= nBlocks {
					return
				}
				start := b * bs
				// Any match in this block would sit above the best known
				// match, and every lower block is already claimed — done.
				if int64(start) >= best.Load() {
					return
				}
				end := start + bs
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					if int64(i) >= best.Load() || ctx.Err() != nil {
						break
					}
					evals.Add(1)
					if pred(i) {
						for {
							cur := best.Load()
							if int64(i) >= cur || best.CompareAndSwap(cur, int64(i)) {
								break
							}
						}
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	evaluated = int(evals.Load())
	if got := best.Load(); got < int64(n) {
		return int(got), evaluated
	}
	return -1, evaluated
}
