package campaign

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestProgressNil pins the nil no-op contract on every entry point the
// engine calls.
func TestProgressNil(t *testing.T) {
	var p *Progress
	p.Begin(10)
	p.trialDone(nil, time.Second)
	p.retried()
	if s := p.Snapshot(); s != (ProgressSnapshot{}) {
		t.Fatalf("nil progress snapshot not zero: %+v", s)
	}
	stop := p.Report(&bytes.Buffer{}, time.Millisecond)
	stop()
	stop() // idempotent
}

// TestProgressCounts runs a campaign with a sink attached and checks
// the counters add up: every trial done, failures tallied, a latency
// observation per trial.
func TestProgressCounts(t *testing.T) {
	p := &Progress{}
	const n = 40
	_, err := Run(context.Background(), n, Config{Workers: 4, Progress: p},
		func(_ context.Context, i int) (int, error) {
			if i%10 == 3 {
				return 0, errors.New("boom")
			}
			return i, nil
		})
	if err == nil {
		t.Fatal("want the lowest failing trial's error")
	}
	s := p.Snapshot()
	if s.Total != n || s.Done != n {
		t.Fatalf("total/done = %d/%d, want %d/%d", s.Total, s.Done, n, n)
	}
	if s.Failed != 4 {
		t.Fatalf("failed = %d, want 4", s.Failed)
	}
	if s.Latency.Count != n {
		t.Fatalf("latency observations = %d, want %d", s.Latency.Count, n)
	}
	if s.TrialsPerSec <= 0 || s.Elapsed <= 0 {
		t.Fatalf("rate not computed: %+v", s)
	}
	if s.ETA != 0 {
		t.Fatalf("finished campaign still has ETA %s", s.ETA)
	}
}

// TestProgressRetries checks RunRetry reports one retry per extra
// attempt, summed across trials and worker counts.
func TestProgressRetries(t *testing.T) {
	fail := errors.New("channel fault")
	pol := RetryPolicy{MaxAttempts: 3, Retryable: func(err error) bool { return errors.Is(err, fail) }}
	for _, workers := range []int{1, 4} {
		p := &Progress{}
		res, err := RunRetry(context.Background(), 6, Config{Workers: workers, Progress: p}, pol,
			func(_ context.Context, a Attempt) (int, error) {
				// Even trials succeed on attempt 1 (one retry each); odd
				// trials succeed immediately.
				if a.Trial%2 == 0 && a.Attempt == 0 {
					return 0, fail
				}
				return a.Trial, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		wantRetries := int64(3) // trials 0, 2, 4
		if got := p.Snapshot().Retries; got != wantRetries {
			t.Fatalf("workers=%d: retries = %d, want %d", workers, got, wantRetries)
		}
		for i, r := range res {
			want := 1
			if i%2 == 0 {
				want = 2
			}
			if r.Attempts != want {
				t.Fatalf("workers=%d trial %d: attempts = %d, want %d", workers, i, r.Attempts, want)
			}
		}
	}
}

// TestProgressDoesNotPerturbResults is the determinism guard: the same
// campaign with and without a progress sink, at several worker counts,
// must produce byte-identical results.
func TestProgressDoesNotPerturbResults(t *testing.T) {
	trial := func(_ context.Context, i int) (string, error) {
		return fmt.Sprintf("row-%d-%d", i, DeriveSeed(1, "progress", i)), nil
	}
	bare, err := Run(context.Background(), 50, Config{Workers: 1}, trial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		got, err := Run(context.Background(), 50, Config{Workers: workers, Progress: &Progress{}}, trial)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, bare) {
			t.Fatalf("workers=%d: instrumented rows diverge from bare serial rows", workers)
		}
	}
}

// TestProgressSpansCampaigns checks totals accumulate across successive
// Run calls on one sink — the sweep-wide view.
func TestProgressSpansCampaigns(t *testing.T) {
	p := &Progress{}
	cfg := Config{Workers: 2, Progress: p}
	for c := 0; c < 3; c++ {
		if _, err := Run(context.Background(), 5, cfg, func(_ context.Context, i int) (int, error) {
			return i, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	s := p.Snapshot()
	if s.Total != 15 || s.Done != 15 {
		t.Fatalf("accumulated total/done = %d/%d, want 15/15", s.Total, s.Done)
	}
}

// TestProgressReport exercises the reporter goroutine end to end.
func TestProgressReport(t *testing.T) {
	p := &Progress{}
	var buf bytes.Buffer
	stop := p.Report(&buf, time.Millisecond)
	_, err := Run(context.Background(), 10, Config{Workers: 2, Progress: p},
		func(_ context.Context, i int) (int, error) {
			time.Sleep(time.Millisecond)
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	stop()
	out := buf.String()
	if !strings.Contains(out, "trials 10/10") {
		t.Fatalf("final report missing completion line: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("stop did not terminate the status line: %q", out)
	}
}
