package campaign

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
)

var errFlaky = errors.New("flaky channel")

func TestRunRetryRetriesOnlyRetryableErrors(t *testing.T) {
	// Trial i fails with a retryable error on its first i attempts (capped
	// under the budget), then succeeds; one trial is terminally broken.
	pol := RetryPolicy{MaxAttempts: 4, Retryable: func(err error) bool { return errors.Is(err, errFlaky) }}
	terminal := errors.New("auth outcome")
	results, err := RunRetry(context.Background(), 6, Config{Workers: 1}, pol,
		func(_ context.Context, a Attempt) (string, error) {
			if a.Trial == 5 {
				return "", terminal
			}
			if a.Attempt < a.Trial && a.Trial <= 3 {
				return "", fmt.Errorf("trial %d: %w", a.Trial, errFlaky)
			}
			return fmt.Sprintf("t%d-a%d", a.Trial, a.Attempt), nil
		})
	if !errors.Is(err, terminal) {
		t.Fatalf("want the terminal error surfaced, got %v", err)
	}
	wantAttempts := []int{1, 2, 3, 4, 1, 1}
	for i, r := range results {
		if r.Attempts != wantAttempts[i] {
			t.Errorf("trial %d took %d attempts, want %d", i, r.Attempts, wantAttempts[i])
		}
	}
	if results[5].Err == nil || results[5].Attempts != 1 {
		t.Fatalf("terminal trial must fail without retries: %+v", results[5])
	}
	if results[3].Err != nil || results[3].Value != "t3-a3" {
		t.Fatalf("retried trial outcome: %+v", results[3])
	}
}

func TestRunRetryExhaustsBudget(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 3, Retryable: func(error) bool { return true }}
	results, err := RunRetry(context.Background(), 1, Config{Workers: 1}, pol,
		func(_ context.Context, a Attempt) (int, error) { return 0, errFlaky })
	if err == nil || !errors.Is(err, errFlaky) {
		t.Fatalf("want exhaustion error, got %v", err)
	}
	if results[0].Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", results[0].Attempts)
	}
}

func TestRunRetryDeterministicAcrossWorkerCounts(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 3, Retryable: func(err error) bool { return errors.Is(err, errFlaky) }}
	run := func(workers int) []RetryResult[int64] {
		results, err := RunRetry(context.Background(), 40, Config{Workers: workers}, pol,
			func(_ context.Context, a Attempt) (int64, error) {
				seed := DeriveSeed(7, AttemptDomain("sweep", a.Attempt), a.Trial)
				// Deterministically flaky: fail when the derived seed is
				// even, succeed otherwise — a stand-in for a channel fault
				// that a reseeded retry can clear.
				if seed%2 == 0 {
					return 0, errFlaky
				}
				return seed, nil
			})
		_ = err // some trials may exhaust the budget; the rows still must match
		return results
	}
	ref := run(1)
	for _, w := range []int{2, 4, 8} {
		if got := run(w); !reflect.DeepEqual(got, ref) {
			t.Fatalf("results differ between 1 and %d workers", w)
		}
	}
}

func TestAttemptDomain(t *testing.T) {
	if AttemptDomain("x", 0) != "x" {
		t.Fatal("attempt 0 must keep the historic domain")
	}
	if AttemptDomain("x", 2) != "x#retry2" {
		t.Fatalf("got %q", AttemptDomain("x", 2))
	}
	if DeriveSeed(1, AttemptDomain("x", 0), 3) == DeriveSeed(1, AttemptDomain("x", 1), 3) {
		t.Fatal("retry attempts must land on distinct seed streams")
	}
}
