package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunOrderStableAcrossWorkerCounts(t *testing.T) {
	// The trial function is a pure function of the index, so every worker
	// count must produce the identical result slice.
	trial := func(_ context.Context, i int) (int64, error) {
		return DeriveSeed(42, "order", i) * int64(i+1), nil
	}
	want, err := Run(context.Background(), 257, Config{Workers: 1}, trial)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 4, 8, 16} {
		got, err := Run(context.Background(), 257, Config{Workers: w}, trial)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: trial %d got %d want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestRunReportsLowestFailingTrial(t *testing.T) {
	sentinel := errors.New("boom")
	trial := func(_ context.Context, i int) (int, error) {
		if i == 7 || i == 31 {
			return 0, sentinel
		}
		return i, nil
	}
	for _, w := range []int{1, 4} {
		got, err := Run(context.Background(), 64, Config{Workers: w}, trial)
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want wrapped sentinel", w, err)
		}
		if want := "campaign: trial 7: boom"; err.Error() != want {
			t.Fatalf("workers=%d: err = %q, want %q", w, err.Error(), want)
		}
		// Successful trials still land in their slots.
		if got[8] != 8 || got[63] != 63 {
			t.Fatalf("workers=%d: partial results corrupted: %v", w, got[:9])
		}
	}
}

func TestRunAllTrialsExecuteDespiteErrors(t *testing.T) {
	var ran atomic.Int64
	_, err := Run(context.Background(), 50, Config{Workers: 4}, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		if i%2 == 0 {
			return 0, errors.New("even trials fail")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := ran.Load(); got != 50 {
		t.Fatalf("ran %d trials, want all 50 (sweeps need their full row set)", got)
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	_, err := Run(ctx, 1000, Config{Workers: 2}, func(ctx context.Context, i int) (int, error) {
		if started.Add(1) == 5 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := started.Load(); got >= 1000 {
		t.Fatal("cancellation did not stop trial dispatch")
	}
}

func TestRunSeedsPassesDerivedSeeds(t *testing.T) {
	seeds := Seeds(9, "tableII/pixel6", 20)
	got, err := RunSeeds(context.Background(), seeds, Config{Workers: 4}, func(_ context.Context, i int, seed int64) (int64, error) {
		return seed, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seeds {
		if got[i] != s {
			t.Fatalf("trial %d saw seed %d, want %d", i, got[i], s)
		}
	}
}

func TestDeriveSeedStableAndDomainSeparated(t *testing.T) {
	if DeriveSeed(1, "a", 0) != DeriveSeed(1, "a", 0) {
		t.Fatal("DeriveSeed must be pure")
	}
	if DeriveSeed(1, "a", 0) == DeriveSeed(1, "b", 0) {
		t.Fatal("domains must separate seed streams")
	}
	if DeriveSeed(1, "a", 0) == DeriveSeed(1, "a", 1) {
		t.Fatal("trials must separate seed streams")
	}
	// The derivation must stay plain FNV-1a over "domain/trial" — eval's
	// historical per-device streams (and thus every published table) ride
	// on it.
	if got, want := DeriveSeed(0, "x", 3), int64(0); got == want {
		t.Logf("seed collision with 0 is fine, just unlikely: %d", got)
	}
}

func TestSearchFindsLowestMatch(t *testing.T) {
	// Matches at 100, 3000, 9000: every worker count must report 100.
	pred := func(i int) bool { return i == 100 || i == 3000 || i == 9000 }
	for _, w := range []int{1, 2, 4, 8} {
		for _, bs := range []int{1, 7, 64, 500} {
			found, evaluated := Search(context.Background(), 10000, Config{Workers: w, BlockSize: bs}, pred)
			if found != 100 {
				t.Fatalf("workers=%d bs=%d: found %d, want 100", w, bs, found)
			}
			if evaluated < 1 {
				t.Fatalf("workers=%d bs=%d: evaluated=%d", w, bs, evaluated)
			}
		}
	}
}

func TestSearchNoMatch(t *testing.T) {
	for _, w := range []int{1, 4} {
		found, evaluated := Search(context.Background(), 5000, Config{Workers: w}, func(int) bool { return false })
		if found != -1 {
			t.Fatalf("workers=%d: found %d, want -1", w, found)
		}
		if evaluated != 5000 {
			t.Fatalf("workers=%d: evaluated %d, want 5000 (exhaustive)", w, evaluated)
		}
	}
}

func TestSearchSerialCountsLikeALoop(t *testing.T) {
	found, evaluated := Search(context.Background(), 10000, Config{Workers: 1}, func(i int) bool { return i == 8730 })
	if found != 8730 || evaluated != 8731 {
		t.Fatalf("found=%d evaluated=%d, want 8730/8731", found, evaluated)
	}
}

func TestSearchEarlyCancelSkipsWork(t *testing.T) {
	// With the match in the first block, a parallel search must not come
	// anywhere near exhausting a huge space.
	var evals atomic.Int64
	found, _ := Search(context.Background(), 1<<20, Config{Workers: 4, BlockSize: 64}, func(i int) bool {
		evals.Add(1)
		return i == 10
	})
	if found != 10 {
		t.Fatalf("found %d", found)
	}
	if got := evals.Load(); got > 1<<16 {
		t.Fatalf("early cancel failed: %d predicate calls for a match at index 10", got)
	}
}

func TestSearchMatchInLastBlock(t *testing.T) {
	n := 1000
	for _, w := range []int{1, 3, 8} {
		found, _ := Search(context.Background(), n, Config{Workers: w, BlockSize: 64}, func(i int) bool { return i == n-1 })
		if found != n-1 {
			t.Fatalf("workers=%d: found %d, want %d", w, found, n-1)
		}
	}
}

func TestSearchEmptySpace(t *testing.T) {
	if found, evaluated := Search(context.Background(), 0, Config{}, func(int) bool { return true }); found != -1 || evaluated != 0 {
		t.Fatalf("empty space: found=%d evaluated=%d", found, evaluated)
	}
}

func TestConfigDefaults(t *testing.T) {
	if (Config{}).workers() < 1 {
		t.Fatal("default workers must be at least 1")
	}
	if (Config{}).blockSize() != 64 {
		t.Fatal("default block size must be 64")
	}
	if (Config{Workers: 3, BlockSize: 10}).workers() != 3 {
		t.Fatal("explicit workers ignored")
	}
}

func ExampleRun() {
	// Ten trials, each a pure function of its derived seed; any worker
	// count yields the same ordered results.
	seeds := Seeds(1, "example", 10)
	rows, err := RunSeeds(context.Background(), seeds, Config{Workers: 4}, func(_ context.Context, i int, seed int64) (string, error) {
		return fmt.Sprintf("trial %d ok", i), nil
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(rows[0], "/", rows[9])
	// Output: trial 0 ok / trial 9 ok
}
