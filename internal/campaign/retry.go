package campaign

import (
	"context"
	"fmt"
)

// RetryPolicy tells RunRetry which per-trial failures are worth another
// attempt. Degraded-channel sweeps use it to separate channel faults
// (the medium ate the page train — retry on a fresh derived seed) from
// terminal outcomes (an authentication result, however unwelcome, is
// the measurement).
type RetryPolicy struct {
	// MaxAttempts bounds total attempts per trial, first try included.
	// Values <= 1 mean no retries.
	MaxAttempts int
	// Retryable classifies a trial error; nil means nothing is
	// retryable.
	Retryable func(error) bool
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts <= 1 {
		return 1
	}
	return p.MaxAttempts
}

// Attempt identifies one execution of one trial: the attempt ordinal
// (0-based) is folded into the seed domain, so every attempt runs a
// distinct-but-deterministic world and a retried trial produces the
// same bytes at any worker count.
type Attempt struct {
	Trial   int
	Attempt int
}

// RetryResult wraps a trial's final outcome with how it was reached.
type RetryResult[T any] struct {
	Value T
	// Attempts is how many executions the trial took (1 = clean first
	// try).
	Attempts int
	// Err is the final error when even the last attempt failed (either
	// a terminal error, or a retryable one with the budget exhausted).
	Err error
}

// RunRetry executes trial for every index in [0, n) on a worker pool
// like Run, but re-invokes a failed trial — entirely within the worker
// that owns it, preserving worker-count invariance — while pol.Retryable
// approves the error and attempts remain. The trial receives the
// Attempt identity and must derive all randomness from it (e.g. via
// DeriveSeed(base, fmt.Sprintf("%s/attempt%d", domain, a.Attempt),
// a.Trial)). Results arrive in trial order; like Run, the error of the
// lowest ultimately-failing trial is returned alongside the full result
// set, wrapped with its trial index.
func RunRetry[T any](ctx context.Context, n int, cfg Config, pol RetryPolicy, trial func(ctx context.Context, a Attempt) (T, error)) ([]RetryResult[T], error) {
	max := pol.attempts()
	results, err := Run(ctx, n, cfg, func(ctx context.Context, i int) (RetryResult[T], error) {
		var r RetryResult[T]
		for attempt := 0; ; attempt++ {
			r.Attempts = attempt + 1
			r.Value, r.Err = trial(ctx, Attempt{Trial: i, Attempt: attempt})
			if r.Err == nil {
				return r, nil
			}
			if attempt+1 >= max || pol.Retryable == nil || !pol.Retryable(r.Err) {
				return r, r.Err
			}
			if err := ctx.Err(); err != nil {
				r.Err = err
				return r, err
			}
			cfg.Progress.retried()
		}
	})
	return results, err
}

// AttemptDomain is the canonical seed-domain string for an attempt:
// attempt 0 is the bare domain (so retry-free sweeps reproduce historic
// seeds exactly), later attempts get a distinct stream.
func AttemptDomain(domain string, attempt int) string {
	if attempt == 0 {
		return domain
	}
	return fmt.Sprintf("%s#retry%d", domain, attempt)
}
