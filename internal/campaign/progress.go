package campaign

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Progress is the campaign engine's live telemetry sink: Run, RunSeeds,
// and RunRetry bump it as trials complete, so an operator watching a
// multi-million-trial sweep sees throughput, retry pressure, and an ETA
// instead of a silent prompt. One Progress can span several campaigns
// (a sweep like the degraded-channel matrix runs many back to back);
// totals accumulate and the rate covers the whole span.
//
// Everything is lock-free counters plus one latency histogram
// (internal/obs), updated after a trial's result is already written to
// its slot — observation never feeds back into trial scheduling or
// seeding, so instrumented rows are bit-identical to bare ones at any
// worker count. A nil *Progress is a no-op: the engine pays nothing,
// not even clock reads, when nobody is watching.
type Progress struct {
	startNS atomic.Int64 // wall nanos of the first Begin; 0 = not started
	total   atomic.Int64
	done    atomic.Int64
	failed  atomic.Int64
	retries atomic.Int64
	latency obs.Histogram // wall time per trial execution (attempts included)
}

// Begin registers n more planned trials. The engine calls it at the top
// of every Run; callers composing their own loops may call it directly.
// No-op on a nil receiver.
func (p *Progress) Begin(n int) {
	if p == nil {
		return
	}
	p.startNS.CompareAndSwap(0, time.Now().UnixNano())
	p.total.Add(int64(n))
}

// trialDone records one finished trial (all retries spent) and its wall
// time. No-op on a nil receiver.
func (p *Progress) trialDone(err error, d time.Duration) {
	if p == nil {
		return
	}
	p.done.Add(1)
	if err != nil {
		p.failed.Add(1)
	}
	p.latency.Observe(d)
}

// retried records one retry (an extra attempt beyond a trial's first).
// No-op on a nil receiver.
func (p *Progress) retried() {
	if p == nil {
		return
	}
	p.retries.Add(1)
}

// ProgressSnapshot is a point-in-time view of a Progress.
type ProgressSnapshot struct {
	// Total is the planned trial count registered so far; Done how many
	// finished (Failed of those with a final error). Retries counts
	// extra attempts RunRetry spent beyond first tries.
	Total, Done, Failed, Retries int64
	// Elapsed is wall time since the first Begin.
	Elapsed time.Duration
	// TrialsPerSec is the completion rate over Elapsed.
	TrialsPerSec float64
	// ETA estimates time to finish the currently registered Total at the
	// observed rate; zero until a rate exists or when nothing remains.
	// Sweeps that register campaigns incrementally will see it grow as
	// later campaigns Begin.
	ETA time.Duration
	// Latency summarizes per-trial wall time (retries included).
	Latency obs.Snapshot
}

// Snapshot assembles the current counters. Safe concurrently with the
// engine; a nil receiver returns the zero snapshot.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	s := ProgressSnapshot{
		Total:   p.total.Load(),
		Done:    p.done.Load(),
		Failed:  p.failed.Load(),
		Retries: p.retries.Load(),
		Latency: p.latency.Snapshot(),
	}
	if start := p.startNS.Load(); start != 0 {
		s.Elapsed = time.Duration(time.Now().UnixNano() - start)
	}
	if s.Elapsed > 0 && s.Done > 0 {
		s.TrialsPerSec = float64(s.Done) / s.Elapsed.Seconds()
		if rem := s.Total - s.Done; rem > 0 {
			s.ETA = time.Duration(float64(rem) / s.TrialsPerSec * float64(time.Second))
		}
	}
	return s
}

// String renders the snapshot as the one-line status the reporters
// print.
func (s ProgressSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trials %d/%d", s.Done, s.Total)
	if s.TrialsPerSec > 0 {
		fmt.Fprintf(&b, " · %.1f/s", s.TrialsPerSec)
	}
	if s.Retries > 0 {
		fmt.Fprintf(&b, " · %d retries", s.Retries)
	}
	if s.Failed > 0 {
		fmt.Fprintf(&b, " · %d failed", s.Failed)
	}
	if s.Latency.Count > 0 {
		fmt.Fprintf(&b, " · trial p50 %s", time.Duration(s.Latency.P50US*1e3).Round(time.Microsecond))
	}
	if s.ETA > 0 {
		fmt.Fprintf(&b, " · ETA %s", s.ETA.Round(time.Second))
	}
	return b.String()
}

// Report starts a goroutine that rewrites a one-line status to w (\r,
// terminal style) every interval until the returned stop function is
// called; stop prints the final state on its own line. Values <= 0
// select one second. The reporter only reads counters, so it can watch
// a sweep without perturbing it.
func (p *Progress) Report(w io.Writer, interval time.Duration) (stop func()) {
	if p == nil || w == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = time.Second
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fmt.Fprintf(w, "\rcampaign: %s ", p.Snapshot())
			case <-quit:
				return
			}
		}
	}()
	var once atomic.Bool
	return func() {
		if !once.CompareAndSwap(false, true) {
			return
		}
		close(quit)
		<-done
		fmt.Fprintf(w, "\rcampaign: %s\n", p.Snapshot())
	}
}
