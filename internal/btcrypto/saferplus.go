// Package btcrypto implements the cryptographic functions of the Bluetooth
// BR/EDR security architecture used by the BLAP simulator: the SAFER+
// based legacy functions E1 (LMP authentication), E21/E22 (legacy key
// generation) and E3 (encryption key generation), and the Secure Simple
// Pairing functions f1, f2, f3 and g (HMAC-SHA-256 based) together with a
// P-256 ECDH wrapper.
//
// The SAFER+ implementation follows the construction in the Bluetooth Core
// specification (Vol 2 Part H): the exponentiation/logarithm nonlinear
// layer over 45^x mod 257, the byte-rotating key schedule with bias words,
// eight rounds of mixed XOR/ADD key injection, and the linear layer built
// from 2-PHT levels interleaved with the "Armenian shuffle" permutation.
package btcrypto

// expTab[x] = (45^x mod 257) mod 256 and logTab is its inverse
// (logTab[expTab[x]] = x). They implement the SAFER+ nonlinear layer.
var expTab, logTab [256]byte

func init() {
	v := 1
	for x := 0; x < 256; x++ {
		expTab[x] = byte(v % 256) // 256 ≡ 0 (mod 256); 45^128 mod 257 = 256
		v = (v * 45) % 257
	}
	for x := 0; x < 256; x++ {
		logTab[expTab[x]] = byte(x)
	}
}

// armenianShuffle is the SAFER+ byte permutation applied between 2-PHT
// levels of the linear layer; out[i] = in[armenianShuffle[i]].
var armenianShuffle = [16]int{8, 11, 12, 15, 2, 1, 6, 5, 10, 9, 14, 13, 0, 7, 4, 3}

// pht applies the 2-point pseudo-Hadamard transform to the eight byte
// pairs of the block: (a, b) -> (2a+b, a+b) mod 256.
func pht(b *[16]byte) {
	for i := 0; i < 16; i += 2 {
		a, c := b[i], b[i+1]
		b[i] = 2*a + c
		b[i+1] = a + c
	}
}

func shuffle(b *[16]byte) {
	var out [16]byte
	for i, j := range armenianShuffle {
		out[i] = b[j]
	}
	*b = out
}

// linearLayer applies the SAFER+ 16x16 linear transform M: four 2-PHT
// levels with the Armenian shuffle between them.
func linearLayer(b *[16]byte) {
	pht(b)
	shuffle(b)
	pht(b)
	shuffle(b)
	pht(b)
	shuffle(b)
	pht(b)
}

// roundKeys holds the 17 SAFER+ subkeys for a 128-bit key.
type roundKeys [17][16]byte

// expandKey computes the SAFER+ key schedule. A 17-byte register is
// initialised with the key and a parity byte; each subsequent subkey
// rotates every register byte left by three bits, selects sixteen bytes
// cyclically, and adds a bias word derived from the double exponentiation
// of the subkey/byte position.
func expandKey(key [16]byte) roundKeys {
	var ks roundKeys
	var reg [17]byte
	copy(reg[:16], key[:])
	var parity byte
	for _, b := range key {
		parity ^= b
	}
	reg[16] = parity

	ks[0] = key
	for p := 2; p <= 17; p++ {
		for i := range reg {
			reg[i] = reg[i]<<3 | reg[i]>>5
		}
		for i := 0; i < 16; i++ {
			bias := expTab[expTab[(17*p+i+1)%256]]
			ks[p-1][i] = reg[(p-1+i)%17] + bias
		}
	}
	return ks
}

// keyMixA applies the odd-subkey injection: XOR at positions 0,3,4,7,8,
// 11,12,15 and addition mod 256 elsewhere.
func keyMixA(b *[16]byte, k *[16]byte) {
	for i := 0; i < 16; i++ {
		switch i & 3 {
		case 0, 3:
			b[i] ^= k[i]
		default:
			b[i] += k[i]
		}
	}
}

// keyMixB applies the even-subkey injection: addition mod 256 at positions
// 0,3,4,7,8,11,12,15 and XOR elsewhere.
func keyMixB(b *[16]byte, k *[16]byte) {
	for i := 0; i < 16; i++ {
		switch i & 3 {
		case 0, 3:
			b[i] += k[i]
		default:
			b[i] ^= k[i]
		}
	}
}

// nonlinear applies the e/l substitution: exponentiation at XOR positions,
// logarithm at ADD positions.
func nonlinear(b *[16]byte) {
	for i := 0; i < 16; i++ {
		switch i & 3 {
		case 0, 3:
			b[i] = expTab[b[i]]
		default:
			b[i] = logTab[b[i]]
		}
	}
}

// ar runs the SAFER+ encryption function Ar on one block. When prime is
// true it computes the modified Ar' used by E1/E3/E21/E22, in which the
// round-1 input is injected again at the input of round 3 (XOR at the
// XOR positions, ADD at the ADD positions).
func ar(ks *roundKeys, in [16]byte, prime bool) [16]byte {
	b := in
	round1 := in
	for r := 1; r <= 8; r++ {
		if prime && r == 3 {
			keyMixA(&b, &round1)
		}
		keyMixA(&b, &ks[2*r-2])
		nonlinear(&b)
		keyMixB(&b, &ks[2*r-1])
		linearLayer(&b)
	}
	keyMixA(&b, &ks[16])
	return b
}

// Ar computes the SAFER+ encryption of a 16-byte block under a 16-byte key.
func Ar(key, block [16]byte) [16]byte {
	ks := expandKey(key)
	return ar(&ks, block, false)
}

// ArPrime computes the modified SAFER+ function Ar' (round-1 input
// re-injected before round 3), which is not invertible and is used as the
// one-way stage of E1, E21, E22 and E3.
func ArPrime(key, block [16]byte) [16]byte {
	ks := expandKey(key)
	return ar(&ks, block, true)
}

// --- inverse cipher ---

// invShuffle undoes the Armenian shuffle.
func invShuffle(b *[16]byte) {
	var out [16]byte
	for i, j := range armenianShuffle {
		out[j] = b[i]
	}
	*b = out
}

// invPHT undoes the 2-PHT: given (x, y) = (2a+b, a+b), a = x-y, b = 2y-x.
func invPHT(b *[16]byte) {
	for i := 0; i < 16; i += 2 {
		x, y := b[i], b[i+1]
		b[i] = x - y
		b[i+1] = 2*y - x
	}
}

// invLinearLayer inverts linearLayer.
func invLinearLayer(b *[16]byte) {
	invPHT(b)
	invShuffle(b)
	invPHT(b)
	invShuffle(b)
	invPHT(b)
	invShuffle(b)
	invPHT(b)
}

// invKeyMixA undoes keyMixA (XOR positions XOR again; ADD positions
// subtract).
func invKeyMixA(b *[16]byte, k *[16]byte) {
	for i := 0; i < 16; i++ {
		switch i & 3 {
		case 0, 3:
			b[i] ^= k[i]
		default:
			b[i] -= k[i]
		}
	}
}

// invKeyMixB undoes keyMixB.
func invKeyMixB(b *[16]byte, k *[16]byte) {
	for i := 0; i < 16; i++ {
		switch i & 3 {
		case 0, 3:
			b[i] -= k[i]
		default:
			b[i] ^= k[i]
		}
	}
}

// invNonlinear undoes the e/l substitution.
func invNonlinear(b *[16]byte) {
	for i := 0; i < 16; i++ {
		switch i & 3 {
		case 0, 3:
			b[i] = logTab[b[i]]
		default:
			b[i] = expTab[b[i]]
		}
	}
}

// ArDecrypt inverts Ar under the same key: ArDecrypt(key, Ar(key, x)) == x.
// (Ar' has no inverse — the round-3 re-injection makes it one-way.)
func ArDecrypt(key, block [16]byte) [16]byte {
	ks := expandKey(key)
	b := block
	invKeyMixA(&b, &ks[16])
	for r := 8; r >= 1; r-- {
		invLinearLayer(&b)
		invKeyMixB(&b, &ks[2*r-1])
		invNonlinear(&b)
		invKeyMixA(&b, &ks[2*r-2])
	}
	return b
}
