// Package btcrypto implements the cryptographic functions of the Bluetooth
// BR/EDR security architecture used by the BLAP simulator: the SAFER+
// based legacy functions E1 (LMP authentication), E21/E22 (legacy key
// generation) and E3 (encryption key generation), and the Secure Simple
// Pairing functions f1, f2, f3 and g (HMAC-SHA-256 based) together with a
// P-256 ECDH wrapper.
//
// The SAFER+ implementation follows the construction in the Bluetooth Core
// specification (Vol 2 Part H): the exponentiation/logarithm nonlinear
// layer over 45^x mod 257, the byte-rotating key schedule with bias words,
// eight rounds of mixed XOR/ADD key injection, and the linear layer built
// from 2-PHT levels interleaved with the "Armenian shuffle" permutation.
//
// The SAFER+ primitives are on the hot path of the offline attacks (PIN
// cracking runs five key schedules per candidate, KNOB brute-force one E0
// derivation per candidate), so the round functions are fully unrolled
// and allocation-free, the key-schedule bias words are precomputed at
// init, and SAFERPlus offers a reusable cipher context that expands the
// key schedule once for any number of Ar/Ar' invocations under the same
// key.
package btcrypto

// expTab[x] = (45^x mod 257) mod 256 and logTab is its inverse
// (logTab[expTab[x]] = x). They implement the SAFER+ nonlinear layer.
var expTab, logTab [256]byte

// biasTab[p-2][i] holds the key-schedule bias word for subkey p (2..17)
// at byte i: expTab[expTab[(17p+i+1) mod 256]]. The biases are key
// independent, so computing them once at init removes 512 table walks
// and 256 modular reductions from every key schedule expansion.
var biasTab [16][16]byte

func init() {
	v := 1
	for x := 0; x < 256; x++ {
		expTab[x] = byte(v % 256) // 256 ≡ 0 (mod 256); 45^128 mod 257 = 256
		v = (v * 45) % 257
	}
	for x := 0; x < 256; x++ {
		logTab[expTab[x]] = byte(x)
	}
	for p := 2; p <= 17; p++ {
		for i := 0; i < 16; i++ {
			biasTab[p-2][i] = expTab[expTab[(17*p+i+1)%256]]
		}
	}
}

// armenianShuffle is the SAFER+ byte permutation applied between 2-PHT
// levels of the linear layer; out[i] = in[armenianShuffle[i]]. The
// unrolled shuffle below is generated from this table; the table itself
// is retained as the specification-facing definition (and for tests).
var armenianShuffle = [16]int{8, 11, 12, 15, 2, 1, 6, 5, 10, 9, 14, 13, 0, 7, 4, 3}

// pht applies the 2-point pseudo-Hadamard transform to the eight byte
// pairs of the block: (a, b) -> (2a+b, a+b) mod 256.
func pht(b *[16]byte) {
	b[0], b[1] = 2*b[0]+b[1], b[0]+b[1]
	b[2], b[3] = 2*b[2]+b[3], b[2]+b[3]
	b[4], b[5] = 2*b[4]+b[5], b[4]+b[5]
	b[6], b[7] = 2*b[6]+b[7], b[6]+b[7]
	b[8], b[9] = 2*b[8]+b[9], b[8]+b[9]
	b[10], b[11] = 2*b[10]+b[11], b[10]+b[11]
	b[12], b[13] = 2*b[12]+b[13], b[12]+b[13]
	b[14], b[15] = 2*b[14]+b[15], b[14]+b[15]
}

// shuffle applies the Armenian shuffle in place without a temporary
// array: out[i] = in[armenianShuffle[i]]. Indices 6 and 9 are fixed
// points of the permutation and stay untouched.
func shuffle(b *[16]byte) {
	b[0], b[1], b[2], b[3],
		b[4], b[5], b[7],
		b[8], b[10], b[11],
		b[12], b[13], b[14], b[15] =
		b[8], b[11], b[12], b[15],
		b[2], b[1], b[5],
		b[10], b[14], b[13],
		b[0], b[7], b[4], b[3]
}

// linearLayer applies the SAFER+ 16x16 linear transform M: four 2-PHT
// levels with the Armenian shuffle between them.
func linearLayer(b *[16]byte) {
	pht(b)
	shuffle(b)
	pht(b)
	shuffle(b)
	pht(b)
	shuffle(b)
	pht(b)
}

// roundKeys holds the 17 SAFER+ subkeys for a 128-bit key.
type roundKeys [17][16]byte

// expandKey computes the SAFER+ key schedule. A 17-byte register is
// initialised with the key and a parity byte; each subsequent subkey
// rotates every register byte left by three bits, selects sixteen bytes
// cyclically, and adds the precomputed bias word of the subkey/byte
// position.
func expandKey(key [16]byte) roundKeys {
	var ks roundKeys
	var reg [17]byte
	copy(reg[:16], key[:])
	var parity byte
	for _, b := range key {
		parity ^= b
	}
	reg[16] = parity

	ks[0] = key
	for p := 2; p <= 17; p++ {
		for i := range reg {
			reg[i] = reg[i]<<3 | reg[i]>>5
		}
		bias := &biasTab[p-2]
		sub := &ks[p-1]
		for i := 0; i < 16; i++ {
			j := p - 1 + i
			if j >= 17 {
				j -= 17
			}
			sub[i] = reg[j] + bias[i]
		}
	}
	return ks
}

// keyMixA applies the odd-subkey injection: XOR at positions 0,3,4,7,8,
// 11,12,15 and addition mod 256 elsewhere.
func keyMixA(b *[16]byte, k *[16]byte) {
	b[0] ^= k[0]
	b[1] += k[1]
	b[2] += k[2]
	b[3] ^= k[3]
	b[4] ^= k[4]
	b[5] += k[5]
	b[6] += k[6]
	b[7] ^= k[7]
	b[8] ^= k[8]
	b[9] += k[9]
	b[10] += k[10]
	b[11] ^= k[11]
	b[12] ^= k[12]
	b[13] += k[13]
	b[14] += k[14]
	b[15] ^= k[15]
}

// keyMixB applies the even-subkey injection: addition mod 256 at positions
// 0,3,4,7,8,11,12,15 and XOR elsewhere.
func keyMixB(b *[16]byte, k *[16]byte) {
	b[0] += k[0]
	b[1] ^= k[1]
	b[2] ^= k[2]
	b[3] += k[3]
	b[4] += k[4]
	b[5] ^= k[5]
	b[6] ^= k[6]
	b[7] += k[7]
	b[8] += k[8]
	b[9] ^= k[9]
	b[10] ^= k[10]
	b[11] += k[11]
	b[12] += k[12]
	b[13] ^= k[13]
	b[14] ^= k[14]
	b[15] += k[15]
}

// nonlinear applies the e/l substitution: exponentiation at XOR positions,
// logarithm at ADD positions.
func nonlinear(b *[16]byte) {
	b[0] = expTab[b[0]]
	b[1] = logTab[b[1]]
	b[2] = logTab[b[2]]
	b[3] = expTab[b[3]]
	b[4] = expTab[b[4]]
	b[5] = logTab[b[5]]
	b[6] = logTab[b[6]]
	b[7] = expTab[b[7]]
	b[8] = expTab[b[8]]
	b[9] = logTab[b[9]]
	b[10] = logTab[b[10]]
	b[11] = expTab[b[11]]
	b[12] = expTab[b[12]]
	b[13] = logTab[b[13]]
	b[14] = logTab[b[14]]
	b[15] = expTab[b[15]]
}

// ar runs the SAFER+ encryption function Ar on one block. When prime is
// true it computes the modified Ar' used by E1/E3/E21/E22, in which the
// round-1 input is injected again at the input of round 3 (XOR at the
// XOR positions, ADD at the ADD positions).
func ar(ks *roundKeys, in [16]byte, prime bool) [16]byte {
	b := in
	round1 := in
	for r := 1; r <= 8; r++ {
		if prime && r == 3 {
			keyMixA(&b, &round1)
		}
		keyMixA(&b, &ks[2*r-2])
		nonlinear(&b)
		keyMixB(&b, &ks[2*r-1])
		linearLayer(&b)
	}
	keyMixA(&b, &ks[16])
	return b
}

// SAFERPlus is a precomputed SAFER+ cipher context: the key schedule is
// expanded once at construction and reused across any number of Ar, Ar'
// and decrypt invocations under the same key. The offline attacks and
// the per-link authentication cache are the intended users — anywhere the
// same 128-bit key feeds repeated E1/E21/E22/E3 evaluations.
//
// The zero value is the context of the all-zero key's *unexpanded*
// schedule and must not be used; always construct via NewSAFERPlus.
// A SAFERPlus is immutable after construction and safe for concurrent
// use.
type SAFERPlus struct {
	ks roundKeys
}

// NewSAFERPlus expands the SAFER+ key schedule for key once.
func NewSAFERPlus(key [16]byte) *SAFERPlus {
	return &SAFERPlus{ks: expandKey(key)}
}

// Ar computes the SAFER+ encryption of one block under the cached key.
func (c *SAFERPlus) Ar(block [16]byte) [16]byte {
	return ar(&c.ks, block, false)
}

// ArPrime computes the modified one-way function Ar' (round-1 input
// re-injected before round 3) under the cached key.
func (c *SAFERPlus) ArPrime(block [16]byte) [16]byte {
	return ar(&c.ks, block, true)
}

// Decrypt inverts Ar under the cached key.
func (c *SAFERPlus) Decrypt(block [16]byte) [16]byte {
	return arDecrypt(&c.ks, block)
}

// Ar computes the SAFER+ encryption of a 16-byte block under a 16-byte key.
func Ar(key, block [16]byte) [16]byte {
	ks := expandKey(key)
	return ar(&ks, block, false)
}

// ArPrime computes the modified SAFER+ function Ar' (round-1 input
// re-injected before round 3), which is not invertible and is used as the
// one-way stage of E1, E21, E22 and E3.
func ArPrime(key, block [16]byte) [16]byte {
	ks := expandKey(key)
	return ar(&ks, block, true)
}

// --- inverse cipher ---

// invShuffle undoes the Armenian shuffle (same fixed points at 6 and 9).
func invShuffle(b *[16]byte) {
	b[8], b[11], b[12], b[15],
		b[2], b[1], b[5],
		b[10], b[14], b[13],
		b[0], b[7], b[4], b[3] =
		b[0], b[1], b[2], b[3],
		b[4], b[5], b[7],
		b[8], b[10], b[11],
		b[12], b[13], b[14], b[15]
}

// invPHT undoes the 2-PHT: given (x, y) = (2a+b, a+b), a = x-y, b = 2y-x.
func invPHT(b *[16]byte) {
	b[0], b[1] = b[0]-b[1], 2*b[1]-b[0]
	b[2], b[3] = b[2]-b[3], 2*b[3]-b[2]
	b[4], b[5] = b[4]-b[5], 2*b[5]-b[4]
	b[6], b[7] = b[6]-b[7], 2*b[7]-b[6]
	b[8], b[9] = b[8]-b[9], 2*b[9]-b[8]
	b[10], b[11] = b[10]-b[11], 2*b[11]-b[10]
	b[12], b[13] = b[12]-b[13], 2*b[13]-b[12]
	b[14], b[15] = b[14]-b[15], 2*b[15]-b[14]
}

// invLinearLayer inverts linearLayer.
func invLinearLayer(b *[16]byte) {
	invPHT(b)
	invShuffle(b)
	invPHT(b)
	invShuffle(b)
	invPHT(b)
	invShuffle(b)
	invPHT(b)
}

// invKeyMixA undoes keyMixA (XOR positions XOR again; ADD positions
// subtract).
func invKeyMixA(b *[16]byte, k *[16]byte) {
	b[0] ^= k[0]
	b[1] -= k[1]
	b[2] -= k[2]
	b[3] ^= k[3]
	b[4] ^= k[4]
	b[5] -= k[5]
	b[6] -= k[6]
	b[7] ^= k[7]
	b[8] ^= k[8]
	b[9] -= k[9]
	b[10] -= k[10]
	b[11] ^= k[11]
	b[12] ^= k[12]
	b[13] -= k[13]
	b[14] -= k[14]
	b[15] ^= k[15]
}

// invKeyMixB undoes keyMixB.
func invKeyMixB(b *[16]byte, k *[16]byte) {
	b[0] -= k[0]
	b[1] ^= k[1]
	b[2] ^= k[2]
	b[3] -= k[3]
	b[4] -= k[4]
	b[5] ^= k[5]
	b[6] ^= k[6]
	b[7] -= k[7]
	b[8] -= k[8]
	b[9] ^= k[9]
	b[10] ^= k[10]
	b[11] -= k[11]
	b[12] -= k[12]
	b[13] ^= k[13]
	b[14] ^= k[14]
	b[15] -= k[15]
}

// invNonlinear undoes the e/l substitution.
func invNonlinear(b *[16]byte) {
	b[0] = logTab[b[0]]
	b[1] = expTab[b[1]]
	b[2] = expTab[b[2]]
	b[3] = logTab[b[3]]
	b[4] = logTab[b[4]]
	b[5] = expTab[b[5]]
	b[6] = expTab[b[6]]
	b[7] = logTab[b[7]]
	b[8] = logTab[b[8]]
	b[9] = expTab[b[9]]
	b[10] = expTab[b[10]]
	b[11] = logTab[b[11]]
	b[12] = logTab[b[12]]
	b[13] = expTab[b[13]]
	b[14] = expTab[b[14]]
	b[15] = logTab[b[15]]
}

// arDecrypt inverts ar (non-prime) under an expanded schedule.
func arDecrypt(ks *roundKeys, block [16]byte) [16]byte {
	b := block
	invKeyMixA(&b, &ks[16])
	for r := 8; r >= 1; r-- {
		invLinearLayer(&b)
		invKeyMixB(&b, &ks[2*r-1])
		invNonlinear(&b)
		invKeyMixA(&b, &ks[2*r-2])
	}
	return b
}

// ArDecrypt inverts Ar under the same key: ArDecrypt(key, Ar(key, x)) == x.
// (Ar' has no inverse — the round-3 re-injection makes it one-way.)
func ArDecrypt(key, block [16]byte) [16]byte {
	ks := expandKey(key)
	return arDecrypt(&ks, block)
}
