package btcrypto

import (
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
)

// This file implements the Secure Simple Pairing cryptographic functions
// (Core spec Vol 2 Part H §7): the commitment function f1, the numeric
// verification function g, the link key derivation function f2 and the
// check function f3, all built on SHA-256 / HMAC-SHA-256, plus a P-256
// ECDH key pair wrapper.

// keyIDbtlk is the f2 key ID, the ASCII string "btlk".
var keyIDbtlk = [4]byte{0x62, 0x74, 0x6c, 0x6b}

func hmac128(key, msg []byte) [16]byte {
	mac := hmac.New(sha256.New, key)
	mac.Write(msg)
	sum := mac.Sum(nil)
	var out [16]byte
	copy(out[:], sum[:16])
	return out
}

// F1 computes the SSP commitment: HMAC-SHA-256 keyed with the nonce X over
// the two ECDH public X-coordinates U and V and the one-byte value Z,
// truncated to 128 bits.
func F1(u, v [32]byte, x [16]byte, z byte) [16]byte {
	msg := make([]byte, 0, 65)
	msg = append(msg, u[:]...)
	msg = append(msg, v[:]...)
	msg = append(msg, z)
	return hmac128(x[:], msg)
}

// G computes the 32-bit numeric verification value from the public key
// X-coordinates and both nonces; the six-digit number shown to users is
// G(...) mod 1e6.
func G(u, v [32]byte, x, y [16]byte) uint32 {
	h := sha256.New()
	h.Write(u[:])
	h.Write(v[:])
	h.Write(x[:])
	h.Write(y[:])
	sum := h.Sum(nil)
	return binary.BigEndian.Uint32(sum[28:32])
}

// SixDigits converts a g output to the displayed confirmation value.
func SixDigits(g uint32) uint32 { return g % 1_000_000 }

// F2 derives the link key from the DHKey W, both nonces, the fixed key ID
// "btlk" and both device addresses (claimant first, per spec order: A1 is
// the master/initiating device address).
func F2(w []byte, n1, n2 [16]byte, a1, a2 [6]byte) [16]byte {
	msg := make([]byte, 0, 48)
	msg = append(msg, n1[:]...)
	msg = append(msg, n2[:]...)
	msg = append(msg, keyIDbtlk[:]...)
	msg = append(msg, a1[:]...)
	msg = append(msg, a2[:]...)
	return hmac128(w, msg)
}

// F3 computes the authentication stage 2 check value from the DHKey W,
// both nonces, the random value R, the 3-byte IO capability field and the
// two device addresses.
func F3(w []byte, n1, n2, r [16]byte, ioCap [3]byte, a1, a2 [6]byte) [16]byte {
	msg := make([]byte, 0, 63)
	msg = append(msg, n1[:]...)
	msg = append(msg, n2[:]...)
	msg = append(msg, r[:]...)
	msg = append(msg, ioCap[:]...)
	msg = append(msg, a1[:]...)
	msg = append(msg, a2[:]...)
	return hmac128(w, msg)
}

// KeyPair is a P-256 ECDH key pair used in SSP public key exchange.
type KeyPair struct {
	priv *ecdh.PrivateKey
}

// GenerateKeyPair creates a P-256 key pair from the given entropy source.
// Unlike crypto/ecdh.GenerateKey — which intentionally consumes a
// nondeterministic number of reader bytes — this derivation is a pure
// function of the reader's output (rejection sampling over candidate
// scalars), which the simulator needs for reproducible runs.
func GenerateKeyPair(rand io.Reader) (*KeyPair, error) {
	for attempt := 0; attempt < 64; attempt++ {
		var scalar [32]byte
		if _, err := io.ReadFull(rand, scalar[:]); err != nil {
			return nil, fmt.Errorf("btcrypto: reading key entropy: %w", err)
		}
		priv, err := ecdh.P256().NewPrivateKey(scalar[:])
		if err != nil {
			continue // out of range for the curve order; draw again
		}
		return &KeyPair{priv: priv}, nil
	}
	return nil, fmt.Errorf("btcrypto: no valid P-256 scalar after 64 draws")
}

// PublicX returns the 32-byte X coordinate of the public key, the value
// exchanged (and committed to) during SSP.
func (kp *KeyPair) PublicX() [32]byte {
	// The uncompressed point encoding is 0x04 || X (32) || Y (32).
	raw := kp.priv.PublicKey().Bytes()
	var x [32]byte
	copy(x[:], raw[1:33])
	return x
}

// PublicBytes returns the full uncompressed public key encoding sent in
// the SSP public key exchange.
func (kp *KeyPair) PublicBytes() []byte { return kp.priv.PublicKey().Bytes() }

// DHKey computes the shared secret with a peer's uncompressed public key
// encoding. The returned 32-byte value is the W input of f2/f3.
func (kp *KeyPair) DHKey(peerPublic []byte) ([]byte, error) {
	pub, err := ecdh.P256().NewPublicKey(peerPublic)
	if err != nil {
		return nil, fmt.Errorf("btcrypto: invalid peer public key: %w", err)
	}
	secret, err := kp.priv.ECDH(pub)
	if err != nil {
		return nil, fmt.Errorf("btcrypto: ECDH: %w", err)
	}
	return secret, nil
}
