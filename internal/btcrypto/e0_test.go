package btcrypto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestE0Deterministic(t *testing.T) {
	key := [16]byte{1, 2, 3}
	addr := [6]byte{4, 5, 6}
	a := NewE0(key, addr, 7).Keystream(64)
	b := NewE0(key, addr, 7).Keystream(64)
	if !bytes.Equal(a, b) {
		t.Fatal("same inputs must give the same keystream")
	}
}

func TestE0EncryptDecryptRoundTrip(t *testing.T) {
	f := func(key [16]byte, addr [6]byte, clock uint32, payload []byte) bool {
		ct := EncryptPayload(key, addr, clock, payload)
		pt := EncryptPayload(key, addr, clock, ct)
		return bytes.Equal(pt, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestE0KeySensitivity(t *testing.T) {
	addr := [6]byte{1}
	base := NewE0([16]byte{}, addr, 0).Keystream(32)
	for bit := 0; bit < 128; bit += 17 {
		var key [16]byte
		key[bit/8] = 1 << (bit % 8)
		ks := NewE0(key, addr, 0).Keystream(32)
		if bytes.Equal(ks, base) {
			t.Fatalf("key bit %d does not affect the keystream", bit)
		}
	}
}

func TestE0ClockAndAddressSensitivity(t *testing.T) {
	key := [16]byte{9}
	addr := [6]byte{1, 2, 3, 4, 5, 6}
	a := NewE0(key, addr, 100).Keystream(32)
	b := NewE0(key, addr, 101).Keystream(32)
	if bytes.Equal(a, b) {
		t.Fatal("keystream must change with the clock (per-packet IV)")
	}
	addr[5] ^= 1
	c := NewE0(key, addr, 100).Keystream(32)
	if bytes.Equal(a, c) {
		t.Fatal("keystream must depend on the master address")
	}
}

func TestE0KeystreamIsBalanced(t *testing.T) {
	// A sanity check against degenerate output: roughly half the bits of
	// a long keystream should be set.
	ks := NewE0([16]byte{0xA5}, [6]byte{0x5A}, 42).Keystream(4096)
	ones := 0
	for _, b := range ks {
		for ; b != 0; b &= b - 1 {
			ones++
		}
	}
	total := 4096 * 8
	if ones < total*45/100 || ones > total*55/100 {
		t.Fatalf("keystream bias: %d/%d ones", ones, total)
	}
}

func TestE0NoShortCycle(t *testing.T) {
	// The first keystream block must not repeat within a few KiB (a
	// trivially short cycle would break confidentiality outright).
	ks := NewE0([16]byte{1}, [6]byte{2}, 3).Keystream(8192)
	first := ks[:16]
	for off := 16; off+16 <= len(ks); off += 16 {
		if bytes.Equal(first, ks[off:off+16]) {
			t.Fatalf("keystream repeats at offset %d", off)
		}
	}
}

func TestE0ShrunkKeysDiffer(t *testing.T) {
	// KNOB-style entropy reduction: a 1-byte key space yields only 256
	// distinct keystreams; verify shrinking actually changes the key
	// material derivation.
	full := [16]byte{0xDE, 0xAD, 0xBE, 0xEF, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9}
	shrunk := ShrinkKey(full, 1)
	a := NewE0(full, [6]byte{}, 0).Keystream(16)
	b := NewE0(shrunk, [6]byte{}, 0).Keystream(16)
	if bytes.Equal(a, b) {
		t.Fatal("shrunk key should give a different keystream")
	}
	// And a brute-forcer that guesses the first byte finds it.
	var found bool
	for guess := 0; guess < 256; guess++ {
		cand := [16]byte{byte(guess)}
		if bytes.Equal(NewE0(cand, [6]byte{}, 0).Keystream(16), b) {
			found = byte(guess) == full[0]
			break
		}
	}
	if !found {
		t.Fatal("1-byte key space must be brute-forceable")
	}
}
