package btcrypto

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func testRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestECDHAgreement(t *testing.T) {
	a, err := GenerateKeyPair(testRand(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateKeyPair(testRand(2))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := a.DHKey(b.PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := b.DHKey(a.PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("ECDH shared secrets disagree")
	}
	if len(s1) != 32 {
		t.Fatalf("P-256 shared secret must be 32 bytes, got %d", len(s1))
	}
}

func TestECDHRejectsGarbagePublicKey(t *testing.T) {
	a, _ := GenerateKeyPair(testRand(3))
	if _, err := a.DHKey([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage peer key must be rejected")
	}
	// An all-zero uncompressed point is not on the curve.
	bad := make([]byte, 65)
	bad[0] = 4
	if _, err := a.DHKey(bad); err == nil {
		t.Fatal("off-curve peer key must be rejected")
	}
}

func TestPublicXMatchesEncoding(t *testing.T) {
	kp, _ := GenerateKeyPair(testRand(4))
	raw := kp.PublicBytes()
	if raw[0] != 0x04 || len(raw) != 65 {
		t.Fatalf("unexpected uncompressed encoding: len=%d first=%x", len(raw), raw[0])
	}
	x := kp.PublicX()
	if !bytes.Equal(x[:], raw[1:33]) {
		t.Fatal("PublicX must be the X coordinate of the encoding")
	}
}

func TestF1CommitmentBinding(t *testing.T) {
	// f1 commits to the nonce: the same (U,V) with a different X must
	// give a different commitment, and Z is bound too.
	var u, v [32]byte
	u[0], v[0] = 1, 2
	x1 := [16]byte{3}
	x2 := [16]byte{4}
	if F1(u, v, x1, 0) == F1(u, v, x2, 0) {
		t.Fatal("f1 must bind the nonce")
	}
	if F1(u, v, x1, 0) == F1(u, v, x1, 1) {
		t.Fatal("f1 must bind Z")
	}
	if F1(u, v, x1, 0) == F1(v, u, x1, 0) {
		t.Fatal("f1 must be order-sensitive in U,V")
	}
}

func TestGSymmetryAcrossRoles(t *testing.T) {
	// Both sides compute g with (initiator key, responder key, Na, Nb);
	// the function itself must be deterministic and sensitive to each
	// argument.
	f := func(u, v [32]byte, x, y [16]byte) bool {
		return G(u, v, x, y) == G(u, v, x, y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	var u, v [32]byte
	var x, y [16]byte
	g1 := G(u, v, x, y)
	y[15] ^= 1
	if G(u, v, x, y) == g1 {
		t.Fatal("g must depend on Nb")
	}
}

func TestSixDigits(t *testing.T) {
	cases := []struct {
		in   uint32
		want uint32
	}{
		{0, 0},
		{999_999, 999_999},
		{1_000_000, 0},
		{1_234_567, 234_567},
		{0xFFFFFFFF, 4294967295 % 1_000_000},
	}
	for _, c := range cases {
		if got := SixDigits(c.in); got != c.want {
			t.Errorf("SixDigits(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestF2LinkKeyAgreement(t *testing.T) {
	// Initiator computes f2(W, Na, Nb, A, B); responder computes
	// f2(W, Na, Nb, A, B) with the same argument order — both must agree,
	// and any differing input must change the key.
	w := make([]byte, 32)
	w[0] = 0x42
	na := [16]byte{1}
	nb := [16]byte{2}
	a1 := [6]byte{3}
	a2 := [6]byte{4}
	k1 := F2(w, na, nb, a1, a2)
	k2 := F2(w, na, nb, a1, a2)
	if k1 != k2 {
		t.Fatal("f2 must be deterministic")
	}
	w2 := append([]byte(nil), w...)
	w2[31] ^= 1
	if F2(w2, na, nb, a1, a2) == k1 {
		t.Fatal("f2 must depend on the DHKey")
	}
	if F2(w, nb, na, a1, a2) == k1 {
		t.Fatal("f2 must bind nonce order")
	}
	if F2(w, na, nb, a2, a1) == k1 {
		t.Fatal("f2 must bind address order")
	}
}

func TestF3CheckValueBindsIOCap(t *testing.T) {
	w := make([]byte, 32)
	n1 := [16]byte{1}
	n2 := [16]byte{2}
	r := [16]byte{}
	a1 := [6]byte{3}
	a2 := [6]byte{4}
	io1 := [3]byte{0, 0, 1}
	io2 := [3]byte{0, 0, 3} // NoInputNoOutput
	if F3(w, n1, n2, r, io1, a1, a2) == F3(w, n1, n2, r, io2, a1, a2) {
		t.Fatal("f3 must bind the IO capability — the downgrade-detection hook")
	}
}

func TestDeterministicKeyGeneration(t *testing.T) {
	// The same entropy stream must give the same key pair (the simulator
	// relies on this for reproducibility).
	a1, _ := GenerateKeyPair(testRand(99))
	a2, _ := GenerateKeyPair(testRand(99))
	if !bytes.Equal(a1.PublicBytes(), a2.PublicBytes()) {
		t.Fatal("key generation must be deterministic given the reader")
	}
}
