package btcrypto

// This file implements the legacy (SAFER+ based) Bluetooth security
// functions from Core spec Vol 2 Part H: E1 (LMP authentication), E21
// (combination/unit key generation), E22 (initialization key from PIN)
// and E3 (encryption key generation).

// offsetKey computes the "tilde K" key offset used by the second stage of
// E1 and by E3: alternating mod-256 addition and XOR of a fixed sequence
// of prime constants.
func offsetKey(k [16]byte) [16]byte {
	primes := [8]byte{233, 229, 223, 193, 179, 167, 149, 131}
	var out [16]byte
	for i := 0; i < 8; i++ {
		if i%2 == 0 {
			out[i] = k[i] + primes[i]
		} else {
			out[i] = k[i] ^ primes[i]
		}
	}
	for i := 8; i < 16; i++ {
		if i%2 == 0 {
			out[i] = k[i] ^ primes[i-8]
		} else {
			out[i] = k[i] + primes[i-8]
		}
	}
	return out
}

// expandAddr cyclically extends a 6-byte BD_ADDR to a 16-byte block.
func expandAddr(addr [6]byte) [16]byte {
	var e [16]byte
	for i := range e {
		e[i] = addr[i%6]
	}
	return e
}

// addBlocks returns the bytewise mod-256 sum of two blocks.
func addBlocks(a, b [16]byte) [16]byte {
	var out [16]byte
	for i := range out {
		out[i] = a[i] + b[i]
	}
	return out
}

// xorBlocks returns the bytewise XOR of two blocks.
func xorBlocks(a, b [16]byte) [16]byte {
	var out [16]byte
	for i := range out {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// E1Context caches the two SAFER+ key schedules that E1 and E3 share for
// one link key: the raw key schedule feeding the first Ar stage and the
// offset-key ("tilde K") schedule feeding the one-way Ar' stage. Both
// functions run the same two-stage pipeline, so a controller that
// authenticates and derives encryption keys repeatedly under one bonded
// key — or an attacker replaying many challenges against one candidate
// key — expands the schedules once instead of twice per invocation.
//
// An E1Context is immutable after construction and safe for concurrent
// use.
type E1Context struct {
	stage1 SAFERPlus // Ar under the link key
	stage2 SAFERPlus // Ar' under the offset key
}

// NewE1Context expands the E1/E3 key schedules for linkKey once.
func NewE1Context(linkKey [16]byte) *E1Context {
	var c E1Context
	c.init(linkKey)
	return &c
}

func (c *E1Context) init(linkKey [16]byte) {
	c.stage1.ks = expandKey(linkKey)
	c.stage2.ks = expandKey(offsetKey(linkKey))
}

// Auth runs E1 under the cached link key: the verifier's challenge and
// the claimant's BD_ADDR map to the 32-bit response SRES and the 96-bit
// Authenticated Ciphering Offset.
func (c *E1Context) Auth(rand [16]byte, addr [6]byte) (sres [4]byte, aco [12]byte) {
	stage1 := c.stage1.Ar(rand)
	mixed := addBlocks(xorBlocks(stage1, rand), expandAddr(addr))
	out := c.stage2.ArPrime(mixed)
	copy(sres[:], out[:4])
	copy(aco[:], out[4:])
	return sres, aco
}

// EncryptionKey runs E3 under the cached link key: the public random
// number and the Ciphering Offset map to the session encryption key.
func (c *E1Context) EncryptionKey(rand [16]byte, cof [12]byte) [16]byte {
	var cofBlock [16]byte
	for i := range cofBlock {
		cofBlock[i] = cof[i%12]
	}
	mixed := addBlocks(xorBlocks(c.stage1.Ar(rand), rand), cofBlock)
	return c.stage2.ArPrime(mixed)
}

// E1 is the LMP authentication function. Given the 128-bit link key, the
// verifier's 128-bit challenge RAND and the claimant's BD_ADDR, it returns
// the 32-bit signed response SRES and the 96-bit Authenticated Ciphering
// Offset (ACO) that later feeds encryption key generation.
//
// Structure per the specification: the first stage runs Ar over the
// challenge under the link key; its output is XORed with the challenge and
// the cyclically-expanded address is added bytewise; the second stage runs
// the one-way Ar' under the offset key. Callers holding one key across
// many invocations should build an E1Context instead.
func E1(linkKey [16]byte, rand [16]byte, addr [6]byte) (sres [4]byte, aco [12]byte) {
	var c E1Context
	c.init(linkKey)
	return c.Auth(rand, addr)
}

// E21 generates a unit key or a device's share of a combination key from a
// 128-bit random number and the device's BD_ADDR (legacy pairing).
func E21(rand [16]byte, addr [6]byte) [16]byte {
	x := rand
	x[15] ^= 6
	y := expandAddr(addr)
	return ArPrime(x, y)
}

// E22 generates the legacy initialization key from a PIN, the pairing
// random number and the BD_ADDR of the device that supplied the PIN. The
// PIN (1..16 bytes) is augmented with the address up to 16 bytes, per the
// specification's L' construction.
func E22(rand [16]byte, pin []byte, addr [6]byte) [16]byte {
	if len(pin) == 0 || len(pin) > 16 {
		panic("btcrypto: E22 PIN must be 1..16 bytes")
	}
	aug := make([]byte, 0, 16)
	aug = append(aug, pin...)
	for i := 0; len(aug) < 16 && i < 6; i++ {
		aug = append(aug, addr[i])
	}
	l := len(aug)
	var key [16]byte
	for i := 0; i < 16; i++ {
		key[i] = aug[i%l]
	}
	x := rand
	x[15] ^= byte(l)
	return ArPrime(key, x)
}

// E3 generates the encryption key from the link key, a public random
// number and the Ciphering Offset (COF), which is the ACO from LMP
// authentication for point-to-point links. Callers holding one key across
// many invocations should build an E1Context instead.
func E3(linkKey [16]byte, rand [16]byte, cof [12]byte) [16]byte {
	var c E1Context
	c.init(linkKey)
	return c.EncryptionKey(rand, cof)
}

// ShrinkKey reduces the effective entropy of an encryption key to n bytes
// (1..16) the way LMP encryption key size negotiation does; it models the
// key-size reduction exploited by the KNOB attack and is provided for the
// related-work extension benchmarks.
func ShrinkKey(key [16]byte, n int) [16]byte {
	if n < 1 || n > 16 {
		panic("btcrypto: ShrinkKey size must be 1..16")
	}
	var out [16]byte
	copy(out[:n], key[:n])
	return out
}
