package btcrypto

import (
	"encoding/hex"
	"fmt"
	"testing"
)

// Self-consistency vectors: these values were produced by this
// implementation and pinned. They are NOT official Bluetooth SIG test
// vectors (the implementation follows the specification's construction;
// see DESIGN.md §6) — their job is to freeze the functions so that any
// accidental change to the SAFER+ rounds, key schedule, offsets, HMAC
// orderings or E0 initialization fails loudly instead of silently
// re-deriving different (still mutually-consistent) keys everywhere.

var (
	vecKey  = [16]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f}
	vecRand = [16]byte{0xf0, 0xe1, 0xd2, 0xc3, 0xb4, 0xa5, 0x96, 0x87, 0x78, 0x69, 0x5a, 0x4b, 0x3c, 0x2d, 0x1e, 0x0f}
	vecAddr = [6]byte{0x00, 0x1a, 0x7d, 0xda, 0x71, 0x0a}
)

func hexEq(t *testing.T, name string, got []byte, want string) {
	t.Helper()
	if hex.EncodeToString(got) != want {
		t.Errorf("%s = %x, want %s (implementation drifted)", name, got, want)
	}
}

func TestPinnedVectors(t *testing.T) {
	sres, aco := E1(vecKey, vecRand, vecAddr)
	hexEq(t, "E1.SRES", sres[:], "d9d6431d")
	hexEq(t, "E1.ACO", aco[:], "2d7fad28e9aba78c78658f39")

	ar := Ar(vecKey, vecRand)
	hexEq(t, "Ar", ar[:], "71765f397523506a7b2c5919ab88abe1")
	arp := ArPrime(vecKey, vecRand)
	hexEq(t, "Ar'", arp[:], "3546ebc9c7e917495fb5b1c64b0b80a4")

	e21 := E21(vecRand, vecAddr)
	hexEq(t, "E21", e21[:], "ca89ad3bd1ea30f44f840b088479e611")
	e22 := E22(vecRand, []byte("0000"), vecAddr)
	hexEq(t, "E22", e22[:], "30afa4cbf7795be6bf1af8ca9dead7fc")

	var cof [12]byte
	copy(cof[:], aco[:])
	e3 := E3(vecKey, vecRand, cof)
	hexEq(t, "E3", e3[:], "7f7d4233c4339bfb1a221dc0473896d9")

	w := make([]byte, 32)
	for i := range w {
		w[i] = byte(i)
	}
	var n1, n2 [16]byte
	n1[0], n2[0] = 0xAA, 0xBB
	f2 := F2(w, n1, n2, vecAddr, [6]byte{1, 2, 3, 4, 5, 6})
	hexEq(t, "f2", f2[:], "8d5400045025a45287bd007ca4185d1f")

	var u, v [32]byte
	u[0], v[0] = 1, 2
	f1 := F1(u, v, n1, 0x81)
	hexEq(t, "f1", f1[:], "82663c849fb3882014ed8bf53833c0e6")
	f3 := F3(w, n1, n2, n1, [3]byte{0, 0, 3}, vecAddr, [6]byte{1, 2, 3, 4, 5, 6})
	hexEq(t, "f3", f3[:], "a319c313c8beac18514c7d69868fc634")

	if g := G(u, v, n1, n2); g != 3052535306 {
		t.Errorf("g = %d, want 3052535306", g)
	}

	e0 := NewE0(vecKey, vecAddr, 42).Keystream(16)
	hexEq(t, "E0", e0, "b99655fdc64c37bd615db6fb441a5d19")
}

func TestPinnedVectorsAreDistinct(t *testing.T) {
	// Sanity: the pinned outputs of distinct functions must all differ
	// (catches accidental aliasing between E21/E22/Ar'/E3 code paths).
	outs := map[string][16]byte{
		"Ar":  Ar(vecKey, vecRand),
		"Ar'": ArPrime(vecKey, vecRand),
		"E21": E21(vecRand, vecAddr),
		"E22": E22(vecRand, []byte("0000"), vecAddr),
	}
	seen := map[[16]byte]string{}
	for name, out := range outs {
		if prev, dup := seen[out]; dup {
			t.Errorf("%s and %s collide: %s", name, prev, fmt.Sprintf("%x", out))
		}
		seen[out] = name
	}
}
