package btcrypto

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExpLogTablesAreInverse(t *testing.T) {
	// expTab is a bijection on bytes and logTab its inverse.
	seen := make(map[byte]bool)
	for x := 0; x < 256; x++ {
		v := expTab[x]
		if seen[v] {
			t.Fatalf("expTab not injective at %d (value %d)", x, v)
		}
		seen[v] = true
		if logTab[v] != byte(x) {
			t.Fatalf("logTab[expTab[%d]] = %d", x, logTab[v])
		}
	}
	if expTab[0] != 1 {
		t.Errorf("45^0 mod 257 must be 1, got %d", expTab[0])
	}
	// 45^128 mod 257 = 256, which maps to 0 in the byte table.
	if expTab[128] != 0 {
		t.Errorf("expTab[128] = %d, want 0", expTab[128])
	}
}

func TestArmenianShuffleIsPermutation(t *testing.T) {
	seen := make(map[int]bool)
	for _, v := range armenianShuffle {
		if v < 0 || v > 15 || seen[v] {
			t.Fatalf("armenianShuffle is not a permutation: %v", armenianShuffle)
		}
		seen[v] = true
	}
}

func TestKeyScheduleShape(t *testing.T) {
	ks := expandKey([16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	if len(ks) != 17 {
		t.Fatalf("want 17 subkeys, got %d", len(ks))
	}
	// Subkey 1 is the raw key.
	if ks[0] != [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16} {
		t.Fatalf("K1 must equal the key, got %v", ks[0])
	}
	// Subkeys must differ from each other (biases break symmetry).
	for i := 1; i < 17; i++ {
		if ks[i] == ks[i-1] {
			t.Fatalf("subkeys %d and %d identical", i, i+1)
		}
	}
	// All-zero key still yields non-zero later subkeys.
	zks := expandKey([16]byte{})
	if zks[5] == ([16]byte{}) {
		t.Fatal("zero key should not produce zero subkeys")
	}
}

func TestArIsDeterministicAndKeyed(t *testing.T) {
	key1 := [16]byte{1}
	key2 := [16]byte{2}
	block := [16]byte{0xAA, 0x55}
	a := Ar(key1, block)
	b := Ar(key1, block)
	c := Ar(key2, block)
	if a != b {
		t.Fatal("Ar must be deterministic")
	}
	if a == c {
		t.Fatal("different keys must give different outputs")
	}
}

func TestArIsBijective(t *testing.T) {
	// Every layer of Ar (key mixing, e/l substitution, PHT, shuffle) is
	// invertible, so Ar under a fixed key must be a bijection: no
	// collisions over a large random sample.
	rng := rand.New(rand.NewSource(7))
	key := [16]byte{9, 9, 9}
	seen := make(map[[16]byte][16]byte, 20000)
	for i := 0; i < 20000; i++ {
		var in [16]byte
		rng.Read(in[:])
		out := Ar(key, in)
		if prev, ok := seen[out]; ok && prev != in {
			t.Fatalf("collision: Ar(%x) == Ar(%x)", prev, in)
		}
		seen[out] = in
	}
}

func TestArPrimeDiffersFromAr(t *testing.T) {
	key := [16]byte{3, 1, 4, 1, 5}
	block := [16]byte{2, 7, 1, 8, 2, 8}
	if Ar(key, block) == ArPrime(key, block) {
		t.Fatal("Ar' must differ from Ar (round-3 re-injection)")
	}
}

func TestArAvalanche(t *testing.T) {
	// Flipping one input bit should change roughly half the output bits.
	key := [16]byte{0xC0, 0xFF, 0xEE}
	in := [16]byte{0x01}
	out1 := Ar(key, in)
	in[0] ^= 0x80
	out2 := Ar(key, in)
	diff := 0
	for i := range out1 {
		diff += popcount(out1[i] ^ out2[i])
	}
	if diff < 30 || diff > 98 {
		t.Fatalf("poor avalanche: %d/128 bits changed", diff)
	}
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

func TestPHTInvertibleProperty(t *testing.T) {
	// (a,b) -> (2a+b, a+b) is invertible mod 256: a = x-y, b = 2y-x.
	f := func(a, b byte) bool {
		x, y := 2*a+b, a+b
		return x-y == a && 2*y-x == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinearLayerIsLinear(t *testing.T) {
	// linearLayer must be linear over Z_256^16: L(x+y) == L(x)+L(y).
	f := func(x, y [16]byte) bool {
		var sum [16]byte
		for i := range sum {
			sum[i] = x[i] + y[i]
		}
		lx, ly, ls := x, y, sum
		linearLayer(&lx)
		linearLayer(&ly)
		linearLayer(&ls)
		for i := range ls {
			if ls[i] != lx[i]+ly[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestArDecryptInvertsAr(t *testing.T) {
	f := func(key, block [16]byte) bool {
		return ArDecrypt(key, Ar(key, block)) == block
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestArDecryptWrongKeyGarbles(t *testing.T) {
	key := [16]byte{1}
	wrong := [16]byte{2}
	block := [16]byte{3, 4, 5}
	if ArDecrypt(wrong, Ar(key, block)) == block {
		t.Fatal("decryption with the wrong key must not recover the block")
	}
}

func TestInverseLayersAreInverses(t *testing.T) {
	f := func(x [16]byte) bool {
		a := x
		linearLayer(&a)
		invLinearLayer(&a)
		if a != x {
			return false
		}
		b := x
		nonlinear(&b)
		invNonlinear(&b)
		return b == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
