package btcrypto

// E0 is the BR/EDR link-layer stream cipher: four LFSRs of lengths 25,
// 31, 33 and 39 feeding a summation combiner with a two-bit carry/blend
// state. Per the specification it runs in two levels: the first level is
// keyed with the (possibly entropy-reduced) encryption key, the device
// address of the master and the piconet clock; its output re-initializes
// the registers for the payload keystream.
//
// The implementation follows the specification's structure (register
// lengths, tap polynomials, combiner logic, two-level initialization).
// It is validated by structural and agreement properties rather than
// official vectors — for the reproduction, what matters is that both link
// endpoints (and an eavesdropper holding the same key material) derive an
// identical keystream, and that the keystream depends on every key bit,
// the address, and the clock.

// e0 holds the cipher state.
type e0 struct {
	// lfsr holds the four shift registers in their low bits.
	lfsr [4]uint64
	// blend is the combiner's carry state c_t (2 bits) and c_{t-1}.
	ct, ct1 uint32
}

// Register lengths and primitive feedback tap masks (specification
// polynomials for LFSR1..LFSR4).
var e0len = [4]uint{25, 31, 33, 39}

var e0taps = [4]uint64{
	(1 << 24) | (1 << 19) | (1 << 11) | (1 << 7),  // x^25 + x^20 + x^12 + x^8 + 1
	(1 << 30) | (1 << 23) | (1 << 15) | (1 << 11), // x^31 + x^24 + x^16 + x^12 + 1
	(1 << 32) | (1 << 27) | (1 << 23) | (1 << 3),  // x^33 + x^28 + x^24 + x^4 + 1
	(1 << 38) | (1 << 35) | (1 << 27) | (1 << 3),  // x^39 + x^36 + x^28 + x^4 + 1
}

// output bit positions of each register feeding the combiner.
var e0out = [4]uint{23, 23, 31, 31}

// clockOnce advances all four registers one step and returns the combiner
// output bit.
func (s *e0) clockOnce() uint32 {
	var sum uint32
	for i := 0; i < 4; i++ {
		// Output tap before shifting.
		sum += uint32(s.lfsr[i]>>e0out[i]) & 1
		// Galois-style step: new bit is the parity of the tapped stages.
		fb := parity64(s.lfsr[i] & e0taps[i])
		s.lfsr[i] = ((s.lfsr[i] << 1) | uint64(fb)) & ((1 << e0len[i]) - 1)
	}
	// Summation combiner: y_t in 0..4 plus carry state.
	y := sum + s.ct
	z := y & 1
	carry := y >> 1
	// Blend function T1/T2 of the specification: mix the new carry with
	// the two previous carry states.
	newCt := (carry ^ t1(s.ct) ^ t2(s.ct1)) & 3
	s.ct1 = s.ct
	s.ct = newCt
	return z
}

// t1 and t2 are the specification's two bit-permutations on the carry.
func t1(c uint32) uint32 { return c & 3 }
func t2(c uint32) uint32 {
	x0, x1 := c&1, (c>>1)&1
	return (x0 << 1) | (x0 ^ x1)
}

func parity64(v uint64) uint32 {
	v ^= v >> 32
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return uint32(v) & 1
}

// load distributes an input byte stream over the four registers, the
// specification's key-loading idiom: bytes are shifted in round-robin
// while the registers run, so every input bit diffuses into the state.
func (s *e0) load(material []byte) {
	for i, b := range material {
		r := i % 4
		s.lfsr[r] ^= uint64(b) << (e0len[r] - 8 - uint(i/4%2)*7)
		for k := 0; k < 8; k++ {
			s.clockOnce()
		}
	}
}

// E0Stream is a keystream generator for one encrypted packet.
type E0Stream struct {
	state e0
}

// NewE0 initializes the cipher for one packet with the session encryption
// key (use ShrinkKey first when a reduced key size was negotiated), the
// master device's BDADDR and the 26-bit piconet clock value of the
// packet. The two-level scheme reinitializes the registers from the
// level-1 output before any keystream is produced.
func NewE0(key [16]byte, masterAddr [6]byte, clock uint32) *E0Stream {
	st := &E0Stream{}
	// Level 1: load Kc, address and clock.
	var material []byte
	material = append(material, key[:]...)
	material = append(material, masterAddr[:]...)
	material = append(material,
		byte(clock), byte(clock>>8), byte(clock>>16), byte(clock>>24))
	// Non-zero pre-state so an all-zero key still cycles.
	for i := range st.state.lfsr {
		st.state.lfsr[i] = 1
	}
	st.state.load(material)

	// Run 200 warm-up cycles, keep the last 128 output bits.
	var z [16]byte
	for i := 0; i < 200; i++ {
		bit := st.state.clockOnce()
		if i >= 200-128 {
			j := i - (200 - 128)
			z[j/8] |= byte(bit) << (j % 8)
		}
	}

	// Level 2: reload the registers with the level-1 output.
	st.state = e0{}
	for i := range st.state.lfsr {
		st.state.lfsr[i] = 1
	}
	st.state.load(z[:])
	return st
}

// Keystream appends n keystream bytes.
func (s *E0Stream) Keystream(n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		var b byte
		for k := 0; k < 8; k++ {
			b |= byte(s.state.clockOnce()) << k
		}
		out[i] = b
	}
	return out
}

// XORKeyStream encrypts or decrypts buf in place.
func (s *E0Stream) XORKeyStream(buf []byte) {
	ks := s.Keystream(len(buf))
	for i := range buf {
		buf[i] ^= ks[i]
	}
}

// EncryptPayload is the one-shot helper the controller uses per packet:
// derive the packet keystream from (key, master address, clock) and XOR.
func EncryptPayload(key [16]byte, masterAddr [6]byte, clock uint32, payload []byte) []byte {
	out := append([]byte(nil), payload...)
	NewE0(key, masterAddr, clock).XORKeyStream(out)
	return out
}
