package btcrypto

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestE1AgreementProperty(t *testing.T) {
	// The verifier and the claimant compute E1 independently with the
	// same inputs; the protocol only works if the outputs agree and are
	// fully determined by (key, challenge, address).
	f := func(key, challenge [16]byte, addr [6]byte) bool {
		s1, a1 := E1(key, challenge, addr)
		s2, a2 := E1(key, challenge, addr)
		return s1 == s2 && a1 == a2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestE1KeySensitivity(t *testing.T) {
	key := [16]byte{1, 2, 3}
	challenge := [16]byte{4, 5, 6}
	addr := [6]byte{7, 8, 9, 10, 11, 12}
	s1, _ := E1(key, challenge, addr)
	key[15] ^= 1
	s2, _ := E1(key, challenge, addr)
	if s1 == s2 {
		t.Fatal("SRES must depend on the key")
	}
}

func TestE1AddressSensitivity(t *testing.T) {
	// LMP authentication binds the claimant's address: a different
	// BDADDR must (overwhelmingly) give a different SRES. This is the
	// property BDADDR spoofing defeats — the attacker must present the
	// same address, not merely hold the key.
	key := [16]byte{0xAA}
	challenge := [16]byte{0xBB}
	s1, _ := E1(key, challenge, [6]byte{1, 2, 3, 4, 5, 6})
	s2, _ := E1(key, challenge, [6]byte{1, 2, 3, 4, 5, 7})
	if s1 == s2 {
		t.Fatal("SRES must depend on the claimant address")
	}
}

func TestE1SplitsSresAndACO(t *testing.T) {
	sres, aco := E1([16]byte{1}, [16]byte{2}, [6]byte{3})
	if sres == ([4]byte{}) && aco == ([12]byte{}) {
		t.Fatal("outputs should not both be zero")
	}
}

func TestOffsetKeyInvolvesAllBytes(t *testing.T) {
	k := [16]byte{}
	ok := offsetKey(k)
	for i, v := range ok {
		if v == 0 {
			t.Fatalf("offsetKey byte %d unchanged for zero key", i)
		}
	}
	// Offsetting must be position-dependent.
	k2 := [16]byte{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	ok2 := offsetKey(k2)
	same := true
	for i := 1; i < 16; i++ {
		if ok2[i] != ok2[0] {
			same = false
		}
	}
	if same {
		t.Fatal("offsetKey must vary by position")
	}
}

func TestE21DependsOnAddressAndRand(t *testing.T) {
	r := [16]byte{1}
	a := [6]byte{2}
	k1 := E21(r, a)
	r[0] ^= 1
	k2 := E21(r, a)
	a[0] ^= 1
	k3 := E21(r, a)
	if k1 == k2 || k2 == k3 {
		t.Fatal("E21 must depend on both inputs")
	}
}

func TestE22PINLengthMatters(t *testing.T) {
	r := [16]byte{9}
	addr := [6]byte{1, 2, 3, 4, 5, 6}
	k1 := E22(r, []byte{1, 2, 3, 4}, addr)
	k2 := E22(r, []byte{1, 2, 3, 4, 5}, addr)
	if k1 == k2 {
		t.Fatal("different PINs must give different init keys")
	}
}

func TestE22RejectsBadPIN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("E22 must reject an empty PIN")
		}
	}()
	E22([16]byte{}, nil, [6]byte{})
}

func TestE3EncryptionKeyProperties(t *testing.T) {
	key := [16]byte{5}
	rand1 := [16]byte{6}
	cof := [12]byte{7}
	k1 := E3(key, rand1, cof)
	k2 := E3(key, rand1, cof)
	if k1 != k2 {
		t.Fatal("E3 must be deterministic")
	}
	cof[0] ^= 1
	k3 := E3(key, rand1, cof)
	if k1 == k3 {
		t.Fatal("E3 must depend on the ciphering offset")
	}
}

func TestShrinkKey(t *testing.T) {
	var key [16]byte
	rng := rand.New(rand.NewSource(1))
	rng.Read(key[:])
	one := ShrinkKey(key, 1)
	if one[0] != key[0] {
		t.Fatal("first byte must survive")
	}
	for i := 1; i < 16; i++ {
		if one[i] != 0 {
			t.Fatalf("byte %d must be zeroed", i)
		}
	}
	full := ShrinkKey(key, 16)
	if full != key {
		t.Fatal("16-byte shrink is identity")
	}
	for _, bad := range []int{0, 17, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("ShrinkKey(%d) must panic", bad)
				}
			}()
			ShrinkKey(key, bad)
		}()
	}
}
