package btcrypto

import (
	"testing"
	"testing/quick"
)

// The cached-context API must be a pure refactoring of the one-shot
// functions: every (key, input) pair maps to identical outputs.

func TestSAFERPlusContextMatchesOneShot(t *testing.T) {
	f := func(key, block [16]byte) bool {
		c := NewSAFERPlus(key)
		return c.Ar(block) == Ar(key, block) &&
			c.ArPrime(block) == ArPrime(key, block) &&
			c.Decrypt(block) == ArDecrypt(key, block)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSAFERPlusContextIsReusable(t *testing.T) {
	key := [16]byte{0xDE, 0xAD, 0xBE, 0xEF}
	c := NewSAFERPlus(key)
	blocks := [][16]byte{{1}, {2, 2}, {3, 3, 3}, {0xFF}}
	for round := 0; round < 3; round++ {
		for _, b := range blocks {
			if c.Ar(b) != Ar(key, b) {
				t.Fatalf("context drifted after reuse on block %v", b)
			}
			if c.Decrypt(c.Ar(b)) != b {
				t.Fatalf("context decrypt failed on block %v", b)
			}
		}
	}
}

func TestE1ContextMatchesE1AndE3(t *testing.T) {
	f := func(key, rand [16]byte, addr [6]byte, cof [12]byte) bool {
		c := NewE1Context(key)
		sres, aco := c.Auth(rand, addr)
		wantSres, wantAco := E1(key, rand, addr)
		if sres != wantSres || aco != wantAco {
			return false
		}
		return c.EncryptionKey(rand, cof) == E3(key, rand, cof)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestE1ContextReusedAcrossChallenges(t *testing.T) {
	// One bonded key, many challenges — the caching scenario of the
	// controller's per-link context and the PIN cracker's verify stage.
	key := [16]byte{7, 7, 7}
	addr := [6]byte{1, 2, 3, 4, 5, 6}
	c := NewE1Context(key)
	for i := 0; i < 16; i++ {
		rand := [16]byte{byte(i), byte(i * 3)}
		gotSres, gotAco := c.Auth(rand, addr)
		wantSres, wantAco := E1(key, rand, addr)
		if gotSres != wantSres || gotAco != wantAco {
			t.Fatalf("challenge %d: context diverged from E1", i)
		}
	}
}

func TestBiasTableMatchesSpecFormula(t *testing.T) {
	// The precomputed biases must equal the specification's double
	// exponentiation expTab[expTab[(17p+i+1) mod 256]].
	for p := 2; p <= 17; p++ {
		for i := 0; i < 16; i++ {
			want := expTab[expTab[(17*p+i+1)%256]]
			if got := biasTab[p-2][i]; got != want {
				t.Fatalf("biasTab[%d][%d] = %d, want %d", p-2, i, got, want)
			}
		}
	}
}

func TestUnrolledShuffleMatchesPermutationTable(t *testing.T) {
	f := func(x [16]byte) bool {
		got := x
		shuffle(&got)
		var want [16]byte
		for i, j := range armenianShuffle {
			want[i] = x[j]
		}
		if got != want {
			return false
		}
		inv := got
		invShuffle(&inv)
		return inv == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
