package sentinel

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/forensics"
	"repro/internal/obs"
	"repro/internal/tsdb"
)

// Store series classes. Finding and stream-end events persist as their
// exact JSONL bytes keyed by stream id; the histogram series holds
// interval-delta metrics snapshots keyed 0 (daemon-global); the
// checkpoint series holds detector checkpoints keyed by a hash of the
// session id (sessionKey).
const (
	SeriesFindings = "findings"
	SeriesEnds     = "ends"
	SeriesHist     = "hist"
	SeriesCkpt     = "ckpt"
)

// ckptDoc is the stored form of one detector checkpoint: enough to
// rebuild the session's pipeline after a daemon restart — identity
// (session, tenant, stream id), position (capture offset, frame count,
// datalink), a per-session monotonic sequence (highest wins at
// recovery), and the forensics.SnapshotState blob. A Done doc is a
// tombstone: the stream finished (or its grace expired) and recovery
// must not resurrect it; tombstones carry no state.
type ckptDoc struct {
	Session  string `json:"session"`
	Tenant   string `json:"tenant,omitempty"`
	Stream   uint64 `json:"stream"`
	Seq      uint64 `json:"seq"`
	Offset   int64  `json:"offset"`
	Frames   int    `json:"frames"`
	Datalink uint32 `json:"datalink"`
	Done     bool   `json:"done,omitempty"`
	State    []byte `json:"state,omitempty"`
}

// ckptFrameMagic marks the binary checkpoint framing: a JSON header
// (the ckptDoc with State omitted) length-prefixed after the magic,
// then the raw SnapshotState bytes. Detector states run to megabytes
// on long captures; base64-ing them through json.Marshal cost more
// than the snapshot itself, and the persist goroutine shares a core
// with ingest. Frames starting with '{' decode as the legacy all-JSON
// form, so stores written before the framing change still recover.
const ckptFrameMagic = 0xC8

func encodeCkptFrame(d *ckptDoc) ([]byte, error) {
	hdr := *d
	hdr.State = nil
	hj, err := json.Marshal(&hdr)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 5+len(hj)+len(d.State))
	buf = append(buf, ckptFrameMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hj)))
	buf = append(buf, hj...)
	buf = append(buf, d.State...)
	return buf, nil
}

func decodeCkptFrame(data []byte, d *ckptDoc) error {
	if len(data) > 0 && data[0] == '{' {
		return json.Unmarshal(data, d)
	}
	if len(data) < 5 || data[0] != ckptFrameMagic {
		return fmt.Errorf("sentinel: unrecognized checkpoint frame")
	}
	n := int(binary.LittleEndian.Uint32(data[1:5]))
	if n > len(data)-5 {
		return fmt.Errorf("sentinel: checkpoint frame header %d bytes exceeds frame", n)
	}
	if err := json.Unmarshal(data[5:5+n], d); err != nil {
		return err
	}
	if rest := data[5+n:]; len(rest) > 0 {
		d.State = append([]byte(nil), rest...)
	}
	return nil
}

// persistItem is one unit on a shard's persist queue: a stamped event
// (ckpt nil) or a detector checkpoint document.
type persistItem struct {
	ev   Event
	ts   int64
	ckpt *ckptDoc
}

// tryPersist places one item on the shard's persist queue. Non-blocking
// by default (durability is best-effort; a full queue is a skipped
// checkpoint or a counted drop, never a stall); block is used for the
// park and final checkpoints, whose loss would cost resumability. A
// send on the closed post-Shutdown queue (only reachable from a wedged
// stream's abandoned goroutines) reports false instead of crashing.
func (sh *shard) tryPersist(it persistItem, block bool) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	if block {
		sh.persist <- it
		return true
	}
	select {
	case sh.persist <- it:
		return true
	default:
		return false
	}
}

// queueCheckpoint snapshots the detector and queues the checkpoint for
// this session stream. The caller must have drained the detector (the
// snapshot codec refuses undrained state). seq advances only when the
// snapshot succeeds, so stored sequences are dense per session.
func (s *Server) queueCheckpoint(st *streamState, det *forensics.Detector, off int64, frames int, datalink uint32, seq *uint64, block bool) {
	if st.session == "" || st.sh.persist == nil {
		return
	}
	// Live snapshot, not full: the reducer never reads the accumulated
	// report back, so resumed findings are byte-identical either way,
	// and the live set stays kilobytes where the full report grows with
	// the capture — megabyte snapshots every CheckpointEvery interval
	// were the single largest ingest overhead at replay speed.
	state, err := det.SnapshotLiveState()
	if err != nil {
		return
	}
	*seq++
	st.sh.tryPersist(persistItem{
		ts: time.Now().UnixNano(),
		ckpt: &ckptDoc{
			Session: st.session, Tenant: st.tenant, Stream: st.id,
			Seq: *seq, Offset: off, Frames: frames, Datalink: datalink,
			State: state,
		},
	}, block)
}

// persistLoop is a shard's persistence consumer: it drains the bounded
// queue, append-encodes each event into a reused buffer (the same
// encoder the JSONL writer uses, so the durable bytes equal the emitted
// line), and appends to the store. Store errors count as drops — the
// queue keeps draining, so one bad write never wedges the shard.
func (sh *shard) persistLoop() {
	defer close(sh.pdone)
	var buf []byte
	for it := range sh.persist {
		if hook := sh.srv.cfg.beforePersist; hook != nil {
			hook(sh.idx)
		}
		if it.ckpt != nil {
			sh.persistCkpt(it)
			continue
		}
		series := SeriesFindings
		if it.ev.Type == EventStreamEnd {
			series = SeriesEnds
		}
		buf = it.ev.appendJSON(buf[:0])
		if err := sh.srv.cfg.Store.Append(series, it.ts, it.ev.Stream, buf); err != nil {
			sh.m.persistDropped.Add(1)
			continue
		}
		sh.m.persistAppended.Add(1)
	}
}

// persistCkpt makes one checkpoint durable and then announces it.
// Checkpoints are deliberately outside the persistAppended/Dropped
// event accounting — those counters mirror the JSONL event stream and
// tests pin the exact correspondence. The announcement (a "checkpoint"
// JSONL line) goes out only after the append AND an fsync of the
// checkpoint series, so
// the line on Output is a reliable kill-the-daemon-here marker: any
// checkpoint an operator (or the crash drill in verify.sh) has seen is
// guaranteed to survive a kill -9.
func (sh *shard) persistCkpt(it persistItem) {
	d := it.ckpt
	doc, err := encodeCkptFrame(d)
	if err != nil {
		return
	}
	if err := sh.srv.cfg.Store.Append(SeriesCkpt, it.ts, sessionKey(d.Session), doc); err != nil {
		return
	}
	if err := sh.srv.cfg.Store.SyncSeries(SeriesCkpt); err != nil {
		return
	}
	sh.srv.sess.checkpoints.Add(1)
	if d.Done {
		return // tombstones are bookkeeping, not operator events
	}
	sh.enqueue(shardItem{ev: Event{
		Type: EventCheckpoint, Stream: d.Stream, Session: d.Session,
		Offset: d.Offset, Frame: d.Frames,
		TS: time.Unix(0, it.ts).UTC().Format(time.RFC3339Nano),
	}})
}

// histPoint is the persisted form of one metrics snapshotter interval:
// the raw histogram deltas (not quantiles) for the ingest and detect
// instruments, folded across shards, plus the interval they cover.
// Storing deltas rather than cumulative states is what makes both
// window queries and downsampling lossless bucket merges — "p99 over
// the last hour" is obs.SnapshotOf over the hour's deltas, and an aged
// segment merges adjacent deltas without losing a single bucket count.
type histPoint struct {
	TS         string             `json:"ts"`
	IntervalMS int64              `json:"interval_ms"`
	Ingest     obs.HistogramState `json:"ingest"`
	Detect     obs.HistogramState `json:"detect"`
}

// foldStates returns the cumulative ingest and detect histogram states
// folded across every shard.
func (s *Server) foldStates() (ingest, detect obs.HistogramState) {
	ingest = obs.HistogramState{MinNS: -1}
	detect = obs.HistogramState{MinNS: -1}
	for _, sh := range s.shards {
		ingest = ingest.Merge(sh.m.ingest.State())
		detect = detect.Merge(sh.m.detect.State())
	}
	return ingest, detect
}

// metricsLoop persists one histPoint per MetricsEvery interval: the
// cumulative fold across shards, diffed against the previous tick.
// Empty intervals (no observations) are skipped. On shutdown it
// persists whatever the final partial interval accumulated.
func (s *Server) metricsLoop() {
	defer close(s.snapDone)
	t := time.NewTicker(s.cfg.MetricsEvery)
	defer t.Stop()
	var prevIngest, prevDetect obs.HistogramState
	prevAt := time.Now()
	snap := func() {
		now := time.Now()
		ingest, detect := s.foldStates()
		dIngest, dDetect := ingest.Sub(prevIngest), detect.Sub(prevDetect)
		if dIngest.Empty() && dDetect.Empty() {
			return
		}
		prevIngest, prevDetect = ingest, detect
		pt := histPoint{
			TS:         now.UTC().Format(time.RFC3339Nano),
			IntervalMS: now.Sub(prevAt).Milliseconds(),
			Ingest:     dIngest,
			Detect:     dDetect,
		}
		prevAt = now
		doc, err := json.Marshal(pt)
		if err != nil {
			return
		}
		if err := s.cfg.Store.Append(SeriesHist, now.UnixNano(), 0, doc); err == nil {
			s.shards[0].m.persistAppended.Add(1)
		} else {
			s.shards[0].m.persistDropped.Add(1)
		}
	}
	for {
		select {
		case <-s.snapStop:
			snap() // final partial interval
			return
		case <-t.C:
			snap()
		}
	}
}

// HistDownsample returns the retention decay policy for the histogram
// series: after the given age, every window of interval deltas merges
// into one coarser delta. The merge is lossless for everything a
// quantile query reads (bucket counts, totals, sums); the point's TS
// and frame timestamp keep the newest input's, so time-window pruning
// stays correct.
func HistDownsample(after, window time.Duration) tsdb.Downsampler {
	return tsdb.Downsampler{
		After:  after,
		Window: window,
		Merge: func(frames []tsdb.Frame) (tsdb.Frame, error) {
			var merged histPoint
			for i, fr := range frames {
				var pt histPoint
				if err := json.Unmarshal(fr.Data, &pt); err != nil {
					return tsdb.Frame{}, fmt.Errorf("hist point %d: %w", i, err)
				}
				merged.TS = pt.TS
				merged.IntervalMS += pt.IntervalMS
				merged.Ingest = merged.Ingest.Merge(pt.Ingest)
				merged.Detect = merged.Detect.Merge(pt.Detect)
			}
			doc, err := json.Marshal(merged)
			if err != nil {
				return tsdb.Frame{}, err
			}
			last := frames[len(frames)-1]
			return tsdb.Frame{TS: last.TS, Key: last.Key, Data: doc}, nil
		},
	}
}

// QueryEvent is one persisted event row in a /query response: the
// frame's wall timestamp and stream key, plus the stored JSONL object
// verbatim (it is the same bytes the live stream emitted).
type QueryEvent struct {
	TS     string          `json:"ts"`
	Stream uint64          `json:"stream"`
	Event  json.RawMessage `json:"event"`
}

// QueryResult is the /query response document. Event series
// (findings, ends) fill Results; the histogram series folds the
// window's stored deltas into Ingest/Detect percentile snapshots
// covering IntervalMS of observed run time.
type QueryResult struct {
	Series    string       `json:"series"`
	Count     int          `json:"count"`
	Truncated bool         `json:"truncated,omitempty"`
	Results   []QueryEvent `json:"results,omitempty"`

	IntervalMS int64         `json:"interval_ms,omitempty"`
	Ingest     *obs.Snapshot `json:"ingest,omitempty"`
	Detect     *obs.Snapshot `json:"detect,omitempty"`
}

// defaultQueryLimit caps /query result rows unless ?limit= raises it;
// Truncated tells the caller the cap bit.
const defaultQueryLimit = 10000

// maxQueryUnixSec bounds the unix-seconds form of a query time: any
// |sec| beyond it overflows the nanosecond conversion (~year 2262) and
// would wrap negative, silently turning an out-of-range since=/until=
// into an empty result instead of a 400.
const maxQueryUnixSec = math.MaxInt64 / int64(time.Second)

// parseQueryTime accepts RFC3339(Nano) or integer unix seconds.
func parseQueryTime(v string) (int64, error) {
	if t, err := time.Parse(time.RFC3339Nano, v); err == nil {
		return t.UnixNano(), nil
	}
	if sec, err := strconv.ParseInt(v, 10, 64); err == nil {
		if sec > maxQueryUnixSec || sec < -maxQueryUnixSec {
			return 0, fmt.Errorf("unix seconds %d out of range (|sec| must be <= %d)", sec, maxQueryUnixSec)
		}
		return sec * int64(time.Second), nil
	}
	return 0, fmt.Errorf("bad time %q (want RFC3339 or unix seconds)", v)
}

// handleQuery serves GET /query?series=findings|ends|hist with
// optional stream=, since=, until=, limit= parameters. Served 404 when
// no store is configured (the endpoint does not exist without one).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	if s.cfg.Store == nil {
		http.Error(w, "no store configured", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	series := q.Get("series")

	since, until := int64(0), time.Now().UnixNano()
	var err error
	if v := q.Get("since"); v != "" {
		if since, err = parseQueryTime(v); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	if v := q.Get("until"); v != "" {
		if until, err = parseQueryTime(v); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	var key uint64
	if v := q.Get("stream"); v != "" {
		if key, err = strconv.ParseUint(v, 10, 64); err != nil || key == 0 {
			http.Error(w, fmt.Sprintf("bad stream %q", v), http.StatusBadRequest)
			return
		}
	}
	limit := defaultQueryLimit
	if v := q.Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit <= 0 {
			http.Error(w, fmt.Sprintf("bad limit %q", v), http.StatusBadRequest)
			return
		}
	}

	res := QueryResult{Series: series}
	switch series {
	case SeriesFindings, SeriesEnds:
		qerr := s.cfg.Store.Query(series, since, until, key, func(fr tsdb.Frame) error {
			if len(res.Results) >= limit {
				res.Truncated = true
				return errQueryLimit
			}
			res.Results = append(res.Results, QueryEvent{
				TS:     time.Unix(0, fr.TS).UTC().Format(time.RFC3339Nano),
				Stream: fr.Key,
				Event:  json.RawMessage(append([]byte(nil), fr.Data...)),
			})
			return nil
		})
		if qerr != nil && qerr != errQueryLimit {
			http.Error(w, qerr.Error(), http.StatusInternalServerError)
			return
		}
		res.Count = len(res.Results)
	case SeriesHist:
		var points int
		ingest := obs.HistogramState{MinNS: -1}
		detect := obs.HistogramState{MinNS: -1}
		qerr := s.cfg.Store.Query(series, since, until, 0, func(fr tsdb.Frame) error {
			var pt histPoint
			if err := json.Unmarshal(fr.Data, &pt); err != nil {
				return fmt.Errorf("corrupt hist point: %w", err)
			}
			points++
			res.IntervalMS += pt.IntervalMS
			ingest = ingest.Merge(pt.Ingest)
			detect = detect.Merge(pt.Detect)
			return nil
		})
		if qerr != nil {
			http.Error(w, qerr.Error(), http.StatusInternalServerError)
			return
		}
		res.Count = points
		iSnap, dSnap := obs.SnapshotOf(ingest), obs.SnapshotOf(detect)
		res.Ingest, res.Detect = &iSnap, &dSnap
	default:
		http.Error(w, fmt.Sprintf("bad series %q (want %s, %s, or %s)",
			series, SeriesFindings, SeriesEnds, SeriesHist), http.StatusBadRequest)
		return
	}

	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	s.noteWriteErr("/query", enc.Encode(res))
}

// errQueryLimit is the internal sentinel Query callbacks return to stop
// iteration once the response row cap is hit.
var errQueryLimit = fmt.Errorf("query limit reached")
