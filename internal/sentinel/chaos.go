package sentinel

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/faults"
)

// RunResumeDifferential is the transport-chaos differential for the
// session resume protocol: for every cut offset c (1..len(data), step
// stride) it streams the capture to a live server through a
// faults.CutWriter that kills the connection at payload byte c, abruptly
// closes the transport, reconnects with the same session id, resumes
// from the server's hello offset, and finishes the capture — then
// demands that the resumed run's findings are byte-identical (modulo
// the stream id) to an uninterrupted baseline, and that the merged
// stream ends clean with the baseline's record/byte/finding totals.
//
// One server (unix socket, no store — the differential exercises
// parking, not checkpoints) serves every trial; each trial uses its own
// session id, so its events are keyed by its own stream id. logf, when
// non-nil, receives one progress line per ~64 trials.
func RunResumeDifferential(data []byte, stride int, logf func(string, ...any)) error {
	if len(data) == 0 {
		return fmt.Errorf("chaos: empty capture")
	}
	if stride <= 0 {
		stride = 1
	}
	dir, err := os.MkdirTemp("", "blap-chaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	out := &lockedBuffer{}
	ends := make(chan StreamSummary, 16)
	srv := New(Config{
		UnixAddr:    filepath.Join(dir, "chaos.sock"),
		ResumeGrace: time.Minute,
		AckEvery:    4096,
		Output:      out,
		OnStreamEnd: func(sum StreamSummary) { ends <- sum },
	})
	if err := srv.Start(); err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	addr := srv.UnixAddr()

	base, err := chaosTrial(addr, "baseline", data, 0, out, ends)
	if err != nil {
		return fmt.Errorf("chaos: baseline: %w", err)
	}

	trials := 0
	for c := 1; c <= len(data); c += stride {
		got, err := chaosTrial(addr, fmt.Sprintf("cut-%d", c), data, c, out, ends)
		if err != nil {
			return fmt.Errorf("chaos: cut at %d: %w", c, err)
		}
		if err := base.diff(got); err != nil {
			return fmt.Errorf("chaos: cut at %d: %w", c, err)
		}
		trials++
		if logf != nil && trials%64 == 0 {
			logf("chaos: %d trials, cut offset %d/%d", trials, c, len(data))
		}
	}
	if logf != nil {
		logf("chaos: %d cut trials identical to baseline (%d findings, %d records)",
			trials, len(base.findings), base.sum.Records)
	}
	return nil
}

// chaosResult is one trial's observable output: the stream summary and
// the finding lines normalized for cross-trial comparison (stream id
// zeroed; nothing else differs when the protocol is correct).
type chaosResult struct {
	sum      StreamSummary
	findings []string
}

func (base chaosResult) diff(got chaosResult) error {
	if got.sum.Status != StatusClean {
		return fmt.Errorf("ended %q (err %v), want clean", got.sum.Status, got.sum.Err)
	}
	if got.sum.Records != base.sum.Records || got.sum.Bytes != base.sum.Bytes ||
		got.sum.Findings != base.sum.Findings {
		return fmt.Errorf("summary records=%d bytes=%d findings=%d, baseline %d/%d/%d",
			got.sum.Records, got.sum.Bytes, got.sum.Findings,
			base.sum.Records, base.sum.Bytes, base.sum.Findings)
	}
	if len(got.findings) != len(base.findings) {
		return fmt.Errorf("%d findings, baseline %d", len(got.findings), len(base.findings))
	}
	for i := range got.findings {
		if got.findings[i] != base.findings[i] {
			return fmt.Errorf("finding %d differs:\n  got  %s\n  want %s",
				i, got.findings[i], base.findings[i])
		}
	}
	return nil
}

// chaosTrial streams data to the server under session sid, cutting the
// transport at payload offset cut (0 = no cut, the baseline), resuming
// after the cut, and returns the stream's summary and normalized
// findings once it ends.
func chaosTrial(addr, sid string, data []byte, cut int, out *lockedBuffer, ends chan StreamSummary) (chaosResult, error) {
	conn, hello, err := DialSession("unix", addr, sid, "", 10*time.Second)
	if err != nil {
		return chaosResult{}, err
	}
	if hello.Offset != 0 {
		_ = conn.Close()
		return chaosResult{}, fmt.Errorf("fresh session hello offset %d", hello.Offset)
	}
	stream := hello.Stream

	if cut > 0 {
		// The CutWriter sits above the chunk framing, so the cut lands at
		// an exact payload offset regardless of chunk boundaries; the
		// abrupt close then simulates the peer dying mid-send.
		cw := &faults.CutWriter{W: &chunkFramingWriter{w: conn}, N: int64(cut)}
		if _, err := io.Copy(cw, bytes.NewReader(data)); err != nil && !errors.Is(err, faults.ErrCut) {
			_ = conn.Close()
			return chaosResult{}, fmt.Errorf("cut send: %w", err)
		}
		_ = conn.Close()

		conn, hello, err = DialSession("unix", addr, sid, "", 10*time.Second)
		if err != nil {
			return chaosResult{}, fmt.Errorf("resume dial: %w", err)
		}
		if hello.Stream != stream {
			_ = conn.Close()
			return chaosResult{}, fmt.Errorf("resumed as stream %d, was %d", hello.Stream, stream)
		}
		if hello.Offset < 0 || hello.Offset > int64(len(data)) {
			_ = conn.Close()
			return chaosResult{}, fmt.Errorf("resume hello offset %d outside capture", hello.Offset)
		}
		data = data[hello.Offset:]
	}

	if _, err := WriteSessionChunks(conn, bytes.NewReader(data)); err != nil {
		_ = conn.Close()
		return chaosResult{}, fmt.Errorf("send: %w", err)
	}
	if err := WriteSessionFin(conn); err != nil {
		_ = conn.Close()
		return chaosResult{}, fmt.Errorf("fin: %w", err)
	}

	var sum StreamSummary
	select {
	case sum = <-ends:
	case <-time.After(30 * time.Second):
		_ = conn.Close()
		return chaosResult{}, fmt.Errorf("stream %d never ended", stream)
	}
	_ = conn.Close()
	if sum.ID != stream {
		return chaosResult{}, fmt.Errorf("stream-end for %d, want %d", sum.ID, stream)
	}
	return chaosResult{sum: sum, findings: extractFindings(out.String(), stream)}, nil
}

// extractFindings pulls the finding lines for one stream out of the
// shared JSONL output and normalizes them: the stream id (the only
// field that legitimately differs between a baseline run and a resumed
// run of the same capture) is zeroed and the line re-rendered through
// the canonical encoder.
func extractFindings(jsonl string, stream uint64) []string {
	var res []string
	for _, line := range bytes.Split([]byte(jsonl), []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		var ev Event
		if json.Unmarshal(line, &ev) != nil {
			continue
		}
		if ev.Type != EventFinding || ev.Stream != stream {
			continue
		}
		ev.Stream = 0
		res = append(res, string(ev.appendJSON(nil)))
	}
	return res
}

// chunkFramingWriter frames every Write as one session chunk. It sits
// under the fault injector so that injected partial writes still emit
// well-formed (shorter) chunks — the cut models a dying peer, not a
// corrupted one.
type chunkFramingWriter struct {
	w io.Writer
}

func (c *chunkFramingWriter) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return 0, err
	}
	return c.w.Write(p)
}

// lockedBuffer is a mutex-guarded bytes.Buffer for shared JSONL output.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
