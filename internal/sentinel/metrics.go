package sentinel

import (
	"encoding/json"
	"log"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hci"
	"repro/internal/obs"
)

// metrics holds the daemon-wide cold state: the start clock and the
// accept-path rejection counter. Everything hot — records, bytes,
// packet tallies, event counts, latency histograms, findings-by-kind —
// lives in the per-shard shardMetrics blocks (see shard) so concurrent
// streams on different shards never contend on a counter or bounce a
// shared cache line; Snapshot folds the shards back into one
// operator-facing view per scrape.
type metrics struct {
	start time.Time

	// streamsRejected is bumped on the accept path before a stream has
	// an id (and therefore a shard); it is cold by definition — a flood
	// of rejections is bounded by accept throughput, not ingest.
	streamsRejected atomic.Uint64
}

func newMetrics() *metrics {
	return &metrics{start: time.Now()}
}

// pad is one cache line of padding. shardMetrics interleaves these
// around its hot counter block so two shards' counters never share a
// line even when the shard structs are allocated adjacently — the
// whole point of sharding the metrics is that stream A's record counter
// bump does not invalidate the line stream B is bumping.
type pad [64]byte

// shardMetrics is one shard's counter block: everything the ingest hot
// path bumps, owned by the streams pinned to this shard. Counters are
// atomics (several streams can share a shard), histograms are
// internal/obs lock-free instruments, and the low-rate maps (findings
// by kind, stream ends by status) take the shard's mutex — contended
// only by the shard's own streams.
type shardMetrics struct {
	_ pad

	streamsActive atomic.Int64
	streamsTotal  atomic.Uint64
	records       atomic.Uint64
	bytes         atomic.Uint64
	events        atomic.Uint64
	eventsDropped atomic.Uint64

	pktCommand atomic.Uint64
	pktEvent   atomic.Uint64
	pktACL     atomic.Uint64
	pktSCO     atomic.Uint64
	pktOther   atomic.Uint64

	// persistAppended/persistDropped account the shard's durable event
	// path: appended is bumped by the persist goroutine per successful
	// store append, dropped by emit when the bounded persist queue is
	// full (and by the persist goroutine on store errors). dropped
	// climbing is the disk-can't-keep-up signal; ingestion is unaffected
	// by construction.
	persistAppended atomic.Uint64
	persistDropped  atomic.Uint64

	_ pad

	// ingest is per-batch processing latency (scan completion through
	// push, drain, and any finding emission). detect is per-finding
	// detection latency (completing batch scanned to finding event
	// queued), observed for every finding.
	ingest obs.Histogram
	detect obs.Histogram
	// Stage timers, observed once per batch: scan (byte wait + block
	// decode), push (detector state machine), drain (finding
	// collection), emit (event append + shard enqueue; timed whenever
	// findings are emitted).
	stageScan  obs.Histogram
	stagePush  obs.Histogram
	stageDrain obs.Histogram
	stageEmit  obs.Histogram

	mu           sync.Mutex
	findings     map[string]uint64
	endsByStatus map[string]uint64
}

func (m *shardMetrics) init() {
	m.findings = make(map[string]uint64)
	m.endsByStatus = make(map[string]uint64)
}

// packetTally is one batch's worth of per-type packet counts. The
// reader goroutine accumulates it lock-free inside the scan sweep's
// keep callback (the only pass that sees rejected records' payloads)
// and ships it through the ring with the batch; the detector loop folds
// it into the stream's shard block, at most one Add per type per batch
// instead of one per record.
type packetTally struct {
	cmd, evt, acl, sco, other uint64
}

// count classifies one raw record payload by its H4 indicator octet.
func (t *packetTally) count(raw []byte) {
	pt, ok := hci.PeekPacketType(raw)
	if !ok {
		t.other++
		return
	}
	switch pt {
	case hci.PTCommand:
		t.cmd++
	case hci.PTEvent:
		t.evt++
	case hci.PTACLData:
		t.acl++
	case hci.PTSCOData:
		t.sco++
	}
}

// addPacketTally folds a batch tally into the shard's counters.
func (m *shardMetrics) addPacketTally(t packetTally) {
	if t.cmd > 0 {
		m.pktCommand.Add(t.cmd)
	}
	if t.evt > 0 {
		m.pktEvent.Add(t.evt)
	}
	if t.acl > 0 {
		m.pktACL.Add(t.acl)
	}
	if t.sco > 0 {
		m.pktSCO.Add(t.sco)
	}
	if t.other > 0 {
		m.pktOther.Add(t.other)
	}
}

func (m *shardMetrics) countFinding(kind string) {
	m.mu.Lock()
	m.findings[kind]++
	m.mu.Unlock()
}

func (m *shardMetrics) countEnd(status string) {
	m.mu.Lock()
	m.endsByStatus[status]++
	m.mu.Unlock()
}

// StreamMetrics is the live per-stream row of a metrics snapshot.
type StreamMetrics struct {
	ID    uint64 `json:"id"`
	Proto string `json:"proto"`
	Label string `json:"label"`
	// Shard is the event/metrics shard the stream is pinned to.
	Shard    int    `json:"shard"`
	Records  uint64 `json:"records"`
	Bytes    int64  `json:"bytes"`
	Findings uint64 `json:"findings"`
	// LagMS is how long ago the stream last delivered a record — the
	// operator's staleness signal for a client that connected and hung.
	LagMS int64 `json:"lag_ms"`
	// IngestLatency is this stream's sampled per-record processing
	// latency; DetectLatency its per-finding detection latency.
	IngestLatency obs.Snapshot `json:"ingest_latency"`
	DetectLatency obs.Snapshot `json:"detect_latency"`
}

// ShardMetricsSnapshot is one shard's row in the additive "shards"
// section of /metrics: the shard's own contribution to the folded
// totals, so an operator can spot a hot or wedged shard (events_dropped
// climbing on one row) without per-stream spelunking.
type ShardMetricsSnapshot struct {
	Shard         int          `json:"shard"`
	StreamsActive int64        `json:"streams_active"`
	StreamsTotal  uint64       `json:"streams_total"`
	Records       uint64       `json:"records"`
	Bytes         uint64       `json:"bytes"`
	EventsEmitted uint64       `json:"events_emitted"`
	EventsDropped uint64       `json:"events_dropped"`
	IngestLatency obs.Snapshot `json:"ingest_latency"`
}

// PersistSnapshot is the "persist" section of /metrics: the durable
// event path's fold across shards.
type PersistSnapshot struct {
	Appended uint64 `json:"appended"`
	Dropped  uint64 `json:"dropped"`
}

// SessionsSnapshot is the "sessions" section of /metrics: the resume
// protocol's lifecycle accounting. Parked is the current gauge;
// ParkedTotal/Resumed/Expired are cumulative; Checkpoints counts
// detector checkpoints made durable; Restored counts cold sessions
// rebuilt from the store at startup.
type SessionsSnapshot struct {
	Parked      int64  `json:"parked"`
	ParkedTotal uint64 `json:"parked_total"`
	Resumed     uint64 `json:"resumed"`
	Expired     uint64 `json:"expired"`
	Checkpoints uint64 `json:"checkpoints"`
	Restored    uint64 `json:"restored"`
}

// MetricsSnapshot is the JSON document served at /metrics.
type MetricsSnapshot struct {
	UptimeSec float64 `json:"uptime_sec"`

	StreamsActive   int64  `json:"streams_active"`
	StreamsTotal    uint64 `json:"streams_total"`
	StreamsRejected uint64 `json:"streams_rejected"`
	MaxStreams      int    `json:"max_streams"`

	Records       uint64  `json:"records"`
	Bytes         uint64  `json:"bytes"`
	BytesPerSec   float64 `json:"bytes_per_sec"`
	RecordsPerSec float64 `json:"records_per_sec"`
	EventsEmitted uint64  `json:"events_emitted"`
	// EventsDropped counts JSONL events lost to the per-write deadline —
	// the operator's signal that the event consumer is stalled.
	EventsDropped uint64 `json:"events_dropped"`

	// Persist accounts the durable event path (zero when no store is
	// configured): appended = events written to the embedded store,
	// dropped = events lost to a full persist queue or a store error.
	Persist PersistSnapshot `json:"persist"`

	// Sessions accounts the resume protocol's lifecycle (all zero when no
	// client uses session framing).
	Sessions SessionsSnapshot `json:"sessions"`

	Packets      map[string]uint64 `json:"packets"`
	FindingsKind map[string]uint64 `json:"findings_by_kind"`
	StreamEnds   map[string]uint64 `json:"stream_ends_by_status"`

	// IngestLatency is the aggregate sampled per-record processing
	// latency across all streams (scan completion through push, drain,
	// and finding emission); DetectLatency is the aggregate per-finding
	// detection latency (completing record read to finding event
	// queued). Quantiles in microseconds; see internal/obs. Both are
	// folds of the per-shard histograms (obs.Fold).
	IngestLatency obs.Snapshot `json:"ingest_latency"`
	DetectLatency obs.Snapshot `json:"detect_latency"`
	// Stages breaks the ingest hot path into its timed stages: scan,
	// push, drain, emit.
	Stages map[string]obs.Snapshot `json:"stages"`

	// Shards is the per-shard breakdown of the totals above (additive
	// section; the folded fields keep their pre-shard meaning).
	Shards []ShardMetricsSnapshot `json:"shards"`

	Streams []StreamMetrics `json:"streams"`
}

// Snapshot assembles a point-in-time view of the daemon's counters and
// every active stream, folding the per-shard counter blocks and
// histograms into the same aggregate fields the single-writer daemon
// served, plus the per-shard breakdown.
func (s *Server) Snapshot() MetricsSnapshot {
	up := time.Since(s.metrics.start).Seconds()
	snap := MetricsSnapshot{
		UptimeSec:       up,
		StreamsRejected: s.metrics.streamsRejected.Load(),
		MaxStreams:      s.cfg.MaxStreams,
		Packets:         map[string]uint64{"command": 0, "event": 0, "acl": 0, "sco": 0, "other": 0},
		FindingsKind:    map[string]uint64{},
		StreamEnds:      map[string]uint64{},
		Sessions: SessionsSnapshot{
			Parked:      s.sess.parked.Load(),
			ParkedTotal: s.sess.parkedTotal.Load(),
			Resumed:     s.sess.resumed.Load(),
			Expired:     s.sess.expired.Load(),
			Checkpoints: s.sess.checkpoints.Load(),
			Restored:    s.sess.restored.Load(),
		},
	}
	ingests := make([]*obs.Histogram, 0, len(s.shards))
	detects := make([]*obs.Histogram, 0, len(s.shards))
	scans := make([]*obs.Histogram, 0, len(s.shards))
	pushes := make([]*obs.Histogram, 0, len(s.shards))
	drains := make([]*obs.Histogram, 0, len(s.shards))
	emits := make([]*obs.Histogram, 0, len(s.shards))
	for _, sh := range s.shards {
		m := &sh.m
		snap.StreamsActive += m.streamsActive.Load()
		snap.StreamsTotal += m.streamsTotal.Load()
		snap.Records += m.records.Load()
		snap.Bytes += m.bytes.Load()
		snap.EventsEmitted += m.events.Load()
		snap.EventsDropped += m.eventsDropped.Load()
		snap.Persist.Appended += m.persistAppended.Load()
		snap.Persist.Dropped += m.persistDropped.Load()
		snap.Packets["command"] += m.pktCommand.Load()
		snap.Packets["event"] += m.pktEvent.Load()
		snap.Packets["acl"] += m.pktACL.Load()
		snap.Packets["sco"] += m.pktSCO.Load()
		snap.Packets["other"] += m.pktOther.Load()
		m.mu.Lock()
		for k, v := range m.findings {
			snap.FindingsKind[k] += v
		}
		for k, v := range m.endsByStatus {
			snap.StreamEnds[k] += v
		}
		m.mu.Unlock()
		ingests = append(ingests, &m.ingest)
		detects = append(detects, &m.detect)
		scans = append(scans, &m.stageScan)
		pushes = append(pushes, &m.stagePush)
		drains = append(drains, &m.stageDrain)
		emits = append(emits, &m.stageEmit)
		snap.Shards = append(snap.Shards, ShardMetricsSnapshot{
			Shard:         sh.idx,
			StreamsActive: m.streamsActive.Load(),
			StreamsTotal:  m.streamsTotal.Load(),
			Records:       m.records.Load(),
			Bytes:         m.bytes.Load(),
			EventsEmitted: m.events.Load(),
			EventsDropped: m.eventsDropped.Load(),
			IngestLatency: m.ingest.Snapshot(),
		})
	}
	snap.IngestLatency = obs.Fold(ingests...)
	snap.DetectLatency = obs.Fold(detects...)
	snap.Stages = map[string]obs.Snapshot{
		"scan":  obs.Fold(scans...),
		"push":  obs.Fold(pushes...),
		"drain": obs.Fold(drains...),
		"emit":  obs.Fold(emits...),
	}
	if up > 0 {
		snap.BytesPerSec = float64(snap.Bytes) / up
		snap.RecordsPerSec = float64(snap.Records) / up
	}

	now := time.Now()
	s.connMu.Lock()
	for _, st := range s.streams {
		snap.Streams = append(snap.Streams, StreamMetrics{
			ID:            st.id,
			Proto:         st.proto,
			Label:         st.label,
			Shard:         st.sh.idx,
			Records:       st.records.Load(),
			Bytes:         st.bytes.Load(),
			Findings:      st.findings.Load(),
			LagMS:         now.Sub(time.Unix(0, st.lastActive.Load())).Milliseconds(),
			IngestLatency: st.ingest.Snapshot(),
			DetectLatency: st.detect.Snapshot(),
		})
	}
	s.connMu.Unlock()
	sort.Slice(snap.Streams, func(i, j int) bool { return snap.Streams[i].ID < snap.Streams[j].ID })
	return snap
}

// httpHandler serves /metrics (JSON snapshot), /healthz (200 while
// serving, 503 once draining — the load balancer's cue to stop
// routing), and — when a store is configured — /query over the
// persisted series. With Config.EnablePprof it also mounts the standard
// /debug/pprof profiling mux, so an operator can grab a CPU or heap
// profile from a live daemon without redeploying.
//
// Every point-in-time endpoint sets Cache-Control: no-store (a cached
// health probe or metrics scrape is worse than none), and a response
// write failure is logged once per server rather than silently eaten —
// one line to say scrapes are failing, not one per flap.
func (s *Server) httpHandler() http.Handler {
	mux := http.NewServeMux()
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Cache-Control", "no-store")
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		s.noteWriteErr("/metrics", enc.Encode(s.Snapshot()))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Cache-Control", "no-store")
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		_, err := w.Write([]byte("ok\n"))
		s.noteWriteErr("/healthz", err)
	})
	mux.HandleFunc("/query", s.handleQuery)
	return mux
}

// noteWriteErr logs a response-write failure, once per server lifetime.
func (s *Server) noteWriteErr(path string, err error) {
	if err == nil {
		return
	}
	s.writeErrOnce.Do(func() {
		log.Printf("sentinel: %s response write failed: %v (further write errors suppressed)", path, err)
	})
}
