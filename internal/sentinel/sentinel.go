// Package sentinel is the live side of the forensic analyzer: a
// long-running ingestion server that accepts btsnoop streams over TCP
// and Unix sockets (plus arbitrary io.Readers for one-shot use), runs
// the incremental forensics.Detector per connection as bytes arrive,
// and emits findings as JSONL events the moment the session reducer
// produces them — while the capture is still being written, which is
// the only time the paper's attack signatures are actionable.
//
// Parity by construction: every stream is fed through the same Detector
// that forensics.Analyze wraps, so the events a live socket produces are
// identical (kind, frame, order) to a batch run over the same records.
//
// Memory is bounded by design, not by luck: each connection owns one
// batch pipeline — a snoop.BatchScanner feeding a fixed set of
// ingestRingDepth record batches through a pair of SPSC rings — and one
// Detector; JSONL events flow through a single bounded queue drained
// by one writer goroutine, and an enqueue that cannot progress within
// WriteTimeout drops the event (counted in events_dropped and surfaced
// on the stream-end line) instead of stalling ingestion — a wedged event
// consumer costs events, never detection; and MaxStreams caps the number
// of simultaneous connections. Peak memory is O(MaxStreams × ring of
// block buffers + EventBuffer), independent of stream length — the same
// discipline as the PR 2 batch pipeline's bounded window.
//
// Failure is classified, not swallowed: a stream that ends on a record
// boundary is "clean", one that dies mid-record is "truncated" (with the
// byte offset where it died), corrupt length framing is "bad-framing",
// and an idle client is "timeout" — so operators can tell a closed phone
// log from a mangled capture from a hung uploader.
package sentinel

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/forensics"
	"repro/internal/obs"
	"repro/internal/snoop"
	"repro/internal/spsc"
)

// Config tunes a Server. The zero value of every field selects a
// sensible default; listeners are only opened for the addresses set.
type Config struct {
	// TCPAddr is the btsnoop ingestion TCP address ("127.0.0.1:0" for an
	// ephemeral port). Empty disables TCP.
	TCPAddr string
	// UnixAddr is the ingestion Unix socket path. Empty disables it. A
	// stale socket file is removed on Start.
	UnixAddr string
	// HTTPAddr serves /metrics and /healthz. Empty disables HTTP.
	HTTPAddr string

	// MaxStreams caps concurrent ingestion streams; connections beyond
	// the cap are rejected immediately (with a stream-rejected event)
	// rather than queued, so a flood cannot build unbounded state.
	// Default 64.
	MaxStreams int
	// ReadTimeout is the per-read deadline on ingestion sockets: a
	// client that delivers no bytes for this long is classified as
	// "timeout" and dropped. Default 30s; <0 disables.
	ReadTimeout time.Duration

	// Output receives the JSONL event stream. Default io.Discard.
	Output io.Writer
	// WriteTimeout is the per-write deadline on the JSONL event path:
	// when the event queue is full and stays full this long, the event is
	// dropped (and counted) rather than blocking ingestion on a wedged
	// consumer. Default 5s; <0 blocks forever (the pre-deadline
	// backpressure behavior).
	WriteTimeout time.Duration
	// EventBuffer is the bounded event queue capacity between ingestion
	// and the writer goroutine. Default 256.
	EventBuffer int

	// EnablePprof mounts net/http/pprof's profiling handlers under
	// /debug/pprof on the HTTPAddr mux. Off by default: profiling
	// endpoints are operator tools, not something to expose wherever
	// /metrics is scraped.
	EnablePprof bool

	// OnStreamEnd, when set, observes every finished stream — the hook
	// tests and benchmarks use to wait for completion.
	OnStreamEnd func(StreamSummary)
}

func (c *Config) defaults() {
	if c.MaxStreams <= 0 {
		c.MaxStreams = 64
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.Output == nil {
		c.Output = io.Discard
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
}

// StreamSummary describes one completed ingestion stream.
type StreamSummary struct {
	ID       uint64
	Proto    string
	Label    string
	Records  int
	Bytes    int64
	Findings uint64
	// Status is the stream-end classification (StatusClean, ...).
	Status string
	// Offset is the byte position where the stream ended or died.
	Offset int64
	// EventsDropped counts this stream's JSONL events lost to the
	// per-write deadline — nonzero means the event consumer stalled and
	// the emitted record is incomplete (detection itself never stalls).
	EventsDropped uint64
	Err           error
}

// streamState is the live bookkeeping for one in-flight stream.
type streamState struct {
	id           uint64
	proto, label string
	conn         net.Conn // nil for reader-fed streams
	records      atomic.Uint64
	bytes        atomic.Int64
	findings     atomic.Uint64
	dropped      atomic.Uint64
	lastActive   atomic.Int64 // unix nanos of the last ingested record
	// ingest/detect mirror the aggregate latency histograms for this
	// stream alone (see metrics); fixed ~1.2 KiB per stream.
	ingest obs.Histogram
	detect obs.Histogram
}

// Server ingests btsnoop streams and emits detection events.
type Server struct {
	cfg     Config
	metrics *metrics

	// events is the bounded queue between ingestion and the single
	// writer goroutine; writerDone closes when the writer drains out.
	events     chan outLine
	writerDone chan struct{}

	lns     []net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	acceptWg sync.WaitGroup
	streamWg sync.WaitGroup

	connMu  sync.Mutex
	streams map[uint64]*streamState

	sem      chan struct{}
	nextID   atomic.Uint64
	draining atomic.Bool
	started  bool
}

// outLine is one unit on the event queue: a marshaled JSONL line, or a
// flush token (data nil) whose channel the writer closes once every line
// queued before it has been written.
type outLine struct {
	data  []byte
	flush chan struct{}
}

// New returns an unstarted Server. The event writer goroutine runs from
// New so reader-fed Ingest works without Start; Shutdown retires it.
func New(cfg Config) *Server {
	cfg.defaults()
	s := &Server{
		cfg:        cfg,
		metrics:    newMetrics(),
		streams:    make(map[uint64]*streamState),
		sem:        make(chan struct{}, cfg.MaxStreams),
		events:     make(chan outLine, cfg.EventBuffer),
		writerDone: make(chan struct{}),
	}
	go s.writeLoop()
	return s
}

// writeLoop is the single consumer of the event queue; it exits when
// Shutdown closes the queue.
func (s *Server) writeLoop() {
	defer close(s.writerDone)
	for l := range s.events {
		if l.flush != nil {
			close(l.flush)
			continue
		}
		_, _ = s.cfg.Output.Write(l.data)
		s.metrics.events.Add(1)
	}
}

// Start binds every configured listener and begins accepting streams.
// It returns immediately; ingestion runs on per-connection goroutines.
func (s *Server) Start() error {
	if s.started {
		return fmt.Errorf("sentinel: already started")
	}
	s.started = true
	if s.cfg.TCPAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.TCPAddr)
		if err != nil {
			return fmt.Errorf("sentinel: tcp listen: %w", err)
		}
		s.lns = append(s.lns, ln)
		s.acceptLoop(ln, "tcp")
	}
	if s.cfg.UnixAddr != "" {
		// A stale socket file from a crashed daemon would fail the bind.
		_ = os.Remove(s.cfg.UnixAddr)
		ln, err := net.Listen("unix", s.cfg.UnixAddr)
		if err != nil {
			s.closeListeners()
			return fmt.Errorf("sentinel: unix listen: %w", err)
		}
		s.lns = append(s.lns, ln)
		s.acceptLoop(ln, "unix")
	}
	if s.cfg.HTTPAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.HTTPAddr)
		if err != nil {
			s.closeListeners()
			return fmt.Errorf("sentinel: http listen: %w", err)
		}
		s.httpLn = ln
		s.httpSrv = &http.Server{Handler: s.httpHandler()}
		s.acceptWg.Add(1)
		go func() {
			defer s.acceptWg.Done()
			_ = s.httpSrv.Serve(ln) // returns on Shutdown/Close
		}()
	}
	return nil
}

// TCPAddr returns the bound ingestion TCP address, or "".
func (s *Server) TCPAddr() string { return s.lnAddr("tcp") }

// UnixAddr returns the bound ingestion Unix socket path, or "".
func (s *Server) UnixAddr() string { return s.lnAddr("unix") }

// HTTPAddr returns the bound metrics/health address, or "".
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

func (s *Server) lnAddr(network string) string {
	for _, ln := range s.lns {
		if ln.Addr().Network() == network {
			return ln.Addr().String()
		}
	}
	return ""
}

func (s *Server) closeListeners() {
	for _, ln := range s.lns {
		_ = ln.Close()
	}
}

// acceptLoop runs one listener. Each accepted connection either claims a
// stream slot immediately or is rejected — never queued.
func (s *Server) acceptLoop(ln net.Listener, proto string) {
	s.acceptWg.Add(1)
	go func() {
		defer s.acceptWg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed (Shutdown) or fatal
			}
			label := conn.RemoteAddr().String()
			if label == "" || label == "@" {
				label = proto // anonymous unix peers have no useful address
			}
			select {
			case s.sem <- struct{}{}:
			default:
				s.metrics.streamsRejected.Add(1)
				s.emit(nil, Event{
					Type: EventStreamRejected, Stream: s.nextID.Add(1),
					Proto: proto, Label: label,
					Error: fmt.Sprintf("stream cap %d reached", s.cfg.MaxStreams),
				})
				_ = conn.Close()
				continue
			}
			s.streamWg.Add(1)
			go func() {
				defer s.streamWg.Done()
				defer func() { <-s.sem }()
				defer conn.Close()
				st := &streamState{
					id: s.nextID.Add(1), proto: proto, label: label, conn: conn,
				}
				s.ingest(st, deadlineReader{conn: conn, timeout: s.cfg.ReadTimeout})
			}()
		}
	}()
}

// Ingest feeds one btsnoop stream from an arbitrary reader through the
// detector, blocking until it ends; the stdin one-shot path and tests
// use it directly, bypassing the listeners. It shares the slot cap with
// socket streams.
func (s *Server) Ingest(proto, label string, r io.Reader) StreamSummary {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	// Join the stream group so Shutdown cannot retire the event writer
	// out from under a reader-fed stream.
	s.streamWg.Add(1)
	defer s.streamWg.Done()
	st := &streamState{id: s.nextID.Add(1), proto: proto, label: label}
	return s.ingest(st, r)
}

// ingestRingDepth is how many record batches circulate between a
// stream's reader and detector goroutines: enough that the reader can
// buffer a block ahead while the detector drains one, small enough that
// MaxStreams concurrent pipelines stay cheap. The free ring is never
// closed and exactly ingestRingDepth batches circulate, so neither side
// can deadlock: the reader blocks only when the detector holds every
// batch (backpressure), and the detector always recycles before
// popping the next.
const ingestRingDepth = 4

// ingestBlockBytes is the scanner block size for live streams; see the
// comment at the NewBatchScannerSize call in ingest.
const ingestBlockBytes = 256 << 10

// ingestItem is one filled batch in flight from reader to detector:
// the kept records plus everything the detector side needs to account
// for the full swept span — the scan-completion clock (the anchor for
// ingest and detection latency), the stream offset and cumulative frame
// count after the batch, and the packet-type tally of every record the
// sweep classified (kept or rejected).
type ingestItem struct {
	b      *snoop.RecordBatch
	at     time.Time
	off    int64
	frames int
	tally  packetTally
}

// ingest is the per-stream core, a two-stage pipeline over a pair of
// SPSC rings. The reader goroutine owns the socket and the
// BatchScanner: one large read per block, one sweep that classifies
// every record in it — the keep callback tallies packet types and
// applies the forensics prefilter, so the ~97% of records the reducer
// ignores are never materialized — then a ring handoff of the kept
// records. The batch stays valid until the reader gets it back through
// the free ring, which is the scanner's reuse contract. The detector
// side (this goroutine) owns the Detector and all counters:
// records/bytes/packet tallies are bumped once per batch (covering the
// full swept span, rejected records included), findings are drained and
// emitted the moment the completing batch is pushed. Stage latency
// (scan, push, drain, emit) is observed per batch rather than sampled
// per record — the batch amortizes the clock reads that used to need a
// sampling stride.
//
// Liveness: ScanBatchKeep returns as soon as the sweep advances, even
// when every record in the block was rejected, so counters track a
// trickling phone log record by record and a one-record batch flows at
// one-record latency. A wedged event consumer still costs events, never
// detection: emit drops on its write deadline, and the reader at worst
// idles until the detector recycles a batch.
func (s *Server) ingest(st *streamState, r io.Reader) StreamSummary {
	s.metrics.streamsActive.Add(1)
	s.metrics.streamsTotal.Add(1)
	st.lastActive.Store(time.Now().UnixNano())
	s.connMu.Lock()
	s.streams[st.id] = st
	s.connMu.Unlock()
	defer func() {
		s.connMu.Lock()
		delete(s.streams, st.id)
		s.connMu.Unlock()
		s.metrics.streamsActive.Add(-1)
	}()

	s.emit(st, Event{Type: EventStreamStart, Stream: st.id, Proto: st.proto, Label: st.label})

	// 256 KiB blocks: a unix-socket read costs the same syscall whether
	// it returns 64 KiB or 256 KiB, and larger blocks mean fuller
	// batches and fewer ring handoffs per captured megabyte.
	sc := snoop.NewBatchScannerSize(r, ingestBlockBytes)
	det := forensics.NewDetector()
	m := s.metrics

	filled := spsc.New[ingestItem](ingestRingDepth)
	free := spsc.New[*snoop.RecordBatch](ingestRingDepth)
	for i := 0; i < ingestRingDepth; i++ {
		free.TryPush(&snoop.RecordBatch{})
	}

	// residual carries what the reader's final, failed scan call swept
	// before the stream ended (records ahead of a corrupt header, say):
	// written before readerDone.Done, read after Wait.
	var residual struct {
		frames int
		tally  packetTally
	}
	var readerDone sync.WaitGroup
	readerDone.Add(1)
	go func() {
		defer readerDone.Done()
		// Closing filled (after the final push) is what hands the stream
		// end to the detector loop; readerDone.Wait below then orders the
		// scanner's terminal Err/Offset before this goroutine reads them.
		defer filled.Close()
		var tally packetTally
		keep := func(raw []byte) bool {
			tally.count(raw)
			return forensics.RelevantRecord(raw)
		}
		for {
			b, ok := free.Pop()
			if !ok {
				return
			}
			tPre := time.Now()
			if !sc.ScanBatchKeep(b, keep) {
				residual.frames, residual.tally = sc.Frame(), tally
				return
			}
			now := time.Now()
			m.stageScan.Observe(now.Sub(tPre))
			st.lastActive.Store(now.UnixNano())
			filled.Push(ingestItem{b: b, at: now, off: sc.Offset(), frames: sc.Frame(), tally: tally})
			tally = packetTally{}
		}
	}()

	var prevOff int64
	var prevFrames int
	for {
		it, ok := filled.Pop()
		if !ok {
			break
		}
		det.PushKept(it.b.Frames, it.b.Records)
		tPush := time.Now()
		m.stagePush.Observe(tPush.Sub(it.at))
		n := uint64(it.frames - prevFrames)
		prevFrames = it.frames
		st.records.Add(n)
		m.records.Add(n)
		st.bytes.Store(it.off)
		m.bytes.Add(uint64(it.off - prevOff))
		prevOff = it.off
		m.addPacketTally(it.tally)
		evs := det.Drain()
		tDrain := time.Now()
		m.stageDrain.Observe(tDrain.Sub(tPush))
		if len(evs) > 0 {
			for _, ev := range evs {
				st.findings.Add(1)
				m.countFinding(ev.Finding.Kind)
				s.emit(st, findingEvent(st.id, ev))
			}
			tEnd := time.Now()
			m.stageEmit.Observe(tEnd.Sub(tDrain))
			// Detection latency: the completing batch was scanned at
			// it.at; its findings are on the event queue at tEnd.
			d := tEnd.Sub(it.at)
			for range evs {
				m.detect.Observe(d)
				st.detect.Observe(d)
			}
			m.ingest.Observe(tEnd.Sub(it.at))
			st.ingest.Observe(tEnd.Sub(it.at))
		} else {
			d := tDrain.Sub(it.at)
			m.ingest.Observe(d)
			st.ingest.Observe(d)
		}
		// Depth batches circulate and free is never closed, so recycling
		// cannot fail; the guard only drops the batch to the GC.
		free.TryPush(it.b)
	}
	readerDone.Wait()
	if residual.frames > prevFrames {
		n := uint64(residual.frames - prevFrames)
		st.records.Add(n)
		m.records.Add(n)
		m.addPacketTally(residual.tally)
	}

	err := sc.Err()
	status := ClassifyStreamError(err)
	s.metrics.countEnd(status)
	sum := StreamSummary{
		ID: st.id, Proto: st.proto, Label: st.label,
		Records:  sc.Frame(),
		Bytes:    sc.Offset(),
		Findings: det.Findings(),
		Status:   status,
		Offset:   sc.Offset(),
		Err:      err,
	}
	end := Event{
		Type: EventStreamEnd, Stream: st.id, Proto: st.proto, Label: st.label,
		Status: status, Offset: sum.Offset,
		Records: sum.Records, Bytes: sum.Bytes, Findings: sum.Findings,
		EventsDropped: st.dropped.Load(),
	}
	if err != nil {
		end.Error = err.Error()
	}
	s.emit(st, end)
	// Flush before OnStreamEnd so observers (tests, benchmarks) read a
	// complete JSONL stream; the dropped total then includes an end event
	// the deadline may have eaten.
	s.flushEvents()
	sum.EventsDropped = st.dropped.Load()
	if s.cfg.OnStreamEnd != nil {
		s.cfg.OnStreamEnd(sum)
	}
	return sum
}

// emit queues one JSONL event under the per-write deadline. st (nil for
// rejection events) receives the per-stream dropped count when the
// deadline expires.
func (s *Server) emit(st *streamState, ev Event) {
	line, err := json.Marshal(ev)
	if err != nil {
		return // Event marshals by construction; defensive only
	}
	if !s.enqueue(outLine{data: append(line, '\n')}) {
		s.metrics.eventsDropped.Add(1)
		if st != nil {
			st.dropped.Add(1)
		}
	}
}

// enqueue places one line (or flush token) on the event queue, waiting
// at most WriteTimeout when the queue is full. Reports whether the line
// was accepted.
func (s *Server) enqueue(l outLine) bool {
	select {
	case s.events <- l:
		return true
	default:
	}
	if s.cfg.WriteTimeout < 0 { // unbounded: classic backpressure
		s.events <- l
		return true
	}
	t := time.NewTimer(s.cfg.WriteTimeout)
	defer t.Stop()
	select {
	case s.events <- l:
		return true
	case <-t.C:
		return false
	}
}

// flushEvents waits (bounded by WriteTimeout) until every event queued
// so far has reached cfg.Output, so OnStreamEnd observers read a
// complete event stream. Reports whether the flush completed.
func (s *Server) flushEvents() bool {
	done := make(chan struct{})
	if !s.enqueue(outLine{flush: done}) {
		return false
	}
	if s.cfg.WriteTimeout < 0 {
		<-done
		return true
	}
	t := time.NewTimer(s.cfg.WriteTimeout)
	defer t.Stop()
	select {
	case <-done:
		return true
	case <-t.C:
		return false
	}
}

// Shutdown drains the server: stop accepting, let in-flight streams
// finish until ctx expires, then force-close whatever remains. Safe to
// call once; returns ctx.Err() if the drain deadline forced closes.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.closeListeners()
	if s.httpSrv != nil {
		_ = s.httpSrv.Shutdown(ctx)
	}

	done := make(chan struct{})
	go func() {
		s.streamWg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		// Force the stragglers: closing a connection makes its scanner
		// return a transport error, which ends the stream as "error".
		s.connMu.Lock()
		for _, st := range s.streams {
			if st.conn != nil {
				_ = st.conn.Close()
			}
		}
		s.connMu.Unlock()
		<-done
	}
	s.acceptWg.Wait()
	// All emitters are gone; retire the writer. A consumer wedged in
	// Write keeps the writer alive — bound the wait on ctx instead of
	// hanging Shutdown on it.
	close(s.events)
	select {
	case <-s.writerDone:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	if s.cfg.UnixAddr != "" {
		_ = os.Remove(s.cfg.UnixAddr)
	}
	return err
}

// deadlineReader arms a fresh read deadline before every read, so the
// timeout is per-delivery (an active stream never expires) rather than
// per-connection.
type deadlineReader struct {
	conn    net.Conn
	timeout time.Duration
}

func (r deadlineReader) Read(p []byte) (int, error) {
	if r.timeout > 0 {
		_ = r.conn.SetReadDeadline(time.Now().Add(r.timeout))
	}
	return r.conn.Read(p)
}
