// Package sentinel is the live side of the forensic analyzer: a
// long-running ingestion server that accepts btsnoop streams over TCP
// and Unix sockets (plus arbitrary io.Readers for one-shot use), runs
// the incremental forensics.Detector per connection as bytes arrive,
// and emits findings as JSONL events the moment the session reducer
// produces them — while the capture is still being written, which is
// the only time the paper's attack signatures are actionable.
//
// Parity by construction: every stream is fed through the same Detector
// that forensics.Analyze wraps, so the events a live socket produces are
// identical (kind, frame, order) to a batch run over the same records.
//
// Fan-in is sharded, not funneled: the server runs Config.Shards event
// shards (default GOMAXPROCS), each accepted stream is pinned to one
// shard by a hash of its stream id, and each shard owns a bounded event
// queue drained by its own writer goroutine. The writer append-encodes
// events into a reused buffer (no per-event json.Marshal allocation)
// and flushes whole buffers to the shared Output under one short-held
// lock — so N cores ingesting N streams never serialize on a single
// writer goroutine or bounce a global queue's cache lines, and the
// per-stream hot counters live in per-shard padded blocks folded only
// at Snapshot time. Per-stream event order is preserved (a stream's
// events enter one FIFO queue from one goroutine); cross-stream
// interleaving was never specified and remains so. With Shards=1 the
// event path collapses to exactly the pre-shard single-writer behavior.
//
// Memory is bounded by design, not by luck: each connection owns one
// batch pipeline — a snoop.BatchScanner feeding a fixed set of
// ingestRingDepth record batches through a pair of SPSC rings — and one
// Detector; JSONL events flow through the stream's shard queue, and an
// enqueue that cannot progress within WriteTimeout drops the event
// (counted in events_dropped, accounted per shard, and surfaced on the
// stream-end line) instead of stalling ingestion — a wedged shard
// writer costs that shard's events, never detection and never the other
// shards' events; and MaxStreams caps the number of simultaneous
// connections. Peak memory is O(MaxStreams × ring of block buffers +
// Shards × EventBuffer), independent of stream length — the same
// discipline as the PR 2 batch pipeline's bounded window.
//
// Failure is classified, not swallowed: a stream that ends on a record
// boundary is "clean", one that dies mid-record is "truncated" (with the
// byte offset where it died), corrupt length framing is "bad-framing",
// and an idle client is "timeout" — so operators can tell a closed phone
// log from a mangled capture from a hung uploader.
package sentinel

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/forensics"
	"repro/internal/obs"
	"repro/internal/snoop"
	"repro/internal/spsc"
	"repro/internal/tsdb"
)

// Config tunes a Server. The zero value of every field selects a
// sensible default; listeners are only opened for the addresses set.
type Config struct {
	// TCPAddr is the btsnoop ingestion TCP address ("127.0.0.1:0" for an
	// ephemeral port). Empty disables TCP.
	TCPAddr string
	// UnixAddr is the ingestion Unix socket path. Empty disables it. A
	// stale socket file is removed on Start.
	UnixAddr string
	// HTTPAddr serves /metrics and /healthz. Empty disables HTTP.
	HTTPAddr string

	// MaxStreams caps concurrent ingestion streams; connections beyond
	// the cap are rejected immediately (with a stream-rejected event)
	// rather than queued, so a flood cannot build unbounded state.
	// Default 64.
	MaxStreams int
	// ReadTimeout is the per-read deadline on ingestion sockets: a
	// client that delivers no bytes for this long is classified as
	// "timeout" and dropped. Default 30s; <0 disables.
	ReadTimeout time.Duration

	// Output receives the JSONL event stream. Default io.Discard.
	// Writes are whole shard buffers under one lock, so any io.Writer
	// works; lines from different shards interleave at line granularity.
	Output io.Writer
	// WriteTimeout is the per-write deadline on the JSONL event path:
	// when a shard's event queue is full and stays full this long, the
	// event is dropped (and counted) rather than blocking ingestion on a
	// wedged consumer. Default 5s; <0 blocks forever (the pre-deadline
	// backpressure behavior).
	WriteTimeout time.Duration
	// EventBuffer is the bounded event queue capacity per shard between
	// ingestion and that shard's writer goroutine. Default 256.
	EventBuffer int
	// Shards is the number of event/metrics shards. Streams are pinned
	// to shards by a hash of their stream id; each shard has its own
	// bounded queue, writer goroutine, and padded counter block. 0 (the
	// default) means GOMAXPROCS. Shards=1 reproduces the pre-shard
	// single-writer event path exactly.
	Shards int

	// EnablePprof mounts net/http/pprof's profiling handlers under
	// /debug/pprof on the HTTPAddr mux. Off by default: profiling
	// endpoints are operator tools, not something to expose wherever
	// /metrics is scraped.
	EnablePprof bool

	// Store, when set, persists finding and stream-end events (and
	// periodic histogram snapshots) to the embedded time-series store,
	// and mounts the /query API on the HTTP mux. Persistence rides a
	// per-shard bounded queue drained off the hot path: a slow disk
	// degrades to counted drops (the "persist" section of /metrics),
	// never blocked ingestion. The Server does not Close the store —
	// its owner does, after Shutdown.
	Store *tsdb.Store
	// PersistBuffer is the bounded persist queue capacity per shard
	// between the event path and that shard's persist goroutine.
	// Default 8192 — deep enough to absorb the finding burst batch
	// ingest can emit within a single scheduler quantum on a busy
	// one-core box (thousands of findings at >20M records/sec) while
	// still bounding queue memory to a few MB per shard.
	PersistBuffer int
	// MetricsEvery is the interval at which a cumulative metrics
	// snapshot is folded, diffed against the previous one, and the
	// delta persisted to the store's histogram series. Default 10s
	// when Store is set; <0 disables the snapshotter.
	MetricsEvery time.Duration
	// Timestamps stamps every event with the wall-clock emission time
	// (the JSONL "ts" field). Implied by Store (retention needs a wall
	// key); off by default so the one-shot batch paths stay
	// byte-deterministic across runs.
	Timestamps bool

	// ResumeGrace is how long a session-protocol stream survives the
	// death of its transport: the pipeline parks (scanner tail, detector
	// state, counters intact) and a reconnect with the same session id
	// within the window resumes it mid-capture. Cold entries restored
	// from checkpoints by RecoverSessions expire on the same clock.
	// Default 2m; <0 disables parking (a transport cut ends the stream
	// as "truncated", like the raw protocol).
	ResumeGrace time.Duration
	// CheckpointEvery is the capture-byte interval between periodic
	// detector checkpoints for session streams (persisted through the
	// shard persist queues; requires Store). Checkpoints also happen at
	// every park regardless of the interval. Default 8 MiB; <0 disables
	// the periodic ones.
	CheckpointEvery int64
	// AckEvery is the payload-byte interval between session-ack lines
	// written back to a session client. Acks are written synchronously on
	// the ingest reader goroutine, so each one costs the hot path a
	// deadline-set plus a socket write; the default of 4 MiB keeps that
	// overhead to a handful of writes per typical capture while still
	// bounding how much a resuming client has to resend. Lower it when
	// resume granularity matters more than ingest throughput.
	AckEvery int64
	// TenantQuota caps concurrent sessions per tenant, admitted ahead of
	// the global MaxStreams cap; 0 means unlimited. Sessions with no
	// tenant are never quota-limited.
	TenantQuota int
	// Watchdog, when >0, force-fails any stream whose detector stage
	// stays busy on a single batch longer than this: the stream ends as
	// "error", its goroutines are abandoned, and the daemon keeps
	// serving. 0 disables the watchdog.
	Watchdog time.Duration

	// OnStreamEnd, when set, observes every finished stream — the hook
	// tests and benchmarks use to wait for completion.
	OnStreamEnd func(StreamSummary)

	// beforeFlush, when set, runs on a shard's writer goroutine before
	// each buffer flush, outside the output lock. Test hook: stalling it
	// wedges exactly one shard without touching the shared Output.
	beforeFlush func(shard int)
	// beforePersist, when set, runs on a shard's persist goroutine
	// before each store append. Test hook: stalling it backs up exactly
	// one shard's persist queue without touching the store or the event
	// path.
	beforePersist func(shard int)
	// beforeBatch, when set, runs on a stream's detector goroutine
	// before each batch is pushed into the detector. Test hook: panicking
	// or blocking it exercises exactly one stream's failure containment
	// (panic isolation, watchdog) without touching the detector itself.
	beforeBatch func(stream uint64)
}

func (c *Config) defaults() {
	if c.MaxStreams <= 0 {
		c.MaxStreams = 64
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.Output == nil {
		c.Output = io.Discard
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.PersistBuffer <= 0 {
		c.PersistBuffer = 8192
	}
	if c.MetricsEvery == 0 {
		c.MetricsEvery = 10 * time.Second
	}
	if c.ResumeGrace == 0 {
		c.ResumeGrace = 2 * time.Minute
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 8 << 20
	}
	if c.AckEvery <= 0 {
		c.AckEvery = 4 << 20
	}
}

// StreamSummary describes one completed ingestion stream.
type StreamSummary struct {
	ID       uint64
	Proto    string
	Label    string
	Records  int
	Bytes    int64
	Findings uint64
	// Status is the stream-end classification (StatusClean, ...).
	Status string
	// Offset is the byte position where the stream ended or died.
	Offset int64
	// EventsDropped counts this stream's JSONL events lost to the
	// per-write deadline — nonzero means the event consumer stalled and
	// the emitted record is incomplete (detection itself never stalls).
	EventsDropped uint64
	Err           error
}

// streamState is the live bookkeeping for one in-flight stream.
type streamState struct {
	id           uint64
	proto, label string
	sh           *shard   // the event/metrics shard this stream is pinned to
	conn         net.Conn // nil for reader-fed streams (guarded by connMu)
	records      atomic.Uint64
	bytes        atomic.Int64
	findings     atomic.Uint64
	dropped      atomic.Uint64
	lastActive   atomic.Int64 // unix nanos of the last ingested record
	// session/tenant/ent bind a session-protocol stream to its entry in
	// the session table (empty/nil for raw streams). Immutable once the
	// pipeline starts.
	session string
	tenant  string
	ent     *sessionEntry
	// beat tracks the detector stage's busy window for the watchdog.
	beat obs.Beat
	// finalized is the once-guard on stream teardown: the natural finale
	// and the watchdog race through finalize, loser skips everything.
	finalized atomic.Bool
	// dead gates late emissions from abandoned goroutines after a
	// finalize: everything but the stream-end line is dropped.
	dead atomic.Bool
	// aborted marks a force-close by shutdown or the watchdog so the
	// finale classifies the stream "aborted" rather than "error".
	aborted atomic.Bool
	// release frees the stream's slot (semaphore + wait group), exactly
	// once — callable from the pipeline's own exit or from the watchdog
	// finalizing a wedged stream whose goroutines never exit.
	release func()
	// ingest/detect mirror the aggregate latency histograms for this
	// stream alone (see metrics); fixed ~1.2 KiB per stream.
	ingest obs.Histogram
	detect obs.Histogram
}

// Server ingests btsnoop streams and emits detection events.
type Server struct {
	cfg     Config
	metrics *metrics
	shards  []*shard

	// outMu serializes whole-buffer flushes from shard writers onto
	// cfg.Output — the only cross-shard synchronization on the event
	// path, held for exactly one Write per flushed batch.
	outMu sync.Mutex

	lns     []net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	acceptWg sync.WaitGroup
	streamWg sync.WaitGroup

	connMu  sync.Mutex
	streams map[uint64]*streamState

	sem      chan struct{}
	nextID   atomic.Uint64
	draining atomic.Bool
	started  bool

	// sessMu guards the session table and tenant admission counts; it is
	// never held while connMu is taken (and vice versa) — the two sides
	// communicate through channels and atomics, not nested locks.
	sessMu   sync.Mutex
	sessions map[string]*sessionEntry
	tenants  map[string]int
	sess     sessionCounters

	// wdStop/wdDone bracket the watchdog goroutine (Config.Watchdog>0).
	wdStop chan struct{}
	wdDone chan struct{}

	// snapStop/snapDone bracket the metrics snapshotter goroutine
	// (running only when a store and MetricsEvery are configured).
	snapStop chan struct{}
	snapDone chan struct{}

	// writeErrOnce gates the one-time log line for HTTP response write
	// failures — a flapping scraper should not be able to spam stderr.
	writeErrOnce sync.Once
}

// shardItem is one unit on a shard's event queue: an event to encode,
// or a flush token (flush non-nil) the writer closes once every event
// queued before it has been flushed to the output.
type shardItem struct {
	ev    Event
	flush chan struct{}
}

// shardFlushBytes caps how much a shard writer batches into its reused
// encode buffer before flushing mid-drain, bounding both buffer growth
// and how long a burst keeps other shards waiting on the output lock.
const shardFlushBytes = 64 << 10

// shard is one event/metrics shard: a bounded MPSC queue (every stream
// pinned here produces; one writer consumes), the writer's reused
// encode buffer, and the padded counter block this shard's streams bump
// instead of global atomics.
type shard struct {
	srv    *Server
	idx    int
	events chan shardItem
	done   chan struct{} // closed when the writer goroutine exits
	buf    []byte        // writer-owned; reused across batches
	m      shardMetrics

	// persist is the shard's bounded queue to its persist goroutine
	// (nil without a store). Same MPSC discipline as events, but the
	// overflow policy is an immediate counted drop — durability is
	// best-effort by design; ingestion never waits on a disk.
	persist chan persistItem
	pdone   chan struct{} // closed when the persist goroutine exits
}

// New returns an unstarted Server. The shard writer goroutines run from
// New so reader-fed Ingest works without Start; Shutdown retires them.
func New(cfg Config) *Server {
	cfg.defaults()
	s := &Server{
		cfg:      cfg,
		metrics:  newMetrics(),
		streams:  make(map[uint64]*streamState),
		sessions: make(map[string]*sessionEntry),
		tenants:  make(map[string]int),
		sem:      make(chan struct{}, cfg.MaxStreams),
		shards:   make([]*shard, cfg.Shards),
	}
	for i := range s.shards {
		sh := &shard{
			srv:    s,
			idx:    i,
			events: make(chan shardItem, cfg.EventBuffer),
			done:   make(chan struct{}),
		}
		sh.m.init()
		s.shards[i] = sh
		go sh.writeLoop()
		if cfg.Store != nil {
			sh.persist = make(chan persistItem, cfg.PersistBuffer)
			sh.pdone = make(chan struct{})
			go sh.persistLoop()
		}
	}
	if cfg.Store != nil && cfg.MetricsEvery > 0 {
		s.snapStop = make(chan struct{})
		s.snapDone = make(chan struct{})
		go s.metricsLoop()
	}
	if cfg.Watchdog > 0 {
		s.wdStop = make(chan struct{})
		s.wdDone = make(chan struct{})
		go s.watchdogLoop()
	}
	return s
}

// shardFor pins a stream id to a shard. The id is sequential, so it is
// mixed through a splitmix64-style finalizer first: consecutive streams
// land on well-spread shards and the pinning is stable for the life of
// the stream (every event a stream emits goes through one queue, which
// is what preserves its event order).
func (s *Server) shardFor(id uint64) *shard {
	x := id
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return s.shards[x%uint64(len(s.shards))]
}

// writeLoop is a shard's single consumer: it drains the queue greedily,
// append-encoding each event into the reused buffer, and flushes the
// whole buffer to the shared output under one short-held lock — once
// per drained batch (or per shardFlushBytes during a burst), not once
// per event. It exits when Shutdown closes the queue.
func (sh *shard) writeLoop() {
	defer close(sh.done)
	for it := range sh.events {
	drain:
		for {
			if it.flush != nil {
				// Everything queued before the token is in the buffer;
				// flush so the waiter observes its lines on the output.
				sh.flushBuf()
				close(it.flush)
			} else {
				sh.buf = it.ev.appendJSON(sh.buf)
				sh.buf = append(sh.buf, '\n')
				sh.m.events.Add(1)
				if len(sh.buf) >= shardFlushBytes {
					sh.flushBuf()
				}
			}
			select {
			case next, ok := <-sh.events:
				if !ok {
					sh.flushBuf()
					return
				}
				it = next
			default:
				break drain // queue momentarily empty; flush, block again
			}
		}
		sh.flushBuf()
	}
	sh.flushBuf()
}

// flushBuf writes the shard's buffered lines to the shared output and
// resets the buffer. The output lock is held for exactly the Write.
func (sh *shard) flushBuf() {
	if len(sh.buf) == 0 {
		return
	}
	if hook := sh.srv.cfg.beforeFlush; hook != nil {
		hook(sh.idx)
	}
	sh.srv.outMu.Lock()
	_, _ = sh.srv.cfg.Output.Write(sh.buf)
	sh.srv.outMu.Unlock()
	sh.buf = sh.buf[:0]
}

// enqueue places one item on the shard's queue, waiting at most
// WriteTimeout when the queue is full. Reports whether it was accepted.
// A send on the closed post-Shutdown queue (only reachable from a
// wedged stream's abandoned goroutines) counts as a drop, not a crash.
func (sh *shard) enqueue(it shardItem) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	select {
	case sh.events <- it:
		return true
	default:
	}
	if sh.srv.cfg.WriteTimeout < 0 { // unbounded: classic backpressure
		sh.events <- it
		return true
	}
	t := time.NewTimer(sh.srv.cfg.WriteTimeout)
	defer t.Stop()
	select {
	case sh.events <- it:
		return true
	case <-t.C:
		return false
	}
}

// Start binds every configured listener and begins accepting streams.
// It returns immediately; ingestion runs on per-connection goroutines.
func (s *Server) Start() error {
	if s.started {
		return fmt.Errorf("sentinel: already started")
	}
	s.started = true
	if s.cfg.TCPAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.TCPAddr)
		if err != nil {
			return fmt.Errorf("sentinel: tcp listen: %w", err)
		}
		s.lns = append(s.lns, ln)
		s.acceptLoop(ln, "tcp")
	}
	if s.cfg.UnixAddr != "" {
		// A stale socket file from a crashed daemon would fail the bind.
		_ = os.Remove(s.cfg.UnixAddr)
		ln, err := net.Listen("unix", s.cfg.UnixAddr)
		if err != nil {
			s.closeListeners()
			return fmt.Errorf("sentinel: unix listen: %w", err)
		}
		s.lns = append(s.lns, ln)
		s.acceptLoop(ln, "unix")
	}
	if s.cfg.HTTPAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.HTTPAddr)
		if err != nil {
			s.closeListeners()
			return fmt.Errorf("sentinel: http listen: %w", err)
		}
		s.httpLn = ln
		s.httpSrv = &http.Server{Handler: s.httpHandler()}
		s.acceptWg.Add(1)
		go func() {
			defer s.acceptWg.Done()
			_ = s.httpSrv.Serve(ln) // returns on Shutdown/Close
		}()
	}
	return nil
}

// TCPAddr returns the bound ingestion TCP address, or "".
func (s *Server) TCPAddr() string { return s.lnAddr("tcp") }

// UnixAddr returns the bound ingestion Unix socket path, or "".
func (s *Server) UnixAddr() string { return s.lnAddr("unix") }

// HTTPAddr returns the bound metrics/health address, or "".
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

func (s *Server) lnAddr(network string) string {
	for _, ln := range s.lns {
		if ln.Addr().Network() == network {
			return ln.Addr().String()
		}
	}
	return ""
}

func (s *Server) closeListeners() {
	for _, ln := range s.lns {
		_ = ln.Close()
	}
}

// acceptLoop runs one listener. Each accepted connection either claims a
// stream slot immediately or is rejected — never queued.
func (s *Server) acceptLoop(ln net.Listener, proto string) {
	s.acceptWg.Add(1)
	go func() {
		defer s.acceptWg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed (Shutdown) or fatal
			}
			label := conn.RemoteAddr().String()
			if label == "" || label == "@" {
				label = proto // anonymous unix peers have no useful address
			}
			select {
			case s.sem <- struct{}{}:
			default:
				s.metrics.streamsRejected.Add(1)
				s.emit(nil, Event{
					Type: EventStreamRejected, Stream: s.nextID.Add(1),
					Proto: proto, Label: label,
					Error: fmt.Sprintf("stream cap %d reached", s.cfg.MaxStreams),
				})
				_ = conn.Close()
				continue
			}
			s.streamWg.Add(1)
			go func() {
				st := &streamState{
					id: s.nextID.Add(1), proto: proto, label: label, conn: conn,
				}
				st.sh = s.shardFor(st.id)
				var once sync.Once
				st.release = func() {
					once.Do(func() { <-s.sem; s.streamWg.Done() })
				}
				// The slot is released through st.release, not a goroutine
				// defer: the watchdog must be able to free a wedged stream's
				// slot while its goroutines are still stuck. The defer here
				// only backstops panics on the teardown path itself.
				defer st.release()
				// Register before sniffing the protocol: the stream occupies
				// its slot (and shows in streams_active) from accept, even
				// while a slow client dribbles out the handshake.
				s.register(st)
				s.handleConn(st, conn)
			}()
		}
	}()
}

// register makes a stream visible to metrics, Shutdown's force-close,
// and the watchdog. Paired with unregister (finalize does it for
// streams that ran a pipeline).
func (s *Server) register(st *streamState) {
	st.lastActive.Store(time.Now().UnixNano())
	st.sh.m.streamsActive.Add(1)
	s.connMu.Lock()
	s.streams[st.id] = st
	s.connMu.Unlock()
}

func (s *Server) unregister(st *streamState) {
	s.connMu.Lock()
	delete(s.streams, st.id)
	s.connMu.Unlock()
	st.sh.m.streamsActive.Add(-1)
}

// Ingest feeds one btsnoop stream from an arbitrary reader through the
// detector, blocking until it ends; the stdin one-shot path and tests
// use it directly, bypassing the listeners. It shares the slot cap with
// socket streams.
func (s *Server) Ingest(proto, label string, r io.Reader) StreamSummary {
	s.sem <- struct{}{}
	// Join the stream group so Shutdown cannot retire the shard writers
	// out from under a reader-fed stream.
	s.streamWg.Add(1)
	st := &streamState{id: s.nextID.Add(1), proto: proto, label: label}
	st.sh = s.shardFor(st.id)
	var once sync.Once
	st.release = func() {
		once.Do(func() { <-s.sem; s.streamWg.Done() })
	}
	defer st.release()
	s.register(st)
	return s.runPipeline(st, r, nil)
}

// ingestRingDepth is how many record batches circulate between a
// stream's reader and detector goroutines: enough that the reader can
// buffer a block ahead while the detector drains one, small enough that
// MaxStreams concurrent pipelines stay cheap. The free ring is never
// closed and exactly ingestRingDepth batches circulate, so neither side
// can deadlock: the reader blocks only when the detector holds every
// batch (backpressure), and the detector always recycles before
// popping the next.
const ingestRingDepth = 4

// ingestBlockBytes is the scanner block size for live streams; see the
// comment at the NewBatchScannerSize call in ingest.
const ingestBlockBytes = 256 << 10

// ingestItem is one filled batch in flight from reader to detector:
// the kept records plus everything the detector side needs to account
// for the full swept span — the scan-completion clock (the anchor for
// ingest and detection latency), the stream offset and cumulative frame
// count after the batch, and the packet-type tally of every record the
// sweep classified (kept or rejected). An item with ckpt set carries no
// batch: it is a checkpoint marker the reader pushes when the stream
// parks, asking the detector side to snapshot its state at exactly this
// point in the record sequence (the FIFO ring makes the marker pop
// after every batch that preceded the park, so the snapshot and the
// offset agree by construction).
type ingestItem struct {
	b        *snoop.RecordBatch
	at       time.Time
	off      int64
	frames   int
	datalink uint32
	ckpt     bool
	tally    packetTally
}

// resumeState carries a restored pipeline position into runPipeline: a
// detector rebuilt from a checkpoint and the capture offset, frame
// count, datalink, and checkpoint sequence it was snapshotted at.
type resumeState struct {
	det      *forensics.Detector
	off      int64
	frames   int
	datalink uint32
	ckptSeq  uint64
}

// ingest is the per-stream core, a two-stage pipeline over a pair of
// SPSC rings. The reader goroutine owns the socket and the
// BatchScanner: one large read per block, one sweep that classifies
// every record in it — the keep callback tallies packet types and
// applies the forensics prefilter, so the ~97% of records the reducer
// ignores are never materialized — then a ring handoff of the kept
// records. The batch stays valid until the reader gets it back through
// the free ring, which is the scanner's reuse contract. The detector
// side (this goroutine) owns the Detector and all counters:
// records/bytes/packet tallies are bumped once per batch (covering the
// full swept span, rejected records included) into the stream's shard
// block — streams on different shards never touch the same cache
// lines — and findings are drained and emitted the moment the
// completing batch is pushed. Stage latency (scan, push, drain, emit)
// is observed per batch rather than sampled per record — the batch
// amortizes the clock reads that used to need a sampling stride.
//
// Liveness: ScanBatchKeep returns as soon as the sweep advances, even
// when every record in the block was rejected, so counters track a
// trickling phone log record by record and a one-record batch flows at
// one-record latency. A wedged event consumer still costs events, never
// detection: emit drops on its shard's write deadline, and the reader
// at worst idles until the detector recycles a batch.
func (s *Server) runPipeline(st *streamState, r io.Reader, res *resumeState) StreamSummary {
	sm := &st.sh.m
	sm.streamsTotal.Add(1)
	st.lastActive.Store(time.Now().UnixNano())

	// 256 KiB blocks: a unix-socket read costs the same syscall whether
	// it returns 64 KiB or 256 KiB, and larger blocks mean fuller
	// batches and fewer ring handoffs per captured megabyte.
	var sc *snoop.BatchScanner
	var det *forensics.Detector
	var prevOff int64   // last batch offset the detector consumed
	var prevFrames int  // last batch frame count the detector consumed
	var ckptSeq uint64  // last checkpoint sequence written for this session
	var lastCkpt int64  // capture offset of the last checkpoint
	if res != nil {
		// Resuming a checkpoint: the scanner starts mid-capture at the
		// snapshot position, the detector already holds the state, and the
		// stream's cumulative counters pick up from the snapshot — only
		// the shard counters stay this-process-only deltas.
		sc = snoop.ResumeBatchScanner(r, ingestBlockBytes, res.off, res.frames, res.datalink)
		det = res.det
		prevOff, prevFrames, ckptSeq, lastCkpt = res.off, res.frames, res.ckptSeq, res.off
		st.bytes.Store(res.off)
		st.records.Store(uint64(res.frames))
		st.findings.Store(det.Findings())
	} else {
		sc = snoop.NewBatchScannerSize(r, ingestBlockBytes)
		det = forensics.NewDetector()
	}

	start := Event{Type: EventStreamStart, Stream: st.id, Proto: st.proto, Label: st.label, Session: st.session}
	if res != nil {
		start.Offset = res.off
	}
	s.emit(st, start)

	filled := spsc.New[ingestItem](ingestRingDepth)
	free := spsc.New[*snoop.RecordBatch](ingestRingDepth)
	for i := 0; i < ingestRingDepth; i++ {
		free.TryPush(&snoop.RecordBatch{})
	}

	// A parking session reader pushes a checkpoint marker through the
	// batch ring from inside Read — it runs on the reader goroutine, the
	// ring's producer, so the push is legal and FIFO order puts the
	// marker exactly after the records that preceded the park.
	if sr, ok := r.(*sessionReader); ok {
		sr.onPark = func() {
			filled.Push(ingestItem{ckpt: true, at: time.Now(),
				off: sc.Offset(), frames: sc.Frame(), datalink: sc.Datalink()})
		}
	}

	// residual carries what the reader's final, failed scan call swept
	// before the stream ended (records ahead of a corrupt header, say):
	// written before readerDone.Done, read after Wait. rPanic rides the
	// same ordering.
	var residual struct {
		frames int
		tally  packetTally
	}
	var rPanic, detPanic any
	var readerDone sync.WaitGroup
	readerDone.Add(1)
	go func() {
		defer readerDone.Done()
		// Closing filled (after the final push) is what hands the stream
		// end to the detector loop; readerDone.Wait below then orders the
		// scanner's terminal Err/Offset before this goroutine reads them.
		defer filled.Close()
		// The recover defer runs before the two above (LIFO), so a panic
		// anywhere in the scan loop still closes the ring and releases the
		// waiter — the stream dies alone, the daemon does not.
		defer func() {
			if p := recover(); p != nil {
				rPanic = p
			}
		}()
		var tally packetTally
		keep := func(raw []byte) bool {
			tally.count(raw)
			return forensics.RelevantRecord(raw)
		}
		for {
			b, ok := free.Pop()
			if !ok {
				return
			}
			tPre := time.Now()
			if !sc.ScanBatchKeep(b, keep) {
				residual.frames, residual.tally = sc.Frame(), tally
				return
			}
			now := time.Now()
			sm.stageScan.Observe(now.Sub(tPre))
			st.lastActive.Store(now.UnixNano())
			filled.Push(ingestItem{b: b, at: now, off: sc.Offset(), frames: sc.Frame(),
				datalink: sc.Datalink(), tally: tally})
			tally = packetTally{}
		}
	}()

	// The detector loop runs in a recover bracket of its own: a panic in
	// the detector (or a test hook) is contained to this stream.
	func() {
		defer func() {
			if p := recover(); p != nil {
				detPanic = p
			}
		}()
		for {
			it, ok := filled.Pop()
			if !ok {
				return
			}
			st.beat.Start()
			if it.ckpt {
				// Park marker: snapshot the detector at the marker position.
				// Drain defensively first (SnapshotState requires it) and emit
				// anything that surfaces so no finding is ever lost to a park.
				if evs := det.Drain(); len(evs) > 0 {
					ts, tss := s.stamp()
					for _, ev := range evs {
						st.findings.Add(1)
						sm.countFinding(ev.Finding.Kind)
						s.emitStamped(st, findingEvent(st.id, ev), ts, tss)
					}
				}
				s.queueCheckpoint(st, det, it.off, it.frames, it.datalink, &ckptSeq, true)
				lastCkpt = it.off
				st.beat.Stop()
				continue
			}
			if hook := s.cfg.beforeBatch; hook != nil {
				hook(st.id)
			}
			det.PushKept(it.b.Frames, it.b.Records)
			tPush := time.Now()
			sm.stagePush.Observe(tPush.Sub(it.at))
			n := uint64(it.frames - prevFrames)
			prevFrames = it.frames
			st.records.Add(n)
			sm.records.Add(n)
			st.bytes.Store(it.off)
			sm.bytes.Add(uint64(it.off - prevOff))
			prevOff = it.off
			sm.addPacketTally(it.tally)
			evs := det.Drain()
			tDrain := time.Now()
			sm.stageDrain.Observe(tDrain.Sub(tPush))
			if len(evs) > 0 {
				// One wall-clock read and one RFC3339Nano format for the whole
				// drained burst: findings surfaced by the same batch share an
				// emission instant, and per-event formatting is measurable at
				// block-scan throughput (thousands of findings per quantum).
				ts, tss := s.stamp()
				for _, ev := range evs {
					st.findings.Add(1)
					sm.countFinding(ev.Finding.Kind)
					s.emitStamped(st, findingEvent(st.id, ev), ts, tss)
				}
				tEnd := time.Now()
				sm.stageEmit.Observe(tEnd.Sub(tDrain))
				// Detection latency: the completing batch was scanned at
				// it.at; its findings are on the event queue at tEnd.
				d := tEnd.Sub(it.at)
				for range evs {
					sm.detect.Observe(d)
					st.detect.Observe(d)
				}
				sm.ingest.Observe(tEnd.Sub(it.at))
				st.ingest.Observe(tEnd.Sub(it.at))
			} else {
				d := tDrain.Sub(it.at)
				sm.ingest.Observe(d)
				st.ingest.Observe(d)
			}
			// Periodic checkpoint: the detector is drained (just above), so
			// the snapshot is legal; non-blocking — a full persist queue
			// skips this interval rather than stalling detection.
			if st.session != "" && st.sh.persist != nil && s.cfg.CheckpointEvery > 0 &&
				it.off-lastCkpt >= s.cfg.CheckpointEvery {
				s.queueCheckpoint(st, det, it.off, it.frames, it.datalink, &ckptSeq, false)
				lastCkpt = it.off
			}
			st.beat.Stop()
			// Depth batches circulate and free is never closed, so recycling
			// cannot fail; the guard only drops the batch to the GC.
			free.TryPush(it.b)
		}
	}()
	if detPanic != nil {
		// The detector died mid-stream; the reader may be blocked on
		// free.Pop, on filled.Push, or parked waiting for a reconnect.
		// Close the free ring, kill the transport, abort the session, and
		// drain the filled ring until the reader's defer closes it.
		free.Close()
		s.connMu.Lock()
		if st.conn != nil {
			_ = st.conn.Close()
		}
		s.connMu.Unlock()
		if st.ent != nil {
			s.sessMu.Lock()
			abortEntryLocked(st.ent)
			s.sessMu.Unlock()
		}
		for {
			if _, ok := filled.Pop(); !ok {
				break
			}
		}
	}
	readerDone.Wait()
	if residual.frames > prevFrames {
		n := uint64(residual.frames - prevFrames)
		st.records.Add(n)
		sm.records.Add(n)
		sm.addPacketTally(residual.tally)
	}

	err := sc.Err()
	records := sc.Frame()
	offset := sc.Offset()
	var status string
	endErr := err
	switch {
	case detPanic != nil:
		// The detector's position, not the scanner's: records past prevOff
		// were swept but never analyzed.
		status = StatusPanic
		records, offset = prevFrames, prevOff
		endErr = fmt.Errorf("panic: %v", detPanic)
	case rPanic != nil:
		status = StatusPanic
		endErr = fmt.Errorf("panic: %v", rPanic)
	case err != nil && st.aborted.Load():
		// Force-closed by shutdown after the drain grace: the raw
		// transport error (use of closed connection) says "error", but the
		// operator needs to see "aborted, checkpointed, resumable".
		status = StatusAborted
		if !errors.Is(err, ErrAborted) {
			endErr = fmt.Errorf("%w: %v", ErrAborted, err)
		}
	default:
		status = ClassifyStreamError(err)
	}

	// Final checkpoint bookkeeping for session streams. Skipped entirely
	// if the watchdog already finalized this stream — a wedged detector's
	// state is suspect, so the last periodic checkpoint stays the durable
	// resume point.
	if st.session != "" && st.sh.persist != nil && !st.finalized.Load() {
		switch {
		case status == StatusAborted:
			// Shutdown mid-stream: persist the detector as of the last
			// consumed batch so a restarted daemon resumes this session.
			s.queueCheckpoint(st, det, prevOff, prevFrames, sc.Datalink(), &ckptSeq, true)
		case ckptSeq > 0:
			// Any other terminal status with checkpoints on disk gets a
			// tombstone so a restart does not resurrect a finished stream.
			d := &ckptDoc{Session: st.session, Tenant: st.tenant, Stream: st.id,
				Seq: ckptSeq + 1, Offset: prevOff, Frames: prevFrames,
				Datalink: sc.Datalink(), Done: true}
			st.sh.tryPersist(persistItem{ckpt: d, ts: time.Now().UnixNano()}, true)
		}
	}

	sum := StreamSummary{
		ID: st.id, Proto: st.proto, Label: st.label,
		Records:  records,
		Bytes:    offset,
		Findings: det.Findings(),
		Status:   status,
		Offset:   offset,
		Err:      endErr,
	}
	end := Event{
		Type: EventStreamEnd, Stream: st.id, Proto: st.proto, Label: st.label,
		Session: st.session, Status: status, Offset: sum.Offset,
		Records: sum.Records, Bytes: sum.Bytes, Findings: sum.Findings,
		EventsDropped: st.dropped.Load(),
	}
	if endErr != nil {
		end.Error = endErr.Error()
	}
	s.finalize(st, &sum, end)
	return sum
}

// finalize is the once-only teardown every stream end funnels through:
// the natural pipeline finale and the watchdog race here, and the CAS
// picks exactly one winner to emit the stream-end line, count the
// status, drop the session entry, unregister, and release the slot. The
// loser (a wedged pipeline that eventually unwedges, or a finale racing
// the watchdog) skips everything — its late events are dropped by the
// dead-stream guard in emitStamped.
func (s *Server) finalize(st *streamState, sum *StreamSummary, end Event) bool {
	if !st.finalized.CompareAndSwap(false, true) {
		return false
	}
	st.dead.Store(true)
	st.sh.m.countEnd(sum.Status)
	s.emit(st, end)
	// Flush before OnStreamEnd so observers (tests, benchmarks) read a
	// complete JSONL stream; the dropped total then includes an end event
	// the deadline may have eaten.
	s.flushEvents(st.sh)
	sum.EventsDropped = st.dropped.Load()
	if st.ent != nil {
		s.sessMu.Lock()
		s.dropSessionLocked(st.ent)
		s.sessMu.Unlock()
	}
	s.unregister(st)
	s.connMu.Lock()
	if st.conn != nil {
		_ = st.conn.Close()
		st.conn = nil
	}
	s.connMu.Unlock()
	if st.release != nil {
		st.release()
	}
	if s.cfg.OnStreamEnd != nil {
		s.cfg.OnStreamEnd(*sum)
	}
	return true
}

// emit queues one JSONL event on the stream's shard under the per-write
// deadline. st (nil for rejection events, which are pinned by event
// stream id) receives the per-stream dropped count when the deadline
// expires. The event itself is encoded by the shard writer, off the
// ingest hot path.
//
// When timestamps are on (explicitly, or implied by a store) the event
// is stamped here — once, so the JSONL line and the persisted frame
// carry the same instant. Finding and stream-end events additionally
// fan out to the shard's persist queue; a full queue is an immediate
// counted drop, never a stall (the JSONL line still goes out — the
// durable copy is the best-effort one).
func (s *Server) emit(st *streamState, ev Event) {
	ts, tss := s.stamp()
	s.emitStamped(st, ev, ts, tss)
}

// stamp reads the wall clock once and returns the frame timestamp and
// its RFC3339Nano rendering, or zero values when timestamps are off.
// Formatting is the expensive half (~0.5µs plus an allocation), so the
// ingest drain loop calls this once per finding batch and shares the
// string across the burst rather than paying it per event.
func (s *Server) stamp() (int64, string) {
	if !s.cfg.Timestamps && s.cfg.Store == nil {
		return 0, ""
	}
	now := time.Now()
	return now.UnixNano(), now.UTC().Format(time.RFC3339Nano)
}

// emitStamped is emit with the timestamp pair already computed; ts and
// tss must come from the same stamp() call so the JSONL line and the
// persisted frame carry the same instant.
func (s *Server) emitStamped(st *streamState, ev Event, ts int64, tss string) {
	// A finalized stream's abandoned goroutines (wedged detector that
	// later unwedges) may still try to emit; everything but the end line
	// the finalizer itself wrote is dropped silently.
	if st != nil && st.dead.Load() && ev.Type != EventStreamEnd {
		return
	}
	ev.TS = tss
	sh := s.shardFor(ev.Stream)
	if st != nil {
		sh = st.sh
	}
	if !sh.enqueue(shardItem{ev: ev}) {
		sh.m.eventsDropped.Add(1)
		if st != nil {
			st.dropped.Add(1)
		}
	}
	if sh.persist != nil && (ev.Type == EventFinding || ev.Type == EventStreamEnd) {
		select {
		case sh.persist <- persistItem{ev: ev, ts: ts}:
		default:
			sh.m.persistDropped.Add(1)
		}
	}
}

// flushEvents waits (bounded by WriteTimeout) until every event queued
// on the shard so far has reached cfg.Output, so OnStreamEnd observers
// read a complete event stream. Reports whether the flush completed.
func (s *Server) flushEvents(sh *shard) bool {
	done := make(chan struct{})
	if !sh.enqueue(shardItem{flush: done}) {
		return false
	}
	if s.cfg.WriteTimeout < 0 {
		<-done
		return true
	}
	t := time.NewTimer(s.cfg.WriteTimeout)
	defer t.Stop()
	select {
	case <-done:
		return true
	case <-t.C:
		return false
	}
}

// Shutdown drains the server: stop accepting, abort parked and cold
// sessions (live pipelines checkpoint and end "aborted"), let in-flight
// streams finish until ctx expires, then force-close whatever remains.
// When Shutdown returns the store is no longer touched — its owner can
// close it. Safe to call once; returns ctx.Err() if the drain deadline
// forced closes.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.closeListeners()
	if s.httpSrv != nil {
		_ = s.httpSrv.Shutdown(ctx)
	}
	// Wake every parked stream (they end "aborted" after a final
	// checkpoint) and drop cold entries — their checkpoints are already
	// durable, a restarted daemon rebuilds them.
	s.abortSessions()

	done := make(chan struct{})
	go func() {
		s.streamWg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		// Force the stragglers: closing a connection makes its scanner
		// return a transport error, and the aborted mark turns the raw
		// "error" classification into "aborted" (checkpointed, resumable).
		s.connMu.Lock()
		for _, st := range s.streams {
			st.aborted.Store(true)
			if st.conn != nil {
				_ = st.conn.Close()
			}
		}
		s.connMu.Unlock()
		<-done
	}
	s.acceptWg.Wait()
	if s.wdStop != nil {
		close(s.wdStop)
		<-s.wdDone
	}
	// Persist queues retire before the event queues close: the persist
	// loop enqueues checkpoint events onto the event queues (still open
	// here), so that send is always legal; and the waits are
	// unconditional — persistLoop never blocks on anything unbounded
	// once the emitters are gone, and a Shutdown return must guarantee
	// the store is quiescent (the caller closes it next).
	if s.cfg.Store != nil {
		for _, sh := range s.shards {
			if sh.persist != nil {
				close(sh.persist)
			}
		}
		for _, sh := range s.shards {
			if sh.pdone != nil {
				<-sh.pdone
			}
		}
		if s.snapStop != nil {
			close(s.snapStop)
			<-s.snapDone
		}
	}
	// All emitters are gone; retire the shard writers. A consumer wedged
	// in Write keeps a writer alive — bound the wait (on a fresh short
	// timeout if ctx already expired forcing the closes above) instead of
	// hanging Shutdown on it.
	for _, sh := range s.shards {
		close(sh.events)
	}
	evCtx := ctx
	if ctx.Err() != nil {
		var cancel context.CancelFunc
		evCtx, cancel = context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
	}
	for _, sh := range s.shards {
		select {
		case <-sh.done:
		case <-evCtx.Done():
			if err == nil {
				err = evCtx.Err()
			}
		}
	}
	if s.cfg.UnixAddr != "" {
		_ = os.Remove(s.cfg.UnixAddr)
	}
	return err
}

// deadlineReader arms a fresh read deadline before every read, so the
// timeout is per-delivery (an active stream never expires) rather than
// per-connection.
type deadlineReader struct {
	conn    net.Conn
	timeout time.Duration
}

func (r deadlineReader) Read(p []byte) (int, error) {
	if r.timeout > 0 {
		_ = r.conn.SetReadDeadline(time.Now().Add(r.timeout))
	}
	return r.conn.Read(p)
}
