package sentinel

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"testing"
	"time"
	"unicode/utf8"
)

// encoderFixtures is every Event type with its fields populated the way
// the daemon populates them, plus adversarial string content: JSON
// metacharacters, control bytes (including \b and \f, which
// encoding/json renders with short escapes), HTML-escaped <>&, invalid
// UTF-8 (rendered as an escaped replacement char), the JS line
// separators U+2028/U+2029, multi-byte runes, and negative numbers.
var encoderFixtures = []Event{
	{Type: EventStreamStart, Stream: 1, Proto: "tcp", Label: "127.0.0.1:52113"},
	{Type: EventStreamStart, Stream: 18446744073709551615, Proto: "unix", Label: "unix",
		TS: "2026-08-08T12:00:00.000000001Z"},
	{
		Type: EventFinding, Stream: 7, Seq: 3, Frame: 4521,
		Kind: "link-key-extraction", Peer: "AA:BB:CC:DD:EE:FF",
		Detail:    "HCI_Read_Stored_Link_Key burst",
		CaptureTS: "2026-08-08T12:00:00.123456789Z",
		TS:        "2026-08-08T12:00:00.223456789Z",
	},
	{
		Type: EventStreamEnd, Stream: 7, Proto: "tcp", Label: "phone",
		Session: "phone-7",
		TS:      "2026-08-08T12:00:01Z",
		Status:  StatusClean, Offset: 52095345, Records: 1000000,
		Bytes: 52095345, Findings: 41, EventsDropped: 2,
	},
	{
		Type: EventStreamEnd, Stream: 9, Status: StatusBadFraming,
		Offset: -1, Records: -1, Bytes: -9, // negative ints through AppendInt
		Error: "snoop: bad framing at offset 16",
	},
	{Type: EventStreamRejected, Stream: 65, Proto: "tcp", Label: "10.0.0.9:1", Error: "stream cap 64 reached"},
	{Type: EventSessionParked, Stream: 12, Session: "weird \"session\" \xffid", Offset: 4096},
	{Type: EventSessionResumed, Stream: 12, Session: "phone-12", Label: "127.0.0.1:9", Offset: 4096},
	{Type: EventSessionExpired, Stream: 12, Session: "phone-12", Offset: 4096},
	{Type: EventCheckpoint, Stream: 12, Session: "phone-12", Offset: 8 << 20, Frame: 150000},
	{Type: EventStreamEnd, Stream: 13, Session: "s", Status: StatusPanic,
		Offset: 77, Error: "panic: index out of range"},
	{Type: EventStreamEnd, Stream: 14, Session: "s2", Status: StatusAborted, Offset: 99},
	{Type: EventFinding, Stream: 2, Seq: 1, Frame: 1, Kind: "quote\"back\\slash", Detail: "tabs\tand\nnewlines\rhere",
		TS: "ts with \"quotes\" and \xffbad bytes"},
	{Type: EventFinding, Stream: 2, Seq: 2, Frame: 2, Kind: "ctrl\b\f\x00\x1f", Detail: "html <b>&amp;</b>"},
	{Type: EventFinding, Stream: 2, Seq: 3, Frame: 3, Kind: "bad\xffutf8\xc3(", Detail: "seps\u2028and\u2029here"},
	{Type: EventFinding, Stream: 2, Seq: 4, Frame: 4, Kind: "日本語 ünïcode ✓", Detail: "� literal replacement"},
	{Type: EventStreamEnd, Stream: 3}, // everything omitempty at once
}

// TestAppendJSONMatchesEncodingJSON pins the append-style encoder's
// contract: for every Event the daemon can emit — every type, every
// field, every escaping edge case — appendJSON must produce the exact
// bytes json.Marshal produces, and those bytes must round-trip back to
// the same Event. The shard writers rely on this identity to replace
// per-event json.Marshal without changing one byte of the JSONL stream.
func TestAppendJSONMatchesEncodingJSON(t *testing.T) {
	check := func(ev Event) {
		t.Helper()
		want, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("json.Marshal(%+v): %v", ev, err)
		}
		got := ev.appendJSON(nil)
		if !bytes.Equal(got, want) {
			t.Fatalf("appendJSON diverges from encoding/json:\nevent: %+v\n got: %s\nwant: %s", ev, got, want)
		}
		// Reused-buffer discipline: appending after existing content must
		// not disturb it (the shard writer encodes into a shared buffer).
		buf := append([]byte("prefix|"), ev.appendJSON(nil)...)
		if !bytes.HasPrefix(buf, []byte("prefix|")) || !bytes.HasSuffix(buf, want) {
			t.Fatalf("appendJSON corrupted the shared buffer: %s", buf)
		}
		var back Event
		if err := json.Unmarshal(got, &back); err != nil {
			t.Fatalf("round-trip unmarshal of %s: %v", got, err)
		}
		// Invalid UTF-8 is replaced during encoding (one U+FFFD per bad
		// byte, exactly as encoding/json does), so the round-trip target
		// is the sanitized event, not the raw one.
		if wantBack := sanitizeEvent(ev); back != wantBack {
			t.Fatalf("round-trip changed the event:\n got:  %+v\n want: %+v", back, wantBack)
		}
	}
	for _, ev := range encoderFixtures {
		check(ev)
	}

	// Randomized sweep over nasty strings and extreme numbers.
	rng := rand.New(rand.NewSource(7))
	alphabet := []string{
		"a", "Z", "0", " ", `"`, `\`, "<", ">", "&", "\n", "\r", "\t", "\b", "\f",
		"\x00", "\x1f", "\x7f", "\xff", "\xc3", "\xc3\xa9", "\u2028", "\u2029",
		"語", "✓", "�",
	}
	randStr := func() string {
		var b []byte
		for n := rng.Intn(20); n > 0; n-- {
			b = append(b, alphabet[rng.Intn(len(alphabet))]...)
		}
		return string(b)
	}
	for i := 0; i < 2000; i++ {
		check(Event{
			Type:   randStr(),
			Stream: rng.Uint64(),
			Proto:  randStr(), Label: randStr(), Session: randStr(), TS: randStr(),
			Seq: rng.Uint64() >> uint(rng.Intn(64)), Frame: int(int32(rng.Uint32())),
			Kind: randStr(), Peer: randStr(), Detail: randStr(), CaptureTS: randStr(),
			Status: randStr(), Offset: int64(rng.Uint64()), Records: int(int32(rng.Uint32())),
			Bytes: int64(rng.Uint64()), Findings: rng.Uint64(), EventsDropped: rng.Uint64(),
			Error: randStr(),
		})
	}
}

// sanitizeEvent maps every string field the way JSON encoding does:
// each invalid UTF-8 byte becomes one U+FFFD replacement character.
func sanitizeEvent(ev Event) Event {
	fix := func(s string) string {
		if utf8.ValidString(s) {
			return s
		}
		var b []byte
		for i := 0; i < len(s); {
			r, size := utf8.DecodeRuneInString(s[i:])
			if r == utf8.RuneError && size == 1 {
				b = append(b, "�"...)
			} else {
				b = append(b, s[i:i+size]...)
			}
			i += size
		}
		return string(b)
	}
	ev.Type = fix(ev.Type)
	ev.Proto = fix(ev.Proto)
	ev.Label = fix(ev.Label)
	ev.Session = fix(ev.Session)
	ev.TS = fix(ev.TS)
	ev.Kind = fix(ev.Kind)
	ev.Peer = fix(ev.Peer)
	ev.Detail = fix(ev.Detail)
	ev.CaptureTS = fix(ev.CaptureTS)
	ev.Status = fix(ev.Status)
	ev.Error = fix(ev.Error)
	return ev
}

// TestShardPinningStableAndSpread pins shardFor: the same stream id
// always lands on the same shard (pinning is what preserves per-stream
// event order), and sequential ids — which is what nextID hands out —
// spread across every shard rather than clumping.
func TestShardPinningStableAndSpread(t *testing.T) {
	s := New(Config{Shards: 8})
	defer shutdown(t, s)
	hits := make([]int, len(s.shards))
	for id := uint64(1); id <= 4096; id++ {
		sh := s.shardFor(id)
		if again := s.shardFor(id); again != sh {
			t.Fatalf("shardFor(%d) not stable", id)
		}
		hits[sh.idx]++
	}
	for idx, n := range hits {
		// Fair share is 512; insist every shard carries a real load.
		if n < 256 {
			t.Fatalf("shard %d got %d of 4096 sequential ids — hash not spreading: %v", idx, n, hits)
		}
	}
}

// TestShardsOneReproducesSingleWriterOutput is the -shards 1
// compatibility pin: with one shard, a single stream's JSONL output
// must be exactly the pre-shard single-writer rendering — each line the
// json.Marshal encoding of its event, one line per event, in emit
// order, stable across runs.
func TestShardsOneReproducesSingleWriterOutput(t *testing.T) {
	capture := synthCapture(t, 2000, 11)
	run := func() []byte {
		var out syncBuffer
		s := New(Config{Shards: 1, Output: &out})
		defer shutdown(t, s)
		sum := s.Ingest("test", "compat", bytes.NewReader(capture))
		if sum.Status != StatusClean || sum.EventsDropped != 0 {
			t.Fatalf("stream: %+v", sum)
		}
		return out.Lines()
	}
	first := run()
	if !bytes.Equal(first, run()) {
		t.Fatal("shards=1 output not stable across identical runs")
	}

	// Rebuild the byte stream the PR 6 writer would have produced —
	// json.Marshal per parsed event, in order — and demand identity.
	evs := parseEvents(t, first)
	if len(evs) < 3 {
		t.Fatalf("fixture produced only %d events", len(evs))
	}
	if evs[0].Type != EventStreamStart || evs[len(evs)-1].Type != EventStreamEnd {
		t.Fatalf("event envelope wrong: first %q last %q", evs[0].Type, evs[len(evs)-1].Type)
	}
	var want bytes.Buffer
	for _, ev := range evs {
		line, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		want.Write(line)
		want.WriteByte('\n')
	}
	if !bytes.Equal(first, want.Bytes()) {
		t.Fatal("shards=1 output is not the per-event json.Marshal rendering")
	}
}

// TestWedgedShardDropsOnlyItsOwnStreams wedges exactly one shard writer
// (via the beforeFlush hook, which runs outside the output lock) and
// proves the blast radius: streams pinned to the wedged shard drop
// events on the write deadline, streams on the other shard lose
// nothing and their full event stream reaches the output while the
// wedged shard is still stalled.
func TestWedgedShardDropsOnlyItsOwnStreams(t *testing.T) {
	release := make(chan struct{})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	var out syncBuffer
	var wedgedIdx int // set before any stream runs; read by the hook
	s := New(Config{
		Shards:       2,
		EventBuffer:  2,
		WriteTimeout: 50 * time.Millisecond,
		Output:       &out,
		beforeFlush: func(shard int) {
			if shard == wedgedIdx {
				<-release
			}
		},
	})
	defer shutdown(t, s)

	// Ingest assigns sequential ids; the first stream's shard is the one
	// we wedge, then we walk ids until one lands on the other shard.
	wedgedIdx = s.shardFor(1).idx
	capture := synthCapture(t, 5000, 3)

	wedged := s.Ingest("test", "wedged", bytes.NewReader(capture))
	if wedged.Status != StatusClean || wedged.Records != 5000 {
		t.Fatalf("ingestion must complete despite its wedged shard: %+v", wedged)
	}
	if wedged.EventsDropped == 0 {
		t.Fatal("wedged shard's stream reported no dropped events")
	}

	// Streams that hash onto the wedged shard also drop (cheaply: tiny
	// input, few events); the first to land on the healthy shard must
	// come through untouched.
	var healthy StreamSummary
	for {
		nextID := s.nextID.Load() + 1
		if s.shardFor(nextID).idx == wedgedIdx {
			_ = s.Ingest("test", "burn", bytes.NewReader(nil))
			continue
		}
		healthy = s.Ingest("test", "healthy", bytes.NewReader(capture))
		break
	}
	if healthy.Status != StatusClean || healthy.Records != 5000 {
		t.Fatalf("healthy-shard stream: %+v", healthy)
	}
	if healthy.EventsDropped != 0 {
		t.Fatalf("healthy shard dropped %d events while its neighbor was wedged", healthy.EventsDropped)
	}

	// The wedged shard never flushed, so the output holds exactly the
	// healthy stream's events — complete and in per-stream order.
	var got []Event
	for _, ev := range parseEvents(t, out.Lines()) {
		if ev.Stream != healthy.ID {
			t.Fatalf("event from stream %d reached the output through a wedged shard", ev.Stream)
		}
		got = append(got, ev)
	}
	if len(got) < 3 || got[0].Type != EventStreamStart || got[len(got)-1].Type != EventStreamEnd {
		t.Fatalf("healthy stream's event envelope incomplete: %d events", len(got))
	}
	for i, ev := range got[1 : len(got)-1] {
		if ev.Type != EventFinding || ev.Seq != uint64(i+1) {
			t.Fatalf("healthy stream order broken at %d: %+v", i, ev)
		}
	}
	if uint64(len(got)-2) != healthy.Findings {
		t.Fatalf("healthy stream delivered %d findings, summary says %d", len(got)-2, healthy.Findings)
	}

	// Per-shard accounting: drops on the wedged row only.
	snap := s.Snapshot()
	if len(snap.Shards) != 2 {
		t.Fatalf("want 2 shard rows, got %d", len(snap.Shards))
	}
	for _, row := range snap.Shards {
		if row.Shard == wedgedIdx && row.EventsDropped == 0 {
			t.Fatalf("wedged shard row shows no drops: %+v", row)
		}
		if row.Shard != wedgedIdx && row.EventsDropped != 0 {
			t.Fatalf("healthy shard row shows drops: %+v", row)
		}
	}
	if snap.EventsDropped == 0 {
		t.Fatal("folded events_dropped empty")
	}
	close(release)
}

// TestSnapshotFoldsShardCounters checks the folded aggregate equals the
// sum of the shard rows for every counter the shards own — the
// schema-compat contract: old fields keep their totals, the shards
// section is a decomposition of them.
func TestSnapshotFoldsShardCounters(t *testing.T) {
	var out syncBuffer
	s := New(Config{Shards: 4, Output: &out})
	defer shutdown(t, s)
	for i := 0; i < 8; i++ {
		capture := synthCapture(t, 500+100*i, int64(20+i))
		if sum := s.Ingest("test", "fold", bytes.NewReader(capture)); sum.Status != StatusClean {
			t.Fatalf("stream %d: %+v", i, sum)
		}
	}
	snap := s.Snapshot()
	if len(snap.Shards) != 4 {
		t.Fatalf("want 4 shard rows, got %d", len(snap.Shards))
	}
	var records, bytesTotal, events, dropped, total uint64
	var ingestCount uint64
	for _, row := range snap.Shards {
		records += row.Records
		bytesTotal += row.Bytes
		events += row.EventsEmitted
		dropped += row.EventsDropped
		total += row.StreamsTotal
		ingestCount += row.IngestLatency.Count
	}
	if records != snap.Records || bytesTotal != snap.Bytes || events != snap.EventsEmitted ||
		dropped != snap.EventsDropped || total != snap.StreamsTotal {
		t.Fatalf("shard rows do not sum to the folded totals:\nrows: rec=%d bytes=%d ev=%d drop=%d total=%d\nfold: %+v",
			records, bytesTotal, events, dropped, total, snap)
	}
	if ingestCount != snap.IngestLatency.Count {
		t.Fatalf("folded ingest histogram count %d, shard rows sum %d", snap.IngestLatency.Count, ingestCount)
	}
	if snap.StreamsTotal != 8 || snap.Records == 0 {
		t.Fatalf("fixture totals wrong: %+v", snap)
	}
}

func shutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = s.Shutdown(ctx)
}
