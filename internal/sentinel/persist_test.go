package sentinel

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"testing"
	"time"

	"repro/internal/tsdb"
)

// openTestStore opens a tsdb store in a temp dir, closed after the
// server that uses it shuts down (cleanups run LIFO).
func openTestStore(t *testing.T) *tsdb.Store {
	t.Helper()
	store, err := tsdb.Open(tsdb.Options{Dir: t.TempDir(), CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return store
}

// filterLines returns the JSONL lines of raw containing the marker.
func filterLines(raw []byte, marker string) [][]byte {
	var out [][]byte
	for _, ln := range bytes.Split(raw, []byte("\n")) {
		if len(ln) > 0 && bytes.Contains(ln, []byte(marker)) {
			out = append(out, ln)
		}
	}
	return out
}

func queryAll(t *testing.T, store *tsdb.Store, series string) []tsdb.Frame {
	t.Helper()
	var out []tsdb.Frame
	err := store.Query(series, 0, math.MaxInt64, tsdb.KeyAny, func(fr tsdb.Frame) error {
		out = append(out, tsdb.Frame{TS: fr.TS, Key: fr.Key, Data: append([]byte(nil), fr.Data...)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPersistedEventsMatchLiveJSONL is the durability ground-truth
// check: every finding and stream-end line the daemon emits must be in
// the store byte-for-byte (same encoder, same stamped event), keyed by
// its stream id, with a frame timestamp that matches the line's ts
// field.
func TestPersistedEventsMatchLiveJSONL(t *testing.T) {
	store := openTestStore(t)
	var out syncBuffer
	s := New(Config{Output: &out, Store: store, MetricsEvery: -1})
	capture := synthCapture(t, 6400, 42)
	sum := s.Ingest("test", "persist", bytes.NewReader(capture))
	if sum.Findings == 0 {
		t.Fatal("fixture produced no findings")
	}
	shutdown(t, s) // drains the persist queues

	wantFindings := filterLines(out.Lines(), `"type":"finding"`)
	wantEnds := filterLines(out.Lines(), `"type":"stream-end"`)
	gotFindings := queryAll(t, store, SeriesFindings)
	gotEnds := queryAll(t, store, SeriesEnds)
	if len(gotFindings) != len(wantFindings) || len(wantFindings) == 0 {
		t.Fatalf("persisted %d findings, emitted %d", len(gotFindings), len(wantFindings))
	}
	if len(gotEnds) != len(wantEnds) || len(wantEnds) != 1 {
		t.Fatalf("persisted %d ends, emitted %d", len(gotEnds), len(wantEnds))
	}
	for i, fr := range gotFindings {
		if !bytes.Equal(fr.Data, wantFindings[i]) {
			t.Fatalf("finding %d: persisted bytes diverge from JSONL:\nstore: %s\nlive:  %s", i, fr.Data, wantFindings[i])
		}
		if fr.Key != sum.ID {
			t.Fatalf("finding %d keyed by %d, want stream %d", i, fr.Key, sum.ID)
		}
		var ev Event
		if err := json.Unmarshal(fr.Data, &ev); err != nil {
			t.Fatal(err)
		}
		stamped, err := time.Parse(time.RFC3339Nano, ev.TS)
		if err != nil {
			t.Fatalf("finding %d: bad ts %q: %v", i, ev.TS, err)
		}
		if got := stamped.UnixNano(); got != fr.TS {
			t.Fatalf("finding %d: frame ts %d != event ts %d", i, fr.TS, got)
		}
	}
	if !bytes.Equal(gotEnds[0].Data, wantEnds[0]) {
		t.Fatalf("stream-end diverges:\nstore: %s\nlive:  %s", gotEnds[0].Data, wantEnds[0])
	}
	// Persist accounting: everything appended, nothing dropped.
	snap := s.Snapshot()
	if want := uint64(len(wantFindings) + len(wantEnds)); snap.Persist.Appended != want {
		t.Fatalf("persist.appended %d, want %d", snap.Persist.Appended, want)
	}
	if snap.Persist.Dropped != 0 {
		t.Fatalf("persist.dropped %d, want 0", snap.Persist.Dropped)
	}
}

// TestTimestampGating pins the determinism contract: events carry ts
// only when asked (Timestamps) or needed (Store) — the one-shot batch
// path must stay byte-identical across runs.
func TestTimestampGating(t *testing.T) {
	capture := synthCapture(t, 1600, 42)

	var plain syncBuffer
	s := New(Config{Output: &plain})
	s.Ingest("test", "plain", bytes.NewReader(capture))
	shutdown(t, s)
	for _, ev := range parseEvents(t, plain.Lines()) {
		if ev.TS != "" {
			t.Fatalf("untimestamped config emitted ts: %+v", ev)
		}
	}

	var stamped syncBuffer
	s2 := New(Config{Output: &stamped, Timestamps: true})
	s2.Ingest("test", "stamped", bytes.NewReader(capture))
	shutdown(t, s2)
	evs := parseEvents(t, stamped.Lines())
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	for _, ev := range evs {
		if _, err := time.Parse(time.RFC3339Nano, ev.TS); err != nil {
			t.Fatalf("event missing/bad ts: %+v (%v)", ev, err)
		}
	}
}

// TestMetricsSnapshotterPersistsHist: the periodic snapshotter must
// store interval deltas whose fold reproduces the live aggregate
// histogram exactly (count and sum; quantiles follow from buckets).
// Shutdown persists the final partial interval, so even a short run is
// fully covered.
func TestMetricsSnapshotterPersistsHist(t *testing.T) {
	store := openTestStore(t)
	var out syncBuffer
	s := New(Config{Output: &out, Store: store, MetricsEvery: 10 * time.Millisecond})
	capture := synthCapture(t, 6400, 42)
	for i := 0; i < 3; i++ {
		s.Ingest("test", "hist", bytes.NewReader(capture))
		time.Sleep(15 * time.Millisecond) // let ticks land between streams
	}
	live := s.Snapshot().IngestLatency
	shutdown(t, s)

	points := queryAll(t, store, SeriesHist)
	if len(points) == 0 {
		t.Fatal("snapshotter persisted no hist points")
	}
	var merged histPoint
	merged.Ingest.MinNS = -1
	merged.Detect.MinNS = -1
	for _, fr := range points {
		if fr.Key != 0 {
			t.Fatalf("hist point keyed by %d, want 0", fr.Key)
		}
		var pt histPoint
		if err := json.Unmarshal(fr.Data, &pt); err != nil {
			t.Fatal(err)
		}
		merged.Ingest = merged.Ingest.Merge(pt.Ingest)
		merged.Detect = merged.Detect.Merge(pt.Detect)
	}
	if merged.Ingest.Count != live.Count {
		t.Fatalf("folded hist count %d, live %d", merged.Ingest.Count, live.Count)
	}
	folded := merged.Ingest.Restore().Snapshot()
	if folded.P99US <= 0 || folded.MaxUS != live.MaxUS {
		t.Fatalf("folded quantiles wrong: folded %+v live %+v", folded, live)
	}
	if merged.Detect.Count == 0 {
		t.Fatal("detect deltas empty despite findings")
	}
}

// TestQueryEndpoint drives /query over HTTP: event round-trips, the
// stream filter, the hist fold, parameter validation, and the
// Cache-Control headers on every point-in-time endpoint.
func TestQueryEndpoint(t *testing.T) {
	store := openTestStore(t)
	var out syncBuffer
	s := startServer(t, Config{
		HTTPAddr:     "127.0.0.1:0",
		Output:       &out,
		Store:        store,
		MetricsEvery: 10 * time.Millisecond,
	})
	base := "http://" + s.HTTPAddr()
	capture := synthCapture(t, 6400, 42)
	sum := s.Ingest("test", "q", bytes.NewReader(capture))
	if sum.Findings == 0 {
		t.Fatal("no findings")
	}

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	// Persistence is async: poll until the store has every finding.
	var res QueryResult
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, body := get("/query?series=findings")
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatalf("bad /query body %s: %v", body, err)
		}
		if uint64(res.Count) >= sum.Findings {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("store never caught up: %d of %d findings", res.Count, sum.Findings)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if uint64(res.Count) != sum.Findings {
		t.Fatalf("/query count %d, want %d", res.Count, sum.Findings)
	}
	for _, qe := range res.Results {
		if qe.Stream != sum.ID {
			t.Fatalf("result from stream %d, want %d", qe.Stream, sum.ID)
		}
		var ev Event
		if err := json.Unmarshal(qe.Event, &ev); err != nil || ev.Type != EventFinding {
			t.Fatalf("bad embedded event %s: %v", qe.Event, err)
		}
	}

	// Stream filter: the right id returns everything, a wrong id nothing.
	_, body := get(fmt.Sprintf("/query?series=findings&stream=%d", sum.ID))
	if err := json.Unmarshal(body, &res); err != nil || uint64(res.Count) != sum.Findings {
		t.Fatalf("stream filter: %s (%v)", body, err)
	}
	_, body = get(fmt.Sprintf("/query?series=findings&stream=%d", sum.ID+100))
	if err := json.Unmarshal(body, &res); err != nil || res.Count != 0 {
		t.Fatalf("wrong-stream filter returned rows: %s (%v)", body, err)
	}

	// Window: a since in the future excludes everything.
	_, body = get("/query?series=findings&since=" + time.Now().Add(time.Hour).UTC().Format(time.RFC3339))
	if err := json.Unmarshal(body, &res); err != nil || res.Count != 0 {
		t.Fatalf("future window returned rows: %s (%v)", body, err)
	}

	// Limit + truncation marker.
	_, body = get("/query?series=findings&limit=1")
	if err := json.Unmarshal(body, &res); err != nil || res.Count != 1 || !res.Truncated {
		t.Fatalf("limit=1: %s (%v)", body, err)
	}

	// Hist fold: poll until a tick lands, then expect populated
	// percentiles over the window.
	deadline = time.Now().Add(10 * time.Second)
	for {
		_, body = get("/query?series=hist")
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatalf("bad hist body %s: %v", body, err)
		}
		if res.Count > 0 && res.Ingest != nil && res.Ingest.Count > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hist window never populated: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if res.Ingest.P99US <= 0 || res.IntervalMS < 0 {
		t.Fatalf("hist snapshot unpopulated: %+v", res)
	}

	// Validation.
	for path, want := range map[string]int{
		"/query?series=nope":                http.StatusBadRequest,
		"/query":                            http.StatusBadRequest,
		"/query?series=findings&since=huh":  http.StatusBadRequest,
		"/query?series=findings&stream=-1":  http.StatusBadRequest,
		"/query?series=findings&limit=zero": http.StatusBadRequest,
		// Unix seconds beyond ~year 2262 overflow the nanosecond
		// conversion; they must be a 400, not a silently empty window.
		"/query?series=findings&since=99999999999999":  http.StatusBadRequest,
		"/query?series=findings&until=-99999999999999": http.StatusBadRequest,
	} {
		resp, _ := get(path)
		if resp.StatusCode != want {
			t.Fatalf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}

	// Cache-Control on every point-in-time endpoint.
	for _, path := range []string{"/metrics", "/healthz", "/query?series=findings"} {
		resp, _ := get(path)
		if got := resp.Header.Get("Cache-Control"); got != "no-store" {
			t.Fatalf("%s Cache-Control = %q, want no-store", path, got)
		}
	}
}

// TestQueryWithoutStoreIs404: the endpoint does not exist when no store
// is configured.
func TestQueryWithoutStoreIs404(t *testing.T) {
	s := startServer(t, Config{HTTPAddr: "127.0.0.1:0", Output: &syncBuffer{}})
	resp, err := http.Get("http://" + s.HTTPAddr() + "/query?series=findings")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// TestParseQueryTimeOverflow pins the unix-seconds bounds: values whose
// nanosecond conversion would wrap int64 are rejected, the extremes that
// still fit are accepted exactly.
func TestParseQueryTimeOverflow(t *testing.T) {
	for _, bad := range []string{"9223372037", "-9223372037", "99999999999999", "-99999999999999"} {
		if _, err := parseQueryTime(bad); err == nil {
			t.Fatalf("parseQueryTime(%q) accepted an overflowing value", bad)
		}
	}
	for _, ok := range []struct {
		in   string
		want int64
	}{
		{"0", 0},
		{"1700000000", 1700000000 * int64(time.Second)},
		{"9223372036", 9223372036 * int64(time.Second)},
		{"-9223372036", -9223372036 * int64(time.Second)},
	} {
		got, err := parseQueryTime(ok.in)
		if err != nil || got != ok.want {
			t.Fatalf("parseQueryTime(%q) = %d, %v; want %d", ok.in, got, err, ok.want)
		}
	}
}

// TestPersistOverflowDropsCounted wedges the persist path (the hook
// blocks the persist goroutine mid-item) and floods events: the bounded
// queue must fill, overflow must be counted as drops — and the event
// path itself must stay unblocked throughout, which this test proves by
// finishing.
func TestPersistOverflowDropsCounted(t *testing.T) {
	store := openTestStore(t)
	release := make(chan struct{})
	entered := make(chan struct{}, 64)
	var out syncBuffer
	cfg := Config{
		Output:        &out,
		Store:         store,
		MetricsEvery:  -1,
		Shards:        1,
		PersistBuffer: 1,
	}
	cfg.beforePersist = func(int) { entered <- struct{}{}; <-release }
	s := New(cfg)

	const events = 32
	// First event: wait until the persist goroutine is wedged inside the
	// hook holding it, so the queue slot is provably free again.
	s.emit(nil, Event{Type: EventFinding, Stream: 7, Seq: 1, Frame: 1, Kind: "k"})
	<-entered
	// Second event occupies the single queue slot; the rest must drop.
	for i := 1; i < events; i++ {
		s.emit(nil, Event{Type: EventFinding, Stream: 7, Seq: uint64(i + 1), Frame: i + 1, Kind: "k"})
	}
	// One item is wedged in the hook, one sits in the queue; the rest
	// must have dropped without blocking emit (we got here).
	snap := s.Snapshot()
	if want := uint64(events - 2); snap.Persist.Dropped != want {
		t.Fatalf("persist.dropped %d, want %d", snap.Persist.Dropped, want)
	}
	close(release)
	shutdown(t, s)
	if got := len(queryAll(t, store, SeriesFindings)); got != 2 {
		t.Fatalf("store holds %d findings, want the 2 that were queued", got)
	}
	snap = s.Snapshot()
	if snap.Persist.Appended != 2 || snap.Persist.Dropped != events-2 {
		t.Fatalf("final persist accounting %+v", snap.Persist)
	}
}

// TestShutdownDrainsPersistQueue: events sitting in the persist queue
// at Shutdown must reach the store before Shutdown returns (emitters
// are gone by the time the queues close, so the drain is complete, not
// racy).
func TestShutdownDrainsPersistQueue(t *testing.T) {
	store := openTestStore(t)
	slow := make(chan struct{}, 1)
	var out syncBuffer
	cfg := Config{Output: &out, Store: store, MetricsEvery: -1, Shards: 1}
	cfg.beforePersist = func(int) {
		select {
		case <-slow: // first item stalls briefly so the rest queue up
			time.Sleep(50 * time.Millisecond)
		default:
		}
	}
	s := New(cfg)
	slow <- struct{}{}
	const events = 16
	for i := 0; i < events; i++ {
		s.emit(nil, Event{Type: EventFinding, Stream: 3, Seq: uint64(i + 1), Frame: i + 1, Kind: "k"})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if got := len(queryAll(t, store, SeriesFindings)); got != events {
		t.Fatalf("store holds %d findings after shutdown, want %d", got, events)
	}
}
