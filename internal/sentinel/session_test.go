package sentinel

import (
	"bytes"
	"context"
	"io"
	"net"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/snoop"
	"repro/internal/tsdb"
)

// sendSession streams capture[from:] over an established session conn
// with the standard chunking and a fin marker.
func sendSession(t *testing.T, conn io.Writer, capture []byte, from int64) {
	t.Helper()
	if _, err := WriteSessionChunks(conn, bytes.NewReader(capture[from:])); err != nil {
		t.Fatalf("session send: %v", err)
	}
	if err := WriteSessionFin(conn); err != nil {
		t.Fatalf("session fin: %v", err)
	}
}

// TestResumeDifferentialCutEveryStride is the transport-chaos
// differential at test scale: cut the transport at a sweep of payload
// offsets, resume each time, and demand findings byte-identical to the
// uninterrupted baseline. The full cut-at-every-byte sweep runs in
// benchtables' -chaos mode; here the stride keeps the test inside a few
// seconds (coarser still under the race detector).
func TestResumeDifferentialCutEveryStride(t *testing.T) {
	capture := synthCapture(t, 2000, 21)
	stride := len(capture)/97 + 1
	if testing.Short() || raceEnabled {
		stride = len(capture)/23 + 1
	}
	if err := RunResumeDifferential(capture, stride, t.Logf); err != nil {
		t.Fatal(err)
	}
}

// TestSessionResumeAcrossReconnect pins the basic warm-resume flow and
// its observable events: parked and resumed land on the output, the
// resumed stream keeps its id, and the merged run ends clean with the
// full capture's totals.
func TestSessionResumeAcrossReconnect(t *testing.T) {
	capture := synthCapture(t, 3000, 7)
	out := &syncBuffer{}
	ends := make(chan StreamSummary, 1)
	s := startServer(t, Config{
		UnixAddr:    filepath.Join(t.TempDir(), "s.sock"),
		ResumeGrace: time.Minute,
		Output:      out,
		OnStreamEnd: func(sum StreamSummary) { ends <- sum },
	})

	conn, hello, err := DialSession("unix", s.UnixAddr(), "sess-1", "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cut := int64(len(capture) / 2)
	if _, err := WriteSessionChunks(conn, bytes.NewReader(capture[:cut])); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close() // die mid-stream; the server parks

	waitFor(t, "session parked", func() bool { return s.Snapshot().Sessions.Parked == 1 })

	conn2, hello2, err := DialSession("unix", s.UnixAddr(), "sess-1", "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if hello2.Stream != hello.Stream {
		t.Fatalf("resumed as stream %d, want %d", hello2.Stream, hello.Stream)
	}
	if hello2.Offset <= 0 || hello2.Offset > cut {
		t.Fatalf("resume offset %d, want in (0, %d]", hello2.Offset, cut)
	}
	sendSession(t, conn2, capture, hello2.Offset)

	var sum StreamSummary
	select {
	case sum = <-ends:
	case <-time.After(10 * time.Second):
		t.Fatal("stream never ended")
	}
	if sum.Status != StatusClean {
		t.Fatalf("status %q (err %v), want clean", sum.Status, sum.Err)
	}
	if sum.Bytes != int64(len(capture)) {
		t.Fatalf("bytes %d, want %d", sum.Bytes, len(capture))
	}
	recs, err := snoop.ReadAll(capture)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records != len(recs) {
		t.Fatalf("records %d, want %d", sum.Records, len(recs))
	}

	snap := s.Snapshot().Sessions
	if snap.Parked != 0 || snap.ParkedTotal != 1 || snap.Resumed != 1 {
		t.Fatalf("sessions snapshot %+v, want parked 0 / parked_total 1 / resumed 1", snap)
	}
	var sawParked, sawResumed bool
	for _, ev := range parseEvents(t, out.Lines()) {
		switch ev.Type {
		case EventSessionParked:
			sawParked = true
			if ev.Session != "sess-1" {
				t.Fatalf("parked event session %q", ev.Session)
			}
		case EventSessionResumed:
			sawResumed = true
		}
	}
	if !sawParked || !sawResumed {
		t.Fatalf("parked/resumed events on output: %v/%v", sawParked, sawResumed)
	}
}

// TestShutdownDuringGraceParksCheckpointed: shutting down with a parked
// session must end its stream as "aborted" (with a stream-end line),
// flush its checkpoint to the store, count it in /metrics — and leak no
// goroutines.
func TestShutdownDuringGraceParksCheckpointed(t *testing.T) {
	store, err := tsdb.Open(tsdb.Options{Dir: t.TempDir(), CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	capture := synthCapture(t, 3000, 11)
	out := &syncBuffer{}
	ends := make(chan StreamSummary, 1)
	before := runtime.NumGoroutine()
	s := New(Config{
		UnixAddr:    filepath.Join(t.TempDir(), "s.sock"),
		ResumeGrace: time.Hour, // parked forever unless shutdown aborts it
		Store:       store,
		Output:      out,
		OnStreamEnd: func(sum StreamSummary) { ends <- sum },
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}

	conn, _, err := DialSession("unix", s.UnixAddr(), "parked-sess", "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSessionChunks(conn, bytes.NewReader(capture[:len(capture)/2])); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()
	waitFor(t, "session parked", func() bool { return s.Snapshot().Sessions.Parked == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown during grace window: %v", err)
	}

	var sum StreamSummary
	select {
	case sum = <-ends:
	case <-time.After(5 * time.Second):
		t.Fatal("parked stream emitted no stream-end")
	}
	if sum.Status != StatusAborted {
		t.Fatalf("status %q (err %v), want aborted", sum.Status, sum.Err)
	}
	if s.Snapshot().Sessions.Checkpoints == 0 {
		t.Fatal("no checkpoint persisted for the parked session")
	}
	var sawEnd bool
	for _, ev := range parseEvents(t, out.Lines()) {
		if ev.Type == EventStreamEnd && ev.Session == "parked-sess" {
			sawEnd = true
			if ev.Status != StatusAborted {
				t.Fatalf("end line status %q, want aborted", ev.Status)
			}
		}
	}
	if !sawEnd {
		t.Fatal("no stream-end line for the parked session")
	}

	// The checkpoint must be durable and resumable: a fresh daemon on the
	// same store recovers the session.
	s2 := New(Config{Store: store, ResumeGrace: time.Hour})
	n, err := s2.RecoverSessions()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d sessions, want 1", n)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := s2.Shutdown(ctx2); err != nil {
		t.Fatal(err)
	}

	// Goroutine accounting: both servers are fully down; allow the
	// runtime a moment to retire exiting goroutines.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestKillRestartRecovery is the crash drill in-process: run a session
// against a store, abandon it mid-capture (simulating the process
// dying: no clean shutdown for the stream — but checkpoints already
// synced), start a second server on the same store, reconnect, and
// demand the second half's findings pick up where the checkpoint left
// off with a clean merged end.
func TestKillRestartRecovery(t *testing.T) {
	store, err := tsdb.Open(tsdb.Options{Dir: t.TempDir(), CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	capture := synthCapture(t, 6000, 13)
	recs, err := snoop.ReadAll(capture)
	if err != nil {
		t.Fatal(err)
	}

	out1 := &syncBuffer{}
	s1 := New(Config{
		UnixAddr:        filepath.Join(t.TempDir(), "s1.sock"),
		ResumeGrace:     time.Hour,
		CheckpointEvery: 4 << 10, // checkpoint densely at test scale
		Store:           store,
		Output:          out1,
	})
	if err := s1.Start(); err != nil {
		t.Fatal(err)
	}

	conn, hello, err := DialSession("unix", s1.UnixAddr(), "crash-sess", "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cut := int64(len(capture) / 2)
	if _, err := WriteSessionChunks(conn, bytes.NewReader(capture[:cut])); err != nil {
		t.Fatal(err)
	}
	// Wait for a durable checkpoint (the "checkpoint" line is emitted
	// only after append+sync), then tear the daemon down hard: close the
	// client and shut down with an already-expired context — the
	// force-close path, the closest in-process stand-in for kill -9 that
	// still lets us reuse the store handle.
	waitFor(t, "durable checkpoint", func() bool { return s1.Snapshot().Sessions.Checkpoints > 0 })
	_ = conn.Close()
	ctxDead, cancelDead := context.WithCancel(context.Background())
	cancelDead()
	_ = s1.Shutdown(ctxDead)

	out2 := &syncBuffer{}
	ends := make(chan StreamSummary, 1)
	s2 := startServer(t, Config{
		UnixAddr:    filepath.Join(t.TempDir(), "s2.sock"),
		ResumeGrace: time.Hour,
		Store:       store,
		Output:      out2,
		OnStreamEnd: func(sum StreamSummary) { ends <- sum },
	})
	n, err := s2.RecoverSessions()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d sessions, want 1", n)
	}
	if got := s2.Snapshot().Sessions.Restored; got != 1 {
		t.Fatalf("restored counter %d, want 1", got)
	}

	conn2, hello2, err := DialSession("unix", s2.UnixAddr(), "crash-sess", "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if hello2.Stream != hello.Stream {
		t.Fatalf("recovered as stream %d, want %d", hello2.Stream, hello.Stream)
	}
	if hello2.Offset <= 0 || hello2.Offset > cut {
		t.Fatalf("recovery offset %d, want a checkpoint inside (0, %d]", hello2.Offset, cut)
	}
	sendSession(t, conn2, capture, hello2.Offset)

	var sum StreamSummary
	select {
	case sum = <-ends:
	case <-time.After(10 * time.Second):
		t.Fatal("recovered stream never ended")
	}
	if sum.Status != StatusClean {
		t.Fatalf("status %q (err %v), want clean", sum.Status, sum.Err)
	}
	if sum.Bytes != int64(len(capture)) || sum.Records != len(recs) {
		t.Fatalf("merged totals bytes=%d records=%d, want %d/%d",
			sum.Bytes, sum.Records, len(capture), len(recs))
	}

	// Findings across both processes must equal one uninterrupted run.
	baseOut := &syncBuffer{}
	sb := New(Config{Output: baseOut})
	bsum := sb.Ingest("test", "baseline", bytes.NewReader(capture))
	if bsum.Status != StatusClean {
		t.Fatalf("baseline status %q", bsum.Status)
	}
	ctxB, cancelB := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelB()
	_ = sb.Shutdown(ctxB)

	merged := append(findingKeys(t, out1.Lines(), hello.Stream),
		findingKeys(t, out2.Lines(), hello.Stream)...)
	base := findingKeys(t, baseOut.Lines(), bsum.ID)
	if len(merged) != len(base) {
		t.Fatalf("merged findings %d, baseline %d", len(merged), len(base))
	}
	for i := range merged {
		if merged[i] != base[i] {
			t.Fatalf("finding %d differs:\n  got  %s\n  want %s", i, merged[i], base[i])
		}
	}
	if sum.Findings != bsum.Findings {
		t.Fatalf("findings total %d, baseline %d", sum.Findings, bsum.Findings)
	}
}

// findingKeys extracts one stream's finding lines normalized for
// cross-run comparison (stream id and ts zeroed — store-backed runs
// stamp wall clocks, the baseline does not).
func findingKeys(t *testing.T, raw []byte, stream uint64) []string {
	t.Helper()
	var res []string
	for _, ev := range parseEvents(t, raw) {
		if ev.Type != EventFinding || ev.Stream != stream {
			continue
		}
		ev.Stream, ev.TS = 0, ""
		res = append(res, string(ev.appendJSON(nil)))
	}
	return res
}

// TestPanicIsolation: a panic inside one stream's detector loop ends
// that stream with status "panic" and the recovered value on its end
// line, while a concurrent stream and the daemon itself sail on.
func TestPanicIsolation(t *testing.T) {
	capture := synthCapture(t, 2000, 17)
	out := &syncBuffer{}
	ends := make(chan StreamSummary, 2)
	var victim atomic.Uint64
	cfg := Config{
		TCPAddr:     "127.0.0.1:0",
		Output:      out,
		OnStreamEnd: func(sum StreamSummary) { ends <- sum },
	}
	cfg.beforeBatch = func(stream uint64) {
		if stream == victim.Load() {
			panic("synthetic detector failure")
		}
	}
	s := startServer(t, cfg)

	// First stream: the victim. Raw protocol; id is nextID+1.
	victim.Store(s.nextID.Load() + 1)
	conn, err := netDial(t, s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(capture); err != nil {
		t.Fatal(err)
	}

	var vsum StreamSummary
	select {
	case vsum = <-ends:
	case <-time.After(10 * time.Second):
		t.Fatal("panicked stream never ended")
	}
	_ = conn.Close()
	if vsum.Status != StatusPanic {
		t.Fatalf("victim status %q (err %v), want panic", vsum.Status, vsum.Err)
	}
	if vsum.Err == nil || vsum.Err.Error() != "panic: synthetic detector failure" {
		t.Fatalf("victim err %v, want the recovered value", vsum.Err)
	}

	// Second stream on the same daemon: unaffected.
	victim.Store(0)
	sum := s.Ingest("test", "survivor", bytes.NewReader(capture))
	if sum.Status != StatusClean {
		t.Fatalf("survivor status %q (err %v), want clean", sum.Status, sum.Err)
	}
	var sawPanicEnd bool
	for _, ev := range parseEvents(t, out.Lines()) {
		if ev.Type == EventStreamEnd && ev.Stream == vsum.ID {
			sawPanicEnd = true
			if ev.Status != StatusPanic || ev.Error == "" {
				t.Fatalf("panic end line %+v", ev)
			}
		}
	}
	if !sawPanicEnd {
		t.Fatal("no stream-end line for the panicked stream")
	}
}

// TestWatchdogForceFailsWedgedDetector: a detector loop that stops
// making progress is force-failed by the watchdog — stream-end line,
// freed slot — while the daemon keeps serving.
func TestWatchdogForceFailsWedgedDetector(t *testing.T) {
	capture := synthCapture(t, 2000, 19)
	out := &syncBuffer{}
	ends := make(chan StreamSummary, 2)
	var victim atomic.Uint64
	wedge := make(chan struct{}) // never closed: the hook blocks forever
	cfg := Config{
		TCPAddr:     "127.0.0.1:0",
		MaxStreams:  1, // the wedged stream holds the only slot...
		Watchdog:    75 * time.Millisecond,
		Output:      out,
		OnStreamEnd: func(sum StreamSummary) { ends <- sum },
	}
	cfg.beforeBatch = func(stream uint64) {
		if stream == victim.Load() {
			<-wedge
		}
	}
	s := startServer(t, cfg)

	victim.Store(s.nextID.Load() + 1)
	conn, err := netDial(t, s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(capture); err != nil {
		t.Fatal(err)
	}

	var vsum StreamSummary
	select {
	case vsum = <-ends:
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog never fired")
	}
	if vsum.Status != StatusError {
		t.Fatalf("wedged status %q (err %v), want error", vsum.Status, vsum.Err)
	}
	if vsum.Err == nil || !bytes.Contains([]byte(vsum.Err.Error()), []byte("watchdog")) {
		t.Fatalf("wedged err %v, want a watchdog error", vsum.Err)
	}

	// ...which must now be free again: a second stream runs to completion
	// even though the wedged goroutines are still blocked.
	victim.Store(0)
	sum := s.Ingest("test", "after-wedge", bytes.NewReader(capture))
	if sum.Status != StatusClean {
		t.Fatalf("post-wedge status %q (err %v), want clean", sum.Status, sum.Err)
	}
}

// TestTenantQuota: per-tenant admission sits ahead of the global cap —
// the quota'd tenant's third session is rejected while another tenant
// and anonymous sessions still get in; ending a session frees its slot.
func TestTenantQuota(t *testing.T) {
	s := startServer(t, Config{
		TCPAddr:     "127.0.0.1:0",
		TenantQuota: 2,
		ResumeGrace: -1, // keep teardown prompt: no parking in this test
	})

	dial := func(sid, tenant string) (io.Closer, error) {
		conn, _, err := DialSession("tcp", s.TCPAddr(), sid, tenant, 5*time.Second)
		return conn, err
	}
	a1, err := dial("a-1", "tenant-a")
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	a2, err := dial("a-2", "tenant-a")
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if _, err := dial("a-3", "tenant-a"); err == nil {
		t.Fatal("third tenant-a session admitted past quota 2")
	} else if !bytes.Contains([]byte(err.Error()), []byte("tenant quota 2 reached")) {
		t.Fatalf("rejection error %v, want the quota reason", err)
	}
	b1, err := dial("b-1", "tenant-b")
	if err != nil {
		t.Fatalf("tenant-b blocked by tenant-a's quota: %v", err)
	}
	defer b1.Close()
	anon, err := dial("anon-1", "")
	if err != nil {
		t.Fatalf("anonymous session blocked by quota: %v", err)
	}
	defer anon.Close()

	// Finish one tenant-a session cleanly; its slot frees.
	if err := WriteSessionFin(a1.(io.Writer)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "tenant-a slot freed", func() bool {
		c, err := dial("a-4", "tenant-a")
		if err != nil {
			return false
		}
		_ = c.Close()
		return true
	})
}

// netDial connects a raw (non-session) test client.
func netDial(t *testing.T, addr string) (net.Conn, error) {
	t.Helper()
	return net.DialTimeout("tcp", addr, 5*time.Second)
}

func TestWriteSessionBytesWireParity(t *testing.T) {
	// WriteSessionBytes must put byte-identical frames on the wire as
	// WriteSessionChunks fed the same data — the zero-copy path is a
	// client-side optimization, not a protocol variant.
	sizes := []int{0, 1, 7, sessionChunkSize - 1, sessionChunkSize, sessionChunkSize + 1, 3 * sessionChunkSize}
	for _, n := range sizes {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i * 31)
		}
		var chunked, direct bytes.Buffer
		cn, err := WriteSessionChunks(&chunked, bytes.NewReader(data))
		if err != nil {
			t.Fatalf("size %d: WriteSessionChunks: %v", n, err)
		}
		dn, err := WriteSessionBytes(&direct, data)
		if err != nil {
			t.Fatalf("size %d: WriteSessionBytes: %v", n, err)
		}
		if cn != dn {
			t.Fatalf("size %d: payload counts differ: chunked %d, direct %d", n, cn, dn)
		}
		if !bytes.Equal(chunked.Bytes(), direct.Bytes()) {
			t.Fatalf("size %d: wire bytes differ", n)
		}
	}
}
