//go:build !race

package sentinel

const raceEnabled = false
