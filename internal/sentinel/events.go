package sentinel

import (
	"errors"
	"io"
	"os"
	"strconv"
	"time"
	"unicode/utf8"

	"repro/internal/forensics"
	"repro/internal/snoop"
)

// Event is one JSONL line on the daemon's event output. Every line
// carries Type and Stream; the remaining fields depend on the type:
//
//	stream-start    proto, label
//	finding         seq, frame, kind, peer, detail, capture_ts
//	stream-end      status, offset, records, bytes, findings[, error]
//	stream-rejected proto, label, error
//
// Finding events are emitted the moment the incremental detector
// produces them — mid-stream, not at EOF — and their seq/frame/kind
// match what a batch forensics.Analyze over the same records would
// report, in the same order (the live/batch parity contract).
type Event struct {
	Type   string `json:"type"`
	Stream uint64 `json:"stream"`
	Proto  string `json:"proto,omitempty"`
	Label  string `json:"label,omitempty"`
	// Session is the client-chosen resume identity (session protocol
	// streams only). Present on stream-start/stream-end and the
	// session-lifecycle events; findings stay session-free — the stream
	// id already keys them and the hot path stays lean.
	Session string `json:"session,omitempty"`
	// TS is the wall-clock emission time (RFC3339Nano, UTC), stamped
	// only when Config.Timestamps is set or a persistence store is
	// wired — the one-shot batch paths leave it off so their output
	// stays byte-deterministic across runs. Retention and time-window
	// queries key on this, not on stream offsets.
	TS string `json:"ts,omitempty"`

	// Finding fields.
	Seq       uint64 `json:"seq,omitempty"`
	Frame     int    `json:"frame,omitempty"`
	Kind      string `json:"kind,omitempty"`
	Peer      string `json:"peer,omitempty"`
	Detail    string `json:"detail,omitempty"`
	CaptureTS string `json:"capture_ts,omitempty"`

	// Stream-end fields.
	Status   string `json:"status,omitempty"`
	Offset   int64  `json:"offset,omitempty"`
	Records  int    `json:"records,omitempty"`
	Bytes    int64  `json:"bytes,omitempty"`
	Findings uint64 `json:"findings,omitempty"`
	// EventsDropped counts this stream's events lost to the per-write
	// deadline before the end line was written: nonzero means the event
	// consumer stalled and the JSONL record is incomplete.
	EventsDropped uint64 `json:"events_dropped,omitempty"`
	Error         string `json:"error,omitempty"`
}

// Event types.
const (
	EventStreamStart    = "stream-start"
	EventFinding        = "finding"
	EventStreamEnd      = "stream-end"
	EventStreamRejected = "stream-rejected"
	// Session-lifecycle events. session-hello and session-ack are written
	// to the client connection, not the Output stream; the rest land on
	// Output like any other event.
	EventSessionHello   = "session-hello"
	EventSessionAck     = "session-ack"
	EventSessionParked  = "session-parked"
	EventSessionResumed = "session-resumed"
	EventSessionExpired = "session-expired"
	// EventCheckpoint reports a detector checkpoint made durable in the
	// store (emitted after the tsdb append + sync completes, so the line
	// on Output is a reliable kill-here marker for crash drills).
	EventCheckpoint = "checkpoint"
)

// Stream-end statuses: how a stream died. Operators branch on these to
// tell a phone log that was closed cleanly from a capture mangled in
// transit from a client that simply stopped sending.
const (
	// StatusClean: the stream ended on a record boundary — a complete log.
	StatusClean = "clean"
	// StatusTruncated: the stream died mid-record (io.ErrUnexpectedEOF);
	// Offset says where.
	StatusTruncated = "truncated"
	// StatusBadFraming: a record header's lengths are inconsistent
	// (snoop.ErrBadFraming); Offset points at the offending header.
	StatusBadFraming = "bad-framing"
	// StatusTimeout: the per-connection read deadline expired.
	StatusTimeout = "timeout"
	// StatusError: anything else (bad magic, transport failure, ...).
	StatusError = "error"
	// StatusAborted: the daemon shut down (or force-closed after the
	// drain grace) while the stream was live or parked; the stream's
	// detector state was checkpointed if a store is wired, so a restart
	// can resume it.
	StatusAborted = "aborted"
	// StatusPanic: the stream's pipeline panicked; Error carries the
	// recovered value and Offset the capture offset reached before the
	// panic. The stream is dead but the daemon and its other streams
	// keep running.
	StatusPanic = "panic"
)

// ErrAborted marks a stream torn down by daemon shutdown rather than by
// anything the transport or the capture did.
var ErrAborted = errors.New("sentinel: stream aborted by shutdown")

// ClassifyStreamError maps a snoop.Scanner error to a stream-end status.
func ClassifyStreamError(err error) string {
	switch {
	case err == nil:
		return StatusClean
	case errors.Is(err, snoop.ErrBadFraming):
		return StatusBadFraming
	case errors.Is(err, os.ErrDeadlineExceeded):
		return StatusTimeout
	case errors.Is(err, ErrAborted):
		return StatusAborted
	case errors.Is(err, io.ErrUnexpectedEOF):
		return StatusTruncated
	default:
		return StatusError
	}
}

// findingEvent renders one detector event for a stream.
func findingEvent(id uint64, ev forensics.Event) Event {
	return Event{
		Type:      EventFinding,
		Stream:    id,
		Seq:       ev.Seq,
		Frame:     ev.Frame,
		Kind:      ev.Finding.Kind,
		Peer:      ev.Finding.Peer.String(),
		Detail:    ev.Finding.Detail,
		CaptureTS: ev.Time.UTC().Format(time.RFC3339Nano),
	}
}

// appendJSON appends the event's JSON object to b and returns the
// extended slice. The output is byte-identical to encoding/json's
// rendering of the same value — field order, omitempty behavior, and
// string escaping included — so shard writers can encode findings into
// a reused buffer without the per-event allocations of json.Marshal
// while every consumer of the JSONL stream sees the format PR 3
// shipped. TestAppendJSONMatchesEncodingJSON pins the identity for
// every event type; keep this encoder and the Event struct in lockstep.
func (ev *Event) appendJSON(b []byte) []byte {
	b = append(b, `{"type":`...)
	b = appendJSONString(b, ev.Type)
	b = append(b, `,"stream":`...)
	b = strconv.AppendUint(b, ev.Stream, 10)
	if ev.Proto != "" {
		b = append(b, `,"proto":`...)
		b = appendJSONString(b, ev.Proto)
	}
	if ev.Label != "" {
		b = append(b, `,"label":`...)
		b = appendJSONString(b, ev.Label)
	}
	if ev.Session != "" {
		b = append(b, `,"session":`...)
		b = appendJSONString(b, ev.Session)
	}
	if ev.TS != "" {
		b = append(b, `,"ts":`...)
		b = appendJSONString(b, ev.TS)
	}
	if ev.Seq != 0 {
		b = append(b, `,"seq":`...)
		b = strconv.AppendUint(b, ev.Seq, 10)
	}
	if ev.Frame != 0 {
		b = append(b, `,"frame":`...)
		b = strconv.AppendInt(b, int64(ev.Frame), 10)
	}
	if ev.Kind != "" {
		b = append(b, `,"kind":`...)
		b = appendJSONString(b, ev.Kind)
	}
	if ev.Peer != "" {
		b = append(b, `,"peer":`...)
		b = appendJSONString(b, ev.Peer)
	}
	if ev.Detail != "" {
		b = append(b, `,"detail":`...)
		b = appendJSONString(b, ev.Detail)
	}
	if ev.CaptureTS != "" {
		b = append(b, `,"capture_ts":`...)
		b = appendJSONString(b, ev.CaptureTS)
	}
	if ev.Status != "" {
		b = append(b, `,"status":`...)
		b = appendJSONString(b, ev.Status)
	}
	if ev.Offset != 0 {
		b = append(b, `,"offset":`...)
		b = strconv.AppendInt(b, ev.Offset, 10)
	}
	if ev.Records != 0 {
		b = append(b, `,"records":`...)
		b = strconv.AppendInt(b, int64(ev.Records), 10)
	}
	if ev.Bytes != 0 {
		b = append(b, `,"bytes":`...)
		b = strconv.AppendInt(b, ev.Bytes, 10)
	}
	if ev.Findings != 0 {
		b = append(b, `,"findings":`...)
		b = strconv.AppendUint(b, ev.Findings, 10)
	}
	if ev.EventsDropped != 0 {
		b = append(b, `,"events_dropped":`...)
		b = strconv.AppendUint(b, ev.EventsDropped, 10)
	}
	if ev.Error != "" {
		b = append(b, `,"error":`...)
		b = appendJSONString(b, ev.Error)
	}
	return append(b, '}')
}

const jsonHex = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal using exactly
// encoding/json's escaping rules (HTML-escaping on, as json.Marshal
// defaults): quote, backslash, and control bytes are escaped (the JSON
// short forms where they exist, \u00xx otherwise), '<', '>', and '&'
// become </>/&, invalid UTF-8 bytes become �, and
// U+2028/U+2029 are escaped for JS embedding. Everything else is
// copied verbatim in bulk runs between escapes.
// jsonSafe marks the ASCII bytes that pass through appendJSONString
// unescaped. A table lookup here keeps the escaper's hot loop — run on
// every event string the daemon emits — to one load and one branch per
// byte instead of a six-way comparison chain.
var jsonSafe = func() (t [utf8.RuneSelf]bool) {
	for c := 0x20; c < utf8.RuneSelf; c++ {
		t[c] = c != '"' && c != '\\' && c != '<' && c != '>' && c != '&'
	}
	return
}()

func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if jsonSafe[c] {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', jsonHex[c>>4], jsonHex[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', jsonHex[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}
