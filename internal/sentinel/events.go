package sentinel

import (
	"errors"
	"io"
	"os"
	"time"

	"repro/internal/forensics"
	"repro/internal/snoop"
)

// Event is one JSONL line on the daemon's event output. Every line
// carries Type and Stream; the remaining fields depend on the type:
//
//	stream-start    proto, label
//	finding         seq, frame, kind, peer, detail, capture_ts
//	stream-end      status, offset, records, bytes, findings[, error]
//	stream-rejected proto, label, error
//
// Finding events are emitted the moment the incremental detector
// produces them — mid-stream, not at EOF — and their seq/frame/kind
// match what a batch forensics.Analyze over the same records would
// report, in the same order (the live/batch parity contract).
type Event struct {
	Type   string `json:"type"`
	Stream uint64 `json:"stream"`
	Proto  string `json:"proto,omitempty"`
	Label  string `json:"label,omitempty"`

	// Finding fields.
	Seq       uint64 `json:"seq,omitempty"`
	Frame     int    `json:"frame,omitempty"`
	Kind      string `json:"kind,omitempty"`
	Peer      string `json:"peer,omitempty"`
	Detail    string `json:"detail,omitempty"`
	CaptureTS string `json:"capture_ts,omitempty"`

	// Stream-end fields.
	Status   string `json:"status,omitempty"`
	Offset   int64  `json:"offset,omitempty"`
	Records  int    `json:"records,omitempty"`
	Bytes    int64  `json:"bytes,omitempty"`
	Findings uint64 `json:"findings,omitempty"`
	// EventsDropped counts this stream's events lost to the per-write
	// deadline before the end line was written: nonzero means the event
	// consumer stalled and the JSONL record is incomplete.
	EventsDropped uint64 `json:"events_dropped,omitempty"`
	Error         string `json:"error,omitempty"`
}

// Event types.
const (
	EventStreamStart    = "stream-start"
	EventFinding        = "finding"
	EventStreamEnd      = "stream-end"
	EventStreamRejected = "stream-rejected"
)

// Stream-end statuses: how a stream died. Operators branch on these to
// tell a phone log that was closed cleanly from a capture mangled in
// transit from a client that simply stopped sending.
const (
	// StatusClean: the stream ended on a record boundary — a complete log.
	StatusClean = "clean"
	// StatusTruncated: the stream died mid-record (io.ErrUnexpectedEOF);
	// Offset says where.
	StatusTruncated = "truncated"
	// StatusBadFraming: a record header's lengths are inconsistent
	// (snoop.ErrBadFraming); Offset points at the offending header.
	StatusBadFraming = "bad-framing"
	// StatusTimeout: the per-connection read deadline expired.
	StatusTimeout = "timeout"
	// StatusError: anything else (bad magic, transport failure, ...).
	StatusError = "error"
)

// ClassifyStreamError maps a snoop.Scanner error to a stream-end status.
func ClassifyStreamError(err error) string {
	switch {
	case err == nil:
		return StatusClean
	case errors.Is(err, snoop.ErrBadFraming):
		return StatusBadFraming
	case errors.Is(err, os.ErrDeadlineExceeded):
		return StatusTimeout
	case errors.Is(err, io.ErrUnexpectedEOF):
		return StatusTruncated
	default:
		return StatusError
	}
}

// findingEvent renders one detector event for a stream.
func findingEvent(id uint64, ev forensics.Event) Event {
	return Event{
		Type:      EventFinding,
		Stream:    id,
		Seq:       ev.Seq,
		Frame:     ev.Frame,
		Kind:      ev.Finding.Kind,
		Peer:      ev.Finding.Peer.String(),
		Detail:    ev.Finding.Detail,
		CaptureTS: ev.Time.UTC().Format(time.RFC3339Nano),
	}
}
