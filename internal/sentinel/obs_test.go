package sentinel

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/forensics"
	"repro/internal/snoop"
)

// TestConcurrentSnapshotsDuringIngest hammers Snapshot (and its JSON
// encoding, the /metrics path) from several goroutines while multiple
// streams ingest — the exact interleaving a scraped daemon sees. Run
// under -race this pins the lock-free histogram reads as safe.
func TestConcurrentSnapshotsDuringIngest(t *testing.T) {
	capture := synthCapture(t, 8000, 42)
	s := New(Config{Output: &syncBuffer{}})

	const streams = 3
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < streams; i++ {
		pr, pw := io.Pipe()
		wg.Add(2)
		go func() {
			defer wg.Done()
			defer pw.Close()
			// Chunked writes keep the stream alive across many snapshots.
			for off := 0; off < len(capture); off += 4096 {
				end := off + 4096
				if end > len(capture) {
					end = len(capture)
				}
				if _, err := pw.Write(capture[off:end]); err != nil {
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			s.Ingest("test", "conc", pr)
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := s.Snapshot()
				if _, err := json.Marshal(snap); err != nil {
					t.Errorf("snapshot marshal: %v", err)
					return
				}
			}
		}()
	}
	// Let ingest finish, then release the snapshot goroutines.
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(done)
	}()
	wg.Wait()

	snap := s.Snapshot()
	if snap.Records != uint64(streams*8000) {
		t.Fatalf("ingested %d records, want %d", snap.Records, streams*8000)
	}
	if snap.IngestLatency.Count == 0 {
		t.Fatal("sampled ingest histogram stayed empty over 24k records")
	}
}

// TestMetricsJSONSchema is the golden schema test for /metrics: the
// exact top-level key set, the per-stream key set, and the histogram
// key set are pinned so the PR 5 additions stay additive — a consumer
// of the old fields must never break, and accidental field renames
// fail here, not in an operator's dashboard.
func TestMetricsJSONSchema(t *testing.T) {
	capture := synthCapture(t, 6400, 42)
	recs, err := snoop.ReadAll(capture)
	if err != nil {
		t.Fatal(err)
	}
	wantFindings := len(forensics.Analyze(recs).Findings)
	if wantFindings == 0 {
		t.Fatal("fixture has no findings")
	}

	s := New(Config{Output: &syncBuffer{}})
	// Feed the whole capture but hold the stream open so the snapshot
	// sees a live per-stream row.
	pr, pw := io.Pipe()
	ingested := make(chan StreamSummary, 1)
	go func() { ingested <- s.Ingest("test", "schema", pr) }()
	if _, err := pw.Write(capture); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for s.Snapshot().Records < 6400 {
		select {
		case <-deadline:
			t.Fatal("ingest never consumed the capture")
		case <-time.After(time.Millisecond):
		}
	}

	raw, err := json.Marshal(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	assertKeys(t, "top-level", doc, []string{
		// The pre-PR5 document, unchanged:
		"uptime_sec", "streams_active", "streams_total", "streams_rejected",
		"max_streams", "records", "bytes", "bytes_per_sec", "records_per_sec",
		"events_emitted", "events_dropped", "packets", "findings_by_kind",
		"stream_ends_by_status", "streams",
		// PR 5 additive fields:
		"ingest_latency", "detect_latency", "stages",
		// PR 7 additive field: the per-shard breakdown.
		"shards",
		// PR 8 additive field: the durable event path's counters.
		"persist",
		// PR 9 additive field: the session resume protocol's lifecycle.
		"sessions",
	})

	var streams []map[string]json.RawMessage
	if err := json.Unmarshal(doc["streams"], &streams); err != nil {
		t.Fatal(err)
	}
	if len(streams) != 1 {
		t.Fatalf("want 1 live stream row, got %d", len(streams))
	}
	assertKeys(t, "stream row", streams[0], []string{
		"id", "proto", "label", "records", "bytes", "findings", "lag_ms",
		"ingest_latency", "detect_latency",
		// PR 7 additive field: the shard the stream is pinned to.
		"shard",
	})

	var shards []map[string]json.RawMessage
	if err := json.Unmarshal(doc["shards"], &shards); err != nil {
		t.Fatal(err)
	}
	if len(shards) == 0 {
		t.Fatal("shards section empty")
	}
	assertKeys(t, "shard row", shards[0], []string{
		"shard", "streams_active", "streams_total", "records", "bytes",
		"events_emitted", "events_dropped", "ingest_latency",
	})

	var hist map[string]json.RawMessage
	if err := json.Unmarshal(doc["ingest_latency"], &hist); err != nil {
		t.Fatal(err)
	}
	assertKeys(t, "histogram", hist, []string{
		"count", "mean_us", "min_us", "max_us", "p50_us", "p90_us", "p99_us",
	})

	var stages map[string]json.RawMessage
	if err := json.Unmarshal(doc["stages"], &stages); err != nil {
		t.Fatal(err)
	}
	assertKeys(t, "stages", stages, []string{"scan", "push", "drain", "emit"})

	// Histogram population contract: one detect observation per finding,
	// both per-stream and aggregate; sampled ingest timing non-empty.
	snap := s.Snapshot()
	if snap.DetectLatency.Count != uint64(wantFindings) {
		t.Fatalf("aggregate detect observations %d, want %d (one per finding)", snap.DetectLatency.Count, wantFindings)
	}
	if got := snap.Streams[0].DetectLatency.Count; got != uint64(wantFindings) {
		t.Fatalf("stream detect observations %d, want %d", got, wantFindings)
	}
	if snap.IngestLatency.Count == 0 || snap.Streams[0].IngestLatency.Count == 0 {
		t.Fatal("sampled ingest histograms stayed empty over 6400 records")
	}

	pw.Close()
	sum := <-ingested
	if sum.Status != StatusClean {
		t.Fatalf("stream ended %q: %v", sum.Status, sum.Err)
	}
}

func assertKeys(t *testing.T, what string, doc map[string]json.RawMessage, want []string) {
	t.Helper()
	for _, k := range want {
		if _, ok := doc[k]; !ok {
			t.Errorf("%s: missing key %q", what, k)
		}
	}
	if len(doc) != len(want) {
		got := make([]string, 0, len(doc))
		for k := range doc {
			got = append(got, k)
		}
		t.Errorf("%s: %d keys, want %d (got %v)", what, len(doc), len(want), got)
	}
}

// TestPprofGatedByConfig pins the profiling mux's opt-in: without
// EnablePprof the debug endpoints must not exist.
func TestPprofGatedByConfig(t *testing.T) {
	capture := synthCapture(t, 100, 1)
	for _, enabled := range []bool{false, true} {
		s := startServer(t, Config{
			HTTPAddr:    "127.0.0.1:0",
			EnablePprof: enabled,
			Output:      &syncBuffer{},
		})
		_ = s.Ingest("test", "pprof", bytes.NewReader(capture))
		resp, err := http.Get("http://" + s.HTTPAddr() + "/debug/pprof/cmdline")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		want := http.StatusNotFound
		if enabled {
			want = http.StatusOK
		}
		if resp.StatusCode != want {
			t.Fatalf("enabled=%v: /debug/pprof/cmdline returned %d, want %d", enabled, resp.StatusCode, want)
		}
	}
}
