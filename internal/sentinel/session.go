package sentinel

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/forensics"
	"repro/internal/tsdb"
)

// Session resume protocol.
//
// A connection whose first eight bytes are sessionMagic speaks the
// resumable framing instead of raw btsnoop: after the magic comes a
// one-byte protocol version, a little-endian u16 session-id length and
// the id bytes, and a u16 tenant length and the tenant bytes. The
// server answers with a session-hello JSONL line on the connection
// carrying the stream id and the capture byte offset it already holds;
// the client seeks its capture to that offset and sends payload as
// u32-LE length-prefixed chunks, a zero-length chunk marking the clean
// end. The server acks delivery progress (session-ack lines, every
// Config.AckEvery payload bytes, best effort) on the same connection.
//
// When the transport dies mid-stream the server parks the pipeline —
// scanner tail, detector state, counters, everything — for
// Config.ResumeGrace, keyed by the session id. A reconnect with the
// same id adopts the parked pipeline: the hello tells the client where
// to resume, and the findings the merged run emits are byte-identical
// to an uninterrupted ingest of the same capture (the chaos
// differential in chaos.go sweeps a cut at every payload offset to pin
// exactly that). A restart survives too: periodic detector checkpoints
// land in the store, RecoverSessions rebuilds parkable entries from
// them, and a reconnect restores the detector from the checkpoint (the
// hello then points at the checkpoint offset, which is always a record
// boundary).
const (
	sessionMagic   = "blapses1"
	sessionVersion = 1
	// maxSessionID / maxTenantLen bound handshake allocations; an id is
	// an operator-chosen resume key, not a payload.
	maxSessionID = 128
	maxTenantLen = 64
	// maxSessionChunk rejects absurd chunk headers before allocating or
	// waiting on them — the client-side chunker writes sessionChunkSize.
	// The chunk matches the ingest scanner's block size so the framing
	// adds one 4-byte header read per scanner block fill, not several.
	maxSessionChunk  = 4 << 20
	sessionChunkSize = 256 << 10
	// connWriteDeadline bounds hello/ack writes to the client socket so a
	// client that stopped reading cannot wedge the ingest reader.
	connWriteDeadline = 2 * time.Second
)

// sessionCounters is the daemon-wide session-lifecycle accounting
// surfaced as the "sessions" block of /metrics.
type sessionCounters struct {
	parked      atomic.Int64
	parkedTotal atomic.Uint64
	resumed     atomic.Uint64
	expired     atomic.Uint64
	checkpoints atomic.Uint64
	restored    atomic.Uint64
}

// sessionEntry is the session table's record for one session id: the
// live stream bound to it, or a parked/cold pipeline waiting for a
// reconnect. All fields are guarded by Server.sessMu except the
// channels, which are safe to use after a locked lookup.
type sessionEntry struct {
	sid    string
	tenant string
	stream uint64
	// conn is the session's current transport (nil while parked/cold).
	conn net.Conn
	// resumeC hands a replacement transport to the parked reader;
	// capacity 1, latest-wins (the router drains a stale queued conn
	// before pushing).
	resumeC chan net.Conn
	// abortC, closed by shutdown, tells a parked reader to die as
	// "aborted" (checkpointed, resumable after restart) instead of
	// waiting out the grace window.
	abortC chan struct{}
	// aborted records that abortC is closed (close-once guard).
	aborted bool
	// parked is true while a live pipeline is waiting in park().
	parked bool
	// cold marks an entry rebuilt from a stored checkpoint by
	// RecoverSessions: there is no pipeline to adopt — a reconnect
	// restores the detector from ckpt and starts a fresh one.
	cold bool
	// gone marks the entry dead (dropped from the table); a racing
	// holder of a stale pointer must treat it as absent.
	gone bool
	// admitted records that this entry holds a tenant quota slot.
	admitted bool
	// expire times out a cold entry that nobody reclaims.
	expire *time.Timer
	// ckpt is the restored checkpoint backing a cold entry.
	ckpt *ckptDoc
}

// handleConn owns one accepted ingestion connection: it sniffs the
// first eight bytes to pick the protocol — sessionMagic selects the
// resumable session framing, anything else (including a short or dead
// stream) replays the sniffed bytes into the classic raw-btsnoop
// pipeline so pre-session clients see byte-identical classification.
// st is the provisional stream registered at accept time.
func (s *Server) handleConn(st *streamState, conn net.Conn) {
	var pre [len(sessionMagic)]byte
	if t := s.cfg.ReadTimeout; t > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(t))
	}
	n, err := io.ReadFull(conn, pre[:])
	_ = conn.SetReadDeadline(time.Time{})
	if err == nil && string(pre[:]) == sessionMagic {
		s.routeSession(st, conn)
		return
	}
	if err == io.ErrUnexpectedEOF {
		// A raw conn.Read never reports ErrUnexpectedEOF; the sniff's
		// ReadFull synthesized it from a short delivery plus EOF. Convert
		// back so the scanner classifies exactly as it did pre-sniff.
		err = io.EOF
	}
	r := &prefixReader{pre: pre[:n], err: err,
		r: deadlineReader{conn: conn, timeout: s.cfg.ReadTimeout}}
	s.runPipeline(st, r, nil)
}

// prefixReader replays sniffed bytes, then the sniff's terminal error
// (sticky), then the live transport — splicing the protocol sniff out
// of the raw pipeline's view of the stream.
type prefixReader struct {
	pre []byte
	err error
	r   io.Reader
}

func (p *prefixReader) Read(b []byte) (int, error) {
	if len(p.pre) > 0 {
		n := copy(b, p.pre)
		p.pre = p.pre[n:]
		return n, nil
	}
	if p.err != nil {
		return 0, p.err
	}
	return p.r.Read(b)
}

// readSessionHandshake parses the post-magic handshake fields.
func (s *Server) readSessionHandshake(conn net.Conn) (sid, tenant string, err error) {
	if t := s.cfg.ReadTimeout; t > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(t))
		defer conn.SetReadDeadline(time.Time{})
	}
	var b [2]byte
	if _, err := io.ReadFull(conn, b[:1]); err != nil {
		return "", "", fmt.Errorf("session handshake: %w", err)
	}
	if b[0] != sessionVersion {
		return "", "", fmt.Errorf("session protocol version %d unsupported (want %d)", b[0], sessionVersion)
	}
	readStr := func(max int, what string) (string, error) {
		if _, err := io.ReadFull(conn, b[:2]); err != nil {
			return "", fmt.Errorf("session handshake %s length: %w", what, err)
		}
		n := int(binary.LittleEndian.Uint16(b[:2]))
		if n > max {
			return "", fmt.Errorf("session %s %d bytes exceeds cap %d", what, n, max)
		}
		if n == 0 {
			return "", nil
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(conn, buf); err != nil {
			return "", fmt.Errorf("session handshake %s: %w", what, err)
		}
		return string(buf), nil
	}
	if sid, err = readStr(maxSessionID, "id"); err != nil {
		return "", "", err
	}
	if sid == "" {
		return "", "", fmt.Errorf("session id must not be empty")
	}
	if tenant, err = readStr(maxTenantLen, "tenant"); err != nil {
		return "", "", err
	}
	return sid, tenant, nil
}

// rejectSession tears down a handshaking connection: the reason is
// written to the client (so DialSession surfaces it) and emitted as a
// stream-rejected event, the provisional stream is unwound, and the
// slot is released.
func (s *Server) rejectSession(st *streamState, conn net.Conn, sid, reason string) {
	s.metrics.streamsRejected.Add(1)
	ev := Event{Type: EventStreamRejected, Stream: st.id,
		Proto: st.proto, Label: st.label, Session: sid, Error: reason}
	_ = writeConnEvent(conn, ev)
	s.emit(nil, ev)
	s.unregister(st)
	_ = conn.Close()
	st.release()
}

// routeSession binds a handshaken connection to the session table:
// fresh id → new pipeline; cold id → restore the checkpointed detector
// and resume mid-capture; live or parked id → hand the transport to the
// existing pipeline (latest connection wins).
func (s *Server) routeSession(st *streamState, conn net.Conn) {
	sid, tenant, err := s.readSessionHandshake(conn)
	if err != nil {
		s.rejectSession(st, conn, "", err.Error())
		return
	}
	s.sessMu.Lock()
	ent := s.sessions[sid]
	if ent != nil && ent.gone {
		ent = nil
	}
	switch {
	case ent == nil:
		if !s.admitTenantLocked(tenant) {
			q := s.cfg.TenantQuota
			s.sessMu.Unlock()
			s.rejectSession(st, conn, sid, fmt.Sprintf("tenant quota %d reached", q))
			return
		}
		ent = &sessionEntry{
			sid: sid, tenant: tenant, stream: st.id, conn: conn,
			admitted: tenant != "",
			resumeC:  make(chan net.Conn, 1),
			abortC:   make(chan struct{}),
		}
		s.sessions[sid] = ent
		s.sessMu.Unlock()
		st.session, st.tenant, st.ent = sid, tenant, ent
		_ = writeConnEvent(conn, Event{Type: EventSessionHello, Stream: st.id, Session: sid})
		s.runPipeline(st, newSessionReader(s, st, conn, 0), nil)

	case ent.cold:
		if !s.admitTenantLocked(ent.tenant) {
			q := s.cfg.TenantQuota
			s.sessMu.Unlock()
			// The cold entry survives the rejection: the checkpoint stays
			// reclaimable until its grace timer fires.
			s.rejectSession(st, conn, sid, fmt.Sprintf("tenant quota %d reached", q))
			return
		}
		ent.cold = false
		ent.admitted = ent.tenant != ""
		ent.conn = conn
		if ent.expire != nil {
			ent.expire.Stop()
			ent.expire = nil
		}
		ckpt := ent.ckpt
		s.sessMu.Unlock()

		det := forensics.NewDetector()
		if err := det.RestoreState(ckpt.State); err != nil {
			s.sessMu.Lock()
			s.dropSessionLocked(ent)
			s.sessMu.Unlock()
			s.rejectSession(st, conn, sid, fmt.Sprintf("checkpoint restore: %v", err))
			return
		}
		// Rebind to the restored identity: the resumed stream keeps the
		// stream id its findings were emitted under before the restart.
		s.unregister(st)
		rst := &streamState{
			id: ckpt.Stream, proto: st.proto, label: st.label, conn: conn,
			session: sid, tenant: ent.tenant, ent: ent, release: st.release,
		}
		rst.sh = s.shardFor(rst.id)
		s.register(rst)
		s.sess.resumed.Add(1)
		s.emit(rst, Event{Type: EventSessionResumed, Stream: rst.id, Session: sid, Offset: ckpt.Offset})
		_ = writeConnEvent(conn, Event{Type: EventSessionHello, Stream: rst.id, Session: sid, Offset: ckpt.Offset})
		s.runPipeline(rst, newSessionReader(s, rst, conn, ckpt.Offset), &resumeState{
			det: det, off: ckpt.Offset, frames: ckpt.Frames,
			datalink: ckpt.Datalink, ckptSeq: ckpt.Seq,
		})

	default:
		// Live or parked: adopt. Latest connection wins — a stale queued
		// replacement is discarded, and closing the entry's current
		// transport kicks an actively-reading pipeline into park, where it
		// immediately finds the replacement.
		select {
		case stale := <-ent.resumeC:
			_ = stale.Close()
		default:
		}
		ent.resumeC <- conn
		if ent.conn != nil {
			_ = ent.conn.Close()
			ent.conn = nil
		}
		s.sessMu.Unlock()
		s.unregister(st)
		st.release()
	}
}

// admitTenantLocked claims a tenant quota slot (sessMu held). The empty
// tenant is never quota-limited.
func (s *Server) admitTenantLocked(tenant string) bool {
	if tenant == "" {
		return true
	}
	if q := s.cfg.TenantQuota; q > 0 && s.tenants[tenant] >= q {
		return false
	}
	s.tenants[tenant]++
	return true
}

// dropSessionLocked removes an entry from the session table (sessMu
// held), releasing its tenant slot, stopping its timer, and closing any
// replacement transport queued after the decision to drop.
func (s *Server) dropSessionLocked(ent *sessionEntry) {
	if ent == nil || ent.gone {
		return
	}
	ent.gone = true
	delete(s.sessions, ent.sid)
	if ent.expire != nil {
		ent.expire.Stop()
		ent.expire = nil
	}
	if ent.admitted {
		ent.admitted = false
		if n := s.tenants[ent.tenant]; n <= 1 {
			delete(s.tenants, ent.tenant)
		} else {
			s.tenants[ent.tenant] = n - 1
		}
	}
	select {
	case c := <-ent.resumeC:
		_ = c.Close()
	default:
	}
}

// abortEntryLocked closes the entry's abort channel once (sessMu held).
func abortEntryLocked(ent *sessionEntry) {
	if ent != nil && !ent.aborted {
		ent.aborted = true
		close(ent.abortC)
	}
}

// abortSessions marks every session for shutdown: live and parked
// entries get their abort channel closed (the pipeline ends "aborted"
// after checkpointing), cold entries are dropped silently — their
// checkpoints are already durable and a restarted daemon rebuilds them.
func (s *Server) abortSessions() {
	s.sessMu.Lock()
	ents := make([]*sessionEntry, 0, len(s.sessions))
	for _, ent := range s.sessions {
		ents = append(ents, ent)
	}
	for _, ent := range ents {
		if ent.cold {
			s.dropSessionLocked(ent)
			continue
		}
		abortEntryLocked(ent)
	}
	s.sessMu.Unlock()
}

// sessionReader adapts the chunked session transport into the plain
// io.Reader the scanner pipeline consumes — and hides transport death
// from it: a read error parks the stream inside Read for the resume
// grace window and, on adoption, continues delivering bytes as if
// nothing happened. Only the reader goroutine touches its fields.
type sessionReader struct {
	s  *Server
	st *streamState
	// conn is the current transport (replaced across adoptions).
	conn net.Conn
	// remaining is what's left of the current chunk.
	remaining int64
	// delivered counts payload bytes handed to the scanner — the resume
	// offset a warm hello advertises (the scanner may hold a partial
	// record tail inside that count; an adopting client does not resend
	// it).
	delivered int64
	ackedAt   int64
	fin       bool
	// onPark, set by runPipeline, pushes a checkpoint marker through the
	// batch ring. Called on the reader goroutine — the ring's producer —
	// right after the stream parks, so the detector snapshots exactly
	// the state matching the park offset.
	onPark func()
	hdr    [4]byte
}

func newSessionReader(s *Server, st *streamState, conn net.Conn, delivered int64) *sessionReader {
	return &sessionReader{s: s, st: st, conn: conn, delivered: delivered, ackedAt: delivered}
}

func (r *sessionReader) Read(p []byte) (int, error) {
	for {
		if r.fin {
			return 0, io.EOF
		}
		if r.remaining == 0 {
			if err := r.readHeader(); err != nil {
				if terminalTransport(err) {
					return 0, err
				}
				if resumed, perr := r.park(); !resumed {
					return 0, perr
				}
				continue
			}
			n := binary.LittleEndian.Uint32(r.hdr[:])
			if n == 0 {
				r.fin = true
				return 0, io.EOF
			}
			if n > maxSessionChunk {
				return 0, fmt.Errorf("sentinel: session chunk %d bytes exceeds cap %d", n, maxSessionChunk)
			}
			r.remaining = int64(n)
		}
		limit := len(p)
		if int64(limit) > r.remaining {
			limit = int(r.remaining)
		}
		n, err := r.readConn(p[:limit])
		if n > 0 {
			r.remaining -= int64(n)
			r.delivered += int64(n)
			r.maybeAck()
			// An error delivered alongside bytes resurfaces on the next
			// call; the bytes go to the scanner first.
			return n, nil
		}
		if err == nil {
			continue
		}
		if terminalTransport(err) {
			return 0, err
		}
		if resumed, perr := r.park(); !resumed {
			return 0, perr
		}
	}
}

// terminalTransport reports errors that must end the stream rather than
// park it: a read deadline means the client is connected and silent —
// the timeout classification, not a disconnect.
func terminalTransport(err error) bool {
	return errors.Is(err, os.ErrDeadlineExceeded)
}

// readHeader reads the next chunk header under one absolute deadline.
// Partial header bytes lost to a transport cut are not capture bytes:
// an adopting client re-frames from the acked payload offset.
func (r *sessionReader) readHeader() error {
	if t := r.s.cfg.ReadTimeout; t > 0 {
		_ = r.conn.SetReadDeadline(time.Now().Add(t))
	}
	_, err := io.ReadFull(r.conn, r.hdr[:])
	return err
}

func (r *sessionReader) readConn(p []byte) (int, error) {
	if t := r.s.cfg.ReadTimeout; t > 0 {
		_ = r.conn.SetReadDeadline(time.Now().Add(t))
	}
	return r.conn.Read(p)
}

func (r *sessionReader) maybeAck() {
	if r.delivered-r.ackedAt < r.s.cfg.AckEvery {
		return
	}
	r.ackedAt = r.delivered
	_ = writeConnEvent(r.conn, Event{Type: EventSessionAck, Stream: r.st.id, Offset: r.delivered})
}

// park suspends the stream after a transport error. It returns
// (true, nil) once a replacement connection was adopted, or
// (false, err) with the error that must end the stream: ErrAborted for
// shutdown, io.ErrUnexpectedEOF when the grace window expired (the
// capture is then truncated at the death offset, exactly as if the raw
// protocol had died there).
func (r *sessionReader) park() (bool, error) {
	s, st := r.s, r.st
	ent := st.ent
	adopt := func(c net.Conn) (bool, error) {
		r.adopt(c)
		s.sess.resumed.Add(1)
		s.emit(st, Event{Type: EventSessionResumed, Stream: st.id, Session: st.session, Offset: r.delivered})
		return true, nil
	}
	// Fast path: the client reconnected before the old transport's death
	// surfaced here. Adopt without ever counting a park.
	select {
	case c := <-ent.resumeC:
		return adopt(c)
	default:
	}
	if s.draining.Load() || st.aborted.Load() {
		return false, ErrAborted
	}
	select {
	case <-ent.abortC:
		return false, ErrAborted
	default:
	}
	if s.cfg.ResumeGrace < 0 {
		return false, io.ErrUnexpectedEOF
	}
	s.sessMu.Lock()
	if ent.gone {
		s.sessMu.Unlock()
		return false, io.ErrUnexpectedEOF
	}
	ent.parked = true
	ent.conn = nil
	s.sessMu.Unlock()
	s.connMu.Lock()
	st.conn = nil
	s.connMu.Unlock()
	s.sess.parked.Add(1)
	s.sess.parkedTotal.Add(1)
	s.emit(st, Event{Type: EventSessionParked, Stream: st.id, Session: st.session, Offset: r.delivered})
	if r.onPark != nil {
		// Checkpoint the detector at the park point: if the daemon dies
		// during the grace window, the stored state resumes this stream.
		r.onPark()
	}
	unpark := func() {
		s.sessMu.Lock()
		ent.parked = false
		s.sessMu.Unlock()
		s.sess.parked.Add(-1)
	}
	timer := time.NewTimer(s.cfg.ResumeGrace)
	defer timer.Stop()
	select {
	case c := <-ent.resumeC:
		unpark()
		return adopt(c)
	case <-ent.abortC:
		unpark()
		return false, ErrAborted
	case <-timer.C:
		s.sessMu.Lock()
		select {
		case c := <-ent.resumeC:
			// Adoption raced the expiry under the lock; the client wins.
			ent.parked = false
			s.sessMu.Unlock()
			s.sess.parked.Add(-1)
			return adopt(c)
		default:
		}
		ent.parked = false
		s.dropSessionLocked(ent)
		s.sessMu.Unlock()
		s.sess.parked.Add(-1)
		s.sess.expired.Add(1)
		s.emit(st, Event{Type: EventSessionExpired, Stream: st.id, Session: st.session, Offset: r.delivered})
		return false, io.ErrUnexpectedEOF
	}
}

// adopt switches the reader onto a replacement transport and tells the
// client where to resume: the hello's offset is the payload byte count
// already delivered to the scanner — the client seeks there and
// re-frames, so bytes lost in flight on the dead transport are simply
// sent again.
func (r *sessionReader) adopt(c net.Conn) {
	s, st := r.s, r.st
	s.connMu.Lock()
	st.conn = c
	s.connMu.Unlock()
	s.sessMu.Lock()
	st.ent.conn = c
	s.sessMu.Unlock()
	r.conn = c
	r.remaining = 0
	r.ackedAt = r.delivered
	_ = writeConnEvent(c, Event{Type: EventSessionHello, Stream: st.id, Session: st.session, Offset: r.delivered})
}

// writeConnEvent writes one JSONL event to the client connection under
// a short deadline. Best effort: the ingest path never waits on a
// client that stopped reading.
func writeConnEvent(conn net.Conn, ev Event) error {
	buf := ev.appendJSON(make([]byte, 0, 192))
	buf = append(buf, '\n')
	_ = conn.SetWriteDeadline(time.Now().Add(connWriteDeadline))
	_, err := conn.Write(buf)
	_ = conn.SetWriteDeadline(time.Time{})
	return err
}

// sessionKey maps a session id to the tsdb key its checkpoints are
// stored under (FNV-64a; 0 is reserved as the query wildcard).
func sessionKey(sid string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(sid))
	k := h.Sum64()
	if k == tsdb.KeyAny {
		k = 1
	}
	return k
}

// RecoverSessions rebuilds parkable session entries from the
// checkpoints persisted in the store: for every session whose
// highest-seq checkpoint is not a tombstone, a cold entry is created
// that a reconnecting client can claim within ResumeGrace (after which
// it expires with a session-expired event and a tombstone). Stream id
// allocation continues above the highest restored id so resumed and new
// streams never collide. Call after New and before Start; returns the
// number of sessions restored.
func (s *Server) RecoverSessions() (int, error) {
	if s.cfg.Store == nil {
		return 0, fmt.Errorf("sentinel: RecoverSessions requires a store")
	}
	best := make(map[string]*ckptDoc)
	err := s.cfg.Store.Query(SeriesCkpt, 0, math.MaxInt64, tsdb.KeyAny, func(fr tsdb.Frame) error {
		var d ckptDoc
		if decodeCkptFrame(fr.Data, &d) != nil || d.Session == "" {
			return nil // skip corrupt frames; later checkpoints still count
		}
		if b, ok := best[d.Session]; !ok || d.Seq > b.Seq {
			dd := d
			best[d.Session] = &dd
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	restored := 0
	var maxStream uint64
	s.sessMu.Lock()
	for sid, d := range best {
		if d.Done {
			continue
		}
		if _, exists := s.sessions[sid]; exists {
			continue
		}
		ent := &sessionEntry{
			sid: sid, tenant: d.Tenant, stream: d.Stream,
			cold: true, ckpt: d,
			resumeC: make(chan net.Conn, 1),
			abortC:  make(chan struct{}),
		}
		if s.cfg.ResumeGrace > 0 {
			e := ent
			ent.expire = time.AfterFunc(s.cfg.ResumeGrace, func() { s.expireCold(e) })
		}
		s.sessions[sid] = ent
		if d.Stream > maxStream {
			maxStream = d.Stream
		}
		restored++
	}
	s.sessMu.Unlock()
	for {
		cur := s.nextID.Load()
		if cur >= maxStream || s.nextID.CompareAndSwap(cur, maxStream) {
			break
		}
	}
	s.sess.restored.Add(uint64(restored))
	return restored, nil
}

// expireCold retires a cold entry nobody reclaimed: the session table
// slot goes away, a session-expired event records it, and a tombstone
// checkpoint (best effort) stops the next restart from resurrecting it.
func (s *Server) expireCold(ent *sessionEntry) {
	s.sessMu.Lock()
	if ent.gone || !ent.cold {
		s.sessMu.Unlock()
		return
	}
	s.dropSessionLocked(ent)
	s.sessMu.Unlock()
	s.sess.expired.Add(1)
	s.emit(nil, Event{Type: EventSessionExpired, Stream: ent.stream, Session: ent.sid, Offset: ent.ckpt.Offset})
	sh := s.shardFor(ent.stream)
	if sh.persist != nil {
		d := *ent.ckpt
		d.Seq++
		d.Done = true
		d.State = nil
		sh.tryPersist(persistItem{ckpt: &d, ts: time.Now().UnixNano()}, false)
	}
}

// watchdogLoop scans for streams whose detector stage has been busy on
// one batch longer than Config.Watchdog and force-fails them — a wedged
// detector (or a stalled test hook) costs its own stream, never the
// daemon. Ticks at a quarter of the threshold.
func (s *Server) watchdogLoop() {
	defer close(s.wdDone)
	period := s.cfg.Watchdog / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.wdStop:
			return
		case now := <-t.C:
			var stalled []*streamState
			s.connMu.Lock()
			for _, st := range s.streams {
				if st.beat.Stalled(now, s.cfg.Watchdog) {
					stalled = append(stalled, st)
				}
			}
			s.connMu.Unlock()
			for _, st := range stalled {
				s.failWedged(st)
			}
		}
	}
}

// failWedged force-fails one stream whose detector loop stopped making
// progress: its session is aborted, its transport closed, and the
// stream finalized as "error" from the counters the pipeline maintained
// — the wedged goroutines are abandoned (their late emissions are
// dropped by the finalize guard) and the stream slot is released. No
// final checkpoint is written: a wedged detector's state is suspect, so
// the last periodic checkpoint remains the durable resume point.
func (s *Server) failWedged(st *streamState) {
	if st.finalized.Load() {
		return
	}
	if st.ent != nil {
		s.sessMu.Lock()
		abortEntryLocked(st.ent)
		s.sessMu.Unlock()
	}
	st.aborted.Store(true)
	s.connMu.Lock()
	if st.conn != nil {
		_ = st.conn.Close()
	}
	s.connMu.Unlock()
	err := fmt.Errorf("sentinel: watchdog: detector stalled past %v", s.cfg.Watchdog)
	sum := StreamSummary{
		ID: st.id, Proto: st.proto, Label: st.label,
		Records:  int(st.records.Load()),
		Bytes:    st.bytes.Load(),
		Findings: st.findings.Load(),
		Status:   StatusError,
		Offset:   st.bytes.Load(),
		Err:      err,
	}
	end := Event{
		Type: EventStreamEnd, Stream: st.id, Proto: st.proto, Label: st.label,
		Session: st.session, Status: StatusError, Offset: sum.Offset,
		Records: sum.Records, Bytes: sum.Bytes, Findings: sum.Findings,
		EventsDropped: st.dropped.Load(), Error: err.Error(),
	}
	s.finalize(st, &sum, end)
}

// SessionHello is the server's answer to a session handshake: the
// stream id bound to the session and the capture byte offset the server
// already holds — the client resumes sending from there.
type SessionHello struct {
	Stream uint64
	Offset int64
}

// DialSession opens a resumable ingestion session: it dials the
// server, performs the session handshake (id and optional tenant), and
// returns the connection plus the server's hello. On a fresh session
// the hello offset is 0; on a resume it is where to seek the capture
// before streaming with WriteSessionChunks. timeout bounds the dial and
// the handshake round trip; <=0 means no deadline.
func DialSession(network, addr, session, tenant string, timeout time.Duration) (net.Conn, SessionHello, error) {
	if len(session) == 0 || len(session) > maxSessionID {
		return nil, SessionHello{}, fmt.Errorf("sentinel: session id length %d (want 1..%d)", len(session), maxSessionID)
	}
	if len(tenant) > maxTenantLen {
		return nil, SessionHello{}, fmt.Errorf("sentinel: tenant length %d exceeds %d", len(tenant), maxTenantLen)
	}
	conn, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, SessionHello{}, err
	}
	if timeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(timeout))
	}
	hs := make([]byte, 0, len(sessionMagic)+5+len(session)+len(tenant))
	hs = append(hs, sessionMagic...)
	hs = append(hs, sessionVersion)
	hs = binary.LittleEndian.AppendUint16(hs, uint16(len(session)))
	hs = append(hs, session...)
	hs = binary.LittleEndian.AppendUint16(hs, uint16(len(tenant)))
	hs = append(hs, tenant...)
	if _, err := conn.Write(hs); err != nil {
		_ = conn.Close()
		return nil, SessionHello{}, fmt.Errorf("sentinel: session handshake write: %w", err)
	}
	// The hello is the first line on the wire; read it byte-by-byte so
	// nothing past the newline (acks arrive later) is consumed.
	line := make([]byte, 0, 192)
	var one [1]byte
	for {
		if _, err := conn.Read(one[:]); err != nil {
			_ = conn.Close()
			return nil, SessionHello{}, fmt.Errorf("sentinel: session hello read: %w", err)
		}
		if one[0] == '\n' {
			break
		}
		line = append(line, one[0])
		if len(line) > 512 {
			_ = conn.Close()
			return nil, SessionHello{}, fmt.Errorf("sentinel: session hello line exceeds 512 bytes")
		}
	}
	var hello struct {
		Type   string `json:"type"`
		Stream uint64 `json:"stream"`
		Offset int64  `json:"offset"`
		Error  string `json:"error"`
	}
	if err := json.Unmarshal(line, &hello); err != nil {
		_ = conn.Close()
		return nil, SessionHello{}, fmt.Errorf("sentinel: bad session hello %q: %w", line, err)
	}
	if hello.Type != EventSessionHello {
		_ = conn.Close()
		if hello.Error != "" {
			return nil, SessionHello{}, fmt.Errorf("sentinel: session rejected: %s", hello.Error)
		}
		return nil, SessionHello{}, fmt.Errorf("sentinel: unexpected %q in place of session hello", hello.Type)
	}
	_ = conn.SetDeadline(time.Time{})
	return conn, SessionHello{Stream: hello.Stream, Offset: hello.Offset}, nil
}

// WriteSessionChunks streams r to an established session connection in
// length-prefixed chunks, returning the payload byte count written. It
// does not write the fin marker — call WriteSessionFin after, or close
// the connection to leave the session resumable.
func WriteSessionChunks(w io.Writer, r io.Reader) (int64, error) {
	// Header and payload go out in one writev (net.Buffers) so each
	// chunk costs a single syscall on a socket; non-conn writers fall
	// back to sequential writes with identical bytes on the wire.
	buf := make([]byte, 4+sessionChunkSize)
	var total int64
	for {
		n, rerr := r.Read(buf[4:])
		if n > 0 {
			binary.LittleEndian.PutUint32(buf[:4], uint32(n))
			bufs := net.Buffers{buf[:4], buf[4 : 4+n]}
			nn, err := bufs.WriteTo(w)
			if m := nn - 4; m > 0 {
				total += m
			}
			if err != nil {
				return total, err
			}
		}
		if rerr == io.EOF {
			return total, nil
		}
		if rerr != nil {
			return total, rerr
		}
	}
}

// WriteSessionBytes streams an in-memory capture to an established
// session connection in length-prefixed chunks, returning the payload
// byte count written. Wire bytes are identical to WriteSessionChunks
// over the same data; the difference is purely client-side cost — each
// chunk is a writev straight out of the caller's slice, so the capture
// is never staged through an intermediate buffer. On a host where the
// sending client shares cores with the daemon (the co-located
// configuration the ingest benches measure), that copy is pure loss.
func WriteSessionBytes(w io.Writer, data []byte) (int64, error) {
	var hdr [4]byte
	var total int64
	for off := 0; off < len(data); off += sessionChunkSize {
		end := off + sessionChunkSize
		if end > len(data) {
			end = len(data)
		}
		binary.LittleEndian.PutUint32(hdr[:], uint32(end-off))
		bufs := net.Buffers{hdr[:], data[off:end]}
		nn, err := bufs.WriteTo(w)
		if m := nn - 4; m > 0 {
			total += m
		}
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// WriteSessionFin writes the zero-length chunk that marks the clean end
// of a session stream.
func WriteSessionFin(w io.Writer) error {
	var hdr [4]byte
	_, err := w.Write(hdr[:])
	return err
}
