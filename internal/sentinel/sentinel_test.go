package sentinel

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/forensics"
	"repro/internal/snoop"
)

// syncBuffer is a mutex-guarded event sink for in-process servers.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Lines() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

func parseEvents(t *testing.T, raw []byte) []Event {
	t.Helper()
	var out []Event
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func synthCapture(t testing.TB, records int, seed int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := snoop.Synthesize(&buf, snoop.SynthConfig{Records: records, Seed: seed}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// TestConcurrentStreamsMatchBatch is the subsystem's acceptance test:
// many concurrent clients stream synthesized captures over real TCP and
// Unix sockets — enough of them that every event shard carries several
// streams at once — and for every stream the live finding events must
// equal the batch forensics.Analyze findings over the same records:
// kind, frame, sequence, peer, and detail, record for record, in
// per-stream order even though four shard writers interleave their
// batches on the shared output.
func TestConcurrentStreamsMatchBatch(t *testing.T) {
	const clients = 64 // several streams per shard, per the acceptance bar

	var out syncBuffer
	ends := make(chan StreamSummary, clients)
	sock := filepath.Join(t.TempDir(), "blapd.sock")
	s := startServer(t, Config{
		TCPAddr:     "127.0.0.1:0",
		UnixAddr:    sock,
		HTTPAddr:    "127.0.0.1:0",
		MaxStreams:  clients,
		Shards:      4,
		Output:      &out,
		OnStreamEnd: func(sum StreamSummary) { ends <- sum },
	})

	// Unique record counts let us match stream IDs back to captures from
	// the stream-end events alone.
	captures := make(map[int][]byte) // record count -> capture
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		records := 4000 + 17*i
		data := synthCapture(t, records, int64(100+i))
		captures[records] = data
		network, addr := "tcp", s.TCPAddr()
		if i%2 == 1 {
			network, addr = "unix", s.UnixAddr()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial(network, addr)
			if err != nil {
				t.Errorf("dial %s: %v", network, err)
				return
			}
			defer conn.Close()
			if _, err := conn.Write(data); err != nil {
				t.Errorf("stream %s: %v", network, err)
			}
		}()
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		select {
		case sum := <-ends:
			if sum.Status != StatusClean {
				t.Fatalf("stream %d ended %q (%v)", sum.ID, sum.Status, sum.Err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("timed out waiting for stream %d of %d to finish", i+1, clients)
		}
	}

	events := parseEvents(t, out.Lines())
	byStream := make(map[uint64][]Event)
	for _, ev := range events {
		byStream[ev.Stream] = append(byStream[ev.Stream], ev)
	}
	if len(byStream) != clients {
		t.Fatalf("events for %d streams, want %d", len(byStream), clients)
	}

	totalFindings := 0
	for id, evs := range byStream {
		if evs[0].Type != EventStreamStart {
			t.Fatalf("stream %d: first event %q", id, evs[0].Type)
		}
		end := evs[len(evs)-1]
		if end.Type != EventStreamEnd || end.Status != StatusClean {
			t.Fatalf("stream %d: last event %+v", id, end)
		}
		data, ok := captures[end.Records]
		if !ok {
			t.Fatalf("stream %d: no capture with %d records", id, end.Records)
		}
		if end.Offset != int64(len(data)) {
			t.Fatalf("stream %d: end offset %d, capture is %d bytes", id, end.Offset, len(data))
		}

		recs, err := snoop.ReadAll(data)
		if err != nil {
			t.Fatal(err)
		}
		want := forensics.Analyze(recs).Findings
		live := evs[1 : len(evs)-1]
		if len(live) != len(want) {
			t.Fatalf("stream %d: %d live findings, batch has %d", id, len(live), len(want))
		}
		for j, ev := range live {
			if ev.Type != EventFinding {
				t.Fatalf("stream %d: mid-stream event %q", id, ev.Type)
			}
			w := want[j]
			if ev.Seq != uint64(j+1) || ev.Frame != w.Frame || ev.Kind != w.Kind ||
				ev.Peer != w.Peer.String() || ev.Detail != w.Detail {
				t.Fatalf("stream %d finding %d:\nlive:  %+v\nbatch: %+v", id, j, ev, w)
			}
		}
		totalFindings += len(want)
	}

	// Daemon-wide metrics must add up across streams.
	snap := s.Snapshot()
	if snap.StreamsTotal != clients || snap.StreamsActive != 0 {
		t.Fatalf("streams total=%d active=%d", snap.StreamsTotal, snap.StreamsActive)
	}
	var kinds uint64
	for _, n := range snap.FindingsKind {
		kinds += n
	}
	if kinds != uint64(totalFindings) {
		t.Fatalf("metrics count %d findings, events show %d", kinds, totalFindings)
	}
	if snap.Packets["acl"] == 0 || snap.Packets["command"] == 0 || snap.Packets["event"] == 0 {
		t.Fatalf("packet-type counters empty: %+v", snap.Packets)
	}

	// The HTTP surface serves the same snapshot and reports healthy.
	resp, err := http.Get("http://" + s.HTTPAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var httpSnap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&httpSnap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if httpSnap.StreamsTotal != clients || httpSnap.Records != snap.Records {
		t.Fatalf("http snapshot %+v", httpSnap)
	}
	hresp, err := http.Get("http://" + s.HTTPAddr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", hresp.StatusCode)
	}
}

// TestStreamEndClassification drives each way a stream can die through
// the reader-fed Ingest path and checks the operator-facing status.
func TestStreamEndClassification(t *testing.T) {
	data := synthCapture(t, 500, 3)
	s := New(Config{})

	if sum := s.Ingest("test", "clean", bytes.NewReader(data)); sum.Status != StatusClean ||
		sum.Err != nil || sum.Offset != int64(len(data)) {
		t.Fatalf("clean: %+v", sum)
	}

	cut := len(data) - 7
	sum := s.Ingest("test", "cut", bytes.NewReader(data[:cut]))
	if sum.Status != StatusTruncated || !errors.Is(sum.Err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated: %+v", sum)
	}
	if sum.Offset != int64(cut) {
		t.Fatalf("truncated at offset %d, reported %d", cut, sum.Offset)
	}

	bad := append([]byte(nil), data...)
	bad[16+3] = 0 // first record header: original length 0 < included
	sum = s.Ingest("test", "framing", bytes.NewReader(bad))
	if sum.Status != StatusBadFraming || !errors.Is(sum.Err, snoop.ErrBadFraming) {
		t.Fatalf("bad framing: %+v", sum)
	}
	if sum.Offset != 16 {
		t.Fatalf("bad framing offset %d, want 16", sum.Offset)
	}

	if sum := s.Ingest("test", "garbage", bytes.NewReader([]byte("not a snoop file"))); sum.Status != StatusError {
		t.Fatalf("garbage: %+v", sum)
	}
}

// TestReadTimeoutClassifiesHungClient pins the per-read deadline: a
// client that connects, sends half a capture, and goes silent must be
// dropped as "timeout", not left holding a stream slot forever.
func TestReadTimeoutClassifiesHungClient(t *testing.T) {
	var out syncBuffer
	ends := make(chan StreamSummary, 1)
	s := startServer(t, Config{
		TCPAddr:     "127.0.0.1:0",
		ReadTimeout: 150 * time.Millisecond,
		Output:      &out,
		OnStreamEnd: func(sum StreamSummary) { ends <- sum },
	})
	data := synthCapture(t, 100, 5)
	conn, err := net.Dial("tcp", s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(data[:len(data)/2]); err != nil {
		t.Fatal(err)
	}
	select {
	case sum := <-ends:
		if sum.Status != StatusTimeout {
			t.Fatalf("hung client classified %q (%v)", sum.Status, sum.Err)
		}
		if sum.Records == 0 {
			t.Fatal("records delivered before the hang were not counted")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("read deadline never fired")
	}
}

// TestMaxStreamsRejectsExcess checks the cap: connection N+1 is refused
// immediately with a stream-rejected event, not queued.
func TestMaxStreamsRejectsExcess(t *testing.T) {
	var out syncBuffer
	s := startServer(t, Config{
		TCPAddr:    "127.0.0.1:0",
		MaxStreams: 1,
		Output:     &out,
	})

	hold, err := net.Dial("tcp", s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()
	waitFor(t, "first stream active", func() bool { return s.Snapshot().StreamsActive == 1 })

	over, err := net.Dial("tcp", s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	waitFor(t, "second stream rejected", func() bool { return s.Snapshot().StreamsRejected == 1 })

	// The server closed the excess connection.
	_ = over.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := over.Read(make([]byte, 1)); !errors.Is(err, io.EOF) {
		t.Fatalf("excess conn read: %v, want EOF", err)
	}
	found := false
	for _, ev := range parseEvents(t, out.Lines()) {
		if ev.Type == EventStreamRejected {
			found = true
		}
	}
	if !found {
		t.Fatal("no stream-rejected event emitted")
	}
}

// TestShutdownDrains covers the SIGTERM path: draining flips /healthz to
// 503, in-flight streams get the grace period, and the deadline
// force-closes stragglers instead of hanging forever.
func TestShutdownDrains(t *testing.T) {
	var out syncBuffer
	ends := make(chan StreamSummary, 1)
	sock := filepath.Join(t.TempDir(), "drain.sock")
	s := New(Config{
		TCPAddr:     "127.0.0.1:0",
		UnixAddr:    sock,
		HTTPAddr:    "127.0.0.1:0",
		Output:      &out,
		OnStreamEnd: func(sum StreamSummary) { ends <- sum },
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}

	// A stream that will never finish on its own.
	conn, err := net.Dial("tcp", s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	data := synthCapture(t, 200, 6)
	if _, err := conn.Write(data[:len(data)-5]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stream registered", func() bool { return s.Snapshot().StreamsActive == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded (forced drain)", err)
	}
	sum := <-ends
	if sum.Status == StatusClean {
		t.Fatal("forced stream reported clean")
	}
	if _, err := net.Dial("unix", sock); err == nil {
		t.Fatal("unix socket still accepting after shutdown")
	}
}

// TestIngestBoundedMemory streams a large capture through a real unix
// socket and checks the server side allocates far less than the capture
// size — the backpressure/bounded-memory claim, measured.
func TestIngestBoundedMemory(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is distorted by the race detector")
	}
	data := synthCapture(t, 200_000, 8)
	ends := make(chan StreamSummary, 1)
	sock := filepath.Join(t.TempDir(), "mem.sock")
	startServer(t, Config{
		UnixAddr:    sock,
		OnStreamEnd: func(sum StreamSummary) { ends <- sum },
	})

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)

	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(data); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	sum := <-ends
	runtime.ReadMemStats(&after)

	if sum.Status != StatusClean || sum.Records != 200_000 {
		t.Fatalf("stream: %+v", sum)
	}
	if sum.Findings == 0 {
		t.Fatal("fixture produced no findings")
	}
	allocated := after.TotalAlloc - before.TotalAlloc
	if allocated > uint64(len(data))/2 {
		t.Fatalf("live ingest allocated %d bytes over a %d-byte capture — not bounded", allocated, len(data))
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// wedgedWriter accepts writes until a trigger count, then blocks forever
// (until released) — a stand-in for an event consumer that stops reading.
type wedgedWriter struct {
	mu      sync.Mutex
	writes  int
	wedgeAt int
	release chan struct{}
}

func (w *wedgedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	w.writes++
	wedged := w.writes > w.wedgeAt
	w.mu.Unlock()
	if wedged {
		<-w.release
	}
	return len(p), nil
}

// A wedged event consumer must cost events — counted per stream and
// daemon-wide — but never stall ingestion or Shutdown.
func TestWedgedEventConsumerDropsEventsNotIngestion(t *testing.T) {
	w := &wedgedWriter{wedgeAt: 1, release: make(chan struct{})}
	defer close(w.release)
	srv := New(Config{
		Output:       w,
		WriteTimeout: 50 * time.Millisecond,
		EventBuffer:  2,
	})

	data := synthCapture(t, 5000, 3)
	start := time.Now()
	sum := srv.Ingest("reader", "wedged", bytes.NewReader(data))
	elapsed := time.Since(start)

	if sum.Status != StatusClean || sum.Records != 5000 {
		t.Fatalf("ingestion must complete despite the wedged consumer: %+v", sum)
	}
	if sum.EventsDropped == 0 {
		t.Fatal("a wedged consumer must surface dropped events in the stream summary")
	}
	if snap := srv.Snapshot(); snap.EventsDropped == 0 {
		t.Fatalf("events_dropped missing from /metrics snapshot: %+v", snap)
	}
	// The whole ingest must be bounded by a handful of write deadlines,
	// not by one deadline per emitted event.
	if elapsed > 5*time.Second {
		t.Fatalf("ingestion stalled behind the wedged consumer: %v", elapsed)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx) // must return (bounded by ctx), not hang on the writer
}

// With a live consumer, the per-write deadline path must not drop
// anything, and the stream-end line must carry events_dropped: 0.
func TestHealthyConsumerDropsNothing(t *testing.T) {
	var out syncBuffer
	srv := New(Config{Output: &out, WriteTimeout: time.Second, EventBuffer: 4})
	data := synthCapture(t, 2000, 4)
	sum := srv.Ingest("reader", "healthy", bytes.NewReader(data))
	if sum.EventsDropped != 0 {
		t.Fatalf("healthy consumer dropped events: %+v", sum)
	}
	evs := parseEvents(t, out.Lines())
	var end *Event
	for i := range evs {
		if evs[i].Type == EventStreamEnd {
			end = &evs[i]
		}
	}
	if end == nil {
		t.Fatal("no stream-end event")
	}
	if end.EventsDropped != 0 {
		t.Fatalf("stream-end reports dropped events on a healthy consumer: %+v", end)
	}
}
