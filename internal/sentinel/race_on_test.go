//go:build race

package sentinel

// raceEnabled mirrors the forensics package's build-tag probe: allocation
// accounting tests skip under the race detector.
const raceEnabled = true
