package obs

// HistogramState is the serializable raw form of a Histogram: the
// bucket counts and exact aggregates, before any quantile math. It
// exists for persistence — a Snapshot carries only interpolated
// percentiles and cannot be merged after the fact, while states can be
// subtracted (interval deltas), merged (window folds), and restored
// into a Histogram whose Snapshot is computed over the combined
// buckets. internal/tsdb stores histogram series as HistogramState
// deltas so that "p99 over the last hour" is a lossless fold of the
// stored intervals rather than an average of averages, and so that
// downsampling adjacent intervals into coarser ones loses no bucket
// information at all.
//
// Buckets is trimmed of trailing zeros to keep the JSON small (an
// ingest histogram typically occupies a handful of adjacent octaves);
// absent entries are zero. MinNS is -1 when unknown — the min of a
// subtraction cannot generally be recovered (see Sub).
type HistogramState struct {
	Count   uint64   `json:"count"`
	SumNS   int64    `json:"sum_ns"`
	MinNS   int64    `json:"min_ns"` // -1 = unknown
	MaxNS   int64    `json:"max_ns"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// State captures the histogram's raw cumulative totals. Under
// concurrent Observe calls each field is individually consistent (the
// same guarantee as Snapshot). A nil receiver returns the zero state.
func (h *Histogram) State() HistogramState {
	st := HistogramState{MinNS: -1}
	if h == nil {
		return st
	}
	var buckets [histBuckets]uint64
	last := -1
	for i := range buckets {
		c := h.buckets[i].Load()
		buckets[i] = c
		if c != 0 {
			last = i
		}
	}
	st.Count = h.count.Load()
	st.SumNS = h.sum.Load()
	st.MinNS = -1
	if mp1 := h.minP1.Load(); mp1 != 0 {
		st.MinNS = mp1 - 1
	}
	st.MaxNS = h.max.Load()
	if last >= 0 {
		st.Buckets = append([]uint64(nil), buckets[:last+1]...)
	}
	return st
}

// Empty reports whether the state holds no observations.
func (s HistogramState) Empty() bool { return s.Count == 0 }

// Sub returns the interval delta s − prev: the observations recorded
// after prev was captured, assuming both are cumulative states of the
// same histogram (prev taken earlier). Bucket counts, Count, and SumNS
// subtract exactly. MinNS is exact only when prev was empty (the
// interval then saw every observation); otherwise it is unknowable
// from cumulative aggregates and reported as -1. MaxNS keeps the
// cumulative max — an upper bound for the interval, exact whenever the
// interval contained the new extreme. Fold-time consumers treat these
// as the documented approximations they are; bucket-derived quantiles
// are unaffected.
func (s HistogramState) Sub(prev HistogramState) HistogramState {
	d := HistogramState{
		Count: s.Count - prev.Count,
		SumNS: s.SumNS - prev.SumNS,
		MinNS: -1,
		MaxNS: s.MaxNS,
	}
	if prev.Empty() {
		d.MinNS = s.MinNS
	}
	if d.Count == 0 {
		return HistogramState{MinNS: -1}
	}
	last := -1
	n := len(s.Buckets)
	buckets := make([]uint64, n)
	for i := 0; i < n; i++ {
		var p uint64
		if i < len(prev.Buckets) {
			p = prev.Buckets[i]
		}
		buckets[i] = s.Buckets[i] - p
		if buckets[i] != 0 {
			last = i
		}
	}
	if last >= 0 {
		d.Buckets = buckets[:last+1]
	}
	return d
}

// Merge returns the fold of two states, as if every observation in
// both had been recorded into one histogram. Exact except for MinNS
// when either side reports it unknown (the merge is then unknown too
// unless the other side is empty).
func (s HistogramState) Merge(o HistogramState) HistogramState {
	if s.Empty() {
		return o.clone()
	}
	if o.Empty() {
		return s.clone()
	}
	m := HistogramState{
		Count: s.Count + o.Count,
		SumNS: s.SumNS + o.SumNS,
		MinNS: -1,
		MaxNS: s.MaxNS,
	}
	if o.MaxNS > m.MaxNS {
		m.MaxNS = o.MaxNS
	}
	switch {
	case s.MinNS >= 0 && o.MinNS >= 0:
		m.MinNS = s.MinNS
		if o.MinNS < m.MinNS {
			m.MinNS = o.MinNS
		}
	}
	n := len(s.Buckets)
	if len(o.Buckets) > n {
		n = len(o.Buckets)
	}
	buckets := make([]uint64, n)
	for i := range buckets {
		if i < len(s.Buckets) {
			buckets[i] += s.Buckets[i]
		}
		if i < len(o.Buckets) {
			buckets[i] += o.Buckets[i]
		}
	}
	m.Buckets = buckets
	return m
}

func (s HistogramState) clone() HistogramState {
	c := s
	if s.Buckets != nil {
		c.Buckets = append([]uint64(nil), s.Buckets...)
	}
	return c
}

// Restore materializes the state as a Histogram, so the standard
// Snapshot/Fold quantile machinery runs over persisted buckets exactly
// as it does over live ones. An unknown MinNS (-1) restores as "no min
// recorded yet": Fold reports 0 for it, the conservative floor the
// state can support.
func (s HistogramState) Restore() *Histogram {
	h := &Histogram{}
	h.count.Store(s.Count)
	h.sum.Store(s.SumNS)
	if s.MinNS >= 0 {
		h.minP1.Store(s.MinNS + 1)
	}
	h.max.Store(s.MaxNS)
	for i, c := range s.Buckets {
		if i >= histBuckets {
			break
		}
		h.buckets[i].Store(c)
	}
	return h
}

// SnapshotOf folds any number of states into the operator-facing
// Snapshot — the persisted-world analogue of Fold over live
// histograms.
func SnapshotOf(states ...HistogramState) Snapshot {
	hs := make([]*Histogram, 0, len(states))
	for _, st := range states {
		if st.Empty() {
			continue
		}
		hs = append(hs, st.Restore())
	}
	return Fold(hs...)
}
