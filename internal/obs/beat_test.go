package obs

import (
	"testing"
	"time"
)

func TestBeatStalledOnlyMidUnit(t *testing.T) {
	var b Beat
	now := time.Now()
	if b.Stalled(now, time.Millisecond) {
		t.Fatal("fresh beat reads stalled")
	}
	b.Start()
	if b.Stalled(time.Now(), time.Hour) {
		t.Fatal("just-started unit reads stalled")
	}
	if !b.Stalled(time.Now().Add(2*time.Hour), time.Hour) {
		t.Fatal("over-budget unit does not read stalled")
	}
	b.Stop()
	if b.Stalled(time.Now().Add(2*time.Hour), time.Hour) {
		t.Fatal("idle loop reads stalled")
	}
	// A second unit resets the clock.
	b.Start()
	if b.Stalled(time.Now(), time.Hour) {
		t.Fatal("restarted unit inherited the old start time")
	}
	if b.Stalled(time.Now().Add(time.Hour), 0) {
		t.Fatal("after <= 0 must disable the watchdog")
	}
}

func TestBeatNilIsNoOp(t *testing.T) {
	var b *Beat
	b.Start()
	b.Stop()
	if b.Stalled(time.Now(), time.Nanosecond) {
		t.Fatal("nil beat reads stalled")
	}
}
