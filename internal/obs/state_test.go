package obs

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func observeSet(h *Histogram, ds []time.Duration) {
	for _, d := range ds {
		h.Observe(d)
	}
}

func randDurations(r *rand.Rand, n int) []time.Duration {
	ds := make([]time.Duration, n)
	for i := range ds {
		ds[i] = time.Duration(r.Int63n(int64(10 * time.Millisecond)))
	}
	return ds
}

// State → Restore → Snapshot must equal the live Snapshot exactly: the
// raw form loses nothing a Snapshot uses.
func TestStateRestoreRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		h := &Histogram{}
		observeSet(h, randDurations(r, 1+r.Intn(500)))
		live := h.Snapshot()
		restored := h.State().Restore().Snapshot()
		if !reflect.DeepEqual(live, restored) {
			t.Fatalf("trial %d: restore drift:\nlive     %+v\nrestored %+v", trial, live, restored)
		}
	}
}

// JSON round-trip: persistence-shaped states survive encode/decode.
func TestStateJSONRoundTrip(t *testing.T) {
	h := &Histogram{}
	observeSet(h, []time.Duration{time.Microsecond, 3 * time.Millisecond, 40 * time.Nanosecond})
	st := h.State()
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back HistogramState
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, back) {
		t.Fatalf("JSON drift:\nout  %+v\nback %+v", st, back)
	}
	if !reflect.DeepEqual(st.Restore().Snapshot(), h.Snapshot()) {
		t.Fatal("snapshot drift after JSON round trip")
	}
}

// Merging two states must agree with Fold over the two live histograms
// on everything except MinUS when a delta made the min unknowable —
// here both states are cumulative-from-empty so even min is exact.
func TestStateMergeMatchesFold(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		a, b := &Histogram{}, &Histogram{}
		observeSet(a, randDurations(r, 1+r.Intn(300)))
		observeSet(b, randDurations(r, 1+r.Intn(300)))
		want := Fold(a, b)
		got := SnapshotOf(a.State(), b.State())
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: merge drift:\nfold  %+v\nmerge %+v", trial, want, got)
		}
		// Merge is associative enough for our use: state-level Merge then
		// Snapshot equals SnapshotOf of the parts.
		merged := a.State().Merge(b.State())
		if got2 := merged.Restore().Snapshot(); !reflect.DeepEqual(want, got2) {
			t.Fatalf("trial %d: Merge drift:\nfold  %+v\nMerge %+v", trial, want, got2)
		}
	}
}

// Interval deltas: cumulative state at t2 minus cumulative state at t1
// must describe exactly the observations in between — count, sum, and
// buckets exact; min unknown (-1) unless the earlier state was empty;
// max an upper bound.
func TestStateSubIsIntervalDelta(t *testing.T) {
	h := &Histogram{}
	observeSet(h, []time.Duration{time.Millisecond, 2 * time.Millisecond})
	s1 := h.State()
	interval := []time.Duration{4 * time.Millisecond, 8 * time.Millisecond, 16 * time.Millisecond}
	observeSet(h, interval)
	s2 := h.State()

	d := s2.Sub(s1)
	if d.Count != 3 {
		t.Fatalf("delta count %d, want 3", d.Count)
	}
	wantSum := int64(28 * time.Millisecond)
	if d.SumNS != wantSum {
		t.Fatalf("delta sum %d, want %d", d.SumNS, wantSum)
	}
	if d.MinNS != -1 {
		t.Fatalf("delta min %d, want -1 (unknowable)", d.MinNS)
	}
	if d.MaxNS != s2.MaxNS {
		t.Fatalf("delta max %d, want cumulative max %d", d.MaxNS, s2.MaxNS)
	}
	// The delta buckets alone must reproduce the interval's quantiles.
	ih := &Histogram{}
	observeSet(ih, interval)
	dSnap := d.Restore().Snapshot()
	iSnap := ih.Snapshot()
	if dSnap.Count != iSnap.Count || dSnap.P50US != iSnap.P50US || dSnap.P99US != iSnap.P99US {
		t.Fatalf("delta quantile drift:\ninterval %+v\ndelta    %+v", iSnap, dSnap)
	}
	// Sub from an empty baseline is exact in every field.
	if d0 := s2.Sub(HistogramState{MinNS: -1}); !reflect.DeepEqual(d0.Restore().Snapshot(), h.Snapshot()) {
		t.Fatal("Sub from empty baseline is not the identity")
	}
	// Summing consecutive deltas restores the cumulative whole.
	if sum := s1.Merge(d); sum.Count != s2.Count || sum.SumNS != s2.SumNS {
		t.Fatalf("delta + previous != cumulative: %+v vs %+v", sum, s2)
	}
	// An empty interval subtracts to the empty state.
	if dd := s2.Sub(s2); !dd.Empty() {
		t.Fatalf("self-subtraction not empty: %+v", dd)
	}
}

func TestStateTrimsTrailingZeroBuckets(t *testing.T) {
	h := &Histogram{}
	h.Observe(100 * time.Nanosecond) // bucket index bits.Len64(100) = 7
	st := h.State()
	if len(st.Buckets) != 8 {
		t.Fatalf("buckets not trimmed: len %d, want 8", len(st.Buckets))
	}
	var empty HistogramState
	if h2 := (*Histogram)(nil); !h2.State().Empty() || h2.State().MinNS != -1 {
		t.Fatal("nil histogram state not empty/unknown-min")
	}
	if !empty.Sub(empty).Empty() {
		t.Fatal("empty sub not empty")
	}
	if got := SnapshotOf(empty); got != (Snapshot{}) {
		t.Fatalf("SnapshotOf(empty) = %+v", got)
	}
}
