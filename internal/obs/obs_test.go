package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestNilInstrumentsAreNoOps pins the zero-cost-when-disabled contract:
// every exported method must be safe — and allocation-free — on a nil
// receiver, because call sites compile instrumentation in
// unconditionally and rely on nil to turn it off.
func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Load() != 0 {
		t.Fatal("nil counter loaded nonzero")
	}

	var h *Histogram
	h.Observe(time.Millisecond)
	h.Since(time.Now())
	if s := h.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("nil histogram snapshot not zero: %+v", s)
	}

	sp := Begin(nil)
	if !sp.t0.IsZero() {
		t.Fatal("span against nil histogram read the clock")
	}
	sp.End()

	if allocs := testing.AllocsPerRun(100, func() {
		h.Observe(time.Second)
		Begin(nil).End()
	}); allocs != 0 {
		t.Fatalf("nil instruments allocated %.1f per op", allocs)
	}
}

// TestHistogramExactFields checks the exactly-tracked fields: count,
// mean, min, max.
func TestHistogramExactFields(t *testing.T) {
	h := &Histogram{}
	for _, d := range []time.Duration{time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond} {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.MinUS != 1000 || s.MaxUS != 3000 {
		t.Fatalf("min/max = %v/%v µs, want 1000/3000", s.MinUS, s.MaxUS)
	}
	if s.MeanUS != 2000 {
		t.Fatalf("mean = %v µs, want 2000", s.MeanUS)
	}
}

// TestHistogramQuantiles checks the bucket-interpolated quantiles stay
// within their one-octave error bound and are ordered.
func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 90 fast observations at 100µs, 10 slow ones at 10ms: p50 must land
	// near the fast mode, p99 near the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.P50US < 50 || s.P50US > 200 {
		t.Fatalf("p50 = %v µs, want within an octave of 100", s.P50US)
	}
	if s.P99US < 5000 || s.P99US > 10000 {
		t.Fatalf("p99 = %v µs, want within an octave of 10000 (clamped to max)", s.P99US)
	}
	if !(s.P50US <= s.P90US && s.P90US <= s.P99US && s.P99US <= s.MaxUS) {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
	if s.MinUS > s.P50US {
		t.Fatalf("p50 below min: %+v", s)
	}
}

// TestHistogramNegativeAndZero pins clamping: a backwards clock step
// counts as a zero-duration observation instead of corrupting buckets.
func TestHistogramNegativeAndZero(t *testing.T) {
	h := &Histogram{}
	h.Observe(-time.Second)
	h.Observe(0)
	s := h.Snapshot()
	if s.Count != 2 || s.MinUS != 0 || s.MaxUS != 0 {
		t.Fatalf("clamped snapshot wrong: %+v", s)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// the atomic counters must agree afterwards, and -race must stay quiet.
func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	c := &Counter{}
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*per+i) * time.Microsecond)
				c.Inc()
				_ = h.Snapshot() // concurrent reads must be safe too
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per || c.Load() != workers*per {
		t.Fatalf("lost observations: hist=%d counter=%d want %d", s.Count, c.Load(), workers*per)
	}
	if s.MinUS != 0 {
		t.Fatalf("min = %v µs, want 0", s.MinUS)
	}
	if want := float64((workers*per - 1) * 1000 / 1000); s.MaxUS != want {
		t.Fatalf("max = %v µs, want %v", s.MaxUS, want)
	}
}

// TestFoldMergesHistograms pins Fold's defining property: folding N
// histograms yields the same snapshot as observing every duration into
// one — sharded instruments must summarize exactly like the shared
// instrument they replaced.
func TestFoldMergesHistograms(t *testing.T) {
	durations := []time.Duration{
		0, time.Nanosecond, 100 * time.Microsecond, 100 * time.Microsecond,
		3 * time.Millisecond, 10 * time.Millisecond, time.Second,
	}
	one := &Histogram{}
	shards := []*Histogram{{}, {}, {}}
	for i, d := range durations {
		one.Observe(d)
		shards[i%len(shards)].Observe(d)
	}
	want := one.Snapshot()
	got := Fold(shards...)
	if got != want {
		t.Fatalf("Fold:\n got %+v\nwant %+v", got, want)
	}
	// Nil entries are skipped, single-histogram Fold is Snapshot.
	if got := Fold(nil, shards[0], nil); got != shards[0].Snapshot() {
		t.Fatalf("Fold with nils: %+v", got)
	}
	if got := Fold(); got != (Snapshot{}) {
		t.Fatalf("empty Fold not zero: %+v", got)
	}
	// Min/max come from different shards; check they survive the merge.
	if want.MinUS != 0 || want.MaxUS != 1e6 {
		t.Fatalf("fixture min/max unexpected: %+v", want)
	}
}

// TestSnapshotJSONShape pins the wire format other layers embed into
// /metrics: the exact key set, in microsecond units.
func TestSnapshotJSONShape(t *testing.T) {
	raw, err := json.Marshal(Snapshot{Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	want := []string{"count", "mean_us", "min_us", "max_us", "p50_us", "p90_us", "p99_us"}
	if len(m) != len(want) {
		t.Fatalf("snapshot JSON has %d keys, want %d: %s", len(m), len(want), raw)
	}
	for _, k := range want {
		if _, ok := m[k]; !ok {
			t.Fatalf("snapshot JSON missing %q: %s", k, raw)
		}
	}
}

// TestSpan checks the paired timer records into its histogram.
func TestSpan(t *testing.T) {
	h := &Histogram{}
	sp := Begin(h)
	time.Sleep(time.Millisecond)
	sp.End()
	s := h.Snapshot()
	if s.Count != 1 || s.MaxUS < 500 {
		t.Fatalf("span recorded %+v, want one observation >= ~1ms", s)
	}
}

// TestSince covers the sampled-timestamp helper: zero time is the "not
// sampled" sentinel and records nothing.
func TestSince(t *testing.T) {
	h := &Histogram{}
	h.Since(time.Time{})
	if h.Snapshot().Count != 0 {
		t.Fatal("zero t0 recorded an observation")
	}
	h.Since(time.Now().Add(-time.Millisecond))
	if s := h.Snapshot(); s.Count != 1 || s.MaxUS < 500 {
		t.Fatalf("Since recorded %+v", s)
	}
}

// BenchmarkObserve is the hot-path cost: a few atomic adds, no
// allocations.
func BenchmarkObserve(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}
