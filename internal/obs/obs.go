// Package obs is the repository's allocation-conscious observability
// core: lock-free counters, bounded log2-bucketed latency histograms
// with quantile snapshots, and span-style stage timers. The live daemon
// (internal/sentinel), the campaign engine's progress hook
// (internal/campaign), and the CLI stats modes (hcidump -stats) are all
// built on it.
//
// Two properties are contractual:
//
//   - Zero cost when disabled. Every method is a no-op on a nil
//     receiver, so instrumentation points can be compiled in
//     unconditionally and pay nothing — not even a clock read — until a
//     caller wires a live instrument in.
//
//   - No determinism hazards. Instruments observe wall time only and
//     never feed anything back into the code they measure; the
//     simulator's virtual clock and seeded RNG streams are untouched,
//     so an instrumented sweep produces bit-identical rows to a bare
//     one.
//
// A Histogram costs a fixed ~600 bytes regardless of how many
// observations it absorbs (64 power-of-two buckets spanning 1 ns to
// ~292 years), and Observe is a handful of atomic adds — safe for
// arbitrarily many goroutines without locks. Quantiles are estimated by
// interpolating within the bucket containing the rank, so they carry at
// most one octave of error; min, max, count, and mean are exact.
package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a lock-free monotonic counter. The zero value is ready to
// use; a nil *Counter is a no-op sink.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count; zero on a nil receiver.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// histBuckets is the fixed bucket count: bucket i holds observations
// whose nanosecond duration has bit length i, i.e. d in [2^(i-1), 2^i).
// 64 buckets cover every representable time.Duration.
const histBuckets = 64

// Histogram is a bounded log2-bucketed latency histogram. Observations
// are binned by the bit length of their nanosecond duration, so the
// memory footprint is fixed and Observe is wait-free (atomic adds on
// the bucket, count, sum, and min/max). The zero value is ready to use;
// a nil *Histogram is a no-op sink, which is how call sites stay free
// when instrumentation is off.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds; exact
	minP1   atomic.Int64 // min+1 nanoseconds; 0 means "no data yet"
	max     atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations are clamped to zero
// (the clock stepped backwards; still one observation). No-op on a nil
// receiver.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	// Min is stored as ns+1 so the zero value of the field reads as
	// "unset" and the first observation always claims it.
	for {
		cur := h.minP1.Load()
		if cur != 0 && ns+1 >= cur {
			break
		}
		if h.minP1.CompareAndSwap(cur, ns+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur {
			break
		}
		if h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(ns))&(histBuckets-1)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Since records the time elapsed since t0. No-op on a nil receiver or a
// zero t0 (the "not sampled" sentinel).
func (h *Histogram) Since(t0 time.Time) {
	if h == nil || t0.IsZero() {
		return
	}
	h.Observe(time.Since(t0))
}

// Snapshot is a point-in-time summary of a Histogram, shaped for JSON
// (all latencies in microseconds). Count and Mean are exact; quantiles
// are bucket-interpolated (at most one octave of error).
type Snapshot struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	MinUS  float64 `json:"min_us"`
	MaxUS  float64 `json:"max_us"`
	P50US  float64 `json:"p50_us"`
	P90US  float64 `json:"p90_us"`
	P99US  float64 `json:"p99_us"`
}

// Snapshot summarizes the histogram. Under concurrent Observe calls the
// fields are each individually consistent but may straddle observations
// (the count can lag a bucket bump by one); callers get a monotone,
// never-torn view. A nil receiver returns the zero Snapshot.
func (h *Histogram) Snapshot() Snapshot {
	return Fold(h)
}

// Fold summarizes several histograms as if every observation had been
// recorded into one: bucket counts, totals, and sums add; min and max
// take the extremes; quantiles interpolate over the merged buckets.
// This is how sharded instruments (one Histogram per shard, bumped
// contention-free on its own cache lines) fold back into a single
// operator-facing summary at snapshot time — the shards pay no
// synchronization on the hot path and Fold pays the merge cost once per
// scrape. Nil entries are skipped; no histograms (or all-empty) returns
// the zero Snapshot. Fold(h) is exactly h.Snapshot().
func Fold(hs ...*Histogram) Snapshot {
	var counts [histBuckets]uint64
	var total uint64
	var sum int64
	minNS := int64(-1)
	var maxNS int64
	for _, h := range hs {
		if h == nil {
			continue
		}
		for i := range counts {
			c := h.buckets[i].Load()
			counts[i] += c
			total += c
		}
		sum += h.sum.Load()
		if mp1 := h.minP1.Load(); mp1 != 0 {
			if m := mp1 - 1; minNS < 0 || m < minNS {
				minNS = m
			}
		}
		if mx := h.max.Load(); mx > maxNS {
			maxNS = mx
		}
	}
	if total == 0 {
		return Snapshot{}
	}
	if minNS < 0 {
		minNS = 0 // writer between bucket add and min store; transient
	}
	s := Snapshot{
		Count:  total,
		MeanUS: float64(sum) / float64(total) / 1e3,
		MinUS:  float64(minNS) / 1e3,
		MaxUS:  float64(maxNS) / 1e3,
	}
	s.P50US = quantile(&counts, total, 0.50, minNS, maxNS)
	s.P90US = quantile(&counts, total, 0.90, minNS, maxNS)
	s.P99US = quantile(&counts, total, 0.99, minNS, maxNS)
	return s
}

// quantile locates the bucket containing rank q·total and interpolates
// linearly inside it, clamping to the exact observed min/max so the
// tails never report impossible values.
func quantile(counts *[histBuckets]uint64, total uint64, q float64, minNS, maxNS int64) float64 {
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		// Bucket i spans [2^(i-1), 2^i) ns (bucket 0 is exactly 0).
		lo, hi := float64(0), float64(1)
		if i > 0 {
			lo = float64(int64(1) << (i - 1))
			hi = lo * 2
		}
		frac := 0.5
		if c > 0 {
			frac = (rank - prev) / float64(c)
		}
		ns := lo + (hi-lo)*frac
		if ns < float64(minNS) {
			ns = float64(minNS)
		}
		if ns > float64(maxNS) {
			ns = float64(maxNS)
		}
		return ns / 1e3
	}
	return float64(maxNS) / 1e3
}

// String renders the snapshot compactly for CLI stats lines.
func (s Snapshot) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d p50=%s p90=%s p99=%s max=%s",
		s.Count, usToString(s.P50US), usToString(s.P90US), usToString(s.P99US), usToString(s.MaxUS))
}

func usToString(us float64) string {
	return time.Duration(us * 1e3).Round(time.Microsecond).String()
}

// Span is a span-style stage timer: Begin captures the clock, End
// observes the elapsed time into the histogram. A Span started against
// a nil histogram holds no clock reading and End is free — the
// zero-cost-when-disabled contract extended to paired call sites.
type Span struct {
	h  *Histogram
	t0 time.Time
}

// Begin starts a span against h. When h is nil the returned span is
// inert (no clock read happens at either end).
func Begin(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, t0: time.Now()}
}

// End stops the span and records the elapsed time.
func (s Span) End() {
	if s.h != nil {
		s.h.Observe(time.Since(s.t0))
	}
}
