package obs

import (
	"sync/atomic"
	"time"
)

// Beat is a two-word heartbeat for watchdogging a work loop: the loop
// brackets each unit of work with Start/Stop, and a watchdog goroutine
// asks Stalled whether the loop has been inside one unit for longer
// than its budget. Both sides are lock-free atomics, so the bracket
// costs two stores on the hot path and a Beat can be polled from any
// goroutine. The idle state (between Stop and the next Start) never
// reads as stalled — only a unit of work that does not finish does.
//
// A nil *Beat is a no-op on every method, matching the package's
// nil-safe Counter convention.
type Beat struct {
	busy atomic.Bool
	at   atomic.Int64 // unix nanos of the last Start
}

// Start marks the beginning of one unit of work.
func (b *Beat) Start() {
	if b == nil {
		return
	}
	// Order matters for the polling side: publish the timestamp before
	// the busy flag so a watchdog that observes busy==true never reads a
	// stale start time from the previous unit.
	b.at.Store(time.Now().UnixNano())
	b.busy.Store(true)
}

// Stop marks the end of the unit started last.
func (b *Beat) Stop() {
	if b == nil {
		return
	}
	b.busy.Store(false)
}

// Stalled reports whether the loop has been inside a single unit of
// work for at least `after` as of `now`. after <= 0 never stalls.
func (b *Beat) Stalled(now time.Time, after time.Duration) bool {
	if b == nil || after <= 0 || !b.busy.Load() {
		return false
	}
	return now.Sub(time.Unix(0, b.at.Load())) >= after
}
