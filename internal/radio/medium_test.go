package radio

import (
	"testing"
	"time"

	"repro/internal/bt"
	"repro/internal/sim"
)

// stubReceiver is a scriptable radio endpoint.
type stubReceiver struct {
	info        DeviceInfo
	inqScan     bool
	pageScan    bool
	acceptPage  bool
	established []*Link
	data        []any
	closed      []error
}

func (r *stubReceiver) Info() DeviceInfo           { return r.info }
func (r *stubReceiver) InquiryScanEnabled() bool   { return r.inqScan }
func (r *stubReceiver) PageScanEnabled() bool      { return r.pageScan }
func (r *stubReceiver) AcceptPage(DeviceInfo) bool { return r.acceptPage }
func (r *stubReceiver) LinkEstablished(l *Link, _ DeviceInfo) {
	r.established = append(r.established, l)
}
func (r *stubReceiver) LinkData(_ *Link, payload any)    { r.data = append(r.data, payload) }
func (r *stubReceiver) LinkClosed(_ *Link, reason error) { r.closed = append(r.closed, reason) }

func newStub(addr string, scan bool) *stubReceiver {
	return &stubReceiver{
		info:       DeviceInfo{Addr: bt.MustBDADDR(addr), COD: bt.CODHandsFree, Name: addr},
		inqScan:    scan,
		pageScan:   scan,
		acceptPage: true,
	}
}

func world(seed int64) (*sim.Scheduler, *Medium) {
	s := sim.NewScheduler(seed)
	return s, NewMedium(s, DefaultConfig())
}

func TestInquiryDiscoversScanningDevices(t *testing.T) {
	s, m := world(1)
	a := newStub("aa:00:00:00:00:01", true)
	b := newStub("aa:00:00:00:00:02", true)
	c := newStub("aa:00:00:00:00:03", false) // not discoverable
	pa := m.Attach(a)
	m.Attach(b)
	m.Attach(c)

	var results []InquiryResult
	done := false
	m.StartInquiry(pa, 2*DefaultConfig().InquiryUnit, func(r InquiryResult) { results = append(results, r) }, func() { done = true })
	s.Run(0)

	if !done {
		t.Fatal("inquiry never completed")
	}
	if len(results) != 1 || results[0].Info.Addr != b.info.Addr {
		t.Fatalf("results: %+v", results)
	}
}

func TestInquiryWindowCutsLateResponses(t *testing.T) {
	s, m := world(2)
	a := newStub("aa:00:00:00:00:01", true)
	b := newStub("aa:00:00:00:00:02", true)
	pa := m.Attach(a)
	m.Attach(b)

	var results []InquiryResult
	// Window shorter than the minimum response jitter: nothing lands.
	m.StartInquiry(pa, 5*time.Millisecond, func(r InquiryResult) { results = append(results, r) }, func() {})
	s.Run(0)
	if len(results) != 0 {
		t.Fatalf("late responses delivered: %+v", results)
	}
}

func TestPageConnectsMatchingScanner(t *testing.T) {
	s, m := world(3)
	a := newStub("aa:00:00:00:00:01", true)
	b := newStub("aa:00:00:00:00:02", true)
	pa := m.Attach(a)
	m.Attach(b)

	var link *Link
	var gotErr error
	m.Page(pa, b.info.Addr, func(l *Link, info DeviceInfo, err error) {
		link, gotErr = l, err
		if err == nil && info.Addr != b.info.Addr {
			t.Errorf("peer info %v", info)
		}
	})
	s.Run(0)
	if gotErr != nil || link == nil {
		t.Fatalf("page failed: %v", gotErr)
	}
	if len(b.established) != 1 {
		t.Fatalf("responder saw %d links", len(b.established))
	}
}

func TestPageTimeoutWhenNobodyScans(t *testing.T) {
	s, m := world(4)
	a := newStub("aa:00:00:00:00:01", true)
	b := newStub("aa:00:00:00:00:02", false) // page scan off
	pa := m.Attach(a)
	m.Attach(b)

	var gotErr error
	m.Page(pa, b.info.Addr, func(_ *Link, _ DeviceInfo, err error) { gotErr = err })
	s.Run(0)
	if gotErr != ErrPageTimeout {
		t.Fatalf("want page timeout, got %v", gotErr)
	}
}

func TestPageTimeoutWhenResponderRefuses(t *testing.T) {
	s, m := world(5)
	a := newStub("aa:00:00:00:00:01", true)
	b := newStub("aa:00:00:00:00:02", true)
	b.acceptPage = false
	pa := m.Attach(a)
	m.Attach(b)

	var gotErr error
	m.Page(pa, b.info.Addr, func(_ *Link, _ DeviceInfo, err error) { gotErr = err })
	s.Run(0)
	if gotErr != ErrPageTimeout {
		t.Fatalf("want page timeout, got %v", gotErr)
	}
}

// TestPageRaceWithSpoofedAddress is the heart of Table II's baseline: two
// radios with the same BDADDR both page-scan; the first responder wins,
// and over many seeds both must win sometimes.
func TestPageRaceWithSpoofedAddress(t *testing.T) {
	winsB, winsC := 0, 0
	for seed := int64(0); seed < 60; seed++ {
		s, m := world(seed)
		a := newStub("aa:00:00:00:00:01", true)
		b := newStub("aa:00:00:00:00:02", true)
		c := newStub("aa:00:00:00:00:02", true) // spoofed: same BDADDR as b
		pa := m.Attach(a)
		m.Attach(b)
		m.Attach(c)

		m.Page(pa, b.info.Addr, func(l *Link, _ DeviceInfo, err error) {
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		})
		s.Run(0)
		switch {
		case len(b.established) == 1 && len(c.established) == 0:
			winsB++
		case len(c.established) == 1 && len(b.established) == 0:
			winsC++
		default:
			t.Fatalf("seed %d: exactly one responder must win (b=%d c=%d)",
				seed, len(b.established), len(c.established))
		}
	}
	if winsB == 0 || winsC == 0 {
		t.Fatalf("race is degenerate: b=%d c=%d", winsB, winsC)
	}
}

func TestLinkSendAndClose(t *testing.T) {
	s, m := world(6)
	a := newStub("aa:00:00:00:00:01", true)
	b := newStub("aa:00:00:00:00:02", true)
	pa := m.Attach(a)
	pb := m.Attach(b)

	var link *Link
	m.Page(pa, b.info.Addr, func(l *Link, _ DeviceInfo, _ error) { link = l })
	s.Run(0)
	if link == nil {
		t.Fatal("no link")
	}

	link.Send(pa, "hello")
	link.Send(pb, "world")
	s.Run(0)
	if len(b.data) != 1 || b.data[0] != "hello" {
		t.Fatalf("b.data=%v", b.data)
	}
	if len(a.data) != 1 || a.data[0] != "world" {
		t.Fatalf("a.data=%v", a.data)
	}

	link.Close(pa, nil)
	s.Run(0)
	if !link.Closed() {
		t.Fatal("link should be closed")
	}
	if len(b.closed) != 1 {
		t.Fatalf("peer close notifications: %d", len(b.closed))
	}
	if len(a.closed) != 0 {
		t.Fatal("closer must not be notified of its own close")
	}
	// Sending on a closed link is a silent no-op.
	link.Send(pa, "late")
	s.Run(0)
	if len(b.data) != 1 {
		t.Fatal("frame delivered after close")
	}
}

func TestFramesInFlightDroppedOnClose(t *testing.T) {
	s, m := world(7)
	a := newStub("aa:00:00:00:00:01", true)
	b := newStub("aa:00:00:00:00:02", true)
	pa := m.Attach(a)
	m.Attach(b)

	var link *Link
	m.Page(pa, b.info.Addr, func(l *Link, _ DeviceInfo, _ error) { link = l })
	s.Run(0)

	link.Send(pa, "in-flight")
	link.Close(pa, nil) // close before propagation completes
	s.Run(0)
	if len(b.data) != 0 {
		t.Fatalf("in-flight frame survived close: %v", b.data)
	}
}

func TestDetachClosesLinks(t *testing.T) {
	s, m := world(8)
	a := newStub("aa:00:00:00:00:01", true)
	b := newStub("aa:00:00:00:00:02", true)
	pa := m.Attach(a)
	m.Attach(b)

	var link *Link
	m.Page(pa, b.info.Addr, func(l *Link, _ DeviceInfo, _ error) { link = l })
	s.Run(0)

	m.Detach(pa)
	s.Run(0)
	if !link.Closed() {
		t.Fatal("detach must close links")
	}
	if len(b.closed) != 1 {
		t.Fatalf("peer notified %d times", len(b.closed))
	}
	// A detached port is no longer discoverable.
	pb2 := m.Attach(newStub("aa:00:00:00:00:03", true))
	got := 0
	m.StartInquiry(pb2, 2*DefaultConfig().InquiryUnit, func(InquiryResult) { got++ }, func() {})
	s.Run(0)
	if got != 1 { // only b remains
		t.Fatalf("inquiry after detach found %d", got)
	}
}

func TestSpoofTakesEffectAtResponseTime(t *testing.T) {
	// Changing a receiver's Info between attach and page must be honoured
	// (the attacker rewrites bdaddr.txt after boot).
	s, m := world(9)
	a := newStub("aa:00:00:00:00:01", true)
	b := newStub("aa:00:00:00:00:02", true)
	pa := m.Attach(a)
	m.Attach(b)

	b.info.Addr = bt.MustBDADDR("aa:00:00:00:00:99") // spoof

	var gotErr error
	m.Page(pa, bt.MustBDADDR("aa:00:00:00:00:02"), func(_ *Link, _ DeviceInfo, err error) { gotErr = err })
	s.Run(0)
	if gotErr != ErrPageTimeout {
		t.Fatal("old address should no longer match")
	}
	m.Page(pa, bt.MustBDADDR("aa:00:00:00:00:99"), func(_ *Link, _ DeviceInfo, err error) { gotErr = err })
	s.Run(0)
	if gotErr != nil {
		t.Fatalf("new address should match: %v", gotErr)
	}
}

func TestSniffersObserveLinkFrames(t *testing.T) {
	s, m := world(10)
	a := newStub("aa:00:00:00:00:01", true)
	b := newStub("aa:00:00:00:00:02", true)
	pa := m.Attach(a)
	m.Attach(b)

	var sniffed []SniffedFrame
	m.Sniff(func(f SniffedFrame) { sniffed = append(sniffed, f) })

	var link *Link
	m.Page(pa, b.info.Addr, func(l *Link, _ DeviceInfo, _ error) { link = l })
	s.Run(0)
	link.Send(pa, "payload-1")
	s.Run(0)

	if len(sniffed) != 1 {
		t.Fatalf("sniffed %d frames, want 1", len(sniffed))
	}
	f := sniffed[0]
	if f.From != a.info.Addr || f.To != b.info.Addr || f.Payload != "payload-1" {
		t.Fatalf("frame: %+v", f)
	}
	// Frames dropped by a closing link are still sniffed at send time —
	// an air sniffer sits on the radio, not in the receiver.
	link.Close(pa, nil)
	link.Send(pa, "late")
	s.Run(0)
	if len(sniffed) != 1 {
		t.Fatalf("closed-link send should emit nothing: %d", len(sniffed))
	}
}
