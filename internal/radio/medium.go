// Package radio simulates the shared 2.4 GHz medium of Bluetooth BR/EDR at
// the abstraction level the BLAP attacks need: inquiry broadcast and
// response, paging with per-responder jitter (including the race between
// multiple radios scanning with the same BDADDR, which the page blocking
// attack defeats), and point-to-point physical links carrying LMP and ACL
// traffic.
package radio

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bt"
	"repro/internal/sim"
)

// Config tunes medium timing. The zero value is not useful; use
// DefaultConfig.
type Config struct {
	// PropagationDelay is the one-way frame flight time.
	PropagationDelay time.Duration
	// ResponseJitterMin/Max bound the uniform random delay before a
	// scanning device answers an inquiry or page. The page-response race
	// between an attacker and the genuine accessory — the source of the
	// paper's 42-60% baseline MITM success rate — is decided by this
	// jitter.
	ResponseJitterMin time.Duration
	ResponseJitterMax time.Duration
	// PageTimeout is how long a pager waits for any response.
	PageTimeout time.Duration
	// PageRetrainInterval is how soon the pager's repeating page train
	// reaches the scanner again after a train (or its response) was lost
	// on the air. Real paging repeats trains for the whole page-timeout
	// window, so a lossy channel delays — rather than kills — the page.
	// Only consulted when a fault model is installed: on a clean channel
	// the first train always lands.
	PageRetrainInterval time.Duration
	// InquiryUnit is the duration of one inquiry-length unit (1.28 s).
	InquiryUnit time.Duration
}

// DefaultConfig returns the timing used by the paper-reproduction
// experiments.
func DefaultConfig() Config {
	return Config{
		PropagationDelay:    100 * time.Microsecond,
		ResponseJitterMin:   10 * time.Millisecond,
		ResponseJitterMax:   40 * time.Millisecond,
		PageTimeout:         5120 * time.Millisecond,
		PageRetrainInterval: 640 * time.Millisecond,
		InquiryUnit:         1280 * time.Millisecond,
	}
}

// DeviceInfo is the identity a radio advertises in inquiry responses and
// page handshakes.
type DeviceInfo struct {
	Addr bt.BDADDR
	COD  bt.ClassOfDevice
	Name string
}

// Receiver is the controller-side interface a Port delivers to.
type Receiver interface {
	// Info returns the current advertised identity. Called at response
	// time so BDADDR spoofing takes effect immediately.
	Info() DeviceInfo
	// InquiryScanEnabled reports discoverability.
	InquiryScanEnabled() bool
	// PageScanEnabled reports connectability.
	PageScanEnabled() bool
	// AcceptPage decides whether an incoming page from the given identity
	// may proceed to a baseband link.
	AcceptPage(from DeviceInfo) bool
	// LinkEstablished notifies the receiver of a new physical link. The
	// initiator reports via the Page callback instead, so this fires only
	// on the responder side.
	LinkEstablished(l *Link, peer DeviceInfo)
	// LinkData delivers a frame from the peer.
	LinkData(l *Link, payload any)
	// LinkClosed notifies that the peer (or the medium) tore the link down.
	LinkClosed(l *Link, reason error)
}

// FrameVerdict is a fault model's decision for one transmitted frame.
// The zero value delivers the frame normally.
type FrameVerdict struct {
	// Drop loses the frame outright (collision, fade).
	Drop bool
	// Corrupt flips payload bits in flight; the receiving baseband's CRC
	// check fails and the frame is discarded. Indistinguishable from Drop
	// at the LMP layer, but counted separately by injectors.
	Corrupt bool
	// Duplicate delivers the frame a second time one propagation delay
	// after the first copy.
	Duplicate bool
	// Delay holds the frame back by this much extra flight time, letting
	// later frames overtake it (bounded reordering).
	Delay time.Duration
}

// Lost reports whether the frame never reaches the peer's LMP layer.
func (v FrameVerdict) Lost() bool { return v.Drop || v.Corrupt }

// FaultModel decides the fate of each frame on the medium. Implementations
// must be deterministic given the scheduler's RNG (see internal/faults);
// Frame is called once per transmission attempt, in scheduling order.
type FaultModel interface {
	Frame() FrameVerdict
}

// SetFaultModel installs a fault model consulted for every link frame,
// page frame, and inquiry response. A nil model (the default) is a perfect
// channel and costs nothing — no RNG draws, no extra events — so runs
// without faults are bit-identical to builds before fault injection
// existed.
func (m *Medium) SetFaultModel(fm FaultModel) { m.faults = fm }

// lost consults the fault model for frames where only loss matters
// (page and inquiry handshakes, where duplication and reordering have no
// observable effect at this abstraction level).
func (m *Medium) lost() bool {
	if m.faults == nil {
		return false
	}
	return m.faults.Frame().Lost()
}

// SniffedFrame is one over-the-air frame as seen by a passive sniffer:
// source and destination identity plus the payload (an LMP PDU or
// encrypted ACL frame). Air sniffers see everything the baseband carries —
// which is why an extracted link key breaks past traffic too (§IV).
type SniffedFrame struct {
	At      time.Duration
	From    bt.BDADDR
	To      bt.BDADDR
	Payload any
}

// Medium is the shared radio environment. All methods must be called from
// scheduler context (the simulation is single-threaded).
type Medium struct {
	sched    *sim.Scheduler
	cfg      Config
	ports    []*Port
	sniffers []func(SniffedFrame)
	faults   FaultModel
	pages    []*pageOp
}

// Sniff registers a passive air sniffer observing every link frame at
// transmission time.
func (m *Medium) Sniff(fn func(SniffedFrame)) {
	m.sniffers = append(m.sniffers, fn)
}

// NewMedium creates an empty medium.
func NewMedium(s *sim.Scheduler, cfg Config) *Medium {
	if cfg.ResponseJitterMax < cfg.ResponseJitterMin {
		cfg.ResponseJitterMax = cfg.ResponseJitterMin
	}
	if cfg.PageRetrainInterval <= 0 {
		// A zero interval would respin lost trains at the same virtual
		// instant forever; fall back to the default cadence.
		cfg.PageRetrainInterval = 640 * time.Millisecond
	}
	return &Medium{sched: s, cfg: cfg}
}

// Config returns the medium timing configuration.
func (m *Medium) Config() Config { return m.cfg }

// Attach registers a receiver and returns its Port.
func (m *Medium) Attach(r Receiver) *Port {
	p := &Port{medium: m, recv: r}
	m.ports = append(m.ports, p)
	return p
}

// Detach removes a port from the medium, modelling the radio going dark
// (powered off, out of range, or an injected outage). Its links are closed
// with ErrPortDetached — on both sides: the peer observes LinkClosed with
// the outage reason, and the detaching receiver itself is notified so its
// controller can report the dead connections to its host. Any page the
// port initiated fails immediately with ErrPortDetached instead of
// lingering until the page timeout. Each callback fires exactly once.
func (m *Medium) Detach(p *Port) {
	for i, q := range m.ports {
		if q == p {
			m.ports = append(m.ports[:i], m.ports[i+1:]...)
			break
		}
	}
	for _, l := range append([]*Link(nil), p.links...) {
		l.close(p, ErrPortDetached)
		p.recv.LinkClosed(l, ErrPortDetached)
	}
	for _, op := range append([]*pageOp(nil), m.pages...) {
		if op.from == p {
			m.finishPage(op, nil, DeviceInfo{}, ErrPortDetached)
		}
	}
}

// Reattach restores a previously detached port to the medium, modelling
// the radio coming back after an outage. Links do not survive the outage;
// the port simply becomes reachable again. Reattaching an attached port
// is a no-op.
func (m *Medium) Reattach(p *Port) {
	if p.medium != m {
		panic("radio: Reattach of a port from another medium")
	}
	if p.attached() {
		return
	}
	m.ports = append(m.ports, p)
}

// Port is one radio attached to the medium.
type Port struct {
	medium *Medium
	recv   Receiver
	links  []*Link
}

// Info exposes the receiver's current identity.
func (p *Port) Info() DeviceInfo { return p.recv.Info() }

// Medium errors.
var (
	ErrPageTimeout  = errors.New("radio: page timeout")
	ErrLinkClosed   = errors.New("radio: link closed")
	ErrPortDetached = errors.New("radio: port detached")
)

// InquiryResult is one discovered device.
type InquiryResult struct {
	Info        DeviceInfo
	ClockOffset uint16
}

// StartInquiry broadcasts an inquiry for the given duration. Each
// discoverable port (other than the inquirer) responds after jitter via
// onResult; onDone fires when the inquiry window closes. Responses landing
// after the window are discarded.
func (m *Medium) StartInquiry(from *Port, duration time.Duration, onResult func(InquiryResult), onDone func()) {
	deadline := m.sched.Now() + duration
	for _, p := range m.ports {
		if p == from {
			continue
		}
		p := p
		delay := m.cfg.PropagationDelay + m.sched.JitterRange(m.cfg.ResponseJitterMin, m.cfg.ResponseJitterMax)
		m.sched.Schedule(delay, func() {
			if !p.attached() || !p.recv.InquiryScanEnabled() {
				return
			}
			if m.sched.Now()+m.cfg.PropagationDelay > deadline {
				return
			}
			if m.lost() { // inquiry response lost on the air
				return
			}
			res := InquiryResult{Info: p.recv.Info(), ClockOffset: uint16(m.sched.Rand().Intn(0x8000))}
			m.sched.Schedule(m.cfg.PropagationDelay, func() { onResult(res) })
		})
	}
	m.sched.Schedule(duration, onDone)
}

func (p *Port) attached() bool {
	for _, q := range p.medium.ports {
		if q == p {
			return true
		}
	}
	return false
}

// Page initiates connection establishment toward target. Every port whose
// *current* BDADDR equals target, is page-scanning, and accepts the page
// responds after independent jitter; the first response wins and a Link is
// created between pager and winner. Losing responders are never notified —
// exactly like a real page, where the responder only learns it "won" when
// the FHS/poll exchange continues. cb receives the established link or
// ErrPageTimeout.
func (m *Medium) Page(from *Port, target bt.BDADDR, cb func(*Link, DeviceInfo, error)) {
	op := &pageOp{from: from, cb: cb}
	m.pages = append(m.pages, op)
	op.timeout = m.sched.Schedule(m.cfg.PageTimeout, func() {
		m.finishPage(op, nil, DeviceInfo{}, ErrPageTimeout)
	})

	fromInfo := from.recv.Info()
	for _, p := range m.ports {
		if p == from {
			continue
		}
		p := p
		arrival := m.cfg.PropagationDelay
		var train func()
		train = func() {
			if op.done || !p.attached() {
				return
			}
			if !p.recv.PageScanEnabled() || p.recv.Info().Addr != target {
				return
			}
			if !p.recv.AcceptPage(fromInfo) {
				return
			}
			if m.lost() { // this train lost on the air; the next one repeats
				m.sched.Schedule(m.cfg.PageRetrainInterval, train)
				return
			}
			respDelay := m.sched.JitterRange(m.cfg.ResponseJitterMin, m.cfg.ResponseJitterMax) + m.cfg.PropagationDelay
			m.sched.Schedule(respDelay, func() {
				if op.done || !p.attached() || !from.attached() {
					return
				}
				if m.lost() { // response lost; the page train keeps repeating
					m.sched.Schedule(m.cfg.PageRetrainInterval, train)
					return
				}
				// First response to arrive establishes the link; later
				// responders for transaction txn are silently dropped.
				l := m.link(from, p)
				peerInfo := p.recv.Info()
				p.recv.LinkEstablished(l, fromInfo)
				m.finishPage(op, l, peerInfo, nil)
			})
		}
		m.sched.Schedule(arrival, train)
	}
}

// pageOp tracks one in-flight page so it resolves exactly once: by the
// winning response, by the page timeout, or by the pager detaching.
type pageOp struct {
	from    *Port
	done    bool
	timeout *sim.Event
	cb      func(*Link, DeviceInfo, error)
}

// finishPage resolves a page operation, untracking it and cancelling its
// timeout. Calls after the first are no-ops.
func (m *Medium) finishPage(op *pageOp, l *Link, peer DeviceInfo, err error) {
	if op.done {
		return
	}
	op.done = true
	m.sched.Cancel(op.timeout)
	for i, q := range m.pages {
		if q == op {
			m.pages = append(m.pages[:i], m.pages[i+1:]...)
			break
		}
	}
	op.cb(l, peer, err)
}

func (m *Medium) link(a, b *Port) *Link {
	l := &Link{medium: m, a: a, b: b}
	a.links = append(a.links, l)
	b.links = append(b.links, l)
	return l
}

// Link is an established point-to-point baseband connection.
type Link struct {
	medium *Medium
	a, b   *Port
	closed bool
}

// Peer returns the port on the other end from p.
func (l *Link) Peer(p *Port) *Port {
	if p == l.a {
		return l.b
	}
	return l.a
}

// Closed reports whether the link has been torn down.
func (l *Link) Closed() bool { return l.closed }

// Send delivers payload to the peer of from after the propagation delay,
// subject to the medium's fault model: a frame may be dropped, corrupted
// (CRC fail at the receiver — equivalent to a drop), duplicated, or
// delayed past later frames. Sniffers observe the transmission itself, so
// a dropped frame is still on the air (loss happens at the receiver).
// Frames in flight when the link closes are dropped.
func (l *Link) Send(from *Port, payload any) {
	if l.closed {
		return
	}
	peer := l.Peer(from)
	for _, sniff := range l.medium.sniffers {
		sniff(SniffedFrame{
			At:      l.medium.sched.Now(),
			From:    from.recv.Info().Addr,
			To:      peer.recv.Info().Addr,
			Payload: payload,
		})
	}
	delay := l.medium.cfg.PropagationDelay
	duplicate := false
	if fm := l.medium.faults; fm != nil {
		v := fm.Frame()
		if v.Lost() {
			return
		}
		delay += v.Delay
		duplicate = v.Duplicate
	}
	deliver := func() {
		if l.closed || !peer.attached() {
			return
		}
		peer.recv.LinkData(l, payload)
	}
	l.medium.sched.Schedule(delay, deliver)
	if duplicate {
		l.medium.sched.Schedule(delay+l.medium.cfg.PropagationDelay, deliver)
	}
}

// Close tears the link down; the peer observes LinkClosed with reason.
func (l *Link) Close(from *Port, reason error) { l.close(from, reason) }

func (l *Link) close(from *Port, reason error) {
	if l.closed {
		return
	}
	l.closed = true
	if reason == nil {
		reason = ErrLinkClosed
	}
	l.a.dropLink(l)
	l.b.dropLink(l)
	peer := l.Peer(from)
	l.medium.sched.Schedule(l.medium.cfg.PropagationDelay, func() {
		if peer.attached() {
			peer.recv.LinkClosed(l, reason)
		}
	})
}

func (p *Port) dropLink(l *Link) {
	for i, q := range p.links {
		if q == l {
			p.links = append(p.links[:i], p.links[i+1:]...)
			return
		}
	}
}

// String describes the link endpoints for diagnostics.
func (l *Link) String() string {
	return fmt.Sprintf("link(%s <-> %s)", l.a.recv.Info().Addr, l.b.recv.Info().Addr)
}
