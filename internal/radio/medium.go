// Package radio simulates the shared 2.4 GHz medium of Bluetooth BR/EDR at
// the abstraction level the BLAP attacks need: inquiry broadcast and
// response, paging with per-responder jitter (including the race between
// multiple radios scanning with the same BDADDR, which the page blocking
// attack defeats), and point-to-point physical links carrying LMP and ACL
// traffic.
package radio

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bt"
	"repro/internal/sim"
)

// Config tunes medium timing. The zero value is not useful; use
// DefaultConfig.
type Config struct {
	// PropagationDelay is the one-way frame flight time.
	PropagationDelay time.Duration
	// ResponseJitterMin/Max bound the uniform random delay before a
	// scanning device answers an inquiry or page. The page-response race
	// between an attacker and the genuine accessory — the source of the
	// paper's 42-60% baseline MITM success rate — is decided by this
	// jitter.
	ResponseJitterMin time.Duration
	ResponseJitterMax time.Duration
	// PageTimeout is how long a pager waits for any response.
	PageTimeout time.Duration
	// InquiryUnit is the duration of one inquiry-length unit (1.28 s).
	InquiryUnit time.Duration
}

// DefaultConfig returns the timing used by the paper-reproduction
// experiments.
func DefaultConfig() Config {
	return Config{
		PropagationDelay:  100 * time.Microsecond,
		ResponseJitterMin: 10 * time.Millisecond,
		ResponseJitterMax: 40 * time.Millisecond,
		PageTimeout:       5120 * time.Millisecond,
		InquiryUnit:       1280 * time.Millisecond,
	}
}

// DeviceInfo is the identity a radio advertises in inquiry responses and
// page handshakes.
type DeviceInfo struct {
	Addr bt.BDADDR
	COD  bt.ClassOfDevice
	Name string
}

// Receiver is the controller-side interface a Port delivers to.
type Receiver interface {
	// Info returns the current advertised identity. Called at response
	// time so BDADDR spoofing takes effect immediately.
	Info() DeviceInfo
	// InquiryScanEnabled reports discoverability.
	InquiryScanEnabled() bool
	// PageScanEnabled reports connectability.
	PageScanEnabled() bool
	// AcceptPage decides whether an incoming page from the given identity
	// may proceed to a baseband link.
	AcceptPage(from DeviceInfo) bool
	// LinkEstablished notifies the receiver of a new physical link. The
	// initiator reports via the Page callback instead, so this fires only
	// on the responder side.
	LinkEstablished(l *Link, peer DeviceInfo)
	// LinkData delivers a frame from the peer.
	LinkData(l *Link, payload any)
	// LinkClosed notifies that the peer (or the medium) tore the link down.
	LinkClosed(l *Link, reason error)
}

// SniffedFrame is one over-the-air frame as seen by a passive sniffer:
// source and destination identity plus the payload (an LMP PDU or
// encrypted ACL frame). Air sniffers see everything the baseband carries —
// which is why an extracted link key breaks past traffic too (§IV).
type SniffedFrame struct {
	At      time.Duration
	From    bt.BDADDR
	To      bt.BDADDR
	Payload any
}

// Medium is the shared radio environment. All methods must be called from
// scheduler context (the simulation is single-threaded).
type Medium struct {
	sched    *sim.Scheduler
	cfg      Config
	ports    []*Port
	sniffers []func(SniffedFrame)
}

// Sniff registers a passive air sniffer observing every link frame at
// transmission time.
func (m *Medium) Sniff(fn func(SniffedFrame)) {
	m.sniffers = append(m.sniffers, fn)
}

// NewMedium creates an empty medium.
func NewMedium(s *sim.Scheduler, cfg Config) *Medium {
	if cfg.ResponseJitterMax < cfg.ResponseJitterMin {
		cfg.ResponseJitterMax = cfg.ResponseJitterMin
	}
	return &Medium{sched: s, cfg: cfg}
}

// Config returns the medium timing configuration.
func (m *Medium) Config() Config { return m.cfg }

// Attach registers a receiver and returns its Port.
func (m *Medium) Attach(r Receiver) *Port {
	p := &Port{medium: m, recv: r}
	m.ports = append(m.ports, p)
	return p
}

// Detach removes a port from the medium; its links are closed.
func (m *Medium) Detach(p *Port) {
	for i, q := range m.ports {
		if q == p {
			m.ports = append(m.ports[:i], m.ports[i+1:]...)
			break
		}
	}
	for _, l := range append([]*Link(nil), p.links...) {
		l.close(p, ErrLinkClosed)
	}
}

// Port is one radio attached to the medium.
type Port struct {
	medium *Medium
	recv   Receiver
	links  []*Link
}

// Info exposes the receiver's current identity.
func (p *Port) Info() DeviceInfo { return p.recv.Info() }

// Medium errors.
var (
	ErrPageTimeout  = errors.New("radio: page timeout")
	ErrLinkClosed   = errors.New("radio: link closed")
	ErrPortDetached = errors.New("radio: port detached")
)

// InquiryResult is one discovered device.
type InquiryResult struct {
	Info        DeviceInfo
	ClockOffset uint16
}

// StartInquiry broadcasts an inquiry for the given duration. Each
// discoverable port (other than the inquirer) responds after jitter via
// onResult; onDone fires when the inquiry window closes. Responses landing
// after the window are discarded.
func (m *Medium) StartInquiry(from *Port, duration time.Duration, onResult func(InquiryResult), onDone func()) {
	deadline := m.sched.Now() + duration
	for _, p := range m.ports {
		if p == from {
			continue
		}
		p := p
		delay := m.cfg.PropagationDelay + m.sched.JitterRange(m.cfg.ResponseJitterMin, m.cfg.ResponseJitterMax)
		m.sched.Schedule(delay, func() {
			if !p.attached() || !p.recv.InquiryScanEnabled() {
				return
			}
			if m.sched.Now()+m.cfg.PropagationDelay > deadline {
				return
			}
			res := InquiryResult{Info: p.recv.Info(), ClockOffset: uint16(m.sched.Rand().Intn(0x8000))}
			m.sched.Schedule(m.cfg.PropagationDelay, func() { onResult(res) })
		})
	}
	m.sched.Schedule(duration, onDone)
}

func (p *Port) attached() bool {
	for _, q := range p.medium.ports {
		if q == p {
			return true
		}
	}
	return false
}

// Page initiates connection establishment toward target. Every port whose
// *current* BDADDR equals target, is page-scanning, and accepts the page
// responds after independent jitter; the first response wins and a Link is
// created between pager and winner. Losing responders are never notified —
// exactly like a real page, where the responder only learns it "won" when
// the FHS/poll exchange continues. cb receives the established link or
// ErrPageTimeout.
func (m *Medium) Page(from *Port, target bt.BDADDR, cb func(*Link, DeviceInfo, error)) {
	won := false
	timedOut := false

	timeout := m.sched.Schedule(m.cfg.PageTimeout, func() {
		if won {
			return
		}
		timedOut = true
		cb(nil, DeviceInfo{}, ErrPageTimeout)
	})

	fromInfo := from.recv.Info()
	for _, p := range m.ports {
		if p == from {
			continue
		}
		p := p
		arrival := m.cfg.PropagationDelay
		m.sched.Schedule(arrival, func() {
			if won || timedOut || !p.attached() {
				return
			}
			if !p.recv.PageScanEnabled() || p.recv.Info().Addr != target {
				return
			}
			if !p.recv.AcceptPage(fromInfo) {
				return
			}
			respDelay := m.sched.JitterRange(m.cfg.ResponseJitterMin, m.cfg.ResponseJitterMax) + m.cfg.PropagationDelay
			m.sched.Schedule(respDelay, func() {
				if won || timedOut || !p.attached() || !from.attached() {
					return
				}
				// First response to arrive establishes the link; later
				// responders for transaction txn are silently dropped.
				won = true
				m.sched.Cancel(timeout)
				l := m.link(from, p)
				peerInfo := p.recv.Info()
				p.recv.LinkEstablished(l, fromInfo)
				cb(l, peerInfo, nil)
			})
		})
	}
}

func (m *Medium) link(a, b *Port) *Link {
	l := &Link{medium: m, a: a, b: b}
	a.links = append(a.links, l)
	b.links = append(b.links, l)
	return l
}

// Link is an established point-to-point baseband connection.
type Link struct {
	medium *Medium
	a, b   *Port
	closed bool
}

// Peer returns the port on the other end from p.
func (l *Link) Peer(p *Port) *Port {
	if p == l.a {
		return l.b
	}
	return l.a
}

// Closed reports whether the link has been torn down.
func (l *Link) Closed() bool { return l.closed }

// Send delivers payload to the peer of from after the propagation delay.
// Frames in flight when the link closes are dropped.
func (l *Link) Send(from *Port, payload any) {
	if l.closed {
		return
	}
	peer := l.Peer(from)
	for _, sniff := range l.medium.sniffers {
		sniff(SniffedFrame{
			At:      l.medium.sched.Now(),
			From:    from.recv.Info().Addr,
			To:      peer.recv.Info().Addr,
			Payload: payload,
		})
	}
	l.medium.sched.Schedule(l.medium.cfg.PropagationDelay, func() {
		if l.closed || !peer.attached() {
			return
		}
		peer.recv.LinkData(l, payload)
	})
}

// Close tears the link down; the peer observes LinkClosed with reason.
func (l *Link) Close(from *Port, reason error) { l.close(from, reason) }

func (l *Link) close(from *Port, reason error) {
	if l.closed {
		return
	}
	l.closed = true
	if reason == nil {
		reason = ErrLinkClosed
	}
	l.a.dropLink(l)
	l.b.dropLink(l)
	peer := l.Peer(from)
	l.medium.sched.Schedule(l.medium.cfg.PropagationDelay, func() {
		if peer.attached() {
			peer.recv.LinkClosed(l, reason)
		}
	})
}

func (p *Port) dropLink(l *Link) {
	for i, q := range p.links {
		if q == l {
			p.links = append(p.links[:i], p.links[i+1:]...)
			return
		}
	}
}

// String describes the link endpoints for diagnostics.
func (l *Link) String() string {
	return fmt.Sprintf("link(%s <-> %s)", l.a.recv.Info().Addr, l.b.recv.Info().Addr)
}
