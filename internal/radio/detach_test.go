package radio

import (
	"testing"
	"time"
)

// Outage semantics: a port detaching mid-operation must resolve every
// in-flight callback exactly once, with the distinct outage error
// (ErrPortDetached) rather than a generic close or a lingering timeout.

func TestDetachMidPageFailsPagerOnce(t *testing.T) {
	s, m := world(20)
	a := newStub("aa:00:00:00:00:01", true)
	b := newStub("aa:00:00:00:00:02", true)
	pa := m.Attach(a)
	m.Attach(b)

	calls := 0
	var gotErr error
	m.Page(pa, b.info.Addr, func(l *Link, _ DeviceInfo, err error) {
		calls++
		gotErr = err
		if l != nil {
			t.Error("no link may be produced by an aborted page")
		}
	})
	// The pager goes dark before any response jitter can elapse.
	s.Schedule(time.Millisecond, func() { m.Detach(pa) })
	s.Run(0)

	if calls != 1 {
		t.Fatalf("page callback fired %d times, want exactly 1", calls)
	}
	if gotErr != ErrPortDetached {
		t.Fatalf("want ErrPortDetached, got %v", gotErr)
	}
}

func TestDetachMidLinkClosesPeerOnceWithOutageError(t *testing.T) {
	s, m := world(21)
	a := newStub("aa:00:00:00:00:01", true)
	b := newStub("aa:00:00:00:00:02", true)
	pa := m.Attach(a)
	m.Attach(b)

	var link *Link
	m.Page(pa, b.info.Addr, func(l *Link, _ DeviceInfo, _ error) { link = l })
	s.Run(0)
	if link == nil {
		t.Fatal("no link")
	}

	m.Detach(pa)
	s.Run(0)

	if !link.Closed() {
		t.Fatal("detach must close the link")
	}
	if len(b.closed) != 1 {
		t.Fatalf("peer LinkClosed fired %d times, want exactly 1", len(b.closed))
	}
	if b.closed[0] != ErrPortDetached {
		t.Fatalf("peer close reason: want ErrPortDetached, got %v", b.closed[0])
	}
	// The detaching side hears about its own dead links too (its
	// controller must report them to its host), exactly once.
	if len(a.closed) != 1 || a.closed[0] != ErrPortDetached {
		t.Fatalf("detaching side close notifications: %v", a.closed)
	}
}

func TestDetachMidPageTargetSideTimesOut(t *testing.T) {
	// The *target* detaching mid-page leaves the pager to its normal page
	// timeout — the pager cannot know the difference between a dark radio
	// and an absent one.
	s, m := world(22)
	a := newStub("aa:00:00:00:00:01", true)
	b := newStub("aa:00:00:00:00:02", true)
	pa := m.Attach(a)
	pb := m.Attach(b)

	calls := 0
	var gotErr error
	m.Page(pa, b.info.Addr, func(_ *Link, _ DeviceInfo, err error) { calls++; gotErr = err })
	s.Schedule(time.Millisecond, func() { m.Detach(pb) })
	s.Run(0)

	if calls != 1 || gotErr != ErrPageTimeout {
		t.Fatalf("calls=%d err=%v, want one ErrPageTimeout", calls, gotErr)
	}
}

func TestReattachRestoresReachability(t *testing.T) {
	s, m := world(23)
	a := newStub("aa:00:00:00:00:01", true)
	b := newStub("aa:00:00:00:00:02", true)
	pa := m.Attach(a)
	pb := m.Attach(b)

	m.Detach(pb)
	var errBefore error
	m.Page(pa, b.info.Addr, func(_ *Link, _ DeviceInfo, err error) { errBefore = err })
	s.Run(0)
	if errBefore != ErrPageTimeout {
		t.Fatalf("detached port must be unreachable: %v", errBefore)
	}

	m.Reattach(pb)
	m.Reattach(pb) // idempotent
	var errAfter error
	var link *Link
	m.Page(pa, b.info.Addr, func(l *Link, _ DeviceInfo, err error) { link, errAfter = l, err })
	s.Run(0)
	if errAfter != nil || link == nil {
		t.Fatalf("reattached port must be pageable again: %v", errAfter)
	}
}

// scriptedFaults replays a fixed verdict sequence (then delivers).
type scriptedFaults struct {
	verdicts []FrameVerdict
	calls    int
}

func (f *scriptedFaults) Frame() FrameVerdict {
	f.calls++
	if len(f.verdicts) == 0 {
		return FrameVerdict{}
	}
	v := f.verdicts[0]
	f.verdicts = f.verdicts[1:]
	return v
}

func TestFaultModelDropCorruptDuplicateDelay(t *testing.T) {
	s, m := world(24)
	a := newStub("aa:00:00:00:00:01", true)
	b := newStub("aa:00:00:00:00:02", true)
	pa := m.Attach(a)
	m.Attach(b)

	var link *Link
	m.Page(pa, b.info.Addr, func(l *Link, _ DeviceInfo, _ error) { link = l })
	s.Run(0)
	if link == nil {
		t.Fatal("no link")
	}

	fm := &scriptedFaults{verdicts: []FrameVerdict{
		{Drop: true},
		{Corrupt: true},
		{Duplicate: true},
		{Delay: 50 * time.Millisecond},
		{},
	}}
	m.SetFaultModel(fm)

	link.Send(pa, "dropped")
	link.Send(pa, "corrupted")
	link.Send(pa, "duplicated")
	link.Send(pa, "delayed")
	link.Send(pa, "overtaker")
	s.Run(0)

	// All five frames leave at the same instant: the duplicate's second
	// copy lands one propagation delay after the first, so the overtaker
	// (plain delivery) slots between them; the delayed frame arrives last.
	want := []any{"duplicated", "overtaker", "duplicated", "delayed"}
	if len(b.data) != len(want) {
		t.Fatalf("delivered %v, want %v", b.data, want)
	}
	for i := range want {
		if b.data[i] != want[i] {
			t.Fatalf("delivered %v, want %v", b.data, want)
		}
	}
	if fm.calls != 5 {
		t.Fatalf("fault model consulted %d times, want once per frame", fm.calls)
	}
}

// blackoutFaults drops every frame, forever.
type blackoutFaults struct{ calls int }

func (f *blackoutFaults) Frame() FrameVerdict {
	f.calls++
	return FrameVerdict{Drop: true}
}

func TestFaultModelLosesPageFrames(t *testing.T) {
	// Total loss: every repeated page train is eaten, so the pager must
	// still time out even though the target is scanning.
	s, m := world(25)
	a := newStub("aa:00:00:00:00:01", true)
	b := newStub("aa:00:00:00:00:02", true)
	pa := m.Attach(a)
	m.Attach(b)
	fm := &blackoutFaults{}
	m.SetFaultModel(fm)

	var gotErr error
	m.Page(pa, b.info.Addr, func(_ *Link, _ DeviceInfo, err error) { gotErr = err })
	s.Run(0)
	if gotErr != ErrPageTimeout {
		t.Fatalf("want page timeout under total loss, got %v", gotErr)
	}
	// The page train repeated across the timeout window (5120 ms at one
	// train per 640 ms), not just once.
	if fm.calls < 8 {
		t.Fatalf("page train consulted the channel %d times, want the full repeating train", fm.calls)
	}
}

func TestPageRetrainsThroughLoss(t *testing.T) {
	// The first train and the first response are both lost; the repeating
	// train still lands the page inside the timeout window — loss delays
	// the page instead of killing it.
	s, m := world(26)
	a := newStub("aa:00:00:00:00:01", true)
	b := newStub("aa:00:00:00:00:02", true)
	pa := m.Attach(a)
	m.Attach(b)
	m.SetFaultModel(&scriptedFaults{verdicts: []FrameVerdict{{Drop: true}, {Drop: true}}})

	var link *Link
	var gotErr error
	m.Page(pa, b.info.Addr, func(l *Link, _ DeviceInfo, err error) { link, gotErr = l, err })
	s.Run(0)
	if gotErr != nil || link == nil {
		t.Fatalf("page must survive early train loss via retraining: link=%v err=%v", link, gotErr)
	}
}
