// Package usbsniff models HCI data leakage through the USB physical
// transport between a PC host stack and a USB Bluetooth dongle, the
// Windows-side variant of the paper's link key extraction attack
// (§IV-B, §VI-B1). A Sniffer taps the HCI transport the way a bus
// analyzer such as "Free USB Analyzer" or an FTS4USB probe would: it
// captures raw URB traffic as a binary stream, including idle NULL
// transfers. The package also reimplements the paper's helper tooling: a
// binary-to-hex-ASCII converter and the opcode-pattern scan ("0b 04 16")
// that locates HCI_Link_Key_Request_Reply payloads in the converted dump.
package usbsniff

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"time"

	"repro/internal/bt"
	"repro/internal/hci"
)

// Endpoint identifiers in the standard USB HCI (H2) mapping.
const (
	// EndpointControl carries HCI commands (host to controller).
	EndpointControl = 0x00
	// EndpointInterrupt carries HCI events (controller to host).
	EndpointInterrupt = 0x81
	// EndpointBulkOut/In carry ACL data.
	EndpointBulkOut = 0x02
	EndpointBulkIn  = 0x82
)

// urbMagic starts every captured transfer record.
var urbMagic = [4]byte{'U', 'R', 'B', '0'}

// URB is one captured USB transfer.
type URB struct {
	Endpoint uint8
	// Payload is the HCI packet body in H2 framing: unlike UART (H4),
	// USB transport carries no packet-type indicator octet — commands are
	// identified by the control endpoint, so the capture starts directly
	// with the opcode. This is why the paper searches for "0b 04 16"
	// rather than "01 0b 04 16".
	Payload []byte
}

// Sniffer is an hci.Tap capturing transport traffic as a raw URB stream.
type Sniffer struct {
	buf bytes.Buffer
	// NoisePeriod inserts an empty interrupt poll record every N packets,
	// mimicking the "lots of HCI and NULL data" the paper observes in raw
	// USB dumps. Zero disables noise.
	NoisePeriod int

	packets int
}

// NewSniffer returns a sniffer that inserts a NULL poll after every
// packet, like a real interrupt-endpoint capture.
func NewSniffer() *Sniffer { return &Sniffer{NoisePeriod: 1} }

// Observe implements hci.Tap.
func (s *Sniffer) Observe(_ time.Duration, dir hci.Direction, wire []byte) {
	if len(wire) < 1 {
		return
	}
	var ep uint8
	switch hci.PacketType(wire[0]) {
	case hci.PTCommand:
		ep = EndpointControl
	case hci.PTEvent:
		ep = EndpointInterrupt
	case hci.PTACLData:
		if dir == hci.DirHostToController {
			ep = EndpointBulkOut
		} else {
			ep = EndpointBulkIn
		}
	default:
		return
	}
	s.writeURB(URB{Endpoint: ep, Payload: wire[1:]})
	s.packets++
	if s.NoisePeriod > 0 && s.packets%s.NoisePeriod == 0 {
		s.writeURB(URB{Endpoint: EndpointInterrupt}) // idle NULL poll
	}
}

func (s *Sniffer) writeURB(u URB) {
	s.buf.Write(urbMagic[:])
	s.buf.WriteByte(u.Endpoint)
	var ln [2]byte
	binary.LittleEndian.PutUint16(ln[:], uint16(len(u.Payload)))
	s.buf.Write(ln[:])
	s.buf.Write(u.Payload)
}

// Raw returns the captured binary stream.
func (s *Sniffer) Raw() []byte { return append([]byte(nil), s.buf.Bytes()...) }

// Reset discards the capture.
func (s *Sniffer) Reset() { s.buf.Reset(); s.packets = 0 }

// ParseURBs decodes a raw capture back into transfer records.
func ParseURBs(raw []byte) ([]URB, error) {
	var out []URB
	for off := 0; off < len(raw); {
		if off+7 > len(raw) {
			return out, fmt.Errorf("usbsniff: truncated URB header at offset %d", off)
		}
		if !bytes.Equal(raw[off:off+4], urbMagic[:]) {
			return out, fmt.Errorf("usbsniff: bad URB magic at offset %d", off)
		}
		ep := raw[off+4]
		ln := int(binary.LittleEndian.Uint16(raw[off+5 : off+7]))
		off += 7
		if off+ln > len(raw) {
			return out, fmt.Errorf("usbsniff: truncated URB payload at offset %d", off)
		}
		out = append(out, URB{Endpoint: ep, Payload: append([]byte(nil), raw[off:off+ln]...)})
		off += ln
	}
	return out, nil
}

const hexDigits = "0123456789abcdef"

// AppendHex appends the space-separated lowercase hex ASCII form of data
// to dst and returns the extended slice. The append form lets streaming
// consumers (hcidump's -hex mode, the converter below) reuse one buffer
// across millions of records instead of building a fresh string each.
func AppendHex(dst, data []byte) []byte {
	for i, c := range data {
		if i > 0 {
			dst = append(dst, ' ')
		}
		dst = append(dst, hexDigits[c>>4], hexDigits[c&0x0f])
	}
	return dst
}

// BinaryToHex converts a binary capture to the space-separated lowercase
// hex ASCII form the paper's converter tool produces [27].
func BinaryToHex(data []byte) string {
	if len(data) == 0 {
		return ""
	}
	return string(AppendHex(make([]byte, 0, len(data)*3-1), data))
}

// ExtractedKey is one link key recovered from a USB capture.
type ExtractedKey struct {
	// HexOffset is the byte offset of the opcode pattern within the hex
	// ASCII dump.
	HexOffset int
	Peer      bt.BDADDR
	Key       bt.LinkKey
}

// linkKeyReplyPattern is the hex signature of HCI_Link_Key_Request_Reply:
// opcode 0x040B little-endian followed by the 22-byte parameter length.
const linkKeyReplyPattern = "0b 04 16"

// ExtractLinkKeys runs the paper's extraction procedure: convert the raw
// binary stream to hex ASCII, scan for the "0b 04 16" opcode pattern, and
// decode the six address bytes and sixteen key bytes that follow,
// reversing the wire order to present the key big-endian (Fig. 11a).
func ExtractLinkKeys(raw []byte) []ExtractedKey {
	hexDump := BinaryToHex(raw)
	var out []ExtractedKey
	for idx := 0; ; {
		rel := strings.Index(hexDump[idx:], linkKeyReplyPattern)
		if rel < 0 {
			return out
		}
		pos := idx + rel
		idx = pos + 1
		// Pattern must be token-aligned (offset divisible by 3).
		if pos%3 != 0 {
			continue
		}
		fields := strings.Fields(hexDump[pos:])
		if len(fields) < 3+6+16 {
			continue
		}
		var wire [22]byte
		ok := true
		for i := 0; i < 22; i++ {
			if _, err := fmt.Sscanf(fields[3+i], "%02x", &wire[i]); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		var le [6]byte
		copy(le[:], wire[:6])
		var key bt.LinkKey
		for i := 0; i < 16; i++ {
			key[i] = wire[6+15-i]
		}
		out = append(out, ExtractedKey{HexOffset: pos, Peer: bt.BDADDRFromLittleEndian(le), Key: key})
	}
}
