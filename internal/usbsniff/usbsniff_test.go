package usbsniff

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bt"
	"repro/internal/hci"
)

func TestObserveMapsEndpoints(t *testing.T) {
	s := NewSniffer()
	s.NoisePeriod = 0
	cmd := hci.EncodeCommand(&hci.Reset{})
	evt := hci.EncodeEvent(&hci.InquiryComplete{Status: hci.StatusSuccess})
	aclOut := hci.EncodeACL(hci.DirHostToController, 1, []byte{9, 9, 9, 9, 9, 9})
	aclIn := hci.EncodeACL(hci.DirControllerToHost, 1, []byte{8, 8, 8, 8, 8, 8})
	s.Observe(0, hci.DirHostToController, cmd.Wire())
	s.Observe(0, hci.DirControllerToHost, evt.Wire())
	s.Observe(0, hci.DirHostToController, aclOut.Wire())
	s.Observe(0, hci.DirControllerToHost, aclIn.Wire())

	urbs, err := ParseURBs(s.Raw())
	if err != nil {
		t.Fatal(err)
	}
	if len(urbs) != 4 {
		t.Fatalf("want 4 URBs, got %d", len(urbs))
	}
	wantEP := []uint8{EndpointControl, EndpointInterrupt, EndpointBulkOut, EndpointBulkIn}
	for i, u := range urbs {
		if u.Endpoint != wantEP[i] {
			t.Errorf("URB %d endpoint %02x, want %02x", i, u.Endpoint, wantEP[i])
		}
	}
	// H2 framing: no packet-type indicator — the command payload starts
	// with the opcode.
	if urbs[0].Payload[0] != 0x03 || urbs[0].Payload[1] != 0x0c {
		t.Errorf("command payload starts %x, want opcode 030c", urbs[0].Payload[:2])
	}
}

func TestNoiseInsertion(t *testing.T) {
	s := NewSniffer() // NoisePeriod 1: a NULL poll after every packet
	s.Observe(0, hci.DirHostToController, hci.EncodeCommand(&hci.Reset{}).Wire())
	urbs, err := ParseURBs(s.Raw())
	if err != nil {
		t.Fatal(err)
	}
	if len(urbs) != 2 {
		t.Fatalf("want packet + NULL poll, got %d", len(urbs))
	}
	if len(urbs[1].Payload) != 0 {
		t.Error("noise URB should be empty")
	}
}

func TestBinaryToHex(t *testing.T) {
	if got := BinaryToHex([]byte{0x0b, 0x04, 0x16}); got != "0b 04 16" {
		t.Fatalf("got %q", got)
	}
	if got := BinaryToHex(nil); got != "" {
		t.Fatalf("empty: %q", got)
	}
}

func TestExtractLinkKeysFromStream(t *testing.T) {
	addr := bt.MustBDADDR("00:1a:7d:da:71:0a")
	key := bt.MustLinkKey("c4f16e949f04ee9c0fd6b1330289c324")
	s := NewSniffer()
	// Surround the key packet with unrelated traffic and NULL noise.
	s.Observe(0, hci.DirHostToController, hci.EncodeCommand(&hci.Reset{}).Wire())
	s.Observe(0, hci.DirControllerToHost, hci.EncodeEvent(&hci.LinkKeyRequest{Addr: addr}).Wire())
	s.Observe(0, hci.DirHostToController, hci.EncodeCommand(&hci.LinkKeyRequestReply{Addr: addr, Key: key}).Wire())
	s.Observe(0, hci.DirControllerToHost, hci.EncodeEvent(&hci.CommandComplete{NumPackets: 1, CommandOpcode: hci.OpLinkKeyRequestReply, ReturnParams: []byte{0}}).Wire())

	keys := ExtractLinkKeys(s.Raw())
	if len(keys) != 1 {
		t.Fatalf("want 1 key, got %d", len(keys))
	}
	if keys[0].Key != key {
		t.Fatalf("extracted %s, want %s (big-endian presentation)", keys[0].Key, key)
	}
	if keys[0].Peer != addr {
		t.Fatalf("peer %s, want %s", keys[0].Peer, addr)
	}
	// The pattern offset must point at "0b 04 16" in the hex dump.
	hexDump := BinaryToHex(s.Raw())
	if !strings.HasPrefix(hexDump[keys[0].HexOffset:], "0b 04 16") {
		t.Error("HexOffset does not point at the opcode pattern")
	}
}

func TestExtractIgnoresUnalignedPattern(t *testing.T) {
	// A raw byte string whose hex rendering contains "0b 04 16" only
	// misaligned (e.g. "b0 b0 41 6...") must not produce a key.
	raw := []byte{0xb0, 0xb0, 0x41, 0x60, 0x00}
	if keys := ExtractLinkKeys(raw); len(keys) != 0 {
		t.Fatalf("unaligned pattern extracted: %v", keys)
	}
}

func TestExtractTruncatedTail(t *testing.T) {
	// The pattern appears but the stream ends before 22 parameter bytes.
	raw := []byte{0x0b, 0x04, 0x16, 1, 2, 3}
	if keys := ExtractLinkKeys(raw); len(keys) != 0 {
		t.Fatalf("truncated capture extracted: %v", keys)
	}
}

func TestParseURBsRejectsCorruption(t *testing.T) {
	s := NewSniffer()
	s.Observe(0, hci.DirHostToController, hci.EncodeCommand(&hci.Reset{}).Wire())
	raw := s.Raw()
	if _, err := ParseURBs(raw[:5]); err == nil {
		t.Error("truncated header accepted")
	}
	bad := append([]byte(nil), raw...)
	bad[0] = 'X'
	if _, err := ParseURBs(bad); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ParseURBs(raw[:len(raw)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
	if urbs, err := ParseURBs(nil); err != nil || len(urbs) != 0 {
		t.Error("empty stream should parse to nothing")
	}
}

func TestSnifferReset(t *testing.T) {
	s := NewSniffer()
	s.Observe(0, hci.DirHostToController, hci.EncodeCommand(&hci.Reset{}).Wire())
	if len(s.Raw()) == 0 {
		t.Fatal("nothing captured")
	}
	s.Reset()
	if len(s.Raw()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Any sequence of ACL payloads must round-trip through the URB codec.
	f := func(payloads [][]byte) bool {
		s := NewSniffer()
		s.NoisePeriod = 0
		n := 0
		for _, p := range payloads {
			if len(p) > 200 {
				p = p[:200]
			}
			s.Observe(0, hci.DirHostToController, hci.EncodeACL(hci.DirHostToController, 1, p).Wire())
			n++
		}
		urbs, err := ParseURBs(s.Raw())
		return err == nil && len(urbs) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
