package usbsniff

import "testing"

// FuzzParseURBs must reject garbage without panicking.
func FuzzParseURBs(f *testing.F) {
	s := NewSniffer()
	s.Observe(0, 0, []byte{0x01, 0x03, 0x0c, 0x00})
	f.Add(s.Raw())
	f.Add([]byte("URB0"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		ParseURBs(raw)
		ExtractLinkKeys(raw)
	})
}
