package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ParsePlan parses the operator-facing fault plan mini-language used by
// the btsim -faults flag. The spec is a comma-separated key=value list:
//
//	drop=0.05                 independent per-frame loss probability
//	corrupt=0.01              CRC-failing corruption probability
//	dup=0.01                  duplication probability
//	reorder=0.02:50ms         reorder probability : window (window optional)
//	burst=0.05:0.3:0.5        Gilbert–Elliott enter : exit : bad-loss
//	burst=0.05:0.3:0.01:0.5   ... or enter : exit : good-loss : bad-loss
//	outage=C@2s+500ms         device @ start + duration (repeatable)
//
// An empty spec parses to the zero plan.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Plan{}, fmt.Errorf("faults: %q is not key=value", field)
		}
		var err error
		switch key {
		case "drop":
			p.Drop, err = parseProb(key, val)
		case "corrupt":
			p.Corrupt, err = parseProb(key, val)
		case "dup":
			p.Duplicate, err = parseProb(key, val)
		case "reorder":
			prob, window, hasWindow := strings.Cut(val, ":")
			if p.Reorder, err = parseProb(key, prob); err == nil && hasWindow {
				p.ReorderWindow, err = time.ParseDuration(window)
				if err != nil {
					err = fmt.Errorf("faults: reorder window %q: %w", window, err)
				}
			}
		case "burst":
			p.Burst, err = parseBurst(val)
		case "outage":
			var o Outage
			if o, err = parseOutage(val); err == nil {
				p.Outages = append(p.Outages, o)
			}
		default:
			return Plan{}, fmt.Errorf("faults: unknown key %q (want drop, corrupt, dup, reorder, burst, outage)", key)
		}
		if err != nil {
			return Plan{}, err
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

func parseProb(name, s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("faults: %s=%q is not a number", name, s)
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("faults: %s=%v outside [0, 1]", name, v)
	}
	return v, nil
}

func parseBurst(s string) (*Burst, error) {
	parts := strings.Split(s, ":")
	probs := make([]float64, len(parts))
	for i, part := range parts {
		v, err := parseProb("burst", part)
		if err != nil {
			return nil, err
		}
		probs[i] = v
	}
	switch len(probs) {
	case 3:
		return &Burst{PEnter: probs[0], PExit: probs[1], BadLoss: probs[2]}, nil
	case 4:
		return &Burst{PEnter: probs[0], PExit: probs[1], GoodLoss: probs[2], BadLoss: probs[3]}, nil
	default:
		return nil, fmt.Errorf("faults: burst=%q wants enter:exit:bad-loss or enter:exit:good-loss:bad-loss", s)
	}
}

func parseOutage(s string) (Outage, error) {
	device, when, ok := strings.Cut(s, "@")
	if !ok || device == "" {
		return Outage{}, fmt.Errorf("faults: outage=%q wants device@start+duration", s)
	}
	start, dur, ok := strings.Cut(when, "+")
	if !ok {
		return Outage{}, fmt.Errorf("faults: outage=%q wants device@start+duration", s)
	}
	o := Outage{Device: device}
	var err error
	if o.Start, err = time.ParseDuration(start); err != nil {
		return Outage{}, fmt.Errorf("faults: outage start %q: %w", start, err)
	}
	if o.Duration, err = time.ParseDuration(dur); err != nil {
		return Outage{}, fmt.Errorf("faults: outage duration %q: %w", dur, err)
	}
	return o, nil
}

// String renders the plan back in ParsePlan's mini-language (canonical
// key order). The zero plan renders as "none".
func (p Plan) String() string {
	if p.IsZero() {
		return "none"
	}
	var parts []string
	add := func(key string, v float64) {
		if v > 0 {
			parts = append(parts, key+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	add("drop", p.Drop)
	add("corrupt", p.Corrupt)
	add("dup", p.Duplicate)
	if p.Reorder > 0 {
		part := "reorder=" + strconv.FormatFloat(p.Reorder, 'g', -1, 64)
		if p.ReorderWindow > 0 {
			part += ":" + p.ReorderWindow.String()
		}
		parts = append(parts, part)
	}
	if b := p.Burst; b != nil {
		f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
		part := "burst=" + f(b.PEnter) + ":" + f(b.PExit)
		if b.GoodLoss > 0 {
			part += ":" + f(b.GoodLoss)
		}
		part += ":" + f(b.BadLoss)
		parts = append(parts, part)
	}
	outages := append([]Outage(nil), p.Outages...)
	sort.SliceStable(outages, func(i, j int) bool { return outages[i].Start < outages[j].Start })
	for _, o := range outages {
		parts = append(parts, fmt.Sprintf("outage=%s@%v+%v", o.Device, o.Start, o.Duration))
	}
	return strings.Join(parts, ",")
}
