package faults

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

func TestCutReaderCutsAtExactOffset(t *testing.T) {
	src := bytes.Repeat([]byte("abc"), 100)
	for _, cut := range []int64{0, 1, 7, 299, 300, 301} {
		r := &CutReader{R: bytes.NewReader(src), N: cut}
		got, err := io.ReadAll(r)
		wantN := int(cut)
		if wantN > len(src) {
			wantN = len(src)
		}
		if !bytes.Equal(got, src[:wantN]) {
			t.Fatalf("cut %d: delivered %d bytes, want %d", cut, len(got), wantN)
		}
		// A budget at or below the stream length cuts (even at the exact
		// end: the reset races the EOF and the reset wins); only a budget
		// beyond the stream lets the clean EOF through.
		if cut <= int64(len(src)) {
			if !errors.Is(err, ErrCut) {
				t.Fatalf("cut %d: err %v, want ErrCut", cut, err)
			}
		} else if err != nil {
			t.Fatalf("cut beyond stream: err %v", err)
		}
	}
}

func TestCutWriterPartialWriteThenCut(t *testing.T) {
	var sink bytes.Buffer
	w := &CutWriter{W: &sink, N: 10}
	n, err := w.Write([]byte("0123456"))
	if n != 7 || err != nil {
		t.Fatalf("within budget: n=%d err=%v", n, err)
	}
	n, err = w.Write([]byte("789abcdef"))
	if n != 3 || !errors.Is(err, ErrCut) {
		t.Fatalf("straddling write: n=%d err=%v, want 3/ErrCut", n, err)
	}
	if got := sink.String(); got != "0123456789" {
		t.Fatalf("forwarded %q", got)
	}
	if n, err := w.Write([]byte("x")); n != 0 || !errors.Is(err, ErrCut) {
		t.Fatalf("post-cut write: n=%d err=%v", n, err)
	}
}

func TestSlowReaderChunksAndDelays(t *testing.T) {
	src := []byte("hello, slow world")
	r := &SlowReader{R: bytes.NewReader(src), Chunk: 3, Delay: time.Millisecond}
	start := time.Now()
	got, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("read: %q, %v", got, err)
	}
	// ceil(17/3)=6 data reads plus the final EOF read, 1ms each.
	if elapsed := time.Since(start); elapsed < 6*time.Millisecond {
		t.Fatalf("slow reader too fast: %v", elapsed)
	}
}

func TestFullWriterRejectsWholesale(t *testing.T) {
	var sink bytes.Buffer
	w := &FullWriter{W: &sink, N: 8}
	if n, err := w.Write([]byte("12345678")); n != 8 || err != nil {
		t.Fatalf("fit: n=%d err=%v", n, err)
	}
	if n, err := w.Write([]byte("9")); n != 0 || !errors.Is(err, ErrDiskFull) {
		t.Fatalf("overflow: n=%d err=%v", n, err)
	}
	if sink.Len() != 8 {
		t.Fatalf("sink holds %d bytes", sink.Len())
	}
}
