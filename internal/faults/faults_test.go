package faults

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestZeroPlanDrawsNoRNG(t *testing.T) {
	// The determinism contract: an injector with a zero plan must not
	// consume any randomness, so installing it is bit-identical to not
	// installing a fault model at all.
	s := sim.NewScheduler(1)
	in := NewInjector(s, Plan{})
	for i := 0; i < 1000; i++ {
		if v := in.Frame(); v.Lost() || v.Duplicate || v.Delay != 0 {
			t.Fatalf("zero plan injected a fault: %+v", v)
		}
	}
	// After 1000 zero-plan frames the scheduler's RNG must be in the
	// same state as a completely fresh one.
	s2 := sim.NewScheduler(1)
	if got, want := s.Rand().Int63(), s2.Rand().Int63(); got != want {
		t.Fatalf("zero plan consumed RNG: next draw %d, want %d", got, want)
	}
	if st := in.Stats(); st.Frames != 1000 || st.Dropped+st.Corrupted+st.Duplicated+st.Reordered+st.BurstDropped != 0 {
		t.Fatalf("zero plan stats: %+v", st)
	}
}

func TestInjectorDeterministic(t *testing.T) {
	plan := Plan{Drop: 0.1, Corrupt: 0.05, Duplicate: 0.05, Reorder: 0.1, ReorderWindow: 10 * time.Millisecond,
		Burst: &Burst{PEnter: 0.02, PExit: 0.3, BadLoss: 0.6}}
	run := func() []byte {
		s := sim.NewScheduler(42)
		in := NewInjector(s, plan)
		var out []byte
		for i := 0; i < 5000; i++ {
			v := in.Frame()
			var b byte
			if v.Drop {
				b |= 1
			}
			if v.Corrupt {
				b |= 2
			}
			if v.Duplicate {
				b |= 4
			}
			if v.Delay > 0 {
				b |= 8
			}
			out = append(out, b)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at frame %d", i)
		}
	}
}

func TestInjectorRatesConverge(t *testing.T) {
	s := sim.NewScheduler(7)
	in := NewInjector(s, Plan{Drop: 0.1, Corrupt: 0.05, Duplicate: 0.05})
	const n = 50000
	for i := 0; i < n; i++ {
		in.Frame()
	}
	st := in.Stats()
	if got := float64(st.Dropped) / n; math.Abs(got-0.1) > 0.01 {
		t.Errorf("drop rate %.3f, want ~0.10", got)
	}
	// Corruption is only tested on frames that survived the drop draw:
	// realized rate ≈ 0.05 * 0.9.
	if got := float64(st.Corrupted) / n; math.Abs(got-0.045) > 0.01 {
		t.Errorf("corrupt rate %.3f, want ~0.045", got)
	}
	if lr := st.LossRate(); math.Abs(lr-(0.1+0.045)) > 0.01 {
		t.Errorf("loss rate %.3f, want ~0.145", lr)
	}
}

func TestBurstLossClusters(t *testing.T) {
	// Gilbert–Elliott with sticky states must produce clustered losses:
	// the chance a loss is followed immediately by another loss should be
	// far above the marginal loss rate.
	s := sim.NewScheduler(11)
	in := NewInjector(s, Plan{Burst: &Burst{PEnter: 0.01, PExit: 0.1, BadLoss: 0.8}})
	const n = 100000
	var losses, pairs, afterLoss int
	prev := false
	for i := 0; i < n; i++ {
		lost := in.Frame().Lost()
		if lost {
			losses++
		}
		if prev {
			afterLoss++
			if lost {
				pairs++
			}
		}
		prev = lost
	}
	marginal := float64(losses) / n
	conditional := float64(pairs) / float64(afterLoss)
	if conditional < 3*marginal {
		t.Fatalf("losses not bursty: P(loss|loss)=%.3f vs marginal %.3f", conditional, marginal)
	}
	st := in.Stats()
	if st.BadFrames == 0 || st.BurstDropped != uint64(losses) {
		t.Fatalf("burst stats inconsistent: %+v vs %d losses", st, losses)
	}
}

func TestScheduleOutages(t *testing.T) {
	s := sim.NewScheduler(1)
	plan := Plan{Outages: []Outage{{Device: "C", Start: 2 * time.Second, Duration: time.Second}}}
	var trace []string
	err := ScheduleOutages(s, plan, func(dev string) (func(), func(), error) {
		return func() { trace = append(trace, "detach-"+dev+"@"+s.Now().String()) },
			func() { trace = append(trace, "attach-"+dev+"@"+s.Now().String()) }, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	if len(trace) != 2 || trace[0] != "detach-C@2s" || trace[1] != "attach-C@3s" {
		t.Fatalf("outage trace: %v", trace)
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("drop=0.05, corrupt=0.01,dup=0.02,reorder=0.03:50ms,burst=0.05:0.3:0.5,outage=C@2s+500ms,outage=M@1s+250ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.Drop != 0.05 || p.Corrupt != 0.01 || p.Duplicate != 0.02 {
		t.Fatalf("probs: %+v", p)
	}
	if p.Reorder != 0.03 || p.ReorderWindow != 50*time.Millisecond {
		t.Fatalf("reorder: %+v", p)
	}
	if p.Burst == nil || *p.Burst != (Burst{PEnter: 0.05, PExit: 0.3, BadLoss: 0.5}) {
		t.Fatalf("burst: %+v", p.Burst)
	}
	if len(p.Outages) != 2 || p.Outages[0] != (Outage{Device: "C", Start: 2 * time.Second, Duration: 500 * time.Millisecond}) {
		t.Fatalf("outages: %+v", p.Outages)
	}

	if p, err := ParsePlan(""); err != nil || !p.IsZero() {
		t.Fatalf("empty spec: %+v, %v", p, err)
	}
	if p, err := ParsePlan("burst=0.05:0.3:0.01:0.5"); err != nil || p.Burst.GoodLoss != 0.01 || p.Burst.BadLoss != 0.5 {
		t.Fatalf("4-field burst: %+v, %v", p.Burst, err)
	}

	for _, bad := range []string{
		"drop=1.5", "drop=x", "frob=1", "drop", "reorder=0.1:xyz",
		"burst=0.1:0.2", "outage=C@2s", "outage=@2s+1s", "outage=C@-1s+1s", "outage=C@1s+0s",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestPlanStringRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"drop=0.05",
		"drop=0.05,corrupt=0.01,dup=0.02,reorder=0.03:50ms,burst=0.05:0.3:0.5,outage=C@2s+500ms",
		"burst=0.1:0.2:0.01:0.6",
	} {
		p, err := ParsePlan(spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		p2, err := ParsePlan(p.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", p.String(), err)
		}
		// Compare rendered forms (Burst is a pointer).
		if p.String() != p2.String() {
			t.Fatalf("round trip: %q -> %q", p.String(), p2.String())
		}
	}
	if (Plan{}).String() != "none" {
		t.Fatal("zero plan should render as none")
	}
}
