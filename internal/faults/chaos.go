package faults

import (
	"errors"
	"io"
	"time"
)

// Transport chaos: deterministic fault wrappers for the byte-stream
// layer, complementing the packet-level radio model above. Where the
// Injector perturbs *frames* inside the simulator, these wrap real
// io.Reader/io.Writer endpoints — a socket, a file, a store segment —
// and kill, slow, or fill them at exact byte offsets. Determinism here
// needs no RNG at all: every fault fires at a configured offset, so a
// chaos run is reproducible by construction and a differential harness
// can sweep "cut the connection at every byte" exhaustively.

// ErrCut is the terminal error a CutReader/CutWriter returns once its
// byte budget is exhausted — a stand-in for a connection reset.
var ErrCut = errors.New("faults: connection cut")

// ErrDiskFull is the terminal error a FullWriter returns once its
// capacity is exhausted — a stand-in for ENOSPC on a store volume.
var ErrDiskFull = errors.New("faults: disk full")

// CutReader delivers the first N bytes of the underlying reader, then
// fails every subsequent Read with ErrCut. A read straddling the
// boundary delivers the bytes before it (partial read, no error), so
// the cut lands at exactly byte N.
type CutReader struct {
	R io.Reader
	N int64 // bytes remaining before the cut
}

func (c *CutReader) Read(p []byte) (int, error) {
	if c.N <= 0 {
		return 0, ErrCut
	}
	if int64(len(p)) > c.N {
		p = p[:c.N]
	}
	n, err := c.R.Read(p)
	c.N -= int64(n)
	if err == nil && c.N <= 0 {
		// Deliver the boundary bytes cleanly; the next call cuts.
		return n, nil
	}
	return n, err
}

// CutWriter accepts the first N bytes, then fails with ErrCut. A write
// straddling the boundary is a partial write: the bytes before the cut
// are forwarded and the short count returned with the error, which is
// exactly how a reset socket behaves mid-send.
type CutWriter struct {
	W io.Writer
	N int64 // bytes remaining before the cut
}

func (c *CutWriter) Write(p []byte) (int, error) {
	if c.N <= 0 {
		return 0, ErrCut
	}
	cut := false
	if int64(len(p)) > c.N {
		p = p[:c.N]
		cut = true
	}
	n, err := c.W.Write(p)
	c.N -= int64(n)
	if err == nil && cut {
		return n, ErrCut
	}
	return n, err
}

// SlowReader is a slow-loris source: each Read delivers at most Chunk
// bytes and sleeps Delay first, so a consumer's liveness policy (read
// deadlines, watchdogs) is exercised without a real slow peer.
type SlowReader struct {
	R     io.Reader
	Chunk int           // max bytes per Read (<=0 means 1)
	Delay time.Duration // sleep before each Read
}

func (s *SlowReader) Read(p []byte) (int, error) {
	if s.Delay > 0 {
		time.Sleep(s.Delay)
	}
	chunk := s.Chunk
	if chunk <= 0 {
		chunk = 1
	}
	if len(p) > chunk {
		p = p[:chunk]
	}
	return s.R.Read(p)
}

// FullWriter accepts the first N bytes, then fails every Write with
// ErrDiskFull — the disk-full fault for store paths. Unlike CutWriter
// a straddling write fails wholesale (no partial forward): filesystems
// surface ENOSPC for the write, not for its tail.
type FullWriter struct {
	W io.Writer
	N int64 // bytes of capacity remaining
}

func (f *FullWriter) Write(p []byte) (int, error) {
	if int64(len(p)) > f.N {
		return 0, ErrDiskFull
	}
	n, err := f.W.Write(p)
	f.N -= int64(n)
	return n, err
}
