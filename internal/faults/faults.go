// Package faults is the deterministic fault-injection subsystem for the
// simulated 2.4 GHz medium. A Plan describes what a degraded channel does
// to frames — independent loss, CRC-failing corruption, duplication,
// bounded reordering, Gilbert–Elliott burst loss for interference, and
// scheduled mid-session radio outages — and an Injector executes the plan
// against a radio.Medium, drawing every random decision from the
// simulation scheduler's seeded RNG.
//
// Determinism contract: the injector draws from the RNG only for fault
// classes the plan actually enables, in a fixed per-frame order. A zero
// Plan therefore draws nothing and schedules nothing, so installing it is
// bit-identical to running without fault injection at all — the property
// the eval sweeps rely on to prove the clean-channel tables are unchanged.
// Because each simulated world owns its scheduler and RNG, identical
// (seed, plan) pairs produce bit-identical runs at any campaign worker
// count.
package faults

import (
	"fmt"
	"time"

	"repro/internal/radio"
	"repro/internal/sim"
)

// Plan describes the fault behaviour of a degraded channel. The zero
// value is a perfect channel.
type Plan struct {
	// Drop is the independent per-frame loss probability in [0, 1].
	Drop float64
	// Corrupt is the per-frame probability of payload corruption in
	// flight. The receiving baseband's CRC check fails and the frame is
	// discarded — the same outcome as a drop at the LMP layer, but
	// counted separately (and retransmitted separately by ARQ).
	Corrupt float64
	// Duplicate is the per-frame probability of a second delivery.
	Duplicate float64
	// Reorder is the per-frame probability of the frame being delayed by
	// a uniform draw from (0, ReorderWindow], letting later frames
	// overtake it.
	Reorder float64
	// ReorderWindow bounds the reordering delay; defaults to 20 ms when
	// Reorder is set.
	ReorderWindow time.Duration

	// Burst, when non-nil, adds Gilbert–Elliott two-state burst loss on
	// top of the independent faults — the model for 2.4 GHz interference
	// (microwave ovens, Wi-Fi beacons) where losses cluster.
	Burst *Burst

	// Outages are scheduled radio blackouts: the named device's port is
	// detached from the medium at Start and reattached Duration later.
	// Links do not survive an outage.
	Outages []Outage
}

// Burst is a Gilbert–Elliott two-state loss model. The chain starts in
// the good state and is advanced once per frame.
type Burst struct {
	// PEnter is the per-frame good→bad transition probability.
	PEnter float64
	// PExit is the per-frame bad→good transition probability.
	PExit float64
	// GoodLoss is the loss probability while in the good state
	// (usually 0).
	GoodLoss float64
	// BadLoss is the loss probability while in the bad state.
	BadLoss float64
}

// Outage is one scheduled radio blackout.
type Outage struct {
	// Device names which radio goes dark. The binder interprets it: the
	// core testbed accepts the role letters "M", "C", and "A".
	Device string
	// Start is when (virtual time from binding) the radio detaches.
	Start time.Duration
	// Duration is how long the radio stays dark before reattaching.
	Duration time.Duration
}

// IsZero reports whether the plan injects nothing at all.
func (p Plan) IsZero() bool {
	return p.Drop == 0 && p.Corrupt == 0 && p.Duplicate == 0 && p.Reorder == 0 &&
		p.Burst == nil && len(p.Outages) == 0
}

// Validate rejects probabilities outside [0, 1] and malformed outages.
func (p Plan) Validate() error {
	check := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("faults: %s probability %v outside [0, 1]", name, v)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		v    float64
	}{{"drop", p.Drop}, {"corrupt", p.Corrupt}, {"dup", p.Duplicate}, {"reorder", p.Reorder}} {
		if err := check(c.name, c.v); err != nil {
			return err
		}
	}
	if p.Reorder > 0 && p.ReorderWindow < 0 {
		return fmt.Errorf("faults: negative reorder window %v", p.ReorderWindow)
	}
	if b := p.Burst; b != nil {
		for _, c := range []struct {
			name string
			v    float64
		}{{"burst enter", b.PEnter}, {"burst exit", b.PExit}, {"burst good-loss", b.GoodLoss}, {"burst bad-loss", b.BadLoss}} {
			if err := check(c.name, c.v); err != nil {
				return err
			}
		}
	}
	for _, o := range p.Outages {
		if o.Device == "" {
			return fmt.Errorf("faults: outage without a device")
		}
		if o.Start < 0 || o.Duration <= 0 {
			return fmt.Errorf("faults: outage %s@%v+%v must have start >= 0 and duration > 0",
				o.Device, o.Start, o.Duration)
		}
	}
	return nil
}

// Stats counts what the injector did to the channel.
type Stats struct {
	// Frames is the number of Frame consultations (transmission
	// attempts, including ARQ retransmissions).
	Frames uint64
	// Dropped counts independent-loss drops.
	Dropped uint64
	// BurstDropped counts drops charged to the Gilbert–Elliott chain.
	BurstDropped uint64
	// Corrupted counts CRC-failing corruptions.
	Corrupted uint64
	// Duplicated counts second deliveries.
	Duplicated uint64
	// Reordered counts delayed frames.
	Reordered uint64
	// BadFrames counts frames transmitted while the burst chain was in
	// its bad state.
	BadFrames uint64
}

// LossRate is the realized fraction of frames that never reached the
// peer (independent drops, burst drops, and corruptions).
func (s Stats) LossRate() float64 {
	if s.Frames == 0 {
		return 0
	}
	return float64(s.Dropped+s.BurstDropped+s.Corrupted) / float64(s.Frames)
}

// Injector executes a Plan against a medium. It implements
// radio.FaultModel; create one per simulated world with NewInjector and
// install it with radio.Medium.SetFaultModel.
type Injector struct {
	sched *sim.Scheduler
	plan  Plan
	bad   bool // Gilbert–Elliott state
	stats Stats
}

// NewInjector binds a validated plan to a scheduler's RNG. It panics on
// an invalid plan — plans are operator input, validated at parse time;
// reaching here with a bad one is a programming error.
func NewInjector(s *sim.Scheduler, p Plan) *Injector {
	if err := p.Validate(); err != nil {
		panic(err.Error())
	}
	if p.Reorder > 0 && p.ReorderWindow == 0 {
		p.ReorderWindow = 20 * time.Millisecond
	}
	return &Injector{sched: s, plan: p}
}

// Plan returns the injector's (normalized) plan.
func (in *Injector) Plan() Plan { return in.plan }

// Stats returns a snapshot of the injection counters.
func (in *Injector) Stats() Stats { return in.stats }

// Frame implements radio.FaultModel: one verdict per transmission
// attempt. RNG draws happen in a fixed order — burst chain, burst loss,
// drop, corrupt, duplicate, reorder — and only for classes the plan
// enables, so disabled classes cost no randomness.
func (in *Injector) Frame() radio.FrameVerdict {
	in.stats.Frames++
	rng := in.sched.Rand()
	var v radio.FrameVerdict

	if b := in.plan.Burst; b != nil {
		if in.bad {
			if b.PExit > 0 && rng.Float64() < b.PExit {
				in.bad = false
			}
		} else {
			if b.PEnter > 0 && rng.Float64() < b.PEnter {
				in.bad = true
			}
		}
		loss := b.GoodLoss
		if in.bad {
			in.stats.BadFrames++
			loss = b.BadLoss
		}
		if loss > 0 && rng.Float64() < loss {
			in.stats.BurstDropped++
			v.Drop = true
			return v
		}
	}
	if in.plan.Drop > 0 && rng.Float64() < in.plan.Drop {
		in.stats.Dropped++
		v.Drop = true
		return v
	}
	if in.plan.Corrupt > 0 && rng.Float64() < in.plan.Corrupt {
		in.stats.Corrupted++
		v.Corrupt = true
		return v
	}
	if in.plan.Duplicate > 0 && rng.Float64() < in.plan.Duplicate {
		in.stats.Duplicated++
		v.Duplicate = true
	}
	if in.plan.Reorder > 0 && rng.Float64() < in.plan.Reorder {
		in.stats.Reordered++
		v.Delay = time.Duration(1 + rng.Int63n(int64(in.plan.ReorderWindow)))
	}
	return v
}

// PortOutage is one bound outage: the detach/reattach pair acting on a
// specific radio.
type PortOutage struct {
	Outage Outage
	Detach func()
	Attach func()
}

// ScheduleOutages arms the plan's outages on the scheduler. resolve maps
// an Outage.Device name to its detach/reattach actions; it returns an
// error for unknown names. Install happens relative to the scheduler's
// current time.
func ScheduleOutages(s *sim.Scheduler, plan Plan, resolve func(device string) (detach, attach func(), err error)) error {
	for _, o := range plan.Outages {
		detach, attach, err := resolve(o.Device)
		if err != nil {
			return fmt.Errorf("faults: outage %s@%v: %w", o.Device, o.Start, err)
		}
		s.Schedule(o.Start, detach)
		s.Schedule(o.Start+o.Duration, attach)
	}
	return nil
}
