package controller

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bt"
	"repro/internal/faults"
	"repro/internal/hci"
)

func runACLBurst(t *testing.T, plan faults.Plan, n int, within time.Duration) *rig {
	t.Helper()
	r := newRig(77, Config{}, Config{})
	h := r.connect(t)
	r.med.SetFaultModel(faults.NewInjector(r.s, plan))
	for i := 0; i < n; i++ {
		r.ha.tr.Send(hci.EncodeACL(hci.DirHostToController, h, []byte(fmt.Sprintf("payload-%03d", i))))
	}
	r.s.RunFor(within)
	return r
}

func checkInOrder(t *testing.T, r *rig, n int) {
	t.Helper()
	if len(r.hb.acl) != n {
		t.Fatalf("delivered %d payloads, want exactly %d", len(r.hb.acl), n)
	}
	for i, data := range r.hb.acl {
		if want := fmt.Sprintf("payload-%03d", i); string(data) != want {
			t.Fatalf("payload %d: got %q, want %q (out of order or duplicated)", i, data, want)
		}
	}
}

func TestARQSurvivesUniformLoss(t *testing.T) {
	// 5% uniform loss: every payload must still arrive exactly once, in
	// order, via bounded retransmission.
	r := runACLBurst(t, faults.Plan{Drop: 0.05}, 50, 30*time.Second)
	checkInOrder(t, r, 50)
}

func TestARQSurvivesCorruptionAndBurstLoss(t *testing.T) {
	plan := faults.Plan{Corrupt: 0.03, Burst: &faults.Burst{PEnter: 0.05, PExit: 0.3, BadLoss: 0.6}}
	r := runACLBurst(t, plan, 50, 60*time.Second)
	checkInOrder(t, r, 50)
}

func TestARQReordersBackInOrder(t *testing.T) {
	plan := faults.Plan{Reorder: 0.3, ReorderWindow: 20 * time.Millisecond}
	r := runACLBurst(t, plan, 50, 30*time.Second)
	checkInOrder(t, r, 50)
}

func TestARQDeduplicates(t *testing.T) {
	r := runACLBurst(t, faults.Plan{Duplicate: 0.4}, 50, 30*time.Second)
	checkInOrder(t, r, 50)
}

func TestSupervisionTimeoutFiresWhenPeerGoesDark(t *testing.T) {
	// Total loss after connect: no frame (not even an ack) arrives, so the
	// supervision timer must end the link with Connection Timeout.
	cfg := Config{SupervisionTimeout: 2 * time.Second}
	r := newRig(78, cfg, cfg)
	h := r.connect(t)
	r.med.SetFaultModel(faults.NewInjector(r.s, faults.Plan{Drop: 1}))
	r.ha.tr.Send(hci.EncodeACL(hci.DirHostToController, h, []byte("into the void")))
	r.s.RunFor(10 * time.Second)

	dcs := r.ha.eventsOf(hci.EvDisconnectionComplete)
	if len(dcs) != 1 {
		t.Fatalf("disconnection events: %d, want 1", len(dcs))
	}
	if reason := dcs[0].(*hci.DisconnectionComplete).Reason; reason != hci.StatusConnectionTimeout {
		t.Fatalf("drop reason %s, want connection timeout", reason)
	}
}

func TestSupervisionSurvivesModerateLossViaARQ(t *testing.T) {
	// At 10% loss, retransmissions and acks keep refreshing supervision:
	// the link must stay alive through a long chatty exchange.
	cfg := Config{SupervisionTimeout: 2 * time.Second}
	r := newRig(79, cfg, cfg)
	h := r.connect(t)
	r.med.SetFaultModel(faults.NewInjector(r.s, faults.Plan{Drop: 0.10}))
	for i := 0; i < 40; i++ {
		i := i
		r.s.Schedule(time.Duration(i)*250*time.Millisecond, func() {
			r.ha.tr.Send(hci.EncodeACL(hci.DirHostToController, h, []byte(fmt.Sprintf("payload-%03d", i))))
		})
	}
	// Run to just past the last payload (+ retransmission slack) but
	// inside the supervision window of the final refresh: the link must
	// still be up, with everything delivered. (Once the chatter stops for
	// good, supervision firing is correct behaviour, not a failure.)
	r.s.RunFor(11 * time.Second)
	if dcs := r.ha.eventsOf(hci.EvDisconnectionComplete); len(dcs) != 0 {
		t.Fatalf("link dropped under moderate loss: %v", dcs[0])
	}
	checkInOrder(t, r, 40)
}

func TestAuthenticationSucceedsOverLossyChannel(t *testing.T) {
	// The E1 challenge-response must complete over a 5% lossy channel
	// purely via ARQ retransmission — no LMP timeout, no auth failure.
	key := bt.MustLinkKey("0123456789abcdef0123456789abcdef")
	r := newRig(80, Config{}, Config{})
	h := r.connect(t)
	r.med.SetFaultModel(faults.NewInjector(r.s, faults.Plan{Drop: 0.05}))
	serveKey := func(f *fakeHost, prev func(hci.Event)) func(hci.Event) {
		return func(e hci.Event) {
			if prev != nil {
				prev(e)
			}
			if lr, ok := e.(*hci.LinkKeyRequest); ok {
				f.tr.SendCommand(&hci.LinkKeyRequestReply{Addr: lr.Addr, Key: key})
			}
		}
	}
	r.ha.onEvent = serveKey(r.ha, nil)
	r.hb.onEvent = serveKey(r.hb, r.hb.onEvent)
	r.ha.tr.SendCommand(&hci.AuthenticationRequested{Handle: h})
	r.s.RunFor(60 * time.Second)

	acs := r.ha.eventsOf(hci.EvAuthenticationComplete)
	if len(acs) != 1 {
		t.Fatalf("authentication complete events: %d", len(acs))
	}
	if st := acs[0].(*hci.AuthenticationComplete).Status; st != hci.StatusSuccess {
		t.Fatalf("authentication over lossy channel: %s", st)
	}
}
