package controller

import (
	"repro/internal/bt"
	"repro/internal/btcrypto"
	"repro/internal/hci"
)

// SSP Passkey Entry (authentication stage 1 for keyboard/display
// combinations): the display side generates a six-digit passkey; the
// keyboard side's user types it. The two sides then run twenty
// commit-then-reveal rounds, one per passkey bit — committing with
// f1(PK, PK', Nonce_i, 0x80|bit_i) before revealing the nonce — so a MITM
// learns at most one bit per protocol run. A wrong passkey surfaces as a
// commitment verification failure.

// PasskeyCommitPDU is the round-i commitment.
type PasskeyCommitPDU struct {
	Round int
	C     [16]byte
}

// PasskeyNoncePDU reveals the round-i nonce.
type PasskeyNoncePDU struct {
	Round int
	N     [16]byte
}

const passkeyRounds = 20

// mapping computes the stage-1 mapping for the exchange (the model and
// its authentication property do not depend on the spec version — only
// dialog policy does).
func (s *sspState) mapping() bt.Stage1Mapping {
	if s.initiator {
		return bt.Stage1MappingFor(s.localCap, s.peerCap, bt.V5_0)
	}
	return bt.Stage1MappingFor(s.peerCap, s.localCap, bt.V5_0)
}

// model is the association model of the exchange. OOB takes precedence
// over the IO capability mapping when both sides presented out-of-band
// data (the spec's selection order).
func (s *sspState) model() bt.AssociationModel {
	if s.localOOB && s.peerOOB {
		return bt.OutOfBand
	}
	return s.mapping().Model
}

// displaysLocally reports whether this side shows the passkey.
func (s *sspState) displaysLocally() bool {
	var m bt.Stage1Mapping
	if s.initiator {
		m = bt.Stage1MappingFor(s.localCap, s.peerCap, bt.V5_0)
		return m.DisplayInitiator
	}
	m = bt.Stage1MappingFor(s.peerCap, s.localCap, bt.V5_0)
	return m.DisplayResponder
}

// passkeyBegin obtains the local passkey: the display side generates and
// shows it, a keyboard side asks its host (and thus the user).
func (c *Controller) passkeyBegin(lk *link) {
	s := lk.ssp
	s.stage = sspPasskeyRounds
	if s.displaysLocally() {
		if c.cfg.FixedPasskey != nil {
			// Printed-on-a-label accessory: the same passkey every pairing.
			s.passkey = *c.cfg.FixedPasskey % 1_000_000
		} else {
			s.passkey = uint32(c.sched.Rand().Intn(1_000_000))
		}
		s.passkeyReady = true
		c.tr.SendEvent(&hci.UserPasskeyNotification{Addr: lk.peer, Passkey: s.passkey})
		c.passkeyMaybeAdvance(lk)
		return
	}
	c.tr.SendEvent(&hci.UserPasskeyRequest{Addr: lk.peer})
}

// hostPasskey handles HCI_User_Passkey_Request_Reply (ok) or the negative
// reply (ok=false).
func (c *Controller) hostPasskey(addr bt.BDADDR, passkey uint32, ok bool) {
	lk := c.findByAddr(addr)
	if lk == nil || lk.ssp == nil || lk.ssp.stage != sspPasskeyRounds {
		return
	}
	if !ok {
		c.sspFail(lk, hci.StatusAuthenticationFailure, true)
		return
	}
	lk.ssp.passkey = passkey % 1_000_000
	lk.ssp.passkeyReady = true
	c.passkeyMaybeAdvance(lk)
}

// passkeyBit returns 0x80|bit_i of the local passkey, the Z input of the
// round-i commitment.
func (s *sspState) passkeyBit(i int) byte {
	return 0x80 | byte((s.passkey>>uint(i))&1)
}

// passkeyZ is the Z input actually committed in round i. The enhanced
// variant masks the passkey bit with a bit of the shared DH key, which
// only the two legitimate endpoints hold: a sniffer who solves every
// round commitment recovers masked bits (useless without the DH key),
// and a MITM running plain Passkey Entry against an enhanced endpoint
// fails the very first commitment check.
func (c *Controller) passkeyZ(s *sspState, i int) byte {
	z := s.passkeyBit(i)
	if c.cfg.EnhancedPasskey && len(s.dhkey) > 0 {
		z ^= s.dhkey[i%len(s.dhkey)] & 1
	}
	return z
}

// passkeyMaybeAdvance drives the round machine whenever new information
// (local passkey, peer commitment, peer nonce) arrives.
func (c *Controller) passkeyMaybeAdvance(lk *link) {
	s := lk.ssp
	if !s.passkeyReady {
		return
	}
	if s.initiator && !s.sentRoundCommit {
		// Initiator opens round s.round.
		s.roundLocalNonce = c.rand16()
		commit := btcrypto.F1(c.kp.PublicX(), peerX(s.peerPub), s.roundLocalNonce, c.passkeyZ(s, s.round))
		s.sentRoundCommit = true
		c.send(lk, PasskeyCommitPDU{Round: s.round, C: commit}, true)
		return
	}
	if !s.initiator && s.havePeerRoundCommit && !s.sentRoundCommit {
		// Responder answers the initiator's commitment with its own.
		s.roundLocalNonce = c.rand16()
		commit := btcrypto.F1(c.kp.PublicX(), peerX(s.peerPub), s.roundLocalNonce, c.passkeyZ(s, s.round))
		s.sentRoundCommit = true
		c.send(lk, PasskeyCommitPDU{Round: s.round, C: commit}, true)
		return
	}
}

func (c *Controller) onPasskeyCommit(lk *link, pdu PasskeyCommitPDU) {
	s := lk.ssp
	if s == nil || s.stage != sspPasskeyRounds || pdu.Round != s.round {
		return
	}
	c.stopLMPTimer(lk)
	s.peerRoundCommit = pdu.C
	s.havePeerRoundCommit = true
	if s.initiator {
		// Both commitments are on the table; reveal our nonce.
		c.send(lk, PasskeyNoncePDU{Round: s.round, N: s.roundLocalNonce}, true)
		return
	}
	c.passkeyMaybeAdvance(lk)
}

func (c *Controller) onPasskeyNonce(lk *link, pdu PasskeyNoncePDU) {
	s := lk.ssp
	if s == nil || s.stage != sspPasskeyRounds || pdu.Round != s.round {
		return
	}
	c.stopLMPTimer(lk)
	// Verify the peer's round commitment against its revealed nonce and
	// OUR bit — a passkey mismatch fails here.
	expect := btcrypto.F1(peerX(s.peerPub), c.kp.PublicX(), pdu.N, c.passkeyZ(s, s.round))
	if expect != s.peerRoundCommit {
		c.sspFail(lk, hci.StatusAuthenticationFailure, true)
		return
	}
	s.roundPeerNonce = pdu.N
	if !s.initiator {
		// Reveal ours; this completes the round on the initiator.
		c.send(lk, PasskeyNoncePDU{Round: s.round, N: s.roundLocalNonce}, false)
	}
	c.passkeyFinishRound(lk)
}

// passkeyFinishRound advances to the next round or into stage 2.
func (c *Controller) passkeyFinishRound(lk *link) {
	s := lk.ssp
	s.round++
	s.sentRoundCommit = false
	s.havePeerRoundCommit = false
	if s.round < passkeyRounds {
		if s.initiator {
			c.passkeyMaybeAdvance(lk)
		}
		// The responder waits for the initiator's next commitment.
		return
	}

	// Rounds complete: the 20th nonces become N_a/N_b, and the passkey
	// (little-endian, zero-extended) becomes the R input of f3.
	s.localNonce = s.roundLocalNonce
	s.peerNonce = s.roundPeerNonce
	r := [16]byte{
		byte(s.passkey), byte(s.passkey >> 8), byte(s.passkey >> 16), byte(s.passkey >> 24),
	}
	s.sendR, s.verifyR = r, r
	s.havePeerNonce = true
	s.localConfirmed = true // user interaction already happened (typing)
	s.stage = sspWaitConfirm
	c.advanceStage2(lk)
}
