package controller

import (
	"repro/internal/bt"
	"repro/internal/btcrypto"
	"repro/internal/hci"
)

// LMP authentication: the E1 challenge-response protocol between a
// verifier (the side whose host issued HCI_Authentication_Requested) and a
// claimant. Both controllers fetch the link key from their hosts over
// plaintext HCI — the flow the link key extraction attack records.

type authStage int

const (
	authVerifierWaitHostKey authStage = iota
	authVerifierWaitSres
	authClaimantWaitHostKey
)

type authState struct {
	verifier    bool
	stage       authStage
	challenge   [16]byte
	key         bt.LinkKey
	fromPairing bool
}

// e1For returns the link's cached E1/E3 schedule context for key,
// expanding it only when the key changed (re-pairing, key rotation).
func (c *Controller) e1For(lk *link, key bt.LinkKey) *btcrypto.E1Context {
	if lk.e1ctx == nil || lk.e1ctxKey != key {
		lk.e1ctx = btcrypto.NewE1Context(key)
		lk.e1ctxKey = key
	}
	return lk.e1ctx
}

// startAuthentication begins LMP authentication as verifier. Per the
// specification the controller first asks its host for the stored link
// key; the host's reply (carrying the key in plaintext) is what HCI dumps
// capture.
func (c *Controller) startAuthentication(lk *link) {
	if lk.auth != nil || lk.ssp != nil {
		return
	}
	lk.auth = &authState{verifier: true, stage: authVerifierWaitHostKey}
	c.tr.SendEvent(&hci.LinkKeyRequest{Addr: lk.peer})
}

// hostSuppliedKey handles HCI_Link_Key_Request_Reply.
func (c *Controller) hostSuppliedKey(addr bt.BDADDR, key bt.LinkKey) {
	lk := c.findByAddr(addr)
	if lk == nil || lk.auth == nil {
		return
	}
	switch lk.auth.stage {
	case authVerifierWaitHostKey:
		lk.auth.key = key
		lk.auth.challenge = c.rand16()
		lk.auth.stage = authVerifierWaitSres
		c.send(lk, AuRandPDU{Rand: lk.auth.challenge}, true)
	case authClaimantWaitHostKey:
		c.respondToChallenge(lk, key, lk.auth.challenge)
		lk.auth = nil
	}
	c.answerCrossChallenge(lk, key, true)
}

// hostDeniedKey handles HCI_Link_Key_Request_Negative_Reply.
func (c *Controller) hostDeniedKey(addr bt.BDADDR) {
	lk := c.findByAddr(addr)
	if lk == nil || lk.auth == nil {
		return
	}
	c.answerCrossChallenge(lk, bt.LinkKey{}, false)
	switch lk.auth.stage {
	case authVerifierWaitHostKey:
		// No stored key: fall into pairing as the pairing initiator.
		lk.auth = nil
		c.startPairing(lk, true)
	case authClaimantWaitHostKey:
		lk.auth = nil
		c.send(lk, NotAcceptedPDU{Op: "LMP_au_rand", Reason: hci.StatusPINOrKeyMissing}, false)
	}
}

// respondToChallenge computes and sends the claimant's SRES. The claimant
// address input of E1 is this controller's own (possibly spoofed) BDADDR.
//
// ACO rule: with mutual (possibly simultaneous) authentication there are
// two E1 exchanges producing two ACOs; both ends must agree on one for E3.
// Both sides keep the ACO of the exchange in which the connection
// initiator (the piconet master here) acted as verifier — so the claimant
// stores it only when the peer is the master.
func (c *Controller) respondToChallenge(lk *link, key bt.LinkKey, challenge [16]byte) {
	sres, aco := c.e1For(lk, key).Auth(challenge, c.cfg.Addr)
	lk.currentKey = key
	lk.haveKey = true
	if !lk.initiator {
		lk.aco = aco
	}
	c.send(lk, SresPDU{Sres: sres}, false)
}

// onAuRand handles the verifier's challenge on the claimant side.
func (c *Controller) onAuRand(lk *link, pdu AuRandPDU) {
	if lk.haveKey {
		// Session key already in hand (post-pairing authentication).
		c.respondToChallenge(lk, lk.currentKey, pdu.Rand)
		return
	}
	if lk.auth != nil {
		// Authentication collision: both sides are authenticating at
		// once. A verifier that already holds the key answers right away
		// (otherwise two verifiers deadlock waiting for each other's
		// SRES); a side still waiting for its host stashes the challenge.
		if lk.auth.verifier && lk.auth.stage == authVerifierWaitSres {
			c.respondToChallenge(lk, lk.auth.key, pdu.Rand)
			return
		}
		r := pdu.Rand
		lk.crossChallenge = &r
		return
	}
	lk.auth = &authState{verifier: false, stage: authClaimantWaitHostKey, challenge: pdu.Rand}
	c.tr.SendEvent(&hci.LinkKeyRequest{Addr: lk.peer})
}

// answerCrossChallenge resolves a stashed authentication collision.
func (c *Controller) answerCrossChallenge(lk *link, key bt.LinkKey, haveKey bool) {
	if lk.crossChallenge == nil {
		return
	}
	challenge := *lk.crossChallenge
	lk.crossChallenge = nil
	if haveKey {
		c.respondToChallenge(lk, key, challenge)
		return
	}
	c.send(lk, NotAcceptedPDU{Op: "LMP_au_rand", Reason: hci.StatusPINOrKeyMissing}, false)
}

// onSres completes authentication on the verifier side.
func (c *Controller) onSres(lk *link, pdu SresPDU) {
	a := lk.auth
	if a == nil || a.stage != authVerifierWaitSres {
		return
	}
	c.stopLMPTimer(lk)
	lk.auth = nil
	expected, aco := c.e1For(lk, a.key).Auth(a.challenge, lk.peer)
	if expected != pdu.Sres {
		c.tr.SendEvent(&hci.AuthenticationComplete{Status: hci.StatusAuthenticationFailure, Handle: lk.handle})
		return
	}
	lk.currentKey = a.key
	lk.haveKey = true
	if lk.initiator {
		// See the ACO rule on respondToChallenge: the verifier keeps the
		// ACO only when it is the connection initiator.
		lk.aco = aco
	}
	c.tr.SendEvent(&hci.AuthenticationComplete{Status: hci.StatusSuccess, Handle: lk.handle})
	c.answerCrossChallenge(lk, lk.currentKey, true)
}

// onNotAccepted handles a peer's rejection of the pending operation.
func (c *Controller) onNotAccepted(lk *link, pdu NotAcceptedPDU) {
	c.stopLMPTimer(lk)
	if a := lk.auth; a != nil && a.verifier && a.stage == authVerifierWaitSres {
		lk.auth = nil
		if pdu.Reason == hci.StatusPINOrKeyMissing && !a.fromPairing {
			// The peer lost its key; authentication falls back to pairing.
			c.startPairing(lk, true)
			return
		}
		c.tr.SendEvent(&hci.AuthenticationComplete{Status: pdu.Reason, Handle: lk.handle})
		return
	}
	if lk.ssp != nil {
		c.sspFail(lk, pdu.Reason, false)
		return
	}
	if lk.legacy != nil {
		c.legacyFail(lk, pdu.Reason, false)
		return
	}
	if lk.pendingEncist {
		lk.pendingEncist = false
		c.tr.SendEvent(&hci.EncryptionChange{Status: pdu.Reason, Handle: lk.handle})
	}
}

// --- encryption ---

// masterAddr returns the address that seeds the per-packet E0 cipher: the
// connection initiator acts as piconet master in the simulator.
func (c *Controller) masterAddr(lk *link) [6]byte {
	if lk.initiator {
		return [6]byte(c.cfg.Addr)
	}
	return [6]byte(lk.peer)
}

// startEncryption begins (or stops) link encryption after authentication.
// The initiator proposes its maximum encryption key size; the agreed size
// arrives in the peer's EncAcceptPDU.
func (c *Controller) startEncryption(lk *link, enable bool) {
	if !enable {
		lk.encrypted = false
		c.tr.SendEvent(&hci.EncryptionChange{Status: hci.StatusSuccess, Handle: lk.handle, Enabled: false})
		return
	}
	if !lk.haveKey {
		c.tr.SendEvent(&hci.EncryptionChange{Status: hci.StatusPINOrKeyMissing, Handle: lk.handle})
		return
	}
	lk.pendingEncRnd = c.rand16()
	lk.pendingEncist = true
	c.send(lk, EncStartPDU{Rand: lk.pendingEncRnd, KeySize: c.cfg.MaxEncKeySize}, true)
}

func (c *Controller) onEncStart(lk *link, pdu EncStartPDU) {
	if !lk.haveKey {
		c.send(lk, NotAcceptedPDU{Op: "LMP_encryption", Reason: hci.StatusPINOrKeyMissing}, false)
		return
	}
	agreed := pdu.KeySize
	if agreed > c.cfg.MaxEncKeySize {
		agreed = c.cfg.MaxEncKeySize
	}
	if agreed < c.cfg.MinEncKeySize {
		// Key size negotiation failed (the post-KNOB defence).
		c.send(lk, NotAcceptedPDU{Op: "LMP_encryption_key_size", Reason: hci.StatusAuthenticationFailure}, false)
		return
	}
	kc := c.e1For(lk, lk.currentKey).EncryptionKey(pdu.Rand, lk.aco)
	lk.encKey = btcrypto.ShrinkKey(kc, agreed)
	lk.encKeySize = agreed
	lk.encrypted = true
	c.send(lk, EncAcceptPDU{KeySize: agreed}, false)
	c.tr.SendEvent(&hci.EncryptionChange{Status: hci.StatusSuccess, Handle: lk.handle, Enabled: true})
}

func (c *Controller) onEncAccept(lk *link, pdu EncAcceptPDU) {
	if !lk.pendingEncist {
		return
	}
	c.stopLMPTimer(lk)
	lk.pendingEncist = false
	if pdu.KeySize < c.cfg.MinEncKeySize || pdu.KeySize > c.cfg.MaxEncKeySize {
		c.tr.SendEvent(&hci.EncryptionChange{Status: hci.StatusAuthenticationFailure, Handle: lk.handle})
		return
	}
	kc := c.e1For(lk, lk.currentKey).EncryptionKey(lk.pendingEncRnd, lk.aco)
	lk.encKey = btcrypto.ShrinkKey(kc, pdu.KeySize)
	lk.encKeySize = pdu.KeySize
	lk.encrypted = true
	c.tr.SendEvent(&hci.EncryptionChange{Status: hci.StatusSuccess, Handle: lk.handle, Enabled: true})
}
