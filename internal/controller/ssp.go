package controller

import (
	"repro/internal/bt"
	"repro/internal/btcrypto"
	"repro/internal/hci"
)

// Secure Simple Pairing engine (numeric comparison / Just Works protocol):
// IO capability exchange, P-256 public key exchange, authentication stage
// 1 (commitment, nonces, user confirmation), authentication stage 2
// (DHKey checks), and link key derivation with f2. The association model
// itself is a *host* decision — the controller always raises
// HCI_User_Confirmation_Request and lets the host auto-accept (Just Works)
// or ask the user (numeric comparison), which is exactly the laxity the
// SSP downgrade leg of the page blocking attack exploits.

type sspStage int

const (
	sspWaitHostIOCap sspStage = iota
	sspWaitPeerIOCap
	sspWaitPublicKey
	sspWaitCommit
	sspWaitNonce
	sspWaitConfirm
	sspWaitDHKeyCheck
	sspPasskeyRounds
	sspWaitOOB
)

type sspState struct {
	initiator bool
	fromAuth  bool
	stage     sspStage

	localCap     bt.IOCapability
	peerCap      bt.IOCapability
	localOOB     bool
	peerOOB      bool
	localAuthReq uint8
	peerAuthReq  uint8

	peerPub    []byte
	dhkey      []byte
	localNonce [16]byte
	peerNonce  [16]byte
	peerCommit [16]byte

	localConfirmed bool
	peerCheck      [16]byte
	havePeerCheck  bool
	sentCheck      bool

	// sendR and verifyR are the f3 R inputs: zero for numeric comparison
	// and Just Works, the passkey for passkey entry, and the OOB randoms
	// for out-of-band (where each side sends with the peer's R and
	// verifies with its own).
	sendR   [16]byte
	verifyR [16]byte
	// havePeerNonce marks a stage-1 nonce that arrived while the local
	// side was still waiting on its host (OOB data lookup).
	havePeerNonce bool

	// Passkey entry round state.
	passkey             uint32
	passkeyReady        bool
	round               int
	roundLocalNonce     [16]byte
	roundPeerNonce      [16]byte
	peerRoundCommit     [16]byte
	havePeerRoundCommit bool
	sentRoundCommit     bool
}

func ioCapBytes(cap bt.IOCapability, oob bool, authReq uint8) [3]byte {
	var o byte
	if oob {
		o = 1
	}
	return [3]byte{authReq, o, byte(cap)}
}

// startPairing begins SSP with this controller as the pairing initiator.
// fromAuth marks pairings triggered by HCI_Authentication_Requested, which
// must conclude with an HCI_Authentication_Complete event.
func (c *Controller) startPairing(lk *link, fromAuth bool) {
	if lk.ssp != nil || lk.legacy != nil {
		return
	}
	if !c.sspMode {
		// SSP disabled: fall back to legacy PIN pairing.
		c.startLegacyPairing(lk, fromAuth)
		return
	}
	lk.ssp = &sspState{initiator: true, fromAuth: fromAuth, stage: sspWaitHostIOCap}
	c.tr.SendEvent(&hci.IOCapabilityRequest{Addr: lk.peer})
}

// hostIOCapability handles HCI_IO_Capability_Request_Reply.
func (c *Controller) hostIOCapability(addr bt.BDADDR, cap bt.IOCapability, oob bool, authReq uint8) {
	lk := c.findByAddr(addr)
	if lk == nil || lk.ssp == nil || lk.ssp.stage != sspWaitHostIOCap {
		return
	}
	s := lk.ssp
	s.localCap, s.localOOB, s.localAuthReq = cap, oob, authReq
	if s.initiator {
		s.stage = sspWaitPeerIOCap
		c.send(lk, IOCapReqPDU{Cap: cap, OOB: oob, AuthReq: authReq}, true)
		return
	}
	// Responder: answer the exchange and wait for the initiator's public
	// key.
	s.stage = sspWaitPublicKey
	c.send(lk, IOCapResPDU{Cap: cap, OOB: oob, AuthReq: authReq}, false)
}

// onIOCapReq starts the responder side of SSP.
func (c *Controller) onIOCapReq(lk *link, pdu IOCapReqPDU) {
	if lk.ssp != nil {
		return
	}
	lk.ssp = &sspState{initiator: false, stage: sspWaitHostIOCap}
	lk.ssp.peerCap, lk.ssp.peerOOB, lk.ssp.peerAuthReq = pdu.Cap, pdu.OOB, pdu.AuthReq
	c.tr.SendEvent(&hci.IOCapabilityResponse{Addr: lk.peer, Capability: pdu.Cap, OOBDataPresent: pdu.OOB, AuthRequirements: pdu.AuthReq})
	c.tr.SendEvent(&hci.IOCapabilityRequest{Addr: lk.peer})
}

// onIOCapRes completes the IO capability exchange on the initiator.
func (c *Controller) onIOCapRes(lk *link, pdu IOCapResPDU) {
	s := lk.ssp
	if s == nil || !s.initiator || s.stage != sspWaitPeerIOCap {
		return
	}
	c.stopLMPTimer(lk)
	s.peerCap, s.peerOOB, s.peerAuthReq = pdu.Cap, pdu.OOB, pdu.AuthReq
	c.tr.SendEvent(&hci.IOCapabilityResponse{Addr: lk.peer, Capability: pdu.Cap, OOBDataPresent: pdu.OOB, AuthRequirements: pdu.AuthReq})
	s.stage = sspWaitPublicKey
	c.send(lk, PublicKeyPDU{Pub: c.kp.PublicBytes()}, true)
}

// onPublicKey handles the peer's P-256 public key.
func (c *Controller) onPublicKey(lk *link, pdu PublicKeyPDU) {
	s := lk.ssp
	if s == nil || s.stage != sspWaitPublicKey || s.peerPub != nil {
		return
	}
	s.peerPub = append([]byte(nil), pdu.Pub...)
	dh, err := c.kp.DHKey(s.peerPub)
	if err != nil {
		c.sspFail(lk, hci.StatusAuthenticationFailure, true)
		return
	}
	s.dhkey = dh
	if s.initiator {
		c.stopLMPTimer(lk)
		switch s.model() {
		case bt.PasskeyEntry:
			c.passkeyBegin(lk)
			return
		case bt.OutOfBand:
			c.oobBegin(lk)
			return
		}
		// Wait for the responder's commitment.
		s.stage = sspWaitCommit
		c.armLMPTimer(lk)
		return
	}
	// Responder: send own public key, then run stage 1 for the selected
	// association model.
	c.send(lk, PublicKeyPDU{Pub: c.kp.PublicBytes()}, false)
	switch s.model() {
	case bt.PasskeyEntry:
		c.passkeyBegin(lk)
		return
	case bt.OutOfBand:
		c.oobBegin(lk)
		return
	}
	s.localNonce = c.rand16()
	commit := btcrypto.F1(c.kp.PublicX(), peerX(s.peerPub), s.localNonce, 0)
	s.stage = sspWaitNonce
	c.send(lk, SSPConfirmPDU{C: commit}, true)
}

// peerX extracts the X coordinate from an uncompressed P-256 point.
func peerX(pub []byte) [32]byte {
	var x [32]byte
	if len(pub) == 65 {
		copy(x[:], pub[1:33])
	}
	return x
}

// onSSPConfirm receives the responder's commitment on the initiator.
func (c *Controller) onSSPConfirm(lk *link, pdu SSPConfirmPDU) {
	s := lk.ssp
	if s == nil || !s.initiator || s.stage != sspWaitCommit {
		return
	}
	c.stopLMPTimer(lk)
	s.peerCommit = pdu.C
	s.localNonce = c.rand16()
	s.stage = sspWaitNonce
	c.send(lk, SSPNoncePDU{N: s.localNonce}, true)
}

// onSSPNonce advances authentication stage 1.
func (c *Controller) onSSPNonce(lk *link, pdu SSPNoncePDU) {
	s := lk.ssp
	if s == nil {
		return
	}
	if s.stage == sspWaitOOB {
		// The peer finished its OOB lookup first; stash its nonce until
		// our own host answers.
		s.peerNonce = pdu.N
		s.havePeerNonce = true
		return
	}
	if s.stage != sspWaitNonce {
		return
	}
	c.stopLMPTimer(lk)
	s.peerNonce = pdu.N
	s.havePeerNonce = true
	if s.model() == bt.OutOfBand {
		// OOB: no commitments over nonces, no user confirmation; the
		// responder echoes its nonce and both proceed to stage 2.
		if !s.initiator {
			c.send(lk, SSPNoncePDU{N: s.localNonce}, false)
		}
		s.stage = sspWaitConfirm
		c.advanceStage2(lk)
		return
	}
	if s.initiator {
		// Verify the responder's commitment Cb = f1(PKbx, PKax, Nb, 0).
		expect := btcrypto.F1(peerX(s.peerPub), c.kp.PublicX(), s.peerNonce, 0)
		if expect != s.peerCommit {
			c.sspFail(lk, hci.StatusAuthenticationFailure, true)
			return
		}
	} else {
		// Responder returns its nonce once the initiator's arrived.
		c.send(lk, SSPNoncePDU{N: s.localNonce}, false)
	}
	s.stage = sspWaitConfirm
	c.raiseConfirmation(lk)
}

// raiseConfirmation computes the numeric verification value and asks the
// host for (possibly automatic) confirmation.
func (c *Controller) raiseConfirmation(lk *link) {
	s := lk.ssp
	var g uint32
	if s.initiator {
		g = btcrypto.G(c.kp.PublicX(), peerX(s.peerPub), s.localNonce, s.peerNonce)
	} else {
		g = btcrypto.G(peerX(s.peerPub), c.kp.PublicX(), s.peerNonce, s.localNonce)
	}
	c.tr.SendEvent(&hci.UserConfirmationRequest{Addr: lk.peer, NumericValue: btcrypto.SixDigits(g)})
}

// hostConfirmation handles the host's user-confirmation verdict.
func (c *Controller) hostConfirmation(addr bt.BDADDR, accept bool) {
	lk := c.findByAddr(addr)
	if lk == nil || lk.ssp == nil || lk.ssp.stage != sspWaitConfirm && lk.ssp.stage != sspWaitDHKeyCheck {
		return
	}
	if !accept {
		c.sspFail(lk, hci.StatusAuthenticationFailure, true)
		return
	}
	lk.ssp.localConfirmed = true
	c.advanceStage2(lk)
}

// onDHKeyCheck receives the peer's f3 check value.
func (c *Controller) onDHKeyCheck(lk *link, pdu DHKeyCheckPDU) {
	s := lk.ssp
	if s == nil {
		return
	}
	s.peerCheck = pdu.E
	s.havePeerCheck = true
	if s.initiator {
		if s.stage != sspWaitDHKeyCheck {
			return
		}
		c.stopLMPTimer(lk)
		expect := btcrypto.F3(s.dhkey, s.peerNonce, s.localNonce, s.verifyR,
			ioCapBytes(s.peerCap, s.peerOOB, s.peerAuthReq), addr6(lk.peer), addr6(c.cfg.Addr))
		if expect != s.peerCheck {
			c.sspFail(lk, hci.StatusAuthenticationFailure, true)
			return
		}
		c.sspSucceed(lk)
		return
	}
	c.advanceStage2(lk)
}

// advanceStage2 sends this side's DHKey check once its preconditions hold:
// the initiator sends Ea after local confirmation; the responder verifies
// Ea and answers Eb once both the local confirmation and Ea are in.
func (c *Controller) advanceStage2(lk *link) {
	s := lk.ssp
	if s == nil || s.sentCheck || !s.localConfirmed {
		return
	}
	if s.initiator {
		if !s.havePeerNonce {
			return // OOB: our host answered before the peer's nonce arrived
		}
		ea := btcrypto.F3(s.dhkey, s.localNonce, s.peerNonce, s.sendR,
			ioCapBytes(s.localCap, s.localOOB, s.localAuthReq), addr6(c.cfg.Addr), addr6(lk.peer))
		s.sentCheck = true
		s.stage = sspWaitDHKeyCheck
		c.send(lk, DHKeyCheckPDU{E: ea}, true)
		return
	}
	if !s.havePeerCheck {
		return
	}
	expect := btcrypto.F3(s.dhkey, s.peerNonce, s.localNonce, s.verifyR,
		ioCapBytes(s.peerCap, s.peerOOB, s.peerAuthReq), addr6(lk.peer), addr6(c.cfg.Addr))
	if expect != s.peerCheck {
		c.sspFail(lk, hci.StatusAuthenticationFailure, true)
		return
	}
	eb := btcrypto.F3(s.dhkey, s.localNonce, s.peerNonce, s.sendR,
		ioCapBytes(s.localCap, s.localOOB, s.localAuthReq), addr6(c.cfg.Addr), addr6(lk.peer))
	s.sentCheck = true
	c.send(lk, DHKeyCheckPDU{E: eb}, false)
	c.sspSucceed(lk)
}

func addr6(a bt.BDADDR) [6]byte { return [6]byte(a) }

// sspSucceed derives the link key, notifies the host, and — when pairing
// was triggered by HCI_Authentication_Requested — runs the concluding LMP
// authentication with the fresh key.
func (c *Controller) sspSucceed(lk *link) {
	s := lk.ssp
	lk.ssp = nil

	var key [16]byte
	if s.initiator {
		key = btcrypto.F2(s.dhkey, s.localNonce, s.peerNonce, addr6(c.cfg.Addr), addr6(lk.peer))
	} else {
		key = btcrypto.F2(s.dhkey, s.peerNonce, s.localNonce, addr6(lk.peer), addr6(c.cfg.Addr))
	}
	lk.currentKey = bt.LinkKey(key)
	lk.haveKey = true

	keyType := bt.KeyTypeUnauthenticatedP256
	if s.mapping().Authenticated || s.model() == bt.OutOfBand {
		// OOB authenticates the key exchange through the out-of-band
		// channel regardless of IO capabilities.
		keyType = bt.KeyTypeAuthenticatedP256
	}
	c.tr.SendEvent(&hci.SimplePairingComplete{Status: hci.StatusSuccess, Addr: lk.peer})
	c.tr.SendEvent(&hci.LinkKeyNotification{Addr: lk.peer, Key: lk.currentKey, KeyType: keyType})

	if s.initiator && s.fromAuth {
		lk.auth = &authState{verifier: true, stage: authVerifierWaitSres, key: lk.currentKey, fromPairing: true, challenge: c.rand16()}
		c.send(lk, AuRandPDU{Rand: lk.auth.challenge}, true)
	}
}

// sspFail aborts pairing, optionally informing the peer.
func (c *Controller) sspFail(lk *link, reason hci.Status, tellPeer bool) {
	s := lk.ssp
	if s == nil {
		return
	}
	lk.ssp = nil
	c.stopLMPTimer(lk)
	if tellPeer {
		c.send(lk, NotAcceptedPDU{Op: "SSP", Reason: reason}, false)
	}
	c.tr.SendEvent(&hci.SimplePairingComplete{Status: reason, Addr: lk.peer})
	if s.fromAuth && s.initiator {
		c.tr.SendEvent(&hci.AuthenticationComplete{Status: reason, Handle: lk.handle})
	}
}
