package controller

import (
	"repro/internal/bt"
	"repro/internal/btcrypto"
	"repro/internal/hci"
)

// SSP Out of Band association: each device's OOB payload (carried over a
// separate channel such as NFC) is the pair (C, R) with
// C = f1(PKx, PKx, R, 0) — a commitment to its own public key. During
// in-band pairing, each side checks the peer's public key against the
// commitment it received out of band, which authenticates the key
// exchange without any display or keyboard. The R values feed f3 as the
// stage-2 R input (each side *sends* a check computed with the peer's R
// and *verifies* with its own).

// OOBData is one device's out-of-band pairing payload.
type OOBData struct {
	Addr bt.BDADDR
	C    [16]byte
	R    [16]byte
}

// localOOB lazily derives this controller's OOB payload; R is generated
// once per controller lifetime, like a real Read_Local_OOB_Data epoch.
func (c *Controller) localOOB() OOBData {
	if !c.oobReady {
		c.oobRand = c.rand16()
		c.oobReady = true
	}
	return OOBData{
		Addr: c.cfg.Addr,
		C:    btcrypto.F1(c.kp.PublicX(), c.kp.PublicX(), c.oobRand, 0),
		R:    c.oobRand,
	}
}

// oobBegin runs stage 1 for the OOB model: ask the host for the peer's
// out-of-band data, then verify it against the in-band public key.
func (c *Controller) oobBegin(lk *link) {
	lk.ssp.stage = sspWaitOOB
	c.tr.SendEvent(&hci.RemoteOOBDataRequest{Addr: lk.peer})
}

// hostOOBData handles HCI_Remote_OOB_Data_Request_Reply (ok=true) or the
// negative reply.
func (c *Controller) hostOOBData(addr bt.BDADDR, oobC, oobR [16]byte, ok bool) {
	lk := c.findByAddr(addr)
	if lk == nil || lk.ssp == nil || lk.ssp.stage != sspWaitOOB {
		return
	}
	s := lk.ssp
	if !ok {
		// No OOB data for this peer: authentication cannot proceed.
		c.sspFail(lk, hci.StatusAuthenticationFailure, true)
		return
	}
	// Verify the peer's public key against the out-of-band commitment.
	px := peerX(s.peerPub)
	if btcrypto.F1(px, px, oobR, 0) != oobC {
		c.sspFail(lk, hci.StatusAuthenticationFailure, true)
		return
	}
	// Stage 2 R inputs: send with the peer's R, verify with our own.
	s.sendR = oobR
	s.verifyR = c.localOOB().R
	s.localConfirmed = true // the NFC tap was the user action

	// Exchange stage-1 nonces in-band (initiator first), then run the
	// DHKey checks.
	s.localNonce = c.rand16()
	s.stage = sspWaitNonce
	if s.initiator {
		c.send(lk, SSPNoncePDU{N: s.localNonce}, true)
		return
	}
	if s.havePeerNonce {
		// The initiator's nonce arrived while we were waiting for the
		// host; answer it now and proceed to stage 2.
		c.send(lk, SSPNoncePDU{N: s.localNonce}, false)
		s.stage = sspWaitConfirm
		c.advanceStage2(lk)
	}
}
