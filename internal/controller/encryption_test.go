package controller

import (
	"testing"
	"time"

	"repro/internal/bt"
	"repro/internal/hci"
	"repro/internal/radio"
)

// scriptKey makes a fake host answer link key requests with the given key.
func scriptKey(h *fakeHost, key bt.LinkKey) {
	old := h.onEvent
	h.onEvent = func(e hci.Event) {
		if old != nil {
			old(e)
		}
		if lr, ok := e.(*hci.LinkKeyRequest); ok {
			h.tr.SendCommand(&hci.LinkKeyRequestReply{Addr: lr.Addr, Key: key})
		}
	}
}

// TestSimultaneousAuthenticationCollision reproduces the LMP collision:
// both hosts issue Authentication_Requested at the same moment. Both
// authentications must complete, and link encryption must still work
// afterwards (the ACO selection rule must leave both ends with the same
// ciphering offset).
func TestSimultaneousAuthenticationCollision(t *testing.T) {
	key := bt.MustLinkKey("0f1e2d3c4b5a69788796a5b4c3d2e1f0")
	r := newRig(30, Config{}, Config{})
	handleA := r.connect(t)
	scriptKey(r.ha, key)
	scriptKey(r.hb, key)

	// B's handle for the same link.
	bcc := r.hb.eventsOf(hci.EvConnectionComplete)[0].(*hci.ConnectionComplete)
	handleB := bcc.Handle

	r.ha.tr.SendCommand(&hci.AuthenticationRequested{Handle: handleA})
	r.hb.tr.SendCommand(&hci.AuthenticationRequested{Handle: handleB})
	r.s.RunFor(5 * time.Second)

	for name, h := range map[string]*fakeHost{"A": r.ha, "B": r.hb} {
		acs := h.eventsOf(hci.EvAuthenticationComplete)
		if len(acs) != 1 {
			t.Fatalf("%s: auth completions = %d, want 1", name, len(acs))
		}
		if st := acs[0].(*hci.AuthenticationComplete).Status; st != hci.StatusSuccess {
			t.Fatalf("%s: auth status %s", name, st)
		}
	}

	// Encryption across the mutually-authenticated link must agree: an
	// ACL payload sent encrypted by A must decrypt correctly at B.
	r.ha.tr.SendCommand(&hci.SetConnectionEncryption{Handle: handleA, Enable: true})
	r.s.RunFor(2 * time.Second)
	ecs := r.ha.eventsOf(hci.EvEncryptionChange)
	if len(ecs) != 1 || ecs[0].(*hci.EncryptionChange).Status != hci.StatusSuccess {
		t.Fatalf("encryption change: %+v", ecs)
	}
	payload := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02}
	r.ha.tr.Send(hci.EncodeACL(hci.DirHostToController, handleA, payload))
	r.s.RunFor(time.Second)
	if len(r.hb.acl) != 1 {
		t.Fatalf("B received %d ACL frames", len(r.hb.acl))
	}
	got := r.hb.acl[0]
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("decrypted payload mismatch: %x vs %x — ACO rule broken", got, payload)
		}
	}
}

// TestKeySizeNegotiation checks the LMP encryption key size handshake.
func TestKeySizeNegotiation(t *testing.T) {
	key := bt.MustLinkKey("00112233445566778899aabbccddeeff")

	// A capped peer negotiates down; traffic still round-trips.
	r := newRig(31, Config{}, Config{MaxEncKeySize: 1})
	h := r.connect(t)
	scriptKey(r.ha, key)
	scriptKey(r.hb, key)
	r.ha.tr.SendCommand(&hci.AuthenticationRequested{Handle: h})
	r.s.RunFor(2 * time.Second)
	r.ha.tr.SendCommand(&hci.SetConnectionEncryption{Handle: h, Enable: true})
	r.s.RunFor(2 * time.Second)
	ecs := r.ha.eventsOf(hci.EvEncryptionChange)
	if len(ecs) != 1 || ecs[0].(*hci.EncryptionChange).Status != hci.StatusSuccess {
		t.Fatalf("negotiated-down encryption failed: %+v", ecs)
	}
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	r.ha.tr.Send(hci.EncodeACL(hci.DirHostToController, h, payload))
	r.s.RunFor(time.Second)
	if len(r.hb.acl) != 1 || r.hb.acl[0][0] != 1 {
		t.Fatalf("1-byte-key traffic broken: %v", r.hb.acl)
	}

	// A hardened initiator refuses the weak key.
	r2 := newRig(32, Config{MinEncKeySize: 7}, Config{MaxEncKeySize: 1})
	h2 := r2.connect(t)
	scriptKey(r2.ha, key)
	scriptKey(r2.hb, key)
	r2.ha.tr.SendCommand(&hci.AuthenticationRequested{Handle: h2})
	r2.s.RunFor(2 * time.Second)
	r2.ha.tr.SendCommand(&hci.SetConnectionEncryption{Handle: h2, Enable: true})
	r2.s.RunFor(2 * time.Second)
	ecs2 := r2.ha.eventsOf(hci.EvEncryptionChange)
	if len(ecs2) != 1 || ecs2[0].(*hci.EncryptionChange).Status == hci.StatusSuccess {
		t.Fatalf("hardened stack accepted a weak key: %+v", ecs2)
	}
}

// TestEncryptedTrafficIsCiphertextOnAir confirms that a sniffer sees only
// ciphertext once encryption starts, while the peer decrypts correctly.
func TestEncryptedTrafficIsCiphertextOnAir(t *testing.T) {
	key := bt.MustLinkKey("00112233445566778899aabbccddeeff")
	r := newRig(33, Config{}, Config{})
	h := r.connect(t)
	scriptKey(r.ha, key)
	scriptKey(r.hb, key)
	r.ha.tr.SendCommand(&hci.AuthenticationRequested{Handle: h})
	r.s.RunFor(2 * time.Second)
	r.ha.tr.SendCommand(&hci.SetConnectionEncryption{Handle: h, Enable: true})
	r.s.RunFor(2 * time.Second)

	seen := false
	payload := []byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66}
	r.med.Sniff(func(f radio.SniffedFrame) {
		inner, _ := UnwrapBB(f.Payload)
		pdu, ok := inner.(ACLPDU)
		if !ok {
			return
		}
		seen = true
		if !pdu.Encrypted {
			t.Error("ACL frame crossed the air unencrypted")
		}
		same := len(pdu.Data) == len(payload)
		if same {
			for i := range payload {
				if pdu.Data[i] != payload[i] {
					same = false
				}
			}
		}
		if same {
			t.Error("ciphertext equals plaintext")
		}
	})
	r.ha.tr.Send(hci.EncodeACL(hci.DirHostToController, h, payload))
	r.s.RunFor(time.Second)
	if !seen {
		t.Fatal("sniffer saw no ACL frame")
	}
	if len(r.hb.acl) != 1 || r.hb.acl[0][0] != 0x11 {
		t.Fatalf("peer failed to decrypt: %v", r.hb.acl)
	}
}
