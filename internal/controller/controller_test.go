package controller

import (
	"testing"
	"time"

	"repro/internal/bt"
	"repro/internal/btcrypto"
	"repro/internal/hci"
	"repro/internal/radio"
	"repro/internal/sim"
)

// fakeHost is a scriptable host-side HCI endpoint.
type fakeHost struct {
	tr      *hci.Transport
	events  []hci.Event
	acl     [][]byte
	onEvent func(hci.Event)
}

func (f *fakeHost) HandlePacket(p hci.Packet) {
	switch p.PT {
	case hci.PTEvent:
		evt, err := hci.ParseEvent(p)
		if err != nil {
			return
		}
		f.events = append(f.events, evt)
		if f.onEvent != nil {
			f.onEvent(evt)
		}
	case hci.PTACLData:
		_, data, ok := hci.ParseACL(p)
		if ok {
			f.acl = append(f.acl, data)
		}
	}
}

func (f *fakeHost) eventsOf(code hci.EventCode) []hci.Event {
	var out []hci.Event
	for _, e := range f.events {
		if e.Code() == code {
			out = append(out, e)
		}
	}
	return out
}

type rig struct {
	s   *sim.Scheduler
	med *radio.Medium
	ca  *Controller
	cb  *Controller
	ha  *fakeHost
	hb  *fakeHost
}

var (
	addrA = bt.MustBDADDR("aa:aa:aa:aa:aa:01")
	addrB = bt.MustBDADDR("bb:bb:bb:bb:bb:02")
)

func newRig(seed int64, cfgA, cfgB Config) *rig {
	s := sim.NewScheduler(seed)
	med := radio.NewMedium(s, radio.DefaultConfig())
	ta := hci.NewTransport(s, 100*time.Microsecond)
	tb := hci.NewTransport(s, 100*time.Microsecond)
	cfgA.Addr, cfgB.Addr = addrA, addrB
	r := &rig{
		s:   s,
		med: med,
		ca:  New(s, med, ta, cfgA),
		cb:  New(s, med, tb, cfgB),
		ha:  &fakeHost{tr: ta},
		hb:  &fakeHost{tr: tb},
	}
	ta.AttachHost(r.ha)
	tb.AttachHost(r.hb)
	// Make both connectable/discoverable, SSP-capable, and auto-accept
	// inbound connections at the fake-host level.
	ta.SendCommand(&hci.WriteScanEnable{ScanEnable: hci.ScanInquiryPage})
	tb.SendCommand(&hci.WriteScanEnable{ScanEnable: hci.ScanInquiryPage})
	ta.SendCommand(&hci.WriteSimplePairingMode{Enabled: true})
	tb.SendCommand(&hci.WriteSimplePairingMode{Enabled: true})
	r.hb.onEvent = func(e hci.Event) {
		if cr, ok := e.(*hci.ConnectionRequest); ok {
			tb.SendCommand(&hci.AcceptConnectionRequest{Addr: cr.Addr, Role: 1})
		}
	}
	s.Run(0)
	return r
}

// connect establishes A->B and returns A's handle. It advances bounded
// virtual time rather than draining the queue, so pending timers (e.g.
// link supervision) do not fire spuriously.
func (r *rig) connect(t *testing.T) bt.ConnHandle {
	t.Helper()
	r.ha.tr.SendCommand(&hci.CreateConnection{Addr: addrB})
	r.s.RunFor(time.Second)
	ccs := r.ha.eventsOf(hci.EvConnectionComplete)
	if len(ccs) != 1 {
		t.Fatalf("connection complete events: %d", len(ccs))
	}
	cc := ccs[0].(*hci.ConnectionComplete)
	if cc.Status != hci.StatusSuccess {
		t.Fatalf("connect failed: %s", cc.Status)
	}
	return cc.Handle
}

func TestBasebandCommandsComplete(t *testing.T) {
	r := newRig(1, Config{COD: bt.CODMobilePhone}, Config{})
	r.ha.tr.SendCommand(&hci.WriteClassOfDevice{COD: bt.CODHandsFree})
	r.ha.tr.SendCommand(&hci.WriteLocalName{Name: "spoof"})
	r.ha.tr.SendCommand(&hci.WriteSimplePairingMode{Enabled: true})
	r.ha.tr.SendCommand(&hci.ReadBDADDR{})
	r.s.Run(0)

	// Each command must be acknowledged with Command_Complete.
	ccs := r.ha.eventsOf(hci.EvCommandComplete)
	if len(ccs) < 4 {
		t.Fatalf("command completes: %d", len(ccs))
	}
	// Read_BD_ADDR returns the address little-endian after the status.
	var found bool
	for _, e := range ccs {
		cc := e.(*hci.CommandComplete)
		if cc.CommandOpcode == hci.OpReadBDADDR {
			found = true
			if len(cc.ReturnParams) != 7 {
				t.Fatalf("Read_BD_ADDR params: %x", cc.ReturnParams)
			}
			var le [6]byte
			copy(le[:], cc.ReturnParams[1:])
			if bt.BDADDRFromLittleEndian(le) != addrA {
				t.Fatalf("returned addr %v", le)
			}
		}
	}
	if !found {
		t.Fatal("no Read_BD_ADDR completion")
	}
	if r.ca.Info().COD != bt.CODHandsFree || r.ca.Info().Name != "spoof" {
		t.Fatal("writes did not take effect")
	}
}

func TestInquiryReportsPeers(t *testing.T) {
	r := newRig(2, Config{}, Config{COD: bt.CODHeadset})
	r.ha.tr.SendCommand(&hci.Inquiry{LAP: hci.GIAC, InquiryLength: 2})
	r.s.Run(0)
	results := r.ha.eventsOf(hci.EvInquiryResult)
	if len(results) != 1 {
		t.Fatalf("inquiry results: %d", len(results))
	}
	res := results[0].(*hci.InquiryResult).Responses[0]
	if res.Addr != addrB || res.COD != bt.CODHeadset {
		t.Fatalf("bad result: %+v", res)
	}
	if len(r.ha.eventsOf(hci.EvInquiryComplete)) != 1 {
		t.Fatal("missing inquiry complete")
	}
}

func TestConnectionSetupAndDisconnect(t *testing.T) {
	r := newRig(3, Config{}, Config{})
	handle := r.connect(t)

	// B saw a connection request and produced its own completion.
	if len(r.hb.eventsOf(hci.EvConnectionRequest)) != 1 {
		t.Fatal("responder missed the connection request")
	}
	bcc := r.hb.eventsOf(hci.EvConnectionComplete)
	if len(bcc) != 1 || bcc[0].(*hci.ConnectionComplete).Status != hci.StatusSuccess {
		t.Fatal("responder completion missing")
	}

	// ACL data flows both ways.
	r.ha.tr.Send(hci.EncodeACL(hci.DirHostToController, handle, []byte{1, 2, 3, 4, 5, 6}))
	r.s.Run(0)
	if len(r.hb.acl) != 1 {
		t.Fatalf("ACL frames at B: %d", len(r.hb.acl))
	}

	// Local disconnect: local host sees "terminated locally", the peer
	// sees the commanded reason.
	r.ha.tr.SendCommand(&hci.Disconnect{Handle: handle, Reason: hci.StatusRemoteUserTerminated})
	r.s.Run(0)
	adc := r.ha.eventsOf(hci.EvDisconnectionComplete)
	bdc := r.hb.eventsOf(hci.EvDisconnectionComplete)
	if len(adc) != 1 || adc[0].(*hci.DisconnectionComplete).Reason != hci.StatusConnTerminatedLocally {
		t.Fatalf("local disconnect: %+v", adc)
	}
	if len(bdc) != 1 || bdc[0].(*hci.DisconnectionComplete).Reason != hci.StatusRemoteUserTerminated {
		t.Fatalf("remote disconnect: %+v", bdc)
	}
}

func TestRejectedConnection(t *testing.T) {
	r := newRig(4, Config{}, Config{})
	r.hb.onEvent = func(e hci.Event) {
		if cr, ok := e.(*hci.ConnectionRequest); ok {
			r.hb.tr.SendCommand(&hci.RejectConnectionRequest{Addr: cr.Addr, Reason: hci.StatusConnTerminatedLocally})
		}
	}
	r.ha.tr.SendCommand(&hci.CreateConnection{Addr: addrB})
	r.s.Run(0)
	ccs := r.ha.eventsOf(hci.EvConnectionComplete)
	if len(ccs) != 1 {
		t.Fatalf("completions: %d", len(ccs))
	}
	if st := ccs[0].(*hci.ConnectionComplete).Status; st == hci.StatusSuccess {
		t.Fatal("rejected connection reported success")
	}
}

func TestPageTimeoutCompletion(t *testing.T) {
	r := newRig(5, Config{}, Config{})
	r.ha.tr.SendCommand(&hci.CreateConnection{Addr: bt.MustBDADDR("cc:cc:cc:cc:cc:03")})
	r.s.Run(0)
	ccs := r.ha.eventsOf(hci.EvConnectionComplete)
	if len(ccs) != 1 || ccs[0].(*hci.ConnectionComplete).Status != hci.StatusPageTimeout {
		t.Fatalf("want page timeout completion: %+v", ccs)
	}
}

func TestDuplicateCreateConnectionRefused(t *testing.T) {
	r := newRig(6, Config{}, Config{})
	r.connect(t)
	r.ha.tr.SendCommand(&hci.CreateConnection{Addr: addrB})
	r.s.Run(0)
	var refused bool
	for _, e := range r.ha.eventsOf(hci.EvCommandStatus) {
		cs := e.(*hci.CommandStatus)
		if cs.CommandOpcode == hci.OpCreateConnection && cs.Status == hci.StatusConnectionAlreadyExists {
			refused = true
		}
	}
	if !refused {
		t.Fatal("duplicate connection not refused")
	}
}

// TestAuthenticationWithStoredKey scripts both hosts to supply the same
// stored key and verifies the E1 challenge-response succeeds.
func TestAuthenticationWithStoredKey(t *testing.T) {
	key := bt.MustLinkKey("0123456789abcdef0123456789abcdef")
	r := newRig(7, Config{}, Config{})
	handle := r.connect(t)

	oldB := r.hb.onEvent
	r.ha.onEvent = func(e hci.Event) {
		if lr, ok := e.(*hci.LinkKeyRequest); ok {
			r.ha.tr.SendCommand(&hci.LinkKeyRequestReply{Addr: lr.Addr, Key: key})
		}
	}
	r.hb.onEvent = func(e hci.Event) {
		oldB(e)
		if lr, ok := e.(*hci.LinkKeyRequest); ok {
			r.hb.tr.SendCommand(&hci.LinkKeyRequestReply{Addr: lr.Addr, Key: key})
		}
	}
	r.ha.tr.SendCommand(&hci.AuthenticationRequested{Handle: handle})
	r.s.Run(0)

	acs := r.ha.eventsOf(hci.EvAuthenticationComplete)
	if len(acs) != 1 || acs[0].(*hci.AuthenticationComplete).Status != hci.StatusSuccess {
		t.Fatalf("auth outcome: %+v", acs)
	}
}

func TestAuthenticationWithMismatchedKeysFails(t *testing.T) {
	r := newRig(8, Config{}, Config{})
	handle := r.connect(t)
	oldB := r.hb.onEvent
	r.ha.onEvent = func(e hci.Event) {
		if lr, ok := e.(*hci.LinkKeyRequest); ok {
			r.ha.tr.SendCommand(&hci.LinkKeyRequestReply{Addr: lr.Addr, Key: bt.MustLinkKey("00000000000000000000000000000001")})
		}
	}
	r.hb.onEvent = func(e hci.Event) {
		oldB(e)
		if lr, ok := e.(*hci.LinkKeyRequest); ok {
			r.hb.tr.SendCommand(&hci.LinkKeyRequestReply{Addr: lr.Addr, Key: bt.MustLinkKey("00000000000000000000000000000002")})
		}
	}
	r.ha.tr.SendCommand(&hci.AuthenticationRequested{Handle: handle})
	r.s.Run(0)
	acs := r.ha.eventsOf(hci.EvAuthenticationComplete)
	if len(acs) != 1 || acs[0].(*hci.AuthenticationComplete).Status != hci.StatusAuthenticationFailure {
		t.Fatalf("want authentication failure: %+v", acs)
	}
}

// TestStalledClaimantTimesOutWithoutAuthFailure is the controller-level
// heart of the link key extraction attack: the claimant host never
// answers the key request, the verifier's LMP response timer detaches the
// link, and no Authentication_Complete(failure) is ever generated.
func TestStalledClaimantTimesOutWithoutAuthFailure(t *testing.T) {
	key := bt.MustLinkKey("0123456789abcdef0123456789abcdef")
	r := newRig(9, Config{LMPResponseTimeout: 2 * time.Second}, Config{})
	handle := r.connect(t)
	r.ha.onEvent = func(e hci.Event) {
		if lr, ok := e.(*hci.LinkKeyRequest); ok {
			r.ha.tr.SendCommand(&hci.LinkKeyRequestReply{Addr: lr.Addr, Key: key})
		}
	}
	// B's host: silence (the Fig. 9 patch).
	start := r.s.Now()
	r.ha.tr.SendCommand(&hci.AuthenticationRequested{Handle: handle})
	r.s.Run(0)

	if n := len(r.ha.eventsOf(hci.EvAuthenticationComplete)); n != 0 {
		t.Fatalf("no auth completion should fire, got %d", n)
	}
	dcs := r.ha.eventsOf(hci.EvDisconnectionComplete)
	if len(dcs) != 1 || dcs[0].(*hci.DisconnectionComplete).Reason != hci.StatusLMPResponseTimeout {
		t.Fatalf("want LMP response timeout disconnect: %+v", dcs)
	}
	if elapsed := r.s.Now() - start; elapsed < 2*time.Second {
		t.Fatalf("disconnect before the timeout window: %v", elapsed)
	}
}

func TestClaimantWithoutKeyTriggersPairingFallback(t *testing.T) {
	// Verifier has a key, claimant replies negatively: the verifier falls
	// back to SSP (IO capability request to its host).
	key := bt.MustLinkKey("0123456789abcdef0123456789abcdef")
	r := newRig(10, Config{}, Config{})
	handle := r.connect(t)
	oldB := r.hb.onEvent
	r.ha.onEvent = func(e hci.Event) {
		if lr, ok := e.(*hci.LinkKeyRequest); ok {
			r.ha.tr.SendCommand(&hci.LinkKeyRequestReply{Addr: lr.Addr, Key: key})
		}
	}
	r.hb.onEvent = func(e hci.Event) {
		oldB(e)
		if lr, ok := e.(*hci.LinkKeyRequest); ok {
			r.hb.tr.SendCommand(&hci.LinkKeyRequestNegativeReply{Addr: lr.Addr})
		}
	}
	r.ha.tr.SendCommand(&hci.AuthenticationRequested{Handle: handle})
	r.s.Run(0)
	if len(r.ha.eventsOf(hci.EvIOCapabilityRequest)) != 1 {
		t.Fatal("verifier should fall back to SSP after PIN-or-key-missing")
	}
}

func TestEncryptionRequiresAuthentication(t *testing.T) {
	r := newRig(11, Config{}, Config{})
	handle := r.connect(t)
	r.ha.tr.SendCommand(&hci.SetConnectionEncryption{Handle: handle, Enable: true})
	r.s.Run(0)
	ecs := r.ha.eventsOf(hci.EvEncryptionChange)
	if len(ecs) != 1 || ecs[0].(*hci.EncryptionChange).Status != hci.StatusPINOrKeyMissing {
		t.Fatalf("want key-missing encryption failure: %+v", ecs)
	}
}

func TestEncryptionAfterAuthentication(t *testing.T) {
	key := bt.MustLinkKey("0123456789abcdef0123456789abcdef")
	r := newRig(12, Config{}, Config{})
	handle := r.connect(t)
	oldB := r.hb.onEvent
	reply := func(tr *hci.Transport) func(hci.Event) {
		return func(e hci.Event) {
			if lr, ok := e.(*hci.LinkKeyRequest); ok {
				tr.SendCommand(&hci.LinkKeyRequestReply{Addr: lr.Addr, Key: key})
			}
		}
	}
	r.ha.onEvent = reply(r.ha.tr)
	r.hb.onEvent = func(e hci.Event) { oldB(e); reply(r.hb.tr)(e) }

	r.ha.tr.SendCommand(&hci.AuthenticationRequested{Handle: handle})
	r.s.Run(0)
	r.ha.tr.SendCommand(&hci.SetConnectionEncryption{Handle: handle, Enable: true})
	r.s.Run(0)

	for name, h := range map[string]*fakeHost{"A": r.ha, "B": r.hb} {
		ecs := h.eventsOf(hci.EvEncryptionChange)
		if len(ecs) != 1 {
			t.Fatalf("%s: encryption changes: %d", name, len(ecs))
		}
		ec := ecs[0].(*hci.EncryptionChange)
		if ec.Status != hci.StatusSuccess || !ec.Enabled {
			t.Fatalf("%s: %+v", name, ec)
		}
	}
}

func TestSupervisionTimeoutDropsIdleLink(t *testing.T) {
	r := newRig(13, Config{SupervisionTimeout: 3 * time.Second}, Config{})
	_ = r.connect(t)
	r.s.RunFor(10 * time.Second)
	dcs := r.ha.eventsOf(hci.EvDisconnectionComplete)
	if len(dcs) != 1 || dcs[0].(*hci.DisconnectionComplete).Reason != hci.StatusConnectionTimeout {
		t.Fatalf("want supervision drop: %+v", dcs)
	}
}

func TestSupervisionRefreshedByTraffic(t *testing.T) {
	r := newRig(14, Config{SupervisionTimeout: 3 * time.Second}, Config{})
	handle := r.connect(t)
	for i := 0; i < 5; i++ {
		r.s.RunFor(2 * time.Second)
		r.ha.tr.Send(hci.EncodeACL(hci.DirHostToController, handle, []byte{0, 0, 0, 0, 0, 0}))
	}
	r.s.RunFor(2 * time.Second)
	if len(r.ha.eventsOf(hci.EvDisconnectionComplete)) != 0 {
		t.Fatal("traffic should keep the link alive")
	}
	_ = btcrypto.Ar // anchor import
}

func TestSpoofedClaimantPassesE1(t *testing.T) {
	// The E1 claimant-address binding: when B spoofs some address X, the
	// verifier computes E1 with X and authentication still succeeds —
	// which is exactly why BDADDR spoofing plus a stolen key defeats LMP
	// authentication.
	key := bt.MustLinkKey("00112233445566778899aabbccddeeff")
	spoofed := bt.MustBDADDR("dd:dd:dd:dd:dd:07")
	r := newRig(15, Config{}, Config{})
	r.cb.SetAddr(spoofed)
	r.s.Run(0)

	oldB := r.hb.onEvent
	r.ha.onEvent = func(e hci.Event) {
		if lr, ok := e.(*hci.LinkKeyRequest); ok {
			r.ha.tr.SendCommand(&hci.LinkKeyRequestReply{Addr: lr.Addr, Key: key})
		}
	}
	r.hb.onEvent = func(e hci.Event) {
		oldB(e)
		if lr, ok := e.(*hci.LinkKeyRequest); ok {
			r.hb.tr.SendCommand(&hci.LinkKeyRequestReply{Addr: lr.Addr, Key: key})
		}
	}
	r.ha.tr.SendCommand(&hci.CreateConnection{Addr: spoofed})
	r.s.Run(0)
	ccs := r.ha.eventsOf(hci.EvConnectionComplete)
	if len(ccs) != 1 || ccs[0].(*hci.ConnectionComplete).Status != hci.StatusSuccess {
		t.Fatalf("connect to spoofed addr: %+v", ccs)
	}
	handle := ccs[0].(*hci.ConnectionComplete).Handle
	r.ha.tr.SendCommand(&hci.AuthenticationRequested{Handle: handle})
	r.s.Run(0)
	acs := r.ha.eventsOf(hci.EvAuthenticationComplete)
	if len(acs) != 1 || acs[0].(*hci.AuthenticationComplete).Status != hci.StatusSuccess {
		t.Fatalf("spoofed claimant should authenticate: %+v", acs)
	}
}

func TestInquiryCancel(t *testing.T) {
	r := newRig(50, Config{}, Config{})
	r.ha.tr.SendCommand(&hci.Inquiry{LAP: hci.GIAC, InquiryLength: 4})
	r.s.RunFor(time.Millisecond) // before any response jitter elapses
	r.ha.tr.SendCommand(&hci.InquiryCancel{})
	r.s.RunFor(10 * time.Second)
	if n := len(r.ha.eventsOf(hci.EvInquiryResult)); n != 0 {
		t.Fatalf("cancelled inquiry delivered %d results", n)
	}
	if n := len(r.ha.eventsOf(hci.EvInquiryComplete)); n != 0 {
		t.Fatalf("cancelled inquiry completed %d times", n)
	}
	// A second inquiry still works after the cancel.
	r.ha.tr.SendCommand(&hci.Inquiry{LAP: hci.GIAC, InquiryLength: 2})
	r.s.RunFor(10 * time.Second)
	if n := len(r.ha.eventsOf(hci.EvInquiryComplete)); n != 1 {
		t.Fatalf("post-cancel inquiry completions: %d", n)
	}
}

func TestResetTearsDownLinks(t *testing.T) {
	r := newRig(51, Config{}, Config{})
	_ = r.connect(t)
	r.ha.tr.SendCommand(&hci.Reset{})
	r.s.RunFor(2 * time.Second)
	// The peer observes the drop; the resetting side reports no
	// disconnection event (its host wiped state with the reset).
	if n := len(r.hb.eventsOf(hci.EvDisconnectionComplete)); n != 1 {
		t.Fatalf("peer disconnections after reset: %d", n)
	}
	// A fresh connection works after reset once scanning is re-enabled.
	r.ha.tr.SendCommand(&hci.WriteScanEnable{ScanEnable: hci.ScanInquiryPage})
	r.ha.tr.SendCommand(&hci.CreateConnection{Addr: addrB})
	r.s.RunFor(10 * time.Second)
	ccs := r.ha.eventsOf(hci.EvConnectionComplete)
	if len(ccs) != 2 || ccs[1].(*hci.ConnectionComplete).Status != hci.StatusSuccess {
		t.Fatalf("post-reset connect: %+v", ccs)
	}
}
