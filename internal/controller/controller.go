// Package controller implements a simulated Bluetooth BR/EDR controller:
// the link controller (inquiry, paging, ACL links) and the link manager
// (LMP authentication with E1, Secure Simple Pairing, encryption start),
// driven through a standard HCI transport. It reproduces the spec-mandated
// behaviours the BLAP attacks rely on: the controller fetches link keys
// from the host over plaintext HCI before authenticating, an unanswered
// LMP challenge drops the link with a timeout rather than an
// authentication failure, and nothing verifies that the connection
// initiator is also the pairing initiator.
package controller

import (
	"math/rand"
	"time"

	"repro/internal/bt"
	"repro/internal/btcrypto"
	"repro/internal/hci"
	"repro/internal/radio"
	"repro/internal/sim"
)

// Config parameterizes a controller.
type Config struct {
	Addr bt.BDADDR
	COD  bt.ClassOfDevice
	Name string

	// LMPResponseTimeout bounds waits for LMP responses from the peer
	// (default 30 s, the specification value). When it expires the link is
	// detached with LMP Response Timeout — crucially not an authentication
	// failure, which is what keeps the victim accessory's stored key alive
	// during the link key extraction attack.
	LMPResponseTimeout time.Duration

	// SupervisionTimeout drops a link with Connection Timeout when no
	// traffic arrives for this long. Zero disables supervision.
	SupervisionTimeout time.Duration

	// MaxEncKeySize and MinEncKeySize bound the LMP encryption key size
	// negotiation in bytes. Defaults: max 16, min 1 (the pre-KNOB
	// specification floor; hardened stacks raise the minimum to 7).
	MaxEncKeySize int
	MinEncKeySize int

	// ARQRetransmitTimeout is the baseband ARQ base retransmission
	// timeout; each retry doubles it (deterministic, no jitter). Default
	// DefaultARQRetransmitTimeout.
	ARQRetransmitTimeout time.Duration

	// ARQMaxRetransmissions bounds retries per frame before the baseband
	// flushes it. Default DefaultARQMaxRetransmissions.
	ARQMaxRetransmissions int

	// FixedPasskey pins the passkey a display-side controller generates
	// during Passkey Entry instead of drawing a random one — modelling an
	// accessory with the passkey printed on a label, and letting an
	// attacker replay a recovered passkey.
	FixedPasskey *uint32

	// EnhancedPasskey enables the hardened Passkey Entry variant used as
	// the mitigation scenario: each round's commitment bit is masked with
	// a bit of the shared DH key, so a sniffer who recovers the per-round
	// Z values learns nothing about the passkey, and a non-enhanced MITM
	// cannot complete the rounds against an enhanced endpoint.
	EnhancedPasskey bool
}

// DefaultLMPResponseTimeout is the specification's LMP response timeout.
const DefaultLMPResponseTimeout = 30 * time.Second

func (c Config) withDefaults() Config {
	if c.LMPResponseTimeout <= 0 {
		c.LMPResponseTimeout = DefaultLMPResponseTimeout
	}
	if c.MaxEncKeySize <= 0 || c.MaxEncKeySize > 16 {
		c.MaxEncKeySize = 16
	}
	if c.MinEncKeySize <= 0 {
		c.MinEncKeySize = 1
	}
	if c.MinEncKeySize > c.MaxEncKeySize {
		c.MinEncKeySize = c.MaxEncKeySize
	}
	if c.ARQRetransmitTimeout <= 0 {
		c.ARQRetransmitTimeout = DefaultARQRetransmitTimeout
	}
	if c.ARQMaxRetransmissions <= 0 {
		c.ARQMaxRetransmissions = DefaultARQMaxRetransmissions
	}
	return c
}

type linkState int

const (
	linkPendingAccept linkState = iota // responder: waiting for host accept
	linkPendingRemote                  // initiator: waiting for ConnAcceptPDU
	linkOpen
)

type link struct {
	handle    bt.ConnHandle
	peer      bt.BDADDR
	peerInfo  radio.DeviceInfo
	phy       *radio.Link
	state     linkState
	initiator bool

	auth   *authState
	ssp    *sspState
	legacy *legacyState
	// crossChallenge stashes a peer's AuRandPDU that arrived while a
	// local authentication was already in flight (both sides acting as
	// verifier at once — a legal LMP collision); it is answered as soon
	// as the link key is in hand.
	crossChallenge *[16]byte

	// currentKey and aco cache the session's authentication material for
	// encryption key generation.
	currentKey    bt.LinkKey
	haveKey       bool
	// e1ctx caches the SAFER+ key schedules for e1ctxKey so repeated
	// E1 authentications and E3 derivations under one bonded key skip
	// the schedule expansion (see btcrypto.E1Context).
	e1ctx         *btcrypto.E1Context
	e1ctxKey      bt.LinkKey
	aco           [12]byte
	encrypted     bool
	pendingEncist bool
	encKey        [16]byte // E3 output, shrunk to encKeySize
	encKeySize    int
	txClock       uint32
	pendingEncRnd [16]byte

	lmpTimer   *sim.Timer
	superTimer *sim.Timer
	arq        arqState
}

// Controller is one simulated BR/EDR controller instance.
type Controller struct {
	sched *sim.Scheduler
	cfg   Config
	tr    *hci.Transport
	med   *radio.Medium
	port  *radio.Port

	scanEnable hci.ScanEnable
	sspMode    bool
	kp         *btcrypto.KeyPair
	oobReady   bool
	oobRand    [16]byte

	links      map[bt.ConnHandle]*link
	nextHandle uint16
	inquiring  bool
}

// rngReader adapts the scheduler RNG to io.Reader for deterministic ECDH
// key generation.
type rngReader struct{ r *rand.Rand }

func (r rngReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(r.r.Intn(256))
	}
	return len(p), nil
}

// New creates a controller, attaches it to the medium, and registers it as
// the controller-side endpoint of tr.
func New(s *sim.Scheduler, med *radio.Medium, tr *hci.Transport, cfg Config) *Controller {
	c := &Controller{
		sched: s,
		cfg:   cfg.withDefaults(),
		tr:    tr,
		med:   med,
		links: make(map[bt.ConnHandle]*link),
	}
	kp, err := btcrypto.GenerateKeyPair(rngReader{s.Rand()})
	if err != nil {
		panic("controller: ECDH key generation cannot fail with rngReader: " + err.Error())
	}
	c.kp = kp
	c.port = med.Attach(c)
	tr.AttachController(c)
	return c
}

// Addr returns the controller's current BDADDR.
func (c *Controller) Addr() bt.BDADDR { return c.cfg.Addr }

// SetAddr changes the controller's BDADDR, modelling the persistent
// vendor address file (/persist/bdaddr.txt) the paper's attacker rewrites.
func (c *Controller) SetAddr(a bt.BDADDR) { c.cfg.Addr = a }

// SetCOD changes the advertised class of device, modelling the bt_target.h
// patch of the paper's Fig. 8.
func (c *Controller) SetCOD(cod bt.ClassOfDevice) { c.cfg.COD = cod }

// SetFixedPasskey pins (or, with nil, unpins) the passkey the controller
// will generate next time it plays the display side of Passkey Entry —
// the attacker's lever for replaying a sniffed fixed passkey.
func (c *Controller) SetFixedPasskey(p *uint32) { c.cfg.FixedPasskey = p }

// Detach removes the controller from the medium.
func (c *Controller) Detach() { c.med.Detach(c.port) }

// Reattach restores a previously detached controller to the medium,
// modelling recovery from a radio outage. Links do not survive the
// outage; the device must be re-paged.
func (c *Controller) Reattach() { c.med.Reattach(c.port) }

// --- radio.Receiver ---

// Info implements radio.Receiver.
func (c *Controller) Info() radio.DeviceInfo {
	return radio.DeviceInfo{Addr: c.cfg.Addr, COD: c.cfg.COD, Name: c.cfg.Name}
}

// InquiryScanEnabled implements radio.Receiver.
func (c *Controller) InquiryScanEnabled() bool { return c.scanEnable.InquiryScan() }

// PageScanEnabled implements radio.Receiver.
func (c *Controller) PageScanEnabled() bool { return c.scanEnable.PageScan() }

// AcceptPage implements radio.Receiver. Baseband always accepts; the host
// policy decides via Accept/Reject_Connection_Request.
func (c *Controller) AcceptPage(radio.DeviceInfo) bool { return true }

// LinkEstablished implements radio.Receiver (responder side of a page).
func (c *Controller) LinkEstablished(l *radio.Link, peer radio.DeviceInfo) {
	lk := &link{
		peer:     peer.Addr,
		peerInfo: peer,
		phy:      l,
		state:    linkPendingAccept,
	}
	c.trackLink(lk)
	c.tr.SendEvent(&hci.ConnectionRequest{Addr: peer.Addr, COD: peer.COD, LinkType: hci.LinkTypeACL})
}

// LinkData implements radio.Receiver. Any received frame — data or pure
// ack — proves radio contact and refreshes the supervision timer; only
// in-order ARQ delivery reaches the LMP state machines.
func (c *Controller) LinkData(l *radio.Link, payload any) {
	lk := c.findByPhy(l)
	if lk == nil {
		return
	}
	c.touchSupervision(lk)
	switch f := payload.(type) {
	case BBAck:
		c.arqAcked(lk, f.Ack)
	case BBFrame:
		c.arqAcked(lk, f.Ack)
		c.arqReceive(lk, f)
	default:
		// Raw (non-ARQ) payloads keep working for tests that drive the
		// phy link directly.
		c.handleLMP(lk, payload)
	}
}

// LinkClosed implements radio.Receiver.
func (c *Controller) LinkClosed(l *radio.Link, reason error) {
	lk := c.findByPhy(l)
	if lk == nil {
		return
	}
	status := hci.StatusConnectionTimeout
	if de, ok := reason.(detachError); ok {
		status = de.reason
	}
	c.dropLink(lk, status, true)
}

// detachError carries the peer's HCI reason through the radio layer.
type detachError struct{ reason hci.Status }

func (e detachError) Error() string { return "controller: detached: " + e.reason.String() }

// --- link bookkeeping ---

func (c *Controller) trackLink(lk *link) {
	c.nextHandle++
	lk.handle = bt.ConnHandle(c.nextHandle)
	c.links[lk.handle] = lk
	if c.cfg.SupervisionTimeout > 0 {
		lk.superTimer = sim.NewTimer(c.sched, func() {
			lk.phy.Close(c.port, detachError{hci.StatusConnectionTimeout})
			c.dropLink(lk, hci.StatusConnectionTimeout, true)
		})
		lk.superTimer.Start(c.cfg.SupervisionTimeout)
	}
}

func (c *Controller) touchSupervision(lk *link) {
	if lk.superTimer != nil {
		lk.superTimer.Start(c.cfg.SupervisionTimeout)
	}
}

func (c *Controller) findByPhy(l *radio.Link) *link {
	for _, lk := range c.links {
		if lk.phy == l {
			return lk
		}
	}
	return nil
}

func (c *Controller) findByAddr(a bt.BDADDR) *link {
	for _, lk := range c.links {
		if lk.peer == a {
			return lk
		}
	}
	return nil
}

// dropLink removes a link and notifies the host. notify=false suppresses
// the Disconnection_Complete event (used when the host itself commanded
// the disconnect and the event was already sent).
func (c *Controller) dropLink(lk *link, reason hci.Status, notify bool) {
	if _, ok := c.links[lk.handle]; !ok {
		return
	}
	delete(c.links, lk.handle)
	c.stopLinkTimers(lk)
	if !notify {
		return
	}
	switch lk.state {
	case linkOpen:
		c.tr.SendEvent(&hci.DisconnectionComplete{Status: hci.StatusSuccess, Handle: lk.handle, Reason: reason})
	case linkPendingRemote:
		c.tr.SendEvent(&hci.ConnectionComplete{Status: reason, Addr: lk.peer, LinkType: hci.LinkTypeACL})
	case linkPendingAccept:
		// The host never accepted; nothing to report.
	}
}

// stopLinkTimers quiesces everything armed on behalf of a link: LMP
// response, supervision, and outstanding ARQ retransmissions.
func (c *Controller) stopLinkTimers(lk *link) {
	if lk.lmpTimer != nil {
		lk.lmpTimer.Stop()
	}
	if lk.superTimer != nil {
		lk.superTimer.Stop()
	}
	c.arqDrop(lk)
}

// send transmits an LMP PDU through the baseband ARQ layer and
// optionally arms the LMP response timer.
func (c *Controller) send(lk *link, pdu any, expectResponse bool) {
	c.arqSend(lk, pdu)
	if expectResponse {
		c.armLMPTimer(lk)
	}
}

func (c *Controller) armLMPTimer(lk *link) {
	if lk.lmpTimer == nil {
		lk.lmpTimer = sim.NewTimer(c.sched, func() { c.lmpTimeout(lk) })
	}
	lk.lmpTimer.Start(c.cfg.LMPResponseTimeout)
}

func (c *Controller) stopLMPTimer(lk *link) {
	if lk.lmpTimer != nil {
		lk.lmpTimer.Stop()
	}
}

// lmpTimeout fires when the peer failed to answer an LMP PDU in time: the
// link is detached with LMP Response Timeout. The session ends without an
// authentication failure, so a bonded peer's stored link key survives —
// the property step 5 of the link key extraction attack depends on.
func (c *Controller) lmpTimeout(lk *link) {
	lk.phy.Close(c.port, detachError{hci.StatusLMPResponseTimeout})
	c.dropLink(lk, hci.StatusLMPResponseTimeout, true)
}

// --- hci.Endpoint ---

// HandlePacket processes host-to-controller traffic.
func (c *Controller) HandlePacket(p hci.Packet) {
	switch p.PT {
	case hci.PTCommand:
		cmd, err := hci.ParseCommand(p)
		if err != nil {
			return
		}
		c.handleCommand(cmd)
	case hci.PTACLData:
		handle, data, ok := hci.ParseACL(p)
		if !ok {
			return
		}
		if lk, ok := c.links[handle]; ok && lk.state == linkOpen {
			c.touchSupervision(lk)
			pdu := ACLPDU{Data: append([]byte(nil), data...)}
			if lk.encrypted {
				lk.txClock++
				pdu.Encrypted = true
				pdu.Clock = lk.txClock
				pdu.Data = btcrypto.EncryptPayload(lk.encKey, c.masterAddr(lk), pdu.Clock, pdu.Data)
			}
			c.send(lk, pdu, false)
		}
	}
}

func (c *Controller) commandComplete(op hci.Opcode, ret ...byte) {
	c.tr.SendEvent(&hci.CommandComplete{NumPackets: 1, CommandOpcode: op, ReturnParams: ret})
}

func (c *Controller) commandStatus(op hci.Opcode, st hci.Status) {
	c.tr.SendEvent(&hci.CommandStatus{Status: st, NumPackets: 1, CommandOpcode: op})
}

func (c *Controller) handleCommand(cmd hci.Command) {
	switch v := cmd.(type) {
	case *hci.Reset:
		for _, lk := range c.links {
			lk.phy.Close(c.port, detachError{hci.StatusConnTerminatedLocally})
			c.dropLink(lk, hci.StatusConnTerminatedLocally, false)
		}
		c.scanEnable = hci.ScanOff
		c.inquiring = false
		c.commandComplete(v.Opcode(), byte(hci.StatusSuccess))

	case *hci.WriteScanEnable:
		c.scanEnable = v.ScanEnable
		c.commandComplete(v.Opcode(), byte(hci.StatusSuccess))

	case *hci.WriteClassOfDevice:
		c.cfg.COD = v.COD
		c.commandComplete(v.Opcode(), byte(hci.StatusSuccess))

	case *hci.WriteLocalName:
		c.cfg.Name = v.Name
		c.commandComplete(v.Opcode(), byte(hci.StatusSuccess))

	case *hci.WriteSimplePairingMode:
		c.sspMode = v.Enabled
		c.commandComplete(v.Opcode(), byte(hci.StatusSuccess))

	case *hci.ReadBDADDR:
		le := c.cfg.Addr.LittleEndian()
		ret := append([]byte{byte(hci.StatusSuccess)}, le[:]...)
		c.commandComplete(v.Opcode(), ret...)

	case *hci.Inquiry:
		if c.inquiring {
			c.commandStatus(v.Opcode(), hci.StatusConnectionAlreadyExists)
			return
		}
		c.inquiring = true
		c.commandStatus(v.Opcode(), hci.StatusSuccess)
		dur := time.Duration(v.InquiryLength) * c.med.Config().InquiryUnit
		c.med.StartInquiry(c.port, dur,
			func(res radio.InquiryResult) {
				if !c.inquiring {
					return
				}
				c.tr.SendEvent(&hci.InquiryResult{Responses: []hci.InquiryResponse{{
					Addr:        res.Info.Addr,
					COD:         res.Info.COD,
					ClockOffset: res.ClockOffset,
				}}})
			},
			func() {
				if !c.inquiring {
					return
				}
				c.inquiring = false
				c.tr.SendEvent(&hci.InquiryComplete{Status: hci.StatusSuccess})
			})

	case *hci.InquiryCancel:
		c.inquiring = false
		c.commandComplete(v.Opcode(), byte(hci.StatusSuccess))

	case *hci.CreateConnection:
		if c.findByAddr(v.Addr) != nil {
			c.commandStatus(v.Opcode(), hci.StatusConnectionAlreadyExists)
			return
		}
		c.commandStatus(v.Opcode(), hci.StatusSuccess)
		c.med.Page(c.port, v.Addr, func(l *radio.Link, peer radio.DeviceInfo, err error) {
			if err != nil {
				c.tr.SendEvent(&hci.ConnectionComplete{Status: hci.StatusPageTimeout, Addr: v.Addr, LinkType: hci.LinkTypeACL})
				return
			}
			lk := &link{
				peer:      peer.Addr,
				peerInfo:  peer,
				phy:       l,
				state:     linkPendingRemote,
				initiator: true,
			}
			c.trackLink(lk)
			c.armLMPTimer(lk) // bound the wait for the responder host's accept
		})

	case *hci.AcceptConnectionRequest:
		lk := c.findByAddr(v.Addr)
		if lk == nil || lk.state != linkPendingAccept {
			c.commandStatus(v.Opcode(), hci.StatusUnknownConnectionID)
			return
		}
		c.commandStatus(v.Opcode(), hci.StatusSuccess)
		lk.state = linkOpen
		c.send(lk, ConnAcceptPDU{LTAddr: 1}, false)
		c.tr.SendEvent(&hci.ConnectionComplete{Status: hci.StatusSuccess, Handle: lk.handle, Addr: lk.peer, LinkType: hci.LinkTypeACL})

	case *hci.RejectConnectionRequest:
		lk := c.findByAddr(v.Addr)
		if lk == nil || lk.state != linkPendingAccept {
			c.commandStatus(v.Opcode(), hci.StatusUnknownConnectionID)
			return
		}
		c.commandStatus(v.Opcode(), hci.StatusSuccess)
		lk.phy.Close(c.port, detachError{v.Reason})
		c.dropLink(lk, v.Reason, false)

	case *hci.Disconnect:
		lk, ok := c.links[v.Handle]
		if !ok {
			c.commandStatus(v.Opcode(), hci.StatusUnknownConnectionID)
			return
		}
		c.commandStatus(v.Opcode(), hci.StatusSuccess)
		lk.phy.Close(c.port, detachError{v.Reason})
		delete(c.links, v.Handle)
		c.stopLinkTimers(lk)
		c.tr.SendEvent(&hci.DisconnectionComplete{Status: hci.StatusSuccess, Handle: v.Handle, Reason: hci.StatusConnTerminatedLocally})

	case *hci.PINCodeRequestReply:
		c.commandComplete(v.Opcode(), byte(hci.StatusSuccess))
		c.hostPINCode(v.Addr, v.PIN)

	case *hci.PINCodeRequestNegativeReply:
		c.commandComplete(v.Opcode(), byte(hci.StatusSuccess))
		c.hostPINDenied(v.Addr)

	case *hci.AuthenticationRequested:
		lk, ok := c.links[v.Handle]
		if !ok || lk.state != linkOpen {
			c.commandStatus(v.Opcode(), hci.StatusUnknownConnectionID)
			return
		}
		c.commandStatus(v.Opcode(), hci.StatusSuccess)
		c.startAuthentication(lk)

	case *hci.LinkKeyRequestReply:
		c.commandComplete(v.Opcode(), byte(hci.StatusSuccess))
		c.hostSuppliedKey(v.Addr, v.Key)

	case *hci.LinkKeyRequestNegativeReply:
		c.commandComplete(v.Opcode(), byte(hci.StatusSuccess))
		c.hostDeniedKey(v.Addr)

	case *hci.IOCapabilityRequestReply:
		c.commandComplete(v.Opcode(), byte(hci.StatusSuccess))
		c.hostIOCapability(v.Addr, v.Capability, v.OOBDataPresent, v.AuthRequirements)

	case *hci.UserConfirmationRequestReply:
		c.commandComplete(v.Opcode(), byte(hci.StatusSuccess))
		c.hostConfirmation(v.Addr, true)

	case *hci.UserConfirmationRequestNegativeReply:
		c.commandComplete(v.Opcode(), byte(hci.StatusSuccess))
		c.hostConfirmation(v.Addr, false)

	case *hci.UserPasskeyRequestReply:
		c.commandComplete(v.Opcode(), byte(hci.StatusSuccess))
		c.hostPasskey(v.Addr, v.Passkey, true)

	case *hci.UserPasskeyRequestNegativeReply:
		c.commandComplete(v.Opcode(), byte(hci.StatusSuccess))
		c.hostPasskey(v.Addr, 0, false)

	case *hci.ReadLocalOOBData:
		oob := c.localOOB()
		ret := append([]byte{byte(hci.StatusSuccess)}, oob.C[:]...)
		ret = append(ret, oob.R[:]...)
		c.commandComplete(v.Opcode(), ret...)

	case *hci.RemoteOOBDataRequestReply:
		c.commandComplete(v.Opcode(), byte(hci.StatusSuccess))
		c.hostOOBData(v.Addr, v.C, v.R, true)

	case *hci.RemoteOOBDataRequestNegativeReply:
		c.commandComplete(v.Opcode(), byte(hci.StatusSuccess))
		c.hostOOBData(v.Addr, [16]byte{}, [16]byte{}, false)

	case *hci.SetConnectionEncryption:
		lk, ok := c.links[v.Handle]
		if !ok || lk.state != linkOpen {
			c.commandStatus(v.Opcode(), hci.StatusUnknownConnectionID)
			return
		}
		c.commandStatus(v.Opcode(), hci.StatusSuccess)
		c.startEncryption(lk, v.Enable)

	case *hci.RemoteNameRequest:
		// Resolved from the medium identity directly; a real controller
		// would run a temporary connection for LMP_name_req.
		c.commandStatus(v.Opcode(), hci.StatusSuccess)
		name := ""
		if lk := c.findByAddr(v.Addr); lk != nil {
			name = lk.peerInfo.Name
		}
		c.tr.SendEvent(&hci.RemoteNameRequestComplete{Status: hci.StatusSuccess, Addr: v.Addr, Name: name})
	}
}

// rand16 draws a 16-byte random value from the deterministic source.
func (c *Controller) rand16() [16]byte {
	var v [16]byte
	for i := range v {
		v[i] = byte(c.sched.Rand().Intn(256))
	}
	return v
}

// handleLMP dispatches a peer PDU to the relevant state machine.
func (c *Controller) handleLMP(lk *link, payload any) {
	switch pdu := payload.(type) {
	case ConnAcceptPDU:
		if lk.state == linkPendingRemote {
			c.stopLMPTimer(lk)
			lk.state = linkOpen
			c.tr.SendEvent(&hci.ConnectionComplete{Status: hci.StatusSuccess, Handle: lk.handle, Addr: lk.peer, LinkType: hci.LinkTypeACL})
		}

	case DetachPDU:
		lk.phy.Close(c.port, detachError{pdu.Reason})
		c.dropLink(lk, pdu.Reason, true)

	case ACLPDU:
		if lk.state == linkOpen {
			data := pdu.Data
			if pdu.Encrypted {
				if !lk.encrypted {
					return // ciphertext on a link we have no key for
				}
				data = btcrypto.EncryptPayload(lk.encKey, c.masterAddr(lk), pdu.Clock, data)
			}
			c.tr.Send(hci.EncodeACL(hci.DirControllerToHost, lk.handle, data))
		}

	case AuRandPDU:
		c.onAuRand(lk, pdu)
	case SresPDU:
		c.onSres(lk, pdu)
	case NotAcceptedPDU:
		c.onNotAccepted(lk, pdu)

	case IOCapReqPDU:
		c.onIOCapReq(lk, pdu)
	case IOCapResPDU:
		c.onIOCapRes(lk, pdu)
	case PublicKeyPDU:
		c.onPublicKey(lk, pdu)
	case SSPConfirmPDU:
		c.onSSPConfirm(lk, pdu)
	case SSPNoncePDU:
		c.onSSPNonce(lk, pdu)
	case DHKeyCheckPDU:
		c.onDHKeyCheck(lk, pdu)
	case PasskeyCommitPDU:
		c.onPasskeyCommit(lk, pdu)
	case PasskeyNoncePDU:
		c.onPasskeyNonce(lk, pdu)

	case InRandPDU:
		c.onInRand(lk, pdu)
	case CombKeyPDU:
		c.onCombKey(lk, pdu)

	case EncStartPDU:
		c.onEncStart(lk, pdu)
	case EncAcceptPDU:
		c.onEncAccept(lk, pdu)
	}
}
