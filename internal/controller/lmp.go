package controller

import (
	"repro/internal/bt"
	"repro/internal/hci"
)

// LMP protocol data units exchanged between controllers over the simulated
// baseband link. They model the Link Manager Protocol messages the BLAP
// attacks interact with: the connection-setup accept, the E1
// challenge-response of LMP authentication, the SSP pairing exchange, and
// encryption start.

// ConnAcceptPDU completes connection establishment: the responder's host
// accepted the incoming connection, so both sides may raise
// HCI_Connection_Complete.
type ConnAcceptPDU struct {
	LTAddr bt.LTAddr
}

// DetachPDU tears down the link at the LMP level with an HCI reason code.
type DetachPDU struct {
	Reason hci.Status
}

// AuRandPDU is the verifier's authentication challenge.
type AuRandPDU struct {
	Rand [16]byte
}

// SresPDU is the claimant's E1 response to a challenge.
type SresPDU struct {
	Sres [4]byte
}

// NotAcceptedPDU rejects the previous PDU with a reason; Op names the
// rejected operation for diagnostics.
type NotAcceptedPDU struct {
	Op     string
	Reason hci.Status
}

// IOCapReqPDU opens the SSP IO capability exchange (pairing initiator to
// responder).
type IOCapReqPDU struct {
	Cap     bt.IOCapability
	OOB     bool
	AuthReq uint8
}

// IOCapResPDU answers the IO capability exchange (responder to initiator).
type IOCapResPDU struct {
	Cap     bt.IOCapability
	OOB     bool
	AuthReq uint8
}

// PublicKeyPDU carries an uncompressed P-256 public key during SSP.
type PublicKeyPDU struct {
	Pub []byte
}

// SSPConfirmPDU carries the responder's f1 commitment Cb.
type SSPConfirmPDU struct {
	C [16]byte
}

// SSPNoncePDU carries a stage-1 nonce (Na from initiator, Nb from
// responder).
type SSPNoncePDU struct {
	N [16]byte
}

// DHKeyCheckPDU carries an authentication stage 2 check value (f3 output).
type DHKeyCheckPDU struct {
	E [16]byte
}

// EncStartPDU requests link encryption; the random number feeds E3
// together with the current link key and the ACO from authentication.
// KeySize is the proposed encryption key size in bytes (1..16) — the LMP
// key size negotiation whose lax lower bound the KNOB attack exploits.
type EncStartPDU struct {
	Rand    [16]byte
	KeySize int
}

// EncAcceptPDU confirms encryption start with the agreed key size.
type EncAcceptPDU struct {
	KeySize int
}

// ACLPDU carries host ACL payload bytes across the link. When Encrypted
// is set, Data is E0 ciphertext and Clock is the per-packet clock input
// of the cipher (visible on the air, like the real piconet clock).
type ACLPDU struct {
	Data      []byte
	Encrypted bool
	Clock     uint32
}
