package controller

import (
	"repro/internal/bt"
	"repro/internal/btcrypto"
	"repro/internal/hci"
)

// Legacy (pre-SSP) PIN pairing: E22 derives an initialization key from
// the PIN, a public random number and the initiator's address; each side
// then contributes E21(rand, addr) to a combination key, exchanging its
// random masked with the initialization key. The paper's background
// section (§II-C) recalls why this scheme fell: a sniffed pairing is
// brute-forceable offline from the PIN space [14][15]. It is implemented
// here because several Table I systems still expose the flow when SSP is
// disabled, and because the legacy functions (E21/E22) are part of the
// controller substrate the paper's stack assumes.

// InRandPDU opens legacy pairing with the public initialization random.
type InRandPDU struct {
	Rand [16]byte
}

// CombKeyPDU carries one side's combination-key random, masked with the
// initialization key.
type CombKeyPDU struct {
	Masked [16]byte
}

type legacyState struct {
	initiator bool
	fromAuth  bool
	pin       []byte
	initRand  [16]byte
	kinit     [16]byte
	localRand [16]byte
	sentComb  bool
}

// startLegacyPairing begins PIN pairing as initiator.
func (c *Controller) startLegacyPairing(lk *link, fromAuth bool) {
	if lk.legacy != nil {
		return
	}
	lk.legacy = &legacyState{initiator: true, fromAuth: fromAuth}
	c.tr.SendEvent(&hci.PINCodeRequest{Addr: lk.peer})
}

// initiatorAddr returns the pairing initiator's BDADDR, the shared E22
// address input.
func (c *Controller) initiatorAddr(lk *link, initiator bool) [6]byte {
	if initiator {
		return [6]byte(c.cfg.Addr)
	}
	return [6]byte(lk.peer)
}

// hostPINCode handles HCI_PIN_Code_Request_Reply.
func (c *Controller) hostPINCode(addr bt.BDADDR, pin []byte) {
	lk := c.findByAddr(addr)
	if lk == nil || lk.legacy == nil || len(pin) == 0 {
		return
	}
	s := lk.legacy
	s.pin = append([]byte(nil), pin...)
	if s.initiator {
		s.initRand = c.rand16()
		s.kinit = btcrypto.E22(s.initRand, s.pin, c.initiatorAddr(lk, true))
		c.send(lk, InRandPDU{Rand: s.initRand}, true)
		return
	}
	// Responder: the initialization random already arrived; derive the
	// init key and answer with the masked combination random.
	s.kinit = btcrypto.E22(s.initRand, s.pin, c.initiatorAddr(lk, false))
	c.sendCombKey(lk)
}

// hostPINDenied handles HCI_PIN_Code_Request_Negative_Reply.
func (c *Controller) hostPINDenied(addr bt.BDADDR) {
	lk := c.findByAddr(addr)
	if lk == nil || lk.legacy == nil {
		return
	}
	c.legacyFail(lk, hci.StatusPairingNotAllowed, true)
}

// onInRand starts the responder side of legacy pairing.
func (c *Controller) onInRand(lk *link, pdu InRandPDU) {
	if lk.legacy != nil || lk.ssp != nil {
		return
	}
	lk.legacy = &legacyState{initiator: false, initRand: pdu.Rand}
	c.tr.SendEvent(&hci.PINCodeRequest{Addr: lk.peer})
}

func (c *Controller) sendCombKey(lk *link) {
	s := lk.legacy
	s.localRand = c.rand16()
	var masked [16]byte
	for i := range masked {
		masked[i] = s.localRand[i] ^ s.kinit[i]
	}
	s.sentComb = true
	// The responder sends first and awaits the initiator's contribution;
	// the initiator's comb key is the final message of the exchange.
	c.send(lk, CombKeyPDU{Masked: masked}, !s.initiator)
}

// onCombKey finishes the combination key exchange.
func (c *Controller) onCombKey(lk *link, pdu CombKeyPDU) {
	s := lk.legacy
	if s == nil || len(s.pin) == 0 {
		return
	}
	c.stopLMPTimer(lk)
	var peerRand [16]byte
	for i := range peerRand {
		peerRand[i] = pdu.Masked[i] ^ s.kinit[i]
	}
	// The initiator answers with its own contribution before completing.
	if s.initiator && !s.sentComb {
		c.sendCombKey(lk)
	}

	// K = E21(randInit, addrInit) XOR E21(randResp, addrResp).
	var initAddr, respAddr [6]byte
	var initRand, respRand [16]byte
	if s.initiator {
		initAddr, respAddr = [6]byte(c.cfg.Addr), [6]byte(lk.peer)
		initRand, respRand = s.localRand, peerRand
	} else {
		initAddr, respAddr = [6]byte(lk.peer), [6]byte(c.cfg.Addr)
		initRand, respRand = peerRand, s.localRand
	}
	ka := btcrypto.E21(initRand, initAddr)
	kb := btcrypto.E21(respRand, respAddr)
	var key bt.LinkKey
	for i := range key {
		key[i] = ka[i] ^ kb[i]
	}
	lk.currentKey = key
	lk.haveKey = true

	fromAuth := s.fromAuth
	initiator := s.initiator
	lk.legacy = nil
	c.tr.SendEvent(&hci.LinkKeyNotification{Addr: lk.peer, Key: key, KeyType: bt.KeyTypeCombination})

	if initiator && fromAuth {
		// Concluding mutual authentication with the fresh key; a PIN
		// mismatch surfaces here as an SRES mismatch.
		lk.auth = &authState{verifier: true, stage: authVerifierWaitSres, key: key, fromPairing: true, challenge: c.rand16()}
		c.send(lk, AuRandPDU{Rand: lk.auth.challenge}, true)
	}
}

// legacyFail aborts legacy pairing.
func (c *Controller) legacyFail(lk *link, reason hci.Status, tellPeer bool) {
	s := lk.legacy
	if s == nil {
		return
	}
	lk.legacy = nil
	c.stopLMPTimer(lk)
	if tellPeer {
		c.send(lk, NotAcceptedPDU{Op: "LMP_in_rand", Reason: reason}, false)
	}
	if s.fromAuth && s.initiator {
		c.tr.SendEvent(&hci.AuthenticationComplete{Status: reason, Handle: lk.handle})
	}
}
