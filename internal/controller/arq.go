package controller

import (
	"time"

	"repro/internal/radio"
	"repro/internal/sim"
)

// Baseband ARQ: every LMP/ACL payload travels in a BBFrame carrying a
// sequence number and a piggybacked cumulative acknowledgement, and each
// received data frame is answered with a pure BBAck. Lost or
// CRC-corrupted frames (dropped by the fault-injected medium) are
// retransmitted with a deterministically doubling timeout, a bounded
// number of times; receivers deliver strictly in order, absorb bounded
// reordering, and discard duplicates by sequence number. The scheme uses
// no randomness, so on a clean channel a run with ARQ is bit-identical
// to one without faults installed.
//
// When retransmissions exhaust, the frame is flushed — baseband gives
// up silently and the LMP response timer or the link supervision timer
// ends the link. That ordering is the point: a peer that stays
// radio-alive (keeps acking) but never answers an LMP challenge runs
// the LMP response timeout down and the link dies with
// StatusLMPResponseTimeout, not an authentication failure — the stall
// the extraction attack exploits. A peer that goes completely dark
// instead exhausts the supervision timer (StatusConnectionTimeout).

// BBFrame is the baseband envelope around every link payload.
type BBFrame struct {
	// Seq is the transmitter's sequence number, starting at 1.
	Seq uint32
	// Ack is cumulative: every sequence number below Ack has been
	// received in order by the transmitter of this frame.
	Ack uint32
	// Payload is the LMP PDU or ACLPDU being carried.
	Payload any
}

// BBAck is a pure acknowledgement. Acks are never acknowledged and
// never retransmitted.
type BBAck struct {
	Ack uint32
}

// UnwrapBB strips the baseband envelope from a sniffed link payload:
// it returns (inner, true) for a BBFrame, (nil, false) for a BBAck
// (no LMP content), and (payload, true) for anything else.
func UnwrapBB(payload any) (any, bool) {
	switch f := payload.(type) {
	case BBFrame:
		return f.Payload, true
	case BBAck:
		return nil, false
	default:
		return payload, true
	}
}

// Defaults for the ARQ knobs in Config.
const (
	DefaultARQRetransmitTimeout  = 50 * time.Millisecond
	DefaultARQMaxRetransmissions = 6
)

// arqReorderWindow bounds the out-of-order receive buffer: frames more
// than this many sequence numbers ahead of the next expected one are
// discarded and must be retransmitted.
const arqReorderWindow = 64

type arqPending struct {
	frame    BBFrame
	attempts int
	timer    *sim.Event
}

type arqState struct {
	nextSeq  uint32                 // last sequence number assigned
	pending  map[uint32]*arqPending // sent, not yet cumulatively acked
	expected uint32                 // next sequence number to deliver
	recvBuf  map[uint32]any         // bounded out-of-order buffer
}

func (st *arqState) init() {
	st.expected = 1
	st.pending = make(map[uint32]*arqPending)
	st.recvBuf = make(map[uint32]any)
}

// arqSend wraps a payload and transmits it with retransmission armed.
func (c *Controller) arqSend(lk *link, pdu any) {
	st := &lk.arq
	if st.pending == nil {
		st.init()
	}
	st.nextSeq++
	p := &arqPending{frame: BBFrame{Seq: st.nextSeq, Ack: st.expected, Payload: pdu}}
	st.pending[p.frame.Seq] = p
	c.arqTransmit(lk, p)
}

func (c *Controller) arqTransmit(lk *link, p *arqPending) {
	lk.phy.Send(c.port, p.frame)
	rto := c.cfg.ARQRetransmitTimeout << uint(p.attempts)
	p.timer = c.sched.Schedule(rto, func() { c.arqRetransmit(lk, p) })
}

func (c *Controller) arqRetransmit(lk *link, p *arqPending) {
	if _, live := c.links[lk.handle]; !live {
		return
	}
	if _, waiting := lk.arq.pending[p.frame.Seq]; !waiting {
		return
	}
	p.attempts++
	if p.attempts > c.cfg.ARQMaxRetransmissions {
		// Flush: baseband gives up on this frame. The LMP response
		// timer or supervision timer decides the link's fate.
		delete(lk.arq.pending, p.frame.Seq)
		return
	}
	p.frame.Ack = lk.arq.expected // refresh the piggybacked ack
	c.arqTransmit(lk, p)
}

// arqAcked processes a cumulative acknowledgement: everything below ack
// is delivered and stops being retransmitted.
func (c *Controller) arqAcked(lk *link, ack uint32) {
	for seq, p := range lk.arq.pending {
		if seq < ack {
			c.sched.Cancel(p.timer)
			delete(lk.arq.pending, seq)
		}
	}
}

// arqReceive handles an incoming data frame: dedup, bounded reorder,
// in-order delivery, and a pure ack back to the transmitter.
func (c *Controller) arqReceive(lk *link, f BBFrame) {
	st := &lk.arq
	if st.pending == nil {
		st.init()
	}
	if f.Seq < st.expected {
		// Duplicate of an already-delivered frame (our ack was lost):
		// re-ack so the peer stops retransmitting, deliver nothing.
		lk.phy.Send(c.port, BBAck{Ack: st.expected})
		return
	}
	if f.Seq >= st.expected+arqReorderWindow {
		// Beyond the bounded buffer; drop and force a retransmission.
		return
	}
	st.recvBuf[f.Seq] = f.Payload
	var deliver []any
	for {
		payload, ok := st.recvBuf[st.expected]
		if !ok {
			break
		}
		delete(st.recvBuf, st.expected)
		st.expected++
		deliver = append(deliver, payload)
	}
	lk.phy.Send(c.port, BBAck{Ack: st.expected})
	for _, payload := range deliver {
		if _, live := c.links[lk.handle]; !live {
			return // an earlier PDU tore the link down
		}
		c.handleLMP(lk, payload)
	}
}

// arqDrop cancels every outstanding retransmission for a dying link.
func (c *Controller) arqDrop(lk *link) {
	for seq, p := range lk.arq.pending {
		c.sched.Cancel(p.timer)
		delete(lk.arq.pending, seq)
	}
}

// ARQPendingFrames reports how many transmitted frames on the link to
// peer are still awaiting acknowledgement (testing/diagnostics).
func (c *Controller) ARQPendingFrames(peer radio.DeviceInfo) int {
	if lk := c.findByAddr(peer.Addr); lk != nil {
		return len(lk.arq.pending)
	}
	return 0
}
