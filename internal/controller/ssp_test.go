package controller

import (
	"testing"
	"time"

	"repro/internal/bt"
	"repro/internal/hci"
)

// scriptSSP wires a fake host to answer the SSP event sequence with the
// given capability and auto-confirmation.
func scriptSSP(h *fakeHost, cap bt.IOCapability, accept bool) {
	old := h.onEvent
	h.onEvent = func(e hci.Event) {
		if old != nil {
			old(e)
		}
		switch v := e.(type) {
		case *hci.LinkKeyRequest:
			h.tr.SendCommand(&hci.LinkKeyRequestNegativeReply{Addr: v.Addr})
		case *hci.IOCapabilityRequest:
			h.tr.SendCommand(&hci.IOCapabilityRequestReply{Addr: v.Addr, Capability: cap})
		case *hci.UserConfirmationRequest:
			if accept {
				h.tr.SendCommand(&hci.UserConfirmationRequestReply{Addr: v.Addr})
			} else {
				h.tr.SendCommand(&hci.UserConfirmationRequestNegativeReply{Addr: v.Addr})
			}
		}
	}
}

func lastKey(h *fakeHost) (bt.LinkKey, bt.LinkKeyType, bool) {
	for i := len(h.events) - 1; i >= 0; i-- {
		if n, ok := h.events[i].(*hci.LinkKeyNotification); ok {
			return n.Key, n.KeyType, true
		}
	}
	return bt.LinkKey{}, 0, false
}

func TestSSPJustWorksAtControllerLevel(t *testing.T) {
	r := newRig(40, Config{}, Config{})
	handle := r.connect(t)
	scriptSSP(r.ha, bt.DisplayYesNo, true)
	scriptSSP(r.hb, bt.NoInputNoOutput, true)

	r.ha.tr.SendCommand(&hci.AuthenticationRequested{Handle: handle})
	r.s.RunFor(10 * time.Second)

	acs := r.ha.eventsOf(hci.EvAuthenticationComplete)
	if len(acs) != 1 || acs[0].(*hci.AuthenticationComplete).Status != hci.StatusSuccess {
		t.Fatalf("auth outcome: %+v", acs)
	}
	ka, ta, okA := lastKey(r.ha)
	kb, tb, okB := lastKey(r.hb)
	if !okA || !okB || ka != kb {
		t.Fatalf("link key notifications: %v/%v %s/%s", okA, okB, ka, kb)
	}
	if ta != bt.KeyTypeUnauthenticatedP256 || tb != ta {
		t.Fatalf("key types: %s %s", ta, tb)
	}
	// Both sides observed a Simple_Pairing_Complete success.
	for name, h := range map[string]*fakeHost{"A": r.ha, "B": r.hb} {
		spc := h.eventsOf(hci.EvSimplePairingComplete)
		if len(spc) != 1 || spc[0].(*hci.SimplePairingComplete).Status != hci.StatusSuccess {
			t.Fatalf("%s pairing complete: %+v", name, spc)
		}
	}
}

func TestSSPNumericComparisonValueAgreement(t *testing.T) {
	r := newRig(41, Config{}, Config{})
	handle := r.connect(t)
	scriptSSP(r.ha, bt.DisplayYesNo, true)
	scriptSSP(r.hb, bt.DisplayYesNo, true)

	r.ha.tr.SendCommand(&hci.AuthenticationRequested{Handle: handle})
	r.s.RunFor(10 * time.Second)

	var va, vb []uint32
	for _, e := range r.ha.eventsOf(hci.EvUserConfirmationRequest) {
		va = append(va, e.(*hci.UserConfirmationRequest).NumericValue)
	}
	for _, e := range r.hb.eventsOf(hci.EvUserConfirmationRequest) {
		vb = append(vb, e.(*hci.UserConfirmationRequest).NumericValue)
	}
	if len(va) != 1 || len(vb) != 1 {
		t.Fatalf("confirmation requests: %v %v", va, vb)
	}
	if va[0] != vb[0] {
		t.Fatalf("numeric values disagree: %d vs %d (g mismatch)", va[0], vb[0])
	}
	if va[0] >= 1_000_000 {
		t.Fatalf("value not six digits: %d", va[0])
	}
}

func TestSSPRejectionBySide(t *testing.T) {
	for _, rejector := range []string{"initiator", "responder"} {
		r := newRig(42, Config{}, Config{})
		handle := r.connect(t)
		scriptSSP(r.ha, bt.DisplayYesNo, rejector != "initiator")
		scriptSSP(r.hb, bt.DisplayYesNo, rejector != "responder")

		r.ha.tr.SendCommand(&hci.AuthenticationRequested{Handle: handle})
		r.s.RunFor(10 * time.Second)

		acs := r.ha.eventsOf(hci.EvAuthenticationComplete)
		if len(acs) != 1 || acs[0].(*hci.AuthenticationComplete).Status == hci.StatusSuccess {
			t.Fatalf("%s rejection: auth outcome %+v", rejector, acs)
		}
		if _, _, ok := lastKey(r.ha); ok {
			t.Fatalf("%s rejection: a key was still derived", rejector)
		}
	}
}

func TestSSPPasskeyAtControllerLevel(t *testing.T) {
	r := newRig(43, Config{}, Config{})
	handle := r.connect(t)
	// A is the keyboard, B displays. Script B to expose the displayed
	// passkey and A to type whatever B displayed.
	var displayed uint32
	oldB := r.hb.onEvent
	r.hb.onEvent = func(e hci.Event) {
		oldB(e)
		switch v := e.(type) {
		case *hci.LinkKeyRequest:
			r.hb.tr.SendCommand(&hci.LinkKeyRequestNegativeReply{Addr: v.Addr})
		case *hci.IOCapabilityRequest:
			r.hb.tr.SendCommand(&hci.IOCapabilityRequestReply{Addr: v.Addr, Capability: bt.DisplayYesNo})
		case *hci.UserPasskeyNotification:
			displayed = v.Passkey
		}
	}
	r.ha.onEvent = func(e hci.Event) {
		switch v := e.(type) {
		case *hci.LinkKeyRequest:
			r.ha.tr.SendCommand(&hci.LinkKeyRequestNegativeReply{Addr: v.Addr})
		case *hci.IOCapabilityRequest:
			r.ha.tr.SendCommand(&hci.IOCapabilityRequestReply{Addr: v.Addr, Capability: bt.KeyboardOnly})
		case *hci.UserPasskeyRequest:
			// Type after a short delay, once B has displayed.
			r.s.Schedule(100*time.Millisecond, func() {
				r.ha.tr.SendCommand(&hci.UserPasskeyRequestReply{Addr: v.Addr, Passkey: displayed})
			})
		}
	}

	r.ha.tr.SendCommand(&hci.AuthenticationRequested{Handle: handle})
	r.s.RunFor(30 * time.Second)

	acs := r.ha.eventsOf(hci.EvAuthenticationComplete)
	if len(acs) != 1 || acs[0].(*hci.AuthenticationComplete).Status != hci.StatusSuccess {
		t.Fatalf("passkey auth outcome: %+v", acs)
	}
	_, keyType, ok := lastKey(r.ha)
	if !ok || keyType != bt.KeyTypeAuthenticatedP256 {
		t.Fatalf("passkey entry must yield an authenticated key: %v %s", ok, keyType)
	}
	if displayed >= 1_000_000 {
		t.Fatalf("displayed passkey out of range: %d", displayed)
	}
}

func TestLegacyPairingAtControllerLevel(t *testing.T) {
	// Controllers with SSP disabled fall back to PIN pairing.
	r := newRig(44, Config{}, Config{})
	r.ha.tr.SendCommand(&hci.WriteSimplePairingMode{Enabled: false})
	r.hb.tr.SendCommand(&hci.WriteSimplePairingMode{Enabled: false})
	r.s.Run(0)
	handle := r.connect(t)

	pinScript := func(h *fakeHost, pin string) {
		old := h.onEvent
		h.onEvent = func(e hci.Event) {
			if old != nil {
				old(e)
			}
			switch v := e.(type) {
			case *hci.LinkKeyRequest:
				h.tr.SendCommand(&hci.LinkKeyRequestNegativeReply{Addr: v.Addr})
			case *hci.PINCodeRequest:
				h.tr.SendCommand(&hci.PINCodeRequestReply{Addr: v.Addr, PIN: []byte(pin)})
			}
		}
	}
	pinScript(r.ha, "0000")
	pinScript(r.hb, "0000")

	r.ha.tr.SendCommand(&hci.AuthenticationRequested{Handle: handle})
	r.s.RunFor(10 * time.Second)

	acs := r.ha.eventsOf(hci.EvAuthenticationComplete)
	if len(acs) != 1 || acs[0].(*hci.AuthenticationComplete).Status != hci.StatusSuccess {
		t.Fatalf("legacy auth outcome: %+v", acs)
	}
	ka, ta, okA := lastKey(r.ha)
	kb, _, okB := lastKey(r.hb)
	if !okA || !okB || ka != kb {
		t.Fatal("combination keys disagree")
	}
	if ta != bt.KeyTypeCombination {
		t.Fatalf("key type %s, want Combination", ta)
	}
}

func TestControllerDetachDropsLinks(t *testing.T) {
	r := newRig(45, Config{}, Config{})
	_ = r.connect(t)
	if got := r.ca.Addr(); got != addrA {
		t.Fatalf("Addr: %s", got)
	}
	r.ca.SetCOD(bt.CODHeadset)
	if r.ca.Info().COD != bt.CODHeadset {
		t.Fatal("SetCOD")
	}
	r.cb.Detach()
	r.s.RunFor(2 * time.Second)
	dcs := r.ha.eventsOf(hci.EvDisconnectionComplete)
	if len(dcs) != 1 {
		t.Fatalf("peer detach should drop the link: %+v", dcs)
	}
}
