package core

import (
	"bytes"
	"testing"

	"repro/internal/device"
	"repro/internal/host"
)

// TestStealtoothSilentRepair: impersonating the bonded phone toward the
// accessory and failing its challenge with "PIN or Key Missing" makes
// the accessory silently re-pair — no dialog, new key, attacker inside.
func TestStealtoothSilentRepair(t *testing.T) {
	tb, err := NewTestbed(7, TestbedOptions{Bond: true, ClientPlatform: device.AndroidAutomotive})
	if err != nil {
		t.Fatal(err)
	}
	rep := RunStealtooth(tb.Sched, StealtoothConfig{
		Attacker: tb.A, Client: tb.C,
		VictimAddr: tb.M.Addr(), VictimCOD: tb.M.Platform.COD,
		OriginalKey: tb.BondKey,
	})
	if !rep.RePaired || !rep.KeyChanged {
		t.Fatalf("silent re-pairing failed: %+v", rep)
	}
	if rep.NewKey == tb.BondKey {
		t.Fatal("key did not change")
	}
}

// TestHappyMitMKeyReplacement: with the silent bonded re-pair policy the
// victim's phone swaps the accessory's key for the attacker's without a
// single dialog; without the policy the unexpected dialog stops it.
func TestHappyMitMKeyReplacement(t *testing.T) {
	tb, err := NewTestbed(7, TestbedOptions{Bond: true, VictimSilentBondedRepair: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := RunHappyMitM(tb.Sched, HappyMitMConfig{
		Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
		OriginalKey: tb.BondKey,
	})
	if !rep.Reconnected {
		t.Fatalf("legitimate reconnect failed: %+v", rep)
	}
	if !rep.KeyReplaced {
		t.Fatalf("key not replaced: %+v", rep)
	}
	if rep.AttackPrompts != 0 {
		t.Fatalf("attack showed %d prompts, want 0", rep.AttackPrompts)
	}

	// Control: a host that still asks its user survives — the dialog is
	// unexpected and the simulated user rejects it.
	tb2, err := NewTestbed(7, TestbedOptions{Bond: true})
	if err != nil {
		t.Fatal(err)
	}
	rep2 := RunHappyMitM(tb2.Sched, HappyMitMConfig{
		Attacker: tb2.A, Client: tb2.C, Victim: tb2.M, VictimUser: tb2.MUser,
		OriginalKey: tb2.BondKey,
	})
	if rep2.KeyReplaced {
		t.Fatalf("attack succeeded despite the dialog: %+v", rep2)
	}
}

// TestBLURtoothDowngrade: an authenticated pairing's CTKD-derived LTK is
// silently replaced by one derived from the attacker's unauthenticated
// Just Works key.
func TestBLURtoothDowngrade(t *testing.T) {
	tb, err := NewTestbed(7, TestbedOptions{
		ClientPlatform:           device.GalaxyS21Android11,
		VictimCTKD:               true,
		VictimSilentBondedRepair: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := RunBLURtooth(tb.Sched, BLURtoothConfig{
		Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
	})
	if !rep.LegitPaired || !rep.LTKWasAuthenticated {
		t.Fatalf("authenticated setup pairing failed: %+v", rep)
	}
	if !rep.Downgraded || rep.NewLTKAuthenticated {
		t.Fatalf("cross-transport downgrade failed: %+v", rep)
	}
}

// TestOOBMITMTamperedTag: a tampered NFC tag turns OOB pairing into a
// silent, "authenticated" MITM.
func TestOOBMITMTamperedTag(t *testing.T) {
	tb, err := NewTestbed(7, TestbedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep := RunOOBMITM(tb.Sched, OOBMITMConfig{Attacker: tb.A, Client: tb.C, Victim: tb.M})
	if !rep.PayloadsInstalled || !rep.MITMEstablished {
		t.Fatalf("OOB MITM failed: %+v", rep)
	}
	if !rep.KeyAuthenticated {
		t.Fatalf("OOB key should claim authentication: %+v", rep)
	}
}

// passkeyWorld builds the fixed-passkey testbed with a sniffer attached
// before any pairing traffic.
func passkeyWorld(t *testing.T, seed int64, enhanced bool) (*Testbed, *AirSniffer, uint32) {
	t.Helper()
	printed := uint32(428571)
	tb, err := NewTestbed(seed, TestbedOptions{
		ClientFixedPasskey: &printed,
		EnhancedPasskey:    enhanced,
	})
	if err != nil {
		t.Fatal(err)
	}
	sniffer := NewAirSniffer(tb.Medium)
	tb.MUser.TypedPasskey = &printed
	return tb, sniffer, printed
}

// TestPasskeySniffAttack: one sniffed session against a printed-label
// accessory yields the passkey, and the replay impersonation succeeds.
func TestPasskeySniffAttack(t *testing.T) {
	tb, sniffer, printed := passkeyWorld(t, 7, false)
	rep := RunPasskeySniff(tb.Sched, PasskeySniffConfig{
		Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
		Sniffer: sniffer, PrintedPasskey: printed,
	})
	if !rep.LegitPaired {
		t.Fatalf("legitimate passkey pairing failed: %+v", rep)
	}
	if !rep.Recovered || !rep.RecoveryCorrect {
		t.Fatalf("passkey recovery failed: %+v", rep)
	}
	if !rep.Impersonated {
		t.Fatalf("replay impersonation failed: %+v", rep)
	}
}

// TestPasskeyGuardMitigation: with the enhanced protocol the sniffer's
// reconstruction is DH-blinded and the impersonation fails — while the
// legitimate enhanced pairing still completes.
func TestPasskeyGuardMitigation(t *testing.T) {
	tb, sniffer, printed := passkeyWorld(t, 7, true)
	rep := RunPasskeySniff(tb.Sched, PasskeySniffConfig{
		Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
		Sniffer: sniffer, PrintedPasskey: printed,
	})
	if !rep.LegitPaired {
		t.Fatalf("legitimate enhanced pairing failed: %+v", rep)
	}
	if rep.RecoveryCorrect {
		t.Fatalf("enhanced protocol leaked the passkey: %+v", rep)
	}
	if rep.Impersonated {
		t.Fatalf("impersonation succeeded despite mitigation: %+v", rep)
	}
}

// dumpBytes pulls a device's snoop log, tolerating absent captures.
func dumpBytes(t *testing.T, d *device.Device) []byte {
	t.Helper()
	if d.Snoop == nil {
		return nil
	}
	data, err := d.PullSnoopLog()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestAttackScenarioDeterminism runs every new scenario twice from the
// same seed and requires byte-identical victim-side captures.
func TestAttackScenarioDeterminism(t *testing.T) {
	type run struct {
		name string
		do   func(seed int64) []byte
	}
	runs := []run{
		{"stealtooth", func(seed int64) []byte {
			tb, err := NewTestbed(seed, TestbedOptions{Bond: true, ClientPlatform: device.AndroidAutomotive})
			if err != nil {
				t.Fatal(err)
			}
			RunStealtooth(tb.Sched, StealtoothConfig{
				Attacker: tb.A, Client: tb.C,
				VictimAddr: tb.M.Addr(), VictimCOD: tb.M.Platform.COD,
				OriginalKey: tb.BondKey,
			})
			return dumpBytes(t, tb.C)
		}},
		{"happy-mitm", func(seed int64) []byte {
			tb, err := NewTestbed(seed, TestbedOptions{Bond: true, VictimSilentBondedRepair: true})
			if err != nil {
				t.Fatal(err)
			}
			RunHappyMitM(tb.Sched, HappyMitMConfig{
				Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
				OriginalKey: tb.BondKey,
			})
			return dumpBytes(t, tb.M)
		}},
		{"blurtooth", func(seed int64) []byte {
			tb, err := NewTestbed(seed, TestbedOptions{
				ClientPlatform:           device.GalaxyS21Android11,
				VictimCTKD:               true,
				VictimSilentBondedRepair: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			RunBLURtooth(tb.Sched, BLURtoothConfig{
				Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
			})
			return dumpBytes(t, tb.M)
		}},
		{"oob-mitm", func(seed int64) []byte {
			tb, err := NewTestbed(seed, TestbedOptions{})
			if err != nil {
				t.Fatal(err)
			}
			RunOOBMITM(tb.Sched, OOBMITMConfig{Attacker: tb.A, Client: tb.C, Victim: tb.M})
			return dumpBytes(t, tb.M)
		}},
		{"passkey-sniff", func(seed int64) []byte {
			printed := uint32(428571)
			tb, err := NewTestbed(seed, TestbedOptions{ClientFixedPasskey: &printed})
			if err != nil {
				t.Fatal(err)
			}
			sniffer := NewAirSniffer(tb.Medium)
			tb.MUser.TypedPasskey = &printed
			RunPasskeySniff(tb.Sched, PasskeySniffConfig{
				Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
				Sniffer: sniffer, PrintedPasskey: printed,
			})
			return dumpBytes(t, tb.M)
		}},
		{"passkey-guard", func(seed int64) []byte {
			printed := uint32(428571)
			tb, err := NewTestbed(seed, TestbedOptions{ClientFixedPasskey: &printed, EnhancedPasskey: true})
			if err != nil {
				t.Fatal(err)
			}
			sniffer := NewAirSniffer(tb.Medium)
			tb.MUser.TypedPasskey = &printed
			RunPasskeySniff(tb.Sched, PasskeySniffConfig{
				Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
				Sniffer: sniffer, PrintedPasskey: printed,
			})
			return dumpBytes(t, tb.M)
		}},
	}
	for _, r := range runs {
		t.Run(r.name, func(t *testing.T) {
			first := r.do(99)
			second := r.do(99)
			if len(first) == 0 {
				t.Fatal("empty capture")
			}
			if !bytes.Equal(first, second) {
				t.Fatalf("capture differs between identical runs (%d vs %d bytes)", len(first), len(second))
			}
		})
	}
}

var _ = host.DeriveLTK // keep the host import tied to the scenario layer
