package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/host"
)

// sendSecretOverEncryptedLink has M reconnect to C with the stored key,
// turn on encryption, and push the secret payload.
func sendSecretOverEncryptedLink(t *testing.T, tb *Testbed, secret []byte) {
	t.Helper()
	done := false
	tb.M.Host.Pair(tb.C.Addr(), func(err error) {
		if err != nil {
			t.Fatalf("reconnect: %v", err)
		}
		conn := tb.M.Host.Connection(tb.C.Addr())
		tb.M.Host.Encrypt(conn, func(err error) {
			if err != nil {
				t.Fatalf("encrypt: %v", err)
			}
			tb.M.Host.SendData(conn, secret)
			done = true
		})
	})
	tb.Sched.RunFor(10 * time.Second)
	if !done {
		t.Fatal("secret transfer never completed")
	}
	if len(tb.C.Host.ReceivedData) != 1 || !bytes.Equal(tb.C.Host.ReceivedData[0], secret) {
		t.Fatalf("peer did not receive the secret: %v", tb.C.Host.ReceivedData)
	}
}

func TestEavesdropperDecryptsPastTrafficWithExtractedKey(t *testing.T) {
	tb := mustTestbed(t, 50, TestbedOptions{
		ClientPlatform: device.GalaxyS21Android11,
		Bond:           true,
	})
	sniffer := NewAirSniffer(tb.Medium)

	secret := []byte("PBAP: +82-10-1234-5678 Dr. Kim")
	sendSecretOverEncryptedLink(t, tb, secret)
	tb.M.Host.Disconnect(tb.C.Addr())
	tb.Sched.RunFor(time.Second)

	if sniffer.EncryptedFrames() == 0 {
		t.Fatal("no encrypted frames were captured")
	}
	// Without the key, the ciphertext must not contain the secret.
	for _, f := range sniffer.Frames() {
		if pdu, ok := f.Payload.(interface{ GetData() []byte }); ok {
			_ = pdu
		}
	}
	wrong := tb.BondKey
	wrong[0] ^= 1
	for _, rec := range NewDecryptCheck(sniffer, wrong) {
		if rec.WasEncrypted && bytes.Contains(rec.Data, secret) {
			t.Fatal("wrong key should not reveal the secret")
		}
	}

	// Now run the extraction attack and decrypt the PAST capture.
	rep, err := RunLinkKeyExtraction(tb.Sched, LinkKeyExtractionConfig{
		Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: ChannelHCISnoop,
	})
	if err != nil {
		t.Fatalf("extraction: %v", err)
	}
	recovered := sniffer.DecryptWithKey(rep.Key)
	var found bool
	for _, rec := range recovered {
		if rec.WasEncrypted && bytes.Contains(rec.Data, secret) {
			found = true
		}
	}
	if !found {
		t.Fatalf("extracted key failed to decrypt the sniffed secret (%d recovered payloads)", len(recovered))
	}
}

// NewDecryptCheck is a test helper: decrypt with an arbitrary key.
func NewDecryptCheck(s *AirSniffer, key [16]byte) []RecoveredPayload {
	return s.DecryptWithKey(key)
}

func TestNegotiatedKeySizeReachesCipher(t *testing.T) {
	// A client controller restricted to a 1-byte key still interoperates
	// (pre-KNOB spec behaviour), and the eavesdropper honours the sniffed
	// key size.
	tb, err := NewTestbed(51, TestbedOptions{
		ClientPlatform: device.GalaxyS21Android11,
		Bond:           true,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = tb
	s, err := NewKNOBWorld(52, 1)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("low entropy session")
	sendSecretOverEncryptedLink(t, s.Testbed, secret)

	// Brute force: 256 candidate shrunk keys, no link key needed.
	plain, tried, ok := s.BruteForce(secret[:4])
	if !ok {
		t.Fatalf("1-byte key space must fall to brute force (tried %d)", tried)
	}
	if !bytes.Contains(plain, secret) {
		t.Fatalf("brute-forced plaintext wrong: %q", plain)
	}
	if tried > 256 {
		t.Fatalf("tried %d > 256 candidates", tried)
	}
}

func TestHardenedMinKeySizeRefusesWeakEncryption(t *testing.T) {
	// A hardened victim (min key size 7) must refuse a 1-byte proposal.
	s, err := NewKNOBWorldHardened(53, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	var encErr error
	s.Testbed.M.Host.Pair(s.Testbed.C.Addr(), func(err error) {
		if err != nil {
			t.Fatalf("reconnect: %v", err)
		}
		conn := s.Testbed.M.Host.Connection(s.Testbed.C.Addr())
		s.Testbed.M.Host.Encrypt(conn, func(err error) { encErr = err; done = true })
	})
	s.Testbed.Sched.RunFor(40 * time.Second)
	if !done {
		t.Fatal("encryption negotiation never resolved")
	}
	if encErr == nil {
		t.Fatal("hardened stack accepted a 1-byte encryption key")
	}
	_ = host.UUIDNAP
}
