package core

import (
	"testing"

	"repro/internal/device"
	"repro/internal/snoop"
)

// TestPageBlockingIPhoneAnalyzedFromAttackerDump mirrors the paper's
// iPhone methodology: iOS provides no HCI dump, so the attack is
// confirmed from the attacker's own log — which must show the mirror
// signature: A initiated the connection (HCI_Create_Connection) but the
// *peer* initiated the pairing (IO capability request arrives with no
// local HCI_Authentication_Requested).
func TestPageBlockingIPhoneAnalyzedFromAttackerDump(t *testing.T) {
	tb := mustTestbed(t, 95, TestbedOptions{VictimPlatform: device.IPhoneXsIOS14})
	if tb.M.Snoop != nil {
		t.Fatal("the iPhone must not have a snoop log")
	}
	rep := RunPageBlocking(tb.Sched, PageBlockingConfig{
		Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
		UsePLOC: true,
	})
	if !rep.MITMEstablished {
		t.Fatalf("attack failed against the iPhone: %+v", rep)
	}

	names := snoop.CommandEventNames(snoop.Summarize(tb.A.Snoop.Records()))
	has := func(want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	if !has("HCI_Create_Connection") {
		t.Fatalf("attacker dump lacks the self-initiated connection: %v", names)
	}
	if !has("HCI_IO_Capability_Request") {
		t.Fatalf("attacker dump lacks the peer-initiated pairing: %v", names)
	}
	if has("HCI_Authentication_Requested") {
		t.Fatalf("the attacker never initiates the pairing under PLOC: %v", names)
	}
}

// TestRandomizedKeyMitigationPoisonsExtraction exercises §VII-A's second
// option: the dump keeps a key-shaped field but with scrambled contents.
// The extractor "succeeds" — and the stolen value then fails the
// impersonation validation.
func TestRandomizedKeyMitigationPoisonsExtraction(t *testing.T) {
	tb := mustTestbed(t, 96, TestbedOptions{
		ClientPlatform: device.GalaxyS21Android11,
		Bond:           true,
	})
	tb.C.Snoop.Filter = snoop.RandomizeLinkKeyFilter

	rep, err := RunLinkKeyExtraction(tb.Sched, LinkKeyExtractionConfig{
		Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: ChannelHCISnoop,
	})
	if err != nil {
		t.Fatalf("extraction should still find a (decoy) key: %v", err)
	}
	if rep.Key == tb.BondKey {
		t.Fatal("the mitigation failed to scramble the key")
	}

	imp := RunImpersonation(tb.Sched, ImpersonationConfig{
		Attacker: tb.A, Victim: tb.M, ClientAddr: tb.C.Addr(), Key: rep.Key,
	})
	if imp.Success || imp.AuthSucceeded {
		t.Fatalf("the decoy key must fail impersonation: %+v", imp)
	}
}
