package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/host"
)

// GAP security-surface probes (the paper's §VII-B observation: the spec
// lets anyone connect and browse SDP *without* any authentication, which
// is exactly why a connection initiator cannot be assumed to be a pairing
// initiator).

func TestSDPBrowsableWithoutAuthentication(t *testing.T) {
	tb := mustTestbed(t, 97, TestbedOptions{})
	// A connects to M with no pairing at all and queries SDP.
	var conn *host.Conn
	tb.A.Host.Connect(tb.M.Addr(), func(c *host.Conn, err error) {
		if err != nil {
			t.Errorf("bare connect: %v", err)
		}
		conn = c
	})
	tb.Sched.RunFor(2 * time.Second)
	if conn == nil {
		t.Fatal("no connection")
	}

	var hasNAP, hasHFP bool
	done := 0
	tb.A.Host.QueryService(conn, host.UUIDNAP, func(has bool, err error) {
		if err != nil {
			t.Errorf("SDP query: %v", err)
		}
		hasNAP = has
		done++
	})
	tb.A.Host.QueryService(conn, host.UUIDHandsFree, func(has bool, err error) {
		hasHFP = has
		done++
	})
	tb.Sched.RunFor(2 * time.Second)
	if done != 2 {
		t.Fatal("queries never resolved")
	}
	if !hasNAP {
		t.Error("the phone advertises NAP; SDP must answer without authentication")
	}
	if hasHFP {
		t.Error("the phone does not advertise hands-free")
	}
	if conn.Authenticated || conn.Encrypted {
		t.Error("the probe link must remain unauthenticated")
	}
}

func TestProfileOpenRefusedWithoutEncryption(t *testing.T) {
	// BIAS-style probe: skip authentication entirely and try to open the
	// tethering profile directly. GAP enforcement on the serving side
	// must refuse it.
	tb := mustTestbed(t, 98, TestbedOptions{})
	var conn *host.Conn
	tb.A.Host.Connect(tb.M.Addr(), func(c *host.Conn, _ error) { conn = c })
	tb.Sched.RunFor(2 * time.Second)
	if conn == nil {
		t.Fatal("no connection")
	}

	var openErr error
	resolved := false
	tb.A.Host.OpenProfileRaw(conn, host.UUIDNAP, func(err error) { openErr = err; resolved = true })
	tb.Sched.RunFor(2 * time.Second)
	if !resolved {
		t.Fatal("raw open never resolved")
	}
	if openErr == nil {
		t.Fatal("unauthenticated profile open must be refused")
	}
	if !errors.Is(openErr, host.ErrServiceNotFound) {
		t.Fatalf("refusal should be indistinguishable from absence: %v", openErr)
	}
}

func TestProfileOpenAllowedAfterFullSecurity(t *testing.T) {
	// The same open succeeds once the link is authenticated + encrypted
	// with a legitimate bond.
	tb := mustTestbed(t, 99, TestbedOptions{Bond: true})
	done := false
	var err error
	tb.M.Host.ConnectProfile(tb.C.Addr(), host.UUIDHandsFree, func(e error) { err = e; done = true })
	tb.Sched.RunFor(20 * time.Second)
	if !done || err != nil {
		t.Fatalf("secured profile connect: done=%v err=%v", done, err)
	}
}
