package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bt"
	"repro/internal/device"
	"repro/internal/hci"
	"repro/internal/host"
	"repro/internal/sim"
	"repro/internal/snoop"
	"repro/internal/usbsniff"
)

// ExtractionChannel selects how HCI data leaves the victim accessory.
type ExtractionChannel int

// Extraction channels (§IV-A and §IV-B).
const (
	// ChannelHCISnoop pulls the accessory's btsnoop log (Android snoop
	// log / bluez-hcidump).
	ChannelHCISnoop ExtractionChannel = iota
	// ChannelUSBSniff captures the accessory's USB HCI transport with a
	// bus analyzer and runs the hex-pattern extraction of Fig. 11.
	ChannelUSBSniff
)

func (c ExtractionChannel) String() string {
	if c == ChannelUSBSniff {
		return "USB sniff"
	}
	return "HCI dump"
}

// Extraction errors.
var (
	ErrNoCapture   = errors.New("core: victim has no capture surface for the requested channel")
	ErrNoBond      = errors.New("core: client is not bonded with the target")
	ErrKeyNotFound = errors.New("core: no link key found in capture")
)

// LinkKeyExtractionConfig parameterizes the Fig. 5 attack run.
type LinkKeyExtractionConfig struct {
	// Attacker is device A. Its host must run with the
	// IgnoreLinkKeyRequest hook (the Fig. 9 patch); RunLinkKeyExtraction
	// installs it if missing.
	Attacker *device.Device
	// Client is device C, the soft-target accessory that shares a bonded
	// link key with the hard target M.
	Client *device.Device
	// Target is M's BDADDR — the identity A spoofs and the bond whose key
	// is being stolen.
	Target bt.BDADDR
	// TargetCOD is M's class of device for the spoof; defaults to mobile
	// phone.
	TargetCOD bt.ClassOfDevice
	// Channel selects the leakage path.
	Channel ExtractionChannel
	// SettleTime bounds the wait for the timeout-driven disconnect after
	// the stalled authentication; defaults to the attacker controller's
	// LMP response timeout plus slack.
	SettleTime time.Duration
	// Backoff shapes the attacker's paging retries on a lossy channel
	// (zero value: DefaultBackoff). The retry path is the only part that
	// draws randomness, so clean-channel runs are unaffected.
	Backoff BackoffPolicy
}

// LinkKeyExtractionReport is the outcome of one extraction run.
type LinkKeyExtractionReport struct {
	Channel ExtractionChannel
	// Key is the extracted 128-bit link key.
	Key bt.LinkKey
	// Found reports whether any key for Target was recovered.
	Found bool
	// KeysInCapture counts every link key occurrence in the capture.
	KeysInCapture int
	// CaptureBytes is the size of the pulled dump / sniffed stream.
	CaptureBytes int
	// DisconnectReason is what the client observed when the stalled
	// authentication ended; the attack requires LMP Response Timeout (not
	// Authentication Failure).
	DisconnectReason hci.Status
	// ClientKeptBond reports that C still holds the bonded key afterwards
	// (forward secrecy broken without alerting the victim).
	ClientKeptBond bool
	// Elapsed is virtual time consumed by the attack.
	Elapsed time.Duration
}

// RunLinkKeyExtraction executes the seven-step link key extraction attack
// of Fig. 5 in the given scheduler's world and returns the report. The
// scheduler is advanced as needed.
func RunLinkKeyExtraction(s *sim.Scheduler, cfg LinkKeyExtractionConfig) (LinkKeyExtractionReport, error) {
	rep := LinkKeyExtractionReport{Channel: cfg.Channel}
	start := s.Now()

	a, c := cfg.Attacker, cfg.Client
	if c.Host.Bonds().Get(cfg.Target) == nil {
		return rep, fmt.Errorf("%w: %s has no bond for %s", ErrNoBond, c.Name, cfg.Target)
	}
	switch cfg.Channel {
	case ChannelHCISnoop:
		if c.Snoop == nil {
			return rep, fmt.Errorf("%w: %s lacks an HCI dump", ErrNoCapture, c.Name)
		}
	case ChannelUSBSniff:
		if c.USB == nil {
			return rep, fmt.Errorf("%w: %s has no sniffed USB transport", ErrNoCapture, c.Name)
		}
	}

	// Step 1 is the capture surface itself (snoop enabled / analyzer
	// attached at device assembly).

	// Step 2: spoof M's identity.
	cod := cfg.TargetCOD
	if cod == 0 {
		cod = bt.CODMobilePhone
	}
	a.SpoofIdentity(cfg.Target, cod)

	// Step 5's stall is the Fig. 9 patch: never answer the controller's
	// link key request.
	hooks := a.Host.Hooks()
	hooks.IgnoreLinkKeyRequest = true
	a.Host.SetHooks(hooks)

	// Step 3: connect to C; C authenticates the returning "M", asking its
	// host for the bonded key — which the capture records (step 4). On a
	// degraded channel the page train itself can be lost, so the attacker
	// retries with exponential backoff.
	connectDone := false
	var connectErr error
	RetryingConnect(s, a.Host, c.Addr(), cfg.Backoff, func(_ *host.Conn, err error) { connectErr = err; connectDone = true })

	settle := cfg.SettleTime
	if settle <= 0 {
		settle = 40 * time.Second // LMP response timeout (30 s) plus slack
	}
	// Advance time until the stalled authentication ends in the client's
	// timeout-driven disconnect (or the settle budget runs out).
	deadline := s.Now() + settle
	dropped := func() bool {
		for _, d := range c.Host.Disconnects {
			if d.Addr == cfg.Target && d.At >= start {
				rep.DisconnectReason = d.Reason
				return true
			}
		}
		return false
	}
	for s.Now() < deadline && !dropped() {
		s.RunFor(500 * time.Millisecond)
	}
	if !connectDone {
		return rep, fmt.Errorf("%w: connection to client never completed", ErrChannelFault)
	}
	if connectErr != nil {
		return rep, fmt.Errorf("core: connecting to client: %w", connectErr)
	}
	rep.ClientKeptBond = c.Host.Bonds().Get(cfg.Target) != nil

	// Step 6: pull the capture and extract.
	switch cfg.Channel {
	case ChannelHCISnoop:
		data, err := c.PullSnoopLog()
		if err != nil {
			return rep, err
		}
		rep.CaptureBytes = len(data)
		records, err := snoop.ReadAll(data)
		if err != nil {
			return rep, fmt.Errorf("core: parsing pulled snoop log: %w", err)
		}
		hits := snoop.ExtractLinkKeys(records)
		rep.KeysInCapture = len(hits)
		for _, h := range hits {
			if h.Peer == cfg.Target {
				rep.Key, rep.Found = h.Key, true
			}
		}
	case ChannelUSBSniff:
		raw := c.USB.Raw()
		rep.CaptureBytes = len(raw)
		keys := usbsniff.ExtractLinkKeys(raw)
		rep.KeysInCapture = len(keys)
		for _, k := range keys {
			if k.Peer == cfg.Target {
				rep.Key, rep.Found = k.Key, true
			}
		}
	}
	rep.Elapsed = s.Now() - start
	if !rep.Found {
		return rep, ErrKeyNotFound
	}
	return rep, nil
}
