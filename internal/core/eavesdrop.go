package core

import (
	"time"

	"repro/internal/bt"
	"repro/internal/btcrypto"
	"repro/internal/controller"
	"repro/internal/radio"
)

// Eavesdropping with an extracted link key (§IV): "A would be able to
// decrypt not only the future, but also the past communications of M
// captured by air-sniffers using the key." An AirSniffer passively records
// baseband frames; once the link key extraction attack yields the key, the
// recorded LMP handshake (challenge, encryption start random, key size) is
// enough to re-derive the E0 session key and decrypt every captured
// payload — past and future.

// AirSniffer passively records all link traffic on a medium.
type AirSniffer struct {
	frames []radio.SniffedFrame
}

// NewAirSniffer attaches a sniffer to the medium. Frames sent after this
// call are recorded. The baseband ARQ envelope is stripped at capture
// time: pure acks carry no LMP content and are skipped, and data frames
// are recorded as their inner payload — so retransmissions of one PDU
// appear as repeated captures, exactly as an air sniffer would see them.
func NewAirSniffer(med *radio.Medium) *AirSniffer {
	s := &AirSniffer{}
	med.Sniff(func(f radio.SniffedFrame) {
		inner, ok := controller.UnwrapBB(f.Payload)
		if !ok {
			return
		}
		f.Payload = inner
		s.frames = append(s.frames, f)
	})
	return s
}

// Frames returns the raw capture.
func (s *AirSniffer) Frames() []radio.SniffedFrame { return s.frames }

// Len returns the number of captured frames.
func (s *AirSniffer) Len() int { return len(s.frames) }

// Reset discards the capture.
func (s *AirSniffer) Reset() { s.frames = nil }

// RecoveredPayload is one decrypted (or plaintext) ACL payload from a
// sniffed session.
type RecoveredPayload struct {
	At           time.Duration
	From, To     bt.BDADDR
	Data         []byte
	WasEncrypted bool
}

// pairKey identifies a directed conversation independent of direction.
type pairKey struct{ a, b bt.BDADDR }

func keyFor(x, y bt.BDADDR) pairKey {
	if x.String() < y.String() {
		return pairKey{x, y}
	}
	return pairKey{y, x}
}

// sessionCrypto is the per-conversation key material reconstructed from
// the sniffed handshake.
type sessionCrypto struct {
	master     bt.BDADDR // ConnAcceptPDU receiver (the connection initiator)
	haveMaster bool
	challenge  [16]byte // last AuRandPDU
	claimant   bt.BDADDR
	haveAuth   bool
	encKey     [16]byte
	haveEnc    bool
}

// DecryptWithKey replays the capture with a stolen link key: it recomputes
// the ACO from the sniffed E1 challenge, derives the E0 session key from
// the sniffed encryption-start random (honouring the negotiated key
// size), and decrypts every recorded ACL payload. Plaintext payloads are
// returned as-is with WasEncrypted=false.
func (s *AirSniffer) DecryptWithKey(linkKey bt.LinkKey) []RecoveredPayload {
	sessions := make(map[pairKey]*sessionCrypto)
	get := func(from, to bt.BDADDR) *sessionCrypto {
		k := keyFor(from, to)
		sc := sessions[k]
		if sc == nil {
			sc = &sessionCrypto{}
			sessions[k] = sc
		}
		return sc
	}

	var out []RecoveredPayload
	for _, f := range s.frames {
		sc := get(f.From, f.To)
		switch pdu := f.Payload.(type) {
		case controller.ConnAcceptPDU:
			// Sent responder -> initiator; the initiator is the master.
			sc.master = f.To
			sc.haveMaster = true

		case controller.AuRandPDU:
			// Challenge flows verifier -> claimant; E1 binds the claimant
			// address.
			sc.challenge = pdu.Rand
			sc.claimant = f.To
			sc.haveAuth = true

		case controller.EncStartPDU:
			if !sc.haveAuth {
				continue
			}
			_, aco := btcrypto.E1(linkKey, sc.challenge, [6]byte(sc.claimant))
			kc := btcrypto.E3(linkKey, pdu.Rand, aco)
			size := pdu.KeySize
			if size < 1 || size > 16 {
				size = 16
			}
			sc.encKey = btcrypto.ShrinkKey(kc, size)
			sc.haveEnc = true

		case controller.ACLPDU:
			rec := RecoveredPayload{At: f.At, From: f.From, To: f.To, WasEncrypted: pdu.Encrypted}
			if !pdu.Encrypted {
				rec.Data = append([]byte(nil), pdu.Data...)
				out = append(out, rec)
				continue
			}
			if !sc.haveEnc || !sc.haveMaster {
				continue // cannot decrypt without the sniffed handshake
			}
			rec.Data = btcrypto.EncryptPayload(sc.encKey, [6]byte(sc.master), pdu.Clock, pdu.Data)
			out = append(out, rec)
		}
	}
	return out
}

// EncryptedFrames counts the captured ciphertext payloads (what an
// observer without the key is stuck with).
func (s *AirSniffer) EncryptedFrames() int {
	n := 0
	for _, f := range s.frames {
		if pdu, ok := f.Payload.(controller.ACLPDU); ok && pdu.Encrypted {
			n++
		}
	}
	return n
}
