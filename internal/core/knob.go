package core

import (
	"bytes"

	"repro/internal/btcrypto"
	"repro/internal/controller"
	"repro/internal/device"
	"repro/internal/radio"
)

// KNOB-style entropy reduction (related work, Antonioli et al. [8]): the
// LMP encryption key size negotiation lets a controller cap the session
// key at one byte of entropy, after which an air-sniffing attacker simply
// brute-forces the 256-key space — no link key required. The paper cites
// KNOB as the firmware-level contrast to BLAP's host-level attacks; this
// module reproduces the entropy-reduction consequence on our substrate
// and the post-KNOB defence (a minimum key size).

// KNOBWorld is a testbed whose client controller negotiates a reduced
// encryption key size, with an air sniffer attached.
type KNOBWorld struct {
	Testbed *Testbed
	Sniffer *AirSniffer
	// KeySize is the client's maximum (and thus the negotiated) key size.
	KeySize int
}

// NewKNOBWorld builds a bonded M-C world where C's controller caps the
// encryption key size at keySize bytes.
func NewKNOBWorld(seed int64, keySize int) (*KNOBWorld, error) {
	return newKNOBWorld(seed, keySize, 0)
}

// NewKNOBWorldHardened additionally raises the victim's minimum accepted
// key size (the post-KNOB mitigation), so negotiation below it fails.
func NewKNOBWorldHardened(seed int64, clientMax, victimMin int) (*KNOBWorld, error) {
	return newKNOBWorld(seed, clientMax, victimMin)
}

func newKNOBWorld(seed int64, clientMax, victimMin int) (*KNOBWorld, error) {
	tb, err := NewTestbed(seed, TestbedOptions{
		ClientPlatform:      device.GalaxyS21Android11,
		Bond:                true,
		ClientMaxEncKeySize: clientMax,
		VictimMinEncKeySize: victimMin,
	})
	if err != nil {
		return nil, err
	}
	return &KNOBWorld{Testbed: tb, Sniffer: NewAirSniffer(tb.Medium), KeySize: clientMax}, nil
}

// BruteForce attacks the sniffed ciphertext by exhausting the reduced key
// space directly — byte candidates for a 1-byte key, two bytes for a
// 2-byte key, and so on (practical up to ~3 bytes). A candidate is
// accepted when a decrypted payload contains the known-plaintext crib.
// It returns the recovered plaintext, the number of keys tried, and
// whether the search succeeded.
func (w *KNOBWorld) BruteForce(crib []byte) (plaintext []byte, tried int, ok bool) {
	// Reconstruct per-session master/clock exactly like an eavesdropper.
	type session struct {
		master     [6]byte
		haveMaster bool
	}
	sessions := make(map[pairKey]*session)
	get := func(f radio.SniffedFrame) *session {
		k := keyFor(f.From, f.To)
		s := sessions[k]
		if s == nil {
			s = &session{}
			sessions[k] = s
		}
		return s
	}

	space := 1
	for i := 0; i < w.KeySize && i < 3; i++ {
		space *= 256
	}
	for _, f := range w.Sniffer.Frames() {
		switch pdu := f.Payload.(type) {
		case controller.ConnAcceptPDU:
			s := get(f)
			s.master = [6]byte(f.To)
			s.haveMaster = true
		case controller.ACLPDU:
			if !pdu.Encrypted {
				continue
			}
			s := get(f)
			if !s.haveMaster {
				continue
			}
			for guess := 0; guess < space; guess++ {
				var cand [16]byte
				g := guess
				for b := 0; b < w.KeySize && b < 3; b++ {
					cand[b] = byte(g)
					g >>= 8
				}
				tried++
				dec := btcrypto.EncryptPayload(cand, s.master, pdu.Clock, pdu.Data)
				if bytes.Contains(dec, crib) {
					return dec, tried, true
				}
			}
		}
	}
	return nil, tried, false
}
