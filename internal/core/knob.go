package core

import (
	"bytes"
	"context"

	"repro/internal/btcrypto"
	"repro/internal/campaign"
	"repro/internal/controller"
	"repro/internal/device"
	"repro/internal/radio"
)

// KNOB-style entropy reduction (related work, Antonioli et al. [8]): the
// LMP encryption key size negotiation lets a controller cap the session
// key at one byte of entropy, after which an air-sniffing attacker simply
// brute-forces the 256-key space — no link key required. The paper cites
// KNOB as the firmware-level contrast to BLAP's host-level attacks; this
// module reproduces the entropy-reduction consequence on our substrate
// and the post-KNOB defence (a minimum key size).

// KNOBWorld is a testbed whose client controller negotiates a reduced
// encryption key size, with an air sniffer attached.
type KNOBWorld struct {
	Testbed *Testbed
	Sniffer *AirSniffer
	// KeySize is the client's maximum (and thus the negotiated) key size.
	KeySize int
}

// NewKNOBWorld builds a bonded M-C world where C's controller caps the
// encryption key size at keySize bytes.
func NewKNOBWorld(seed int64, keySize int) (*KNOBWorld, error) {
	return newKNOBWorld(seed, keySize, 0)
}

// NewKNOBWorldHardened additionally raises the victim's minimum accepted
// key size (the post-KNOB mitigation), so negotiation below it fails.
func NewKNOBWorldHardened(seed int64, clientMax, victimMin int) (*KNOBWorld, error) {
	return newKNOBWorld(seed, clientMax, victimMin)
}

func newKNOBWorld(seed int64, clientMax, victimMin int) (*KNOBWorld, error) {
	tb, err := NewTestbed(seed, TestbedOptions{
		ClientPlatform:      device.GalaxyS21Android11,
		Bond:                true,
		ClientMaxEncKeySize: clientMax,
		VictimMinEncKeySize: victimMin,
	})
	if err != nil {
		return nil, err
	}
	return &KNOBWorld{Testbed: tb, Sniffer: NewAirSniffer(tb.Medium), KeySize: clientMax}, nil
}

// BruteForce attacks the sniffed ciphertext by exhausting the reduced key
// space directly — byte candidates for a 1-byte key, two bytes for a
// 2-byte key, and so on (practical up to ~3 bytes). A candidate is
// accepted when a decrypted payload contains the known-plaintext crib.
// It returns the recovered plaintext, the number of keys tried, and
// whether the search succeeded.
func (w *KNOBWorld) BruteForce(crib []byte) (plaintext []byte, tried int, ok bool) {
	return w.bruteForce(crib, 1)
}

// BruteForceParallel is BruteForce with each frame's key space sharded
// across a campaign.Search worker pool with early cancellation. The
// recovered plaintext and the tried count are identical to the serial
// search for any worker count: the lowest matching key wins and tried is
// the serial-equivalent count (full exhausted spaces plus the match
// position). workers <= 0 selects GOMAXPROCS.
func (w *KNOBWorld) BruteForceParallel(crib []byte, workers int) (plaintext []byte, tried int, ok bool) {
	return w.bruteForce(crib, workers)
}

func (w *KNOBWorld) bruteForce(crib []byte, workers int) (plaintext []byte, tried int, ok bool) {
	// Reconstruct per-session master/clock exactly like an eavesdropper.
	type session struct {
		master     [6]byte
		haveMaster bool
	}
	sessions := make(map[pairKey]*session)
	get := func(f radio.SniffedFrame) *session {
		k := keyFor(f.From, f.To)
		s := sessions[k]
		if s == nil {
			s = &session{}
			sessions[k] = s
		}
		return s
	}

	keyBytes := w.KeySize
	if keyBytes > 3 {
		keyBytes = 3
	}
	space := 1
	for i := 0; i < keyBytes; i++ {
		space *= 256
	}
	cfg := campaign.Config{Workers: workers}
	for _, f := range w.Sniffer.Frames() {
		switch pdu := f.Payload.(type) {
		case controller.ConnAcceptPDU:
			s := get(f)
			s.master = [6]byte(f.To)
			s.haveMaster = true
		case controller.ACLPDU:
			if !pdu.Encrypted {
				continue
			}
			s := get(f)
			if !s.haveMaster {
				continue
			}
			decs := make([][]byte, space)
			found, _ := campaign.Search(context.Background(), space, cfg, func(guess int) bool {
				var cand [16]byte
				g := guess
				for b := 0; b < keyBytes; b++ {
					cand[b] = byte(g)
					g >>= 8
				}
				dec := btcrypto.EncryptPayload(cand, s.master, pdu.Clock, pdu.Data)
				if bytes.Contains(dec, crib) {
					decs[guess] = dec
					return true
				}
				return false
			})
			if found >= 0 {
				return decs[found], tried + found + 1, true
			}
			tried += space
		}
	}
	return nil, tried, false
}
