package core

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/host"
)

// Fault-injection tests: attacks and protocol flows must resolve cleanly
// (callbacks fired, no panics, consistent state) when links or transports
// die at awkward moments.

func TestClientVanishesMidExtraction(t *testing.T) {
	tb := mustTestbed(t, 90, TestbedOptions{
		ClientPlatform: device.GalaxyS21Android11,
		Bond:           true,
	})
	// Schedule C's radio to vanish shortly after the attack begins (the
	// accessory is switched off mid-attack).
	tb.Sched.Schedule(2*time.Second, func() { tb.C.Controller.Detach() })

	rep, err := RunLinkKeyExtraction(tb.Sched, LinkKeyExtractionConfig{
		Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: ChannelHCISnoop,
		SettleTime: 20 * time.Second,
	})
	// The key request/reply happens within the first ~100 ms, so the key
	// is usually already in the dump; whether extraction succeeds or not,
	// the run must terminate and report coherently.
	if err == nil && rep.Key != tb.BondKey {
		t.Fatalf("reported success with a wrong key: %+v", rep)
	}
}

func TestVictimTransportDownDuringPageBlocking(t *testing.T) {
	tb := mustTestbed(t, 91, TestbedOptions{})
	// The victim's HCI transport dies right before the user pairs: all
	// host operations must still resolve (with errors), not hang forever.
	tb.Sched.Schedule(time.Second, func() { tb.M.Transport.Down() })
	rep := RunPageBlocking(tb.Sched, PageBlockingConfig{
		Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
		UsePLOC:       true,
		UserPairDelay: 3 * time.Second,
		SettleTime:    60 * time.Second,
	})
	if rep.MITMEstablished {
		t.Fatal("MITM cannot complete across a dead transport")
	}
}

func TestAttackerGivesUpMidPLOC(t *testing.T) {
	// The attacker detaches while holding the PLOC link; the victim's
	// later pairing attempt must fall back to a normal page and reach the
	// genuine client.
	tb := mustTestbed(t, 92, TestbedOptions{})
	tb.A.Host.SetHooks(host.Hooks{PLOCHold: 10 * time.Second})
	tb.A.Host.SetIOCapability(3) // NoInputNoOutput
	tb.A.SpoofIdentity(tb.C.Addr(), tb.C.Platform.COD)
	tb.A.Host.Connect(tb.M.Addr(), func(*host.Conn, error) {})
	tb.Sched.RunFor(2 * time.Second)

	tb.A.Controller.Detach() // attacker walks away
	tb.Sched.RunFor(2 * time.Second)
	if tb.M.Host.Connection(tb.C.Addr()) != nil {
		t.Fatal("the held link should collapse when the attacker vanishes")
	}

	tb.MUser.ExpectPairing(tb.C.Addr())
	var pairErr error
	done := false
	tb.M.Host.Pair(tb.C.Addr(), func(err error) { pairErr = err; done = true })
	tb.Sched.RunFor(30 * time.Second)
	if !done || pairErr != nil {
		t.Fatalf("victim should pair with the real client afterwards: done=%v err=%v", done, pairErr)
	}
	bondM := tb.M.Host.Bonds().Get(tb.C.Addr())
	bondC := tb.C.Host.Bonds().Get(tb.M.Addr())
	if bondM == nil || bondC == nil || bondM.Key != bondC.Key {
		t.Fatal("the recovered pairing should bond with the genuine client")
	}
}

func TestDisconnectDuringSSP(t *testing.T) {
	// The client disconnects in the middle of the SSP exchange: the
	// victim's pairing flow must resolve with an error, not leak waiters.
	tb := mustTestbed(t, 93, TestbedOptions{})
	tb.MUser.ExpectPairing(tb.C.Addr())
	var pairErr error
	done := false
	tb.M.Host.Pair(tb.C.Addr(), func(err error) { pairErr = err; done = true })
	// SSP takes a couple of seconds (user reaction); cut the link at
	// 500 ms, mid-exchange.
	tb.Sched.Schedule(500*time.Millisecond, func() {
		tb.C.Host.Disconnect(tb.M.Addr())
	})
	tb.Sched.RunFor(40 * time.Second)
	if !done {
		t.Fatal("pairing waiter leaked after mid-SSP disconnect")
	}
	if pairErr == nil {
		t.Fatal("mid-SSP disconnect must surface as an error")
	}
	if tb.M.Host.Bonds().Get(tb.C.Addr()) != nil {
		t.Fatal("no bond must survive an aborted SSP")
	}
}
