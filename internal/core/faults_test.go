package core

import (
	"testing"
	"time"

	"repro/internal/bt"
	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/hci"
	"repro/internal/host"
)

// Fault-injection tests: attacks and protocol flows must resolve cleanly
// (callbacks fired, no panics, consistent state) when links or transports
// die at awkward moments.

func TestClientVanishesMidExtraction(t *testing.T) {
	tb := mustTestbed(t, 90, TestbedOptions{
		ClientPlatform: device.GalaxyS21Android11,
		Bond:           true,
	})
	// Schedule C's radio to vanish shortly after the attack begins (the
	// accessory is switched off mid-attack).
	tb.Sched.Schedule(2*time.Second, func() { tb.C.Controller.Detach() })

	rep, err := RunLinkKeyExtraction(tb.Sched, LinkKeyExtractionConfig{
		Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: ChannelHCISnoop,
		SettleTime: 20 * time.Second,
	})
	// The key request/reply happens within the first ~100 ms, so the key
	// is usually already in the dump; whether extraction succeeds or not,
	// the run must terminate and report coherently.
	if err == nil && rep.Key != tb.BondKey {
		t.Fatalf("reported success with a wrong key: %+v", rep)
	}
}

func TestVictimTransportDownDuringPageBlocking(t *testing.T) {
	tb := mustTestbed(t, 91, TestbedOptions{})
	// The victim's HCI transport dies right before the user pairs: all
	// host operations must still resolve (with errors), not hang forever.
	tb.Sched.Schedule(time.Second, func() { tb.M.Transport.Down() })
	rep := RunPageBlocking(tb.Sched, PageBlockingConfig{
		Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
		UsePLOC:       true,
		UserPairDelay: 3 * time.Second,
		SettleTime:    60 * time.Second,
	})
	if rep.MITMEstablished {
		t.Fatal("MITM cannot complete across a dead transport")
	}
}

func TestAttackerGivesUpMidPLOC(t *testing.T) {
	// The attacker detaches while holding the PLOC link; the victim's
	// later pairing attempt must fall back to a normal page and reach the
	// genuine client.
	tb := mustTestbed(t, 92, TestbedOptions{})
	tb.A.Host.SetHooks(host.Hooks{PLOCHold: 10 * time.Second})
	tb.A.Host.SetIOCapability(3) // NoInputNoOutput
	tb.A.SpoofIdentity(tb.C.Addr(), tb.C.Platform.COD)
	tb.A.Host.Connect(tb.M.Addr(), func(*host.Conn, error) {})
	tb.Sched.RunFor(2 * time.Second)

	tb.A.Controller.Detach() // attacker walks away
	tb.Sched.RunFor(2 * time.Second)
	if tb.M.Host.Connection(tb.C.Addr()) != nil {
		t.Fatal("the held link should collapse when the attacker vanishes")
	}

	tb.MUser.ExpectPairing(tb.C.Addr())
	var pairErr error
	done := false
	tb.M.Host.Pair(tb.C.Addr(), func(err error) { pairErr = err; done = true })
	tb.Sched.RunFor(30 * time.Second)
	if !done || pairErr != nil {
		t.Fatalf("victim should pair with the real client afterwards: done=%v err=%v", done, pairErr)
	}
	bondM := tb.M.Host.Bonds().Get(tb.C.Addr())
	bondC := tb.C.Host.Bonds().Get(tb.M.Addr())
	if bondM == nil || bondC == nil || bondM.Key != bondC.Key {
		t.Fatal("the recovered pairing should bond with the genuine client")
	}
}

func TestDisconnectDuringSSP(t *testing.T) {
	// The client disconnects in the middle of the SSP exchange: the
	// victim's pairing flow must resolve with an error, not leak waiters.
	tb := mustTestbed(t, 93, TestbedOptions{})
	tb.MUser.ExpectPairing(tb.C.Addr())
	var pairErr error
	done := false
	tb.M.Host.Pair(tb.C.Addr(), func(err error) { pairErr = err; done = true })
	// SSP takes a couple of seconds (user reaction); cut the link at
	// 500 ms, mid-exchange.
	tb.Sched.Schedule(500*time.Millisecond, func() {
		tb.C.Host.Disconnect(tb.M.Addr())
	})
	tb.Sched.RunFor(40 * time.Second)
	if !done {
		t.Fatal("pairing waiter leaked after mid-SSP disconnect")
	}
	if pairErr == nil {
		t.Fatal("mid-SSP disconnect must surface as an error")
	}
	if tb.M.Host.Bonds().Get(tb.C.Addr()) != nil {
		t.Fatal("no bond must survive an aborted SSP")
	}
}

// --- deterministic fault-plan integration (PR 4) ---

func TestExtractionSucceedsOnLossyChannel(t *testing.T) {
	// 5% uniform loss plus mild burstiness: ARQ carries the LMP exchange,
	// paging retries cover lost page trains, and the stalled
	// authentication still ends in LMP Response Timeout — not an
	// authentication failure — so the bond survives.
	tb := mustTestbed(t, 93, TestbedOptions{
		ClientPlatform: device.GalaxyS21Android11,
		Bond:           true,
		Faults:         faults.Plan{Drop: 0.05, Burst: &faults.Burst{PEnter: 0.01, PExit: 0.3, BadLoss: 0.5}},
	})
	rep, err := RunLinkKeyExtraction(tb.Sched, LinkKeyExtractionConfig{
		Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: ChannelHCISnoop,
	})
	if err != nil {
		t.Fatalf("extraction on lossy channel: %v", err)
	}
	if rep.Key != tb.BondKey {
		t.Fatalf("extracted wrong key: %v", rep.Key)
	}
	if rep.DisconnectReason != hci.StatusLMPResponseTimeout {
		t.Fatalf("disconnect reason %s, want LMP response timeout", rep.DisconnectReason)
	}
	if !rep.ClientKeptBond {
		t.Fatal("client must keep the bond after the stalled authentication")
	}
	// The extraction exchange is tiny (page + ConnAccept + AuRand + acks)
	// so drops are not guaranteed; what matters is that every frame went
	// through the injector.
	if st := tb.Injector.Stats(); st.Frames == 0 {
		t.Fatalf("fault injector never consulted: %+v", st)
	}
}

func TestLegitimatePairingSurvivesModerateLossViaARQ(t *testing.T) {
	// Acceptance criterion: the legitimate M-C setup pairing succeeds at
	// 5% uniform loss purely via baseband retransmission.
	tb := mustTestbed(t, 94, TestbedOptions{
		Bond:              true,
		Faults:            faults.Plan{Drop: 0.05},
		FaultsDuringSetup: true,
	})
	if tb.BondKey == (bt.LinkKey{}) {
		t.Fatal("no bond key after lossy setup pairing")
	}
}

func TestOutageBlackoutIsChannelFault(t *testing.T) {
	// C's radio is dark for the entire attack window: every page attempt
	// fails and the run must classify as a retryable channel fault, not
	// an authentication outcome.
	tb := mustTestbed(t, 95, TestbedOptions{
		ClientPlatform: device.GalaxyS21Android11,
		Bond:           true,
		Faults:         faults.Plan{Outages: []faults.Outage{{Device: "C", Start: time.Millisecond, Duration: 10 * time.Minute}}},
	})
	_, err := RunLinkKeyExtraction(tb.Sched, LinkKeyExtractionConfig{
		Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: ChannelHCISnoop,
		SettleTime: 60 * time.Second,
	})
	if err == nil {
		t.Fatal("extraction against a dark radio cannot succeed")
	}
	if !IsChannelFault(err) {
		t.Fatalf("want a channel fault, got: %v", err)
	}
}

func TestBackoffRidesOutShortOutage(t *testing.T) {
	// C goes dark for the first three seconds of the attack; the
	// attacker's paging backoff must ride the outage out and extract the
	// key once the radio returns.
	tb := mustTestbed(t, 96, TestbedOptions{
		ClientPlatform: device.GalaxyS21Android11,
		Bond:           true,
		Faults:         faults.Plan{Outages: []faults.Outage{{Device: "C", Start: time.Millisecond, Duration: 3 * time.Second}}},
	})
	rep, err := RunLinkKeyExtraction(tb.Sched, LinkKeyExtractionConfig{
		Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: ChannelHCISnoop,
		SettleTime: 60 * time.Second,
	})
	if err != nil {
		t.Fatalf("extraction after outage recovery: %v", err)
	}
	if rep.Key != tb.BondKey {
		t.Fatalf("extracted wrong key: %v", rep.Key)
	}
}

func TestZeroPlanTestbedInstallsNothing(t *testing.T) {
	tb := mustTestbed(t, 97, TestbedOptions{Bond: true, Faults: faults.Plan{}})
	if tb.Injector != nil {
		t.Fatal("zero plan must not install an injector")
	}
}
