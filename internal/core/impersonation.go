package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bt"
	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/sim"
)

// ImpersonationConfig parameterizes the key-validation / exploitation step
// of the extraction attack (§VI-B1): the attacker assumes the client's
// identity, installs fake bonding information containing the extracted
// key, and opens a profile connection to the victim; LMP authentication
// must succeed without any new pairing.
type ImpersonationConfig struct {
	// Attacker is device A.
	Attacker *device.Device
	// Victim is device M, the hard target holding the sensitive data.
	Victim *device.Device
	// ClientAddr is C's BDADDR, the identity A assumes.
	ClientAddr bt.BDADDR
	// ClientCOD is C's class of device; defaults to hands-free.
	ClientCOD bt.ClassOfDevice
	// Key is the extracted link key.
	Key bt.LinkKey
	// Service is the profile to open; defaults to NAP (Bluetooth
	// tethering), the profile the paper uses for validation.
	Service host.ServiceUUID
	// SettleTime bounds the run; defaults to 60 s of virtual time.
	SettleTime time.Duration
}

// ImpersonationReport is the outcome of one impersonation run.
type ImpersonationReport struct {
	// Success reports that the profile connection was established with
	// the extracted key and no new pairing was triggered on the victim.
	Success bool
	// AuthSucceeded reports that LMP authentication passed with the key.
	AuthSucceeded bool
	// NewPairingTriggered reports that the victim started a fresh SSP
	// pairing (what happens when the key is wrong).
	NewPairingTriggered bool
	// FakeBondConfig is the bt_config.conf document installed on the
	// attacker (paper Fig. 10).
	FakeBondConfig string
	// Err carries the failure cause, if any.
	Err error
	// Elapsed is virtual time consumed.
	Elapsed time.Duration
}

// RunImpersonation performs the four validation steps of §VI-B1.
func RunImpersonation(s *sim.Scheduler, cfg ImpersonationConfig) ImpersonationReport {
	var rep ImpersonationReport
	start := s.Now()
	a, m := cfg.Attacker, cfg.Victim

	service := cfg.Service
	if service == 0 {
		service = host.UUIDNAP
	}
	cod := cfg.ClientCOD
	if cod == 0 {
		cod = bt.CODHandsFree
	}

	// Step 1: assume C's identity.
	a.SpoofIdentity(cfg.ClientAddr, cod)
	// The extraction-phase stall hook must be gone for this phase.
	hooks := a.Host.Hooks()
	hooks.IgnoreLinkKeyRequest = false
	a.Host.SetHooks(hooks)

	// Step 2: install fake bonding information — BDADDR of M, the
	// extracted link key, and the victim's profile services — through the
	// bt_config.conf format, as in Fig. 10.
	fake := host.Bond{
		Addr:     m.Addr(),
		Name:     m.Name,
		Key:      cfg.Key,
		KeyType:  bt.KeyTypeUnauthenticatedP256,
		Services: []host.ServiceUUID{host.UUIDPANU, host.UUIDNAP},
	}
	store := host.NewBondStore()
	store.Put(fake)
	rep.FakeBondConfig = store.EncodeConfig()
	if err := a.Host.Bonds().LoadConfig(rep.FakeBondConfig); err != nil {
		rep.Err = fmt.Errorf("core: installing fake bond: %w", err)
		return rep
	}

	// Step 3 ("toggle Bluetooth") is a no-op in the simulator: the bond
	// store is already live.

	// Step 4: open the tethering profile; the LMP authentication inside
	// must succeed with the fake bonding information alone.
	pairingEventsBefore := len(m.Host.PairingEvents)
	done := false
	var opErr error
	a.Host.ConnectProfile(m.Addr(), service, func(err error) { opErr = err; done = true })

	settle := cfg.SettleTime
	if settle <= 0 {
		settle = 60 * time.Second
	}
	s.RunFor(settle)

	rep.Elapsed = s.Now() - start
	rep.NewPairingTriggered = len(m.Host.PairingEvents) > pairingEventsBefore
	if !done {
		rep.Err = fmt.Errorf("core: profile connection still pending after %v", settle)
		return rep
	}
	rep.Err = opErr
	rep.AuthSucceeded = opErr == nil || !isAuthError(opErr)
	rep.Success = opErr == nil && !rep.NewPairingTriggered
	return rep
}

func isAuthError(err error) bool {
	var se *host.StatusError
	return errors.As(err, &se) && se.Op == "authentication"
}
