package core

import (
	"fmt"
	"time"

	"repro/internal/bt"
	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/host"
	"repro/internal/radio"
	"repro/internal/sim"
)

// Testbed is the three-device world of the paper's system model (§III-A):
// M, the hard target holding sensitive data; C, the soft-target accessory
// or PC bonded with M; and A, the attacker's patched Nexus 5x.
type Testbed struct {
	Sched  *sim.Scheduler
	Medium *radio.Medium

	M *device.Device
	C *device.Device
	A *device.Device

	// MUser is the simulated victim user installed on M.
	MUser *host.SimUser

	// BondKey is the link key shared by M and C after the setup pairing
	// (zero when Bond was false).
	BondKey bt.LinkKey

	// Injector is the fault injector installed on the medium when the
	// options carried a non-zero fault plan; nil otherwise. Its Stats
	// expose the realized channel behaviour of a run.
	Injector *faults.Injector
}

// TestbedOptions tunes world construction.
type TestbedOptions struct {
	// VictimPlatform is M's platform (default LG VELVET / Android 11).
	VictimPlatform device.Platform
	// ClientPlatform is C's platform (default hands-free car kit).
	ClientPlatform device.Platform
	// AttackerPlatform is A's platform (default Nexus 5x / Android 6).
	AttackerPlatform device.Platform

	// Bond pre-pairs M and C and disconnects them, so C holds a bonded
	// key for M (required by the extraction attack).
	Bond bool
	// ClientUSBSniffer attaches a bus analyzer to C's USB transport.
	ClientUSBSniffer bool
	// VictimSupervisionTimeout enables link supervision on M's controller
	// (used by the PLOC-window ablation); zero disables it.
	VictimSupervisionTimeout time.Duration
	// ClientLMPResponseTimeout overrides C's controller LMP response
	// timeout (used by the timeout ablation); zero keeps the 30 s default.
	ClientLMPResponseTimeout time.Duration
	// ClientMaxEncKeySize caps C's encryption key size negotiation (the
	// KNOB-style entropy reduction); zero keeps the 16-byte default.
	ClientMaxEncKeySize int
	// VictimMinEncKeySize raises M's minimum accepted key size (the
	// post-KNOB defence); zero keeps the spec floor of 1.
	VictimMinEncKeySize int
	// VictimEnforceRoleCheck arms the §VII-B mitigation on M.
	VictimEnforceRoleCheck bool
	// VictimSilentBondedRepair makes M suppress the pairing dialog for
	// already-bonded peers (the Happy-MitM UI blindness).
	VictimSilentBondedRepair bool
	// VictimCTKD enables BLURtooth-style cross-transport LTK derivation
	// on M.
	VictimCTKD bool
	// ClientFixedPasskey pins C's display-side Passkey Entry passkey
	// (printed-label accessory); nil keeps the random draw.
	ClientFixedPasskey *uint32
	// EnhancedPasskey arms the DH-masked Passkey Entry mitigation on both
	// M and C (the attacker's device never gets it).
	EnhancedPasskey bool
	// MediumConfig overrides the radio timing (zero value uses defaults).
	MediumConfig *radio.Config

	// Faults is the deterministic fault plan for the degraded-channel
	// scenarios. A zero plan installs nothing at all — no injector, no
	// RNG draws, no scheduled events — so runs are bit-identical to a
	// faultless build. By default the plan (and its outages) arms after
	// the setup bond: the victim paired at home on a clean channel and
	// the attack happens on a degraded one.
	Faults faults.Plan
	// FaultsDuringSetup arms Faults before the setup bond as well, so the
	// legitimate pairing itself runs on the degraded channel (the ARQ
	// resilience sweep).
	FaultsDuringSetup bool

	// VictimServices extends M's SDP database (NAP/PANU are always
	// present, matching Android's tethering support).
	VictimServices []host.ServiceUUID
}

// Standard testbed addresses (C's is the paper's Fig. 11 accessory).
var (
	AddrM = bt.MustBDADDR("48:90:51:1e:7f:2c")
	AddrC = bt.MustBDADDR("00:1a:7d:da:71:0a")
	AddrA = bt.MustBDADDR("64:89:9a:0b:44:7e")
)

// NewTestbed builds the world deterministically from seed. When
// opts.Bond is set, M and C are paired and disconnected before it
// returns, and C's capture surfaces are reset so the attack phase starts
// with a clean log (the paper's attacker enables the dump only when the
// attack begins).
func NewTestbed(seed int64, opts TestbedOptions) (*Testbed, error) {
	if opts.VictimPlatform.Model == "" {
		opts.VictimPlatform = device.LGVELVETAndroid11
	}
	if opts.ClientPlatform.Model == "" {
		opts.ClientPlatform = device.HandsFreeKit
	}
	if opts.AttackerPlatform.Model == "" {
		opts.AttackerPlatform = device.Nexus5XAndroid6
	}

	s := sim.NewScheduler(seed)
	mc := radio.DefaultConfig()
	if opts.MediumConfig != nil {
		mc = *opts.MediumConfig
	}
	med := radio.NewMedium(s, mc)

	tb := &Testbed{Sched: s, Medium: med}

	victimServices := append([]host.ServiceUUID{host.UUIDNAP, host.UUIDPANU, host.UUIDPBAP}, opts.VictimServices...)
	tb.M = device.New(s, med, "M-"+opts.VictimPlatform.Model, AddrM, opts.VictimPlatform, device.Options{
		Services:           victimServices,
		SupervisionTimeout: opts.VictimSupervisionTimeout,
		MinEncKeySize:      opts.VictimMinEncKeySize,
		EnforceRoleCheck:   opts.VictimEnforceRoleCheck,
		SilentBondedRepair: opts.VictimSilentBondedRepair,
		CTKD:               opts.VictimCTKD,
		EnhancedPasskey:    opts.EnhancedPasskey,
	})
	tb.MUser = host.NewSimUser(s)
	tb.M.Host.SetUI(tb.MUser)

	tb.C = device.New(s, med, "C-"+opts.ClientPlatform.Model, AddrC, opts.ClientPlatform, device.Options{
		Services:                   []host.ServiceUUID{host.UUIDHandsFree, host.UUIDSerialPort},
		AuthenticateBondedIncoming: true,
		AttachUSBSniffer:           opts.ClientUSBSniffer,
		LMPResponseTimeout:         opts.ClientLMPResponseTimeout,
		MaxEncKeySize:              opts.ClientMaxEncKeySize,
		FixedPasskey:               opts.ClientFixedPasskey,
		EnhancedPasskey:            opts.EnhancedPasskey,
	})

	// The attacker's device always carries a snoop log: the paper
	// analyzes A's dump when the victim (iPhone) provides none.
	tb.A = device.New(s, med, "A-"+opts.AttackerPlatform.Model, AddrA, opts.AttackerPlatform, device.Options{
		ForceSnoop: true,
	})

	if opts.FaultsDuringSetup {
		if err := tb.installFaults(opts.Faults); err != nil {
			return nil, err
		}
	}
	if opts.Bond {
		if err := tb.bondMC(); err != nil {
			return nil, err
		}
	}
	if !opts.FaultsDuringSetup {
		if err := tb.installFaults(opts.Faults); err != nil {
			return nil, err
		}
	}
	return tb, nil
}

// installFaults arms a fault plan on the medium and schedules its
// outages relative to the current virtual time. A zero plan is a
// complete no-op, preserving bit-identical faultless runs.
func (tb *Testbed) installFaults(plan faults.Plan) error {
	if plan.IsZero() {
		return nil
	}
	if err := plan.Validate(); err != nil {
		return err
	}
	tb.Injector = faults.NewInjector(tb.Sched, plan)
	tb.Medium.SetFaultModel(tb.Injector)
	return faults.ScheduleOutages(tb.Sched, plan, tb.resolveOutage)
}

// resolveOutage maps a fault-plan device name to the testbed role whose
// radio the outage detaches and reattaches.
func (tb *Testbed) resolveOutage(name string) (detach, attach func(), err error) {
	var d *device.Device
	switch name {
	case "M":
		d = tb.M
	case "C":
		d = tb.C
	case "A":
		d = tb.A
	default:
		return nil, nil, fmt.Errorf("unknown device %q (want M, C, or A)", name)
	}
	return d.Controller.Detach, d.Controller.Reattach, nil
}

// bondMC pairs M with C and tears the connection down, leaving both with
// a stored link key.
func (tb *Testbed) bondMC() error {
	tb.MUser.ExpectPairing(tb.C.Addr())
	var pairErr error
	done := false
	tb.M.Host.Pair(tb.C.Addr(), func(err error) { pairErr = err; done = true })
	tb.Sched.RunFor(30 * time.Second)
	if !done {
		return fmt.Errorf("core: setup pairing never completed")
	}
	if pairErr != nil {
		return fmt.Errorf("core: setup pairing failed: %w", pairErr)
	}
	bm := tb.M.Host.Bonds().Get(tb.C.Addr())
	bc := tb.C.Host.Bonds().Get(tb.M.Addr())
	if bm == nil || bc == nil || bm.Key != bc.Key {
		return fmt.Errorf("core: setup bond inconsistent")
	}
	tb.BondKey = bm.Key
	tb.MUser.ClearExpectation(tb.C.Addr())

	tb.M.Host.Disconnect(tb.C.Addr())
	tb.Sched.RunFor(time.Second)

	// The attack phase starts with fresh captures: the paper's attacker
	// turns the dump on at attack time.
	if tb.C.Snoop != nil {
		tb.C.Snoop.Reset()
	}
	if tb.C.USB != nil {
		tb.C.USB.Reset()
	}
	if tb.M.Snoop != nil {
		tb.M.Snoop.Reset()
	}
	if tb.A.Snoop != nil {
		tb.A.Snoop.Reset()
	}
	return nil
}
