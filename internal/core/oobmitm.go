package core

import (
	"time"

	"repro/internal/bt"
	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/sim"
)

// OOB-association MITM: Out of Band pairing trusts the out-of-band
// channel completely — whoever controls the NFC tag controls the pairing.
// The attacker tampers with the accessory's tag so the victim's phone
// reads the *attacker's* OOB payload under the accessory's name, and
// relays the phone's own payload to itself (reader-in-the-middle). Both
// sides then verify successfully, the association model is OutOfBand, and
// the phone bonds the accessory's address to the attacker with a key the
// spec marks authenticated. On the air this is byte-for-byte a genuine
// OOB pairing, which is why no forensic rule can flag it.

// OOBMITMConfig parameterizes the tampered-tag run.
type OOBMITMConfig struct {
	// Attacker is A; Client is the accessory whose identity (and NFC tag)
	// is subverted; Victim is the phone M.
	Attacker *device.Device
	Client   *device.Device
	Victim   *device.Device
	// ReadTime bounds the OOB payload reads (default 5 s of virtual
	// time — HCI round trips only).
	ReadTime time.Duration
	// SettleTime bounds the pairing phase; defaults to 30 s.
	SettleTime time.Duration
}

// OOBMITMReport is the outcome of one run.
type OOBMITMReport struct {
	// PayloadsInstalled reports both tampered payloads were delivered.
	PayloadsInstalled bool
	// MITMEstablished reports the victim bonded the accessory's address
	// to the attacker's key.
	MITMEstablished bool
	// KeyAuthenticated reports the victim's stored key claims MITM
	// protection (OOB always does — the deception is complete).
	KeyAuthenticated bool
	// Elapsed is virtual time consumed.
	Elapsed time.Duration
}

// RunOOBMITM executes the tampered-tag OOB MITM: the attacker's payload
// reaches the victim keyed under the accessory's address, the victim's
// payload reaches the attacker, and the attacker pairs as the accessory.
func RunOOBMITM(s *sim.Scheduler, cfg OOBMITMConfig) OOBMITMReport {
	var rep OOBMITMReport
	start := s.Now()
	a, c, m := cfg.Attacker, cfg.Client, cfg.Victim

	readTime := cfg.ReadTime
	if readTime <= 0 {
		readTime = 5 * time.Second
	}
	settle := cfg.SettleTime
	if settle <= 0 {
		settle = 30 * time.Second
	}

	// Read both controllers' OOB payloads (the data a genuine NFC
	// exchange would carry).
	var attackerPayload, victimPayload host.OOBPayload
	var haveA, haveM bool
	a.Host.ReadLocalOOBData(func(p host.OOBPayload, err error) {
		attackerPayload, haveA = p, err == nil
	})
	m.Host.ReadLocalOOBData(func(p host.OOBPayload, err error) {
		victimPayload, haveM = p, err == nil
	})
	s.RunFor(readTime)
	if !haveA || !haveM {
		rep.Elapsed = s.Now() - start
		return rep
	}

	// The tampered tag: the victim's phone taps what it believes is the
	// accessory's tag and stores the attacker's payload under the
	// accessory's address. The attacker's reader captured the victim's
	// payload in the same tap.
	m.Host.SetPeerOOBData(c.Addr(), attackerPayload)
	a.Host.SetPeerOOBData(m.Addr(), victimPayload)
	rep.PayloadsInstalled = true

	// The accessory is out of range; the attacker pairs as the accessory.
	// Both sides declare OOB data present, so the OOB model runs — no
	// dialog, no numeric value, nothing for the victim's user to see.
	c.Controller.Detach()
	a.SpoofIdentity(c.Addr(), c.Platform.COD)
	a.Host.Pair(m.Addr(), func(error) {})

	s.RunFor(settle)
	rep.Elapsed = s.Now() - start

	victimBond := m.Host.Bonds().Get(c.Addr())
	attackerBond := a.Host.Bonds().Get(m.Addr())
	rep.MITMEstablished = victimBond != nil && attackerBond != nil &&
		victimBond.Key == attackerBond.Key
	if victimBond != nil {
		rep.KeyAuthenticated = isAuthenticatedKeyType(victimBond.KeyType)
	}
	return rep
}

// isAuthenticatedKeyType reports whether a link key type carries MITM
// protection.
func isAuthenticatedKeyType(t bt.LinkKeyType) bool {
	return t == bt.KeyTypeAuthenticatedP192 || t == bt.KeyTypeAuthenticatedP256
}
