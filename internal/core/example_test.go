package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/device"
)

// ExampleRunLinkKeyExtraction runs the Fig. 5 attack against a bonded
// Android accessory and validates the stolen key by impersonation.
func ExampleRunLinkKeyExtraction() {
	tb, err := core.NewTestbed(10, core.TestbedOptions{
		ClientPlatform: device.GalaxyS21Android11,
		Bond:           true,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := core.RunLinkKeyExtraction(tb.Sched, core.LinkKeyExtractionConfig{
		Attacker: tb.A,
		Client:   tb.C,
		Target:   tb.M.Addr(),
		Channel:  core.ChannelHCISnoop,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("key matches bond:", rep.Key == tb.BondKey)
	fmt.Println("client disconnect:", rep.DisconnectReason)
	fmt.Println("client kept bond:", rep.ClientKeptBond)

	imp := core.RunImpersonation(tb.Sched, core.ImpersonationConfig{
		Attacker:   tb.A,
		Victim:     tb.M,
		ClientAddr: tb.C.Addr(),
		Key:        rep.Key,
	})
	fmt.Println("impersonation succeeded:", imp.Success)
	// Output:
	// key matches bond: true
	// client disconnect: LMP Response Timeout
	// client kept bond: true
	// impersonation succeeded: true
}

// ExampleRunPageBlocking shows the deterministic MITM with its forensic
// signature.
func ExampleRunPageBlocking() {
	tb, err := core.NewTestbed(21, core.TestbedOptions{})
	if err != nil {
		log.Fatal(err)
	}
	rep := core.RunPageBlocking(tb.Sched, core.PageBlockingConfig{
		Attacker:   tb.A,
		Client:     tb.C,
		Victim:     tb.M,
		VictimUser: tb.MUser,
		UsePLOC:    true,
	})
	fmt.Println("MITM established:", rep.MITMEstablished)
	fmt.Println("downgraded to Just Works:", rep.DowngradedToJustWorks)
	verdict := core.CheckPairingRoles(tb.M.Host.Connection(tb.C.Addr()))
	fmt.Println("role check suspicious:", verdict.Suspicious)
	// Output:
	// MITM established: true
	// downgraded to Just Works: true
	// role check suspicious: true
}

// ExampleAirSniffer_CrackPIN brute-forces a sniffed legacy pairing.
func ExampleAirSniffer_CrackPIN() {
	// See TestCrackPINRecoversPINAndKey for the full wiring; the candidate
	// generator is the interesting part.
	n := 0
	core.FourDigitPINs(func(pin string) bool {
		n++
		return pin != "0042" // stop once the search would hit 0042
	})
	fmt.Println("candidates visited:", n)
	// Output:
	// candidates visited: 43
}
