package core

import (
	"time"

	"repro/internal/bt"
	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/sim"
)

// Stealtooth-style silent automatic re-pairing (Kimura et al.): the
// attacker impersonates the bonded phone M toward the accessory C. C
// authenticates the returning "phone" with its stored key; the attacker
// cannot answer the challenge and responds LMP_not_accepted with "PIN or
// Key Missing", which the accessory's link manager treats as "the peer
// lost its key" — and silently re-pairs. Both ends are IO-less, so Just
// Works runs without a single dialog, and the accessory's bond for M now
// holds a key the attacker knows.

// StealtoothConfig parameterizes the silent re-pairing run.
type StealtoothConfig struct {
	// Attacker is device A; Client is the bonded accessory C being taken
	// over; VictimAddr is the bonded phone identity A assumes.
	Attacker   *device.Device
	Client     *device.Device
	VictimAddr bt.BDADDR
	// VictimCOD is the class of device A advertises while impersonating.
	VictimCOD bt.ClassOfDevice
	// OriginalKey is the setup bond key (used to report the overwrite).
	OriginalKey bt.LinkKey
	// SettleTime bounds the run; defaults to 30 s.
	SettleTime time.Duration
}

// StealtoothReport is the outcome of one silent re-pairing run.
type StealtoothReport struct {
	// RePaired reports that C silently negotiated a fresh key with the
	// attacker for the victim's address.
	RePaired bool
	// KeyChanged reports that C's stored key for the victim's address no
	// longer matches the original bond.
	KeyChanged bool
	// NewKey is C's stored key after the attack (zero when no bond).
	NewKey bt.LinkKey
	// ClientPrompts counts dialogs shown on C during the attack — the
	// point of the attack is that this stays zero.
	ClientPrompts int
	// Elapsed is virtual time consumed.
	Elapsed time.Duration
}

// RunStealtooth executes the silent automatic re-pairing attack against
// an accessory already bonded to VictimAddr.
func RunStealtooth(s *sim.Scheduler, cfg StealtoothConfig) StealtoothReport {
	var rep StealtoothReport
	start := s.Now()
	a, c := cfg.Attacker, cfg.Client

	settle := cfg.SettleTime
	if settle <= 0 {
		settle = 30 * time.Second
	}

	// Assume the bonded phone's identity, and advertise no IO so the
	// silent re-pairing runs Just Works.
	a.Host.SetIOCapability(bt.NoInputNoOutput)
	a.SpoofIdentity(cfg.VictimAddr, cfg.VictimCOD)

	// Connect to the accessory. C authenticates the returning bonded
	// peer on its own (AuthenticateBondedIncoming); A's missing key turns
	// that authentication into a silent re-pairing.
	a.Host.Connect(c.Addr(), func(*host.Conn, error) {})

	s.RunFor(settle)
	rep.Elapsed = s.Now() - start

	clientBond := c.Host.Bonds().Get(cfg.VictimAddr)
	attackerBond := a.Host.Bonds().Get(c.Addr())
	if clientBond != nil {
		rep.NewKey = clientBond.Key
		rep.KeyChanged = clientBond.Key != cfg.OriginalKey
	}
	rep.RePaired = clientBond != nil && attackerBond != nil &&
		clientBond.Key == attackerBond.Key && rep.KeyChanged
	return rep
}
