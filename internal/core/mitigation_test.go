package core

import (
	"testing"
	"time"

	"repro/internal/host"
)

// TestEnforcedRoleCheckStopsPageBlocking runs the page blocking attack
// against a victim with the §VII-B mitigation armed end-to-end: the
// victim's host drops the suspicious pairing before stage 1 completes.
func TestEnforcedRoleCheckStopsPageBlocking(t *testing.T) {
	tb := mustTestbed(t, 80, TestbedOptions{VictimEnforceRoleCheck: true})
	rep := RunPageBlocking(tb.Sched, PageBlockingConfig{
		Attacker: tb.A, Client: tb.C, Victim: tb.M, VictimUser: tb.MUser,
		UsePLOC: true,
	})
	if rep.MITMEstablished {
		t.Fatalf("mitigated victim still fell to page blocking: %+v", rep)
	}
	if rep.PairErr == nil {
		t.Fatal("the dropped pairing should surface as an error to the victim flow")
	}
	if len(tb.M.Host.RoleCheckAlerts) == 0 {
		t.Fatal("the mitigation should have logged an alert")
	}
	if tb.M.Host.Bonds().Get(tb.C.Addr()) != nil {
		t.Fatal("no bond must be created with the attacker")
	}
}

// TestEnforcedRoleCheckAllowsNormalPairing confirms the mitigation has no
// false positives on an ordinary pairing with a NoInputNoOutput accessory
// (the victim initiates both the connection and the pairing).
func TestEnforcedRoleCheckAllowsNormalPairing(t *testing.T) {
	tb := mustTestbed(t, 81, TestbedOptions{VictimEnforceRoleCheck: true})
	tb.MUser.ExpectPairing(tb.C.Addr())
	var pairErr error
	done := false
	tb.M.Host.Pair(tb.C.Addr(), func(err error) { pairErr = err; done = true })
	tb.Sched.RunFor(30 * time.Second)
	if !done || pairErr != nil {
		t.Fatalf("normal pairing under mitigation: done=%v err=%v", done, pairErr)
	}
	if len(tb.M.Host.RoleCheckAlerts) != 0 {
		t.Fatalf("false positive: %v", tb.M.Host.RoleCheckAlerts)
	}
}

// TestEnforcedRoleCheckAllowsIncomingDisplayPeer confirms that an
// incoming connection followed by a local pairing against a *display*
// capable peer (a phone) is not flagged — the check keys on the
// NoInputNoOutput downgrade specifically.
func TestEnforcedRoleCheckAllowsIncomingDisplayPeer(t *testing.T) {
	tb := mustTestbed(t, 82, TestbedOptions{VictimEnforceRoleCheck: true})
	// The attacker connects but honestly advertises DisplayYesNo; M's
	// user then pairs (numeric comparison both sides). This resembles a
	// legitimate "peer connected first, we pair later" session.
	tb.A.SpoofIdentity(tb.C.Addr(), tb.C.Platform.COD)
	tb.A.Host.Connect(tb.M.Addr(), func(_ *host.Conn, _ error) {})
	tb.Sched.RunFor(2 * time.Second)

	tb.MUser.ExpectPairing(tb.C.Addr())
	done := false
	tb.M.Host.Pair(tb.C.Addr(), func(err error) { done = err == nil })
	tb.Sched.RunFor(30 * time.Second)
	if !done {
		t.Fatal("pairing with a display-capable peer should pass the role check")
	}
	if len(tb.M.Host.RoleCheckAlerts) != 0 {
		t.Fatalf("false positive on DisplayYesNo peer: %v", tb.M.Host.RoleCheckAlerts)
	}
}
