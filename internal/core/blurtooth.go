package core

import (
	"time"

	"repro/internal/bt"
	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/sim"
)

// BLURtooth cross-transport key derivation abuse (CVE-2020-15802): a host
// with CTKD enabled derives an LE Long Term Key from every BR/EDR link
// key notification, unconditionally. After the victim pairs its accessory
// with numeric comparison (authenticated key, authenticated derived LTK),
// the attacker assumes the accessory's address with NoInputNoOutput and
// re-pairs over BR/EDR: Just Works yields an unauthenticated link key,
// and CTKD silently overwrites the stronger LTK with one derived from it
// — the cross-transport downgrade.

// BLURtoothConfig parameterizes the downgrade run.
type BLURtoothConfig struct {
	// Attacker is A; Client is the genuine accessory C (a DisplayYesNo
	// platform, so the setup pairing is authenticated); Victim is the
	// CTKD-enabled phone M. VictimUser must be installed as M's UI.
	Attacker   *device.Device
	Client     *device.Device
	Victim     *device.Device
	VictimUser *host.SimUser
	// PairTime bounds the legitimate pairing prologue (default 30 s).
	PairTime time.Duration
	// SettleTime bounds the attack phase; defaults to 30 s.
	SettleTime time.Duration
}

// BLURtoothReport is the outcome of one run.
type BLURtoothReport struct {
	// LegitPaired reports the authenticated setup pairing completed.
	LegitPaired bool
	// LTKWasAuthenticated reports the derived LTK was MITM-protected
	// after the legitimate pairing.
	LTKWasAuthenticated bool
	// Downgraded reports the attack outcome: M's bond for the accessory
	// now holds the attacker's unauthenticated key and an LTK re-derived
	// from it, no longer authenticated.
	Downgraded bool
	// NewLTKAuthenticated is the LTK's MITM flag after the attack.
	NewLTKAuthenticated bool
	// Elapsed is virtual time consumed.
	Elapsed time.Duration
}

// RunBLURtooth pairs M with C under numeric comparison, then lets the
// attacker overwrite the bond — and via CTKD the LE LTK — through an
// impersonated Just Works re-pairing.
func RunBLURtooth(s *sim.Scheduler, cfg BLURtoothConfig) BLURtoothReport {
	var rep BLURtoothReport
	start := s.Now()
	a, c, m := cfg.Attacker, cfg.Client, cfg.Victim

	pairTime := cfg.PairTime
	if pairTime <= 0 {
		pairTime = 30 * time.Second
	}
	settle := cfg.SettleTime
	if settle <= 0 {
		settle = 30 * time.Second
	}

	// Prologue: the victim deliberately pairs the accessory. Both sides
	// are DisplayYesNo, so stage 1 is numeric comparison and the link key
	// (and the CTKD-derived LTK) is authenticated.
	cfg.VictimUser.ExpectPairing(c.Addr())
	m.Host.Pair(c.Addr(), func(err error) { rep.LegitPaired = err == nil })
	s.RunFor(pairTime)
	cfg.VictimUser.ClearExpectation(c.Addr())
	if b := m.Host.Bonds().Get(c.Addr()); b != nil {
		rep.LTKWasAuthenticated = b.HasLTK && b.LTKAuthenticated
	}
	m.Host.Disconnect(c.Addr())
	s.RunFor(time.Second)

	// The accessory goes out of range; the attacker takes its identity
	// and forces Just Works with NoInputNoOutput.
	c.Controller.Detach()
	a.Host.SetIOCapability(bt.NoInputNoOutput)
	a.SpoofIdentity(c.Addr(), c.Platform.COD)
	a.Host.Pair(m.Addr(), func(error) {})

	s.RunFor(settle)
	rep.Elapsed = s.Now() - start

	victimBond := m.Host.Bonds().Get(c.Addr())
	attackerBond := a.Host.Bonds().Get(m.Addr())
	if victimBond != nil {
		rep.NewLTKAuthenticated = victimBond.HasLTK && victimBond.LTKAuthenticated
	}
	rep.Downgraded = victimBond != nil && attackerBond != nil &&
		victimBond.Key == attackerBond.Key &&
		victimBond.HasLTK && !victimBond.LTKAuthenticated &&
		victimBond.LTK == host.DeriveLTK(attackerBond.Key)
	return rep
}
