package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/hci"
	"repro/internal/host"
	"repro/internal/snoop"
)

func mustTestbed(t *testing.T, seed int64, opts TestbedOptions) *Testbed {
	t.Helper()
	tb, err := NewTestbed(seed, opts)
	if err != nil {
		t.Fatalf("building testbed: %v", err)
	}
	return tb
}

func TestLinkKeyExtractionViaSnoop(t *testing.T) {
	// C is an Android phone with the snoop log enabled, as in Table I.
	tb := mustTestbed(t, 10, TestbedOptions{
		ClientPlatform: device.GalaxyS21Android11,
		Bond:           true,
	})
	rep, err := RunLinkKeyExtraction(tb.Sched, LinkKeyExtractionConfig{
		Attacker: tb.A,
		Client:   tb.C,
		Target:   tb.M.Addr(),
		Channel:  ChannelHCISnoop,
	})
	if err != nil {
		t.Fatalf("extraction failed: %v (report %+v)", err, rep)
	}
	if rep.Key != tb.BondKey {
		t.Fatalf("extracted key %s != bonded key %s", rep.Key, tb.BondKey)
	}
	if rep.DisconnectReason != hci.StatusLMPResponseTimeout {
		t.Fatalf("client disconnect reason = %s, want LMP Response Timeout", rep.DisconnectReason)
	}
	if !rep.ClientKeptBond {
		t.Fatal("client lost its bond — the stealthy stall failed")
	}
}

func TestLinkKeyExtractionViaUSBSniff(t *testing.T) {
	// C is a Windows 10 PC with a USB dongle, sniffed by a bus analyzer.
	tb := mustTestbed(t, 11, TestbedOptions{
		ClientPlatform:   device.Windows10MSDriver,
		ClientUSBSniffer: true,
		Bond:             true,
	})
	rep, err := RunLinkKeyExtraction(tb.Sched, LinkKeyExtractionConfig{
		Attacker: tb.A,
		Client:   tb.C,
		Target:   tb.M.Addr(),
		Channel:  ChannelUSBSniff,
	})
	if err != nil {
		t.Fatalf("extraction failed: %v (report %+v)", err, rep)
	}
	if rep.Key != tb.BondKey {
		t.Fatalf("extracted key %s != bonded key %s", rep.Key, tb.BondKey)
	}
	if !rep.ClientKeptBond {
		t.Fatal("client lost its bond")
	}
}

func TestExtractionDefeatedBySnoopFilter(t *testing.T) {
	tb := mustTestbed(t, 12, TestbedOptions{
		ClientPlatform: device.Pixel2XLAndroid11,
		Bond:           true,
	})
	// §VII-A mitigation: the dump filters link-key payloads.
	tb.C.Snoop.Filter = SnoopLinkKeyFilter

	_, err := RunLinkKeyExtraction(tb.Sched, LinkKeyExtractionConfig{
		Attacker: tb.A,
		Client:   tb.C,
		Target:   tb.M.Addr(),
		Channel:  ChannelHCISnoop,
	})
	if !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("filtered dump should hide the key; got err=%v", err)
	}
}

func TestImpersonationWithExtractedKey(t *testing.T) {
	tb := mustTestbed(t, 13, TestbedOptions{
		ClientPlatform: device.LGV50Android9,
		Bond:           true,
	})
	ext, err := RunLinkKeyExtraction(tb.Sched, LinkKeyExtractionConfig{
		Attacker: tb.A,
		Client:   tb.C,
		Target:   tb.M.Addr(),
		Channel:  ChannelHCISnoop,
	})
	if err != nil {
		t.Fatalf("extraction: %v", err)
	}

	imp := RunImpersonation(tb.Sched, ImpersonationConfig{
		Attacker:   tb.A,
		Victim:     tb.M,
		ClientAddr: tb.C.Addr(),
		Key:        ext.Key,
	})
	if !imp.Success {
		t.Fatalf("impersonation failed: %+v", imp)
	}
	if !imp.AuthSucceeded {
		t.Fatal("LMP authentication with the extracted key failed")
	}
	if imp.NewPairingTriggered {
		t.Fatal("a new pairing was triggered — the key should have sufficed")
	}
	if imp.FakeBondConfig == "" {
		t.Fatal("missing fake bt_config.conf document")
	}
}

func TestImpersonationWithWrongKeyFails(t *testing.T) {
	tb := mustTestbed(t, 14, TestbedOptions{Bond: true})
	wrong := tb.BondKey
	wrong[0] ^= 0xFF
	imp := RunImpersonation(tb.Sched, ImpersonationConfig{
		Attacker:   tb.A,
		Victim:     tb.M,
		ClientAddr: tb.C.Addr(),
		Key:        wrong,
	})
	if imp.Success {
		t.Fatal("impersonation with a wrong key must fail")
	}
	if imp.AuthSucceeded {
		t.Fatal("LMP authentication must fail with a wrong key")
	}
}

func TestPageBlockingIsDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tb := mustTestbed(t, 100+seed, TestbedOptions{})
		rep := RunPageBlocking(tb.Sched, PageBlockingConfig{
			Attacker:   tb.A,
			Client:     tb.C,
			Victim:     tb.M,
			VictimUser: tb.MUser,
			UsePLOC:    true,
			RunInquiry: true,
		})
		if !rep.MITMEstablished {
			t.Fatalf("seed %d: MITM not established: %+v", seed, rep)
		}
		if rep.PairedWithClient {
			t.Fatalf("seed %d: victim paired with the genuine client", seed)
		}
		if !rep.DowngradedToJustWorks {
			t.Fatalf("seed %d: pairing was not downgraded to Just Works", seed)
		}
		if !rep.VictimWasConnectionResponder || !rep.VictimWasPairingInitiator {
			t.Fatalf("seed %d: missing Fig. 12b role signature: %+v", seed, rep)
		}
	}
}

func TestPageBlockingRoleMitigationDetects(t *testing.T) {
	tb := mustTestbed(t, 21, TestbedOptions{})
	rep := RunPageBlocking(tb.Sched, PageBlockingConfig{
		Attacker:   tb.A,
		Client:     tb.C,
		Victim:     tb.M,
		VictimUser: tb.MUser,
		UsePLOC:    true,
	})
	if !rep.MITMEstablished {
		t.Fatalf("attack should succeed before detection: %+v", rep)
	}
	verdict := CheckPairingRoles(tb.M.Host.Connection(tb.C.Addr()))
	if !verdict.Suspicious {
		t.Fatalf("§VII-B detector missed the attack: %+v", verdict)
	}
}

func TestRoleMitigationPassesNormalPairing(t *testing.T) {
	tb := mustTestbed(t, 22, TestbedOptions{})
	tb.MUser.ExpectPairing(tb.C.Addr())
	done := false
	tb.M.Host.Pair(tb.C.Addr(), func(err error) {
		if err != nil {
			t.Errorf("normal pairing failed: %v", err)
		}
		done = true
	})
	tb.Sched.RunFor(30 * time.Second)
	if !done {
		t.Fatal("normal pairing never completed")
	}
	verdict := CheckPairingRoles(tb.M.Host.Connection(tb.C.Addr()))
	if verdict.Suspicious {
		t.Fatalf("detector flagged a normal pairing: %+v", verdict)
	}
}

func TestBaselineRaceIsRoughlyEven(t *testing.T) {
	const trials = 60
	wins := 0
	clientWins := 0
	for seed := int64(0); seed < trials; seed++ {
		tb := mustTestbed(t, 1000+seed, TestbedOptions{})
		rep := RunBaselineMITM(tb.Sched, BaselineMITMConfig{
			Attacker:   tb.A,
			Client:     tb.C,
			Victim:     tb.M,
			VictimUser: tb.MUser,
		})
		if rep.MITMEstablished {
			wins++
		}
		if rep.PairedWithClient {
			clientWins++
		}
		if rep.MITMEstablished && rep.PairedWithClient {
			t.Fatalf("seed %d: both sides cannot win", seed)
		}
	}
	if wins+clientWins != trials {
		t.Fatalf("%d trials but %d wins + %d client wins", trials, wins, clientWins)
	}
	// The paper observed 42-60%; with 60 trials allow a generous band
	// around the theoretical 50%.
	if wins < trials*25/100 || wins > trials*75/100 {
		t.Fatalf("baseline success %d/%d falls outside the expected band", wins, trials)
	}
}

func TestNoPLOCAttackerIsUnreliable(t *testing.T) {
	const trials = 12
	wins := 0
	sawUnexpectedPrompt := false
	for seed := int64(0); seed < trials; seed++ {
		tb := mustTestbed(t, 2000+seed, TestbedOptions{})
		rep := RunPageBlocking(tb.Sched, PageBlockingConfig{
			Attacker:      tb.A,
			Client:        tb.C,
			Victim:        tb.M,
			VictimUser:    tb.MUser,
			UsePLOC:       false,
			UserPairDelay: 6 * time.Second,
		})
		if rep.MITMEstablished {
			wins++
		}
		for _, p := range rep.VictimPrompts {
			if !p.Expected && !p.Accepted {
				sawUnexpectedPrompt = true
			}
		}
	}
	if wins == trials {
		t.Fatalf("attacker without PLOC succeeded %d/%d — should be unreliable", wins, trials)
	}
	if !sawUnexpectedPrompt {
		t.Fatal("the premature pairing should have shown an unexpected popup at least once")
	}
}

func TestFig12SequencesDiffer(t *testing.T) {
	// Normal pairing: Create_Connection then Authentication_Requested.
	normal := mustTestbed(t, 30, TestbedOptions{})
	normal.MUser.ExpectPairing(normal.C.Addr())
	normal.M.Host.Pair(normal.C.Addr(), func(error) {})
	normal.Sched.RunFor(30 * time.Second)
	normalNames := snoop.CommandEventNames(snoop.Summarize(normal.M.Snoop.Records()))
	if !contains(normalNames, "HCI_Create_Connection") {
		t.Fatalf("normal trace lacks HCI_Create_Connection: %v", normalNames)
	}
	if contains(normalNames, "HCI_Connection_Request") {
		t.Fatalf("normal trace must not contain HCI_Connection_Request: %v", normalNames)
	}

	// Page-blocked pairing: Connection_Request + Accept, then the victim
	// still issues Authentication_Requested (Fig. 12b).
	blocked := mustTestbed(t, 31, TestbedOptions{})
	rep := RunPageBlocking(blocked.Sched, PageBlockingConfig{
		Attacker:   blocked.A,
		Client:     blocked.C,
		Victim:     blocked.M,
		VictimUser: blocked.MUser,
		UsePLOC:    true,
	})
	if !rep.MITMEstablished {
		t.Fatalf("attack failed: %+v", rep)
	}
	blockedNames := snoop.CommandEventNames(snoop.Summarize(blocked.M.Snoop.Records()))
	for _, want := range []string{
		"HCI_Connection_Request",
		"HCI_Accept_Connection_Request",
		"HCI_Authentication_Requested",
		"HCI_Link_Key_Request",
		"HCI_Link_Key_Request_Negative_Reply",
		"HCI_IO_Capability_Request",
	} {
		if !contains(blockedNames, want) {
			t.Fatalf("page-blocked trace lacks %s: %v", want, blockedNames)
		}
	}
	if contains(blockedNames, "HCI_Create_Connection") {
		t.Fatalf("page-blocked victim must not page: %v", blockedNames)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func TestExtractionRequiresBond(t *testing.T) {
	tb := mustTestbed(t, 40, TestbedOptions{}) // no bond
	_, err := RunLinkKeyExtraction(tb.Sched, LinkKeyExtractionConfig{
		Attacker: tb.A,
		Client:   tb.C,
		Target:   tb.M.Addr(),
		Channel:  ChannelHCISnoop,
	})
	if !errors.Is(err, ErrNoBond) {
		t.Fatalf("want ErrNoBond, got %v", err)
	}
}

func TestExtractionRequiresCaptureSurface(t *testing.T) {
	tb := mustTestbed(t, 41, TestbedOptions{
		ClientPlatform: device.Windows10CSRHarmony, // no snoop, no sniffer attached
		Bond:           true,
	})
	_, err := RunLinkKeyExtraction(tb.Sched, LinkKeyExtractionConfig{
		Attacker: tb.A,
		Client:   tb.C,
		Target:   tb.M.Addr(),
		Channel:  ChannelHCISnoop,
	})
	if !errors.Is(err, ErrNoCapture) {
		t.Fatalf("want ErrNoCapture for snoop, got %v", err)
	}
	_, err = RunLinkKeyExtraction(tb.Sched, LinkKeyExtractionConfig{
		Attacker: tb.A,
		Client:   tb.C,
		Target:   tb.M.Addr(),
		Channel:  ChannelUSBSniff,
	})
	if !errors.Is(err, ErrNoCapture) {
		t.Fatalf("want ErrNoCapture for USB, got %v", err)
	}
	_ = host.UUIDNAP // keep host import for future assertions
}

func TestExtractionChannelStrings(t *testing.T) {
	if ChannelHCISnoop.String() != "HCI dump" || ChannelUSBSniff.String() != "USB sniff" {
		t.Errorf("channel names: %s / %s", ChannelHCISnoop, ChannelUSBSniff)
	}
}

func TestCheckPairingRolesBranches(t *testing.T) {
	if v := CheckPairingRoles(nil); v.Suspicious {
		t.Error("nil connection cannot be suspicious")
	}
	c := &host.Conn{}
	if v := CheckPairingRoles(c); v.Suspicious {
		t.Error("peer-initiated pairing is not our anomaly")
	}
	c.PairingInitiator, c.Initiator = true, true
	if v := CheckPairingRoles(c); v.Suspicious {
		t.Error("we initiated both roles: normal")
	}
	c.Initiator = false
	// Pairing-initiator over incoming conn, but peer caps unknown.
	if v := CheckPairingRoles(c); v.Suspicious {
		t.Error("unknown peer capability should not flag")
	}
	c.HavePeerIOCap = true
	c.PeerIOCap = 1 // DisplayYesNo
	if v := CheckPairingRoles(c); v.Suspicious {
		t.Error("display-capable peer should not flag")
	}
	c.PeerIOCap = 3 // NoInputNoOutput
	if v := CheckPairingRoles(c); !v.Suspicious {
		t.Error("the full signature must flag")
	}
}

func TestAirSnifferResetAndLen(t *testing.T) {
	tb := mustTestbed(t, 110, TestbedOptions{})
	sniffer := NewAirSniffer(tb.Medium)
	tb.MUser.ExpectPairing(tb.C.Addr())
	tb.M.Host.Pair(tb.C.Addr(), func(error) {})
	tb.Sched.RunFor(30 * time.Second)
	if sniffer.Len() == 0 {
		t.Fatal("pairing produced no sniffed frames")
	}
	sniffer.Reset()
	if sniffer.Len() != 0 {
		t.Fatal("reset did not clear")
	}
}
