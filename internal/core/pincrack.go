package core

import (
	"context"
	"fmt"

	"repro/internal/bt"
	"repro/internal/btcrypto"
	"repro/internal/campaign"
	"repro/internal/controller"
)

// Offline PIN cracking against legacy pairing (the paper's §II-C
// background, Shaked & Wool [15] / btpincrack [14]): a passive sniffer
// that captures one complete legacy pairing — the initialization random,
// the two masked combination-key contributions, and one subsequent E1
// challenge-response — can brute-force the PIN offline. For each PIN
// candidate, re-derive the initialization key with E22, unmask the
// combination randoms, rebuild the link key with E21, and test it against
// the sniffed SRES. This is exactly the weakness Secure Simple Pairing
// was introduced to close.

// legacySniff is the material a passive observer collects from one
// legacy pairing.
type legacySniff struct {
	initiator  bt.BDADDR // InRandPDU sender = pairing initiator
	responder  bt.BDADDR
	inRand     [16]byte
	maskedInit [16]byte // CombKeyPDU from the initiator
	maskedResp [16]byte // CombKeyPDU from the responder
	haveInit   bool
	haveResp   bool
	challenge  [16]byte // first AuRandPDU after the exchange
	claimant   bt.BDADDR
	sres       [4]byte
	haveAuth   bool
	haveSres   bool
}

// PINCrackResult reports an offline PIN brute-force outcome.
type PINCrackResult struct {
	PIN     string
	LinkKey bt.LinkKey
	Tried   int
	Found   bool
}

// tryPIN re-derives the legacy handshake under one PIN candidate and
// tests the result against the sniffed SRES: E22 rebuilds the
// initialization key, unmasking the combination randoms, E21 rebuilds the
// two key shares, and E1 verifies the challenge-response.
func (sn *legacySniff) tryPIN(pin []byte) (bt.LinkKey, bool) {
	kinit := btcrypto.E22(sn.inRand, pin, [6]byte(sn.initiator))
	var randInit, randResp [16]byte
	for i := 0; i < 16; i++ {
		randInit[i] = sn.maskedInit[i] ^ kinit[i]
		randResp[i] = sn.maskedResp[i] ^ kinit[i]
	}
	ka := btcrypto.E21(randInit, [6]byte(sn.initiator))
	kb := btcrypto.E21(randResp, [6]byte(sn.responder))
	var key bt.LinkKey
	for i := range key {
		key[i] = ka[i] ^ kb[i]
	}
	sres, _ := btcrypto.E1(key, sn.challenge, [6]byte(sn.claimant))
	return key, sres == sn.sres
}

// CrackPIN brute-forces the PIN of a sniffed legacy pairing using the
// candidate generator (e.g. FourDigitPINs). It returns the PIN and the
// recovered link key on success.
func (s *AirSniffer) CrackPIN(candidates func(yield func(string) bool)) (PINCrackResult, error) {
	sn, err := s.collectLegacyPairing()
	if err != nil {
		return PINCrackResult{}, err
	}
	var res PINCrackResult
	var buf [16]byte
	candidates(func(pin string) bool {
		res.Tried++
		key, ok := sn.tryPIN(append(buf[:0], pin...))
		if ok {
			res.PIN, res.LinkKey, res.Found = pin, key, true
			return false
		}
		return true
	})
	if !res.Found {
		return res, fmt.Errorf("core: PIN not in candidate space after %d tries", res.Tried)
	}
	return res, nil
}

// CrackPINParallel is CrackPIN with the candidate space sharded across a
// campaign.Search worker pool with early cancellation: once a shard hits,
// no candidate block above the match is started. The result is identical
// to CrackPIN for any worker count — the lowest-index match wins and
// Tried reports the serial-equivalent candidate count (the matching
// candidate's position, or the full space on failure) rather than the
// scheduling-dependent number of predicate calls. workers <= 0 selects
// GOMAXPROCS.
func (s *AirSniffer) CrackPINParallel(candidates func(yield func(string) bool), workers int) (PINCrackResult, error) {
	sn, err := s.collectLegacyPairing()
	if err != nil {
		return PINCrackResult{}, err
	}
	var pins []string
	candidates(func(pin string) bool {
		pins = append(pins, pin)
		return true
	})
	keys := make([]bt.LinkKey, len(pins))
	found, _ := campaign.Search(context.Background(), len(pins), campaign.Config{Workers: workers}, func(i int) bool {
		key, ok := sn.tryPIN([]byte(pins[i]))
		if ok {
			keys[i] = key
		}
		return ok
	})
	if found < 0 {
		res := PINCrackResult{Tried: len(pins)}
		return res, fmt.Errorf("core: PIN not in candidate space after %d tries", res.Tried)
	}
	return PINCrackResult{PIN: pins[found], LinkKey: keys[found], Tried: found + 1, Found: true}, nil
}

// collectLegacyPairing walks the capture for the handshake material.
func (s *AirSniffer) collectLegacyPairing() (*legacySniff, error) {
	sn := &legacySniff{}
	stage := 0
	for _, f := range s.frames {
		switch pdu := f.Payload.(type) {
		case controller.InRandPDU:
			sn.initiator, sn.responder = f.From, f.To
			sn.inRand = pdu.Rand
			stage = 1
		case controller.CombKeyPDU:
			if stage == 0 {
				continue
			}
			if f.From == sn.initiator {
				sn.maskedInit = pdu.Masked
				sn.haveInit = true
			} else {
				sn.maskedResp = pdu.Masked
				sn.haveResp = true
			}
		case controller.AuRandPDU:
			if stage == 1 && sn.haveInit && sn.haveResp && !sn.haveAuth {
				sn.challenge = pdu.Rand
				sn.claimant = f.To
				sn.haveAuth = true
			}
		case controller.SresPDU:
			if sn.haveAuth && !sn.haveSres && f.From == sn.claimant {
				sn.sres = pdu.Sres
				sn.haveSres = true
			}
		}
	}
	if !sn.haveInit || !sn.haveResp || !sn.haveAuth || !sn.haveSres {
		return nil, fmt.Errorf("core: capture lacks a complete legacy pairing handshake")
	}
	return sn, nil
}

// FourDigitPINs yields "0000".."9999", the default PIN space of most
// legacy accessories. The digits are encoded directly — no format-string
// parsing in the cracking hot loop.
func FourDigitPINs(yield func(string) bool) {
	var d [4]byte
	for i := 0; i < 10000; i++ {
		d[0] = '0' + byte(i/1000)
		d[1] = '0' + byte(i/100%10)
		d[2] = '0' + byte(i/10%10)
		d[3] = '0' + byte(i%10)
		if !yield(string(d[:])) {
			return
		}
	}
}
