package core

import (
	"time"

	"repro/internal/bt"
	"repro/internal/device"
	"repro/internal/hci"
	"repro/internal/host"
	"repro/internal/sim"
)

// PageBlockingConfig parameterizes the Fig. 6b attack: the attacker
// pre-establishes a Physical Layer Only Connection to the victim while
// impersonating the accessory the victim intends to pair with, so the
// victim's own pairing attempt is routed to the attacker with certainty.
type PageBlockingConfig struct {
	// Attacker is device A.
	Attacker *device.Device
	// Client is device C, the genuine accessory the victim wants. It
	// remains discoverable and connectable throughout (it would win the
	// page race roughly half the time without the attack).
	Client *device.Device
	// Victim is device M, whose user initiates the pairing.
	Victim *device.Device
	// VictimUser is the simulated user on M; it must be installed as M's
	// UI beforehand.
	VictimUser *host.SimUser

	// UsePLOC enables the attack proper. When false, the attacker behaves
	// like an unpatched stack: it connects and immediately tries to pair,
	// producing the unexpected-popup failure mode of §V-B1.
	UsePLOC bool
	// PLOCHold is the Fig. 13 postponement window; defaults to 10 s.
	PLOCHold time.Duration
	// UserPairDelay is when (after attack start) M's user initiates
	// pairing with C; defaults to 3 s, inside the paper's 10 s assumption.
	UserPairDelay time.Duration
	// RunInquiry makes M's user perform device discovery before pairing
	// (steps 4-5 of Fig. 6b).
	RunInquiry bool
	// KeepAlive, when positive, makes the attacker exchange dummy traffic
	// at this interval once the hold releases, preventing supervision
	// timeouts on long PLOC states (§VI-B2).
	KeepAlive time.Duration
	// SettleTime bounds the run; defaults to UserPairDelay + 90 s.
	SettleTime time.Duration
	// Backoff shapes the attacker's paging retries on a lossy channel
	// (zero value: DefaultBackoff); jitter is drawn only on retries.
	Backoff BackoffPolicy
}

// PageBlockingReport is the outcome of one page blocking run.
type PageBlockingReport struct {
	// MITMEstablished reports that the victim's pairing completed against
	// the attacker: both ended up holding the same link key.
	MITMEstablished bool
	// PairedWithClient reports that the genuine accessory won instead.
	PairedWithClient bool
	// DowngradedToJustWorks reports that the victim's pairing ran in Just
	// Works because the attacker advertised NoInputNoOutput.
	DowngradedToJustWorks bool
	// VictimWasConnectionResponder + VictimWasPairingInitiator is the
	// Fig. 12b forensic signature: under page blocking the victim
	// accepted the connection (HCI_Connection_Request) yet initiated the
	// pairing (HCI_Authentication_Requested).
	VictimWasConnectionResponder bool
	VictimWasPairingInitiator    bool
	// VictimPrompts are the dialogs M's user saw.
	VictimPrompts []host.Prompt
	// PairErr is the error M's pairing flow returned, if any.
	PairErr error
	// Elapsed is virtual time consumed.
	Elapsed time.Duration
}

// RunPageBlocking executes the six-step attack of §V-B1 and the
// subsequent SSP downgrade, then reports what happened from every side.
func RunPageBlocking(s *sim.Scheduler, cfg PageBlockingConfig) PageBlockingReport {
	var rep PageBlockingReport
	start := s.Now()
	a, c, m := cfg.Attacker, cfg.Client, cfg.Victim

	hold := cfg.PLOCHold
	if hold <= 0 {
		hold = 10 * time.Second
	}
	pairDelay := cfg.UserPairDelay
	if pairDelay <= 0 {
		pairDelay = 3 * time.Second
	}
	settle := cfg.SettleTime
	if settle <= 0 {
		settle = pairDelay + 90*time.Second
	}

	// Step 1: NoInputNoOutput forces Just Works.
	a.Host.SetIOCapability(bt.NoInputNoOutput)
	// Step 2: impersonate C.
	a.SpoofIdentity(c.Addr(), c.Platform.COD)

	if cfg.UsePLOC {
		hooks := a.Host.Hooks()
		hooks.PLOCHold = hold
		a.Host.SetHooks(hooks)
		// Step 3: establish the connection and stay in PLOC. The connect
		// callback fires only when the hold releases; from then on the
		// attacker optionally keeps the link alive with dummy traffic.
		// Paging retries with backoff so a lossy channel doesn't end the
		// attack before it starts.
		RetryingConnect(s, a.Host, m.Addr(), cfg.Backoff, func(conn *host.Conn, err error) {
			if err != nil || cfg.KeepAlive <= 0 {
				return
			}
			var ping func()
			ping = func() {
				if a.Host.Connection(m.Addr()) != conn {
					return
				}
				a.Host.SendPing(conn)
				s.Schedule(cfg.KeepAlive, ping)
			}
			s.Schedule(cfg.KeepAlive, ping)
		})
	} else {
		// Unpatched-attacker strawman (§V-B1): connect and immediately
		// pair, producing a popup on M at an unexpected time; on failure
		// the attacker drops the link.
		RetryingConnect(s, a.Host, m.Addr(), cfg.Backoff, func(conn *host.Conn, err error) {
			if err != nil {
				return
			}
			a.Host.Authenticate(conn, func(err error) {
				if err != nil {
					a.Host.Disconnect(m.Addr())
				}
			})
		})
	}

	// Steps 4-6: the victim's user discovers devices and initiates the
	// pairing with C at their own pace.
	pairDone := false
	s.Schedule(pairDelay, func() {
		cfg.VictimUser.ExpectPairing(c.Addr())
		pair := func() {
			m.Host.Pair(c.Addr(), func(err error) {
				rep.PairErr = err
				pairDone = true
			})
		}
		if cfg.RunInquiry {
			// The user scans again when the accessory didn't show up —
			// inquiry responses are single unprotected frames, so on a
			// lossy channel a scan can legitimately come back empty. On a
			// clean channel C always answers the first scan, so the extra
			// attempts never run.
			var scan func(attempt int)
			scan = func(attempt int) {
				m.Host.StartInquiry(2, func(resps []hci.InquiryResponse) {
					found := false
					for _, r := range resps {
						if r.Addr == c.Addr() {
							found = true
						}
					}
					if !found && attempt < 3 {
						scan(attempt + 1)
						return
					}
					pair()
				})
			}
			scan(1)
		} else {
			pair()
		}
	})

	s.RunFor(settle)
	rep.Elapsed = s.Now() - start
	_ = pairDone

	// Evaluate outcome: who does the victim's new bond actually match?
	victimBond := m.Host.Bonds().Get(c.Addr())
	attackerBond := a.Host.Bonds().Get(m.Addr())
	clientBond := c.Host.Bonds().Get(m.Addr())
	if victimBond != nil && attackerBond != nil && victimBond.Key == attackerBond.Key {
		rep.MITMEstablished = true
	}
	if victimBond != nil && clientBond != nil && victimBond.Key == clientBond.Key {
		rep.PairedWithClient = true
	}
	if conn := m.Host.Connection(c.Addr()); conn != nil {
		rep.VictimWasConnectionResponder = !conn.Initiator
		rep.VictimWasPairingInitiator = conn.PairingInitiator
		rep.DowngradedToJustWorks = conn.HavePeerIOCap && conn.PeerIOCap == bt.NoInputNoOutput
	}
	rep.VictimPrompts = cfg.VictimUser.Prompts()
	return rep
}
