package core

import (
	"repro/internal/bt"
	"repro/internal/host"
	"repro/internal/snoop"
)

// Mitigations from §VII.

// SnoopLinkKeyFilter is the §VII-A short-term mitigation: a record filter
// for the HCI dump module that strips link keys before they reach the
// log. Install it with dump.Filter = core.SnoopLinkKeyFilter.
var SnoopLinkKeyFilter = snoop.LinkKeyFilter

// PairingRoleVerdict is the outcome of the §VII-B role cross-check.
type PairingRoleVerdict struct {
	// Suspicious reports the page blocking signature: this side initiated
	// the pairing over a connection it did not initiate, and the peer
	// declared NoInputNoOutput (forcing Just Works).
	Suspicious bool
	// Reason explains the verdict.
	Reason string
}

// CheckPairingRoles implements the paper's proposed detection: flag a
// pairing where the pairing initiator is not the connection initiator and
// the connection initiator (the peer) advertises NoInputNoOutput. Run it
// on the victim's connection when a pairing is about to start or has
// completed.
func CheckPairingRoles(c *host.Conn) PairingRoleVerdict {
	if c == nil {
		return PairingRoleVerdict{Reason: "no connection"}
	}
	if !c.PairingInitiator {
		return PairingRoleVerdict{Reason: "peer initiated the pairing"}
	}
	if c.Initiator {
		return PairingRoleVerdict{Reason: "we initiated both the connection and the pairing (normal)"}
	}
	if !c.HavePeerIOCap || c.PeerIOCap != bt.NoInputNoOutput {
		return PairingRoleVerdict{Reason: "connection initiator is not NoInputNoOutput"}
	}
	return PairingRoleVerdict{
		Suspicious: true,
		Reason:     "pairing initiated locally over a peer-initiated connection whose initiator claims NoInputNoOutput",
	}
}
