package core

import (
	"testing"
	"time"

	"repro/internal/bt"
	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/snoop"
)

// TestHarvestAllBondsFromOneAccessory models the paper's soft-target
// rationale at scale: an accessory (a shared car kit) is bonded with
// several phones. The attacker runs the extraction attack once per
// impersonated phone against the same accessory and walks away with every
// link key — the car kit's single HCI dump betrays its whole pairing
// list.
func TestHarvestAllBondsFromOneAccessory(t *testing.T) {
	s := sim.NewScheduler(1234)
	med := radio.NewMedium(s, radio.DefaultConfig())

	kit := device.New(s, med, "CarKit", AddrC, device.AndroidAutomotive, device.Options{
		Services:                   []host.ServiceUUID{host.UUIDHandsFree},
		AuthenticateBondedIncoming: true,
	})

	// Three family phones bond with the kit.
	phones := []struct {
		addr bt.BDADDR
		p    device.Platform
	}{
		{bt.MustBDADDR("48:90:00:00:00:01"), device.GalaxyS21Android11},
		{bt.MustBDADDR("48:90:00:00:00:02"), device.Pixel2XLAndroid11},
		{bt.MustBDADDR("48:90:00:00:00:03"), device.Nexus5XAndroid8},
	}
	keys := make(map[bt.BDADDR]bt.LinkKey)
	for _, ph := range phones {
		d := device.New(s, med, "Phone-"+ph.addr.String(), ph.addr, ph.p, device.Options{})
		u := host.NewSimUser(s)
		u.AcceptUnexpected = true
		d.Host.SetUI(u)
		done := false
		d.Host.Pair(kit.Addr(), func(err error) {
			if err != nil {
				t.Fatalf("bonding %s: %v", ph.addr, err)
			}
			done = true
		})
		s.RunFor(30 * time.Second)
		if !done {
			t.Fatalf("bonding %s never completed", ph.addr)
		}
		d.Host.Disconnect(kit.Addr())
		s.RunFor(time.Second)
		keys[ph.addr] = d.Host.Bonds().Get(kit.Addr()).Key
	}
	if kit.Host.Bonds().Len() != 3 {
		t.Fatalf("kit bonds: %d", kit.Host.Bonds().Len())
	}
	kit.Snoop.Reset() // the attacker enables logging only now

	attacker := device.New(s, med, "Attacker", AddrA, device.Nexus5XAndroid6, device.Options{
		ForceSnoop: true,
		Hooks:      host.Hooks{IgnoreLinkKeyRequest: true},
	})

	// One extraction run per impersonated phone, against the same kit.
	for _, ph := range phones {
		rep, err := RunLinkKeyExtraction(s, LinkKeyExtractionConfig{
			Attacker: attacker, Client: kit, Target: ph.addr, Channel: ChannelHCISnoop,
		})
		if err != nil {
			t.Fatalf("extracting %s: %v", ph.addr, err)
		}
		if rep.Key != keys[ph.addr] {
			t.Fatalf("key for %s wrong: %s vs %s", ph.addr, rep.Key, keys[ph.addr])
		}
		if !rep.ClientKeptBond {
			t.Fatalf("kit lost its bond for %s", ph.addr)
		}
	}

	// The kit's single dump now holds every family key.
	hits := snoop.ExtractLinkKeys(kit.Snoop.Records())
	distinct := make(map[bt.BDADDR]bt.LinkKey)
	for _, h := range hits {
		distinct[h.Peer] = h.Key
	}
	if len(distinct) != 3 {
		t.Fatalf("dump holds keys for %d phones, want 3", len(distinct))
	}
	for addr, key := range keys {
		if distinct[addr] != key {
			t.Fatalf("dump key for %s mismatched", addr)
		}
	}
}
