package core

import (
	"time"

	"repro/internal/bt"
	"repro/internal/btcrypto"
	"repro/internal/controller"
	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/radio"
	"repro/internal/sim"
)

// Passkey Entry sniffing and the enhanced-protocol mitigation. Plain
// Passkey Entry leaks one passkey bit per commit-reveal round to a
// passive air sniffer: every round-i commitment is f1(PKx, PKx', N_i, Z)
// with Z ∈ {0x80, 0x81}, and once the nonce is revealed the sniffer just
// tests both values. Against an accessory whose passkey is printed on a
// label (fixed across pairings), one sniffed session yields the full
// passkey and the attacker can impersonate the accessory's display side
// at the next pairing. The enhanced variant masks each round's Z with a
// bit of the shared DH key, so the recovered bits are blinded — and a
// non-enhanced MITM cannot even complete the rounds against an enhanced
// endpoint.

// PasskeySniffConfig parameterizes the sniff-then-impersonate run.
type PasskeySniffConfig struct {
	// Attacker is A; Client is the printed-label accessory C (display
	// side); Victim is the keyboard-side phone M. VictimUser must be M's
	// UI with TypedPasskey set to the printed passkey.
	Attacker   *device.Device
	Client     *device.Device
	Victim     *device.Device
	VictimUser *host.SimUser
	// Sniffer is the passive air capture; it must have been attached to
	// the medium before the legitimate pairing runs.
	Sniffer *AirSniffer
	// PrintedPasskey is the label value (must match the client's fixed
	// passkey configuration).
	PrintedPasskey uint32
	// PairTime bounds the legitimate pairing prologue (default 30 s).
	PairTime time.Duration
	// SettleTime bounds the attack phase; defaults to 30 s.
	SettleTime time.Duration
}

// PasskeySniffReport is the outcome of one run.
type PasskeySniffReport struct {
	// LegitPaired reports the sniffed legitimate pairing completed.
	LegitPaired bool
	// Recovered reports a full 20-bit passkey was reconstructed from the
	// capture (every round solved for some Z).
	Recovered bool
	// RecoveredPasskey is the sniffer's reconstruction; under the
	// enhanced protocol it is DH-blinded garbage.
	RecoveredPasskey uint32
	// RecoveryCorrect reports the reconstruction matches the label.
	RecoveryCorrect bool
	// Impersonated reports the attack outcome: the victim bonded the
	// accessory's address to the attacker using the replayed passkey.
	Impersonated bool
	// Elapsed is virtual time consumed.
	Elapsed time.Duration
}

// RecoverPasskeyFromCapture reconstructs the display side's passkey from
// a sniffed Passkey Entry session: for each commit-reveal round sent by
// displayAddr it tests both Z values against the revealed nonce. It
// returns ok=false when any round has no matching Z or rounds are
// missing (an enhanced session still yields 20 "solved" bits — they are
// XOR-masked with DH key bits the sniffer does not hold).
func RecoverPasskeyFromCapture(frames []radio.SniffedFrame, displayAddr, peerAddr bt.BDADDR) (uint32, bool) {
	// Index the public keys and the display side's first commit and
	// nonce per round (ARQ retransmissions repeat frames; first wins).
	pubX := make(map[bt.BDADDR][32]byte)
	commits := make(map[int][16]byte)
	nonces := make(map[int][16]byte)
	for _, f := range frames {
		switch pdu := f.Payload.(type) {
		case controller.PublicKeyPDU:
			if _, seen := pubX[f.From]; !seen && len(pdu.Pub) == 65 {
				var x [32]byte
				copy(x[:], pdu.Pub[1:33])
				pubX[f.From] = x
			}
		case controller.PasskeyCommitPDU:
			if f.From == displayAddr {
				if _, seen := commits[pdu.Round]; !seen {
					commits[pdu.Round] = pdu.C
				}
			}
		case controller.PasskeyNoncePDU:
			if f.From == displayAddr {
				if _, seen := nonces[pdu.Round]; !seen {
					nonces[pdu.Round] = pdu.N
				}
			}
		}
	}
	senderX, okS := pubX[displayAddr]
	receiverX, okR := pubX[peerAddr]
	if !okS || !okR {
		return 0, false
	}
	var passkey uint32
	for i := 0; i < 20; i++ {
		commit, okC := commits[i]
		nonce, okN := nonces[i]
		if !okC || !okN {
			return 0, false
		}
		switch commit {
		case btcrypto.F1(senderX, receiverX, nonce, 0x80):
			// bit i is 0
		case btcrypto.F1(senderX, receiverX, nonce, 0x81):
			passkey |= 1 << uint(i)
		default:
			return 0, false
		}
	}
	return passkey, true
}

// RunPasskeySniff pairs M with the fixed-passkey accessory C under a
// passive sniffer, reconstructs the passkey from the capture, and
// replays it from an impersonated display side. With the enhanced
// protocol armed on M and C (TestbedOptions.EnhancedPasskey) the
// reconstruction is blinded and the impersonation fails.
func RunPasskeySniff(s *sim.Scheduler, cfg PasskeySniffConfig) PasskeySniffReport {
	var rep PasskeySniffReport
	start := s.Now()
	a, c, m := cfg.Attacker, cfg.Client, cfg.Victim

	pairTime := cfg.PairTime
	if pairTime <= 0 {
		pairTime = 30 * time.Second
	}
	settle := cfg.SettleTime
	if settle <= 0 {
		settle = 30 * time.Second
	}

	// The accessory shows only its printed passkey; the victim types it.
	m.Host.SetIOCapability(bt.KeyboardOnly)
	c.Host.SetIOCapability(bt.DisplayOnly)

	// Prologue: the victim deliberately pairs the accessory while the
	// sniffer listens.
	cfg.VictimUser.ExpectPairing(c.Addr())
	m.Host.Pair(c.Addr(), func(err error) { rep.LegitPaired = err == nil })
	s.RunFor(pairTime)

	rep.RecoveredPasskey, rep.Recovered = RecoverPasskeyFromCapture(cfg.Sniffer.Frames(), c.Addr(), m.Addr())
	rep.RecoveryCorrect = rep.Recovered && rep.RecoveredPasskey == cfg.PrintedPasskey%1_000_000

	m.Host.Disconnect(c.Addr())
	s.RunFor(time.Second)
	if !rep.Recovered {
		rep.Elapsed = s.Now() - start
		return rep
	}

	// Attack: the accessory is out of range; the attacker assumes its
	// identity and display role and replays the recovered passkey. The
	// victim re-pairs, reading the same printed label as always.
	c.Controller.Detach()
	a.Host.SetIOCapability(bt.DisplayOnly)
	recovered := rep.RecoveredPasskey
	a.Controller.SetFixedPasskey(&recovered)
	a.SpoofIdentity(c.Addr(), c.Platform.COD)
	a.Host.Pair(m.Addr(), func(error) {})

	s.RunFor(settle)
	rep.Elapsed = s.Now() - start

	victimBond := m.Host.Bonds().Get(c.Addr())
	attackerBond := a.Host.Bonds().Get(m.Addr())
	rep.Impersonated = victimBond != nil && attackerBond != nil &&
		victimBond.Key == attackerBond.Key
	return rep
}
