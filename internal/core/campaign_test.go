package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/host"
)

// TestPersistentImpersonationCampaign runs the paper's complete threat
// narrative (§III-B) in one world:
//
//  1. the victim phone M holds sensitive data (a PBAP phone book) and is
//     bonded with a soft-target accessory C;
//  2. the attacker extracts the bonded link key from C's HCI dump without
//     alerting anyone;
//  3. the attacker impersonates C and pulls M's phone book;
//  4. — persistence — the attacker disconnects, comes back later, and
//     pulls the data again with the same key: the compromise survives
//     across sessions because the semi-permanent link key was stolen.
func TestPersistentImpersonationCampaign(t *testing.T) {
	tb := mustTestbed(t, 100, TestbedOptions{
		ClientPlatform: device.GalaxyS21Android11,
		Bond:           true,
	})
	phonebook := []byte("BEGIN:VCARD N:Koh;Changseok TEL:+82-2-0000-0000 END:VCARD")
	tb.M.Host.ProfileData[host.UUIDPBAP] = phonebook
	tb.M.Host.RegisterService(host.UUIDPBAP)
	promptsBeforeAttack := len(tb.MUser.Prompts()) // setup pairing dialogs

	// Step 2: the extraction attack.
	ext, err := RunLinkKeyExtraction(tb.Sched, LinkKeyExtractionConfig{
		Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: ChannelHCISnoop,
	})
	if err != nil {
		t.Fatalf("extraction: %v", err)
	}

	// Step 3: impersonate C, secure the link, pull the phone book.
	tb.A.SpoofIdentity(tb.C.Addr(), tb.C.Platform.COD)
	hooks := tb.A.Host.Hooks()
	hooks.IgnoreLinkKeyRequest = false
	tb.A.Host.SetHooks(hooks)
	tb.A.Host.Bonds().Put(host.Bond{Addr: tb.M.Addr(), Key: ext.Key})

	pull := func() []byte {
		var got []byte
		done := false
		tb.A.Host.ConnectProfile(tb.M.Addr(), host.UUIDPBAP, func(err error) {
			if err != nil {
				t.Errorf("profile connect: %v", err)
				done = true
				return
			}
			conn := tb.A.Host.Connection(tb.M.Addr())
			tb.A.Host.PullData(conn, host.UUIDPBAP, func(data []byte, err error) {
				if err != nil {
					t.Errorf("pull: %v", err)
				}
				got = data
				done = true
			})
		})
		tb.Sched.RunFor(60 * time.Second)
		if !done {
			t.Fatal("pull never resolved")
		}
		return got
	}

	first := pull()
	if !bytes.Equal(first, phonebook) {
		t.Fatalf("first exfiltration failed: %q", first)
	}

	// Step 4: persistence across sessions.
	tb.A.Host.Disconnect(tb.M.Addr())
	tb.Sched.RunFor(time.Second)
	second := pull()
	if !bytes.Equal(second, phonebook) {
		t.Fatalf("second exfiltration failed: %q", second)
	}

	// The victim's user never saw a single dialog through the whole
	// campaign — the attack is silent end to end.
	if got := len(tb.MUser.Prompts()) - promptsBeforeAttack; got != 0 {
		t.Fatalf("the victim saw %d dialogs during the campaign; it must be silent", got)
	}
	// And the accessory still trusts its stored key.
	if tb.C.Host.Bonds().Get(tb.M.Addr()) == nil {
		t.Fatal("the accessory's bond should be untouched")
	}
}

// TestCampaignBlockedByKeyRotation shows the obvious long-term fix the
// paper implies: once M and C re-pair (rotating the link key), the stolen
// key stops working.
func TestCampaignBlockedByKeyRotation(t *testing.T) {
	tb := mustTestbed(t, 101, TestbedOptions{
		ClientPlatform: device.GalaxyS21Android11,
		Bond:           true,
	})
	ext, err := RunLinkKeyExtraction(tb.Sched, LinkKeyExtractionConfig{
		Attacker: tb.A, Client: tb.C, Target: tb.M.Addr(), Channel: ChannelHCISnoop,
	})
	if err != nil {
		t.Fatalf("extraction: %v", err)
	}

	// M and C re-pair from scratch (the user removed and re-added the
	// accessory), rotating the key.
	tb.M.Host.Bonds().Delete(tb.C.Addr())
	tb.C.Host.Bonds().Delete(tb.M.Addr())
	tb.MUser.ExpectPairing(tb.C.Addr())
	tb.M.Host.Pair(tb.C.Addr(), func(error) {})
	tb.Sched.RunFor(30 * time.Second)
	tb.M.Host.Disconnect(tb.C.Addr())
	tb.Sched.RunFor(time.Second)
	fresh := tb.M.Host.Bonds().Get(tb.C.Addr())
	if fresh == nil || fresh.Key == ext.Key {
		t.Fatal("re-pairing should rotate the key")
	}

	// The stolen key is now dead.
	imp := RunImpersonation(tb.Sched, ImpersonationConfig{
		Attacker: tb.A, Victim: tb.M, ClientAddr: tb.C.Addr(), Key: ext.Key,
	})
	if imp.Success || imp.AuthSucceeded {
		t.Fatalf("rotated key must not authenticate: %+v", imp)
	}
}
