package core

import (
	"bytes"
	"testing"
	"time"
)

// The parallel attack variants must return byte-identical results to the
// serial reference at every worker count, including the deterministic
// Tried counters. See internal/campaign for the search contract.

func TestCrackPINParallelMatchesSerial(t *testing.T) {
	s, sniffer, a, _, target := legacyWorld(63, "8731", "8731")
	a.Pair(target, func(error) {})
	s.RunFor(10 * time.Second)

	want, err := sniffer.CrackPIN(FourDigitPINs)
	if err != nil {
		t.Fatalf("serial CrackPIN: %v", err)
	}
	for _, workers := range []int{1, 2, 3, 4, 8} {
		got, err := sniffer.CrackPINParallel(FourDigitPINs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Fatalf("workers=%d: result %+v != serial %+v", workers, got, want)
		}
	}
}

func TestCrackPINParallelMissMatchesSerial(t *testing.T) {
	s, sniffer, a, _, target := legacyWorld(64, "9999", "9999")
	a.Pair(target, func(error) {})
	s.RunFor(10 * time.Second)

	candidates := func(yield func(string) bool) {
		for _, pin := range []string{"0000", "1234", "4321"} {
			if !yield(pin) {
				return
			}
		}
	}
	want, wantErr := sniffer.CrackPIN(candidates)
	if wantErr == nil {
		t.Fatal("serial crack must miss")
	}
	for _, workers := range []int{1, 2, 4} {
		got, err := sniffer.CrackPINParallel(candidates, workers)
		if err == nil {
			t.Fatalf("workers=%d: parallel crack must miss too", workers)
		}
		if got != want {
			t.Fatalf("workers=%d: miss result %+v != serial %+v", workers, got, want)
		}
	}
}

func TestBruteForceParallelMatchesSerial(t *testing.T) {
	w, err := NewKNOBWorld(65, 2)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("parallel knob secret")
	done := false
	w.Testbed.M.Host.Pair(w.Testbed.C.Addr(), func(err error) {
		if err != nil {
			t.Fatalf("pair: %v", err)
		}
		conn := w.Testbed.M.Host.Connection(w.Testbed.C.Addr())
		w.Testbed.M.Host.Encrypt(conn, func(err error) {
			if err != nil {
				t.Fatalf("encrypt: %v", err)
			}
			w.Testbed.M.Host.SendData(conn, secret)
			done = true
		})
	})
	w.Testbed.Sched.RunFor(10 * time.Second)
	if !done {
		t.Fatal("secret transfer never completed")
	}

	wantPlain, wantTried, wantOK := w.BruteForce(secret[:4])
	if !wantOK {
		t.Fatal("serial brute force failed")
	}
	for _, workers := range []int{1, 2, 3, 4, 8} {
		plain, tried, ok := w.BruteForceParallel(secret[:4], workers)
		if !ok {
			t.Fatalf("workers=%d: brute force failed", workers)
		}
		if !bytes.Equal(plain, wantPlain) || tried != wantTried {
			t.Fatalf("workers=%d: (%q, %d) != serial (%q, %d)",
				workers, plain, tried, wantPlain, wantTried)
		}
	}
}
