package core

import (
	"time"

	"repro/internal/bt"
	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/sim"
)

// Happy MitM accepted-key UI blindness (Classen & Hollick): once a host
// holds a bond for an address, re-pairing with that address never reaches
// the user — the stack auto-accepts and silently swaps the stored key.
// The attacker waits until the genuine accessory is out of range, assumes
// its address with NoInputNoOutput, and pairs; the victim's phone replaces
// the accessory's key with the attacker's without showing a dialog.

// HappyMitMConfig parameterizes the silent key replacement run.
type HappyMitMConfig struct {
	// Attacker is A; Client is the genuine bonded accessory C; Victim is
	// the phone M whose bond is overwritten. VictimUser must be M's UI.
	Attacker   *device.Device
	Client     *device.Device
	Victim     *device.Device
	VictimUser *host.SimUser
	// OriginalKey is the setup bond key (used to report the overwrite).
	OriginalKey bt.LinkKey
	// ReconnectTime bounds the legitimate reconnect prologue (default
	// 15 s): the victim uses the accessory normally first, which is what
	// puts the stored-key sighting in the HCI dump.
	ReconnectTime time.Duration
	// SettleTime bounds the attack phase; defaults to 30 s.
	SettleTime time.Duration
}

// HappyMitMReport is the outcome of one run.
type HappyMitMReport struct {
	// Reconnected reports the legitimate prologue completed.
	Reconnected bool
	// KeyReplaced reports that M's bond for the accessory's address now
	// matches the attacker's key instead of the original.
	KeyReplaced bool
	// NewKey is M's stored key after the attack (zero when no bond).
	NewKey bt.LinkKey
	// AttackPrompts counts dialogs shown to M's user during the attack
	// phase — the UI blindness means this stays zero.
	AttackPrompts int
	// Elapsed is virtual time consumed.
	Elapsed time.Duration
}

// RunHappyMitM executes the accepted-key UI blindness attack against a
// victim whose host suppresses re-pairing dialogs for bonded peers
// (TestbedOptions.VictimSilentBondedRepair).
func RunHappyMitM(s *sim.Scheduler, cfg HappyMitMConfig) HappyMitMReport {
	var rep HappyMitMReport
	start := s.Now()
	a, c, m := cfg.Attacker, cfg.Client, cfg.Victim

	reconnect := cfg.ReconnectTime
	if reconnect <= 0 {
		reconnect = 15 * time.Second
	}
	settle := cfg.SettleTime
	if settle <= 0 {
		settle = 30 * time.Second
	}

	// Prologue: the victim uses the accessory normally. The reconnect
	// authenticates with the stored key, leaving the key sighting
	// (HCI_Link_Key_Request_Reply) in M's dump that the detector compares
	// later notifications against.
	m.Host.Pair(c.Addr(), func(err error) { rep.Reconnected = err == nil })
	s.RunFor(reconnect)
	m.Host.Disconnect(c.Addr())
	s.RunFor(time.Second)

	// The accessory goes out of range; the attacker takes its identity.
	c.Controller.Detach()
	a.Host.SetIOCapability(bt.NoInputNoOutput)
	a.SpoofIdentity(c.Addr(), c.Platform.COD)

	promptsBefore := len(cfg.VictimUser.Prompts())

	// The attacker pairs with the victim. M's silent bonded re-pair
	// policy accepts without a dialog and overwrites the stored key.
	a.Host.Pair(m.Addr(), func(error) {})

	s.RunFor(settle)
	rep.Elapsed = s.Now() - start
	rep.AttackPrompts = len(cfg.VictimUser.Prompts()) - promptsBefore

	victimBond := m.Host.Bonds().Get(c.Addr())
	attackerBond := a.Host.Bonds().Get(m.Addr())
	if victimBond != nil {
		rep.NewKey = victimBond.Key
	}
	rep.KeyReplaced = victimBond != nil && attackerBond != nil &&
		victimBond.Key == attackerBond.Key && victimBond.Key != cfg.OriginalKey
	return rep
}
