package core

import (
	"time"

	"repro/internal/bt"
	"repro/internal/device"
	"repro/internal/hci"
	"repro/internal/host"
	"repro/internal/sim"
)

// BaselineMITMConfig parameterizes the no-page-blocking MITM attempt the
// paper measures at 42-60% success (Table II, middle column): the
// attacker merely spoofs the accessory's BDADDR and page-scans; when the
// victim pages, the attacker and the genuine accessory race to respond.
type BaselineMITMConfig struct {
	Attacker   *device.Device
	Client     *device.Device
	Victim     *device.Device
	VictimUser *host.SimUser

	// RunInquiry makes the victim's user discover devices first.
	RunInquiry bool
	// SettleTime bounds the run; defaults to 90 s.
	SettleTime time.Duration
}

// BaselineMITMReport is the outcome of one baseline attempt.
type BaselineMITMReport struct {
	// MITMEstablished reports that the attacker won the page race and the
	// victim paired with it.
	MITMEstablished bool
	// PairedWithClient reports the genuine accessory won.
	PairedWithClient bool
	PairErr          error
	Elapsed          time.Duration
}

// RunBaselineMITM executes one baseline (raced) MITM attempt.
func RunBaselineMITM(s *sim.Scheduler, cfg BaselineMITMConfig) BaselineMITMReport {
	var rep BaselineMITMReport
	start := s.Now()
	a, c, m := cfg.Attacker, cfg.Client, cfg.Victim

	a.Host.SetIOCapability(bt.NoInputNoOutput)
	a.SpoofIdentity(c.Addr(), c.Platform.COD)

	settle := cfg.SettleTime
	if settle <= 0 {
		settle = 90 * time.Second
	}

	cfg.VictimUser.ExpectPairing(c.Addr())
	pair := func() {
		m.Host.Pair(c.Addr(), func(err error) { rep.PairErr = err })
	}
	if cfg.RunInquiry {
		m.Host.StartInquiry(2, func([]hci.InquiryResponse) { pair() })
	} else {
		pair()
	}

	s.RunFor(settle)
	rep.Elapsed = s.Now() - start

	victimBond := m.Host.Bonds().Get(c.Addr())
	attackerBond := a.Host.Bonds().Get(m.Addr())
	clientBond := c.Host.Bonds().Get(m.Addr())
	if victimBond != nil && attackerBond != nil && victimBond.Key == attackerBond.Key {
		rep.MITMEstablished = true
	}
	if victimBond != nil && clientBond != nil && victimBond.Key == clientBond.Key {
		rep.PairedWithClient = true
	}
	return rep
}
