package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/bt"
	"repro/internal/controller"
	"repro/internal/device"
	"repro/internal/hci"
	"repro/internal/host"
	"repro/internal/radio"
	"repro/internal/sim"
)

// legacyWorld wires two legacy-pairing (pre-SSP) devices and a sniffer.
func legacyWorld(seed int64, pinA, pinB string) (*sim.Scheduler, *AirSniffer, *host.Host, *host.Host, bt.BDADDR) {
	s := sim.NewScheduler(seed)
	med := radio.NewMedium(s, radio.DefaultConfig())
	sniffer := NewAirSniffer(med)

	build := func(addr bt.BDADDR, pin string) *host.Host {
		tr := hci.NewTransport(s, 100*time.Microsecond)
		controller.New(s, med, tr, controller.Config{Addr: addr, COD: bt.CODHeadset})
		h := host.New(s, tr, host.Config{
			Version: bt.V2_1, IOCap: bt.NoInputNoOutput,
			LegacyPairing: true, PINCode: pin,
			AcceptIncoming: true, Discoverable: true, Connectable: true,
		}, host.Hooks{})
		h.Start()
		return h
	}
	a := build(AddrM, pinA)
	b := build(AddrC, pinB)
	s.Run(0)
	return s, sniffer, a, b, AddrC
}

func TestCrackPINRecoversPINAndKey(t *testing.T) {
	s, sniffer, a, _, target := legacyWorld(60, "4603", "4603")
	done := false
	a.Pair(target, func(err error) {
		if err != nil {
			t.Errorf("legacy pairing: %v", err)
		}
		done = true
	})
	s.RunFor(10 * time.Second)
	if !done {
		t.Fatal("pairing never completed")
	}

	res, err := sniffer.CrackPIN(FourDigitPINs)
	if err != nil {
		t.Fatalf("CrackPIN: %v", err)
	}
	if res.PIN != "4603" {
		t.Fatalf("cracked PIN %q, want 4603 (tried %d)", res.PIN, res.Tried)
	}
	if res.LinkKey != a.Bonds().Get(target).Key {
		t.Fatalf("recovered key %s != bonded key", res.LinkKey)
	}
	if res.Tried > 10000 {
		t.Fatalf("tried %d > PIN space", res.Tried)
	}
}

func TestCrackPINFailsOutsideCandidateSpace(t *testing.T) {
	s, sniffer, a, _, target := legacyWorld(61, "7777", "7777")
	a.Pair(target, func(error) {})
	s.RunFor(10 * time.Second)

	only := func(yield func(string) bool) {
		for _, pin := range []string{"0000", "1234"} {
			if !yield(pin) {
				return
			}
		}
	}
	if _, err := sniffer.CrackPIN(only); err == nil {
		t.Fatal("crack must fail when the PIN is outside the candidate space")
	}
}

func TestCrackPINNeedsCompleteHandshake(t *testing.T) {
	s := sim.NewScheduler(62)
	med := radio.NewMedium(s, radio.DefaultConfig())
	sniffer := NewAirSniffer(med)
	if _, err := sniffer.CrackPIN(FourDigitPINs); err == nil {
		t.Fatal("empty capture must be rejected")
	}
	var errCheck error = errors.New("x")
	_ = errCheck
	_ = device.HandsFreeKit
}
