package core

import (
	"errors"
	"time"

	"repro/internal/bt"
	"repro/internal/hci"
	"repro/internal/host"
	"repro/internal/sim"
)

// ErrChannelFault marks a run that failed because the degraded channel
// got in the way (lost page trains, supervision kills, radio outages)
// rather than because of an authentication outcome. Campaign retry
// policies treat these as retryable; auth outcomes are terminal.
var ErrChannelFault = errors.New("core: channel fault")

// IsChannelFault classifies an attack-flow error: true for anything
// wrapped in ErrChannelFault and for the HCI statuses a lossy medium
// produces on its own (page timeout, supervision connection timeout).
// An LMP response timeout is NOT a channel fault — it is the outcome
// the extraction stall works towards.
func IsChannelFault(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrChannelFault) {
		return true
	}
	var se *host.StatusError
	if errors.As(err, &se) {
		switch se.Status {
		case hci.StatusPageTimeout, hci.StatusConnectionTimeout:
			return true
		}
	}
	return errors.Is(err, host.ErrDisconnected)
}

// BackoffPolicy shapes paging retries in attacker flows: exponential
// backoff with scheduler-seeded jitter. The zero value means
// DefaultBackoff. On a clean channel the first attempt succeeds and the
// retry path — the only place the policy draws randomness — never runs,
// preserving bit-identical zero-fault executions.
type BackoffPolicy struct {
	// Attempts is the total number of page attempts (default 4).
	Attempts int
	// Initial is the delay before the first retry; each further retry
	// doubles it (default 500 ms).
	Initial time.Duration
	// Max caps the (pre-jitter) delay (default 8 s).
	Max time.Duration
}

// DefaultBackoff is the attacker flows' paging retry policy.
var DefaultBackoff = BackoffPolicy{Attempts: 4, Initial: 500 * time.Millisecond, Max: 8 * time.Second}

func (p BackoffPolicy) withDefaults() BackoffPolicy {
	if p.Attempts <= 0 {
		p.Attempts = DefaultBackoff.Attempts
	}
	if p.Initial <= 0 {
		p.Initial = DefaultBackoff.Initial
	}
	if p.Max <= 0 {
		p.Max = DefaultBackoff.Max
	}
	return p
}

// Base returns the pre-jitter exponential delay before retry attempt
// `retry` (1-based): Initial doubled per retry, capped at Max. Callers
// outside the simulator (blapd's reconnecting send client) apply their
// own wall-clock jitter on top; simulated flows go through delay, which
// draws jitter from the scheduler RNG to stay deterministic.
func (p BackoffPolicy) Base(retry int) time.Duration {
	p = p.withDefaults()
	d := p.Initial << uint(retry-1)
	if d > p.Max || d <= 0 {
		d = p.Max
	}
	return d
}

// delay returns the post-jitter backoff before retry attempt n (1-based
// retry count). Jitter is ±25% from the scheduler RNG — drawn only here,
// on the retry path.
func (p BackoffPolicy) delay(s *sim.Scheduler, retry int) time.Duration {
	d := p.Base(retry)
	return s.JitterRange(d-d/4, d+d/4)
}

// RetryingConnect pages addr, retrying channel faults (page timeouts,
// supervision kills) with exponential backoff + jitter, up to
// pol.Attempts attempts. Terminal errors and successes are passed
// through to cb as soon as they are known; a final channel-fault failure
// arrives wrapped in ErrChannelFault. The scheduler is not advanced —
// callers drive it.
func RetryingConnect(s *sim.Scheduler, h *host.Host, addr bt.BDADDR, pol BackoffPolicy, cb func(*host.Conn, error)) {
	pol = pol.withDefaults()
	var attempt func(n int)
	attempt = func(n int) {
		h.Connect(addr, func(conn *host.Conn, err error) {
			if err == nil || !IsChannelFault(err) {
				cb(conn, err)
				return
			}
			if n >= pol.Attempts {
				cb(nil, errors.Join(ErrChannelFault, err))
				return
			}
			s.Schedule(pol.delay(s, n), func() { attempt(n + 1) })
		})
	}
	attempt(1)
}
