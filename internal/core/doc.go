// Package core implements the BLAP attacks — the paper's primary
// contribution — on top of the simulated Bluetooth environment:
//
//   - the link key extraction attack (§IV, Fig. 5): harvest a bonded link
//     key from a victim accessory's HCI dump or sniffed USB transport
//     without invalidating the accessory's stored key;
//   - impersonation with an extracted key (§VI-B1): install fake bonding
//     information and validate the key through a PAN (tethering) profile
//     connection that must succeed without re-pairing;
//   - the page blocking attack (§V, Fig. 6b): pre-establish a Physical
//     Layer Only Connection (PLOC) to the victim so the victim's own
//     pairing attempt is deterministically routed to the attacker, then
//     downgrade SSP to Just Works;
//   - the baseline MITM connection race the paper measures page blocking
//     against (Table II's 42-60% column);
//   - the mitigations of §VII: the snoop link-key filter and the
//     pairing/connection initiator role cross-check.
package core
