package tsdb

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestRecoveryTruncatedAtEveryByte is the snoop truncation-at-every-
// cut-byte discipline applied to our own files: write a segment of
// known frames, then for every possible cut point truncate a copy of
// the file to that length and reopen the store on it. Recovery must
// keep exactly the frames that fit entirely before the cut — never a
// partial frame, never fewer than the intact prefix — and the store
// must accept appends afterwards.
func TestRecoveryTruncatedAtEveryByte(t *testing.T) {
	// Build the pristine segment once.
	master := t.TempDir()
	s := openTest(t, master, nil)
	base := t0.UnixNano()
	const nFrames = 8
	frameLens := make([]int, nFrames) // encoded size of each frame
	for i := 0; i < nFrames; i++ {
		data := []byte(fmt.Sprintf(`{"finding":%d,"pad":"abcdefgh"}`, i))
		if err := s.Append("findings", base+int64(i), uint64(i+1), data); err != nil {
			t.Fatalf("Append: %v", err)
		}
		frameLens[i] = frameHeaderSize + frameMetaSize + len(data)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segPath := filepath.Join(master, "findings", "00000001.seg")
	pristine, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the file is exactly header + sum(frames).
	wantLen := segHeaderSize
	for _, l := range frameLens {
		wantLen += l
	}
	if len(pristine) != wantLen {
		t.Fatalf("segment is %d bytes, want %d", len(pristine), wantLen)
	}

	// framesBefore(cut) = how many whole frames fit in the first cut bytes.
	framesBefore := func(cut int) int {
		off := segHeaderSize
		if cut < off {
			return 0
		}
		n := 0
		for _, l := range frameLens {
			if off+l > cut {
				break
			}
			off += l
			n++
		}
		return n
	}
	// validLen(n) = byte offset of the end of frame n (header only for 0).
	validLen := func(n int) int {
		off := segHeaderSize
		for i := 0; i < n; i++ {
			off += frameLens[i]
		}
		return off
	}

	for cut := 0; cut <= len(pristine); cut++ {
		dir := t.TempDir()
		if err := os.MkdirAll(filepath.Join(dir, "findings"), 0o755); err != nil {
			t.Fatal(err)
		}
		torn := filepath.Join(dir, "findings", "00000001.seg")
		if err := os.WriteFile(torn, pristine[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(Options{Dir: dir, CompactEvery: -1, SyncEvery: -1, Now: fixedClock(t0)})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		want := framesBefore(cut)
		got := collect(t, s2, "findings", 0, base+nFrames, KeyAny)
		if len(got) != want {
			s2.Close()
			t.Fatalf("cut %d: recovered %d frames, want %d", cut, len(got), want)
		}
		// The surviving prefix is intact byte-for-byte, in order.
		for i, fr := range got {
			wantData := fmt.Sprintf(`{"finding":%d,"pad":"abcdefgh"}`, i)
			if string(fr.Data) != wantData || fr.TS != base+int64(i) || fr.Key != uint64(i+1) {
				s2.Close()
				t.Fatalf("cut %d: frame %d corrupt: ts=%d key=%d data=%q", cut, i, fr.TS, fr.Key, fr.Data)
			}
		}
		// The file was physically truncated to the last valid frame
		// boundary. A cut inside the header leaves nothing recoverable,
		// so the segment is rebuilt as empty-but-valid (header only).
		st, err := os.Stat(torn)
		if err != nil {
			t.Fatal(err)
		}
		if wantSize := int64(validLen(want)); st.Size() != wantSize {
			s2.Close()
			t.Fatalf("cut %d: file is %d bytes after recovery, want %d", cut, st.Size(), wantSize)
		}
		// The store must keep working: append lands after the tear.
		if err := s2.Append("findings", base+nFrames+1, 99, []byte("after-tear")); err != nil {
			s2.Close()
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		got2 := collect(t, s2, "findings", 0, base+nFrames+1, KeyAny)
		if len(got2) != want+1 {
			s2.Close()
			t.Fatalf("cut %d: after append: %d frames, want %d", cut, len(got2), want+1)
		}
		last := got2[len(got2)-1]
		if string(last.Data) != "after-tear" || last.Key != 99 {
			s2.Close()
			t.Fatalf("cut %d: appended frame corrupt: %q", cut, last.Data)
		}
		if err := s2.Close(); err != nil {
			t.Fatalf("cut %d: Close: %v", cut, err)
		}
	}
}

// TestRecoveryCorruptMidFile flips a byte in the middle of a segment:
// recovery must keep the intact prefix and discard the flipped frame
// and everything after it (a CRC tear is a tear wherever it is).
func TestRecoveryCorruptMidFile(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, nil)
	base := t0.UnixNano()
	for i := 0; i < 10; i++ {
		if err := s.Append("findings", base+int64(i), 1, []byte(fmt.Sprintf("frame-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	s.Close()
	segPath := filepath.Join(dir, "findings", "00000001.seg")
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	frameLen := frameHeaderSize + frameMetaSize + len("frame-0")
	// Flip a payload byte inside frame 5.
	idx := segHeaderSize + 5*frameLen + frameHeaderSize + frameMetaSize
	data[idx] ^= 0xff
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, nil)
	got := collect(t, s2, "findings", 0, base+100, KeyAny)
	if len(got) != 5 {
		t.Fatalf("recovered %d frames, want 5 (prefix before the flip)", len(got))
	}
	for i, fr := range got {
		if want := fmt.Sprintf("frame-%d", i); string(fr.Data) != want {
			t.Fatalf("frame %d: %q, want %q", i, fr.Data, want)
		}
	}
}

// TestRecoveryForeignFile: a segment file whose header is not ours is
// treated as fully torn (truncated to empty) rather than misparsed.
func TestRecoveryForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "findings"), 0o755); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "findings", "00000001.seg")
	if err := os.WriteFile(seg, []byte("not a tsdb segment at all, just some text"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTest(t, dir, nil)
	if got := collect(t, s, "findings", 0, 1<<62, KeyAny); len(got) != 0 {
		t.Fatalf("foreign file yielded %d frames", len(got))
	}
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != segHeaderSize {
		t.Fatalf("foreign file not rebuilt as an empty segment: %d bytes", st.Size())
	}
}
